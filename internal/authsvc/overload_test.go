package authsvc

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"clickpass/internal/par"
)

// blockingHandler parks every request until released — the stand-in
// for a saturated service.
type blockingHandler struct {
	entered chan struct{}
	release chan struct{}
}

func newBlockingHandler() *blockingHandler {
	return &blockingHandler{entered: make(chan struct{}, 1024), release: make(chan struct{})}
}

func (h *blockingHandler) Handle(ctx context.Context, req Request) Response {
	h.entered <- struct{}{}
	<-h.release
	return Response{Version: Version, Code: CodeOK}
}

// TestWithOverloadPrioritySheds: with the limiter saturated and the
// queue filling, low-priority work sheds at its watermark while
// logins still queue — and the shed response is CodeOverloaded with a
// retry hint, returned without waiting.
func TestWithOverloadPrioritySheds(t *testing.T) {
	lim := par.NewLimiter(1)
	var m Metrics
	pol := OverloadPolicy{Queue: 4, RetryAfter: 250 * time.Millisecond}
	blocking := newBlockingHandler()
	h := Chain(blocking, WithOverload(lim, pol, &m))

	// Saturate the single slot.
	go h.Handle(context.Background(), Request{Op: OpLogin, User: "holder"})
	<-blocking.entered

	// Queue one login (depth 1 = low-priority budget for Queue=4).
	loginDone := make(chan Response, 1)
	go func() { loginDone <- h.Handle(context.Background(), Request{Op: OpLogin, User: "queued"}) }()
	waitDepth(t, lim, 1)

	// A reset (low priority, budget max(1, 4*0.25)=1) must shed now…
	t0 := time.Now()
	resp := h.Handle(context.Background(), Request{Op: OpReset, User: "x"})
	shedLat := time.Since(t0)
	if resp.Code != CodeOverloaded {
		t.Fatalf("low-priority at watermark: %+v, want CodeOverloaded", resp)
	}
	if resp.RetryAfterMs != 250 {
		t.Errorf("RetryAfterMs = %d, want 250", resp.RetryAfterMs)
	}
	if shedLat > 100*time.Millisecond {
		t.Errorf("shed took %s; refusals must not queue", shedLat)
	}
	// …while another login still fits the high-priority budget (4).
	loginDone2 := make(chan Response, 1)
	go func() { loginDone2 <- h.Handle(context.Background(), Request{Op: OpLogin, User: "queued2"}) }()
	waitDepth(t, lim, 2)

	// Release everything; queued logins must be served, not shed.
	close(blocking.release)
	for i, ch := range []chan Response{loginDone, loginDone2} {
		if resp := <-ch; resp.Code != CodeOK {
			t.Errorf("queued login %d: %+v, want CodeOK", i, resp)
		}
	}
	if m.Sheds() != 1 {
		t.Errorf("shed counter = %d, want 1", m.Sheds())
	}
	snap := m.Snapshot()
	if snap.ShedByPriority["low"] != 1 {
		t.Errorf("shed_by_priority = %v, want low:1", snap.ShedByPriority)
	}
}

// TestWithOverloadHardCeiling: past the full queue bound even logins
// shed — the hard ceiling that keeps worst-case queueing delay
// bounded.
func TestWithOverloadHardCeiling(t *testing.T) {
	lim := par.NewLimiter(1)
	pol := OverloadPolicy{Queue: 2}
	blocking := newBlockingHandler()
	h := Chain(blocking, WithOverload(lim, pol, nil))

	go h.Handle(context.Background(), Request{Op: OpLogin, User: "holder"})
	<-blocking.entered
	results := make(chan Response, 2)
	for i := 0; i < 2; i++ {
		go func() { results <- h.Handle(context.Background(), Request{Op: OpLogin, User: "q"}) }()
	}
	waitDepth(t, lim, 2)
	if resp := h.Handle(context.Background(), Request{Op: OpLogin, User: "over"}); resp.Code != CodeOverloaded {
		t.Fatalf("login past hard ceiling: %+v, want CodeOverloaded", resp)
	}
	close(blocking.release)
	for i := 0; i < 2; i++ {
		if resp := <-results; resp.Code != CodeOK {
			t.Errorf("queued login %d: %+v", i, resp)
		}
	}
}

// TestWithOverloadDeadlineInQueue: a request whose budget expires
// while parked in the admission queue comes back CodeUnavailable —
// and one that expires between admission and handling is dropped
// before the handler runs.
func TestWithOverloadDeadlineInQueue(t *testing.T) {
	lim := par.NewLimiter(1)
	blocking := newBlockingHandler()
	h := Chain(blocking, WithDeadline(0), WithOverload(lim, OverloadPolicy{Queue: 8}, nil))

	go h.Handle(context.Background(), Request{Op: OpLogin, User: "holder"})
	<-blocking.entered
	// BudgetMs rides the request and becomes the context deadline.
	resp := h.Handle(context.Background(), Request{Op: OpLogin, User: "impatient", BudgetMs: 20})
	if resp.Code != CodeUnavailable {
		t.Fatalf("budget-expired-in-queue: %+v, want CodeUnavailable", resp)
	}
	close(blocking.release)
	lim.Drain()
	if got := lim.Waiting(); got != 0 {
		t.Errorf("Waiting() = %d, want 0", got)
	}
}

// TestWithDeadlineBudgetClamps: the propagated budget tightens the
// server default but never loosens an existing stricter deadline.
func TestWithDeadlineBudgetClamps(t *testing.T) {
	seen := make(chan time.Duration, 1)
	h := Chain(HandlerFunc(func(ctx context.Context, req Request) Response {
		dl, ok := ctx.Deadline()
		if !ok {
			seen <- -1
		} else {
			seen <- time.Until(dl)
		}
		return Response{Code: CodeOK}
	}), WithDeadline(30*time.Second))

	h.Handle(context.Background(), Request{Op: OpPing, BudgetMs: 50})
	if d := <-seen; d <= 0 || d > 60*time.Millisecond {
		t.Errorf("budget 50ms produced deadline %s", d)
	}
	h.Handle(context.Background(), Request{Op: OpPing})
	if d := <-seen; d < 20*time.Second {
		t.Errorf("no budget: deadline %s, want the 30s server default", d)
	}
	// An existing 10ms transport deadline beats a 10s budget.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	h.Handle(ctx, Request{Op: OpPing, BudgetMs: 10_000})
	if d := <-seen; d > 20*time.Millisecond {
		t.Errorf("budget loosened the transport deadline to %s", d)
	}
}

// TestWithLogEmitsStructuredLines: one JSON line per request with op,
// code, latency, and — for shed requests — the overload outcome the
// admission stage annotated.
func TestWithLogEmitsStructuredLines(t *testing.T) {
	var buf bytes.Buffer
	lim := par.NewLimiter(1)
	blocking := newBlockingHandler()
	h := Chain(blocking, WithLog(&buf), WithOverload(lim, OverloadPolicy{Queue: 1}, nil))

	holderDone := make(chan Response, 1)
	go func() { holderDone <- h.Handle(context.Background(), Request{Op: OpLogin, User: "holder"}) }()
	<-blocking.entered
	done := make(chan Response, 1)
	go func() { done <- h.Handle(context.Background(), Request{Op: OpLogin, User: "queued"}) }()
	waitDepth(t, lim, 1)
	// Low-priority shed at depth 1.
	if resp := h.Handle(context.Background(), Request{Op: OpReset, User: "admin"}); resp.Code != CodeOverloaded {
		t.Fatalf("expected shed, got %+v", resp)
	}
	close(blocking.release)
	// Once Handle returns, that request's log line is written.
	<-holderDone
	<-done

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d log lines, want 3:\n%s", len(lines), buf.String())
	}
	var sawShed, sawServed bool
	ids := map[uint64]bool{}
	for _, line := range lines {
		var rec struct {
			ID    uint64 `json:"id"`
			Op    Op     `json:"op"`
			User  string `json:"user"`
			Code  Code   `json:"code"`
			LatUs int64  `json:"lat_us"`
			Shed  bool   `json:"shed"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("unparseable log line %q: %v", line, err)
		}
		if ids[rec.ID] {
			t.Errorf("duplicate request id %d", rec.ID)
		}
		ids[rec.ID] = true
		if rec.Code == CodeOverloaded {
			sawShed = true
			if !rec.Shed || rec.Op != OpReset {
				t.Errorf("shed line missing annotation: %q", line)
			}
		}
		if rec.Code == CodeOK {
			sawServed = true
		}
	}
	if !sawShed || !sawServed {
		t.Errorf("log missed an outcome: shed=%v served=%v\n%s", sawShed, sawServed, buf.String())
	}
}

// TestWithLogConcurrentLinesDoNotInterleave: parallel requests must
// produce whole, parseable lines.
func TestWithLogConcurrentLinesDoNotInterleave(t *testing.T) {
	var buf syncBuffer
	h := Chain(HandlerFunc(func(ctx context.Context, req Request) Response {
		return Response{Code: CodeOK}
	}), WithLog(&buf))
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				h.Handle(context.Background(), Request{Op: OpPing})
			}
		}()
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 16*50 {
		t.Fatalf("got %d lines, want %d", len(lines), 16*50)
	}
	for _, line := range lines {
		if !json.Valid([]byte(line)) {
			t.Fatalf("interleaved log line: %q", line)
		}
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer; WithLog serializes its
// writes, but the test's final read must also be safe.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// waitDepth polls until the limiter's wait queue reaches depth.
func waitDepth(t *testing.T, lim *par.Limiter, depth int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for lim.Waiting() < depth {
		if time.Now().After(deadline) {
			t.Fatalf("queue depth never reached %d (at %d)", depth, lim.Waiting())
		}
		time.Sleep(time.Millisecond)
	}
}

package attack

import (
	"reflect"
	"testing"

	"clickpass/internal/core"
	"clickpass/internal/geom"
	"clickpass/internal/rng"
)

// naiveCrackable is the pre-index reference: a linear scan of the
// whole pool per click, feeding the same shared matcher.
func naiveCrackable(clicks []geom.Point, pool []geom.Point, scheme core.Scheme) bool {
	adj := make([][]int, len(clicks))
	for i, c := range clicks {
		rg := scheme.Region(scheme.Enroll(c))
		for j, p := range pool {
			if rg.Contains(p) {
				adj[i] = append(adj[i], j)
			}
		}
		if len(adj[i]) == 0 {
			return false
		}
	}
	var m matcher
	n, _ := m.run(adj, len(pool))
	return n == len(clicks)
}

// TestIndexMatchesLinearScan: the grid-bucketed index must agree with
// the brute-force region scan on random pools and clicks, across both
// schemes and a spread of square sizes (including edge-hugging points).
func TestIndexMatchesLinearScan(t *testing.T) {
	r := rng.New(7)
	for trial := 0; trial < 30; trial++ {
		poolSize := 3 + r.Intn(200)
		pool := make([]geom.Point, poolSize)
		for i := range pool {
			pool[i] = geom.Pt(r.Intn(451), r.Intn(331))
		}
		cracker := NewCracker(pool)
		for _, side := range []int{9, 13, 24, 54} {
			cs, err := core.NewCentered(side)
			if err != nil {
				t.Fatal(err)
			}
			rb, err := core.NewRobust2D(side, core.MostCentered, 1)
			if err != nil {
				t.Fatal(err)
			}
			for _, scheme := range []core.Scheme{cs, rb} {
				clicks := make([]geom.Point, 5)
				for i := range clicks {
					clicks[i] = geom.Pt(r.Intn(451), r.Intn(331))
				}
				got := cracker.Crackable(clicks, scheme)
				want := naiveCrackable(clicks, pool, scheme)
				if got != want {
					t.Fatalf("trial %d side %d %s: index says %v, scan says %v",
						trial, side, scheme.Name(), got, want)
				}
			}
		}
	}
}

// TestAppendInRectOrder: queries return pool indices in ascending
// order (the determinism contract for witness construction).
func TestAppendInRectOrder(t *testing.T) {
	r := rng.New(3)
	pool := make([]geom.Point, 120)
	for i := range pool {
		pool[i] = geom.Pt(r.Intn(300), r.Intn(300))
	}
	ix := newPointIndex(pool)
	for trial := 0; trial < 50; trial++ {
		x, y := r.Intn(300), r.Intn(300)
		rect := geom.Rect{
			MinX: geom.Pt(x, 0).X, MinY: geom.Pt(0, y).Y,
			MaxX: geom.Pt(x+60, 0).X, MaxY: geom.Pt(0, y+60).Y,
		}
		got := ix.appendInRect(rect, nil)
		var want []int
		for j, p := range pool {
			if rect.Contains(p) {
				want = append(want, j)
			}
		}
		if !reflect.DeepEqual(got, append([]int{}, want...)) && !(len(got) == 0 && len(want) == 0) {
			t.Fatalf("trial %d: got %v want %v", trial, got, want)
		}
	}
}

// TestEmptyPoolIndex: a degenerate pool must not panic.
func TestEmptyPoolIndex(t *testing.T) {
	c := NewCracker(nil)
	scheme, err := core.NewCentered(13)
	if err != nil {
		t.Fatal(err)
	}
	if c.Crackable([]geom.Point{geom.Pt(10, 10)}, scheme) {
		t.Error("empty pool cracked a password")
	}
}

// TestOfflineParallelDeterministic: OfflineKnownGrids and the figure
// sweeps must return identical results for every worker count.
func TestOfflineParallelDeterministic(t *testing.T) {
	pair := studyPairs(t)[0]
	dict, err := BuildDictionary(pair.lab, 5)
	if err != nil {
		t.Fatal(err)
	}
	scheme, err := core.NewRobust2D(36, core.MostCentered, 1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := OfflineKnownGrids(pair.field, dict, scheme, 1)
	if err != nil {
		t.Fatal(err)
	}
	c7, r7, err := Figure7(pair.field, pair.lab, core.MostCentered, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		got, err := OfflineKnownGrids(pair.field, dict, scheme, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got != want {
			t.Errorf("workers=%d: offline result %+v != serial %+v", workers, got, want)
		}
		pc7, pr7, err := Figure7(pair.field, pair.lab, core.MostCentered, 1, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(c7, pc7) || !reflect.DeepEqual(r7, pr7) {
			t.Errorf("workers=%d: Figure7 series differ from serial", workers)
		}
	}
}

// TestRandomSafeStaysDeterministic: the stateful RandomSafe policy
// must yield identical sweep results for any requested worker count
// (the engines detect the mutable scheme and run serially).
func TestRandomSafeStaysDeterministic(t *testing.T) {
	pair := studyPairs(t)[0]
	c1, r1, err := Figure8(pair.field, pair.lab, core.RandomSafe, 9, 1)
	if err != nil {
		t.Fatal(err)
	}
	c8, r8, err := Figure8(pair.field, pair.lab, core.RandomSafe, 9, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c1, c8) || !reflect.DeepEqual(r1, r8) {
		t.Error("RandomSafe results changed with worker count")
	}
}

// TestCrackerForkShares: forked crackers agree with their base while
// owning independent scratch (exercised heavily under -race by the
// parallel engines; this is the functional check).
func TestCrackerForkShares(t *testing.T) {
	pair := studyPairs(t)[0]
	dict, err := BuildDictionary(pair.lab, 5)
	if err != nil {
		t.Fatal(err)
	}
	scheme, err := core.NewRobust2D(36, core.MostCentered, 1)
	if err != nil {
		t.Fatal(err)
	}
	base := NewCracker(dict.Points)
	fork := base.Fork()
	if fork.idx != base.idx {
		t.Error("fork rebuilt the pool index")
	}
	for i := range pair.field.Passwords {
		pts := pair.field.Passwords[i].Points()
		if base.Crackable(pts, scheme) != fork.Crackable(pts, scheme) {
			t.Fatalf("password %d: base and fork disagree", i)
		}
	}
}

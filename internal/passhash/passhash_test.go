package passhash

import (
	"bytes"
	"encoding/hex"
	"math"
	"testing"
	"testing/quick"

	"clickpass/internal/core"
	"clickpass/internal/fixed"
	"clickpass/internal/geom"
)

func tok(dx, dy int64, grid uint8, ix, iy int64) core.Token {
	return core.Token{
		Clear:  core.Clear{DX: fixed.Sub(dx), DY: fixed.Sub(dy), Grid: grid},
		Secret: core.Secret{IX: ix, IY: iy},
	}
}

func testParams() Params {
	return Params{Iterations: 3, Salt: []byte("0123456789abcdef")}
}

func TestDigestDeterministic(t *testing.T) {
	p := testParams()
	tokens := []core.Token{tok(1, 2, 0, 3, 4), tok(5, 6, 1, 7, 8)}
	d1, err := Digest(p, tokens)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Digest(p, tokens)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(d1, d2) {
		t.Error("same input produced different digests")
	}
	if len(d1) != 32 {
		t.Errorf("digest length %d, want 32", len(d1))
	}
}

func TestDigestSensitivity(t *testing.T) {
	p := testParams()
	base := []core.Token{tok(1, 2, 0, 3, 4), tok(5, 6, 1, 7, 8)}
	variants := map[string][]core.Token{
		"dx changed":     {tok(9, 2, 0, 3, 4), tok(5, 6, 1, 7, 8)},
		"grid changed":   {tok(1, 2, 2, 3, 4), tok(5, 6, 1, 7, 8)},
		"index changed":  {tok(1, 2, 0, 3, 5), tok(5, 6, 1, 7, 8)},
		"order swapped":  {tok(5, 6, 1, 7, 8), tok(1, 2, 0, 3, 4)},
		"click dropped":  {tok(1, 2, 0, 3, 4)},
		"negative index": {tok(1, 2, 0, -3, 4), tok(5, 6, 1, 7, 8)},
	}
	want, err := Digest(p, base)
	if err != nil {
		t.Fatal(err)
	}
	for name, v := range variants {
		got, err := Digest(p, v)
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Equal(want, got) {
			t.Errorf("%s: digest collision", name)
		}
	}
}

func TestSaltChangesDigest(t *testing.T) {
	tokens := []core.Token{tok(1, 2, 0, 3, 4)}
	p1 := Params{Iterations: 2, Salt: []byte("salt-A-0123456789")}
	p2 := Params{Iterations: 2, Salt: []byte("salt-B-0123456789")}
	d1, _ := Digest(p1, tokens)
	d2, _ := Digest(p2, tokens)
	if bytes.Equal(d1, d2) {
		t.Error("different salts produced the same digest")
	}
}

func TestIterationsChangeDigest(t *testing.T) {
	tokens := []core.Token{tok(1, 2, 0, 3, 4)}
	p1 := Params{Iterations: 1, Salt: []byte("0123456789abcdef")}
	p2 := Params{Iterations: 2, Salt: []byte("0123456789abcdef")}
	d1, _ := Digest(p1, tokens)
	d2, _ := Digest(p2, tokens)
	if bytes.Equal(d1, d2) {
		t.Error("different iteration counts produced the same digest")
	}
}

func TestVerify(t *testing.T) {
	p := testParams()
	tokens := []core.Token{tok(1, 2, 0, 3, 4), tok(5, 6, 1, 7, 8)}
	stored, err := Digest(p, tokens)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := Verify(p, stored, tokens)
	if err != nil || !ok {
		t.Errorf("Verify(correct) = %v, %v", ok, err)
	}
	wrong := []core.Token{tok(1, 2, 0, 3, 4), tok(5, 6, 1, 7, 9)}
	ok, err = Verify(p, stored, wrong)
	if err != nil || ok {
		t.Errorf("Verify(wrong) = %v, %v", ok, err)
	}
	ok, err = Verify(p, stored[:31], tokens)
	if err != nil || ok {
		t.Errorf("Verify(truncated stored) = %v, %v", ok, err)
	}
}

func TestEncodeInjective(t *testing.T) {
	// quick.Check that distinct single tokens never encode equal.
	f := func(a1, a2, b1, b2 int32, g1, g2 uint8) bool {
		t1 := tok(int64(a1), int64(a2), g1, int64(b1), int64(b2))
		t2 := tok(int64(a2), int64(a1), g2, int64(b2), int64(b1))
		e1 := EncodeTokens([]core.Token{t1})
		e2 := EncodeTokens([]core.Token{t2})
		if t1 == t2 {
			return bytes.Equal(e1, e2)
		}
		return !bytes.Equal(e1, e2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodeLengthPrefix(t *testing.T) {
	one := EncodeTokens([]core.Token{tok(0, 0, 0, 0, 0)})
	two := EncodeTokens([]core.Token{tok(0, 0, 0, 0, 0), tok(0, 0, 0, 0, 0)})
	if bytes.Equal(one, two[:len(one)]) && one[0] == two[0] && one[1] == two[1] {
		t.Error("length prefix missing: one-token encoding is a prefix with same header")
	}
}

func TestNewParams(t *testing.T) {
	p, err := NewParams(100)
	if err != nil {
		t.Fatal(err)
	}
	if p.Iterations != 100 || len(p.Salt) != SaltLen {
		t.Errorf("unexpected params: %+v", p)
	}
	p2, err := NewParams(100)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(p.Salt, p2.Salt) {
		t.Error("two NewParams calls produced identical salts")
	}
	if _, err := NewParams(0); err == nil {
		t.Error("NewParams(0) should fail")
	}
}

func TestValidate(t *testing.T) {
	if err := (Params{Iterations: 1, Salt: []byte("x")}).Validate(); err != nil {
		t.Errorf("minimal valid params rejected: %v", err)
	}
	if err := (Params{Iterations: 0, Salt: []byte("x")}).Validate(); err == nil {
		t.Error("zero iterations accepted")
	}
	if err := (Params{Iterations: 1}).Validate(); err == nil {
		t.Error("empty salt accepted")
	}
	if _, err := Digest(Params{}, nil); err == nil {
		t.Error("Digest with invalid params should fail")
	}
	if _, err := Verify(Params{}, nil, nil); err == nil {
		t.Error("Verify with invalid params should fail")
	}
}

func TestAddedBits(t *testing.T) {
	if got := AddedBits(1000); math.Abs(got-9.97) > 0.01 {
		t.Errorf("AddedBits(1000) = %f, want ~9.97 (paper: ~10 bits)", got)
	}
	if AddedBits(1) != 0 {
		t.Error("AddedBits(1) should be 0")
	}
	if AddedBits(0) != 0 {
		t.Error("AddedBits(0) should be 0")
	}
}

func TestEmptyTokenList(t *testing.T) {
	p := testParams()
	d, err := Digest(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(d) != 32 {
		t.Error("empty token list should still digest")
	}
	dOne, _ := Digest(p, []core.Token{tok(0, 0, 0, 0, 0)})
	if bytes.Equal(d, dOne) {
		t.Error("empty and one-token digests collide")
	}
}

// TestGoldenVector pins the wire format: if the canonical encoding or
// the digest construction ever changes, stored password files in the
// field would stop verifying. This test makes such a change loud.
func TestGoldenVector(t *testing.T) {
	p := Params{Iterations: 3, Salt: []byte("0123456789abcdef")}
	tokens := []core.Token{
		{Clear: core.Clear{DX: fixed.Sub(10), DY: fixed.Sub(20), Grid: 1}, Secret: core.Secret{IX: -2, IY: 7}},
		{Clear: core.Clear{DX: fixed.Sub(0), DY: fixed.Sub(39), Grid: 0}, Secret: core.Secret{IX: 31, IY: 0}},
	}
	const wantEnc = "0002000000000000000a000000000000001401fffffffffffffffe00000000000000070000000000000000000000000000002700000000000000001f0000000000000000"
	if got := hex.EncodeToString(EncodeTokens(tokens)); got != wantEnc {
		t.Errorf("encoding changed:\n got %s\nwant %s", got, wantEnc)
	}
	const wantDigest = "b31338974a9577b0d14bb31db1850afd09e89f725a99ead137cc1e5fc51aedb6"
	d, err := Digest(p, tokens)
	if err != nil {
		t.Fatal(err)
	}
	if got := hex.EncodeToString(d); got != wantDigest {
		t.Errorf("digest changed:\n got %s\nwant %s", got, wantDigest)
	}
}

// TestDigestIntoMatchesDigest: the batched Hasher path must produce
// exactly the one-shot Digest for every iteration count, and reusing
// the destination buffer must not corrupt results.
func TestDigestIntoMatchesDigest(t *testing.T) {
	scheme, err := core.NewCentered(13)
	if err != nil {
		t.Fatal(err)
	}
	params := Params{Iterations: 1, Salt: []byte("salt-salt-salt-!")}
	for _, iters := range []int{1, 2, 7, 1000} {
		params.Iterations = iters
		h, err := NewHasher(params)
		if err != nil {
			t.Fatal(err)
		}
		var buf []byte
		for n := 1; n <= 5; n++ {
			tokens := make([]core.Token, n)
			for i := range tokens {
				tokens[i] = scheme.Enroll(geom.Pt(31*i+iters, 17*i+3))
			}
			want, err := Digest(params, tokens)
			if err != nil {
				t.Fatal(err)
			}
			buf = h.DigestInto(buf[:0], tokens)
			if !bytes.Equal(buf, want) {
				t.Fatalf("iters=%d n=%d: DigestInto differs from Digest", iters, n)
			}
			if !h.Verify(want, tokens) {
				t.Fatalf("iters=%d n=%d: Hasher.Verify rejected its own digest", iters, n)
			}
			want[0] ^= 1
			if h.Verify(want, tokens) {
				t.Fatalf("iters=%d n=%d: Hasher.Verify accepted a corrupted digest", iters, n)
			}
		}
	}
}

// TestNewHasherValidates: invalid params must be rejected up front.
func TestNewHasherValidates(t *testing.T) {
	if _, err := NewHasher(Params{Iterations: 0, Salt: []byte("x")}); err == nil {
		t.Error("zero iterations accepted")
	}
	if _, err := NewHasher(Params{Iterations: 1}); err == nil {
		t.Error("empty salt accepted")
	}
}

// TestAppendTokensMatchesEncode: AppendTokens into a prefilled buffer
// preserves the prefix and appends the canonical encoding.
func TestAppendTokensMatchesEncode(t *testing.T) {
	scheme, err := core.NewCentered(13)
	if err != nil {
		t.Fatal(err)
	}
	tokens := []core.Token{scheme.Enroll(geom.Pt(10, 20)), scheme.Enroll(geom.Pt(200, 100))}
	want := EncodeTokens(tokens)
	got := AppendTokens([]byte("prefix"), tokens)
	if !bytes.Equal(got[:6], []byte("prefix")) || !bytes.Equal(got[6:], want) {
		t.Error("AppendTokens mangled the destination buffer")
	}
}

package authsvc

import (
	"context"
	"errors"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"
)

// RetryPolicy configures NewRetryClient: capped exponential backoff
// with full jitter, plus a per-client circuit breaker so a fleet of
// retrying clients cannot synchronize into the very storm the server
// is shedding.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries, first included; <= 0
	// selects DefaultRetryAttempts.
	MaxAttempts int
	// BaseDelay is the backoff cap for the first retry; it doubles per
	// attempt up to MaxDelay, and the actual sleep is drawn uniformly
	// from [0, cap) — "full jitter", the decorrelation that spreads a
	// reconnect herd over the whole window instead of letting every
	// client hammer the server on the same schedule. <= 0 selects
	// DefaultRetryBase.
	BaseDelay time.Duration
	// MaxDelay caps the backoff window; <= 0 selects DefaultRetryMax.
	MaxDelay time.Duration
	// BreakerThreshold opens the circuit after this many consecutive
	// retryable failures; 0 selects DefaultBreakerThreshold, < 0
	// disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit refuses before
	// half-opening for a single probe; <= 0 selects
	// DefaultBreakerCooldown.
	BreakerCooldown time.Duration
	// Redirect, when non-nil, lets the client follow CodeNotPrimary
	// responses from a replicated server: it is called with the
	// response's advertised primary address and must return a Client
	// wired to that node, which replaces (and closes) the current one
	// before the request is re-sent. A not_primary refusal is issued
	// by the role guard before the request executes, so following it
	// is safe for every op, idempotent or not — the request lands on
	// the primary exactly once. Nil leaves CodeNotPrimary to the
	// caller as a definitive answer.
	Redirect func(addr string) (Client, error)
}

// Retry-policy defaults.
const (
	// DefaultRetryAttempts is the total tries per call.
	DefaultRetryAttempts = 4
	// DefaultRetryBase is the first retry's backoff cap.
	DefaultRetryBase = 25 * time.Millisecond
	// DefaultRetryMax caps the backoff window.
	DefaultRetryMax = 2 * time.Second
	// DefaultBreakerThreshold is the consecutive-failure count that
	// opens the circuit.
	DefaultBreakerThreshold = 8
	// DefaultBreakerCooldown is how long an open circuit refuses
	// before half-opening.
	DefaultBreakerCooldown = time.Second
)

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = DefaultRetryAttempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = DefaultRetryBase
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = DefaultRetryMax
	}
	if p.BreakerThreshold == 0 {
		p.BreakerThreshold = DefaultBreakerThreshold
	}
	if p.BreakerCooldown <= 0 {
		p.BreakerCooldown = DefaultBreakerCooldown
	}
	return p
}

// ErrCircuitOpen is returned by a RetryClient whose circuit breaker
// is open: recent calls failed consecutively, so the client fails
// fast locally instead of feeding an overloaded or dead server.
var ErrCircuitOpen = errors.New("authsvc: circuit breaker open")

// RetryStats are a RetryClient's cumulative counters.
type RetryStats struct {
	// Calls is the number of Do invocations.
	Calls int64
	// Retries is the number of re-sent requests (excludes firsts).
	Retries int64
	// Overloaded counts CodeOverloaded responses observed.
	Overloaded int64
	// BreakerOpens counts closed->open transitions.
	BreakerOpens int64
	// BreakerFastFails counts calls refused locally by an open
	// circuit.
	BreakerFastFails int64
	// Redirects counts CodeNotPrimary responses followed to a new
	// primary.
	Redirects int64
}

// RetryClient wraps a Client with the overload-aware retry discipline:
//
//   - CodeOverloaded responses are retried for every op — a shed
//     request provably never reached the service — waiting at least
//     the server's RetryAfterMs hint, under full-jitter backoff.
//   - Transport errors and CodeUnavailable are retried only for
//     idempotent ops (ping, login, reset): a broken connection cannot
//     prove an enroll or change did not commit before dying.
//   - A circuit breaker counts consecutive retryable failures; once
//     open, calls fail fast with ErrCircuitOpen until a cooldown
//     passes, then a single half-open probe decides whether to close
//     it. Storms therefore collapse to one probe per client per
//     cooldown instead of a synchronized reconnect herd.
//   - With RetryPolicy.Redirect set, CodeNotPrimary responses are
//     followed to the advertised primary for every op: the refusal
//     happens before the request executes, so the redirected re-send
//     lands exactly once.
//
// Safe for concurrent use iff the wrapped client is (the HTTP client
// is; the TCP client serializes).
type RetryClient struct {
	Ops
	inner  Client
	policy RetryPolicy

	calls      atomic.Int64
	retries    atomic.Int64
	overloaded atomic.Int64
	opens      atomic.Int64
	fastFails  atomic.Int64
	redirects  atomic.Int64

	// sleep and rnd are injection points for deterministic tests.
	sleep func(ctx context.Context, d time.Duration) error
	rnd   func() float64

	mu       sync.Mutex
	failures int       // consecutive retryable failures
	openedAt time.Time // zero when closed
	probing  bool      // a half-open probe is in flight
}

// NewRetryClient wraps inner with the retry policy. Closing the
// RetryClient closes inner.
func NewRetryClient(inner Client, policy RetryPolicy) *RetryClient {
	c := &RetryClient{
		inner:  inner,
		policy: policy.withDefaults(),
		sleep: func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-t.C:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		},
		rnd: rand.Float64,
	}
	c.Ops = Ops{Doer: c}
	return c
}

// Stats returns the client's cumulative retry and breaker counters.
func (c *RetryClient) Stats() RetryStats {
	return RetryStats{
		Calls:            c.calls.Load(),
		Retries:          c.retries.Load(),
		Overloaded:       c.overloaded.Load(),
		BreakerOpens:     c.opens.Load(),
		BreakerFastFails: c.fastFails.Load(),
		Redirects:        c.redirects.Load(),
	}
}

// client returns the current wrapped client; Redirect may swap it
// mid-flight, so every attempt reads it fresh under the lock.
func (c *RetryClient) client() Client {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inner
}

// swapInner replaces the wrapped client and closes the old one.
func (c *RetryClient) swapInner(nc Client) {
	c.mu.Lock()
	old := c.inner
	c.inner = nc
	c.mu.Unlock()
	if old != nil {
		_ = old.Close()
	}
}

// idempotent reports whether op can be blindly re-sent after a
// transport failure that may or may not have executed it.
func idempotent(op Op) bool {
	switch op {
	case OpPing, OpLogin, OpReset, OpValidate:
		// Validate is a pure read of in-memory session state: re-sending
		// one after a torn connection cannot double-apply anything.
		return true
	}
	return false
}

// admit consults the breaker before an attempt: closed and half-open
// (probe) calls proceed; open calls fail fast. probe reports whether
// this call holds the half-open probe slot.
func (c *RetryClient) admit(now time.Time) (ok, probe bool) {
	if c.policy.BreakerThreshold < 0 {
		return true, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.openedAt.IsZero() {
		return true, false
	}
	if now.Sub(c.openedAt) < c.policy.BreakerCooldown || c.probing {
		return false, false
	}
	c.probing = true
	return true, true
}

// settle records an attempt outcome in the breaker. retryable marks
// failures that count toward opening (overload, transport, timeout);
// a success or a definitive service answer closes the circuit.
func (c *RetryClient) settle(retryableFailure, probe bool, now time.Time) {
	if c.policy.BreakerThreshold < 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if probe {
		c.probing = false
	}
	if !retryableFailure {
		c.failures = 0
		c.openedAt = time.Time{}
		return
	}
	c.failures++
	if !c.openedAt.IsZero() {
		// A failed half-open probe re-opens the window from now.
		c.openedAt = now
		return
	}
	if c.failures >= c.policy.BreakerThreshold {
		c.openedAt = now
		c.opens.Add(1)
	}
}

// backoff returns the full-jitter sleep before retry attempt (1 =
// first retry), at least floor (the server's Retry-After hint).
func (c *RetryClient) backoff(attempt int, floor time.Duration) time.Duration {
	window := c.policy.BaseDelay << (attempt - 1)
	if window > c.policy.MaxDelay || window <= 0 {
		window = c.policy.MaxDelay
	}
	d := time.Duration(c.rnd() * float64(window))
	if d < floor {
		d = floor
	}
	return d
}

// Do sends the request, retrying per the policy. The context bounds
// the whole exchange, backoff sleeps included.
func (c *RetryClient) Do(ctx context.Context, req Request) (Response, error) {
	c.calls.Add(1)
	var (
		lastResp Response
		lastErr  error
	)
	for attempt := 1; ; attempt++ {
		ok, probe := c.admit(time.Now())
		if !ok {
			c.fastFails.Add(1)
			return Response{}, ErrCircuitOpen
		}
		resp, err := c.client().Do(ctx, req)
		lastResp, lastErr = resp, err

		if err == nil && resp.Code == CodeNotPrimary && resp.Primary != "" && c.policy.Redirect != nil {
			// The server answered "not me, go there": a definitive,
			// pre-execution refusal. Swap in a client for the advertised
			// primary and re-send immediately — no backoff, any op.
			c.settle(false, probe, time.Now())
			nc, rerr := c.policy.Redirect(resp.Primary)
			if rerr != nil {
				return resp, rerr
			}
			c.swapInner(nc)
			c.redirects.Add(1)
			if attempt >= c.policy.MaxAttempts {
				return resp, nil
			}
			c.retries.Add(1)
			continue
		}

		var (
			retryable bool // counts toward the breaker
			resend    bool // this call may try again
			floor     time.Duration
		)
		switch {
		case err != nil:
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				// The caller gave up; neither retry nor blame the server.
				c.settle(false, probe, time.Now())
				return resp, err
			}
			retryable = true
			resend = idempotent(req.Op)
		case resp.Code == CodeOverloaded:
			c.overloaded.Add(1)
			retryable = true
			resend = true // a shed request never executed
			floor = time.Duration(resp.RetryAfterMs) * time.Millisecond
		case resp.Code == CodeUnavailable:
			retryable = true
			resend = idempotent(req.Op)
		default:
			// A definitive service answer — success, denial, lockout,
			// throttle — means the server is alive and working.
			c.settle(false, probe, time.Now())
			return resp, nil
		}
		c.settle(retryable, probe, time.Now())
		if !resend || attempt >= c.policy.MaxAttempts {
			return lastResp, lastErr
		}
		if err := c.sleep(ctx, c.backoff(attempt, floor)); err != nil {
			return lastResp, err
		}
		c.retries.Add(1)
	}
}

// Close closes the wrapped client.
func (c *RetryClient) Close() error { return c.client().Close() }

package space

import (
	"math"
	"testing"

	"clickpass/internal/geom"
)

var study = geom.Size{W: 451, H: 331}
var vga = geom.Size{W: 640, H: 480}

// TestTable3Exact checks every cell of the paper's Table 3: squares per
// grid exactly, bit sizes to the paper's one-decimal precision.
func TestTable3Exact(t *testing.T) {
	cases := []struct {
		img     geom.Size
		side    int
		squares int
		bits    float64
	}{
		{study, 9, 1887, 54.4},
		{study, 13, 910, 49.1},
		{study, 19, 432, 43.8},
		{study, 24, 266, 40.3},
		{study, 36, 130, 35.1},
		{study, 54, 63, 29.9},
		{vga, 9, 3888, 59.6},
		{vga, 13, 1850, 54.3},
		{vga, 19, 884, 48.9},
		{vga, 24, 540, 45.4},
		{vga, 36, 252, 39.9},
		{vga, 54, 108, 33.8},
	}
	for _, c := range cases {
		n, err := SquaresPerGrid(c.img, c.side)
		if err != nil {
			t.Fatal(err)
		}
		if n != c.squares {
			t.Errorf("%v %dx%d: squares = %d, want %d", c.img, c.side, c.side, n, c.squares)
		}
		bits, err := PasswordSpaceBits(c.img, c.side, 5)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(bits-c.bits) > 0.05 {
			t.Errorf("%v %dx%d: bits = %.2f, want %.1f", c.img, c.side, c.side, bits, c.bits)
		}
	}
}

// TestSection222Numbers: §2.2.2's in-text numbers — 640x480 with 36x36
// squares: 252 squares, 39.9 bits; with 13x13 (r=6): 54.3 bits.
func TestSection222Numbers(t *testing.T) {
	n, _ := SquaresPerGrid(vga, 36)
	if n != 252 {
		t.Errorf("squares = %d, want 252", n)
	}
	b36, _ := PasswordSpaceBits(vga, 36, 5)
	if math.Abs(b36-39.9) > 0.05 {
		t.Errorf("bits(36) = %.2f, want 39.9", b36)
	}
	b13, _ := PasswordSpaceBits(vga, 13, 5)
	if math.Abs(b13-54.3) > 0.05 {
		t.Errorf("bits(13) = %.2f, want 54.3", b13)
	}
}

func TestTextPasswordBaseline(t *testing.T) {
	bits, err := TextPasswordBits(95, 8)
	if err != nil {
		t.Fatal(err)
	}
	// 8*log2(95) = 52.56; the paper truncates to 52.5.
	if math.Abs(bits-52.5) > 0.1 {
		t.Errorf("text bits = %.2f, want ~52.5", bits)
	}
}

// TestSection51EqualR: §5 in-text comparison — on 640x480 at r=4,
// Centered gives 59.6 bits vs Robust 45.4.
func TestSection51EqualR(t *testing.T) {
	c, r, err := SpaceLossVsCentered(vga, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c-59.6) > 0.05 {
		t.Errorf("centered bits = %.2f, want 59.6", c)
	}
	if math.Abs(r-45.4) > 0.05 {
		t.Errorf("robust bits = %.2f, want 45.4", r)
	}
}

func TestTable3Builder(t *testing.T) {
	rows, err := Table3(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("Table3 has %d rows, want 12", len(rows))
	}
	// Spot-check tolerance columns.
	for _, row := range rows {
		if row.SidePx == 13 && row.CenteredRPx != 6 {
			t.Errorf("13x13 centered r = %v, want 6", row.CenteredRPx)
		}
		if row.SidePx == 24 && row.CenteredRPx != 11.5 {
			t.Errorf("24x24 centered r = %v, want 11.5", row.CenteredRPx)
		}
		if row.SidePx == 54 && row.RobustRPx != 9 {
			t.Errorf("54x54 robust r = %v, want 9", row.RobustRPx)
		}
	}
}

// TestMonotonicity: smaller squares always give a larger space; larger
// images always give a larger space.
func TestMonotonicity(t *testing.T) {
	prev := math.Inf(1)
	for _, s := range Table3Sizes {
		bits, err := PasswordSpaceBits(study, s, 5)
		if err != nil {
			t.Fatal(err)
		}
		if bits >= prev {
			t.Errorf("bits not strictly decreasing at side %d", s)
		}
		prev = bits
	}
	small, _ := PasswordSpaceBits(study, 13, 5)
	big, _ := PasswordSpaceBits(vga, 13, 5)
	if big <= small {
		t.Error("larger image should give larger space")
	}
}

func TestValidation(t *testing.T) {
	if _, err := SquaresPerGrid(study, 0); err == nil {
		t.Error("zero side accepted")
	}
	if _, err := SquaresPerGrid(geom.Size{}, 13); err == nil {
		t.Error("empty image accepted")
	}
	if _, err := PasswordSpaceBits(study, 13, 0); err == nil {
		t.Error("zero clicks accepted")
	}
	if _, err := TextPasswordBits(1, 8); err == nil {
		t.Error("unary alphabet accepted")
	}
	if _, err := TextPasswordBits(95, 0); err == nil {
		t.Error("empty password accepted")
	}
	if _, _, err := SpaceLossVsCentered(study, 0, 5); err == nil {
		t.Error("r=0 accepted")
	}
}

package analysis_test

import (
	"reflect"
	"sync"
	"testing"

	"clickpass/internal/analysis"
	"clickpass/internal/core"
	"clickpass/internal/dataset"
	"clickpass/internal/imagegen"
	"clickpass/internal/study"
)

var (
	fieldOnce sync.Once
	fieldData []*dataset.Dataset
)

// fieldDatasets simulates the paper's field study once per test run.
func fieldDatasets(t *testing.T) []*dataset.Dataset {
	t.Helper()
	fieldOnce.Do(func() {
		for i, img := range imagegen.Gallery() {
			d, err := study.Run(study.FieldConfig(img, uint64(100+i)))
			if err != nil {
				t.Fatal(err)
			}
			fieldData = append(fieldData, d)
		}
	})
	return fieldData
}

// handBuilt returns a tiny dataset with exactly known outcomes for
// Robust 36x36 (r=6) vs Centered 13x13 (r=6.5).
//
// Password click at (18,18): in grid 0 the square is [0,36)x[0,36) with
// margin 18 (perfectly centered). Offset grids 1 ([12,48)... margin 6)
// and 2 (margin 6... wait grid 2 offset 24: [24,60) margin -6) — the
// most-centered policy picks grid 0.
func handBuilt() *dataset.Dataset {
	return &dataset.Dataset{
		Image: "test", Width: 100, Height: 100,
		Passwords: []dataset.Password{
			{ID: 1, User: "u", Image: "test", Clicks: []dataset.Click{{X: 18, Y: 18}}},
		},
		Logins: []dataset.Login{
			// Within centered 13x13 (<=6px) and within robust square: clean accept.
			{PasswordID: 1, Attempt: 0, Clicks: []dataset.Click{{X: 24, Y: 18}}},
			// Outside centered (8px) but inside robust [0,36): false accept.
			{PasswordID: 1, Attempt: 1, Clicks: []dataset.Click{{X: 26, Y: 18}}},
			// Outside both (20px moves to x=38, outside [0,36)): clean reject.
			{PasswordID: 1, Attempt: 2, Clicks: []dataset.Click{{X: 38, Y: 18}}},
		},
	}
}

func TestHandBuiltOutcomes(t *testing.T) {
	row, err := analysis.Compare([]*dataset.Dataset{handBuilt()}, 36, 13, core.MostCentered, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if row.Logins != 3 {
		t.Fatalf("logins = %d", row.Logins)
	}
	if row.FalseAccepts != 1 {
		t.Errorf("false accepts = %d, want 1", row.FalseAccepts)
	}
	if row.FalseRejects != 0 {
		t.Errorf("false rejects = %d, want 0", row.FalseRejects)
	}
	if row.ClickFalseAccepts != 1 || row.ClickFalseRejects != 0 {
		t.Errorf("click FA/FR = %d/%d, want 1/0", row.ClickFalseAccepts, row.ClickFalseRejects)
	}
}

func TestHandBuiltFalseReject(t *testing.T) {
	// Click at (30,18): grid margins — g0 square [0,36): margin
	// min(30,6)=6; g1 [12,48): margin min(18,18)=18 -> most-centered
	// picks g1. A login at (41,18) is 11px away: outside centered 13x13
	// but inside [12,48): false accept. A login at (36,18) is 6px:
	// inside centered and inside [12,48): accept (no false reject).
	// Use instead click at (24,18): g0 margin min(24,12)=12, g1 margin
	// min(12,24)=12, g2 [24,60) margin min(0,..)=0 unsafe -> tie g0/g1,
	// most-centered keeps g0 (first max). Login at (30,18): 6px,
	// centered accepts; robust g0 square [0,36) contains 30: accept.
	// Login at (-?) ... construct a guaranteed FR: click at (33,18):
	// g0 margin min(33->3? (33 mod 36=33, margin min(33, 3)=3) unsafe
	// (3<6); g1 [12,48): pos 21, margin min(21,15)=15 safe; g2 [24,60):
	// pos 9, margin 9 safe. most-centered -> g1. Login at (39,18):
	// 6px from original: centered accepts; position in g1 square: 27,
	// inside [12,48): accepted. Hmm robust accepts everything within r
	// by design... FR needs login 3..6px beyond the square edge of the
	// *chosen* grid: choose click near edge of its best square: any
	// point's best margin >= 6 for 36px squares, so FR needs >6px
	// displacement, i.e. outside centered 13x13 too. Equal-size
	// comparison is where FRs arise: Robust 13x13 (r=2.17).
	d := &dataset.Dataset{
		Image: "test", Width: 100, Height: 100,
		Passwords: []dataset.Password{
			{ID: 1, User: "u", Image: "test", Clicks: []dataset.Click{{X: 18, Y: 18}}},
		},
		Logins: []dataset.Login{
			// 13px squares: grid 0 squares [13k,13k+13). Click (18,18)
			// sits at position 5 in square [13,26): margins x: min(5,8)=5.
			// Grid offsets are 2r = 13/3 px apart (4.33, 8.67). In grid 1
			// ([4.33..17.33,...): position 13.67 -> margin min(13.67, -?)
			// 13.67 mod 13 = 0.67: margin 0.67 unsafe. Grid 2: 18-8.67 =
			// 9.33 mod 13 = 9.33: margin min(9.33, 3.67) = 3.67 safe.
			// Best margin: grid 0 with 5 (x) ... y symmetric. Chosen
			// square x-range [13,26). Login at (24,18): +6px, within
			// centered (r=6); x=24 < 26 accepted. Login at (12,18):
			// -6px: x=12 outside [13,26): robust rejects, centered
			// accepts -> false reject.
			{PasswordID: 1, Attempt: 0, Clicks: []dataset.Click{{X: 12, Y: 18}}},
		},
	}
	row, err := analysis.Compare([]*dataset.Dataset{d}, 13, 13, core.MostCentered, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if row.FalseRejects != 1 {
		t.Errorf("false rejects = %d, want 1", row.FalseRejects)
	}
	if row.FalseAccepts != 0 {
		t.Errorf("false accepts = %d, want 0", row.FalseAccepts)
	}
}

func TestTable1Shape(t *testing.T) {
	rows, err := analysis.Table1(fieldDatasets(t), core.MostCentered, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	// Paper: FR 21.8 / 21.1 / 10.0; FA 3.5 / 1.7 / 0.5. We assert the
	// qualitative claims: FR is large (double digits for 9 and 13),
	// decreasing with size; FA is small and decreasing; FR >> FA.
	for i, row := range rows {
		if row.FalseRejectPct() <= row.FalseAcceptPct() {
			t.Errorf("row %d: FR %.1f%% not greater than FA %.1f%%",
				i, row.FalseRejectPct(), row.FalseAcceptPct())
		}
	}
	if rows[0].FalseRejectPct() < 12 || rows[1].FalseRejectPct() < 12 {
		t.Errorf("small-square FR %.1f%%/%.1f%% — paper reports ~21%%",
			rows[0].FalseRejectPct(), rows[1].FalseRejectPct())
	}
	if rows[2].FalseRejectPct() >= rows[0].FalseRejectPct() {
		t.Errorf("FR should fall with square size: %.1f%% -> %.1f%%",
			rows[0].FalseRejectPct(), rows[2].FalseRejectPct())
	}
	if rows[0].FalseAcceptPct() > 8 {
		t.Errorf("FA@9 = %.1f%% — paper reports 3.5%%", rows[0].FalseAcceptPct())
	}
	if rows[2].FalseAcceptPct() >= rows[0].FalseAcceptPct() {
		t.Errorf("FA should fall with square size")
	}
}

func TestTable2Shape(t *testing.T) {
	rows, err := analysis.Table2(fieldDatasets(t), core.MostCentered, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: FA 32.1 / 14.1 / 4.3, FR identically 0.
	for i, row := range rows {
		if row.FalseRejects != 0 {
			t.Errorf("row %d: %d false rejects — equal-r comparison guarantees none",
				i, row.FalseRejects)
		}
	}
	fa := []float64{rows[0].FalseAcceptPct(), rows[1].FalseAcceptPct(), rows[2].FalseAcceptPct()}
	if !(fa[0] > fa[1] && fa[1] > fa[2]) {
		t.Errorf("FA not decreasing in r: %.1f / %.1f / %.1f", fa[0], fa[1], fa[2])
	}
	if fa[0] < 20 || fa[0] > 45 {
		t.Errorf("FA@r=4 = %.1f%%, paper reports 32.1%%", fa[0])
	}
	if fa[1] < 8 || fa[1] > 22 {
		t.Errorf("FA@r=6 = %.1f%%, paper reports 14.1%%", fa[1])
	}
	if fa[2] < 1 || fa[2] > 10 {
		t.Errorf("FA@r=9 = %.1f%%, paper reports 4.3%%", fa[2])
	}
}

// TestPolicyAblation: the naive FirstSafe policy must be no better
// (and typically worse) than the paper's MostCentered on false rejects.
func TestPolicyAblation(t *testing.T) {
	best, err := analysis.Compare(fieldDatasets(t), 13, 13, core.MostCentered, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := analysis.Compare(fieldDatasets(t), 13, 13, core.FirstSafe, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if naive.FalseRejects < best.FalseRejects {
		t.Errorf("FirstSafe FR %d < MostCentered FR %d — optimal policy is not optimal",
			naive.FalseRejects, best.FalseRejects)
	}
}

func TestCompareValidation(t *testing.T) {
	if _, err := analysis.Compare(nil, 13, 13, core.MostCentered, 1, 1); err == nil {
		t.Error("no datasets accepted")
	}
	d := handBuilt()
	if _, err := analysis.Compare([]*dataset.Dataset{d}, 0, 13, core.MostCentered, 1, 1); err == nil {
		t.Error("zero robust side accepted")
	}
	if _, err := analysis.Compare([]*dataset.Dataset{d}, 13, 0, core.MostCentered, 1, 1); err == nil {
		t.Error("zero centered side accepted")
	}
	orphan := handBuilt()
	orphan.Logins[0].PasswordID = 99
	if _, err := analysis.Compare([]*dataset.Dataset{orphan}, 13, 13, core.MostCentered, 1, 1); err == nil {
		t.Error("orphan login accepted")
	}
}

func TestRowPercentagesEmpty(t *testing.T) {
	var row analysis.Row
	if row.FalseAcceptPct() != 0 || row.FalseRejectPct() != 0 ||
		row.ClickFalseAcceptPct() != 0 || row.ClickFalseRejectPct() != 0 {
		t.Error("empty row should report zero percentages")
	}
}

func TestFindWorstCase(t *testing.T) {
	wc, err := analysis.FindWorstCase(36, core.MostCentered, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 1: worst case is r from one edge and 5r from the other.
	if wc.GuaranteedRPx != 6 || wc.RMaxPx != 30 {
		t.Errorf("r/rmax = %v/%v, want 6/30", wc.GuaranteedRPx, wc.RMaxPx)
	}
	short := wc.LeftSlackPx
	long := wc.RightSlackPx
	if short > long {
		short, long = long, short
	}
	if short > 12.5 {
		t.Errorf("worst case near-edge slack %.1f — should approach r=6", short)
	}
	if long < 23 {
		t.Errorf("worst case far-edge slack %.1f — should approach 5r=30", long)
	}
	if !wc.Region.Contains(wc.Origin) {
		t.Error("worst-case region excludes its origin")
	}
	if _, err := analysis.FindWorstCase(0, core.MostCentered, 1, 0); err == nil {
		t.Error("zero side accepted")
	}
}

// TestSuccessRates: centered 13x13 accepts more logins than robust
// 13x13 (false rejects) and robust 36x36 accepts at least as many as
// centered 13x13 (false accepts on top of the same guarantee).
func TestSuccessRates(t *testing.T) {
	dsets := fieldDatasets(t)
	c13, err := core.NewCentered(13)
	if err != nil {
		t.Fatal(err)
	}
	r13, err := core.NewRobust2D(13, core.MostCentered, 1)
	if err != nil {
		t.Fatal(err)
	}
	r36, err := core.NewRobust2D(36, core.MostCentered, 1)
	if err != nil {
		t.Fatal(err)
	}
	sc13, err := analysis.Success(dsets, c13, 0)
	if err != nil {
		t.Fatal(err)
	}
	sr13, err := analysis.Success(dsets, r13, 0)
	if err != nil {
		t.Fatal(err)
	}
	sr36, err := analysis.Success(dsets, r36, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("success: centered13 %.1f%%, robust13 %.1f%%, robust36 %.1f%%",
		sc13.AcceptedPct(), sr13.AcceptedPct(), sr36.AcceptedPct())
	if sr13.AcceptedPct() >= sc13.AcceptedPct() {
		t.Errorf("robust 13x13 (%.1f%%) should accept fewer logins than centered 13x13 (%.1f%%)",
			sr13.AcceptedPct(), sc13.AcceptedPct())
	}
	if sr36.AcceptedPct() < sc13.AcceptedPct() {
		t.Errorf("robust 36x36 (%.1f%%) should accept at least centered 13x13 (%.1f%%)",
			sr36.AcceptedPct(), sc13.AcceptedPct())
	}
	if sc13.AcceptedPct() < 70 {
		t.Errorf("centered 13x13 acceptance %.1f%% — error model too sloppy for a usable system", sc13.AcceptedPct())
	}
	if _, err := analysis.Success(nil, c13, 0); err == nil {
		t.Error("no datasets accepted")
	}
}

func TestRowConfidenceIntervals(t *testing.T) {
	row := analysis.Row{FalseAccepts: 10, FalseRejects: 50, Logins: 1000}
	lo, hi := row.FalseAcceptCI()
	if !(lo < 1.0 && 1.0 < hi) {
		t.Errorf("FA CI [%.2f, %.2f] excludes the point estimate 1.0", lo, hi)
	}
	lo, hi = row.FalseRejectCI()
	if !(lo < 5.0 && 5.0 < hi) {
		t.Errorf("FR CI [%.2f, %.2f] excludes the point estimate 5.0", lo, hi)
	}
	if hi-lo > 4 {
		t.Errorf("FR CI [%.2f, %.2f] implausibly wide at n=1000", lo, hi)
	}
}

// TestTablesParallelDeterministic: table rows must be identical for
// every worker count.
func TestTablesParallelDeterministic(t *testing.T) {
	dsets := fieldDatasets(t)
	t1, err := analysis.Table1(dsets, core.MostCentered, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := analysis.Table2(dsets, core.MostCentered, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		p1, err := analysis.Table1(dsets, core.MostCentered, 1, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		p2, err := analysis.Table2(dsets, core.MostCentered, 1, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(t1, p1) || !reflect.DeepEqual(t2, p2) {
			t.Errorf("workers=%d produced different tables than serial", workers)
		}
	}
}

// Package vault is the server-side "password file": a store of
// PassPoints records keyed by user name behind the Store interface.
// Three implementations ship: Vault, the original single-RWMutex map
// with an atomic file-backed save; Sharded, an fnv-partitioned store
// whose reads scale with cores; and Durable, the crash-safe backend
// that appends every mutation to a checksummed per-shard log before
// acking and replays the logs on startup. All three speak the same
// on-disk JSON snapshot format (Durable via SaveTo/ImportJSON), so a
// deployment can migrate between backends in place. Stealing this
// state is the offline-attack scenario of the paper's §5.1 — it
// exposes salts, iteration counts, clear grid identifiers and
// digests, but no click-points.
package vault

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"clickpass/internal/passpoints"
)

// ErrNotFound is returned when a user has no record.
var ErrNotFound = fmt.Errorf("vault: user not found")

// ErrExists is returned when creating a record for an existing user.
var ErrExists = fmt.Errorf("vault: user already exists")

// Vault is an in-memory store of password records, optionally backed
// by a JSON file. It is safe for concurrent use.
type Vault struct {
	mu      sync.RWMutex
	records map[string]*passpoints.Record
	path    string // empty for purely in-memory vaults
}

// New returns an empty in-memory vault.
func New() *Vault {
	return &Vault{records: make(map[string]*passpoints.Record)}
}

// Open loads a vault from path, creating an empty one if the file does
// not exist. Saves write back to the same path.
func Open(path string) (*Vault, error) {
	v := New()
	v.path = path
	recs, err := loadRecords(path)
	if err != nil {
		return nil, err
	}
	for _, r := range recs {
		v.records[r.User] = r
	}
	return v, nil
}

// loadRecords reads and validates a vault file: well-formed JSON, every
// record carries a user, no user appears twice. A missing file is an
// empty vault, not an error. Shared by every Store implementation so
// the validation rules cannot drift between backends.
func loadRecords(path string) ([]*passpoints.Record, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("vault: reading %s: %w", path, err)
	}
	recs, err := ParseRecords(data)
	if err != nil {
		return nil, fmt.Errorf("vault: %s: %w", path, err)
	}
	return recs, nil
}

// ParseRecords decodes a vault file's contents, enforcing the format
// invariants (records must name distinct, non-empty users). Exposed so
// fuzzing and external tools can exercise exactly the parser the
// stores use.
func ParseRecords(data []byte) ([]*passpoints.Record, error) {
	var recs []*passpoints.Record
	if err := json.Unmarshal(data, &recs); err != nil {
		return nil, fmt.Errorf("parsing: %w", err)
	}
	seen := make(map[string]bool, len(recs))
	for _, r := range recs {
		if r == nil {
			return nil, fmt.Errorf("contains a null record")
		}
		if r.User == "" {
			return nil, fmt.Errorf("contains a record without a user")
		}
		if seen[r.User] {
			return nil, fmt.Errorf("contains duplicate user %q", r.User)
		}
		seen[r.User] = true
	}
	return recs, nil
}

// Put stores a record for a new user.
func (v *Vault) Put(rec *passpoints.Record) error {
	if rec == nil || rec.User == "" {
		return fmt.Errorf("vault: record must have a user")
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if _, ok := v.records[rec.User]; ok {
		return ErrExists
	}
	v.records[rec.User] = rec
	return nil
}

// Replace stores a record, overwriting any existing one (password
// change).
func (v *Vault) Replace(rec *passpoints.Record) error {
	if rec == nil || rec.User == "" {
		return fmt.Errorf("vault: record must have a user")
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	v.records[rec.User] = rec
	return nil
}

// Get returns the record for user, or ErrNotFound.
func (v *Vault) Get(user string) (*passpoints.Record, error) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	rec, ok := v.records[user]
	if !ok {
		return nil, ErrNotFound
	}
	return rec, nil
}

// Delete removes a user's record; deleting a missing user is not an
// error.
func (v *Vault) Delete(user string) {
	v.mu.Lock()
	defer v.mu.Unlock()
	delete(v.records, user)
}

// Users returns all user names in sorted order.
func (v *Vault) Users() []string {
	v.mu.RLock()
	defer v.mu.RUnlock()
	users := make([]string, 0, len(v.records))
	for u := range v.records {
		users = append(users, u)
	}
	sort.Strings(users)
	return users
}

// Len returns the number of records.
func (v *Vault) Len() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return len(v.records)
}

// All returns every record sorted by user — the attacker's view after
// a password-file compromise.
func (v *Vault) All() []*passpoints.Record {
	v.mu.RLock()
	defer v.mu.RUnlock()
	recs := make([]*passpoints.Record, 0, len(v.records))
	for _, r := range v.records {
		recs = append(recs, r)
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].User < recs[j].User })
	return recs
}

// Save writes the vault to its backing file atomically (write to a
// temp file in the same directory, then rename). It fails for purely
// in-memory vaults.
func (v *Vault) Save() error {
	if v.path == "" {
		return fmt.Errorf("vault: no backing file configured")
	}
	return v.SaveTo(v.path)
}

// SaveTo writes the vault to the given path atomically.
func (v *Vault) SaveTo(path string) error {
	return writeRecords(path, v.All())
}

// writeRecords writes a record snapshot to path atomically (write to a
// temp file in the same directory, then rename). Shared by every Store
// implementation.
func writeRecords(path string, recs []*passpoints.Record) error {
	data, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		return fmt.Errorf("vault: encoding: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".vault-*")
	if err != nil {
		return fmt.Errorf("vault: temp file: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("vault: writing %s: %w", tmpName, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("vault: closing %s: %w", tmpName, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("vault: committing %s: %w", path, err)
	}
	return nil
}

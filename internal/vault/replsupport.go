package vault

// Replication support for the durable store. The repl package
// (internal/vault/repl) builds primary/backup log shipping on four
// seams exported here:
//
//   - SetReplHooks wires a commit sink (every locally committed frame
//     batch, in log order, labeled with per-shard sequence numbers)
//     and an optional quorum gate (block a mutation's ack until the
//     follower's fsync covers it).
//   - ShardSnapshot / InstallShardSnapshot move a whole shard's state
//     for follower bootstrap, reusing the checkpoint/compaction
//     machinery: an installed snapshot becomes a freshly rewritten
//     log behind a "full" generation marker, exactly what compaction
//     produces.
//   - ApplyReplFrames appends a received frame batch to a follower's
//     shard log and applies it through the same walEntry switch as
//     startup replay, so replicated state is byte-equivalent to
//     crash-recovered state by construction.
//   - Epoch / AdvanceEpoch persist the monotonic failover epoch in
//     meta.json; a deposed primary that observes a higher epoch
//     fences itself by refusing writes (see ErrNotPrimary).
//
// Health and ReopenShard round out the operational story: per-shard
// fail-stop state is observable, and a fail-stopped shard can be
// re-replayed from its durable prefix under supervision instead of
// requiring a process restart.

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"log"
	"sort"

	"clickpass/internal/passpoints"
)

// ErrNotPrimary marks mutations refused because the serving node is a
// replication follower, or a deposed primary that has fenced itself
// after observing a higher epoch. Match with errors.Is; the concrete
// type NotPrimaryError may carry the current primary's address.
var ErrNotPrimary = errors.New("vault: not the replication primary")

// NotPrimaryError is the refusal a follower (or fenced ex-primary)
// returns for mutations. errors.Is(err, ErrNotPrimary) matches it;
// Primary, when non-empty, is the advertised address of the node that
// should be written to instead — transports forward it as a redirect
// hint.
type NotPrimaryError struct {
	// Primary is the advertised client address of the current primary,
	// "" when unknown (e.g. mid-failover).
	Primary string
}

// Error implements error.
func (e *NotPrimaryError) Error() string {
	if e.Primary == "" {
		return "vault: not the replication primary"
	}
	return fmt.Sprintf("vault: not the replication primary (primary is %s)", e.Primary)
}

// Unwrap makes errors.Is(err, ErrNotPrimary) match.
func (e *NotPrimaryError) Unwrap() error { return ErrNotPrimary }

// ReplHooks connects a Durable store to a replication sender. Install
// with SetReplHooks before serving traffic.
type ReplHooks struct {
	// Commit receives every locally committed frame batch of a shard
	// in strict log order: under SyncAlways a batch is delivered only
	// after the group-commit fsync that made it durable; under the
	// other policies after the write. lastSeq is the shard-local
	// sequence number of the batch's final record — the batch holds
	// the frames for seqs (lastSeq-n+1 .. lastSeq), n its record
	// count (SplitFrames recovers n). Called with the shard's mutex
	// held: implementations must only copy the bytes out and return;
	// calling back into the store deadlocks.
	Commit func(shard int, frames []byte, lastSeq uint64)
	// QuorumWait, when non-nil, gates every mutation's ack: after the
	// record is locally durable, the writer blocks until QuorumWait
	// returns — the quorum ack mode's hook, typically waiting for a
	// follower fsync to cover (shard, seq). Called without any shard
	// lock held. An error fails that writer's call but never rolls
	// back or fail-stops the shard: the record is locally durable and
	// the stream redelivers it on reconnect, so primary and follower
	// cannot diverge — the caller merely could not be promised replica
	// coverage.
	QuorumWait func(shard int, seq uint64) error
}

// SetReplHooks installs (or, with a zero ReplHooks, removes) the
// store's replication hooks. Install before the store takes traffic:
// mutations racing the swap may ack under either regime.
func (d *Durable) SetReplHooks(h ReplHooks) {
	for i := range d.shards {
		sh := &d.shards[i]
		idx := i
		sh.mu.Lock()
		if h.Commit != nil {
			commit := h.Commit
			sh.ship = func(frames []byte, lastSeq uint64) { commit(idx, frames, lastSeq) }
		} else {
			sh.ship = nil
		}
		sh.mu.Unlock()
	}
	if h.QuorumWait != nil {
		wait := h.QuorumWait
		d.replWait.Store(&wait)
	} else {
		d.replWait.Store(nil)
	}
}

// Epoch returns the store's persisted replication epoch (0 for a
// directory that has never participated in a failover).
func (d *Durable) Epoch() uint64 { return d.epoch.Load() }

// AdvanceEpoch durably raises the store's epoch to e (meta.json is
// rewritten atomically) and returns the effective epoch afterwards.
// Epochs only move forward: e at or below the current value is a
// no-op returning the current epoch, so concurrent observers can all
// report what they saw and the maximum wins.
func (d *Durable) AdvanceEpoch(e uint64) (uint64, error) {
	d.metaMu.Lock()
	defer d.metaMu.Unlock()
	cur := d.epoch.Load()
	if e <= cur {
		return cur, nil
	}
	m, err := loadOrInitMeta(d.dir, len(d.shards))
	if err != nil {
		return cur, err
	}
	m.Epoch = e
	if err := writeMetaFile(d.dir, m); err != nil {
		return cur, err
	}
	d.epoch.Store(e)
	return e, nil
}

// ShardHealth reports the durable store's per-shard fail-stop state —
// the /metrics surface for ErrShardFailed.
type ShardHealth struct {
	// Shards is the total shard count.
	Shards int
	// Failed lists the indexes of fail-stopped shards, ascending.
	Failed []int
}

// Health returns the store's current per-shard fail-stop state.
func (d *Durable) Health() ShardHealth {
	h := ShardHealth{Shards: len(d.shards)}
	for i := range d.shards {
		sh := &d.shards[i]
		sh.mu.Lock()
		if sh.failed != nil {
			h.Failed = append(h.Failed, i)
		}
		sh.mu.Unlock()
	}
	return h
}

// ReopenShard is the supervised recovery path for a fail-stopped
// shard: it re-runs the shard's startup recovery (checkpoint + log
// replay with torn-tail truncation) against the on-disk state and, on
// success, clears the fail-stop so the shard accepts mutations again.
// The shard rolls back to its durable prefix — any write acked before
// the failing fsync whose pages the kernel then dropped is gone, which
// is exactly why the shard fail-stopped rather than trust the kernel
// (see ErrShardFailed); the operator invokes this knowingly, typically
// after the underlying volume recovered. A healthy shard is a no-op.
func (d *Durable) ReopenShard(i int) error {
	if i < 0 || i >= len(d.shards) {
		return fmt.Errorf("vault: no shard %d", i)
	}
	sh := &d.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.f == nil {
		return fmt.Errorf("vault: store is closed")
	}
	if sh.failed == nil {
		return nil
	}
	for sh.syncing {
		sh.commit.Wait()
	}
	nf, err := d.openFile(sh.path)
	if err != nil {
		return fmt.Errorf("vault: reopening %s: %w", sh.path, err)
	}
	oldF, oldRecs, oldLocks, oldKV := sh.f, sh.records, sh.lockouts, sh.kv
	sh.f = nf
	sh.records = make(map[string]*passpoints.Record, len(oldRecs))
	sh.lockouts = make(map[string]int, len(oldLocks))
	sh.kv = make(map[string][]byte, len(oldKV))
	sh.logID = 0
	sh.wbuf = nil
	sh.pending = sh.pending[:0]
	if err := sh.recover(); err != nil {
		// Replay failed: keep serving the pre-reopen acked state in
		// memory and stay fail-stopped under the new cause.
		nf.Close()
		sh.f = oldF
		sh.records, sh.lockouts, sh.kv = oldRecs, oldLocks, oldKV
		sh.failed = err
		return fmt.Errorf("vault: reopening shard %d: %w", i, err)
	}
	oldF.Close()
	sh.failed = nil
	sh.dirty = false
	sh.dirtyGen++
	log.Printf("vault: shard %s reopened after fail-stop; serving the replayed durable prefix", sh.path)
	return nil
}

// ShardSnapshot returns a consistent copy of shard i's live state —
// records sorted by user, lockout counters, side-table (KVStore)
// entries, and the shard's current mutation sequence number — the
// bootstrap payload a primary streams to a new or lagging follower.
// The shard is quiesced first so the snapshot covers exactly the
// committed prefix: every mutation with seq at or below the returned
// value is folded in, and the frame stream resuming after it
// completes the state.
func (d *Durable) ShardSnapshot(i int) ([]*passpoints.Record, map[string]int, map[string][]byte, uint64, error) {
	if i < 0 || i >= len(d.shards) {
		return nil, nil, nil, 0, fmt.Errorf("vault: no shard %d", i)
	}
	sh := &d.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.f == nil {
		return nil, nil, nil, 0, fmt.Errorf("vault: store is closed")
	}
	sh.quiesce()
	recs := make([]*passpoints.Record, 0, len(sh.records))
	for _, r := range sh.records {
		recs = append(recs, r)
	}
	sort.Slice(recs, func(a, b int) bool { return recs[a].User < recs[b].User })
	locks := make(map[string]int, len(sh.lockouts))
	for u, n := range sh.lockouts {
		locks[u] = n
	}
	kv := make(map[string][]byte, len(sh.kv))
	for k, v := range sh.kv {
		c := make([]byte, len(v))
		copy(c, v)
		kv[k] = c
	}
	return recs, locks, kv, sh.seq, nil
}

// InstallShardSnapshot replaces shard i's entire state with the given
// snapshot and rewrites its log wholesale — the follower side of
// bootstrap. The new log opens with a "full" generation marker and is
// fsynced into place exactly like a compacted log, so a crash during
// or after the install recovers to either the old or the new state,
// never a blend. A fail-stopped shard is eligible (the install writes
// a brand-new fsynced file, making durability provable again) and
// comes back healthy on success. On success every side-table entry the
// snapshot carries is delivered to the KV watch (after the shard lock
// is released), so a watcher's soft state catches up with a bootstrap
// exactly like it tracks the frame stream.
func (d *Durable) InstallShardSnapshot(i int, recs []*passpoints.Record, lockouts map[string]int, kv map[string][]byte) error {
	if i < 0 || i >= len(d.shards) {
		return fmt.Errorf("vault: no shard %d", i)
	}
	var notify map[string][]byte
	defer func() {
		if w := d.kvWatch.Load(); w != nil && notify != nil {
			for k, v := range notify {
				(*w)(k, v)
			}
		}
	}()
	sh := &d.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.f == nil {
		return fmt.Errorf("vault: store is closed")
	}
	sh.quiesce()
	sh.records = make(map[string]*passpoints.Record, len(recs))
	for _, r := range recs {
		if r != nil && r.User != "" {
			sh.records[r.User] = r
		}
	}
	sh.lockouts = make(map[string]int, len(lockouts))
	for u, n := range lockouts {
		if n > 0 {
			sh.lockouts[u] = n
		}
	}
	sh.kv = make(map[string][]byte, len(kv))
	for k, v := range kv {
		if k != "" && len(v) > 0 {
			sh.kv[k] = v
		}
	}
	sh.wbuf = nil
	sh.pending = sh.pending[:0]
	wasFailed := sh.failed
	sh.failed = nil // rewriteShardLocked must not refuse; see below
	if err := d.rewriteShardLocked(i, sh); err != nil {
		if sh.failed == nil {
			sh.failed = wasFailed
		}
		return err
	}
	notify = make(map[string][]byte, len(sh.kv))
	for k, v := range sh.kv {
		notify[k] = v
	}
	return nil
}

// scanFrames walks a concatenation of length+CRC framed log records,
// invoking fn with each whole frame and its payload. Any torn header,
// oversized length, CRC mismatch, or trailing garbage returns an
// error naming the offset — a replication receiver applies either the
// whole batch or none of it.
func scanFrames(frames []byte, fn func(frame, payload []byte) error) error {
	for off := 0; off < len(frames); {
		if len(frames)-off < walHeaderSize {
			return fmt.Errorf("vault: torn frame header at offset %d", off)
		}
		length := binary.LittleEndian.Uint32(frames[off : off+4])
		sum := binary.LittleEndian.Uint32(frames[off+4 : off+8])
		if length == 0 || length > walMaxRecord {
			return fmt.Errorf("vault: corrupt frame length %d at offset %d", length, off)
		}
		end := off + walHeaderSize + int(length)
		if end > len(frames) {
			return fmt.Errorf("vault: torn frame payload at offset %d", off)
		}
		payload := frames[off+walHeaderSize : end]
		if crc32.ChecksumIEEE(payload) != sum {
			return fmt.Errorf("vault: frame CRC mismatch at offset %d", off)
		}
		if err := fn(frames[off:end], payload); err != nil {
			return err
		}
		off = end
	}
	return nil
}

// SplitFrames splits a concatenation of framed log records (as handed
// to ReplHooks.Commit) into one subslice per whole frame, validating
// framing and CRCs. The subslices alias the input.
func SplitFrames(frames []byte) ([][]byte, error) {
	var out [][]byte
	err := scanFrames(frames, func(frame, _ []byte) error {
		out = append(out, frame)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ApplyReplFrames appends a received batch of framed mutation records
// to shard i's log and applies them to its maps — the follower's
// write path, sharing the walEntry apply switch with startup replay.
// The batch is validated in full first (framing, CRCs, JSON, no
// generation markers) and applied all-or-nothing: a corrupt batch is
// an error with no effect, so the sender can simply resend from the
// last acknowledged position. Under SyncAlways the append is fsynced
// before returning — the durability a quorum ack then vouches for.
func (d *Durable) ApplyReplFrames(i int, frames []byte) error {
	if i < 0 || i >= len(d.shards) {
		return fmt.Errorf("vault: no shard %d", i)
	}
	if len(frames) == 0 {
		return nil
	}
	var entries []walEntry
	err := scanFrames(frames, func(_, payload []byte) error {
		var e walEntry
		if err := json.Unmarshal(payload, &e); err != nil {
			return fmt.Errorf("vault: corrupt frame payload: %w", err)
		}
		if e.Op == walOpCkpt {
			// Markers are log-structure records, never shipped; one in
			// a replication batch means the sender is confused.
			return fmt.Errorf("vault: replication batch carries a generation marker")
		}
		entries = append(entries, e)
		return nil
	})
	if err != nil {
		return err
	}
	// Deliver applied side-table writes to the KV watch once every lock
	// is dropped (this defer is registered before the unlock defer, so
	// it runs after it): the watcher may call back into the store.
	applied := false
	defer func() {
		if w := d.kvWatch.Load(); w != nil && applied {
			for j := range entries {
				if entries[j].Op == walOpKV && entries[j].Key != "" {
					(*w)(entries[j].Key, entries[j].Val)
				}
			}
		}
	}()
	sh := &d.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.f == nil {
		return fmt.Errorf("vault: store is closed")
	}
	if sh.failed != nil {
		return sh.refuse()
	}
	sh.quiesce()
	if _, err := sh.f.Write(frames); err != nil {
		werr := fmt.Errorf("vault: appending replicated batch to %s: %w", sh.path, err)
		if rerr := sh.restore(sh.wsize); rerr != nil {
			sh.failStop(fmt.Errorf("%v; rollback failed: %v", werr, rerr))
		}
		return werr
	}
	sh.wsize += int64(len(frames))
	sh.lsize = sh.wsize
	for j := range entries {
		sh.apply(&entries[j])
	}
	sh.entries += len(entries)
	sh.sinceCkpt += len(entries)
	sh.ckptBytes += int64(len(frames))
	sh.seq += uint64(len(entries))
	if d.opts.Sync == SyncAlways {
		// Fsync under the lock: a follower's shard has no concurrent
		// foreground writers, so this only delays reads, and it keeps
		// the ack the caller sends upstream honest.
		if err := sh.f.Sync(); err != nil {
			sh.failStop(fmt.Errorf("vault: syncing %s: %w", sh.path, err))
			return sh.refuse()
		}
		sh.off = sh.wsize
	} else {
		sh.off = sh.wsize
		sh.dirty = true
		sh.dirtyGen++
	}
	applied = true
	return nil
}

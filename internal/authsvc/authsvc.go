// Package authsvc is the transport-agnostic core of the PassPoints
// authentication service. It owns the business rules — enroll, login,
// change, administrative reset, and the per-account failed-attempt
// lockout of §5.1 — behind a single Handle(ctx, Request) Response
// entry point over versioned, typed request/response values.
//
// Transports (the framed-TCP codec, the HTTP/JSON mux, TLS — all in
// internal/authproto) are thin codecs over this package: they decode
// bytes into a Request, call one shared Handler, and encode the
// Response back out. Cross-cutting concerns — admission through a
// shared par.Limiter, per-user rate limiting, deadline propagation,
// panic containment, metrics — compose as Middleware around the
// Service, so every front end shares one pipeline, one concurrency
// limit, and one set of counters.
package authsvc

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sync"
	"sync/atomic"

	"clickpass/internal/dataset"
	"clickpass/internal/geom"
	"clickpass/internal/passpoints"
	"clickpass/internal/vault"
)

// Version is the current wire-type version. Requests that do not carry
// an explicit version (legacy frames) are interpreted as version 1;
// requests from the future are refused with CodeInvalid rather than
// half-understood.
const Version = 1

// Op identifies a request type.
type Op string

// Service operations.
const (
	OpPing   Op = "ping"
	OpEnroll Op = "enroll"
	OpLogin  Op = "login"
	OpChange Op = "change" // replace the password after verifying the old one
	OpReset  Op = "reset"  // administrative: clear an account's lockout
	// OpValidate checks a session token minted by a successful login.
	// It is answered entirely by the WithSession middleware — a
	// signature check against in-memory keys, zero store calls — and
	// never reaches the Service; a server with no session tier refuses
	// it with CodeInvalid. Additive: legacy servers answer it as an
	// unknown op, which also reads as CodeInvalid.
	OpValidate Op = "validate"
)

// Request is one versioned service request. The zero Version means
// "version 1" so that legacy clients that never learned the field keep
// working unchanged.
type Request struct {
	Version   int             `json:"v,omitempty"`
	Op        Op              `json:"op"`
	User      string          `json:"user,omitempty"`
	Clicks    []dataset.Click `json:"clicks,omitempty"`
	NewClicks []dataset.Click `json:"new_clicks,omitempty"`
	// BudgetMs is the client's end-to-end deadline budget in
	// milliseconds — how long the client is still willing to wait,
	// queueing included. Additive (zero = no budget, legacy clients
	// never send it); WithDeadline clamps the server deadline to it, so
	// a request that burned its budget waiting for an admission slot is
	// dropped before it touches the vault instead of being served late
	// to a caller that already gave up.
	BudgetMs int `json:"budget_ms,omitempty"`
	// Token carries the session token for OpValidate. Additive; only
	// session-aware clients send it.
	Token string `json:"token,omitempty"`
}

// Code is the typed outcome of a request — the enum that replaces the
// stringly OK/Locked flags the wire protocol grew up with. Transports
// map codes to their local idiom (HTTP status, TCP response flags);
// the strings themselves are wire-stable.
type Code string

// Response codes.
const (
	// CodeOK: the request succeeded.
	CodeOK Code = "ok"
	// CodeDenied: authentication failed (wrong password — or an
	// unknown user, deliberately indistinguishable).
	CodeDenied Code = "denied"
	// CodeLocked: the account is locked out (§5.1 online-attack
	// defense); an administrative reset is required.
	CodeLocked Code = "locked"
	// CodeThrottled: the per-user rate limit rejected the request.
	CodeThrottled Code = "throttled"
	// CodeExists: enrollment refused because the user already exists.
	CodeExists Code = "exists"
	// CodeInvalid: the request is malformed (unknown op, missing user,
	// bad click geometry, unsupported version).
	CodeInvalid Code = "invalid"
	// CodeUnavailable: the service could not take the request in time
	// (admission timed out, deadline expired, shutting down).
	CodeUnavailable Code = "unavailable"
	// CodeOverloaded: the request was shed by the overload policy —
	// the admission wait queue crossed this priority's watermark, so
	// the server refused fast (sub-millisecond) rather than queueing
	// work it would eventually deadline. The response's RetryAfterMs
	// (Retry-After on HTTP) hints when to try again; retrying clients
	// must back off with jitter.
	CodeOverloaded Code = "overloaded"
	// CodeNotPrimary: this replica cannot serve the request — it is a
	// follower (or a fenced ex-primary) in a replicated vault pair.
	// The response's Primary field carries the advertised address of
	// the node that can; clients should redirect there and resend.
	// The request provably never executed: the role guard sits in
	// front of the store, so a not_primary refusal is always safe to
	// replay, idempotent or not.
	CodeNotPrimary Code = "not_primary"
	// CodeInternal: the service itself failed (storage error, panic).
	CodeInternal Code = "internal"
)

// Response is one versioned service response.
type Response struct {
	Version int    `json:"v,omitempty"`
	Code    Code   `json:"code"`
	Err     string `json:"error,omitempty"`
	// Remaining is the failed-login budget left for the account: on a
	// failure, how many attempts remain before lockout; on a
	// successful login, the full budget.
	Remaining int `json:"remaining,omitempty"`
	// RetryAfterMs accompanies CodeOverloaded: the server's hint, in
	// milliseconds, for when a retry has a chance of being admitted.
	// HTTP transports also surface it as a Retry-After header.
	RetryAfterMs int `json:"retry_after_ms,omitempty"`
	// Primary accompanies CodeNotPrimary: the advertised address of
	// the replica that can serve writes, empty if unknown.
	Primary string `json:"primary,omitempty"`
	// Token accompanies a successful login on a session-enabled
	// server: the signed session token the client presents to
	// OpValidate instead of re-running the full click-sequence verify.
	// Additive; legacy servers never send it.
	Token string `json:"token,omitempty"`
	// User accompanies a successful OpValidate: the account the token
	// names. Additive.
	User string `json:"user,omitempty"`
}

// OK reports whether the request succeeded.
func (r Response) OK() bool { return r.Code == CodeOK }

// Locked reports whether the account is locked out.
func (r Response) Locked() bool { return r.Code == CodeLocked }

// Handler executes one request. Implementations must be safe for
// concurrent use; ctx carries the request deadline and cancellation
// from whatever transport accepted it.
type Handler interface {
	Handle(ctx context.Context, req Request) Response
}

// HandlerFunc adapts a function to Handler.
type HandlerFunc func(ctx context.Context, req Request) Response

// Handle calls f.
func (f HandlerFunc) Handle(ctx context.Context, req Request) Response { return f(ctx, req) }

// Middleware wraps a Handler with one cross-cutting concern.
type Middleware func(Handler) Handler

// Chain composes middleware around h: the first element is outermost,
// so Chain(h, a, b) handles a request as a(b(h)).
func Chain(h Handler, mw ...Middleware) Handler {
	for i := len(mw) - 1; i >= 0; i-- {
		h = mw[i](h)
	}
	return h
}

// Service is the stateful core: a vault.Store of enrolled records plus
// the per-account failed-attempt counters. It implements Handler and
// is safe for concurrent use. When the store also implements
// vault.LockoutStore (the durable backend does), every counter change
// is written through to it and the counters are reloaded at startup,
// so a restart does not hand an online attacker a fresh budget.
type Service struct {
	cfg     passpoints.Config
	store   vault.Store
	locks   vault.LockoutStore // store's lockout extension, or nil
	lockout int
	// dummy is a throwaway record verified against on unknown-user
	// logins, so that path costs the same hash work as a wrong
	// password and cannot be used as a timing oracle for user
	// enumeration.
	dummy *passpoints.Record

	mu       sync.Mutex
	failures map[string]int

	// lockouts counts threshold crossings: the failed attempt that
	// moved an account from open to locked. Refusals of an
	// already-locked account are counted by Metrics.LockedRefusals;
	// this counter answers "how many accounts did attack traffic
	// actually lock" — the server-side echo of the red-team harness's
	// per-account budget exhaustion.
	lockouts atomic.Int64
}

// DefaultLockout is the failed-attempt budget per account.
const DefaultLockout = 10

// NewService validates the configuration and returns the service
// core. lockout <= 0 selects DefaultLockout. The store may be any
// vault.Store — the single-lock file vault or the sharded store.
func NewService(cfg passpoints.Config, store vault.Store, lockout int) (*Service, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if store == nil {
		return nil, fmt.Errorf("authsvc: nil store")
	}
	if lockout <= 0 {
		lockout = DefaultLockout
	}
	dummy, err := passpoints.Enroll(cfg, "\x00dummy", dummyClicks(cfg))
	if err != nil {
		return nil, fmt.Errorf("authsvc: building dummy record: %w", err)
	}
	s := &Service{
		cfg:      cfg,
		store:    store,
		lockout:  lockout,
		dummy:    dummy,
		failures: make(map[string]int),
	}
	if locks, ok := store.(vault.LockoutStore); ok {
		s.locks = locks
		// Counters written by a previous run pick up where they left
		// off — including full lockouts awaiting an admin reset.
		for user, n := range locks.Lockouts() {
			if n > 0 {
				s.failures[user] = n
			}
		}
	}
	return s, nil
}

// ReloadLockouts re-adopts persisted failed-attempt counters from the
// store, max-wins per account. NewService does this once at
// construction; a replicated deployment must do it again at failover,
// because counters that arrived over replication land in the
// follower's vault, not in the promoted process's in-memory map — a
// guesser must not get a fresh attempt budget out of a failover.
// In-memory counters are never lowered: a replica that lags behind
// this process's own observations cannot lift a lockout.
func (s *Service) ReloadLockouts() {
	if s.locks == nil {
		return
	}
	persisted := s.locks.Lockouts()
	s.mu.Lock()
	var evicted []string
	for user, n := range persisted {
		if n <= s.failures[user] {
			continue
		}
		if _, tracked := s.failures[user]; !tracked && len(s.failures) >= maxFailureEntries {
			evicted = append(evicted, s.sweepFailures()...)
		}
		s.failures[user] = n
	}
	// A user swept mid-loop can be re-adopted from the persisted map in
	// a later iteration (map order is arbitrary); durably zeroing their
	// counter then would hand a guesser a fresh attempt budget across
	// the next restart — the exact hole this reload closes. Only zero
	// users that ended the loop untracked.
	kept := evicted[:0]
	for _, u := range evicted {
		if _, tracked := s.failures[u]; !tracked {
			kept = append(kept, u)
		}
	}
	evicted = kept
	s.mu.Unlock()
	for _, u := range evicted {
		s.persistLockout(u, 0)
	}
}

// persistLockout writes user's counter through the store's lockout
// extension, if any. Always called after s.mu has been released —
// the write may be a disk flush, and the tradeoff is documented at
// the call site in fail. A storage error is logged and otherwise
// ignored: refusing logins because a counter could not be journaled
// would turn a disk hiccup into an outage, and the in-memory counter
// still protects this process's lifetime.
func (s *Service) persistLockout(user string, failures int) {
	if s.locks == nil {
		return
	}
	if err := s.locks.SetLockout(user, failures); err != nil {
		log.Printf("authsvc: persisting lockout for %q: %v", user, err)
	}
}

// dummyClicks spreads cfg.Clicks deterministic points across the image
// for the timing-equalization record.
func dummyClicks(cfg passpoints.Config) []geom.Point {
	pts := make([]geom.Point, cfg.Clicks)
	for i := range pts {
		pts[i] = geom.Pt((i*71+13)%cfg.Image.W, (i*53+29)%cfg.Image.H)
	}
	return pts
}

// Lockout returns the configured failed-attempt budget.
func (s *Service) Lockout() int { return s.lockout }

// Handle executes one request against the store. It implements
// Handler and is the innermost stage of every transport's pipeline.
func (s *Service) Handle(ctx context.Context, req Request) Response {
	if req.Version > Version {
		return Response{Version: Version, Code: CodeInvalid,
			Err: fmt.Sprintf("unsupported version %d", req.Version)}
	}
	if err := ctx.Err(); err != nil {
		return Response{Version: Version, Code: CodeUnavailable, Err: "deadline exceeded"}
	}
	switch req.Op {
	case OpPing:
		return Response{Version: Version, Code: CodeOK}
	case OpEnroll:
		return s.enroll(ctx, req)
	case OpLogin:
		return s.login(ctx, req)
	case OpChange:
		return s.change(ctx, req)
	case OpReset:
		s.mu.Lock()
		_, tracked := s.failures[req.User]
		if tracked {
			delete(s.failures, req.User)
		}
		s.mu.Unlock()
		if tracked {
			s.persistLockout(req.User, 0)
		}
		return Response{Version: Version, Code: CodeOK}
	case OpValidate:
		// WithSession answers this before it ever reaches the Service;
		// getting here means the server has no session tier.
		return Response{Version: Version, Code: CodeInvalid,
			Err: "session validation not enabled on this server"}
	default:
		return Response{Version: Version, Code: CodeInvalid,
			Err: fmt.Sprintf("unknown op %q", req.Op)}
	}
}

// notPrimary maps a replicated store's role refusal to the typed
// response, carrying the redirect address when the store knows one.
// Returns ok=false for any other error.
func notPrimary(err error) (Response, bool) {
	var npe *vault.NotPrimaryError
	if !errors.As(err, &npe) {
		return Response{}, false
	}
	return Response{Version: Version, Code: CodeNotPrimary,
		Err: "not the primary replica", Primary: npe.Primary}, true
}

func (s *Service) enroll(ctx context.Context, req Request) Response {
	if req.User == "" {
		return Response{Version: Version, Code: CodeInvalid, Err: "user required"}
	}
	if resp, expired := deadlineCheck(ctx); expired {
		return resp
	}
	rec, err := passpoints.Enroll(s.cfg, req.User, clicksToPoints(req.Clicks))
	if err != nil {
		return Response{Version: Version, Code: CodeInvalid, Err: err.Error()}
	}
	if err := s.store.Put(rec); err != nil {
		if errors.Is(err, vault.ErrExists) {
			return Response{Version: Version, Code: CodeExists, Err: "user already enrolled"}
		}
		if resp, ok := notPrimary(err); ok {
			return resp
		}
		return Response{Version: Version, Code: CodeInternal, Err: err.Error()}
	}
	return Response{Version: Version, Code: CodeOK}
}

// login authenticates one attempt. Unknown users and wrong passwords
// share the failure path end to end: both consume a lockout attempt,
// both return byte-identical responses, and both perform one full
// digest comparison — the unknown-user branch against the dummy
// record — so response timing does not reveal which names exist.
func (s *Service) login(ctx context.Context, req Request) Response {
	if req.User == "" {
		return Response{Version: Version, Code: CodeInvalid, Err: "user required"}
	}
	if resp, expired := deadlineCheck(ctx); expired {
		return resp
	}
	s.mu.Lock()
	failed := s.failures[req.User]
	s.mu.Unlock()
	if failed >= s.lockout {
		return Response{Version: Version, Code: CodeLocked, Err: "account locked"}
	}
	rec, err := s.store.Get(req.User)
	if errors.Is(err, vault.ErrNotFound) {
		// Equivalent work to the known-user path: a real hash compare,
		// discarded. The response is built by the same fail() as a
		// wrong password.
		_, _ = passpoints.Verify(s.cfg, s.dummy, clicksToPoints(req.Clicks))
		return s.fail(req.User)
	}
	if err != nil {
		// A storage fault is not a wrong password: it must neither leak
		// an attempt from the account's lockout budget nor (under a
		// flaky store) deny a correct credential as if it were guessed
		// wrong. Only ErrNotFound rides the indistinguishable fail path
		// above; infrastructure errors surface as CodeInternal — except
		// a replica's role refusal (a stale follower read, or a fenced
		// ex-primary), which redirects the client to the primary.
		if resp, ok := notPrimary(err); ok {
			return resp
		}
		return Response{Version: Version, Code: CodeInternal, Err: "storage error"}
	}
	ok, err := passpoints.Verify(s.cfg, rec, clicksToPoints(req.Clicks))
	if err != nil || !ok {
		return s.fail(req.User)
	}
	s.mu.Lock()
	_, tracked := s.failures[req.User]
	if tracked {
		delete(s.failures, req.User)
	}
	s.mu.Unlock()
	if tracked {
		s.persistLockout(req.User, 0)
	}
	return Response{Version: Version, Code: CodeOK, Remaining: s.lockout}
}

// change replaces an account's password after verifying the old one.
// Failed old-password checks consume lockout attempts exactly like
// failed logins, so change cannot be used to bypass rate limiting.
func (s *Service) change(ctx context.Context, req Request) Response {
	resp := s.login(ctx, Request{Op: OpLogin, User: req.User, Clicks: req.Clicks})
	if !resp.OK() {
		return resp
	}
	if resp, expired := deadlineCheck(ctx); expired {
		return resp
	}
	rec, err := passpoints.Enroll(s.cfg, req.User, clicksToPoints(req.NewClicks))
	if err != nil {
		return Response{Version: Version, Code: CodeInvalid, Err: err.Error()}
	}
	if err := s.store.Replace(rec); err != nil {
		if resp, ok := notPrimary(err); ok {
			return resp
		}
		return Response{Version: Version, Code: CodeInternal, Err: err.Error()}
	}
	return Response{Version: Version, Code: CodeOK}
}

// maxFailureEntries caps the failed-attempt map: login floods with
// attacker-chosen (mostly nonexistent) user names must not grow
// server memory without bound — the same discipline as the rate
// limiter's maxRateBuckets.
const maxFailureEntries = 1 << 16

func (s *Service) fail(user string) Response {
	s.mu.Lock()
	var evicted []string
	if _, tracked := s.failures[user]; !tracked && len(s.failures) >= maxFailureEntries {
		evicted = s.sweepFailures()
	}
	s.failures[user]++
	n := s.failures[user]
	remaining := s.lockout - n
	s.mu.Unlock()
	// All journaled counter writes happen after releasing s.mu: on a
	// durable fsync=always store each write is a disk flush, and
	// holding the one service-wide mutex across it would serialize
	// every login — counter clears included — behind attacker-paced
	// failures (and a sweep's 64k eviction zeroes would stall the
	// service for seconds). The cost is ordering: two racing updates
	// for one user may journal out of order, so a restart can see a
	// counter one step stale — never a lifted lockout, since the
	// in-memory map (which is what locks accounts out) is updated
	// under the lock above.
	s.persistLockout(user, n)
	if len(evicted) > 0 {
		// A sweep evicts up to 64k entries; journaling their zeroes
		// inline would pin this one request (and the WAL shard locks)
		// for seconds on an fsync=always store, so hand the batch to a
		// background goroutine. Losing the zeroes to a crash mid-batch
		// only resurrects partial counters on the next restart.
		go func() {
			for _, u := range evicted {
				s.persistLockout(u, 0)
			}
		}()
	}
	if remaining <= 0 {
		if n == s.lockout {
			// Exactly the crossing attempt — racing failures past the
			// threshold (n > lockout) refuse without re-counting.
			s.lockouts.Add(1)
		}
		return Response{Version: Version, Code: CodeLocked, Err: "account locked"}
	}
	return Response{Version: Version, Code: CodeDenied, Err: "login failed", Remaining: remaining}
}

// LockoutsTriggered returns how many times a failed attempt crossed an
// account's lockout threshold since this service started (restarts and
// admin resets re-arm accounts, so the counter can exceed the number
// of currently locked accounts).
func (s *Service) LockoutsTriggered() int64 { return s.lockouts.Load() }

// sweepFailures evicts sub-lockout counters when the map is at
// capacity, called with s.mu held; it returns the evicted users so
// the caller can persist their zeroes outside the lock. Locked
// accounts are never evicted — a name flood cannot lift an existing
// lockout — at the cost of resetting partial counters (an attacker
// mid-guess gets fresh attempts but pays the flood to earn them). If
// every entry is locked the map may exceed the cap; each such entry
// cost the flooder a full lockout's worth of requests, so growth is
// at least lockout-fold more expensive than the counter flood this
// bounds.
func (s *Service) sweepFailures() []string {
	var evicted []string
	for user, n := range s.failures {
		if n < s.lockout {
			delete(s.failures, user)
			if s.locks != nil {
				evicted = append(evicted, user)
			}
		}
	}
	return evicted
}

// deadlineCheck refuses a request whose context has already expired —
// the cooperative deadline gate placed before each hash-heavy stage.
// (It cannot interrupt a blocked store call; see WithDeadline.)
func deadlineCheck(ctx context.Context) (Response, bool) {
	if ctx.Err() != nil {
		return Response{Version: Version, Code: CodeUnavailable, Err: "deadline exceeded"}, true
	}
	return Response{}, false
}

func clicksToPoints(clicks []dataset.Click) []geom.Point {
	pts := make([]geom.Point, len(clicks))
	for i, c := range clicks {
		pts[i] = c.Point()
	}
	return pts
}

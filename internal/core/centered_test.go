package core

import (
	"testing"
	"testing/quick"

	"clickpass/internal/fixed"
)

// TestPaperWorkedExample reproduces §3.1: x = 13, r = 5.5 gives i = 0,
// d = 7.5; a login at x' = 10 maps to i' = 0 and is accepted.
func TestPaperWorkedExample(t *testing.T) {
	c := Centered1D{R: fixed.FromHalfPixels(11)} // r = 5.5
	x := fixed.FromPixels(13)
	i, d := c.Discretize(x)
	if i != 0 {
		t.Errorf("i = %d, want 0", i)
	}
	if d != fixed.FromHalfPixels(15) { // 7.5px
		t.Errorf("d = %s, want 7.5", d)
	}
	if got := c.Locate(fixed.FromPixels(10), d); got != 0 {
		t.Errorf("i' = %d, want 0", got)
	}
	if !c.Accepts(i, d, fixed.FromPixels(10)) {
		t.Error("x' = 10 should be accepted")
	}
}

// TestCenteredExactTolerance1D verifies the defining property: for
// r = 6.5 (13-pixel segments) an integer-pixel re-entry is accepted iff
// it is within 6 pixels of the original.
func TestCenteredExactTolerance1D(t *testing.T) {
	c := Centered1D{R: fixed.FromHalfPixels(13)}
	for x := -30; x <= 30; x++ {
		i, d := c.Discretize(fixed.FromPixels(x))
		for dx := -10; dx <= 10; dx++ {
			got := c.Accepts(i, d, fixed.FromPixels(x+dx))
			want := dx >= -6 && dx <= 6
			if got != want {
				t.Fatalf("x=%d dx=%d: accepted=%v, want %v", x, dx, got, want)
			}
		}
	}
}

// TestCenteredNoBoundaryPixels: with half-pixel r the acceptance
// boundary falls between pixels, so the accepted set is symmetric even
// though segments are half-open.
func TestCenteredExactToleranceEvenSide(t *testing.T) {
	// A 24-pixel segment (r = 12.0) has integer boundaries: the
	// half-open interval accepts -12..+11. This asymmetry is why the
	// paper prefers odd sides (2r+1 pixels).
	c := Centered1D{R: fixed.FromPixels(12)}
	i, d := c.Discretize(fixed.FromPixels(100))
	for dx := -14; dx <= 14; dx++ {
		got := c.Accepts(i, d, fixed.FromPixels(100+dx))
		want := dx >= -12 && dx <= 11
		if got != want {
			t.Fatalf("dx=%d: accepted=%v, want %v", dx, got, want)
		}
	}
}

// Property: the original point is exactly centered in its segment.
func TestCenteringProperty(t *testing.T) {
	f := func(xRaw int32, rRaw uint16) bool {
		r := fixed.Sub(int64(rRaw%600) + 1)
		c := Centered1D{R: r}
		x := fixed.Sub(xRaw)
		i, d := c.Discretize(x)
		if d < 0 || d >= c.SegLen() {
			return false
		}
		lo, hi := c.Segment(i, d)
		if x-lo != r || hi-x != r {
			return false
		}
		return c.Center(i, d) == x
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: acceptance is exactly the half-open interval [x-r, x+r) in
// sub-pixel space, for arbitrary (not just pixel-aligned) coordinates.
func TestCenteredHalfOpenInterval(t *testing.T) {
	f := func(xRaw int32, rRaw uint16, dxRaw int16) bool {
		r := fixed.Sub(int64(rRaw%600) + 1)
		c := Centered1D{R: r}
		x := fixed.Sub(xRaw)
		dx := fixed.Sub(dxRaw)
		i, d := c.Discretize(x)
		got := c.Accepts(i, d, x+dx)
		want := dx >= -r && dx < r
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// Property: segment indices are monotone in x and adjacent segments
// tile the line with no gaps.
func TestCenteredSegmentsTile(t *testing.T) {
	c := Centered1D{R: fixed.FromHalfPixels(13)}
	_, d := c.Discretize(fixed.FromPixels(40))
	prevHi := fixed.Sub(0)
	for i := int64(-3); i <= 3; i++ {
		lo, hi := c.Segment(i, d)
		if hi-lo != c.SegLen() {
			t.Fatalf("segment %d has length %v", i, hi-lo)
		}
		if i > -3 && lo != prevHi {
			t.Fatalf("segment %d does not abut previous (lo=%v prevHi=%v)", i, lo, prevHi)
		}
		prevHi = hi
	}
}

func TestNegativeCoordinates(t *testing.T) {
	// The paper notes i = -1 occurs when x is within r of the origin.
	c := Centered1D{R: fixed.FromHalfPixels(11)} // r = 5.5
	i, d := c.Discretize(fixed.FromPixels(2))
	if i != -1 {
		t.Errorf("x=2, r=5.5: i = %d, want -1", i)
	}
	if d < 0 || d >= c.SegLen() {
		t.Errorf("offset %v out of range", d)
	}
	if !c.Accepts(i, d, fixed.FromPixels(0)) {
		t.Error("x'=0 within 5.5 of x=2 should be accepted")
	}
}

func TestOffsetCount(t *testing.T) {
	c := Centered1D{R: fixed.FromHalfPixels(19)} // r=9.5, segment 19px
	if got := c.OffsetCount(); got != 19 {
		t.Errorf("OffsetCount = %d, want 19 (paper: 19^2 = 361 grids)", got)
	}
}

func TestOffsetCountPanicsOnFractionalSegment(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-pixel segment length")
		}
	}()
	Centered1D{R: fixed.Sub(10)}.OffsetCount() // segment 20/6 px
}

func TestCenteredNDRoundTrip(t *testing.T) {
	c := CenteredND{R: fixed.FromHalfPixels(13), Dims: 3}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	coords := []fixed.Sub{
		fixed.FromPixels(100), fixed.FromPixels(55), fixed.FromPixels(7),
	}
	idx, off := c.Discretize(coords)
	if !c.Accepts(idx, off, coords) {
		t.Fatal("original point must be accepted")
	}
	// Perturb one axis beyond tolerance.
	far := append([]fixed.Sub(nil), coords...)
	far[2] += fixed.FromPixels(7)
	if c.Accepts(idx, off, far) {
		t.Error("7px displacement with r=6.5 must be rejected")
	}
	near := append([]fixed.Sub(nil), coords...)
	near[0] -= fixed.FromPixels(6)
	near[1] += fixed.FromPixels(6)
	if !c.Accepts(idx, off, near) {
		t.Error("6px displacement with r=6.5 must be accepted")
	}
}

func TestCenteredNDValidate(t *testing.T) {
	if err := (CenteredND{R: 0, Dims: 2}).Validate(); err == nil {
		t.Error("zero tolerance should fail validation")
	}
	if err := (CenteredND{R: 6, Dims: 0}).Validate(); err == nil {
		t.Error("zero dims should fail validation")
	}
}

func TestCenteredNDDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for wrong dimensionality")
		}
	}()
	c := CenteredND{R: fixed.FromPixels(5), Dims: 2}
	c.Discretize([]fixed.Sub{1, 2, 3})
}

package dataset

import (
	"bytes"
	"strings"
	"testing"

	"clickpass/internal/geom"
)

func sample() *Dataset {
	return &Dataset{
		Image: "cars", Width: 451, Height: 331,
		Passwords: []Password{
			{ID: 1, User: "p1", Image: "cars", Clicks: []Click{{10, 20}, {30, 40}}},
			{ID: 2, User: "p2", Image: "cars", Clicks: []Click{{100, 200}, {300, 150}}},
		},
		Logins: []Login{
			{PasswordID: 1, Attempt: 0, Clicks: []Click{{11, 19}, {29, 41}}},
			{PasswordID: 2, Attempt: 0, Clicks: []Click{{99, 203}, {301, 149}}},
		},
	}
}

func TestValidateAcceptsGood(t *testing.T) {
	if err := sample().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBad(t *testing.T) {
	mutations := map[string]func(*Dataset){
		"empty image":      func(d *Dataset) { d.Width = 0 },
		"dup password id":  func(d *Dataset) { d.Passwords[1].ID = 1 },
		"no clicks":        func(d *Dataset) { d.Passwords[0].Clicks = nil },
		"click outside":    func(d *Dataset) { d.Passwords[0].Clicks[0].X = 500 },
		"orphan login":     func(d *Dataset) { d.Logins[0].PasswordID = 99 },
		"count mismatch":   func(d *Dataset) { d.Logins[0].Clicks = d.Logins[0].Clicks[:1] },
		"login outside":    func(d *Dataset) { d.Logins[1].Clicks[0].Y = -1 },
		"negative click x": func(d *Dataset) { d.Passwords[1].Clicks[1].X = -4 },
	}
	for name, mutate := range mutations {
		d := sample()
		mutate(d)
		if err := d.Validate(); err == nil {
			t.Errorf("%s: expected validation error", name)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	d := sample()
	var buf bytes.Buffer
	if err := d.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Image != "cars" || len(back.Passwords) != 2 || len(back.Logins) != 2 {
		t.Errorf("round trip mangled dataset: %+v", back)
	}
	if back.Passwords[0].Clicks[1] != (Click{30, 40}) {
		t.Error("click coordinates mangled")
	}
}

func TestReadJSONRejectsInvalid(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader(`{"image":"x","width":0}`)); err == nil {
		t.Error("invalid dataset accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{`)); err == nil {
		t.Error("bad json accepted")
	}
}

func TestCSVOutput(t *testing.T) {
	d := sample()
	var clicks, logins bytes.Buffer
	if err := d.WriteClicksCSV(&clicks); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteLoginsCSV(&logins); err != nil {
		t.Fatal(err)
	}
	wantClicks := 1 + 4 // header + 2 passwords x 2 clicks
	if got := strings.Count(clicks.String(), "\n"); got != wantClicks {
		t.Errorf("clicks csv has %d lines, want %d", got, wantClicks)
	}
	if !strings.Contains(clicks.String(), "1,p1,cars,0,10,20") {
		t.Errorf("clicks csv missing expected row:\n%s", clicks.String())
	}
	if !strings.Contains(logins.String(), "2,0,1,301,149") {
		t.Errorf("logins csv missing expected row:\n%s", logins.String())
	}
}

func TestPasswordByID(t *testing.T) {
	d := sample()
	if p := d.PasswordByID(2); p == nil || p.User != "p2" {
		t.Errorf("PasswordByID(2) = %v", p)
	}
	if p := d.PasswordByID(42); p != nil {
		t.Error("missing ID should return nil")
	}
}

func TestPointsConversion(t *testing.T) {
	p := Password{Clicks: []Click{{3, 4}}}
	if p.Points()[0] != geom.Pt(3, 4) {
		t.Error("Password.Points broken")
	}
	l := Login{Clicks: []Click{{5, 6}}}
	if l.Points()[0] != geom.Pt(5, 6) {
		t.Error("Login.Points broken")
	}
	if FromPoint(geom.Pt(7, 8)) != (Click{7, 8}) {
		t.Error("FromPoint broken")
	}
}

func TestMerge(t *testing.T) {
	a := sample()
	b := &Dataset{
		Image: "cars", Width: 451, Height: 331,
		Passwords: []Password{
			{ID: 3, User: "p3", Image: "cars", Clicks: []Click{{5, 5}}},
		},
		Logins: []Login{
			{PasswordID: 3, Clicks: []Click{{6, 6}}},
		},
	}
	merged, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.Passwords) != 3 || len(merged.Logins) != 3 {
		t.Errorf("merge sizes wrong: %d passwords, %d logins",
			len(merged.Passwords), len(merged.Logins))
	}
	if _, err := Merge(); err == nil {
		t.Error("empty merge accepted")
	}
	c := sample()
	c.Width = 640
	if _, err := Merge(a, c); err == nil {
		t.Error("size mismatch accepted")
	}
	// Duplicate IDs across parts must fail validation.
	if _, err := Merge(a, sample()); err == nil {
		t.Error("duplicate password ids accepted")
	}
}

func TestSize(t *testing.T) {
	if sample().Size() != (geom.Size{W: 451, H: 331}) {
		t.Error("Size() broken")
	}
}

package loadtest

import (
	"fmt"
	"testing"
	"time"

	"clickpass/internal/authsvc"
	"clickpass/internal/vault"
)

// stormServer starts a server tuned for overload tests: a slow store
// (so requests genuinely overlap), a small admission cap, and the
// bounded-queue overload policy. Storms drive the HTTP front: the TCP
// front deliberately pins one worker per connection (kernel-side
// backpressure — a 10x herd of long-lived TCP connections just queues
// in the accept backlog), so the request-level overload policy is
// observable only through a front that multiplexes connections.
func stormServer(tb testing.TB, maxConns, queue int) (baseURL, addr string, shutdown func()) {
	tb.Helper()
	srv, addr, stopSrv := startServer(tb, slowStore{vault.New(), 2 * time.Millisecond}, maxConns)
	srv.SetOverload(authsvc.OverloadPolicy{Queue: queue})
	baseURL, closeHTTP := startHTTP(tb, srv)
	return baseURL, addr, func() {
		closeHTTP()
		stopSrv()
	}
}

// stormLogins builds the all-logins request mix (high priority — the
// traffic the policy protects).
func stormLogins(users []string) func(int, int) authsvc.Request {
	return func(client, op int) authsvc.Request {
		u := users[client%len(users)]
		return authsvc.Request{Op: authsvc.OpLogin, User: u, Clicks: userClicks(u)}
	}
}

// TestStormSmoke is the CI acceptance point for overload robustness: a
// login storm at 10x the server's concurrency capacity must (1)
// engage the shedding path, (2) refuse fast — shed latency nowhere
// near a service time — (3) keep accepted-request latency in the same
// regime as an uncontended run, and (4) hold goodput near capacity:
// overload must cost the refused requests, not the served ones. The
// bounds carry CI slack; PERFORMANCE.md records the tight local
// numbers.
func TestStormSmoke(t *testing.T) {
	const maxConns = 4
	baseURL, addr, shutdown := stormServer(t, maxConns, 2*maxConns)
	defer shutdown()
	users := enrollUsers(t, addr, maxConns)

	// Uncontended baseline: exactly capacity clients, no queueing to
	// speak of — the reference for both goodput and latency.
	base, err := Storm(StormConfig{
		Dial:         HTTPTransport(baseURL),
		Clients:      maxConns,
		OpsPerClient: 30,
		Request:      stormLogins(users),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("baseline: %s", base)
	if base.Errors != 0 || base.Shed != 0 || base.Accepted != maxConns*30 {
		t.Fatalf("baseline not clean: %s", base)
	}

	// The storm: 10x oversubscription, every client reconnect-hammering.
	storm, err := Storm(StormConfig{
		Dial:         HTTPTransport(baseURL),
		Clients:      10 * maxConns,
		OpsPerClient: 15,
		Request:      stormLogins(users),
		Timeout:      2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("storm:    %s", storm)

	if storm.Errors != 0 {
		t.Errorf("storm saw %d transport errors", storm.Errors)
	}
	if storm.Shed == 0 {
		t.Errorf("10x oversubscription never shed; the overload policy did not engage")
	}
	if storm.Accepted == 0 {
		t.Fatalf("storm served nothing: %s", storm)
	}
	// Refusals must be cheap. Server-side a shed is microseconds; what
	// the client observes also includes the 10x herd's simultaneous
	// connection setup, which lands in the tail. So the median carries
	// the "sub-service-time refusal" assertion (locally it is well
	// under the 2ms store delay) and the p99 only guards against
	// refusals queueing behind real work. raceSlack widens the clocks
	// under the race detector's instrumentation overhead.
	if storm.ShedP50 > 5*raceSlack*time.Millisecond {
		t.Errorf("shed p50 = %s; refusals cost more than served work", storm.ShedP50)
	}
	if storm.ShedP99 > 100*raceSlack*time.Millisecond {
		t.Errorf("shed p99 = %s; refusals are queueing somewhere", storm.ShedP99)
	}
	// Accepted-request latency stays in the uncontended regime: the
	// bounded queue (not the 10x demand) sets the ceiling. The tight
	// local ratio is ~3x (PERFORMANCE.md); 8x absorbs CI noise.
	if limit := 8*base.AccP99 + 20*raceSlack*time.Millisecond; storm.AccP99 > limit {
		t.Errorf("storm accepted p99 = %s, baseline %s; queueing is unbounded (limit %s)",
			storm.AccP99, base.AccP99, limit)
	}
	// Goodput holds near capacity — the served half must not pay for
	// the refused half. Tight local ratio ~0.9+; 0.5 is the CI floor.
	if storm.Goodput() < 0.5*base.Goodput() {
		t.Errorf("storm goodput %.0f/s vs baseline %.0f/s; shedding is starving served traffic",
			storm.Goodput(), base.Goodput())
	}
}

// TestStormRetryingClientsRecover: the same storm through RetryClient
// wrappers — sheds are retried with jittered backoff honoring
// Retry-After, so nearly every op eventually lands without melting the
// server.
func TestStormRetryingClientsRecover(t *testing.T) {
	const maxConns = 4
	baseURL, addr, shutdown := stormServer(t, maxConns, 2*maxConns)
	defer shutdown()
	users := enrollUsers(t, addr, maxConns)

	dial := HTTPTransport(baseURL)
	res, err := Storm(StormConfig{
		Dial: func(i int) (authsvc.Client, error) {
			inner, err := dial(i)
			if err != nil {
				return nil, err
			}
			return authsvc.NewRetryClient(inner, authsvc.RetryPolicy{
				MaxAttempts: 8,
				BaseDelay:   2 * time.Millisecond,
				MaxDelay:    100 * time.Millisecond,
			}), nil
		},
		Clients:      5 * maxConns,
		OpsPerClient: 8,
		Request:      stormLogins(users),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("retrying storm: %s", res)
	if res.Errors != 0 {
		t.Errorf("retrying storm saw %d errors", res.Errors)
	}
	// A shed only surfaces here when all 8 attempts were refused;
	// backoff should make that rare and acceptance dominant.
	if res.Accepted < res.Ops*8/10 {
		t.Errorf("retrying clients landed only %d/%d ops", res.Accepted, res.Ops)
	}
}

// BenchmarkLoginStorm measures the overload numbers PERFORMANCE.md
// records: goodput under a 10x login storm, shed-response latency, and
// accepted-request p99 against the uncontended baseline (base_p99).
//
//	go test ./internal/loadtest -run NONE -bench LoginStorm -benchtime 2000x
func BenchmarkLoginStorm(b *testing.B) {
	const maxConns = 8
	for _, over := range []int{1, 10} {
		b.Run(fmt.Sprintf("over=%dx", over), func(b *testing.B) {
			baseURL, addr, shutdown := stormServer(b, maxConns, 4*maxConns)
			defer shutdown()
			users := enrollUsers(b, addr, maxConns)
			clients := over * maxConns
			ops := b.N/clients + 1
			b.ResetTimer()
			res, err := Storm(StormConfig{
				Dial:         HTTPTransport(baseURL),
				Clients:      clients,
				OpsPerClient: ops,
				Request:      stormLogins(users),
				Timeout:      5 * time.Second,
			})
			b.StopTimer()
			if err != nil {
				b.Fatal(err)
			}
			if res.Errors != 0 {
				b.Fatalf("storm errors: %d (%s)", res.Errors, res)
			}
			b.ReportMetric(res.Goodput(), "goodput/s")
			b.ReportMetric(res.ShedRate()*100, "shed%")
			b.ReportMetric(float64(res.AccP99.Microseconds()), "acc-p99-µs")
			if res.Shed > 0 {
				b.ReportMetric(float64(res.ShedP99.Microseconds()), "shed-p99-µs")
			}
		})
	}
}

package authsvc

import (
	"context"
	"errors"
	"testing"
	"time"
)

// scriptClient replays a fixed sequence of outcomes, recording every
// request it was handed.
type scriptClient struct {
	script []scriptStep
	calls  []Request
}

type scriptStep struct {
	resp Response
	err  error
}

func (s *scriptClient) Do(ctx context.Context, req Request) (Response, error) {
	s.calls = append(s.calls, req)
	i := len(s.calls) - 1
	if i >= len(s.script) {
		i = len(s.script) - 1
	}
	return s.script[i].resp, s.script[i].err
}

func (s *scriptClient) Close() error { return nil }

// newTestRetry wraps a script in a RetryClient with deterministic
// sleep (recorded, never actually slept) and rnd.
func newTestRetry(script []scriptStep, pol RetryPolicy) (*RetryClient, *scriptClient, *[]time.Duration) {
	inner := &scriptClient{script: script}
	c := NewRetryClient(clientFromDoer(inner), pol)
	slept := &[]time.Duration{}
	c.sleep = func(ctx context.Context, d time.Duration) error {
		*slept = append(*slept, d)
		return ctx.Err()
	}
	c.rnd = func() float64 { return 0.5 }
	return c, inner, slept
}

// clientFromDoer promotes a Doer+Close into the full Client surface.
func clientFromDoer(s *scriptClient) Client {
	w := &doerClient{inner: s}
	w.Ops = Ops{Doer: s}
	return w
}

type doerClient struct {
	Ops
	inner *scriptClient
}

func (d *doerClient) Close() error { return d.inner.Close() }

var overloadedResp = Response{Version: Version, Code: CodeOverloaded, Err: "overloaded", RetryAfterMs: 40}

// TestRetryOverloadedRetriesAllOps: a shed request provably never
// executed, so even non-idempotent ops retry — and the backoff honors
// the server's Retry-After floor.
func TestRetryOverloadedRetriesAllOps(t *testing.T) {
	script := []scriptStep{
		{resp: overloadedResp},
		{resp: overloadedResp},
		{resp: Response{Version: Version, Code: CodeOK}},
	}
	c, inner, slept := newTestRetry(script, RetryPolicy{BaseDelay: 10 * time.Millisecond})
	resp, err := c.Do(context.Background(), Request{Op: OpEnroll, User: "u"})
	if err != nil || resp.Code != CodeOK {
		t.Fatalf("Do = %+v, %v; want CodeOK", resp, err)
	}
	if len(inner.calls) != 3 {
		t.Fatalf("attempts = %d, want 3", len(inner.calls))
	}
	// rnd=0.5: attempt 1 window 10ms → 5ms, attempt 2 window 20ms →
	// 10ms — both below the 40ms Retry-After floor.
	for i, d := range *slept {
		if d != 40*time.Millisecond {
			t.Errorf("sleep %d = %s, want the 40ms Retry-After floor", i, d)
		}
	}
	st := c.Stats()
	if st.Retries != 2 || st.Overloaded != 2 {
		t.Errorf("stats = %+v, want 2 retries / 2 overloaded", st)
	}
}

// TestRetryTransportIdempotentOnly: a broken connection cannot prove
// an enroll did not commit — only idempotent ops are re-sent.
func TestRetryTransportIdempotentOnly(t *testing.T) {
	boom := errors.New("connection reset")
	for _, tc := range []struct {
		op       Op
		attempts int
	}{
		{OpLogin, 3}, {OpPing, 3}, {OpReset, 3}, // idempotent: retried
		{OpEnroll, 1}, {OpChange, 1}, // not provably unexecuted: one shot
	} {
		script := []scriptStep{{err: boom}, {err: boom}, {err: boom}}
		c, inner, _ := newTestRetry(script, RetryPolicy{MaxAttempts: 3})
		_, err := c.Do(context.Background(), Request{Op: tc.op, User: "u"})
		if !errors.Is(err, boom) {
			t.Errorf("%s: err = %v, want the transport error", tc.op, err)
		}
		if len(inner.calls) != tc.attempts {
			t.Errorf("%s: attempts = %d, want %d", tc.op, len(inner.calls), tc.attempts)
		}
	}
}

// TestRetryBackoffFullJitter: the sleep is drawn from [0, base<<n)
// capped at MaxDelay, never a fixed schedule.
func TestRetryBackoffFullJitter(t *testing.T) {
	c := NewRetryClient(clientFromDoer(&scriptClient{script: []scriptStep{{}}}),
		RetryPolicy{BaseDelay: 10 * time.Millisecond, MaxDelay: 35 * time.Millisecond})
	c.rnd = func() float64 { return 0.999 }
	for _, tc := range []struct {
		attempt int
		window  time.Duration
	}{
		{1, 10 * time.Millisecond},
		{2, 20 * time.Millisecond},
		{3, 35 * time.Millisecond}, // 40ms capped
		{9, 35 * time.Millisecond},
	} {
		d := c.backoff(tc.attempt, 0)
		if d < 0 || d >= tc.window {
			t.Errorf("backoff(%d) = %s, want in [0, %s)", tc.attempt, d, tc.window)
		}
	}
	c.rnd = func() float64 { return 0 }
	if d := c.backoff(1, 7*time.Millisecond); d != 7*time.Millisecond {
		t.Errorf("floor not honored: %s", d)
	}
}

// TestRetryContextCanceledReturnsImmediately: the caller giving up is
// not a server failure — no retry, no breaker blame.
func TestRetryContextCanceledReturnsImmediately(t *testing.T) {
	script := []scriptStep{{err: context.Canceled}}
	c, inner, _ := newTestRetry(script, RetryPolicy{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := c.Do(ctx, Request{Op: OpLogin, User: "u"})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(inner.calls) != 1 {
		t.Errorf("attempts = %d, want 1", len(inner.calls))
	}
	if st := c.Stats(); st.BreakerOpens != 0 {
		t.Errorf("cancellation opened the breaker: %+v", st)
	}
}

// TestRetryBreakerOpensAndHalfOpens: consecutive retryable failures
// open the circuit; calls then fail fast locally; after the cooldown
// exactly one half-open probe goes out, and its success closes the
// circuit again.
func TestRetryBreakerOpensAndHalfOpens(t *testing.T) {
	pol := RetryPolicy{
		MaxAttempts:      1, // isolate breaker behavior from retry loops
		BreakerThreshold: 3,
		BreakerCooldown:  50 * time.Millisecond,
	}
	inner := &scriptClient{script: []scriptStep{{resp: overloadedResp}}}
	c := NewRetryClient(clientFromDoer(inner), pol)
	c.sleep = func(ctx context.Context, d time.Duration) error { return ctx.Err() }
	c.rnd = func() float64 { return 0 }

	// Three overloaded answers in a row open the circuit.
	for i := 0; i < 3; i++ {
		if resp, err := c.Do(context.Background(), Request{Op: OpLogin}); err != nil || resp.Code != CodeOverloaded {
			t.Fatalf("warmup call %d: %+v, %v", i, resp, err)
		}
	}
	if st := c.Stats(); st.BreakerOpens != 1 {
		t.Fatalf("breaker opens = %d, want 1", st.BreakerOpens)
	}
	// While open: fail fast without touching the transport.
	before := len(inner.calls)
	if _, err := c.Do(context.Background(), Request{Op: OpLogin}); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("open circuit: err = %v, want ErrCircuitOpen", err)
	}
	if len(inner.calls) != before {
		t.Errorf("open circuit still sent a request")
	}
	if st := c.Stats(); st.BreakerFastFails != 1 {
		t.Errorf("fast fails = %d, want 1", st.BreakerFastFails)
	}

	// After the cooldown, the next call is the half-open probe; the
	// server has recovered, so it closes the circuit...
	time.Sleep(pol.BreakerCooldown + 10*time.Millisecond)
	inner.script = []scriptStep{{resp: Response{Version: Version, Code: CodeOK}}}
	inner.calls = nil
	if resp, err := c.Do(context.Background(), Request{Op: OpLogin}); err != nil || resp.Code != CodeOK {
		t.Fatalf("probe: %+v, %v, want CodeOK", resp, err)
	}
	// ...and subsequent calls flow normally.
	if resp, err := c.Do(context.Background(), Request{Op: OpLogin}); err != nil || resp.Code != CodeOK {
		t.Fatalf("post-probe: %+v, %v, want CodeOK", resp, err)
	}
	if st := c.Stats(); st.BreakerFastFails != 1 {
		t.Errorf("closed circuit fast-failed again: %+v", st)
	}
}

// TestRetryBreakerFailedProbeReopens: a failed half-open probe re-arms
// the cooldown instead of closing the circuit.
func TestRetryBreakerFailedProbeReopens(t *testing.T) {
	pol := RetryPolicy{MaxAttempts: 1, BreakerThreshold: 1, BreakerCooldown: 40 * time.Millisecond}
	inner := &scriptClient{script: []scriptStep{{resp: overloadedResp}}}
	c := NewRetryClient(clientFromDoer(inner), pol)
	c.sleep = func(ctx context.Context, d time.Duration) error { return ctx.Err() }
	c.rnd = func() float64 { return 0 }

	c.Do(context.Background(), Request{Op: OpLogin}) // opens (threshold 1)
	time.Sleep(pol.BreakerCooldown + 10*time.Millisecond)
	// The probe also fails → circuit stays open from now.
	if resp, _ := c.Do(context.Background(), Request{Op: OpLogin}); resp.Code != CodeOverloaded {
		t.Fatalf("probe resp = %+v", resp)
	}
	if _, err := c.Do(context.Background(), Request{Op: OpLogin}); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("after failed probe: err = %v, want ErrCircuitOpen", err)
	}
}

// TestParseFaultSpec covers the -chaos flag grammar.
func TestParseFaultSpec(t *testing.T) {
	o, err := ParseFaultSpec("seed=7,err=0.01,latrate=0.05,lat=25ms")
	if err != nil {
		t.Fatal(err)
	}
	want := FaultOptions{Seed: 7, ErrRate: 0.01, LatencyRate: 0.05, Latency: 25 * time.Millisecond}
	if o != want {
		t.Fatalf("parsed %+v, want %+v", o, want)
	}
	if o, err := ParseFaultSpec("  "); err != nil || o.Enabled() {
		t.Errorf("empty spec: %+v, %v; want disabled, nil", o, err)
	}
	for _, bad := range []string{"err=2", "err=-0.1", "lat=xyz", "bogus=1", "err"} {
		if _, err := ParseFaultSpec(bad); err == nil {
			t.Errorf("ParseFaultSpec(%q) accepted", bad)
		}
	}
}

// TestWithFaultsDeterministic: same seed, same request order, same
// fault schedule — and roughly the configured error rate.
func TestWithFaultsDeterministic(t *testing.T) {
	run := func(seed uint64) []Code {
		h := Chain(HandlerFunc(func(ctx context.Context, req Request) Response {
			return Response{Version: Version, Code: CodeOK}
		}), WithFaults(FaultOptions{Seed: seed, ErrRate: 0.3}))
		codes := make([]Code, 200)
		for i := range codes {
			codes[i] = h.Handle(context.Background(), Request{Op: OpPing}).Code
		}
		return codes
	}
	a, b := run(42), run(42)
	injected := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at request %d: %s vs %s", i, a[i], b[i])
		}
		if a[i] == CodeInternal {
			injected++
		}
	}
	if injected < 30 || injected > 90 {
		t.Errorf("err=0.3 over 200 requests injected %d faults; schedule looks wrong", injected)
	}
	c := run(43)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Errorf("different seeds produced identical schedules")
	}
}

// TestWithFaultsDisabledIsIdentity: a zero FaultOptions must not even
// wrap the handler.
func TestWithFaultsDisabledIsIdentity(t *testing.T) {
	base := HandlerFunc(func(ctx context.Context, req Request) Response {
		return Response{Code: CodeOK}
	})
	h := WithFaults(FaultOptions{})(base)
	if resp := h.Handle(context.Background(), Request{Op: OpPing}); resp.Code != CodeOK {
		t.Fatalf("identity middleware altered the response: %+v", resp)
	}
}

// TestRetryClientFollowsNotPrimary: a not_primary response with a
// redirect address swaps the wrapped client for one wired to the
// advertised primary and re-sends immediately — even a non-idempotent
// enroll, because the role guard refused the request before it could
// execute. The op must land on the primary exactly once, with no
// backoff sleep in between.
func TestRetryClientFollowsNotPrimary(t *testing.T) {
	follower := &scriptClient{script: []scriptStep{
		{resp: Response{Code: CodeNotPrimary, Primary: "primary:1"}},
	}}
	primary := &scriptClient{script: []scriptStep{
		{resp: Response{Code: CodeOK}},
	}}
	var redirectedTo string
	pol := RetryPolicy{Redirect: func(addr string) (Client, error) {
		redirectedTo = addr
		return clientFromDoer(primary), nil
	}}
	c := NewRetryClient(clientFromDoer(follower), pol)
	c.sleep = func(ctx context.Context, d time.Duration) error {
		t.Errorf("redirect slept %v; re-send should be immediate", d)
		return nil
	}
	c.rnd = func() float64 { return 0.5 }

	resp, err := c.Do(context.Background(), Request{Op: OpEnroll, User: "alice"})
	if err != nil || resp.Code != CodeOK {
		t.Fatalf("redirected enroll = %+v, %v; want ok", resp, err)
	}
	if redirectedTo != "primary:1" {
		t.Fatalf("redirected to %q, want primary:1", redirectedTo)
	}
	if len(follower.calls) != 1 {
		t.Fatalf("follower saw %d calls, want 1", len(follower.calls))
	}
	if len(primary.calls) != 1 {
		t.Fatalf("enroll landed %d times on the primary, want exactly 1", len(primary.calls))
	}
	if got := c.Stats().Redirects; got != 1 {
		t.Fatalf("Stats().Redirects = %d, want 1", got)
	}

	// Follow-up calls go straight to the swapped-in primary.
	if _, err := c.Do(context.Background(), Request{Op: OpLogin, User: "alice"}); err != nil {
		t.Fatalf("post-redirect call: %v", err)
	}
	if len(follower.calls) != 1 || len(primary.calls) != 2 {
		t.Fatalf("post-redirect routing: follower=%d primary=%d, want 1/2",
			len(follower.calls), len(primary.calls))
	}

	// Without a Redirect hook, not_primary is a definitive answer:
	// returned to the caller as-is, never retried.
	lone := &scriptClient{script: []scriptStep{
		{resp: Response{Code: CodeNotPrimary, Primary: "primary:1"}},
	}}
	c2 := NewRetryClient(clientFromDoer(lone), RetryPolicy{})
	resp, err = c2.Do(context.Background(), Request{Op: OpLogin, User: "alice"})
	if err != nil || resp.Code != CodeNotPrimary || resp.Primary != "primary:1" {
		t.Fatalf("unhooked not_primary = %+v, %v; want the refusal passed through", resp, err)
	}
	if len(lone.calls) != 1 {
		t.Fatalf("unhooked not_primary retried: %d calls", len(lone.calls))
	}
}

package loadtest

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"clickpass/internal/authproto"
	"clickpass/internal/authsvc"
	"clickpass/internal/core"
	"clickpass/internal/dataset"
	"clickpass/internal/geom"
	"clickpass/internal/passpoints"
	"clickpass/internal/session"
	"clickpass/internal/vault"
)

// startServer spins an authproto server over the given store on a
// loopback listener and returns the server, its TCP address, and a
// drain func.
func startServer(tb testing.TB, store vault.Store, maxConns int) (srv *authproto.Server, addr string, shutdown func()) {
	tb.Helper()
	scheme, err := core.NewCentered(13)
	if err != nil {
		tb.Fatal(err)
	}
	cfg := passpoints.Config{
		Image:      geom.Size{W: 451, H: 331},
		Clicks:     5,
		Scheme:     scheme,
		Iterations: 2,
	}
	srv, err = authproto.NewServer(cfg, store, 1<<30)
	if err != nil {
		tb.Fatal(err)
	}
	if maxConns > 0 {
		srv.SetMaxConns(maxConns)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	done := make(chan struct{})
	go func() { _ = srv.Serve(l); close(done) }()
	return srv, l.Addr().String(), func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			tb.Errorf("shutdown: %v", err)
		}
		<-done
	}
}

// startHTTP adds an HTTP front to an already-running server and
// returns its base URL and closer. Both fronts share the server's
// pipeline and limiter — that sharing is what the limiter test pins.
func startHTTP(tb testing.TB, srv *authproto.Server) (baseURL string, closeFn func()) {
	tb.Helper()
	ts := httptest.NewServer(srv.HTTPHandler())
	return ts.URL, ts.Close
}

// userClicks derives a user's deterministic 5-click password from its
// name ("u-<n>").
func userClicks(user string) []dataset.Click {
	n, _ := strconv.Atoi(strings.TrimPrefix(user, "u-"))
	dx := n % 40
	return []dataset.Click{
		{X: 30 + dx, Y: 40}, {X: 120 + dx, Y: 300}, {X: 222 + dx, Y: 51},
		{X: 400 + dx, Y: 200}, {X: 77 + dx, Y: 160},
	}
}

// enrollUsers registers n identities through the protocol and returns
// their names.
func enrollUsers(tb testing.TB, addr string, n int) []string {
	tb.Helper()
	c, err := authproto.DialService(addr, 5*time.Second)
	if err != nil {
		tb.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	users := make([]string, n)
	for i := range users {
		users[i] = fmt.Sprintf("u-%d", i)
		resp, err := c.Enroll(ctx, users[i], userClicks(users[i]))
		if err != nil || !resp.OK() {
			tb.Fatalf("enroll %s: %+v %v", users[i], resp, err)
		}
	}
	return users
}

// TestLoadSwarmSmoke is the CI smoke point (go test -run TestLoad
// -short): a small swarm against all three store backends and both
// transports must complete with zero errors and sane measurements.
func TestLoadSwarmSmoke(t *testing.T) {
	clientCount, ops := 16, 10
	if testing.Short() {
		clientCount, ops = 8, 5
	}
	for _, tc := range []struct {
		name  string
		store func(tb testing.TB) vault.Store
	}{
		{"vault", func(testing.TB) vault.Store { return vault.New() }},
		{"sharded", func(testing.TB) vault.Store { return vault.NewSharded(0) }},
		{"durable", func(tb testing.TB) vault.Store {
			d, err := vault.OpenDurable(tb.TempDir(), vault.DurableOptions{})
			if err != nil {
				tb.Fatal(err)
			}
			tb.Cleanup(func() { d.Close() })
			return d
		}},
	} {
		srv, addr, shutdown := startServer(t, tc.store(t), 64)
		baseURL, closeHTTP := startHTTP(t, srv)
		users := enrollUsers(t, addr, clientCount)
		for _, transport := range []struct {
			name string
			dial func(int) (authsvc.Client, error)
		}{
			{"tcp", TCPTransport(addr, 0)},
			{"http", HTTPTransport(baseURL)},
		} {
			t.Run(tc.name+"/"+transport.name, func(t *testing.T) {
				res, err := Run(Config{
					Dial:         transport.dial,
					Clients:      clientCount,
					OpsPerClient: ops,
					Request:      AuthMix(users, userClicks, 10),
					Check:        RequireOK,
				})
				if err != nil {
					t.Fatal(err)
				}
				t.Logf("%s/%s: %s", tc.name, transport.name, res)
				if res.Errors != 0 {
					t.Errorf("swarm saw %d errors", res.Errors)
				}
				if res.Ops != clientCount*ops {
					t.Errorf("completed %d ops, want %d", res.Ops, clientCount*ops)
				}
				if res.P50 <= 0 || res.Max < res.P99 || res.P99 < res.P50 {
					t.Errorf("implausible latency spread: %s", res)
				}
				if res.Throughput() <= 0 {
					t.Errorf("throughput = %v", res.Throughput())
				}
			})
		}
		closeHTTP()
		shutdown()
	}
}

// startSessionServer is startServer with a stateless session tier
// mounted (soft-state keys: no Store, so the manager mints its own
// generation 1), the serving shape the session mix drives.
func startSessionServer(tb testing.TB, store vault.Store) (addr string, shutdown func()) {
	tb.Helper()
	scheme, err := core.NewCentered(13)
	if err != nil {
		tb.Fatal(err)
	}
	cfg := passpoints.Config{
		Image:      geom.Size{W: 451, H: 331},
		Clicks:     5,
		Scheme:     scheme,
		Iterations: 2,
	}
	srv, err := authproto.NewServer(cfg, store, 1<<30)
	if err != nil {
		tb.Fatal(err)
	}
	mgr, err := session.New(session.Options{TTL: time.Hour})
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(mgr.Close)
	srv.SetSession(mgr)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	done := make(chan struct{})
	go func() { _ = srv.Serve(l); close(done) }()
	return l.Addr().String(), func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			tb.Errorf("shutdown: %v", err)
		}
		<-done
	}
}

// TestLoadSessionMix is the session-tier swarm smoke (runs under the
// CI loadsmoke pattern): every client logs in once, then validates
// its token for the rest of the run, with zero errors — which proves
// the login minted a token (the mix flags token-less logins) and that
// every validate came back OK for the right user.
func TestLoadSessionMix(t *testing.T) {
	clientCount, ops := 16, 20
	if testing.Short() {
		clientCount, ops = 8, 10
	}
	addr, shutdown := startSessionServer(t, vault.NewSharded(0))
	defer shutdown()
	users := enrollUsers(t, addr, clientCount)
	mix := NewSessionMix(users, userClicks, clientCount)
	res, err := Run(Config{
		Dial:         TCPTransport(addr, 0),
		Clients:      clientCount,
		OpsPerClient: ops,
		Request:      mix.Request,
		Check:        mix.Check,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("session mix: %s", res)
	if res.Errors != 0 {
		t.Errorf("session swarm saw %d errors", res.Errors)
	}
	if res.Ops != clientCount*ops {
		t.Errorf("completed %d ops, want %d", res.Ops, clientCount*ops)
	}
}

// slowStore delays reads so in-flight requests pile up against the
// admission limiter — the load shape the shared-limit test needs.
type slowStore struct {
	vault.Store
	delay time.Duration
}

func (s slowStore) Get(user string) (*passpoints.Record, error) {
	time.Sleep(s.delay)
	return s.Store.Get(user)
}

// TestLoadSharedLimiterCapsBothFronts is the acceptance point for the
// unified serving layer: TCP and HTTP swarms run concurrently against
// one server whose -maxconns equivalent is far below the combined
// client count, and the pipeline's in-flight high-water mark must
// never exceed that cap — one par.Limiter provably admits both
// transports. The slow store guarantees requests overlap, so the test
// also asserts the cap was actually reached (the limiter was the
// binding constraint, not a coincidence of scheduling).
func TestLoadSharedLimiterCapsBothFronts(t *testing.T) {
	// The TCP swarm is sized at the cap (a swarm client holds its
	// connection for the whole run, and the connection pool is also
	// -maxconns); the HTTP swarm provides the oversubscription that
	// forces the shared limiter to arbitrate across fronts.
	const maxConns = 4
	tcpClients, httpClients := maxConns, 12
	ops := 6
	if testing.Short() {
		httpClients, ops = 8, 4
	}
	srv, addr, shutdown := startServer(t, slowStore{vault.New(), 2 * time.Millisecond}, maxConns)
	defer shutdown()
	baseURL, closeHTTP := startHTTP(t, srv)
	defer closeHTTP()
	users := enrollUsers(t, addr, httpClients)

	type out struct {
		name string
		res  Result
		err  error
	}
	results := make(chan out, 2)
	var wg sync.WaitGroup
	for _, transport := range []struct {
		name    string
		clients int
		dial    func(int) (authsvc.Client, error)
	}{
		{"tcp", tcpClients, TCPTransport(addr, 0)},
		{"http", httpClients, HTTPTransport(baseURL)},
	} {
		wg.Add(1)
		go func(name string, clients int, dial func(int) (authsvc.Client, error)) {
			defer wg.Done()
			res, err := Run(Config{
				Dial:         dial,
				Clients:      clients,
				OpsPerClient: ops,
				Request:      AuthMix(users, userClicks, 0),
				Check:        RequireOK,
			})
			results <- out{name, res, err}
		}(transport.name, transport.clients, transport.dial)
	}
	wg.Wait()
	close(results)
	total := 0
	for r := range results {
		if r.err != nil {
			t.Fatalf("%s swarm: %v", r.name, r.err)
		}
		if r.res.Errors != 0 {
			t.Errorf("%s swarm saw %d errors: %s", r.name, r.res.Errors, r.res)
		}
		total += r.res.Ops
		t.Logf("%s: %s", r.name, r.res)
	}
	if want := (tcpClients + httpClients) * ops; total != want {
		t.Errorf("completed %d ops across both fronts, want %d", total, want)
	}
	peak := srv.Metrics().Peak()
	if peak > maxConns {
		t.Errorf("combined in-flight peaked at %d, limiter cap is %d", peak, maxConns)
	}
	if peak < maxConns {
		t.Errorf("combined in-flight peaked at %d; expected the %d-slot limiter to saturate under %d clients",
			peak, maxConns, tcpClients+httpClients)
	}
}

// TestLoadRunValidation: unusable configs must fail fast, not hang.
func TestLoadRunValidation(t *testing.T) {
	deadDial := TCPTransport("127.0.0.1:1", 200*time.Millisecond)
	if _, err := Run(Config{Dial: deadDial, Clients: 0, OpsPerClient: 1}); err == nil {
		t.Error("zero clients accepted")
	}
	if _, err := Run(Config{Dial: deadDial, Clients: 1, OpsPerClient: 0}); err == nil {
		t.Error("zero ops accepted")
	}
	if _, err := Run(Config{Dial: deadDial, Clients: 1, OpsPerClient: 1}); err == nil {
		t.Error("nil request factory accepted")
	}
	ping := func(c, o int) authsvc.Request { return authsvc.Request{Op: authsvc.OpPing} }
	if _, err := Run(Config{Clients: 1, OpsPerClient: 1, Request: ping}); err == nil {
		t.Error("nil transport factory accepted")
	}
	// A dead address must error out, not report an empty result.
	if _, err := Run(Config{Dial: deadDial, Clients: 1, OpsPerClient: 1, Request: ping}); err == nil {
		t.Error("unreachable server accepted")
	}
}

// TestLoadCheckCountsFailures: a Check rejection must surface in
// Result.Errors while the swarm keeps running — over both transports.
func TestLoadCheckCountsFailures(t *testing.T) {
	srv, addr, shutdown := startServer(t, vault.New(), 0)
	defer shutdown()
	baseURL, closeHTTP := startHTTP(t, srv)
	defer closeHTTP()
	for _, transport := range []struct {
		name string
		dial func(int) (authsvc.Client, error)
	}{
		{"tcp", TCPTransport(addr, 0)},
		{"http", HTTPTransport(baseURL)},
	} {
		t.Run(transport.name, func(t *testing.T) {
			res, err := Run(Config{
				Dial:         transport.dial,
				Clients:      2,
				OpsPerClient: 3,
				// Logins for users that were never enrolled: transported
				// fine, refused by the server.
				Request: func(c, o int) authsvc.Request {
					return authsvc.Request{Op: authsvc.OpLogin, User: "ghost", Clicks: userClicks("u-0")}
				},
				Check: RequireOK,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Errors != res.Ops || res.Ops != 6 {
				t.Errorf("want every op counted and flagged: %s", res)
			}
		})
	}
}

// TestLoadTransportsAgree: the same mix over TCP and HTTP must produce
// the same service outcomes — the interchangeability the unified
// client interface promises.
func TestLoadTransportsAgree(t *testing.T) {
	srv, addr, shutdown := startServer(t, vault.New(), 0)
	defer shutdown()
	baseURL, closeHTTP := startHTTP(t, srv)
	defer closeHTTP()
	users := enrollUsers(t, addr, 4)

	ctx := context.Background()
	tcp, err := authproto.DialService(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer tcp.Close()
	web := authproto.NewHTTPClient(baseURL, &http.Client{Timeout: 10 * time.Second})
	defer web.Close()

	for _, try := range []struct {
		name   string
		clicks []dataset.Click
	}{
		{"good", userClicks(users[0])},
		{"bad", userClicks("u-33")},
	} {
		a, err := tcp.Login(ctx, users[0], try.clicks)
		if err != nil {
			t.Fatalf("tcp %s login: %v", try.name, err)
		}
		b, err := web.Login(ctx, users[0], try.clicks)
		if err != nil {
			t.Fatalf("http %s login: %v", try.name, err)
		}
		// Remaining differs across consecutive failures by design;
		// compare code and error, the service-level outcome.
		if a.Code != b.Code || a.Err != b.Err {
			t.Errorf("%s login disagrees across transports: tcp=%+v http=%+v", try.name, a, b)
		}
	}
	if err := tcp.Ping(ctx); err != nil {
		t.Errorf("tcp ping: %v", err)
	}
	if err := web.Ping(ctx); err != nil {
		t.Errorf("http ping: %v", err)
	}
}

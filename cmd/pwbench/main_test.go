package main

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestFillSpeedups(t *testing.T) {
	runs := []Run{
		{Workers: 1, NsPerOp: 1000},
		{Workers: 2, NsPerOp: 500},
		{Workers: 8, NsPerOp: 250},
	}
	fillSpeedups(runs)
	for i, want := range []float64{1, 2, 4} {
		if runs[i].SpeedupVsSerial != want {
			t.Errorf("runs[%d].SpeedupVsSerial = %v, want %v", i, runs[i].SpeedupVsSerial, want)
		}
	}
	// Without a workers=1 baseline the speedup stays unset.
	noBase := []Run{{Workers: 4, NsPerOp: 100}}
	fillSpeedups(noBase)
	if noBase[0].SpeedupVsSerial != 0 {
		t.Errorf("speedup without baseline = %v, want 0", noBase[0].SpeedupVsSerial)
	}
}

func TestParseWorkers(t *testing.T) {
	got, err := parseWorkers("1, 2,8")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 8 {
		t.Errorf("parseWorkers = %v, want [1 2 8]", got)
	}
	for _, bad := range []string{"", "0", "a", "1,,2"} {
		if _, err := parseWorkers(bad); err == nil {
			t.Errorf("parseWorkers(%q) accepted", bad)
		}
	}
}

func TestBenchJSONShape(t *testing.T) {
	b := Bench{
		Name:       "online",
		GoMaxProcs: 4,
		NumCPU:     4,
		Runs:       []Run{{Workers: 1, NsPerOp: 1234.5, BytesPerOp: 10, AllocsPerOp: 2, SpeedupVsSerial: 1}},
	}
	raw, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	var back map[string]any
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"name", "gomaxprocs", "numcpu", "runs"} {
		if _, ok := back[key]; !ok {
			t.Errorf("JSON missing %q: %s", key, raw)
		}
	}
	run := back["runs"].([]any)[0].(map[string]any)
	for _, key := range []string{"workers", "ns_per_op", "bytes_per_op", "allocs_per_op", "speedup_vs_serial"} {
		if _, ok := run[key]; !ok {
			t.Errorf("run JSON missing %q: %s", key, raw)
		}
	}
}

func TestMarkdownTable(t *testing.T) {
	benches := []Bench{{
		Name: "success",
		Runs: []Run{
			{Workers: 1, NsPerOp: 1000, SpeedupVsSerial: 1},
			{Workers: 4, NsPerOp: 400, SpeedupVsSerial: 2.5},
		},
	}}
	got := markdownTable(benches)
	for _, want := range []string{"| path |", "w=1 ns/op", "w=4 ns/op", "| success |", "2.50x"} {
		if !strings.Contains(got, want) {
			t.Errorf("table missing %q:\n%s", want, got)
		}
	}
	if markdownTable(nil) != "" {
		t.Error("empty bench list should render an empty table")
	}
}

// TestPathsRun exercises every registered path end to end at one
// worker count on a real (small) environment — the smoke that keeps
// the harness from rotting when an engine signature changes.
func TestPathsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("pwbench path smoke is not -short")
	}
	e, err := newBenchEnv(42, 0)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := e.paths(42)
	if err != nil {
		t.Fatal(err)
	}
	for name, run := range paths {
		if err := run(2); err != nil {
			t.Errorf("path %s: %v", name, err)
		}
	}
}

// Package loadtest drives client swarms against an auth server and
// reports throughput and latency percentiles — the capacity-planning
// instrument behind PERFORMANCE.md's "Server load" and "Unified
// serving layer" sections. It measures the paper's online scenario
// (§5) at service scale: many concurrent clients speaking a real wire
// protocol, so the numbers include the codec, scheme verification,
// hashing, and store contention.
//
// The driver is transport-agnostic: a swarm runs over any
// authsvc.Client factory, so the framed-TCP codec and the HTTP/JSON
// codec are measured through identical code (TCPTransport,
// HTTPTransport). The driver is deliberately dumb: every client owns
// one transport handle, issues its ops back to back, and records
// wall-clock latency per op. Aggregation happens after the swarm
// finishes, so the measurement path adds no cross-client
// synchronization beyond the start gate.
package loadtest

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"clickpass/internal/authproto"
	"clickpass/internal/authsvc"
	"clickpass/internal/dataset"
)

// Config describes one swarm run.
type Config struct {
	// Dial opens the client-th transport handle. TCPTransport and
	// HTTPTransport build factories for the two shipped codecs; tests
	// may inject anything that satisfies authsvc.Client.
	Dial func(client int) (authsvc.Client, error)
	// Clients is the number of concurrent swarm clients.
	Clients int
	// OpsPerClient is how many requests each client issues.
	OpsPerClient int
	// Request builds the op-th request for the client-th connection.
	// It must be safe for concurrent calls with distinct client
	// numbers.
	Request func(client, op int) authsvc.Request
	// Check, if non-nil, classifies a response as an error (e.g. a
	// login that must succeed coming back denied). Transport failures
	// are always errors.
	Check func(client, op int, resp authsvc.Response) error
}

// TCPTransport returns a Dial factory over the framed-TCP codec: one
// connection per swarm client. timeout bounds connection setup
// (0 = 5s).
func TCPTransport(addr string, timeout time.Duration) func(client int) (authsvc.Client, error) {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	return func(int) (authsvc.Client, error) {
		return authproto.DialService(addr, timeout)
	}
}

// HTTPTransport returns a Dial factory over the HTTP/JSON codec. Each
// swarm client gets its own http.Client whose pool is capped at one
// connection, mirroring the TCP swarm's one-connection-per-client
// shape so the two transports measure comparable things.
func HTTPTransport(baseURL string) func(client int) (authsvc.Client, error) {
	return func(int) (authsvc.Client, error) {
		hc := &http.Client{
			Transport: &http.Transport{
				MaxIdleConns:        1,
				MaxIdleConnsPerHost: 1,
				MaxConnsPerHost:     1,
			},
			Timeout: 30 * time.Second,
		}
		return authproto.NewHTTPClient(baseURL, hc), nil
	}
}

// Result aggregates a swarm run.
type Result struct {
	Clients int
	Ops     int // completed requests across all clients
	Errors  int
	Elapsed time.Duration // start gate to last client done
	P50     time.Duration
	P95     time.Duration
	P99     time.Duration
	Max     time.Duration
}

// Throughput returns completed ops per second over the whole run.
func (r Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Elapsed.Seconds()
}

// String formats the result as one benchmark-style line.
func (r Result) String() string {
	return fmt.Sprintf("clients=%d ops=%d errs=%d %.0f ops/s p50=%s p95=%s p99=%s max=%s",
		r.Clients, r.Ops, r.Errors, r.Throughput(), r.P50, r.P95, r.P99, r.Max)
}

// Run executes the swarm: Clients transport handles issuing
// OpsPerClient requests each, all released together after every
// handle is dialed. It returns an error only when the swarm could not
// run at all (bad config, dial failure); per-op failures are counted
// in Result.Errors.
func Run(cfg Config) (Result, error) {
	if cfg.Clients <= 0 || cfg.OpsPerClient <= 0 {
		return Result{}, fmt.Errorf("loadtest: clients %d and ops %d must be positive",
			cfg.Clients, cfg.OpsPerClient)
	}
	if cfg.Request == nil {
		return Result{}, fmt.Errorf("loadtest: nil request factory")
	}
	if cfg.Dial == nil {
		return Result{}, fmt.Errorf("loadtest: nil transport factory")
	}
	// Dial everything first so the measured window contains only
	// request traffic, not connection setup.
	clients := make([]authsvc.Client, cfg.Clients)
	for i := range clients {
		c, err := cfg.Dial(i)
		if err != nil {
			for _, open := range clients[:i] {
				open.Close()
			}
			return Result{}, fmt.Errorf("loadtest: dialing client %d: %w", i, err)
		}
		clients[i] = c
	}
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()

	type clientStats struct {
		lats []time.Duration
		errs int
	}
	stats := make([]clientStats, cfg.Clients)
	start := make(chan struct{})
	ctx := context.Background()
	var wg sync.WaitGroup
	for i := range clients {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st := &stats[i]
			st.lats = make([]time.Duration, 0, cfg.OpsPerClient)
			<-start
			for op := 0; op < cfg.OpsPerClient; op++ {
				req := cfg.Request(i, op)
				t0 := time.Now()
				resp, err := clients[i].Do(ctx, req)
				lat := time.Since(t0)
				if err != nil {
					st.errs++
					return // transport is dead; stop this client
				}
				st.lats = append(st.lats, lat)
				if cfg.Check != nil {
					if err := cfg.Check(i, op, resp); err != nil {
						st.errs++
					}
				}
			}
		}(i)
	}
	t0 := time.Now()
	close(start)
	wg.Wait()
	elapsed := time.Since(t0)

	res := Result{Clients: cfg.Clients, Elapsed: elapsed}
	var all []time.Duration
	for i := range stats {
		res.Ops += len(stats[i].lats)
		res.Errors += stats[i].errs
		all = append(all, stats[i].lats...)
	}
	if len(all) > 0 {
		sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
		res.P50 = percentile(all, 0.50)
		res.P95 = percentile(all, 0.95)
		res.P99 = percentile(all, 0.99)
		res.Max = all[len(all)-1]
	}
	return res, nil
}

// percentile reads the q-quantile from sorted latencies.
func percentile(sorted []time.Duration, q float64) time.Duration {
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

// AuthMix returns a Request factory for a read-heavy authentication
// mix: every writePeriod-th op is a password change (a vault write via
// Replace plus two hash computations); the rest are logins (pure
// reads). writePeriod <= 0 disables writes. Each client owns the
// identity users[client%len(users)], which must already be enrolled
// with clicksFor(user). The mix is transport-agnostic — the same
// factory drives TCP and HTTP swarms. AuthMix panics immediately on
// an empty user list — in the caller's goroutine, not a swarm
// worker's.
func AuthMix(users []string, clicksFor func(user string) []dataset.Click, writePeriod int) func(client, op int) authsvc.Request {
	if len(users) == 0 {
		panic("loadtest: AuthMix requires at least one user")
	}
	return func(client, op int) authsvc.Request {
		user := users[client%len(users)]
		clicks := clicksFor(user)
		if writePeriod > 0 && op%writePeriod == writePeriod-1 {
			// Change to the same password: exercises the write path
			// without invalidating the other clients' credentials.
			return authsvc.Request{Version: authsvc.Version, Op: authsvc.OpChange, User: user, Clicks: clicks, NewClicks: clicks}
		}
		return authsvc.Request{Version: authsvc.Version, Op: authsvc.OpLogin, User: user, Clicks: clicks}
	}
}

// SessionMix drives the session-tier serving shape: each swarm client
// logs in once to obtain a signed session token, then spends every
// remaining op validating it — the sign-once/verify-everywhere
// pattern the stateless session tier serves. The token is captured
// from the login response by the mix's Check, so wire both Request
// and Check into the Config. Per-client state is touched only from
// that client's goroutine (Run issues client i's requests and checks
// sequentially), so the mix needs no locking.
type SessionMix struct {
	users     []string
	clicksFor func(user string) []dataset.Click
	tokens    []string // per-client captured token; goroutine-local to client i
}

// NewSessionMix builds a session mix for a swarm of `clients` clients
// over the already-enrolled users. It panics immediately on an empty
// user list — in the caller's goroutine, not a swarm worker's.
func NewSessionMix(users []string, clicksFor func(user string) []dataset.Click, clients int) *SessionMix {
	if len(users) == 0 {
		panic("loadtest: NewSessionMix requires at least one user")
	}
	return &SessionMix{users: users, clicksFor: clicksFor, tokens: make([]string, clients)}
}

func (m *SessionMix) user(client int) string { return m.users[client%len(m.users)] }

// Request issues logins until the client has captured a token, then
// validates it for the rest of the run.
func (m *SessionMix) Request(client, op int) authsvc.Request {
	if m.tokens[client] == "" {
		user := m.user(client)
		return authsvc.Request{Version: authsvc.Version, Op: authsvc.OpLogin, User: user, Clicks: m.clicksFor(user)}
	}
	return authsvc.Request{Version: authsvc.Version, Op: authsvc.OpValidate, Token: m.tokens[client]}
}

// Check requires every op to succeed, captures minted tokens, and
// flags a token-less login — against a server with no session tier
// the mix would otherwise silently degrade into all-logins and
// measure nothing it claims to.
func (m *SessionMix) Check(client, op int, resp authsvc.Response) error {
	if err := RequireOK(client, op, resp); err != nil {
		return err
	}
	if resp.Token != "" {
		m.tokens[client] = resp.Token
	} else if m.tokens[client] == "" {
		return fmt.Errorf("loadtest: client %d login minted no session token", client)
	}
	if resp.User != "" && resp.User != m.user(client) {
		return fmt.Errorf("loadtest: client %d token validated as %q, want %q", client, resp.User, m.user(client))
	}
	return nil
}

// RequireOK is a Check that flags any non-OK response — the right
// check for a mix whose every request is expected to succeed.
func RequireOK(client, op int, resp authsvc.Response) error {
	if !resp.OK() {
		return fmt.Errorf("loadtest: client %d op %d refused: %s (%s)", client, op, resp.Err, resp.Code)
	}
	return nil
}

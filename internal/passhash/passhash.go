// Package passhash turns discretized click-point sequences into stored
// password verifiers.
//
// Following the paper (§3.1–3.2), the clear-text grid identifiers
// (offsets d, or the Robust grid index) and the secret segment indices
// of all click-points are concatenated and hashed together as one —
// never per click-point — so an attacker cannot match individual points
// and mount a divide-and-conquer attack. A per-user salt defeats
// precomputed dictionaries and iterated hashing (h^n) adds log2(n) bits
// of work per guess (§5.1: h^1000 ≈ +10 bits).
package passhash

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/binary"
	"fmt"
	"math"

	"clickpass/internal/core"
)

// SaltLen is the per-user salt length in bytes.
const SaltLen = 16

// DefaultIterations is the default hash iteration count; the paper
// suggests 1000 (≈ 10 bits of added attack cost).
const DefaultIterations = 1000

// Params fixes how verifiers are computed. The zero value is invalid;
// use NewParams or fill every field.
type Params struct {
	// Iterations is the hash iteration count, >= 1.
	Iterations int
	// Salt is the per-user salt.
	Salt []byte
}

// NewParams draws a fresh random salt from crypto/rand.
func NewParams(iterations int) (Params, error) {
	if iterations < 1 {
		return Params{}, fmt.Errorf("passhash: iterations %d < 1", iterations)
	}
	salt := make([]byte, SaltLen)
	if _, err := rand.Read(salt); err != nil {
		return Params{}, fmt.Errorf("passhash: reading salt: %w", err)
	}
	return Params{Iterations: iterations, Salt: salt}, nil
}

// Validate reports configuration errors.
func (p Params) Validate() error {
	if p.Iterations < 1 {
		return fmt.Errorf("passhash: iterations %d < 1", p.Iterations)
	}
	if len(p.Salt) == 0 {
		return fmt.Errorf("passhash: empty salt")
	}
	return nil
}

// EncodeTokens produces the canonical byte encoding of a password's
// tokens: for each click-point in order, the clear part
// (dx, dy, grid) followed by the secret part (ix, iy), all fixed-width
// big-endian. The encoding is injective so distinct discretizations
// never collide before hashing.
func EncodeTokens(tokens []core.Token) []byte {
	buf := make([]byte, 0, len(tokens)*(8+8+1+8+8)+2)
	var scratch [8]byte
	putI64 := func(v int64) {
		binary.BigEndian.PutUint64(scratch[:], uint64(v))
		buf = append(buf, scratch[:]...)
	}
	// Length prefix guards against ambiguity between different click
	// counts (defense in depth; the fixed width already prevents it).
	binary.BigEndian.PutUint16(scratch[:2], uint16(len(tokens)))
	buf = append(buf, scratch[:2]...)
	for _, t := range tokens {
		putI64(int64(t.Clear.DX))
		putI64(int64(t.Clear.DY))
		buf = append(buf, t.Clear.Grid)
		putI64(t.Secret.IX)
		putI64(t.Secret.IY)
	}
	return buf
}

// Digest computes the stored verifier for a token sequence under the
// given parameters: iterations of HMAC-SHA256 keyed by the salt over
// the canonical encoding. HMAC (rather than plain concatenation) binds
// the salt without length-extension concerns.
func Digest(p Params, tokens []core.Token) ([]byte, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	mac := hmac.New(sha256.New, p.Salt)
	mac.Write(EncodeTokens(tokens))
	sum := mac.Sum(nil)
	for i := 1; i < p.Iterations; i++ {
		mac.Reset()
		mac.Write(sum)
		sum = mac.Sum(sum[:0])
	}
	return sum, nil
}

// Verify recomputes the digest for candidate tokens and compares it to
// the stored verifier in constant time.
func Verify(p Params, stored []byte, tokens []core.Token) (bool, error) {
	got, err := Digest(p, tokens)
	if err != nil {
		return false, err
	}
	return subtle.ConstantTimeCompare(stored, got) == 1, nil
}

// AddedBits returns the attack-cost increase from iterated hashing in
// bits: log2(iterations). The paper's example: 1000 iterations add
// about 10 bits.
func AddedBits(iterations int) float64 {
	if iterations < 1 {
		return 0
	}
	return math.Log2(float64(iterations))
}

package par

import (
	"context"
	"errors"
	"log"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Limiter is the streaming counterpart of Map: a semaphore-bounded
// worker pool for workloads that arrive one at a time (accepted
// connections, queued jobs) instead of as an indexed batch. It shares
// the package's semantics — a configurable concurrency limit
// defaulting to one slot per CPU, and a graceful drain that lets every
// admitted task finish — without the ordered-results machinery batch
// callers need.
//
// The zero value is not usable; construct with NewLimiter.
type Limiter struct {
	sem chan struct{}
	wg  sync.WaitGroup
	// waiting counts callers parked in AcquireQueued — the wait-queue
	// depth an overload policy reads to decide when to shed.
	waiting atomic.Int64
}

// NewLimiter returns a limiter admitting at most limit concurrent
// tasks. limit <= 0 selects Default() (one per schedulable CPU).
func NewLimiter(limit int) *Limiter {
	if limit <= 0 {
		limit = Default()
	}
	return &Limiter{sem: make(chan struct{}, limit)}
}

// Cap returns the concurrency limit.
func (l *Limiter) Cap() int { return cap(l.sem) }

// Acquire blocks until a slot is free and claims it. Every Acquire
// must be paired with exactly one Release.
func (l *Limiter) Acquire() {
	l.sem <- struct{}{}
	l.wg.Add(1)
}

// AcquireContext blocks until a slot is free or ctx is done, claiming
// the slot and returning nil in the first case and returning ctx's
// error (with no slot held) in the second. It is the admission path
// for request-scoped callers whose deadline must bound queueing, not
// just handling.
func (l *Limiter) AcquireContext(ctx context.Context) error {
	// A pre-expired context must never admit, even when a slot is free:
	// select would otherwise pick randomly between the two ready cases.
	if err := ctx.Err(); err != nil {
		return err
	}
	select {
	case l.sem <- struct{}{}:
		l.wg.Add(1)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// ErrSaturated is returned by AcquireQueued when the bounded wait
// queue is full: the request would eventually be served far past any
// useful deadline, so it is refused immediately instead of parking.
var ErrSaturated = errors.New("par: limiter wait queue full")

// AcquireQueued is AcquireContext with a bounded wait queue: if no
// slot is free and maxQueue callers (including this one) are already
// waiting, it returns ErrSaturated immediately — never queue work
// that will only be served after its deadline. maxQueue <= 0 means
// "shed unless a slot is free right now". A caller admitted past the
// queue check still honors ctx while parked. Callers with different
// maxQueue values may share one limiter: each bounds the depth *it*
// is willing to join, which is how priority admission is built —
// low-priority work passes a smaller bound and sheds first as the
// queue fills.
func (l *Limiter) AcquireQueued(ctx context.Context, maxQueue int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	select {
	case l.sem <- struct{}{}:
		l.wg.Add(1)
		return nil
	default:
	}
	if maxQueue <= 0 {
		return ErrSaturated
	}
	if n := l.waiting.Add(1); n > int64(maxQueue) {
		l.waiting.Add(-1)
		return ErrSaturated
	}
	defer l.waiting.Add(-1)
	select {
	case l.sem <- struct{}{}:
		l.wg.Add(1)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Waiting returns the current wait-queue depth: callers parked in
// AcquireQueued. It is the watermark signal overload policies read.
func (l *Limiter) Waiting() int { return int(l.waiting.Load()) }

// TryAcquire claims a slot if one is free without blocking.
func (l *Limiter) TryAcquire() bool {
	select {
	case l.sem <- struct{}{}:
		l.wg.Add(1)
		return true
	default:
		return false
	}
}

// Release returns a slot claimed by Acquire or TryAcquire.
func (l *Limiter) Release() {
	<-l.sem
	l.wg.Done()
}

// Go runs fn on its own goroutine once a slot is free, blocking the
// caller until admission. A panicking task is contained (same policy
// as Map's per-task recovery): its slot is released and the process
// survives, so one poisoned connection cannot take down a server or
// leak capacity from its accept loop.
func (l *Limiter) Go(fn func()) {
	l.Acquire()
	go func() {
		defer l.Release()
		defer func() {
			if r := recover(); r != nil {
				log.Printf("par: task panicked: %v\n%s", r, debug.Stack())
			}
		}()
		fn()
	}()
}

// Drain blocks until every admitted task has released its slot. It
// does not close admission — the caller stops submitting (e.g. by
// closing its listener) before draining.
func (l *Limiter) Drain() { l.wg.Wait() }

// InFlight returns the number of currently admitted tasks.
func (l *Limiter) InFlight() int { return len(l.sem) }

// Package session is the stateless session tier: a login that passes
// full click-sequence verification mints a signed expiring token, and
// every later request proves itself by signature alone — no vault
// read, no lockout check, no store round-trip on the validate path.
//
// The paper's motivation (PassPoints login verification is
// deliberately expensive) makes a per-request full verify untenable;
// this package moves the recurring cost to one signature check over
// an in-memory key set. Three mechanisms keep "in-memory" honest:
//
//   - Keys persist through the durable vault's replicated KV side
//     table (vault.KVStore) under session/key/<gen>, so sessions
//     survive a SIGKILL restart and, because KV entries ride the WAL
//     shipping stream, the follower can verify — and after promotion
//     mint — with the same key set.
//   - Rotation is generational with an overlap window: tokens signed
//     by generation N verify while the current generation is N or
//     N+1, so a rotation never invalidates the fleet's outstanding
//     sessions at once.
//   - Revocation is a per-user minted-before watermark
//     (session/rev/<user>): a password change, reset, or lockout
//     stamps now, and any token minted at or before the stamp is
//     refused from memory, again with no store read.
//
// A Manager whose Store is a follower never invents keys (its writes
// are refused); it adopts the primary's keys via the KV watch
// (ApplyKV) or a Reseed at promotion. That asymmetry is what keeps
// the two nodes' key sets convergent rather than merely similar.
package session

import (
	"crypto/ed25519"
	"crypto/rand"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// KV is the slice of the durable vault the session tier persists
// through. *vault.Durable and *repl.Node both satisfy it; a nil Store
// yields an ephemeral manager (tests, single-process demos) whose
// sessions die with the process.
type KV interface {
	// SetKV durably sets key to val; empty val deletes.
	SetKV(key string, val []byte) error
	// GetKV returns the value stored at key.
	GetKV(key string) ([]byte, bool)
	// KVRange returns a copy of every entry whose key has the prefix.
	KVRange(prefix string) map[string][]byte
}

// KV key prefixes inside the vault's side table.
const (
	keyPrefix = "session/key/" // session/key/<gen> → keyRecord JSON
	revPrefix = "session/rev/" // session/rev/<user> → decimal unix nanos
)

// Errors surfaced by Validate beyond ErrBadToken. Mint can
// additionally return ErrNoKey when no signing key is available yet
// (a follower that has not adopted the primary's keys).
var (
	// ErrNoKey means no signing key is installed.
	ErrNoKey = errors.New("session: no signing key available")
	// ErrExpired means the token's signature checked out but its
	// expiry has passed.
	ErrExpired = errors.New("session: token expired")
	// ErrRevoked means the token predates the user's revocation
	// watermark (password change, reset, or lockout).
	ErrRevoked = errors.New("session: token revoked")
	// ErrStaleGeneration means the token's signing generation has
	// rotated out of the overlap window.
	ErrStaleGeneration = errors.New("session: token generation rotated out")
)

// Options configures a Manager.
type Options struct {
	// Alg selects the signature algorithm for newly minted keys.
	// Zero means AlgEd25519. Existing persisted keys keep their own
	// algorithm; verification is per-key.
	Alg Alg
	// TTL is the token lifetime. Zero means 1 hour.
	TTL time.Duration
	// Rotate is the automatic key-rotation interval used by Start.
	// Zero disables the rotation loop (Rotate may still be called).
	Rotate time.Duration
	// Store persists keys and revocation watermarks. Nil keeps them
	// in memory only.
	Store KV
	// Now overrides the clock (tests). Nil means time.Now.
	Now func() time.Time
	// Logf receives operational log lines. Nil discards them.
	Logf func(format string, args ...any)
}

// key is an installed signing/verification key.
type key struct {
	alg     Alg
	gen     uint64
	secret  []byte // HMAC key, or Ed25519 seed
	priv    ed25519.PrivateKey
	pub     ed25519.PublicKey
	created int64 // unix seconds, informational
}

// keyRecord is the persisted JSON form of a key.
type keyRecord struct {
	V       int    `json:"v"`
	Alg     string `json:"alg"`
	Gen     uint64 `json:"gen"`
	Secret  []byte `json:"secret"`
	Created int64  `json:"created"`
}

// Verify-memoization cache. A full Ed25519 verify costs tens of
// microseconds — the same order as the PassPoints hash chain it is
// supposed to undercut — so the Manager remembers tokens whose
// signature has already checked out and re-verifies only the cheap,
// mutable predicates (expiry, generation window, revocation
// watermark) on later sightings. Only signature validity is cached;
// nothing that can change after minting is.
const (
	cacheShardCount = 16
	cacheShardCap   = 4096
)

type cacheEntry struct {
	gen    uint64
	expiry int64
	minted int64
	user   string
}

type cacheShard struct {
	mu sync.Mutex
	m  map[string]cacheEntry
}

// Manager mints, validates, rotates, and revokes session tokens.
// Validate touches only Manager memory — that is the tier's whole
// point — while Mint, Rotate, and Revoke write through the Store.
type Manager struct {
	opts Options

	// rotateMu serializes Rotate end to end so concurrent rotations
	// cannot persist two different secrets under one generation.
	rotateMu sync.Mutex

	mu   sync.RWMutex
	keys map[uint64]*key
	cur  uint64 // current minting generation; 0 = none installed

	revMu sync.RWMutex
	rev   map[string]int64 // user → minted-at-or-before watermark, unix nanos

	cache [cacheShardCount]cacheShard

	stop      chan struct{}
	done      chan struct{}
	startOnce sync.Once
	stopOnce  sync.Once

	// Counters for the Prometheus surface.
	mints        atomic.Uint64
	mintFailures atomic.Uint64
	validateOK   atomic.Uint64
	cacheHits    atomic.Uint64
	rejBadToken  atomic.Uint64
	rejExpired   atomic.Uint64
	rejRevoked   atomic.Uint64
	rejStaleGen  atomic.Uint64
	rotations    atomic.Uint64
	revocations  atomic.Uint64
}

// New builds a Manager, reseeds any persisted key and revocation
// state from the Store, and — on a node whose Store accepts writes —
// creates the first key if none exists. On a follower the initial
// creation is deferred: keys arrive through ApplyKV as the primary's
// writes replicate.
func New(opts Options) (*Manager, error) {
	if opts.Alg == 0 {
		opts.Alg = AlgEd25519
	}
	if _, err := ParseAlg(opts.Alg.String()); err != nil {
		return nil, err
	}
	if opts.TTL <= 0 {
		opts.TTL = time.Hour
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	m := &Manager{
		opts: opts,
		keys: make(map[uint64]*key),
		rev:  make(map[string]int64),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	for i := range m.cache {
		m.cache[i].m = make(map[string]cacheEntry, 64)
	}
	if err := m.Reseed(); err != nil {
		return nil, err
	}
	return m, nil
}

// Reseed reloads keys and revocation watermarks from the Store and,
// if the key set is empty, attempts to create generation 1. It is
// called by New and must be called again when a follower is promoted:
// the watch kept it current, but promotion makes the store writable,
// so a node promoted before the primary ever minted can now create
// the first key itself.
func (m *Manager) Reseed() error {
	if m.opts.Store == nil {
		m.ensureFirstKey()
		return nil
	}
	for k, v := range m.opts.Store.KVRange("session/") {
		m.ApplyKV(k, v)
	}
	m.ensureFirstKey()
	return nil
}

// ensureFirstKey creates generation cur+1 when no key is installed,
// tolerating a store that refuses writes (follower): the creation is
// simply retried at the next Reseed or rotation tick, and in the
// meantime ApplyKV will usually have delivered the primary's keys.
func (m *Manager) ensureFirstKey() {
	m.mu.RLock()
	empty := m.cur == 0
	m.mu.RUnlock()
	if !empty {
		return
	}
	if err := m.Rotate(); err != nil {
		m.opts.Logf("session: deferring initial key creation: %v", err)
	}
}

// Rotate creates and persists the next key generation, makes it the
// minting key, and retires generations older than the overlap window
// (current and previous) from memory and the Store. On a node whose
// Store refuses writes the rotation is aborted before any local state
// changes — followers never invent keys the primary cannot verify.
func (m *Manager) Rotate() error {
	m.rotateMu.Lock()
	defer m.rotateMu.Unlock()
	m.mu.RLock()
	gen := m.cur + 1
	m.mu.RUnlock()

	k, rec, err := newKey(m.opts.Alg, gen, m.opts.Now().Unix())
	if err != nil {
		return err
	}
	if m.opts.Store != nil {
		buf, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		// Persist first: a key that exists only in this process's
		// memory would mint tokens that neither a restarted self nor
		// the follower could verify.
		if err := m.opts.Store.SetKV(keyPrefix+strconv.FormatUint(gen, 10), buf); err != nil {
			return fmt.Errorf("persisting session key gen %d: %w", gen, err)
		}
	}

	var retired []uint64
	m.mu.Lock()
	m.keys[gen] = k
	if gen > m.cur {
		m.cur = gen
	}
	for g := range m.keys {
		if g+1 < m.cur {
			delete(m.keys, g)
			retired = append(retired, g)
		}
	}
	m.mu.Unlock()

	if m.opts.Store != nil {
		for _, g := range retired {
			// Best-effort: a failed delete leaves a dead record that
			// the next successful rotation retries.
			if err := m.opts.Store.SetKV(keyPrefix+strconv.FormatUint(g, 10), nil); err != nil {
				m.opts.Logf("session: retiring key gen %d: %v", g, err)
			}
		}
	}
	m.rotations.Add(1)
	m.opts.Logf("session: rotated to key generation %d (%s)", gen, k.alg)
	return nil
}

// newKey generates key material for gen under alg.
func newKey(alg Alg, gen uint64, created int64) (*key, *keyRecord, error) {
	secret := make([]byte, 32)
	if _, err := io.ReadFull(rand.Reader, secret); err != nil {
		return nil, nil, err
	}
	k := &key{alg: alg, gen: gen, secret: secret, created: created}
	if alg == AlgEd25519 {
		k.priv = ed25519.NewKeyFromSeed(secret)
		k.pub = k.priv.Public().(ed25519.PublicKey)
	}
	rec := &keyRecord{V: 1, Alg: alg.String(), Gen: gen, Secret: secret, Created: created}
	return k, rec, nil
}

// keyFromRecord rebuilds an installed key from its persisted form.
func keyFromRecord(rec *keyRecord) (*key, error) {
	alg, err := ParseAlg(rec.Alg)
	if err != nil {
		return nil, err
	}
	if len(rec.Secret) != 32 {
		return nil, fmt.Errorf("session: key gen %d has %d-byte secret, want 32", rec.Gen, len(rec.Secret))
	}
	if rec.Gen == 0 {
		return nil, errors.New("session: key record has generation 0")
	}
	k := &key{alg: alg, gen: rec.Gen, secret: rec.Secret, created: rec.Created}
	if alg == AlgEd25519 {
		k.priv = ed25519.NewKeyFromSeed(rec.Secret)
		k.pub = k.priv.Public().(ed25519.PublicKey)
	}
	return k, nil
}

// ApplyKV feeds one replicated (or reseeded) side-table entry into
// the Manager. Wire it to the vault's KV watch
// (vault.KVStore.SetKVWatch) so a follower's key set and revocation
// watermarks track the primary's with no polling. Unknown keys under
// other prefixes are ignored; malformed session entries are logged
// and dropped rather than poisoning the manager.
func (m *Manager) ApplyKV(kvKey string, val []byte) {
	switch {
	case strings.HasPrefix(kvKey, keyPrefix):
		gen, err := strconv.ParseUint(kvKey[len(keyPrefix):], 10, 64)
		if err != nil || gen == 0 {
			m.opts.Logf("session: ignoring malformed key entry %q", kvKey)
			return
		}
		if len(val) == 0 {
			m.mu.Lock()
			delete(m.keys, gen)
			m.mu.Unlock()
			return
		}
		var rec keyRecord
		if err := json.Unmarshal(val, &rec); err != nil {
			m.opts.Logf("session: ignoring undecodable key gen %d: %v", gen, err)
			return
		}
		rec.Gen = gen // the KV key is authoritative
		k, err := keyFromRecord(&rec)
		if err != nil {
			m.opts.Logf("session: ignoring unusable key gen %d: %v", gen, err)
			return
		}
		m.mu.Lock()
		m.keys[gen] = k
		if gen > m.cur {
			m.cur = gen
			for g := range m.keys {
				if g+1 < m.cur {
					delete(m.keys, g)
				}
			}
		}
		m.mu.Unlock()
	case strings.HasPrefix(kvKey, revPrefix):
		user := kvKey[len(revPrefix):]
		if user == "" {
			return
		}
		if len(val) == 0 {
			m.revMu.Lock()
			delete(m.rev, user)
			m.revMu.Unlock()
			return
		}
		wm, err := strconv.ParseInt(string(val), 10, 64)
		if err != nil {
			m.opts.Logf("session: ignoring malformed revocation for %q: %v", user, err)
			return
		}
		m.revMu.Lock()
		if wm > m.rev[user] {
			m.rev[user] = wm
		}
		m.revMu.Unlock()
	}
}

// Mint issues a signed token for user, valid for the configured TTL.
func (m *Manager) Mint(user string) (string, error) {
	m.mu.RLock()
	k := m.keys[m.cur]
	m.mu.RUnlock()
	if k == nil {
		m.mintFailures.Add(1)
		return "", ErrNoKey
	}
	now := m.opts.Now()
	c := &claims{
		alg:    k.alg,
		gen:    k.gen,
		expiry: now.Add(m.opts.TTL).UnixNano(),
		minted: now.UnixNano(),
		user:   user,
	}
	tok, err := encodeToken(c, k)
	if err != nil {
		m.mintFailures.Add(1)
		return "", err
	}
	m.mints.Add(1)
	return tok, nil
}

// Validate checks a token and returns the user it names. It performs
// no store I/O of any kind: signature keys, the generation window,
// and revocation watermarks are all consulted in memory. The error is
// ErrBadToken, ErrExpired, ErrStaleGeneration, or ErrRevoked.
func (m *Manager) Validate(token string) (string, error) {
	sh := &m.cache[cacheShardFor(token)]
	sh.mu.Lock()
	ent, hit := sh.m[token]
	sh.mu.Unlock()
	if !hit {
		c, payload, sig, err := decodeToken(token)
		if err != nil {
			m.rejBadToken.Add(1)
			return "", err
		}
		m.mu.RLock()
		k := m.keys[c.gen]
		inWindow := c.gen == m.cur || c.gen+1 == m.cur
		m.mu.RUnlock()
		if !inWindow {
			m.rejStaleGen.Add(1)
			return "", ErrStaleGeneration
		}
		if k == nil || k.alg != c.alg || !k.verify(payload, sig) {
			m.rejBadToken.Add(1)
			return "", ErrBadToken
		}
		ent = cacheEntry{gen: c.gen, expiry: c.expiry, minted: c.minted, user: c.user}
		sh.mu.Lock()
		if len(sh.m) >= cacheShardCap {
			// Arbitrary single-entry eviction: the cache is a
			// memoization, not an LRU, and correctness never depends
			// on what is in it.
			for t := range sh.m {
				delete(sh.m, t)
				break
			}
		}
		sh.m[token] = ent
		sh.mu.Unlock()
	} else {
		m.cacheHits.Add(1)
	}

	// The mutable predicates are re-checked on every call, cached or
	// not: a cache hit only skips the signature arithmetic.
	m.mu.RLock()
	inWindow := ent.gen == m.cur || ent.gen+1 == m.cur
	m.mu.RUnlock()
	if !inWindow {
		m.rejStaleGen.Add(1)
		return "", ErrStaleGeneration
	}
	if m.opts.Now().UnixNano() >= ent.expiry {
		m.rejExpired.Add(1)
		return "", ErrExpired
	}
	m.revMu.RLock()
	wm := m.rev[ent.user]
	m.revMu.RUnlock()
	if ent.minted <= wm {
		m.rejRevoked.Add(1)
		return "", ErrRevoked
	}
	m.validateOK.Add(1)
	return ent.user, nil
}

// Revoke stamps user's revocation watermark at now: every token
// minted at or before this instant is refused from here on. The local
// watermark takes effect immediately even if the durable write fails
// (a follower applying a replicated lockout cannot write, but must
// still refuse locally); the returned error reports only the
// persistence outcome.
func (m *Manager) Revoke(user string) error {
	if user == "" {
		return nil
	}
	wm := m.opts.Now().UnixNano()
	m.revMu.Lock()
	if wm > m.rev[user] {
		m.rev[user] = wm
	}
	m.revMu.Unlock()
	m.revocations.Add(1)
	if m.opts.Store == nil {
		return nil
	}
	return m.opts.Store.SetKV(revPrefix+user, []byte(strconv.FormatInt(wm, 10)))
}

// Start launches the automatic rotation loop when Options.Rotate is
// positive. Safe to call once; Close stops it.
func (m *Manager) Start() {
	m.startOnce.Do(func() {
		if m.opts.Rotate <= 0 {
			close(m.done)
			return
		}
		go func() {
			defer close(m.done)
			t := time.NewTicker(m.opts.Rotate)
			defer t.Stop()
			for {
				select {
				case <-m.stop:
					return
				case <-t.C:
					if err := m.Rotate(); err != nil {
						m.opts.Logf("session: rotation failed: %v", err)
					}
				}
			}
		}()
	})
}

// Close stops the rotation loop. The Manager remains usable for
// validation afterwards.
func (m *Manager) Close() {
	m.startOnce.Do(func() { close(m.done) }) // never Started: nothing to wait for
	m.stopOnce.Do(func() { close(m.stop) })
	<-m.done
}

// Generations returns the current minting generation and the number
// of key generations held in memory.
func (m *Manager) Generations() (cur uint64, active int) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.cur, len(m.keys)
}

// cacheShardFor picks the verify-cache shard for a token.
func cacheShardFor(token string) int {
	h := fnv.New32a()
	io.WriteString(h, token)
	return int(h.Sum32() % cacheShardCount)
}

// WritePrometheus writes the session tier's metrics in the
// Prometheus text exposition format: mint/validate/reject counters,
// cache hits, rotations, revocations, and the key-generation gauges.
func (m *Manager) WritePrometheus(w io.Writer) {
	cur, active := m.Generations()
	m.revMu.RLock()
	revoked := len(m.rev)
	m.revMu.RUnlock()
	fmt.Fprintf(w, "# HELP session_mint_total Session tokens minted.\n")
	fmt.Fprintf(w, "# TYPE session_mint_total counter\n")
	fmt.Fprintf(w, "session_mint_total %d\n", m.mints.Load())
	fmt.Fprintf(w, "# HELP session_mint_failures_total Mint attempts that failed (no key, or signing error).\n")
	fmt.Fprintf(w, "# TYPE session_mint_failures_total counter\n")
	fmt.Fprintf(w, "session_mint_failures_total %d\n", m.mintFailures.Load())
	fmt.Fprintf(w, "# HELP session_validate_total Token validations, by outcome.\n")
	fmt.Fprintf(w, "# TYPE session_validate_total counter\n")
	fmt.Fprintf(w, "session_validate_total{outcome=\"ok\"} %d\n", m.validateOK.Load())
	fmt.Fprintf(w, "session_validate_total{outcome=\"bad_token\"} %d\n", m.rejBadToken.Load())
	fmt.Fprintf(w, "session_validate_total{outcome=\"expired\"} %d\n", m.rejExpired.Load())
	fmt.Fprintf(w, "session_validate_total{outcome=\"revoked\"} %d\n", m.rejRevoked.Load())
	fmt.Fprintf(w, "session_validate_total{outcome=\"stale_generation\"} %d\n", m.rejStaleGen.Load())
	fmt.Fprintf(w, "# HELP session_verify_cache_hits_total Validations served from the signature memoization cache.\n")
	fmt.Fprintf(w, "# TYPE session_verify_cache_hits_total counter\n")
	fmt.Fprintf(w, "session_verify_cache_hits_total %d\n", m.cacheHits.Load())
	fmt.Fprintf(w, "# HELP session_rotations_total Key rotations performed.\n")
	fmt.Fprintf(w, "# TYPE session_rotations_total counter\n")
	fmt.Fprintf(w, "session_rotations_total %d\n", m.rotations.Load())
	fmt.Fprintf(w, "# HELP session_revocations_total Revocation watermarks stamped.\n")
	fmt.Fprintf(w, "# TYPE session_revocations_total counter\n")
	fmt.Fprintf(w, "session_revocations_total %d\n", m.revocations.Load())
	fmt.Fprintf(w, "# HELP session_key_generation Current minting key generation.\n")
	fmt.Fprintf(w, "# TYPE session_key_generation gauge\n")
	fmt.Fprintf(w, "session_key_generation %d\n", cur)
	fmt.Fprintf(w, "# HELP session_active_key_generations Key generations held in memory (current plus overlap).\n")
	fmt.Fprintf(w, "# TYPE session_active_key_generations gauge\n")
	fmt.Fprintf(w, "session_active_key_generations %d\n", active)
	fmt.Fprintf(w, "# HELP session_revoked_users Users with an active revocation watermark.\n")
	fmt.Fprintf(w, "# TYPE session_revoked_users gauge\n")
	fmt.Fprintf(w, "session_revoked_users %d\n", revoked)
}

// Command pwserver serves a PassPoints vault over TCP (length-prefixed
// JSON frames) and HTTP:
//
//	pwserver -vault v.json -tcp :7700 -http :7780 -metrics :7790 -side 13 -lockout 10
//
// Both fronts are thin codecs over one authsvc pipeline: -maxconns is
// a single admission budget shared by TCP and HTTP (combined in-flight
// requests never exceed it) and -userrate adds a per-user token
// bucket. -metrics starts the admin surface (request counters,
// latency, and in-flight gauge as JSON, plus the lockout reset) on
// its own address — bind it to loopback or a protected network, never
// the public one. The lockout bounds online dictionary
// attacks (§5.1): after N failed logins an account refuses further
// attempts until an administrative reset. -shards selects the storage
// backend (0 = single-lock vault, N > 0 = N-way sharded store; both
// read and write the same file). SIGINT/SIGTERM drain in-flight
// connections before exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"clickpass/internal/authproto"
	"clickpass/internal/core"
	"clickpass/internal/geom"
	"clickpass/internal/passpoints"
	"clickpass/internal/vault"
)

func main() {
	var (
		vaultPath   = flag.String("vault", "vault.json", "vault file path")
		tcpAddr     = flag.String("tcp", ":7700", "TCP listen address (empty to disable)")
		httpAddr    = flag.String("http", "", "HTTP listen address (empty to disable)")
		metricsAddr = flag.String("metrics", "", "admin listen address serving GET /metrics and POST /v1/reset (bind to loopback; empty to disable)")
		imageW      = flag.Int("image-w", 451, "image width (pixels)")
		imageH      = flag.Int("image-h", 331, "image height (pixels)")
		side        = flag.Int("side", 13, "grid-square side (pixels)")
		schemeArg   = flag.String("scheme", "centered", "discretization scheme: centered or robust")
		iter        = flag.Int("iterations", 1000, "hash iterations")
		lockout     = flag.Int("lockout", authproto.DefaultLockout, "failed attempts before lockout")
		useTLS      = flag.Bool("tls", false, "wrap the TCP listener in TLS with an ephemeral self-signed certificate")
		shards      = flag.Int("shards", 0, "vault shard count (0 = single-lock store, >0 = sharded store)")
		maxConns    = flag.Int("maxconns", authproto.DefaultMaxConns, "max in-flight requests across all fronts (and TCP connection pool size)")
		userRate    = flag.Float64("userrate", 0, "per-user request rate limit in req/s across all fronts (0 = off)")
		userBurst   = flag.Int("userburst", 5, "per-user burst budget for -userrate")
		drain       = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain budget on SIGINT/SIGTERM")
	)
	flag.Parse()

	var (
		scheme core.Scheme
		err    error
	)
	switch *schemeArg {
	case "centered":
		scheme, err = core.NewCentered(*side)
	case "robust":
		scheme, err = core.NewRobust2D(*side, core.MostCentered, 0)
	default:
		err = fmt.Errorf("unknown scheme %q", *schemeArg)
	}
	if err != nil {
		fatal(err)
	}
	var store vault.Store
	if *shards > 0 {
		store, err = vault.OpenSharded(*vaultPath, *shards)
	} else {
		store, err = vault.Open(*vaultPath)
	}
	if err != nil {
		fatal(err)
	}
	cfg := passpoints.Config{
		Image:      geom.Size{W: *imageW, H: *imageH},
		Clicks:     passpoints.DefaultClicks,
		Scheme:     scheme,
		Iterations: *iter,
	}
	srv, err := authproto.NewServer(cfg, store, *lockout)
	if err != nil {
		fatal(err)
	}
	srv.SetMaxConns(*maxConns)
	if *userRate > 0 {
		srv.SetUserRate(*userRate, *userBurst)
	}
	if *tcpAddr == "" && *httpAddr == "" {
		fatal(fmt.Errorf("nothing to serve: both -tcp and -http are empty"))
	}
	backend := "single-lock"
	if *shards > 0 {
		backend = fmt.Sprintf("%d-shard", *shards)
	}
	errc := make(chan error, 3)
	if *tcpAddr != "" {
		l, err := net.Listen("tcp", *tcpAddr)
		if err != nil {
			fatal(err)
		}
		if *useTLS {
			cert, err := authproto.SelfSignedCert([]string{"127.0.0.1", "localhost"}, 365*24*time.Hour)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("pwserver: TLS on %s (%s %dx%d, lockout %d, %s vault, %d shared in-flight; self-signed cert %x...)\n",
				l.Addr(), scheme.Name(), *side, *side, *lockout, backend, *maxConns, cert.Certificate[0][:8])
			go func() { errc <- srv.ServeTLS(l, cert) }()
		} else {
			fmt.Printf("pwserver: TCP on %s (%s %dx%d, lockout %d, %s vault, %d shared in-flight)\n",
				l.Addr(), scheme.Name(), *side, *side, *lockout, backend, *maxConns)
			go func() { errc <- srv.Serve(l) }()
		}
	}
	var httpSrv *http.Server
	if *httpAddr != "" {
		fmt.Printf("pwserver: HTTP on %s (same %d-request admission limit as TCP)\n", *httpAddr, *maxConns)
		httpSrv = &http.Server{Addr: *httpAddr, Handler: srv.HTTPHandler()}
		go func() {
			if err := httpSrv.ListenAndServe(); err != http.ErrServerClosed {
				errc <- err
			}
		}()
	}
	var metricsSrv *http.Server
	if *metricsAddr != "" {
		fmt.Printf("pwserver: admin (metrics + lockout reset) on %s\n", *metricsAddr)
		metricsSrv = &http.Server{Addr: *metricsAddr, Handler: srv.AdminHandler()}
		go func() {
			if err := metricsSrv.ListenAndServe(); err != http.ErrServerClosed {
				errc <- err
			}
		}()
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fatal(err)
	case sig := <-sigc:
		fmt.Printf("pwserver: %s — draining (up to %s)\n", sig, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		// Drain both front ends; "drained" must mean every in-flight
		// request, TCP and HTTP, got its response.
		err := srv.Shutdown(ctx)
		if httpSrv != nil {
			if herr := httpSrv.Shutdown(ctx); err == nil {
				err = herr
			}
		}
		if metricsSrv != nil {
			_ = metricsSrv.Close()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "pwserver: drain incomplete:", err)
			os.Exit(1)
		}
		fmt.Println("pwserver: drained")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pwserver:", err)
	os.Exit(1)
}

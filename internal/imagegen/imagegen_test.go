package imagegen

import (
	"math"
	"testing"

	"clickpass/internal/geom"
	"clickpass/internal/rng"
)

func TestProxiesValidate(t *testing.T) {
	for _, im := range Gallery() {
		if err := im.Validate(); err != nil {
			t.Errorf("%s: %v", im.Name, err)
		}
		if im.Size != StudySize {
			t.Errorf("%s: size %v, want %v", im.Name, im.Size, StudySize)
		}
	}
}

func TestValidateRejectsBadImages(t *testing.T) {
	cases := map[string]*Image{
		"empty size":     {Name: "x", Hotspots: []Hotspot{{X: 1, Y: 1, Sigma: 1, Weight: 1}}},
		"no sources":     {Name: "x", Size: geom.Size{W: 10, H: 10}},
		"zero sigma":     {Name: "x", Size: geom.Size{W: 10, H: 10}, Hotspots: []Hotspot{{X: 1, Y: 1, Weight: 1}}},
		"neg weight":     {Name: "x", Size: geom.Size{W: 10, H: 10}, Hotspots: []Hotspot{{X: 1, Y: 1, Sigma: 1, Weight: -1}}},
		"outside center": {Name: "x", Size: geom.Size{W: 10, H: 10}, Hotspots: []Hotspot{{X: 20, Y: 1, Sigma: 1, Weight: 1}}},
		"neg uniform":    {Name: "x", Size: geom.Size{W: 10, H: 10}, UniformWeight: -1},
	}
	for name, im := range cases {
		if err := im.Validate(); err == nil {
			t.Errorf("%s: expected validation error", name)
		}
	}
}

func TestSamplesInsideImage(t *testing.T) {
	for _, im := range Gallery() {
		r := rng.New(1)
		for i := 0; i < 5000; i++ {
			p := im.SampleClick(r)
			if !im.Size.Contains(p) {
				t.Fatalf("%s: sample %v outside image", im.Name, p)
			}
		}
	}
}

func TestSamplingDeterministic(t *testing.T) {
	im := Cars()
	a, b := rng.New(42), rng.New(42)
	for i := 0; i < 100; i++ {
		if im.SampleClick(a) != im.SampleClick(b) {
			t.Fatal("same seed produced different clicks")
		}
	}
}

// TestHotspotConcentration: most clicks land near some hotspot — the
// property the dictionary attacks depend on — and Pool is more
// concentrated than Cars.
func TestHotspotConcentration(t *testing.T) {
	frac := func(im *Image, radius float64) float64 {
		r := rng.New(7)
		const n = 20000
		near := 0
		for i := 0; i < n; i++ {
			p := im.SampleClick(r)
			px, py := p.X.Float(), p.Y.Float()
			for _, h := range im.Hotspots {
				if math.Hypot(px-h.X, py-h.Y) <= radius {
					near++
					break
				}
			}
		}
		return float64(near) / n
	}
	cars := frac(Cars(), 15)
	pool := frac(Pool(), 15)
	if cars < 0.5 {
		t.Errorf("cars concentration %.2f < 0.5 — hotspots too weak for attacks", cars)
	}
	if pool <= cars {
		t.Errorf("pool (%.2f) should be more concentrated than cars (%.2f)", pool, cars)
	}
}

func TestSaliencyPeaksAtHotspots(t *testing.T) {
	for _, im := range Gallery() {
		h := im.Hotspots[0]
		at := im.Saliency(geom.Pt(int(h.X), int(h.Y)))
		// A far point that is not itself a hotspot center.
		far := im.Saliency(geom.Pt(5, 320))
		if at <= far {
			t.Errorf("%s: saliency at hotspot %.3g <= far point %.3g", im.Name, at, far)
		}
		if far <= 0 {
			t.Errorf("%s: uniform background should keep saliency positive", im.Name)
		}
	}
}

// TestSaliencyIntegratesToOne: summed over all pixels the density
// should approximate 1 (it is a probability density over the image).
func TestSaliencyIntegratesToOne(t *testing.T) {
	im := Pool()
	var total float64
	for x := 0; x < im.Size.W; x += 2 {
		for y := 0; y < im.Size.H; y += 2 {
			total += im.Saliency(geom.Pt(x, y)) * 4 // 2x2 cell
		}
	}
	if total < 0.9 || total > 1.1 {
		t.Errorf("density integrates to %.3f, want ~1", total)
	}
}

func TestUniformOnlyImage(t *testing.T) {
	im := &Image{Name: "flat", Size: geom.Size{W: 100, H: 50}, UniformWeight: 1}
	if err := im.Validate(); err != nil {
		t.Fatal(err)
	}
	r := rng.New(3)
	seenLeft, seenRight := false, false
	for i := 0; i < 1000; i++ {
		p := im.SampleClick(r)
		if !im.Size.Contains(p) {
			t.Fatal("sample outside image")
		}
		if p.X.Pixels() < 50 {
			seenLeft = true
		} else {
			seenRight = true
		}
	}
	if !seenLeft || !seenRight {
		t.Error("uniform sampling not covering the image")
	}
}

func TestParametric(t *testing.T) {
	flat, err := Parametric("flat", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(flat.Hotspots) != 0 || flat.UniformWeight != 1 {
		t.Error("concentration 0 should be uniform")
	}
	mid, err := Parametric("mid", 1)
	if err != nil {
		t.Fatal(err)
	}
	hot, err := Parametric("hot", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(hot.Hotspots) >= len(mid.Hotspots) {
		t.Errorf("higher concentration should mean fewer hotspots: %d vs %d",
			len(hot.Hotspots), len(mid.Hotspots))
	}
	if hot.Hotspots[0].Sigma >= mid.Hotspots[0].Sigma {
		t.Error("higher concentration should mean tighter hotspots")
	}
	if _, err := Parametric("x", -1); err == nil {
		t.Error("negative concentration accepted")
	}
	// Sampling concentration: fraction of clicks within 12px of a
	// hotspot center rises with concentration.
	frac := func(im *Image) float64 {
		r := rng.New(3)
		near, n := 0, 5000
		for i := 0; i < n; i++ {
			p := im.SampleClick(r)
			for _, h := range im.Hotspots {
				if math.Hypot(p.X.Float()-h.X, p.Y.Float()-h.Y) <= 12 {
					near++
					break
				}
			}
		}
		return float64(near) / float64(n)
	}
	if frac(hot) <= frac(mid) {
		t.Errorf("concentration did not raise clustering: %.2f vs %.2f", frac(hot), frac(mid))
	}
}

package par

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

var workerCounts = []int{1, 2, 8}

func TestMapOrderedAcrossWorkerCounts(t *testing.T) {
	const n = 257
	var want []int
	for _, w := range workerCounts {
		got, err := Map(w, n, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if len(got) != n {
			t.Fatalf("workers=%d: %d results, want %d", w, len(got), n)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result %d = %d, want %d", w, i, v, i*i)
			}
		}
		if want == nil {
			want = got
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: result %d differs from serial", w, i)
			}
		}
	}
}

func TestMapReturnsLowestIndexError(t *testing.T) {
	// Several tasks fail; the reported error must always be the one
	// from the lowest failing index, independent of scheduling. Repeat
	// to shake out racy orderings.
	failAt := map[int]bool{3: true, 7: true, 40: true}
	for trial := 0; trial < 50; trial++ {
		_, err := Map(4, 64, func(i int) (int, error) {
			if failAt[i] {
				return 0, fmt.Errorf("task %d failed", i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "task 3 failed" {
			t.Fatalf("trial %d: err = %v, want task 3 failed", trial, err)
		}
	}
}

func TestMapStopsEarlyAfterError(t *testing.T) {
	var executed atomic.Int64
	boom := errors.New("boom")
	_, err := Map(2, 100000, func(i int) (int, error) {
		executed.Add(1)
		if i == 0 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if n := executed.Load(); n == 100000 {
		t.Error("all tasks ran despite an early failure")
	}
}

func TestMapWithPerWorkerState(t *testing.T) {
	// Each worker gets its own counter; the per-state totals must sum
	// to n (every task executed exactly once) and the number of states
	// must not exceed the worker bound.
	const n, workers = 1000, 4
	var states atomic.Int64
	counters := make(chan *atomic.Int64, workers)
	_, err := MapWith(workers, n,
		func() *atomic.Int64 {
			states.Add(1)
			c := new(atomic.Int64)
			counters <- c
			return c
		},
		func(c *atomic.Int64, i int) (struct{}, error) {
			c.Add(1)
			return struct{}{}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if s := states.Load(); s > workers {
		t.Errorf("%d states created for %d workers", s, workers)
	}
	close(counters)
	var total int64
	for c := range counters {
		total += c.Load()
	}
	if total != n {
		t.Errorf("executed %d tasks, want %d", total, n)
	}
}

func TestForEach(t *testing.T) {
	out := make([]int, 100)
	if err := ForEach(3, len(out), func(i int) error {
		out[i] = i + 1
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i+1 {
			t.Fatalf("slot %d = %d", i, v)
		}
	}
	wantErr := errors.New("nope")
	if err := ForEach(3, 10, func(i int) error {
		if i == 5 {
			return wantErr
		}
		return nil
	}); !errors.Is(err, wantErr) {
		t.Errorf("ForEach error = %v", err)
	}
}

func TestEdgeCases(t *testing.T) {
	if got, err := Map(4, 0, func(i int) (int, error) { return 0, nil }); err != nil || len(got) != 0 {
		t.Errorf("zero tasks: %v %v", got, err)
	}
	if _, err := Map(4, -1, func(i int) (int, error) { return 0, nil }); err == nil {
		t.Error("negative task count accepted")
	}
	// workers <= 0 resolves to GOMAXPROCS; must still work.
	got, err := Map(0, 10, func(i int) (int, error) { return i, nil })
	if err != nil || len(got) != 10 {
		t.Errorf("auto workers: %v %v", got, err)
	}
	// More workers than tasks.
	got, err = Map(64, 3, func(i int) (int, error) { return i, nil })
	if err != nil || len(got) != 3 {
		t.Errorf("excess workers: %v %v", got, err)
	}
}

func TestPanicBecomesError(t *testing.T) {
	for _, w := range []int{1, 4} {
		_, err := Map(w, 10, func(i int) (int, error) {
			if i == 2 {
				panic("kaboom")
			}
			return i, nil
		})
		if err == nil || !strings.Contains(err.Error(), "task 2 panicked") {
			t.Errorf("workers=%d: panic not converted: %v", w, err)
		}
	}
}

func TestClamp(t *testing.T) {
	if w := clamp(0, 100); w != Default() {
		t.Errorf("clamp(0) = %d, want %d", w, Default())
	}
	if w := clamp(-3, 100); w != Default() {
		t.Errorf("clamp(-3) = %d", w)
	}
	if w := clamp(16, 4); w != 4 {
		t.Errorf("clamp(16, 4 tasks) = %d, want 4", w)
	}
}

func TestStateConstructorPanicBecomesError(t *testing.T) {
	for _, w := range []int{1, 4} {
		_, err := MapWith(w, 10,
			func() int { panic("bad state") },
			func(s int, i int) (int, error) { return i, nil })
		if err == nil || !strings.Contains(err.Error(), "state constructor panicked") {
			t.Errorf("workers=%d: constructor panic not contained: %v", w, err)
		}
	}
}

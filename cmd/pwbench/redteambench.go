package main

// The -redteam mode: measure the scenario engine's wire-rate — how
// fast the red-team harness can push a streamed victim population and
// the saliency-ordered guess stream through a real serving stack
// (framed-TCP codec, admission limiter, lockout counters). One op is
// one full campaign — server bring-up, streamed enroll, wire attack,
// shutdown — against a fresh vault, so iterations are independent and
// the number captures the end-to-end cost per campaign, not a single
// request; the per-worker rows show how far transport fan-out scales
// it. Recorded as BENCH_redteam.json next to the engine numbers and
// guarded by the same -diff gate.

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"clickpass/internal/authproto"
	"clickpass/internal/core"
	"clickpass/internal/dataset"
	"clickpass/internal/geom"
	"clickpass/internal/imagegen"
	"clickpass/internal/loadtest"
	"clickpass/internal/passpoints"
	"clickpass/internal/scenario"
	"clickpass/internal/study"
	"clickpass/internal/vault"
)

// redteamAccounts is the victim population per campaign; redteamLockout
// the per-account guess budget. Small enough for sub-second campaigns,
// large enough that the fan-out has accounts to spread.
const (
	redteamAccounts = 48
	redteamLockout  = 8
)

// runRedteamBench measures one enroll-and-attack campaign per op at
// each worker count, writes BENCH_redteam.json into outDir, and prints
// a Markdown table. Every campaign gets its own in-process pwserver on
// a fresh vault over loopback TCP — lockout counters and enrolled
// names never leak between iterations, so per-op cost is independent
// of how many iterations the -benchtime budget buys.
func runRedteamBench(outDir string, counts []int, seed uint64) error {
	img := imagegen.Cars()
	fcfg := study.FieldConfig(img, seed)
	fcfg.Passwords = redteamAccounts
	field, err := study.Run(fcfg)
	if err != nil {
		return err
	}
	lab, err := study.Run(study.LabConfig(img, seed+100))
	if err != nil {
		return err
	}
	guesses, err := scenario.Guesses(lab, img, redteamLockout)
	if err != nil {
		return err
	}
	scheme, err := core.NewCentered(13)
	if err != nil {
		return err
	}

	accounts := func(emit func(string, []dataset.Click) error) error {
		for i := range field.Passwords {
			pw := &field.Passwords[i]
			if err := emit(scenario.AccountName(pw.ID), pw.Clicks); err != nil {
				return err
			}
		}
		return nil
	}

	// campaign brings up a fresh server, streams the population in,
	// runs the attack at the given fan-out, and tears the server down.
	campaign := func(workers int) error {
		srv, err := authproto.NewServer(passpoints.Config{
			Image:      geom.Size{W: 451, H: 331},
			Clicks:     5,
			Scheme:     scheme,
			Iterations: 2,
		}, vault.New(), redteamLockout)
		if err != nil {
			return err
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		done := make(chan struct{})
		go func() { _ = srv.Serve(l); close(done) }()
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			_ = srv.Shutdown(ctx)
			<-done
		}()
		cfg := scenario.Config{
			Dial:    loadtest.TCPTransport(l.Addr().String(), 5*time.Second),
			Workers: workers,
		}
		users, err := scenario.EnrollStream(cfg, accounts)
		if err != nil {
			return err
		}
		rep, err := scenario.RedTeam(cfg, users, guesses)
		if err != nil {
			return err
		}
		if rep.Incomplete != 0 {
			return fmt.Errorf("%d accounts incomplete", rep.Incomplete)
		}
		return nil
	}

	bench := Bench{Name: "redteam", GoMaxProcs: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU()}
	for _, w := range counts {
		var campErr error
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := campaign(w); err != nil {
					campErr = err
					b.FailNow()
				}
			}
		})
		if campErr != nil {
			return fmt.Errorf("redteam workers=%d: %w", w, campErr)
		}
		if r.N == 0 {
			return fmt.Errorf("redteam workers=%d: benchmark did not run", w)
		}
		bench.Runs = append(bench.Runs, Run{
			Workers:     w,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		})
		fmt.Fprintf(os.Stderr, "pwbench: measured redteam campaign at workers=%d\n", w)
	}
	fillSpeedups(bench.Runs)
	out, err := json.MarshalIndent(bench, "", "  ")
	if err != nil {
		return err
	}
	file := filepath.Join(outDir, "BENCH_redteam.json")
	if err := os.WriteFile(file, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "pwbench: wrote %s\n", file)
	fmt.Print(markdownTable([]Bench{bench}))
	return nil
}

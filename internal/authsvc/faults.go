package authsvc

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"
)

// FaultOptions configures WithFaults, the service-layer half of the
// fault-injection harness (the storage half is vault.NewFlaky). All
// decisions come from one seeded generator, so a chaos run is
// reproducible: same seed, same request order, same faults.
type FaultOptions struct {
	// Seed initializes the deterministic fault stream; 0 means 1.
	Seed uint64
	// ErrRate is the probability ([0,1]) a request is answered with an
	// injected CodeInternal instead of being handled.
	ErrRate float64
	// LatencyRate is the probability ([0,1]) a request is delayed by
	// Latency before being handled — a slow-dependency spike that
	// holds its admission slot, which is exactly how real latency
	// turns into overload.
	LatencyRate float64
	// Latency is the injected spike duration; 0 selects 10ms.
	Latency time.Duration
}

// Enabled reports whether any fault is configured.
func (o FaultOptions) Enabled() bool { return o.ErrRate > 0 || o.LatencyRate > 0 }

func (o FaultOptions) latency() time.Duration {
	if o.Latency <= 0 {
		return 10 * time.Millisecond
	}
	return o.Latency
}

// ParseFaultSpec parses a pwserver -chaos specification: a
// comma-separated list of key=value pairs, e.g.
//
//	seed=7,err=0.01,latrate=0.05,lat=25ms
//
// Keys: seed (uint), err (probability of an injected internal
// error), latrate (probability of a latency spike), lat (spike
// duration). Unknown keys and out-of-range probabilities are errors;
// an empty spec returns a disabled FaultOptions.
func ParseFaultSpec(spec string) (FaultOptions, error) {
	var o FaultOptions
	if strings.TrimSpace(spec) == "" {
		return o, nil
	}
	for _, part := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return o, fmt.Errorf("authsvc: fault spec %q: want key=value", part)
		}
		switch key {
		case "seed":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return o, fmt.Errorf("authsvc: fault seed %q: %w", val, err)
			}
			o.Seed = n
		case "err", "latrate":
			p, err := strconv.ParseFloat(val, 64)
			if err != nil || p < 0 || p > 1 {
				return o, fmt.Errorf("authsvc: fault rate %s=%q: want a probability in [0,1]", key, val)
			}
			if key == "err" {
				o.ErrRate = p
			} else {
				o.LatencyRate = p
			}
		case "lat":
			d, err := time.ParseDuration(val)
			if err != nil || d < 0 {
				return o, fmt.Errorf("authsvc: fault latency %q: want a duration", val)
			}
			o.Latency = d
		default:
			return o, fmt.Errorf("authsvc: unknown fault key %q (want seed, err, latrate, lat)", key)
		}
	}
	return o, nil
}

// faultRNG is a mutex-guarded splitmix64 stream: cheap, seedable, and
// deterministic, so fault schedules replay exactly under a fixed
// request order. Shared by WithFaults and vault's Flaky wrapper
// (duplicated there to keep the packages independent).
type faultRNG struct {
	mu sync.Mutex
	s  uint64
}

func newFaultRNG(seed uint64) *faultRNG {
	if seed == 0 {
		seed = 1
	}
	return &faultRNG{s: seed}
}

// float returns the next value in [0,1).
func (r *faultRNG) float() float64 {
	r.mu.Lock()
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	r.mu.Unlock()
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}

// WithFaults injects deterministic, seeded faults into the pipeline —
// latency spikes and internal-error responses at configured rates —
// for chaos testing (pwserver -chaos) and the fault-torture suite.
// Compose it innermost (inside admission and the in-flight gauge) so
// an injected latency spike occupies a real concurrency slot: that is
// how a slow dependency actually starves a server, and it is what the
// overload policy must absorb. Disabled options return the identity
// middleware.
func WithFaults(o FaultOptions) Middleware {
	if !o.Enabled() {
		return func(next Handler) Handler { return next }
	}
	rng := newFaultRNG(o.Seed)
	spike := o.latency()
	return func(next Handler) Handler {
		return HandlerFunc(func(ctx context.Context, req Request) Response {
			if o.LatencyRate > 0 && rng.float() < o.LatencyRate {
				t := time.NewTimer(spike)
				select {
				case <-t.C:
				case <-ctx.Done():
					t.Stop()
					return Response{Version: Version, Code: CodeUnavailable, Err: "deadline exceeded"}
				}
			}
			if o.ErrRate > 0 && rng.float() < o.ErrRate {
				return Response{Version: Version, Code: CodeInternal, Err: "injected fault"}
			}
			return next.Handle(ctx, req)
		})
	}
}

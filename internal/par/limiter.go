package par

import (
	"context"
	"log"
	"runtime/debug"
	"sync"
)

// Limiter is the streaming counterpart of Map: a semaphore-bounded
// worker pool for workloads that arrive one at a time (accepted
// connections, queued jobs) instead of as an indexed batch. It shares
// the package's semantics — a configurable concurrency limit
// defaulting to one slot per CPU, and a graceful drain that lets every
// admitted task finish — without the ordered-results machinery batch
// callers need.
//
// The zero value is not usable; construct with NewLimiter.
type Limiter struct {
	sem chan struct{}
	wg  sync.WaitGroup
}

// NewLimiter returns a limiter admitting at most limit concurrent
// tasks. limit <= 0 selects Default() (one per schedulable CPU).
func NewLimiter(limit int) *Limiter {
	if limit <= 0 {
		limit = Default()
	}
	return &Limiter{sem: make(chan struct{}, limit)}
}

// Cap returns the concurrency limit.
func (l *Limiter) Cap() int { return cap(l.sem) }

// Acquire blocks until a slot is free and claims it. Every Acquire
// must be paired with exactly one Release.
func (l *Limiter) Acquire() {
	l.sem <- struct{}{}
	l.wg.Add(1)
}

// AcquireContext blocks until a slot is free or ctx is done, claiming
// the slot and returning nil in the first case and returning ctx's
// error (with no slot held) in the second. It is the admission path
// for request-scoped callers whose deadline must bound queueing, not
// just handling.
func (l *Limiter) AcquireContext(ctx context.Context) error {
	// A pre-expired context must never admit, even when a slot is free:
	// select would otherwise pick randomly between the two ready cases.
	if err := ctx.Err(); err != nil {
		return err
	}
	select {
	case l.sem <- struct{}{}:
		l.wg.Add(1)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// TryAcquire claims a slot if one is free without blocking.
func (l *Limiter) TryAcquire() bool {
	select {
	case l.sem <- struct{}{}:
		l.wg.Add(1)
		return true
	default:
		return false
	}
}

// Release returns a slot claimed by Acquire or TryAcquire.
func (l *Limiter) Release() {
	<-l.sem
	l.wg.Done()
}

// Go runs fn on its own goroutine once a slot is free, blocking the
// caller until admission. A panicking task is contained (same policy
// as Map's per-task recovery): its slot is released and the process
// survives, so one poisoned connection cannot take down a server or
// leak capacity from its accept loop.
func (l *Limiter) Go(fn func()) {
	l.Acquire()
	go func() {
		defer l.Release()
		defer func() {
			if r := recover(); r != nil {
				log.Printf("par: task panicked: %v\n%s", r, debug.Stack())
			}
		}()
		fn()
	}()
}

// Drain blocks until every admitted task has released its slot. It
// does not close admission — the caller stops submitting (e.g. by
// closing its listener) before draining.
func (l *Limiter) Drain() { l.wg.Wait() }

// InFlight returns the number of currently admitted tasks.
func (l *Limiter) InFlight() int { return len(l.sem) }

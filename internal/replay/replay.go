// Package replay is the shared token-replay layer under the parallel
// experiment engine: it precomputes each password's enrollment tokens
// exactly once and answers batched "would this login be accepted?"
// queries against them.
//
// Every replaying experiment — the online attack's per-account guess
// loop, the success-rate tally, the false accept/reject tables — used
// to interleave enrollment with matching, which has two costs: tokens
// were recomputed or reallocated per password, and the enrollment of a
// stateful scheme (Robust + RandomSafe policy) was entangled with the
// replay loop, forcing the whole experiment serial. A Set separates
// the phases. Compile runs enrollment serially on the calling
// goroutine, in password order, so a stateful scheme consumes its RNG
// exactly as the pre-replay code did; the compiled Set is then
// immutable, and matching (Scheme.Locate is pure for every scheme) can
// fan out across any number of goroutines.
//
// The buffer discipline follows passhash.Hasher: a Set is reusable —
// Compile overwrites the previous contents, growing the flattened
// token buffer only when a larger input arrives — so sweep loops
// amortize all replay-layer allocations across iterations.
package replay

import (
	"fmt"

	"clickpass/internal/core"
	"clickpass/internal/dataset"
	"clickpass/internal/geom"
)

// Set holds the precomputed enrollment tokens of a password list under
// one scheme. Compile (re)fills a Set; after that the Set is immutable
// and safe for concurrent readers. The zero value is an empty Set
// ready for its first Compile.
type Set struct {
	scheme core.Scheme
	// tokens is the flattened token storage: password i's tokens are
	// tokens[offs[i]:offs[i+1]]. One buffer for the whole password
	// file, reused across Compiles, instead of one slice per password.
	tokens []core.Token
	offs   []int32
	// byID maps a dataset password ID to its ordinal; nil for Sets
	// compiled from raw point sequences.
	byID map[int]int32
}

// Compile enrolls every password of d under scheme, replacing the
// Set's previous contents. Enrollment runs serially in password order,
// so schemes with mutable state (Robust + RandomSafe) draw from their
// RNG in exactly the order a serial replay would.
func (s *Set) Compile(d *dataset.Dataset, scheme core.Scheme) {
	total := 0
	for i := range d.Passwords {
		total += len(d.Passwords[i].Clicks)
	}
	s.reset(scheme, len(d.Passwords))
	s.grow(total)
	if s.byID == nil {
		s.byID = make(map[int]int32, len(d.Passwords))
	} else {
		clear(s.byID)
	}
	for i := range d.Passwords {
		p := &d.Passwords[i]
		s.byID[p.ID] = int32(i)
		for j := range p.Clicks {
			s.tokens = append(s.tokens, scheme.Enroll(p.Clicks[j].Point()))
		}
		s.offs = append(s.offs, int32(len(s.tokens)))
	}
}

// CompilePoints enrolls raw click sequences (guess lists, synthetic
// passwords) instead of a dataset. ByID lookups are disabled.
func (s *Set) CompilePoints(pws [][]geom.Point, scheme core.Scheme) {
	total := 0
	for _, pts := range pws {
		total += len(pts)
	}
	s.reset(scheme, len(pws))
	s.grow(total)
	s.byID = nil
	for _, pts := range pws {
		for _, p := range pts {
			s.tokens = append(s.tokens, scheme.Enroll(p))
		}
		s.offs = append(s.offs, int32(len(s.tokens)))
	}
}

// grow reserves capacity for the whole token buffer up front, so
// compilation costs one allocation instead of log(n) growth copies.
func (s *Set) grow(total int) {
	if cap(s.tokens) < total {
		s.tokens = make([]core.Token, 0, total)
	}
}

// reset prepares the buffers for n passwords, keeping capacity.
func (s *Set) reset(scheme core.Scheme, n int) {
	s.scheme = scheme
	s.tokens = s.tokens[:0]
	if cap(s.offs) < n+1 {
		s.offs = make([]int32, 0, n+1)
	} else {
		s.offs = s.offs[:0]
	}
	s.offs = append(s.offs, 0)
}

// Compile is the one-shot constructor: a fresh Set over d.
func Compile(d *dataset.Dataset, scheme core.Scheme) *Set {
	s := &Set{}
	s.Compile(d, scheme)
	return s
}

// CompilePoints is the one-shot constructor over raw click sequences.
func CompilePoints(pws [][]geom.Point, scheme core.Scheme) *Set {
	s := &Set{}
	s.CompilePoints(pws, scheme)
	return s
}

// Len returns the number of compiled passwords.
func (s *Set) Len() int { return len(s.offs) - 1 }

// Scheme returns the scheme the Set was compiled under.
func (s *Set) Scheme() core.Scheme { return s.scheme }

// Tokens returns password i's enrollment tokens. The slice aliases the
// Set's storage: read-only, valid until the next Compile.
func (s *Set) Tokens(i int) []core.Token {
	return s.tokens[s.offs[i]:s.offs[i+1]]
}

// Ordinal maps a dataset password ID to its index in the Set.
func (s *Set) Ordinal(id int) (int, bool) {
	i, ok := s.byID[id]
	return int(i), ok
}

// Accepts reports whether candidate clicks would be accepted as a
// login against password i: every click must land in the enrolled
// grid square of the corresponding token (a length mismatch is a
// rejection, matching the login rule). Allocation-free and safe to
// call from many goroutines at once.
func (s *Set) Accepts(i int, candidate []geom.Point) bool {
	tokens := s.Tokens(i)
	if len(candidate) != len(tokens) {
		return false
	}
	for j := range tokens {
		if !core.Accepts(s.scheme, tokens[j], candidate[j]) {
			return false
		}
	}
	return true
}

// AcceptsID is Accepts keyed by dataset password ID; it errors on an
// unknown ID so replay loops surface dangling login references the
// same way the serial replays did.
func (s *Set) AcceptsID(id int, candidate []geom.Point) (bool, error) {
	i, ok := s.Ordinal(id)
	if !ok {
		return false, fmt.Errorf("replay: login references unknown password %d", id)
	}
	return s.Accepts(i, candidate), nil
}

// AcceptsLogin is AcceptsID over a login's recorded clicks directly,
// without materializing a point slice per login (Login.Points
// allocates; a replay over thousands of logins must not).
func (s *Set) AcceptsLogin(id int, clicks []dataset.Click) (bool, error) {
	i, ok := s.Ordinal(id)
	if !ok {
		return false, fmt.Errorf("replay: login references unknown password %d", id)
	}
	tokens := s.Tokens(i)
	if len(clicks) != len(tokens) {
		return false, nil
	}
	for j := range tokens {
		if !core.Accepts(s.scheme, tokens[j], clicks[j].Point()) {
			return false, nil
		}
	}
	return true, nil
}

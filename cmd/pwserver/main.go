// Command pwserver serves a PassPoints vault over TCP (length-prefixed
// JSON frames) and HTTP:
//
//	pwserver -vault v.json -tcp :7700 -http :7780 -metrics :7790 -side 13 -lockout 10
//
// Both fronts are thin codecs over one authsvc pipeline: -maxconns is
// a single admission budget shared by TCP and HTTP (combined in-flight
// requests never exceed it) and -userrate adds a per-user token
// bucket. -queue bounds the admission wait queue (default 4x
// maxconns): past the per-priority watermarks, work is shed with fast
// "overloaded" responses (logins shed last) instead of queueing
// toward its deadline; -queue 0 restores unbounded queueing. -chaos
// injects deterministic faults (dev only) and -logjson emits one
// structured log line per request. -metrics starts the admin surface
// (Prometheus exposition at /metrics, JSON at /metrics.json, plus the
// lockout reset) on its own address — bind it to loopback or a
// protected network, never the public one. The lockout bounds online
// dictionary attacks (§5.1): after N failed logins an account refuses
// further attempts until an administrative reset.
//
// -backend selects storage (see README.md for the migration recipe):
//
//	memory   single-lock vault over a JSON snapshot at -vault
//	sharded  -shards-way partitioned store, same JSON file
//	durable  crash-safe append-log store; -vault names a directory,
//	         -fsync/-compact-ratio tune it, and every enroll, change,
//	         delete, and lockout write survives a kill -9
//	auto     (default) memory, or sharded when -shards > 0 — the
//	         pre-durable flag behavior, kept for compatibility
//
// The stateless session tier is on by default: a successful login
// response carries a signed expiring token, and POST /v1/validate (or
// the TCP validate op) checks it against in-memory keys with zero
// vault reads — the cheap steady-state complement to the deliberately
// expensive PassPoints login. -session-ttl sets the token lifetime (0
// disables the tier), -session-rotate enables periodic key rotation
// with a one-generation overlap window, and -session-alg picks
// ed25519 (default) or hmac. On the durable backend the keys and
// per-user revocation watermarks persist in the vault's replicated
// side table, so sessions survive restarts and failovers; password
// changes, resets, and lockouts revoke a user's outstanding tokens.
//
// -commit-window batches durable-backend fsyncs: the shard leader
// holds its group commit open this long so concurrent writers share
// one flush (0 = flush immediately, the default).
//
// -role turns on vault replication (durable backend only): a primary
// streams every shard's WAL to followers over -repl-listen, a
// follower (-role follower -repl-primary host:port) applies the
// stream and can be promoted at failover time with POST /v1/promote
// on the admin listener. -repl-ack quorum withholds write acks until
// a follower's fsync covers them; see README.md for the full flag
// table and the failover runbook.
//
// SIGINT/SIGTERM drain in-flight connections before exit.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"clickpass/internal/authproto"
	"clickpass/internal/authsvc"
	"clickpass/internal/core"
	"clickpass/internal/geom"
	"clickpass/internal/passpoints"
	"clickpass/internal/session"
	"clickpass/internal/vault"
	"clickpass/internal/vault/repl"
)

func main() {
	var (
		vaultPath   = flag.String("vault", "vault.json", "vault file path")
		tcpAddr     = flag.String("tcp", ":7700", "TCP listen address (empty to disable)")
		httpAddr    = flag.String("http", "", "HTTP listen address (empty to disable)")
		metricsAddr = flag.String("metrics", "", "admin listen address serving GET /metrics and POST /v1/reset (bind to loopback; empty to disable)")
		imageW      = flag.Int("image-w", 451, "image width (pixels)")
		imageH      = flag.Int("image-h", 331, "image height (pixels)")
		side        = flag.Int("side", 13, "grid-square side (pixels)")
		schemeArg   = flag.String("scheme", "centered", "discretization scheme: centered or robust")
		iter        = flag.Int("iterations", 1000, "hash iterations")
		lockout     = flag.Int("lockout", authproto.DefaultLockout, "failed attempts before lockout")
		useTLS      = flag.Bool("tls", false, "wrap the TCP listener in TLS with an ephemeral self-signed certificate")
		backendArg  = flag.String("backend", "auto", "storage backend: memory, sharded, durable, or auto (-shards decides)")
		shards      = flag.Int("shards", 0, "vault shard count (0 = backend default; with -backend auto, >0 selects the sharded store)")
		fsyncArg    = flag.String("fsync", "always", "durable backend sync policy: always, interval, or never")
		compactAt   = flag.Float64("compact-ratio", vault.DefaultCompactRatio, "durable backend: rewrite a shard log when garbage exceeds ratio x live records")
		ckptEvery   = flag.Duration("checkpoint-every", 0, "durable backend: periodic per-shard checkpoint+log-rotation interval bounding startup replay (0 = off)")
		ckptMin     = flag.Int("checkpoint-min", vault.DefaultCheckpointMin, "durable backend: skip checkpointing a shard with fewer than this many records since its last checkpoint")
		ckptMinB    = flag.Int64("checkpoint-min-bytes", 0, "durable backend: a shard whose WAL grew at least this many bytes since its last checkpoint is checkpointed even below -checkpoint-min records (0 = record-count gate only)")
		migrateFrom = flag.String("migrate-from", "", "durable backend: JSON snapshot to import into an empty log directory")
		commitWin   = flag.Duration("commit-window", 0, "durable backend: hold each shard's group commit open this long so concurrent writers share one fsync (0 = flush immediately)")
		sessionTTL  = flag.Duration("session-ttl", time.Hour, "session token lifetime; 0 disables the session tier (no tokens minted, validate refused)")
		sessionRot  = flag.Duration("session-rotate", 0, "session key rotation interval; tokens stay valid for one generation of overlap (0 = no automatic rotation)")
		sessionAlg  = flag.String("session-alg", "ed25519", "session token signature algorithm: ed25519 or hmac")
		maxConns    = flag.Int("maxconns", authproto.DefaultMaxConns, "max in-flight requests across all fronts (and TCP connection pool size)")
		userRate    = flag.Float64("userrate", 0, "per-user request rate limit in req/s across all fronts (0 = off)")
		userBurst   = flag.Int("userburst", 5, "per-user burst budget for -userrate")
		queue       = flag.Int("queue", -1, "overload policy: bounded admission wait queue depth; low-priority ops shed at watermarks (-1 = 4x maxconns, 0 = legacy unbounded queueing)")
		retryAfter  = flag.Duration("retry-after", authsvc.DefaultRetryAfter, "retry hint returned with shed (overloaded) responses")
		chaos       = flag.String("chaos", "", "dev fault injection, e.g. seed=7,err=0.01,latrate=0.05,lat=25ms (empty = off)")
		logJSON     = flag.Bool("logjson", false, "emit one structured JSON log line per request to stderr")
		drain       = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain budget on SIGINT/SIGTERM")

		roleArg       = flag.String("role", "", "replication role: primary or follower (empty = standalone; requires -backend durable)")
		replListen    = flag.String("repl-listen", "", "replication listen address; where followers connect on a primary, and where a promoted follower will accept its own followers")
		replPrimary   = flag.String("repl-primary", "", "follower: the primary's replication address to stream from")
		replAck       = flag.String("repl-ack", "quorum", "primary ack mode: quorum (ack writes only after a follower fsync covers them) or async")
		replAdvertise = flag.String("repl-advertise", "", "client-facing address advertised to peers for not_primary redirects")
		replStaleness = flag.Duration("repl-staleness", 0, "follower: refuse reads after being out of contact with the primary this long (0 = always serve reads)")
	)
	flag.Parse()

	var (
		scheme core.Scheme
		err    error
	)
	switch *schemeArg {
	case "centered":
		scheme, err = core.NewCentered(*side)
	case "robust":
		scheme, err = core.NewRobust2D(*side, core.MostCentered, 0)
	default:
		err = fmt.Errorf("unknown scheme %q", *schemeArg)
	}
	if err != nil {
		fatal(err)
	}
	store, backend, closeStore, err := openBackend(*backendArg, *vaultPath, *shards, *fsyncArg, *compactAt, *ckptEvery, *ckptMin, *ckptMinB, *commitWin, *migrateFrom)
	if err != nil {
		fatal(err)
	}
	dur, _ := store.(*vault.Durable)
	var node *repl.Node
	if *roleArg != "" {
		if dur == nil {
			fatal(fmt.Errorf("-role %s requires -backend durable (got %s)", *roleArg, backend))
		}
		role, err := repl.ParseRole(*roleArg)
		if err != nil {
			fatal(err)
		}
		ack, err := repl.ParseAckMode(*replAck)
		if err != nil {
			fatal(err)
		}
		node, err = repl.New(dur, role, repl.Options{
			Listen:    *replListen,
			Primary:   *replPrimary,
			Advertise: *replAdvertise,
			Ack:       ack,
			Staleness: *replStaleness,
		})
		if err != nil {
			fatal(err)
		}
		// The node fronts the store for every request: role guards,
		// quorum waits, and staleness bounds all live in that wrapper.
		store = node
		inner := closeStore
		closeStore = func() error {
			node.Close()
			return inner()
		}
		switch role {
		case repl.RolePrimary:
			fmt.Printf("pwserver: replication PRIMARY on %s (ack=%s, epoch %d)\n", node.ReplAddr(), ack, node.Epoch())
		case repl.RoleFollower:
			fmt.Printf("pwserver: replication FOLLOWER of %s (epoch %d; promote via POST /v1/promote on -metrics)\n", *replPrimary, node.Epoch())
		}
	}
	cfg := passpoints.Config{
		Image:      geom.Size{W: *imageW, H: *imageH},
		Clicks:     passpoints.DefaultClicks,
		Scheme:     scheme,
		Iterations: *iter,
	}
	srv, err := authproto.NewServer(cfg, store, *lockout)
	if err != nil {
		fatal(err)
	}
	if dur != nil {
		srv.RegisterMetrics(vaultHealthMetrics(dur))
		srv.RegisterAdmin("/v1/reopen-shard", reopenShardHandler(dur))
	}
	var sessMgr *session.Manager
	if *sessionTTL > 0 {
		alg, err := session.ParseAlg(*sessionAlg)
		if err != nil {
			fatal(err)
		}
		// The session tier persists through the replication node when
		// there is one (role guard in front: a follower adopts keys
		// instead of inventing them), else straight through the durable
		// store; the in-memory backends leave it soft-state.
		var kv session.KV
		switch {
		case node != nil:
			kv = node
		case dur != nil:
			kv = dur
		}
		sessMgr, err = session.New(session.Options{
			Alg:    alg,
			TTL:    *sessionTTL,
			Rotate: *sessionRot,
			Store:  kv,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "pwserver: "+format+"\n", args...)
			},
		})
		if err != nil {
			fatal(err)
		}
		if dur != nil {
			// Replicated key and revocation writes flow into the manager
			// as they apply; the second Reseed closes the window between
			// New's initial load and the watch installation.
			dur.SetKVWatch(sessMgr.ApplyKV)
			if err := sessMgr.Reseed(); err != nil {
				fatal(err)
			}
		}
		sessMgr.Start()
		srv.SetSession(sessMgr)
		srv.RegisterMetrics(sessMgr.WritePrometheus)
		srv.RegisterAdmin("/v1/session/rotate", sessionRotateHandler(sessMgr))
		rotateDesc := "manual rotation only"
		if *sessionRot > 0 {
			rotateDesc = fmt.Sprintf("rotating every %s", *sessionRot)
		}
		fmt.Printf("pwserver: session tier on (%s, ttl %s, %s)\n", alg, *sessionTTL, rotateDesc)
	}
	if node != nil {
		srv.RegisterMetrics(replMetrics(node))
		srv.RegisterAdmin("/v1/promote", promoteHandler(node, srv, sessMgr))
	}
	srv.SetMaxConns(*maxConns)
	if *userRate > 0 {
		srv.SetUserRate(*userRate, *userBurst)
	}
	queueDepth := *queue
	if queueDepth < 0 {
		queueDepth = 4 * *maxConns
	}
	if queueDepth > 0 {
		srv.SetOverload(authsvc.OverloadPolicy{Queue: queueDepth, RetryAfter: *retryAfter})
		fmt.Printf("pwserver: overload policy on (queue %d, normal/low sheds at %d/%d waiting)\n",
			queueDepth, int(float64(queueDepth)*authsvc.DefaultNormalMark), int(float64(queueDepth)*authsvc.DefaultLowMark))
	}
	if *chaos != "" {
		faults, err := authsvc.ParseFaultSpec(*chaos)
		if err != nil {
			fatal(err)
		}
		srv.SetFaults(faults)
		fmt.Printf("pwserver: CHAOS MODE: %s (dev only — injected faults are live)\n", *chaos)
	}
	if *logJSON {
		srv.SetLogWriter(os.Stderr)
	}
	if *tcpAddr == "" && *httpAddr == "" {
		fatal(fmt.Errorf("nothing to serve: both -tcp and -http are empty"))
	}
	errc := make(chan error, 3)
	if *tcpAddr != "" {
		l, err := net.Listen("tcp", *tcpAddr)
		if err != nil {
			fatal(err)
		}
		if *useTLS {
			cert, err := authproto.SelfSignedCert([]string{"127.0.0.1", "localhost"}, 365*24*time.Hour)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("pwserver: TLS on %s (%s %dx%d, lockout %d, %s vault, %d shared in-flight; self-signed cert %x...)\n",
				l.Addr(), scheme.Name(), *side, *side, *lockout, backend, *maxConns, cert.Certificate[0][:8])
			go func() { errc <- srv.ServeTLS(l, cert) }()
		} else {
			fmt.Printf("pwserver: TCP on %s (%s %dx%d, lockout %d, %s vault, %d shared in-flight)\n",
				l.Addr(), scheme.Name(), *side, *side, *lockout, backend, *maxConns)
			go func() { errc <- srv.Serve(l) }()
		}
	}
	var httpSrv *http.Server
	if *httpAddr != "" {
		fmt.Printf("pwserver: HTTP on %s (same %d-request admission limit as TCP)\n", *httpAddr, *maxConns)
		httpSrv = &http.Server{Addr: *httpAddr, Handler: srv.HTTPHandler()}
		go func() {
			if err := httpSrv.ListenAndServe(); err != http.ErrServerClosed {
				errc <- err
			}
		}()
	}
	var metricsSrv *http.Server
	if *metricsAddr != "" {
		fmt.Printf("pwserver: admin (metrics + lockout reset) on %s\n", *metricsAddr)
		metricsSrv = &http.Server{Addr: *metricsAddr, Handler: srv.AdminHandler()}
		go func() {
			if err := metricsSrv.ListenAndServe(); err != http.ErrServerClosed {
				errc <- err
			}
		}()
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fatal(err)
	case sig := <-sigc:
		fmt.Printf("pwserver: %s — draining (up to %s)\n", sig, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		// Drain both front ends; "drained" must mean every in-flight
		// request, TCP and HTTP, got its response.
		err := srv.Shutdown(ctx)
		if httpSrv != nil {
			if herr := httpSrv.Shutdown(ctx); err == nil {
				err = herr
			}
		}
		if metricsSrv != nil {
			_ = metricsSrv.Close()
		}
		if sessMgr != nil {
			sessMgr.Close()
		}
		// Flush and release the store only after the drain: "drained"
		// means every acked response's mutation is in the log.
		if cerr := closeStore(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "pwserver: drain incomplete:", err)
			os.Exit(1)
		}
		fmt.Println("pwserver: drained")
	}
}

// openBackend builds the selected vault.Store. It returns the store, a
// human-readable description for the startup banner, and a close func
// (a no-op for the snapshot backends, a log flush-and-close for the
// durable one).
func openBackend(backend, path string, shards int, fsync string, compactRatio float64, ckptEvery time.Duration, ckptMin int, ckptMinBytes int64, commitWindow time.Duration, migrateFrom string) (vault.Store, string, func() error, error) {
	noClose := func() error { return nil }
	if backend == "auto" {
		if shards > 0 {
			backend = "sharded"
		} else {
			backend = "memory"
		}
	}
	switch backend {
	case "memory":
		v, err := vault.Open(path)
		if err != nil {
			return nil, "", nil, err
		}
		return v, "single-lock", noClose, nil
	case "sharded":
		s, err := vault.OpenSharded(path, shards)
		if err != nil {
			return nil, "", nil, err
		}
		return s, fmt.Sprintf("%d-shard", s.Shards()), noClose, nil
	case "durable":
		policy, err := vault.ParseSyncPolicy(fsync)
		if err != nil {
			return nil, "", nil, err
		}
		d, err := vault.OpenDurable(path, vault.DurableOptions{
			Shards:             shards,
			Sync:               policy,
			CompactRatio:       compactRatio,
			CheckpointEvery:    ckptEvery,
			CheckpointMin:      ckptMin,
			CheckpointMinBytes: ckptMinBytes,
			CommitWindow:       commitWindow,
		})
		if err != nil {
			return nil, "", nil, err
		}
		if migrateFrom != "" {
			if d.Len() == 0 {
				if err := d.ImportJSON(migrateFrom); err != nil {
					d.Close()
					// A failed import may leave a partial WAL; a silent
					// retry would then skip migration (non-empty store)
					// and serve half a vault, so say how to recover.
					return nil, "", nil, fmt.Errorf("migrating %s: %w (the log directory %s may hold a partial import; remove it and retry)", migrateFrom, err, path)
				}
				fmt.Printf("pwserver: migrated %d records from %s into %s\n", d.Len(), migrateFrom, path)
			} else {
				fmt.Printf("pwserver: skipping -migrate-from %s: %s already holds %d records\n", migrateFrom, path, d.Len())
			}
		}
		desc := fmt.Sprintf("durable %d-shard (fsync=%s)", d.Shards(), policy)
		if ckptEvery > 0 {
			desc += fmt.Sprintf(" (checkpoint every %s)", ckptEvery)
		}
		return d, desc, d.Close, nil
	default:
		return nil, "", nil, fmt.Errorf("unknown backend %q (want memory, sharded, durable or auto)", backend)
	}
}

// vaultHealthMetrics exposes per-shard health of the durable store on
// the admin /metrics surface: one vault_shard_up gauge per shard (0 =
// fail-stopped, reopen via POST /v1/reopen-shard) plus the persisted
// replication epoch.
func vaultHealthMetrics(d *vault.Durable) func(io.Writer) {
	return func(w io.Writer) {
		h := d.Health()
		failed := make(map[int]bool, len(h.Failed))
		for _, i := range h.Failed {
			failed[i] = true
		}
		fmt.Fprintf(w, "# HELP vault_shard_up Durable vault shard health (0 = fail-stopped, refusing writes).\n")
		fmt.Fprintf(w, "# TYPE vault_shard_up gauge\n")
		for i := 0; i < h.Shards; i++ {
			up := 1
			if failed[i] {
				up = 0
			}
			fmt.Fprintf(w, "vault_shard_up{shard=\"%d\"} %d\n", i, up)
		}
		fmt.Fprintf(w, "# HELP vault_epoch Persisted replication epoch of the vault.\n")
		fmt.Fprintf(w, "# TYPE vault_epoch gauge\n")
		fmt.Fprintf(w, "vault_epoch %d\n", d.Epoch())
	}
}

// replMetrics exposes the replication node's state on /metrics: role,
// epoch, fencing, staleness, and per-follower replication lag.
func replMetrics(n *repl.Node) func(io.Writer) {
	return func(w io.Writer) {
		st := n.Stats()
		fmt.Fprintf(w, "# HELP repl_role Replication role of this node (the labeled role is 1).\n")
		fmt.Fprintf(w, "# TYPE repl_role gauge\n")
		fmt.Fprintf(w, "repl_role{role=%q} 1\n", st.Role)
		fmt.Fprintf(w, "# HELP repl_epoch Current replication epoch.\n")
		fmt.Fprintf(w, "# TYPE repl_epoch gauge\n")
		fmt.Fprintf(w, "repl_epoch %d\n", st.Epoch)
		fmt.Fprintf(w, "# HELP repl_fenced Whether this node is a deposed primary refusing writes.\n")
		fmt.Fprintf(w, "# TYPE repl_fenced gauge\n")
		fenced := 0
		if st.Fenced {
			fenced = 1
		}
		fmt.Fprintf(w, "repl_fenced %d\n", fenced)
		if st.StaleMs >= 0 {
			fmt.Fprintf(w, "# HELP repl_staleness_ms Milliseconds since the last message from the primary.\n")
			fmt.Fprintf(w, "# TYPE repl_staleness_ms gauge\n")
			fmt.Fprintf(w, "repl_staleness_ms %d\n", st.StaleMs)
		}
		if len(st.Followers) > 0 {
			fmt.Fprintf(w, "# HELP repl_follower_lag_records Shipped records not yet acknowledged, per follower.\n")
			fmt.Fprintf(w, "# TYPE repl_follower_lag_records gauge\n")
			for _, f := range st.Followers {
				fmt.Fprintf(w, "repl_follower_lag_records{follower=%q} %d\n", f.Addr, f.LagRecords)
			}
		}
	}
}

// promoteHandler serves POST /v1/promote on the admin listener: the
// failover lever that turns this follower into the primary at a
// durably advanced epoch. The response carries the new epoch; the old
// primary — if still alive — is fenced best-effort. After the role
// flip the serving layer re-adopts replicated lockout counters, so a
// guesser does not get a fresh attempt budget out of a failover — and
// the session tier reseeds its keys and revocation watermarks from
// the replicated side table, so tokens minted by the old primary keep
// validating (and newly writable storage lets it create a first key
// if the pair never minted one).
func promoteHandler(n *repl.Node, srv *authproto.Server, sess *session.Manager) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		epoch, err := n.Promote()
		if err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		srv.ReloadLockouts()
		if sess != nil {
			if err := sess.Reseed(); err != nil {
				fmt.Fprintf(os.Stderr, "pwserver: session reseed after promote: %v\n", err)
			}
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{"ok": true, "epoch": epoch})
	})
}

// sessionRotateHandler serves POST /v1/session/rotate on the admin
// listener: mint signing material forward one generation, on the
// operator's schedule rather than the -session-rotate timer. The old
// generation keeps verifying for one more rotation (the overlap
// window), so rotation is invisible to holders of live tokens. On a
// follower the underlying persist is refused and the rotation fails
// loudly — keys are only ever minted where they can be replicated
// from.
func sessionRotateHandler(sess *session.Manager) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		if err := sess.Rotate(); err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		gen, _ := sess.Generations()
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{"ok": true, "generation": gen})
	})
}

// reopenShardHandler serves POST /v1/reopen-shard {"shard": N}: the
// supervised recovery path for a fail-stopped shard. Reopen re-runs
// crash recovery on the shard's log; on success the shard serves
// again from its last acked state, on failure it stays fail-stopped
// and the error says why.
func reopenShardHandler(d *vault.Durable) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var body struct {
			Shard int `json:"shard"`
		}
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			http.Error(w, "body must be {\"shard\": N}: "+err.Error(), http.StatusBadRequest)
			return
		}
		if err := d.ReopenShard(body.Shard); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{"ok": true, "shard": body.Shard})
	})
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pwserver:", err)
	os.Exit(1)
}

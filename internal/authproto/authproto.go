// Package authproto exposes a PassPoints vault over the network: a
// length-prefixed JSON protocol on TCP and an equivalent net/http
// API. It also enforces the per-account failed-attempt lockout that
// §5.1 identifies as the defense against online dictionary attacks.
//
// Wire format (TCP): each message is a 4-byte big-endian length
// followed by a JSON document, request/response in lockstep on one
// connection. Frames are capped at MaxFrame to bound allocation from
// untrusted peers.
package authproto

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"clickpass/internal/dataset"
	"clickpass/internal/geom"
	"clickpass/internal/passpoints"
	"clickpass/internal/vault"
)

// MaxFrame is the largest accepted wire frame in bytes.
const MaxFrame = 1 << 20

// DefaultLockout is the failed-attempt budget per account.
const DefaultLockout = 10

// Op identifies a request type.
type Op string

// Protocol operations.
const (
	OpPing   Op = "ping"
	OpEnroll Op = "enroll"
	OpLogin  Op = "login"
	OpChange Op = "change" // replace the password after verifying the old one
	OpReset  Op = "reset"  // administrative: clear an account's lockout
)

// Request is a client request.
type Request struct {
	Op     Op              `json:"op"`
	User   string          `json:"user,omitempty"`
	Clicks []dataset.Click `json:"clicks,omitempty"`
	// NewClicks carries the replacement password for OpChange.
	NewClicks []dataset.Click `json:"new_clicks,omitempty"`
}

// Response is a server reply.
type Response struct {
	OK        bool   `json:"ok"`
	Error     string `json:"error,omitempty"`
	Locked    bool   `json:"locked,omitempty"`
	Remaining int    `json:"remaining,omitempty"` // login attempts left
}

// Server authenticates PassPoints passwords against a vault. It is
// safe for concurrent use.
type Server struct {
	cfg     passpoints.Config
	vault   *vault.Vault
	lockout int

	mu       sync.Mutex
	failures map[string]int
}

// NewServer validates the configuration and returns a server. lockout
// <= 0 selects DefaultLockout.
func NewServer(cfg passpoints.Config, v *vault.Vault, lockout int) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if v == nil {
		return nil, fmt.Errorf("authproto: nil vault")
	}
	if lockout <= 0 {
		lockout = DefaultLockout
	}
	return &Server{
		cfg:      cfg,
		vault:    v,
		lockout:  lockout,
		failures: make(map[string]int),
	}, nil
}

// Handle executes one request. This is the transport-independent core
// used by both the TCP and HTTP front ends.
func (s *Server) Handle(req Request) Response {
	switch req.Op {
	case OpPing:
		return Response{OK: true}
	case OpEnroll:
		return s.enroll(req)
	case OpLogin:
		return s.login(req)
	case OpChange:
		return s.change(req)
	case OpReset:
		s.mu.Lock()
		delete(s.failures, req.User)
		s.mu.Unlock()
		return Response{OK: true}
	default:
		return Response{Error: fmt.Sprintf("unknown op %q", req.Op)}
	}
}

func (s *Server) enroll(req Request) Response {
	if req.User == "" {
		return Response{Error: "user required"}
	}
	rec, err := passpoints.Enroll(s.cfg, req.User, clicksToPoints(req.Clicks))
	if err != nil {
		return Response{Error: err.Error()}
	}
	if err := s.vault.Put(rec); err != nil {
		if errors.Is(err, vault.ErrExists) {
			return Response{Error: "user already enrolled"}
		}
		return Response{Error: err.Error()}
	}
	return Response{OK: true}
}

func (s *Server) login(req Request) Response {
	if req.User == "" {
		return Response{Error: "user required"}
	}
	s.mu.Lock()
	failed := s.failures[req.User]
	s.mu.Unlock()
	if failed >= s.lockout {
		return Response{Locked: true, Error: "account locked"}
	}
	rec, err := s.vault.Get(req.User)
	if err != nil {
		// Indistinguishable from a wrong password, to avoid user
		// enumeration; still consumes an attempt for this name.
		return s.fail(req.User)
	}
	ok, err := passpoints.Verify(s.cfg, rec, clicksToPoints(req.Clicks))
	if err != nil || !ok {
		return s.fail(req.User)
	}
	s.mu.Lock()
	delete(s.failures, req.User)
	s.mu.Unlock()
	return Response{OK: true, Remaining: s.lockout}
}

// change replaces an account's password after verifying the old one.
// Failed old-password checks consume lockout attempts exactly like
// failed logins, so change cannot be used to bypass rate limiting.
func (s *Server) change(req Request) Response {
	resp := s.login(Request{Op: OpLogin, User: req.User, Clicks: req.Clicks})
	if !resp.OK {
		return resp
	}
	rec, err := passpoints.Enroll(s.cfg, req.User, clicksToPoints(req.NewClicks))
	if err != nil {
		return Response{Error: err.Error()}
	}
	if err := s.vault.Replace(rec); err != nil {
		return Response{Error: err.Error()}
	}
	return Response{OK: true}
}

func (s *Server) fail(user string) Response {
	s.mu.Lock()
	s.failures[user]++
	remaining := s.lockout - s.failures[user]
	s.mu.Unlock()
	if remaining <= 0 {
		return Response{Locked: true, Error: "account locked"}
	}
	return Response{Error: "login failed", Remaining: remaining}
}

func clicksToPoints(clicks []dataset.Click) []geom.Point {
	pts := make([]geom.Point, len(clicks))
	for i, c := range clicks {
		pts[i] = c.Point()
	}
	return pts
}

// Serve accepts connections until the listener is closed. Each
// connection carries a sequence of request/response frames.
func (s *Server) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go s.serveConn(conn)
	}
}

// IdleTimeout is how long a connection may sit between requests.
const IdleTimeout = 2 * time.Minute

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	for {
		_ = conn.SetReadDeadline(time.Now().Add(IdleTimeout))
		var req Request
		if err := readFrame(conn, &req); err != nil {
			return // EOF, timeout, or malformed frame: drop the peer
		}
		resp := s.Handle(req)
		_ = conn.SetWriteDeadline(time.Now().Add(10 * time.Second))
		if err := writeFrame(conn, resp); err != nil {
			return
		}
	}
}

func readFrame(r io.Reader, v interface{}) error {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n == 0 || n > MaxFrame {
		return fmt.Errorf("authproto: frame size %d out of range", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return err
	}
	return json.Unmarshal(buf, v)
}

func writeFrame(w io.Writer, v interface{}) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if len(data) > MaxFrame {
		return fmt.Errorf("authproto: frame too large (%d bytes)", len(data))
	}
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(data)))
	if _, err := w.Write(lenBuf[:]); err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// Client is a TCP client for the protocol. Not safe for concurrent
// use; requests are serialized on one connection.
type Client struct {
	conn net.Conn
}

// Dial connects to a server.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("authproto: dial %s: %w", addr, err)
	}
	return &Client{conn: conn}, nil
}

// NewClient wraps an existing connection (e.g. net.Pipe in tests).
func NewClient(conn net.Conn) *Client { return &Client{conn: conn} }

// Do sends one request and reads the reply.
func (c *Client) Do(req Request) (Response, error) {
	if err := writeFrame(c.conn, req); err != nil {
		return Response{}, err
	}
	var resp Response
	if err := readFrame(c.conn, &resp); err != nil {
		return Response{}, err
	}
	return resp, nil
}

// Ping checks liveness.
func (c *Client) Ping() error {
	resp, err := c.Do(Request{Op: OpPing})
	if err != nil {
		return err
	}
	if !resp.OK {
		return fmt.Errorf("authproto: ping rejected: %s", resp.Error)
	}
	return nil
}

// Enroll registers a new password.
func (c *Client) Enroll(user string, clicks []dataset.Click) (Response, error) {
	return c.Do(Request{Op: OpEnroll, User: user, Clicks: clicks})
}

// Login attempts authentication.
func (c *Client) Login(user string, clicks []dataset.Click) (Response, error) {
	return c.Do(Request{Op: OpLogin, User: user, Clicks: clicks})
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

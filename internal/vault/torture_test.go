package vault

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"clickpass/internal/passpoints"
)

// The torture tests simulate crashes at every byte: a scripted random
// workload runs against a Durable store while the test records, for
// each acked mutation, which shard log it landed in and the log's
// size afterwards. Then, for many random "tear points", a copy of the
// log directory is truncated (or corrupted) at that byte and
// reopened. The recovery contract under SyncAlways is exact and
// testable:
//
//   - every mutation whose record lies entirely below the tear was
//     acked and MUST be recovered;
//   - the mutation spanning the tear and everything after it in that
//     log MUST be dropped (replay stops at the first bad record);
//   - other shards' logs are untouched and MUST replay fully.
//
// The expected state is computed by replaying the op script against a
// plain in-memory model — the same semantics the in-memory backends
// implement — so a recovery divergence (false accept, false reject,
// resurrected delete, lost or inflated lockout counter) fails loudly.

// tortureOp is one scripted mutation with enough bookkeeping to know
// whether it survives a given tear point in its shard's log.
type tortureOp struct {
	kind     string // "put", "replace", "delete", "lock"
	user     string
	rec      *passpoints.Record
	failures int
	shard    int   // which log the op's record went to
	end      int64 // that log's size once the op was acked
}

// tortureRecord builds a distinct record per (user, version) without
// real hashing, so replace history is distinguishable byte for byte.
func tortureRecord(user string, version int) *passpoints.Record {
	return &passpoints.Record{
		User: user, Kind: passpoints.KindCentered,
		SquareSidePx: 13, Iterations: 2,
		Salt:   []byte{byte(version), byte(version >> 8), 0xAB},
		Digest: []byte{byte(version * 7), byte(version), 0xCD, 0xEF},
	}
}

// runTortureScript drives nOps random mutations against a fresh
// SyncAlways durable store in dir and returns the op log. Each op
// records its shard log's size at ack time, which — because every
// append is a single write followed by fsync — is exactly the offset
// below which the op's record is fully on disk.
func runTortureScript(t *testing.T, dir string, shards, nOps int, rng *rand.Rand) []tortureOp {
	t.Helper()
	d, err := OpenDurable(dir, DurableOptions{Shards: shards, Sync: SyncAlways, NoAutoCompact: true})
	if err != nil {
		t.Fatal(err)
	}
	users := make([]string, 24)
	for i := range users {
		users[i] = fmt.Sprintf("acct-%02d", i)
	}
	version := 0
	var ops []tortureOp
	live := map[string]bool{}
	for len(ops) < nOps {
		user := users[rng.Intn(len(users))]
		version++
		op := tortureOp{user: user}
		switch k := rng.Intn(10); {
		case k < 4: // put or replace
			op.rec = tortureRecord(user, version)
			if live[user] {
				op.kind = "replace"
				if err := d.Replace(op.rec); err != nil {
					t.Fatal(err)
				}
			} else {
				op.kind = "put"
				if err := d.Put(op.rec); err != nil {
					t.Fatal(err)
				}
				live[user] = true
			}
		case k < 6: // delete (skip if nothing to delete: no record appended)
			if !live[user] {
				continue
			}
			op.kind = "delete"
			d.Delete(user)
			live[user] = false
		default: // lockout write; ~1/3 of them clear the counter
			op.kind = "lock"
			op.failures = rng.Intn(9) // 0..8, 0 clears
			if err := d.SetLockout(user, op.failures); err != nil {
				t.Fatal(err)
			}
		}
		sh, idx := d.shardFor(user)
		op.shard = idx
		st, err := os.Stat(sh.path)
		if err != nil {
			t.Fatal(err)
		}
		op.end = st.Size()
		ops = append(ops, op)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	return ops
}

// tortureExpect folds the ops that survive a tear at offset tearAt in
// shard tearShard into the expected post-recovery state. An op in
// another shard always survives; an op in the torn shard survives iff
// its record ends at or below the tear.
func tortureExpect(ops []tortureOp, tearShard int, tearAt int64) (map[string]*passpoints.Record, map[string]int) {
	recs := map[string]*passpoints.Record{}
	locks := map[string]int{}
	dropped := false // once an op in the torn shard is dropped, all later ops there are too
	for _, op := range ops {
		if op.shard == tearShard {
			if dropped || op.end > tearAt {
				dropped = true
				continue
			}
		}
		switch op.kind {
		case "put", "replace":
			recs[op.user] = op.rec
		case "delete":
			delete(recs, op.user)
		case "lock":
			if op.failures > 0 {
				locks[op.user] = op.failures
			} else {
				delete(locks, op.user)
			}
		}
	}
	return recs, locks
}

// assertRecovered compares a reopened store against the expected
// model, record bytes and lockout counters both ways (nothing lost,
// nothing resurrected).
func assertRecovered(t *testing.T, trial string, d *Durable, recs map[string]*passpoints.Record, locks map[string]int) {
	t.Helper()
	if got, want := d.Len(), len(recs); got != want {
		t.Errorf("%s: recovered %d records, want %d", trial, got, want)
	}
	for user, want := range recs {
		got, err := d.Get(user)
		if err != nil {
			t.Errorf("%s: acked record %q lost (false reject): %v", trial, user, err)
			continue
		}
		if !bytes.Equal(got.Salt, want.Salt) || !bytes.Equal(got.Digest, want.Digest) {
			t.Errorf("%s: %q recovered with wrong contents (stale version)", trial, user)
		}
	}
	for _, user := range d.Users() {
		if _, ok := recs[user]; !ok {
			t.Errorf("%s: unacked/deleted record %q resurrected (false accept)", trial, user)
		}
	}
	gotLocks := d.Lockouts()
	for user, want := range locks {
		if gotLocks[user] != want {
			t.Errorf("%s: lockout[%q] = %d, want %d", trial, user, gotLocks[user], want)
		}
	}
	for user := range gotLocks {
		if _, ok := locks[user]; !ok {
			t.Errorf("%s: lockout for %q resurrected", trial, user)
		}
	}
}

// copyDir clones the log directory so each trial tears a fresh copy.
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o600); err != nil {
			t.Fatal(err)
		}
	}
}

// TestTortureTruncatedTail kills the write stream at random byte
// offsets — the torn-write crash — and asserts exact-prefix recovery.
func TestTortureTruncatedTail(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(42 + shards)))
			src := t.TempDir()
			ops := runTortureScript(t, src, shards, 250, rng)
			trials := 40
			if testing.Short() {
				trials = 10
			}
			for trial := 0; trial < trials; trial++ {
				tearShard := rng.Intn(shards)
				logPath := filepath.Join(src, shardLogName(tearShard))
				st, err := os.Stat(logPath)
				if err != nil {
					t.Fatal(err)
				}
				if st.Size() == 0 {
					continue
				}
				tearAt := rng.Int63n(st.Size() + 1)
				dst := t.TempDir()
				copyDir(t, src, dst)
				if err := os.Truncate(filepath.Join(dst, shardLogName(tearShard)), tearAt); err != nil {
					t.Fatal(err)
				}
				d, err := OpenDurable(dst, DurableOptions{Shards: shards, NoAutoCompact: true})
				if err != nil {
					t.Fatalf("trial %d: recovery failed outright: %v", trial, err)
				}
				recs, locks := tortureExpect(ops, tearShard, tearAt)
				assertRecovered(t, fmt.Sprintf("truncate(shard %d @ %d)", tearShard, tearAt), d, recs, locks)
				// Recovery must leave a store that accepts new writes.
				if err := d.Put(tortureRecord("post-crash", 1)); err != nil && !errors.Is(err, ErrExists) {
					t.Errorf("trial %d: post-recovery Put failed: %v", trial, err)
				}
				if err := d.Close(); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestTortureCorruptTail flips a byte instead of truncating — the
// bit-rot / partial-overwrite crash. The record containing the flip
// fails its CRC, so recovery must keep everything strictly before
// that record and drop it and the rest of that log.
func TestTortureCorruptTail(t *testing.T) {
	const shards = 2
	rng := rand.New(rand.NewSource(7))
	src := t.TempDir()
	ops := runTortureScript(t, src, shards, 250, rng)
	trials := 40
	if testing.Short() {
		trials = 10
	}
	for trial := 0; trial < trials; trial++ {
		tearShard := rng.Intn(shards)
		logPath := filepath.Join(src, shardLogName(tearShard))
		st, err := os.Stat(logPath)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() == 0 {
			continue
		}
		flipAt := rng.Int63n(st.Size())
		dst := t.TempDir()
		copyDir(t, src, dst)
		target := filepath.Join(dst, shardLogName(tearShard))
		data, err := os.ReadFile(target)
		if err != nil {
			t.Fatal(err)
		}
		data[flipAt] ^= 0xFF
		if err := os.WriteFile(target, data, 0o600); err != nil {
			t.Fatal(err)
		}
		d, err := OpenDurable(dst, DurableOptions{Shards: shards, NoAutoCompact: true})
		if err != nil {
			t.Fatalf("trial %d: recovery failed outright: %v", trial, err)
		}
		// The corrupted byte sits inside the record that ends at the
		// smallest op.end > flipAt; that record and everything after it
		// in this log are dropped, so the survivors are exactly the ops
		// with end <= flipAt.
		recs, locks := tortureExpect(ops, tearShard, flipAt)
		assertRecovered(t, fmt.Sprintf("corrupt(shard %d @ %d)", tearShard, flipAt), d, recs, locks)
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestTortureRecoveredStoreAgreesWithMemory reruns the full op script
// (no tear) against both the replayed durable store and the in-memory
// Vault and demands byte-identical Get results — the "zero false
// accepts/rejects vs the in-memory backend" acceptance criterion.
func TestTortureRecoveredStoreAgreesWithMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	src := t.TempDir()
	ops := runTortureScript(t, src, 4, 300, rng)
	mem := New()
	for _, op := range ops {
		switch op.kind {
		case "put":
			if err := mem.Put(op.rec); err != nil {
				t.Fatal(err)
			}
		case "replace":
			if err := mem.Replace(op.rec); err != nil {
				t.Fatal(err)
			}
		case "delete":
			mem.Delete(op.user)
		}
	}
	d, err := OpenDurable(src, DurableOptions{Shards: 4, NoAutoCompact: true})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.Len() != mem.Len() {
		t.Fatalf("replayed Len = %d, in-memory Len = %d", d.Len(), mem.Len())
	}
	memUsers := mem.Users()
	dUsers := d.Users()
	for i, u := range memUsers {
		if dUsers[i] != u {
			t.Fatalf("user lists diverge: %v vs %v", dUsers, memUsers)
		}
		mr, _ := mem.Get(u)
		dr, err := d.Get(u)
		if err != nil {
			t.Fatalf("%q in memory but not replayed: %v", u, err)
		}
		if !bytes.Equal(mr.Salt, dr.Salt) || !bytes.Equal(mr.Digest, dr.Digest) {
			t.Errorf("%q differs between replayed and in-memory store", u)
		}
	}
}

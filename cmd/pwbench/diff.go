package main

// The -diff mode: compare a fresh set of BENCH_*.json files against a
// committed baseline set and fail on perf regressions. Raw ns/op is
// not comparable across machines (CI runners vary run to run), so the
// comparison normalizes every case's new/old ratio by the median ratio
// across ALL cases: a uniformly slower machine moves the median, not
// the verdict, while a single path that regressed relative to its
// peers sticks out above it. The threshold is the allowed normalized
// slowdown in percent (default 25).

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// diffRun is the shape-agnostic view of one measurement: engine
// documents key runs by workers, the store document by backend/op.
// Only ns_per_op is compared; the other fields identify the case.
type diffRun struct {
	Workers int     `json:"workers"`
	Backend string  `json:"backend"`
	Op      string  `json:"op"`
	NsPerOp float64 `json:"ns_per_op"`
}

// key renders the case identity within its bench document.
func (r diffRun) key() string {
	if r.Backend != "" {
		return r.Backend + "/" + r.Op
	}
	return fmt.Sprintf("w=%d", r.Workers)
}

// diffDoc is the common envelope of every BENCH_*.json document.
type diffDoc struct {
	Name string    `json:"name"`
	Runs []diffRun `json:"runs"`
}

// diffPair is one matched (baseline, current) measurement.
type diffPair struct {
	Bench string  // document name ("online", "store", ...)
	Key   string  // case within the document ("w=4", "vault/put", ...)
	OldNs float64 // baseline ns/op
	NewNs float64 // current ns/op
	Ratio float64 // NewNs / OldNs
	Norm  float64 // Ratio / median ratio across all pairs
}

// loadDiffDoc parses one BENCH_*.json file into the generic shape.
func loadDiffDoc(path string) (diffDoc, error) {
	var doc diffDoc
	raw, err := os.ReadFile(path)
	if err != nil {
		return doc, err
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return doc, fmt.Errorf("%s: %w", path, err)
	}
	return doc, nil
}

// matchPairs joins baseline and current runs by case key; cases present
// on only one side are dropped (a renamed or added path is not a
// regression).
func matchPairs(name string, old, cur diffDoc) []diffPair {
	byKey := map[string]diffRun{}
	for _, r := range cur.Runs {
		byKey[r.key()] = r
	}
	var pairs []diffPair
	for _, o := range old.Runs {
		n, ok := byKey[o.key()]
		if !ok || o.NsPerOp <= 0 || n.NsPerOp <= 0 {
			continue
		}
		pairs = append(pairs, diffPair{
			Bench: name, Key: o.key(),
			OldNs: o.NsPerOp, NewNs: n.NsPerOp,
			Ratio: n.NsPerOp / o.NsPerOp,
		})
	}
	return pairs
}

// normalize fills each pair's Norm: its ratio divided by the median
// ratio across all pairs. The median absorbs a uniformly faster or
// slower machine so only relative regressions trip the threshold.
func normalize(pairs []diffPair) {
	if len(pairs) == 0 {
		return
	}
	ratios := make([]float64, len(pairs))
	for i, p := range pairs {
		ratios[i] = p.Ratio
	}
	sort.Float64s(ratios)
	med := ratios[len(ratios)/2]
	if len(ratios)%2 == 0 {
		med = (ratios[len(ratios)/2-1] + ratios[len(ratios)/2]) / 2
	}
	if med <= 0 {
		med = 1
	}
	for i := range pairs {
		pairs[i].Norm = pairs[i].Ratio / med
	}
}

// regressions returns the pairs whose normalized slowdown exceeds
// thresholdPct percent.
func regressions(pairs []diffPair, thresholdPct float64) []diffPair {
	var out []diffPair
	for _, p := range pairs {
		if p.Norm > 1+thresholdPct/100 {
			out = append(out, p)
		}
	}
	return out
}

// diffTable renders the comparison as the Markdown table CI publishes;
// rows over the threshold are marked REGRESSION.
func diffTable(pairs []diffPair, thresholdPct float64) string {
	var b strings.Builder
	b.WriteString("| bench | case | baseline ns/op | current ns/op | ratio | normalized | |\n")
	b.WriteString("|---|---|---|---|---|---|---|\n")
	for _, p := range pairs {
		flag := ""
		if p.Norm > 1+thresholdPct/100 {
			flag = "REGRESSION"
		}
		fmt.Fprintf(&b, "| %s | %s | %.0f | %.0f | %.2f | %.2f | %s |\n",
			p.Bench, p.Key, p.OldNs, p.NewNs, p.Ratio, p.Norm, flag)
	}
	return b.String()
}

// runDiff compares every BENCH_*.json under baselineDir against its
// counterpart in currentDir, prints the comparison table, and returns
// an error naming each case whose normalized slowdown exceeds
// thresholdPct. Baseline documents with no counterpart are skipped
// with a warning (the current run may measure a subset).
func runDiff(baselineDir, currentDir string, thresholdPct float64) error {
	files, err := filepath.Glob(filepath.Join(baselineDir, "BENCH_*.json"))
	if err != nil {
		return err
	}
	sort.Strings(files)
	var pairs []diffPair
	compared := 0
	for _, file := range files {
		curFile := filepath.Join(currentDir, filepath.Base(file))
		if _, err := os.Stat(curFile); err != nil {
			fmt.Fprintf(os.Stderr, "pwbench: no current %s; skipping\n", filepath.Base(file))
			continue
		}
		old, err := loadDiffDoc(file)
		if err != nil {
			return err
		}
		cur, err := loadDiffDoc(curFile)
		if err != nil {
			return err
		}
		pairs = append(pairs, matchPairs(old.Name, old, cur)...)
		compared++
	}
	if compared == 0 || len(pairs) == 0 {
		return fmt.Errorf("nothing to diff: no matching BENCH_*.json between %s and %s", baselineDir, currentDir)
	}
	normalize(pairs)
	fmt.Print(diffTable(pairs, thresholdPct))
	if bad := regressions(pairs, thresholdPct); len(bad) > 0 {
		var names []string
		for _, p := range bad {
			names = append(names, fmt.Sprintf("%s/%s %.0f%% slower", p.Bench, p.Key, (p.Norm-1)*100))
		}
		return fmt.Errorf("%d case(s) regressed beyond %g%%: %s",
			len(bad), thresholdPct, strings.Join(names, "; "))
	}
	fmt.Fprintf(os.Stderr, "pwbench: %d cases within %g%% of baseline\n", len(pairs), thresholdPct)
	return nil
}

package attack

import (
	"testing"

	"clickpass/internal/core"
	"clickpass/internal/geom"
	"clickpass/internal/passhash"
)

func oneClickVerifier(t *testing.T, scheme core.Scheme, p geom.Point) (passhash.Params, []byte) {
	t.Helper()
	params := passhash.Params{Iterations: 2, Salt: []byte("0123456789abcdef")}
	tok := scheme.Enroll(p)
	digest, err := passhash.Digest(params, []core.Token{tok})
	if err != nil {
		t.Fatal(err)
	}
	return params, digest
}

func TestClearCandidateCounts(t *testing.T) {
	c, err := core.NewCentered(13)
	if err != nil {
		t.Fatal(err)
	}
	cand, err := ClearCandidates(c)
	if err != nil {
		t.Fatal(err)
	}
	// §3.2: a 13x13 centered grid has 13^2 = 169 possible identifiers.
	if len(cand) != 169 {
		t.Errorf("centered 13x13 candidates = %d, want 169", len(cand))
	}
	rb, err := core.NewRobust2D(36, core.MostCentered, 1)
	if err != nil {
		t.Fatal(err)
	}
	cand, err = ClearCandidates(rb)
	if err != nil {
		t.Fatal(err)
	}
	if len(cand) != 3 {
		t.Errorf("robust candidates = %d, want 3", len(cand))
	}
}

// TestGridBlindFindsTruePassword: enumerating identifiers recovers a
// correct guess for both schemes, at their respective costs.
func TestGridBlindFindsTruePassword(t *testing.T) {
	orig := geom.Pt(100, 150)
	guess := geom.Pt(103, 148) // within every tolerance tested here

	c, err := core.NewCentered(13)
	if err != nil {
		t.Fatal(err)
	}
	params, digest := oneClickVerifier(t, c, orig)
	res, err := GridBlindTest(c, params, digest, guess)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Matched {
		t.Error("centered grid-blind attack missed a correct guess")
	}
	if res.Combinations != 169 {
		t.Errorf("centered combinations = %d, want 169", res.Combinations)
	}

	rb, err := core.NewRobust2D(36, core.MostCentered, 1)
	if err != nil {
		t.Fatal(err)
	}
	params, digest = oneClickVerifier(t, rb, orig)
	resR, err := GridBlindTest(rb, params, digest, guess)
	if err != nil {
		t.Fatal(err)
	}
	if !resR.Matched {
		t.Error("robust grid-blind attack missed a correct guess")
	}
	if resR.Combinations != 3 {
		t.Errorf("robust combinations = %d, want 3", resR.Combinations)
	}
	if resR.Hashes > 3 {
		t.Errorf("robust needed %d hashes for one guess, max 3", resR.Hashes)
	}
}

// TestGridBlindWrongGuessCosts: a wrong guess costs the FULL
// enumeration — the per-entry work factor of §5.1.
func TestGridBlindWrongGuessCosts(t *testing.T) {
	orig := geom.Pt(100, 150)
	wrong := geom.Pt(300, 20)

	c, err := core.NewCentered(13)
	if err != nil {
		t.Fatal(err)
	}
	params, digest := oneClickVerifier(t, c, orig)
	res, err := GridBlindTest(c, params, digest, wrong)
	if err != nil {
		t.Fatal(err)
	}
	if res.Matched {
		t.Error("wrong guess matched")
	}
	if res.Hashes != 169 {
		t.Errorf("centered wrong guess cost %d hashes, want 169", res.Hashes)
	}
	rb, err := core.NewRobust2D(36, core.MostCentered, 1)
	if err != nil {
		t.Fatal(err)
	}
	params, digest = oneClickVerifier(t, rb, orig)
	resR, err := GridBlindTest(rb, params, digest, wrong)
	if err != nil {
		t.Fatal(err)
	}
	if resR.Matched || resR.Hashes != 3 {
		t.Errorf("robust wrong guess: matched=%v hashes=%d, want false/3", resR.Matched, resR.Hashes)
	}
	// The empirical ratio is the paper's claim: 169/3 = 56x more work
	// per guess under Centered.
	if res.Hashes/resR.Hashes < 50 {
		t.Errorf("work ratio %dx, expected ~56x", res.Hashes/resR.Hashes)
	}
}

// TestGridBlindNeverFalseMatches: enumeration must not produce a match
// for guesses outside the tolerance (the identifier search cannot
// manufacture acceptance).
func TestGridBlindNeverFalseMatches(t *testing.T) {
	orig := geom.Pt(200, 200)
	c, err := core.NewCentered(13)
	if err != nil {
		t.Fatal(err)
	}
	params, digest := oneClickVerifier(t, c, orig)
	for _, d := range []int{7, 10, 30} {
		res, err := GridBlindTest(c, params, digest, geom.Pt(200+d, 200))
		if err != nil {
			t.Fatal(err)
		}
		if res.Matched {
			t.Errorf("guess %dpx away matched under identifier enumeration", d)
		}
	}
}

func TestClearCandidatesUnsupported(t *testing.T) {
	if _, err := ClearCandidates(fakeScheme{}); err == nil {
		t.Error("unsupported scheme accepted")
	}
}

type fakeScheme struct{ core.Scheme }

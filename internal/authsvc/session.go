package authsvc

import "context"

// SessionTier is the slice of internal/session's Manager the serving
// pipeline uses: mint on successful login, validate without touching
// the store, revoke on any event that must invalidate outstanding
// sessions. Declared here (rather than importing the session package)
// so the dependency points outward: the session tier knows nothing of
// the service, and tests can drop in counterfeits.
type SessionTier interface {
	// Mint issues a token for user.
	Mint(user string) (string, error)
	// Validate checks a token and returns the user it names. It must
	// perform no store I/O — that contract is what lets WithSession
	// sit outside the admission pipeline.
	Validate(token string) (string, error)
	// Revoke invalidates every token minted for user at or before
	// now.
	Revoke(user string) error
}

// WithSession mounts the stateless session tier on the pipeline:
//
//   - OpValidate is answered here, entirely from memory — the request
//     never reaches admission, the deadline stage, or the Service, so
//     a validate can never be queued behind hash-heavy logins or cost
//     a limiter slot. Any validation failure is CodeDenied; the
//     reason granularity lives in the session tier's metrics.
//   - A successful OpLogin response is stamped with a freshly minted
//     token (Response.Token). A mint failure — a follower that has
//     not adopted keys yet — degrades to a token-less login rather
//     than failing an otherwise-correct authentication.
//   - Any event that must cut off outstanding sessions revokes the
//     user: a successful OpChange or OpReset (the credential the
//     tokens were minted under is gone or suspect), and any
//     CodeLocked response (the account is under online attack; §5.1's
//     lockout would be toothless if an attacker's earlier session
//     kept working). Revocation persistence failures are deliberately
//     swallowed: the local watermark already refuses the tokens, and
//     failing the triggering request would punish the legitimate
//     caller.
func WithSession(tier SessionTier) Middleware {
	return func(next Handler) Handler {
		return HandlerFunc(func(ctx context.Context, req Request) Response {
			if req.Op == OpValidate {
				user, err := tier.Validate(req.Token)
				if err != nil {
					return Response{Version: Version, Code: CodeDenied, Err: "invalid session"}
				}
				return Response{Version: Version, Code: CodeOK, User: user}
			}
			resp := next.Handle(ctx, req)
			switch {
			case req.Op == OpLogin && resp.Code == CodeOK && req.User != "":
				if tok, err := tier.Mint(req.User); err == nil {
					resp.Token = tok
				}
			case resp.Code == CodeLocked && req.User != "":
				_ = tier.Revoke(req.User)
			case (req.Op == OpChange || req.Op == OpReset) && resp.Code == CodeOK && req.User != "":
				_ = tier.Revoke(req.User)
			}
			return resp
		})
	}
}

package repl

// The partition/failover torture suite. The failure model mirrors the
// walstore group-commit torture (TestGroupCommitTorture): each writer
// appends strictly increasing versions of its own record and tracks
// the highest version whose write was ACKED. After losing the primary
// wholesale and promoting the follower, the survivor must hold, per
// writer, a version in [highest acked, highest attempted] whose bytes
// are exactly the version's expected bytes:
//
//   - below the acked floor  → an acked write was lost (false reject)
//   - above the attempt ceil → fabricated state   (false accept)
//   - wrong bytes            → blended/corrupt state
//
// In quorum mode the acked floor is the hard guarantee: an ack is
// only issued after the follower's fsync covers the write, so no
// crash or partition of the primary can lose it. The replication link
// itself runs through a seeded fault injector (torn writes mid-frame,
// dropped connections, delays), so the stream's resume/re-bootstrap
// paths are exercised continuously while the floors are being built.

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"clickpass/internal/passpoints"
	"clickpass/internal/vault"
)

// sm64 is a seeded splitmix64 — the same deterministic generator the
// vault's Flaky wrapper uses, so torture runs are reproducible from
// the seed.
type sm64 struct {
	mu sync.Mutex
	s  uint64
}

func (g *sm64) next() uint64 {
	g.mu.Lock()
	g.s += 0x9e3779b97f4a7c15
	z := g.s
	g.mu.Unlock()
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// flakyConn injects seeded faults into a replication link: torn
// writes (a random prefix reaches the peer, then the conn dies —
// exactly a torn frame), outright drops, and delays. Faults poison
// the connection, forcing the follower through its redial/resume (or
// re-bootstrap) path.
type flakyConn struct {
	net.Conn
	g *sm64
	// per-10000 probabilities
	tear, drop, delay uint64
}

func (f *flakyConn) Write(b []byte) (int, error) {
	r := f.g.next()
	switch {
	case r%10000 < f.tear && len(b) > 1:
		k := int((r >> 16) % uint64(len(b)))
		n, _ := f.Conn.Write(b[:k])
		f.Conn.Close()
		return n, errors.New("flaky: torn write")
	case r%10000 < f.tear+f.drop:
		f.Conn.Close()
		return 0, errors.New("flaky: dropped connection (write)")
	case r%10000 < f.tear+f.drop+f.delay:
		time.Sleep(time.Duration(1+r%4) * time.Millisecond)
	}
	return f.Conn.Write(b)
}

func (f *flakyConn) Read(b []byte) (int, error) {
	r := f.g.next()
	switch {
	case r%10000 < f.drop:
		f.Conn.Close()
		return 0, errors.New("flaky: dropped connection (read)")
	case r%10000 < f.drop+f.delay:
		time.Sleep(time.Duration(1+r%4) * time.Millisecond)
	}
	return f.Conn.Read(b)
}

// flakyDialer wraps real loopback dials in flakyConns sharing one
// seeded generator.
func flakyDialer(g *sm64, tear, drop, delay uint64) func(string) (net.Conn, error) {
	return func(addr string) (net.Conn, error) {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		return &flakyConn{Conn: c, g: g, tear: tear, drop: drop, delay: delay}, nil
	}
}

// versionedTortureRecord encodes (user, version) into the digest so a
// recovered record's version — and its byte-exactness — can be read
// back out.
func versionedTortureRecord(user string, version int) *passpoints.Record {
	return &passpoints.Record{User: user, Kind: "passpoints", SquareSidePx: 19, ImageW: 451, ImageH: 331,
		Salt: []byte("salt"), Iterations: version,
		Digest: []byte(fmt.Sprintf("%s#%06d", user, version))}
}

// tortureVersion extracts the version a recovered record carries, -1
// for malformed bytes.
func tortureVersion(user string, rec *passpoints.Record) int {
	var v int
	want := fmt.Sprintf("%s#", user)
	s := string(rec.Digest)
	if len(s) != len(want)+6 || s[:len(want)] != want {
		return -1
	}
	if _, err := fmt.Sscanf(s[len(want):], "%06d", &v); err != nil {
		return -1
	}
	if rec.Iterations != v {
		return -1 // blended record: digest and iterations disagree
	}
	return v
}

// TestReplFailoverTorture is the headline robustness proof: concurrent
// writers build per-writer acked floors through a faulty replication
// link in quorum mode, the primary is killed mid-stream, the follower
// is promoted, and the survivor's state is checked against the floors.
func TestReplFailoverTorture(t *testing.T) {
	if testing.Short() {
		t.Skip("torture test skipped in -short mode")
	}
	g := &sm64{s: 0xc11c4fa5}
	pst, fst := openTestStore(t), openTestStore(t)
	p := newTestPrimary(t, pst, Options{
		Ack:           AckQuorum,
		QuorumTimeout: 2 * time.Second,
		Heartbeat:     20 * time.Millisecond,
		Advertise:     "old-primary:1",
	})
	f := newTestFollower(t, fst, p.ReplAddr(), Options{
		Advertise: "new-primary:1",
		Redial:    10 * time.Millisecond,
		// ~1.2% torn writes, 0.6% drops, 2% delays per socket op.
		Dial: flakyDialer(g, 120, 60, 200),
	})

	const (
		writers  = 4
		versions = 50
	)
	acked := make([]atomic.Int64, writers)
	attempted := make([]atomic.Int64, writers)
	var ackedTotal atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			user := fmt.Sprintf("writer%d", w)
			for v := 1; v <= versions; v++ {
				attempted[w].Store(int64(v))
				if err := p.Replace(versionedTortureRecord(user, v)); err == nil {
					acked[w].Store(int64(v))
					ackedTotal.Add(1)
				}
			}
		}(w)
	}

	// Kill the primary once the floors have substance: abrupt teardown
	// of listener, stream connections, and in-flight quorum waiters —
	// writes racing the kill get errors, exactly like callers of a
	// SIGKILLed process (the cmd/pwserver smoke does the real-process
	// version of this same drill).
	killAt := int64(writers * versions / 3)
	for ackedTotal.Load() < killAt {
		time.Sleep(time.Millisecond)
	}
	p.Close()
	wg.Wait()

	epoch, err := f.Promote()
	if err != nil {
		t.Fatalf("Promote: %v", err)
	}
	if fst.Epoch() != epoch || epoch == 0 {
		t.Fatalf("promotion epoch %d not persisted (store has %d)", epoch, fst.Epoch())
	}

	// The acked-floor check against the survivor.
	for w := 0; w < writers; w++ {
		user := fmt.Sprintf("writer%d", w)
		floor, ceil := int(acked[w].Load()), int(attempted[w].Load())
		rec, gerr := fst.Get(user)
		got := 0
		if gerr == nil {
			got = tortureVersion(user, rec)
		} else if !errors.Is(gerr, vault.ErrNotFound) {
			t.Fatalf("survivor Get(%s): %v", user, gerr)
		}
		if got < 0 {
			t.Errorf("%s: survivor holds malformed/blended record %q", user, rec.Digest)
			continue
		}
		if got < floor {
			t.Errorf("%s: acked-write loss — survivor at version %d, acked floor %d (false reject)", user, got, floor)
		}
		if got > ceil {
			t.Errorf("%s: survivor at version %d beyond last attempt %d (false accept)", user, got, ceil)
		}
	}

	// Life goes on: the promoted primary serves writes (quorum-covered
	// by a fresh, clean-linked follower) and streams them out.
	nst := openTestStore(t)
	newTestFollower(t, nst, f.ReplAddr(), Options{Redial: 10 * time.Millisecond})
	if err := f.Put(testRecord("after-failover")); err != nil {
		t.Fatalf("promoted primary Put: %v", err)
	}
	waitFor(t, 10*time.Second, "post-failover convergence", func() bool {
		_, err := nst.Get("after-failover")
		return err == nil
	})
}

// TestReplTortureLinkOnly hammers the faulty link without a failover:
// every quorum-acked write must be on the follower by the time the
// writers finish, despite continuous tears, drops, and redials.
func TestReplTortureLinkOnly(t *testing.T) {
	if testing.Short() {
		t.Skip("torture test skipped in -short mode")
	}
	g := &sm64{s: 0x5eed}
	pst, fst := openTestStore(t), openTestStore(t)
	p := newTestPrimary(t, pst, Options{
		Ack:           AckQuorum,
		QuorumTimeout: 2 * time.Second,
		Heartbeat:     20 * time.Millisecond,
		RetainBytes:   2048, // small: force re-bootstraps through the faults
	})
	newTestFollower(t, fst, p.ReplAddr(), Options{
		Redial: 10 * time.Millisecond,
		Dial:   flakyDialer(g, 150, 80, 250),
	})
	const writers, versions = 3, 40
	acked := make([]atomic.Int64, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			user := fmt.Sprintf("hammer%d", w)
			for v := 1; v <= versions; v++ {
				if err := p.Replace(versionedTortureRecord(user, v)); err == nil {
					acked[w].Store(int64(v))
				}
			}
		}(w)
	}
	wg.Wait()
	for w := 0; w < writers; w++ {
		user := fmt.Sprintf("hammer%d", w)
		floor := int(acked[w].Load())
		if floor == 0 {
			continue // the link was too hostile for any ack; nothing to check
		}
		rec, err := fst.Get(user)
		if err != nil {
			t.Fatalf("follower lost every version of %s (acked floor %d): %v", user, floor, err)
		}
		if got := tortureVersion(user, rec); got < floor {
			t.Errorf("%s: follower at version %d, acked floor %d", user, got, floor)
		}
	}
}

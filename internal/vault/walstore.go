package vault

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"clickpass/internal/passpoints"
)

// SyncPolicy selects when the durable store fsyncs a shard's log after
// appending a mutation. It is the knob that trades acked-write
// durability against write latency; see the package's PERFORMANCE.md
// "Durable vault" table for measured costs.
type SyncPolicy int

// Sync policies, strongest first.
const (
	// SyncAlways fsyncs after every append: an acked mutation survives
	// both a process kill and an OS crash. The default.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs dirty shards on a background timer
	// (DurableOptions.SyncEvery). An acked mutation survives a process
	// kill immediately (the write() has happened) but may be lost to an
	// OS crash inside the sync window.
	SyncInterval
	// SyncNever leaves syncing to the OS page cache (and Close). Acked
	// mutations survive a process kill but not an OS crash.
	SyncNever
)

// String returns the policy's flag spelling ("always", "interval",
// "never").
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// ParseSyncPolicy parses the -fsync flag spellings accepted by
// pwserver: "always", "interval", "never".
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	default:
		return 0, fmt.Errorf("vault: unknown sync policy %q (want always, interval or never)", s)
	}
}

// DefaultCompactRatio is the garbage-to-live threshold at which a
// shard's log is rewritten: compaction triggers when a log holds more
// than ratio× as many dead records (overwritten, deleted, stale
// lockout counters) as live entries.
const DefaultCompactRatio = 2.0

// compactMinEntries is the floor below which a shard log is never
// compacted — rewriting a hundred-record file buys nothing and the
// ratio test is noisy at small counts.
const compactMinEntries = 256

// DurableOptions configures OpenDurable. The zero value selects
// DefaultShards, SyncAlways, and DefaultCompactRatio with the
// background compactor enabled.
type DurableOptions struct {
	// Shards is the log/lock partition count; <= 0 selects
	// DefaultShards. The count is fixed when the directory is created
	// and recorded in its meta.json: a record's log is chosen by
	// hash(user) mod Shards, so changing the modulus under an existing
	// directory would strand records in the wrong logs. Reopening with
	// a different value silently keeps the on-disk count (check
	// Shards() for the effective value); to re-partition, SaveTo a
	// JSON snapshot and ImportJSON it into a fresh directory.
	Shards int
	// Sync is the fsync policy for appended mutations.
	Sync SyncPolicy
	// SyncEvery is the background fsync period under SyncInterval;
	// <= 0 selects 100ms. Ignored under other policies.
	SyncEvery time.Duration
	// CompactRatio overrides DefaultCompactRatio; <= 0 selects the
	// default.
	CompactRatio float64
	// NoAutoCompact disables the background compactor; Compact and
	// CompactShard remain available for manual use (tests, tooling).
	NoAutoCompact bool
}

// Durable is the crash-safe Store: the fnv-sharded in-memory map of
// Sharded, with one append-only log file per shard as the source of
// truth. Every mutation — Put, Replace, Delete, and lockout-counter
// writes through the LockoutStore extension — appends one
// length-prefixed, CRC32-checksummed record to its shard's log before
// the call returns, so an acked write survives a crash (exactly how
// durably is the SyncPolicy's call). OpenDurable replays the logs to
// rebuild memory, truncating each log at the first torn or corrupt
// record: everything acked before the tear is recovered, the torn
// tail is dropped.
//
// Logs only grow, so a background compactor (or an explicit Compact)
// rewrites a shard's log from its live map once dead records outgrow
// CompactRatio× the live set. SaveTo still exports the canonical JSON
// snapshot shared by Vault and Sharded, and ImportJSON loads one, so
// a deployment can migrate between backends in either direction.
type Durable struct {
	dir    string
	opts   DurableOptions
	shards []walShard
	closed atomic.Bool

	kick chan int      // compactor nudge, carries a shard index
	stop chan struct{} // closes to stop background goroutines
	bg   sync.WaitGroup
}

// walShard is one log-backed partition. The mutex covers both the map
// and the file: an append and its map update are atomic with respect
// to other writers, and compaction swaps the file under the same lock.
type walShard struct {
	mu       sync.Mutex
	records  map[string]*passpoints.Record
	lockouts map[string]int
	f        *os.File
	path     string
	off      int64 // committed log length; failed appends roll back to it
	entries  int   // records in the log since its last rewrite
	dirty    bool  // has unsynced appends (SyncInterval bookkeeping)
	buf      []byte
}

// Durable implements Store and the LockoutStore extension.
var (
	_ Store        = (*Durable)(nil)
	_ LockoutStore = (*Durable)(nil)
)

// walEntry is the JSON payload of one log record. Op distinguishes
// the three mutation classes; exactly one of Rec / Failures carries
// the data.
type walEntry struct {
	// Op is "put" (store or overwrite Rec), "del" (remove User), or
	// "lock" (set User's failed-attempt counter to Failures; 0 clears).
	Op       string             `json:"op"`
	User     string             `json:"user"`
	Rec      *passpoints.Record `json:"rec,omitempty"`
	Failures int                `json:"failures,omitempty"`
}

const (
	walOpPut  = "put"
	walOpDel  = "del"
	walOpLock = "lock"
)

// walHeaderSize is the fixed per-record framing: a little-endian
// uint32 payload length followed by the IEEE CRC32 of the payload.
const walHeaderSize = 8

// walMaxRecord bounds a decoded record length. A corrupt length field
// must not make replay allocate gigabytes; no legitimate entry (one
// user record) approaches this.
const walMaxRecord = 1 << 26

// shardLogName returns the log file name for shard i.
func shardLogName(i int) string { return fmt.Sprintf("shard-%04d.wal", i) }

// OpenDurable opens (creating if needed) the append-log store rooted
// at directory dir and replays every shard log into memory. A log
// whose tail is torn — a partially written record from a crash — is
// truncated at the tear, recovering every fully appended record and
// dropping only the unacked tail. Close flushes and releases the
// logs; an unclosed store's logs are still consistent (that is the
// point), but Close is how a clean shutdown syncs SyncNever data.
func OpenDurable(dir string, opts DurableOptions) (*Durable, error) {
	if opts.Shards <= 0 {
		opts.Shards = DefaultShards
	}
	if opts.CompactRatio <= 0 {
		opts.CompactRatio = DefaultCompactRatio
	}
	if opts.SyncEvery <= 0 {
		opts.SyncEvery = 100 * time.Millisecond
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("vault: creating %s: %w", dir, err)
	}
	shards, err := loadOrInitMeta(dir, opts.Shards)
	if err != nil {
		return nil, err
	}
	opts.Shards = shards
	// A crash between CreateTemp and Rename (compaction, meta write)
	// strands a ".compact-*"/".meta-*" temp file; clean them up here
	// or repeated crashes leak shard-sized dead files forever. Safe:
	// temps are only live inside a call holding the shard lock, and no
	// other store instance may share the directory.
	for _, pat := range []string{".compact-*", ".meta-*"} {
		if stale, _ := filepath.Glob(filepath.Join(dir, pat)); len(stale) > 0 {
			for _, f := range stale {
				_ = os.Remove(f)
			}
		}
	}
	d := &Durable{
		dir:    dir,
		opts:   opts,
		shards: make([]walShard, opts.Shards),
		kick:   make(chan int, opts.Shards),
		stop:   make(chan struct{}),
	}
	for i := range d.shards {
		sh := &d.shards[i]
		sh.records = make(map[string]*passpoints.Record)
		sh.lockouts = make(map[string]int)
		sh.path = filepath.Join(dir, shardLogName(i))
		if err := sh.open(); err != nil {
			d.closeFiles()
			return nil, err
		}
	}
	if err := syncDir(dir); err != nil {
		d.closeFiles()
		return nil, err
	}
	if !opts.NoAutoCompact {
		d.bg.Add(1)
		go d.compactLoop()
	}
	if opts.Sync == SyncInterval {
		d.bg.Add(1)
		go d.syncLoop()
	}
	return d, nil
}

// open replays the shard's log (truncating a torn tail) and leaves the
// file open for appends.
func (sh *walShard) open() error {
	f, err := os.OpenFile(sh.path, os.O_RDWR|os.O_CREATE, 0o600)
	if err != nil {
		return fmt.Errorf("vault: opening %s: %w", sh.path, err)
	}
	sh.f = f
	n, off, err := replayLog(f, func(e *walEntry) { sh.apply(e) })
	if err != nil {
		f.Close()
		sh.f = nil
		return err
	}
	sh.entries = n
	sh.off = off
	return nil
}

// apply folds one decoded entry into the shard's maps. Replay-time
// only; live mutations update the maps inline after their append.
func (sh *walShard) apply(e *walEntry) {
	switch e.Op {
	case walOpPut:
		if e.Rec != nil && e.Rec.User != "" {
			sh.records[e.Rec.User] = e.Rec
		}
	case walOpDel:
		delete(sh.records, e.User)
	case walOpLock:
		if e.Failures > 0 {
			sh.lockouts[e.User] = e.Failures
		} else {
			delete(sh.lockouts, e.User)
		}
	}
}

// replayLog streams records from the start of f, calling apply for
// each intact one. At the first torn or corrupt record it truncates f
// there — dropping that record and everything after it — and seeks to
// the new end so the caller can append. It returns the number of
// intact records and the log length they occupy.
func replayLog(f *os.File, apply func(*walEntry)) (int, int64, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0, 0, fmt.Errorf("vault: seeking %s: %w", f.Name(), err)
	}
	var (
		r       = bufio.NewReader(f)
		off     int64 // start offset of the record being decoded
		n       int
		header  [walHeaderSize]byte
		payload []byte
	)
	for {
		if _, err := io.ReadFull(r, header[:]); err != nil {
			// io.EOF: clean end. ErrUnexpectedEOF: torn header.
			break
		}
		length := binary.LittleEndian.Uint32(header[0:4])
		sum := binary.LittleEndian.Uint32(header[4:8])
		if length == 0 || length > walMaxRecord {
			break // corrupt length field
		}
		if cap(payload) < int(length) {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if _, err := io.ReadFull(r, payload); err != nil {
			break // torn payload
		}
		if crc32.ChecksumIEEE(payload) != sum {
			break // corrupt payload
		}
		var e walEntry
		if err := json.Unmarshal(payload, &e); err != nil {
			break // checksummed garbage: treat like corruption
		}
		apply(&e)
		off += walHeaderSize + int64(length)
		n++
	}
	// Never truncate silently: a crash's torn tail is under one
	// record, but a corrupt byte early in a big log discards every
	// acked record after it — the operator's only chance to reach for
	// a snapshot is this line, because the evidence is gone after the
	// truncate.
	if size, err := f.Seek(0, io.SeekEnd); err == nil && size > off {
		log.Printf("vault: %s: dropping %d bytes after record %d (torn or corrupt tail)",
			f.Name(), size-off, n)
	}
	if err := f.Truncate(off); err != nil {
		return 0, 0, fmt.Errorf("vault: truncating torn tail of %s: %w", f.Name(), err)
	}
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		return 0, 0, fmt.Errorf("vault: seeking %s: %w", f.Name(), err)
	}
	return n, off, nil
}

// append encodes e, writes it to the shard's log in one write call,
// and fsyncs under SyncAlways. Caller holds sh.mu. The map mutation
// must happen only after append returns nil: a failed append means
// the mutation was never acked — and to keep that contract honest in
// both directions, a failed write or sync rolls the log back to the
// last committed offset. Without the rollback, torn bytes from a
// failed append would sit in front of later successful records
// (replay would truncate them all away), and a record whose fsync
// failed would resurrect on restart despite the caller being told it
// failed.
func (sh *walShard) append(e *walEntry, sync bool) error {
	payload, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("vault: encoding log entry: %w", err)
	}
	need := walHeaderSize + len(payload)
	if cap(sh.buf) < need {
		sh.buf = make([]byte, need)
	}
	buf := sh.buf[:need]
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[walHeaderSize:], payload)
	if _, err := sh.f.Write(buf); err != nil {
		sh.rollback()
		return fmt.Errorf("vault: appending to %s: %w", sh.path, err)
	}
	if sync {
		if err := sh.f.Sync(); err != nil {
			sh.rollback()
			return fmt.Errorf("vault: syncing %s: %w", sh.path, err)
		}
	} else {
		sh.dirty = true
	}
	sh.off += int64(need)
	sh.entries++
	return nil
}

// rollback truncates the log to the last committed offset after a
// failed append, discarding any partially written record so the next
// append starts clean. Best effort: if even the truncate fails the
// log keeps the torn bytes and replay's CRC check contains the
// damage to this shard's tail, same as a crash.
func (sh *walShard) rollback() {
	if err := sh.f.Truncate(sh.off); err != nil {
		return
	}
	_, _ = sh.f.Seek(sh.off, io.SeekStart)
}

// live returns the shard's live entry count (records plus tracked
// lockout counters). Caller holds sh.mu.
func (sh *walShard) live() int { return len(sh.records) + len(sh.lockouts) }

// Dir returns the store's log directory.
func (d *Durable) Dir() string { return d.dir }

// Shards returns the shard count.
func (d *Durable) Shards() int { return len(d.shards) }

// shardFor picks the shard by FNV-1a of the user name — the same
// split as Sharded's (see FNV32a).
func (d *Durable) shardFor(user string) (*walShard, int) {
	i := int(FNV32a(user) % uint32(len(d.shards)))
	return &d.shards[i], i
}

// errSkipAppend is returned by a mutate precondition to turn the call
// into an acked no-op (nothing appended, nothing applied).
var errSkipAppend = errors.New("vault: skip append")

// mutate is the single write path: under the shard lock it runs pre
// (which may refuse the mutation, or skip it via errSkipAppend),
// appends e to the shard's log, and — only once the append has been
// acked — applies update to the shard's maps. It nudges the compactor
// when the shard's garbage crosses the configured ratio.
func (d *Durable) mutate(user string, e *walEntry, pre func(*walShard) error, update func(*walShard)) error {
	if d.closed.Load() {
		return fmt.Errorf("vault: store is closed")
	}
	sh, i := d.shardFor(user)
	sh.mu.Lock()
	if sh.f == nil {
		// Close won the race between our closed-flag check and the
		// shard lock; without this re-check the append would fail with
		// an unhelpful ErrInvalid from the nil file.
		sh.mu.Unlock()
		return fmt.Errorf("vault: store is closed")
	}
	if pre != nil {
		if err := pre(sh); err != nil {
			sh.mu.Unlock()
			if err == errSkipAppend {
				return nil
			}
			return err
		}
	}
	if err := sh.append(e, d.opts.Sync == SyncAlways); err != nil {
		sh.mu.Unlock()
		return err
	}
	update(sh)
	needCompact := sh.entries >= compactMinEntries &&
		float64(sh.entries-sh.live()) > d.opts.CompactRatio*float64(max(sh.live(), 1))
	sh.mu.Unlock()
	if needCompact && !d.opts.NoAutoCompact {
		select {
		case d.kick <- i:
		default: // compactor busy; it will be re-kicked by a later write
		}
	}
	return nil
}

// Put stores a record for a new user, appending it to the user's
// shard log before acking.
func (d *Durable) Put(rec *passpoints.Record) error {
	if rec == nil || rec.User == "" {
		return fmt.Errorf("vault: record must have a user")
	}
	return d.mutate(rec.User, &walEntry{Op: walOpPut, Rec: rec},
		func(sh *walShard) error {
			if _, ok := sh.records[rec.User]; ok {
				return ErrExists
			}
			return nil
		},
		func(sh *walShard) {
			sh.records[rec.User] = rec
		})
}

// Replace stores a record, overwriting any existing one (password
// change), appending before acking.
func (d *Durable) Replace(rec *passpoints.Record) error {
	if rec == nil || rec.User == "" {
		return fmt.Errorf("vault: record must have a user")
	}
	return d.mutate(rec.User, &walEntry{Op: walOpPut, Rec: rec}, nil, func(sh *walShard) {
		sh.records[rec.User] = rec
	})
}

// Get returns the record for user, or ErrNotFound.
func (d *Durable) Get(user string) (*passpoints.Record, error) {
	sh, _ := d.shardFor(user)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	rec, ok := sh.records[user]
	if !ok {
		return nil, ErrNotFound
	}
	return rec, nil
}

// Delete removes a user's record; deleting a missing user is a no-op
// and appends nothing.
func (d *Durable) Delete(user string) {
	_ = d.mutate(user, &walEntry{Op: walOpDel, User: user},
		func(sh *walShard) error {
			if _, ok := sh.records[user]; !ok {
				return errSkipAppend
			}
			return nil
		},
		func(sh *walShard) {
			delete(sh.records, user)
		})
}

// SetLockout durably sets user's failed-attempt counter; failures <= 0
// clears it. It implements LockoutStore: the auth service writes
// every counter change through here so lockout state — the §5.1
// online-attack defense — survives a restart instead of resetting to
// a fresh attempt budget.
func (d *Durable) SetLockout(user string, failures int) error {
	if user == "" {
		return fmt.Errorf("vault: lockout entry must name a user")
	}
	if failures < 0 {
		failures = 0
	}
	return d.mutate(user, &walEntry{Op: walOpLock, User: user, Failures: failures}, nil, func(sh *walShard) {
		if failures > 0 {
			sh.lockouts[user] = failures
		} else {
			delete(sh.lockouts, user)
		}
	})
}

// Lockouts returns a copy of every persisted failed-attempt counter.
func (d *Durable) Lockouts() map[string]int {
	out := make(map[string]int)
	for i := range d.shards {
		sh := &d.shards[i]
		sh.mu.Lock()
		for u, n := range sh.lockouts {
			out[u] = n
		}
		sh.mu.Unlock()
	}
	return out
}

// Users returns all user names in sorted order.
func (d *Durable) Users() []string {
	users := make([]string, 0, d.Len())
	for i := range d.shards {
		sh := &d.shards[i]
		sh.mu.Lock()
		for u := range sh.records {
			users = append(users, u)
		}
		sh.mu.Unlock()
	}
	sort.Strings(users)
	return users
}

// Len returns the number of records.
func (d *Durable) Len() int {
	n := 0
	for i := range d.shards {
		sh := &d.shards[i]
		sh.mu.Lock()
		n += len(sh.records)
		sh.mu.Unlock()
	}
	return n
}

// All returns every record sorted by user — the attacker's view after
// a password-file compromise.
func (d *Durable) All() []*passpoints.Record {
	recs := d.Snapshot()
	sort.Slice(recs, func(i, j int) bool { return recs[i].User < recs[j].User })
	return recs
}

// Snapshot returns every record in shard order without the global
// sort, per-shard-consistent exactly like Sharded.Snapshot.
func (d *Durable) Snapshot() []*passpoints.Record {
	recs := make([]*passpoints.Record, 0, d.Len())
	for i := range d.shards {
		sh := &d.shards[i]
		sh.mu.Lock()
		for _, r := range sh.records {
			recs = append(recs, r)
		}
		sh.mu.Unlock()
	}
	return recs
}

// Save fsyncs every shard log. Durability is continuous for this
// backend — the logs ARE the backing file — so Save's contract
// ("persist current state") reduces to flushing whatever the sync
// policy has deferred.
func (d *Durable) Save() error {
	for i := range d.shards {
		sh := &d.shards[i]
		sh.mu.Lock()
		if sh.f == nil {
			sh.mu.Unlock()
			return fmt.Errorf("vault: store is closed")
		}
		err := sh.f.Sync()
		if err == nil {
			sh.dirty = false
		}
		sh.mu.Unlock()
		if err != nil {
			return fmt.Errorf("vault: syncing %s: %w", sh.path, err)
		}
	}
	return nil
}

// SaveTo exports the store as the canonical sorted-JSON snapshot the
// other two backends read and write — the migration/downgrade path
// out of the log format.
func (d *Durable) SaveTo(path string) error {
	return writeRecords(path, d.All())
}

// ImportJSON loads a JSON snapshot (the Vault/Sharded on-disk format)
// into an empty durable store, appending every record to its shard
// log — the in-place migration path for a deployment moving off the
// snapshot backends. It refuses to import over existing records.
// Records are appended unsynced and flushed once per shard at the
// end: per-record durability buys nothing here (a failed import is
// retried from the snapshot anyway), and one fsync per shard instead
// of per user keeps a million-record migration in seconds, not
// hours.
func (d *Durable) ImportJSON(path string) error {
	if d.Len() > 0 {
		return fmt.Errorf("vault: ImportJSON into non-empty store")
	}
	recs, err := loadRecords(path)
	if err != nil {
		return err
	}
	for _, r := range recs {
		// loadRecords already validated non-nil records and distinct,
		// non-empty users.
		sh, _ := d.shardFor(r.User)
		sh.mu.Lock()
		if sh.f == nil {
			sh.mu.Unlock()
			return fmt.Errorf("vault: store is closed")
		}
		if err := sh.append(&walEntry{Op: walOpPut, Rec: r}, false); err != nil {
			sh.mu.Unlock()
			return err
		}
		sh.records[r.User] = r
		sh.mu.Unlock()
	}
	return d.Save()
}

// Compact synchronously rewrites every shard's log from its live map,
// discarding dead records. (For this backend Compact rewrites the
// logs themselves; use SaveTo for the JSON snapshot Sharded.Compact
// produces.)
func (d *Durable) Compact() error {
	for i := range d.shards {
		if err := d.CompactShard(i); err != nil {
			return err
		}
	}
	return nil
}

// CompactShard rewrites shard i's log from its live map: the new log
// is written to a temp file, fsynced, and renamed over the old one,
// so a crash mid-compaction leaves the previous log intact. The shard
// is write-locked for the duration.
func (d *Durable) CompactShard(i int) error {
	if i < 0 || i >= len(d.shards) {
		return fmt.Errorf("vault: no shard %d", i)
	}
	sh := &d.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.f == nil {
		return fmt.Errorf("vault: store is closed")
	}
	tmp, err := os.CreateTemp(d.dir, ".compact-*")
	if err != nil {
		return fmt.Errorf("vault: compaction temp file: %w", err)
	}
	tmpName := tmp.Name()
	ok := false
	defer func() {
		if !ok {
			tmp.Close()
			os.Remove(tmpName)
		}
	}()
	w := bufio.NewWriter(tmp)
	n := 0
	writeEntry := func(e *walEntry) error {
		payload, err := json.Marshal(e)
		if err != nil {
			return err
		}
		var header [walHeaderSize]byte
		binary.LittleEndian.PutUint32(header[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(header[4:8], crc32.ChecksumIEEE(payload))
		if _, err := w.Write(header[:]); err != nil {
			return err
		}
		_, err = w.Write(payload)
		n++
		return err
	}
	for _, rec := range sh.records {
		if err := writeEntry(&walEntry{Op: walOpPut, Rec: rec}); err != nil {
			return fmt.Errorf("vault: compacting %s: %w", sh.path, err)
		}
	}
	for user, failures := range sh.lockouts {
		if err := writeEntry(&walEntry{Op: walOpLock, User: user, Failures: failures}); err != nil {
			return fmt.Errorf("vault: compacting %s: %w", sh.path, err)
		}
	}
	if err := w.Flush(); err != nil {
		return fmt.Errorf("vault: compacting %s: %w", sh.path, err)
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("vault: syncing compacted %s: %w", sh.path, err)
	}
	// Size the new log before the rename commits it: failing here
	// still leaves the old log live, whereas any error after the
	// rename would leave sh.f pointing at the replaced inode and
	// every later acked append would vanish on restart.
	newOff, err := tmp.Seek(0, io.SeekCurrent)
	if err != nil {
		return fmt.Errorf("vault: sizing compacted %s: %w", sh.path, err)
	}
	if err := os.Rename(tmpName, sh.path); err != nil {
		return fmt.Errorf("vault: committing compacted %s: %w", sh.path, err)
	}
	ok = true
	// The rename does not invalidate tmp's descriptor: it now IS the
	// shard log, positioned at end, ready for appends.
	old := sh.f
	sh.f = tmp
	sh.off = newOff
	sh.entries = n
	sh.dirty = false
	old.Close()
	return syncDir(d.dir)
}

// compactLoop is the background compactor: it waits for shard indexes
// kicked by writers and rewrites those logs. One log rewrite at a
// time keeps the I/O burst bounded.
func (d *Durable) compactLoop() {
	defer d.bg.Done()
	for {
		select {
		case <-d.stop:
			return
		case i := <-d.kick:
			// Re-check under the lock via CompactShard? The ratio may
			// have been reset by an interleaved manual Compact; a
			// redundant rewrite is merely wasted I/O, not a bug.
			_ = d.CompactShard(i)
		}
	}
}

// syncLoop is the SyncInterval flusher: every SyncEvery it fsyncs
// shards with unsynced appends.
func (d *Durable) syncLoop() {
	defer d.bg.Done()
	t := time.NewTicker(d.opts.SyncEvery)
	defer t.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-t.C:
			for i := range d.shards {
				sh := &d.shards[i]
				sh.mu.Lock()
				if sh.dirty && sh.f != nil {
					// Only a successful sync clears dirty: a transient
					// EIO/ENOSPC must be retried next tick, not
					// silently turn acked data non-durable forever.
					if err := sh.f.Sync(); err != nil {
						log.Printf("vault: background sync of %s: %v", sh.path, err)
					} else {
						sh.dirty = false
					}
				}
				sh.mu.Unlock()
			}
		}
	}
}

// Close stops the background goroutines, fsyncs every log, and closes
// the files. The store must not be used after Close; mutations on a
// closed store fail.
func (d *Durable) Close() error {
	if !d.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(d.stop)
	d.bg.Wait()
	var firstErr error
	for i := range d.shards {
		sh := &d.shards[i]
		sh.mu.Lock()
		if sh.f != nil {
			if err := sh.f.Sync(); err != nil && firstErr == nil {
				firstErr = err
			}
			if err := sh.f.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
			sh.f = nil
		}
		sh.mu.Unlock()
	}
	return firstErr
}

// closeFiles releases shard files after a failed open, before any
// background goroutine exists.
func (d *Durable) closeFiles() {
	for i := range d.shards {
		if f := d.shards[i].f; f != nil {
			f.Close()
		}
	}
}

// walMeta is the meta.json document pinning the directory's layout.
type walMeta struct {
	Version int `json:"version"`
	Shards  int `json:"shards"`
}

// loadOrInitMeta reads the directory's shard count, writing meta.json
// (atomically, before any log exists) on first creation. An existing
// directory's count always wins over the caller's request — the logs
// were partitioned under it.
func loadOrInitMeta(dir string, want int) (int, error) {
	path := filepath.Join(dir, "meta.json")
	data, err := os.ReadFile(path)
	if err == nil {
		var m walMeta
		if err := json.Unmarshal(data, &m); err != nil {
			return 0, fmt.Errorf("vault: parsing %s: %w", path, err)
		}
		if m.Shards <= 0 {
			return 0, fmt.Errorf("vault: %s has invalid shard count %d", path, m.Shards)
		}
		return m.Shards, nil
	}
	if !os.IsNotExist(err) {
		return 0, fmt.Errorf("vault: reading %s: %w", path, err)
	}
	// Fresh directory — but refuse to guess if logs are already there
	// (a hand-deleted meta.json must not silently re-partition them).
	if logs, _ := filepath.Glob(filepath.Join(dir, "shard-*.wal")); len(logs) > 0 {
		return 0, fmt.Errorf("vault: %s has shard logs but no meta.json", dir)
	}
	data, err = json.Marshal(walMeta{Version: 1, Shards: want})
	if err != nil {
		return 0, err
	}
	tmp, err := os.CreateTemp(dir, ".meta-*")
	if err != nil {
		return 0, fmt.Errorf("vault: meta temp file: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName)
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return 0, fmt.Errorf("vault: writing %s: %w", tmpName, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return 0, fmt.Errorf("vault: syncing %s: %w", tmpName, err)
	}
	if err := tmp.Close(); err != nil {
		return 0, err
	}
	if err := os.Rename(tmpName, path); err != nil {
		return 0, fmt.Errorf("vault: committing %s: %w", path, err)
	}
	return want, nil
}

// syncDir fsyncs a directory so file creations and renames inside it
// are themselves durable.
func syncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("vault: opening %s for sync: %w", dir, err)
	}
	defer f.Close()
	if err := f.Sync(); err != nil {
		return fmt.Errorf("vault: syncing %s: %w", dir, err)
	}
	return nil
}

package core

import (
	"math"
	"testing"

	"clickpass/internal/fixed"
	"clickpass/internal/geom"
)

func TestCentered2DExactSquare(t *testing.T) {
	c, err := NewCentered(13)
	if err != nil {
		t.Fatal(err)
	}
	p := geom.Pt(200, 150)
	tok := c.Enroll(p)
	accepted := 0
	for dx := -10; dx <= 10; dx++ {
		for dy := -10; dy <= 10; dy++ {
			q := geom.Pt(200+dx, 150+dy)
			got := Accepts(c, tok, q)
			want := dx >= -6 && dx <= 6 && dy >= -6 && dy <= 6
			if got != want {
				t.Fatalf("offset (%d,%d): accepted=%v want=%v", dx, dy, got, want)
			}
			if got {
				accepted++
			}
		}
	}
	if accepted != 13*13 {
		t.Errorf("accepted %d pixels, want 169 (13x13)", accepted)
	}
}

func TestCentered2DNoFalseAcceptsRejects(t *testing.T) {
	// The headline claim: acceptance == centered-tolerance membership,
	// for every original point (no dependence on where the point falls
	// relative to any static grid).
	c, err := NewCentered(9)
	if err != nil {
		t.Fatal(err)
	}
	r := c.GuaranteedR()
	for x := 0; x < 30; x++ {
		for y := 0; y < 30; y += 4 {
			p := geom.Pt(x, y)
			tok := c.Enroll(p)
			for dx := -6; dx <= 6; dx++ {
				for dy := -6; dy <= 6; dy++ {
					q := geom.Pt(x+dx, y+dy)
					got := Accepts(c, tok, q)
					want := p.Chebyshev(q) <= r
					if got != want {
						t.Fatalf("(%d,%d)+(%d,%d): got %v want %v", x, y, dx, dy, got, want)
					}
				}
			}
		}
	}
}

func TestCenteredOriginalReconstruction(t *testing.T) {
	c, err := NewCentered(19)
	if err != nil {
		t.Fatal(err)
	}
	for x := 0; x < 100; x += 7 {
		for y := 3; y < 100; y += 13 {
			p := geom.Pt(x, y)
			if got := c.Original(c.Enroll(p)); got != p {
				t.Fatalf("Original(Enroll(%v)) = %v", p, got)
			}
		}
	}
}

func TestCenteredRegionCentered(t *testing.T) {
	c, err := NewCentered(13)
	if err != nil {
		t.Fatal(err)
	}
	p := geom.Pt(77, 31)
	region := c.Region(c.Enroll(p))
	if region.Center() != p {
		t.Errorf("region center %v != original %v", region.Center(), p)
	}
	if region.W() != fixed.FromPixels(13) || region.H() != fixed.FromPixels(13) {
		t.Errorf("region %vx%v, want 13x13", region.W(), region.H())
	}
}

func TestRobustRegionNotAlwaysCentered(t *testing.T) {
	// The contrast with Centered: Robust's region is usually offset
	// from the click-point.
	rb, err := NewRobust2D(36, MostCentered, 1)
	if err != nil {
		t.Fatal(err)
	}
	offCenter := 0
	total := 0
	for x := 0; x < 72; x += 5 {
		for y := 0; y < 72; y += 5 {
			p := geom.Pt(x, y)
			if rb.Region(rb.Enroll(p)).Center() != p {
				offCenter++
			}
			total++
		}
	}
	if offCenter == 0 {
		t.Error("Robust regions were always centered — implausible")
	}
	t.Logf("Robust: %d/%d enrollments off-center", offCenter, total)
}

func TestClearBits(t *testing.T) {
	// §5.2: r = 8 -> 2r = 16 -> log2(16^2) = 8 bits for Centered;
	// Robust always log2(3).
	c, err := NewCentered(16)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.ClearBits(); math.Abs(got-8) > 1e-9 {
		t.Errorf("Centered ClearBits(16) = %f, want 8", got)
	}
	rb, err := NewRobust2D(36, MostCentered, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := rb.ClearBits(); math.Abs(got-math.Log2(3)) > 1e-9 {
		t.Errorf("Robust ClearBits = %f, want log2(3)", got)
	}
}

func TestGuaranteedToleranceColumns(t *testing.T) {
	// Table 3's r columns: the guaranteed tolerance each scheme offers
	// for a given square size.
	cases := []struct {
		side          int
		centeredHalf  int // in half-pixels: (side-1)/2 px
		robustSubUnit int // r in sub-pixel units = side
	}{
		{9, 8, 9}, {13, 12, 13}, {19, 18, 19}, {24, 23, 24}, {36, 35, 36}, {54, 53, 54},
	}
	for _, cse := range cases {
		c, err := NewCentered(cse.side)
		if err != nil {
			t.Fatal(err)
		}
		if got := c.GuaranteedR(); got != fixed.FromHalfPixels(cse.centeredHalf) {
			t.Errorf("Centered %dx%d: r = %s, want %s", cse.side, cse.side,
				got, fixed.FromHalfPixels(cse.centeredHalf))
		}
		rb, err := NewRobust2D(cse.side, MostCentered, 1)
		if err != nil {
			t.Fatal(err)
		}
		if got := rb.GuaranteedR(); got != fixed.Sub(cse.robustSubUnit) {
			t.Errorf("Robust %dx%d: r = %s, want side/6", cse.side, cse.side, got)
		}
	}
}

func TestSchemeNames(t *testing.T) {
	c, _ := NewCentered(13)
	rb, _ := NewRobust2D(13, MostCentered, 1)
	if c.Name() != "centered" || rb.Name() != "robust" {
		t.Errorf("names: %q, %q", c.Name(), rb.Name())
	}
	if rb.Policy() != MostCentered {
		t.Errorf("policy accessor broken")
	}
}

func TestNewCenteredValidation(t *testing.T) {
	if _, err := NewCentered(0); err == nil {
		t.Error("zero side should fail")
	}
	if _, err := NewCentered(-3); err == nil {
		t.Error("negative side should fail")
	}
}

// TestSchemesShareInterface sanity-checks polymorphic use.
func TestSchemesShareInterface(t *testing.T) {
	c, _ := NewCentered(19)
	rb, _ := NewRobust2D(19, MostCentered, 1)
	for _, s := range []Scheme{c, rb} {
		p := geom.Pt(40, 40)
		tok := s.Enroll(p)
		if !Accepts(s, tok, p) {
			t.Errorf("%s rejects its own enrollment point", s.Name())
		}
		// Within guaranteed tolerance must always be accepted.
		rPx := int(s.GuaranteedR() / fixed.Scale)
		if !Accepts(s, tok, geom.Pt(40+rPx, 40)) {
			t.Errorf("%s rejects displacement %dpx within guaranteed r", s.Name(), rPx)
		}
		// Beyond MaxAccepted must always be rejected.
		far := int(s.MaxAccepted()/fixed.Scale) + 1
		if Accepts(s, tok, geom.Pt(40+far, 40)) {
			t.Errorf("%s accepts displacement %dpx beyond max", s.Name(), far)
		}
	}
}

// Package repl replicates a durable vault by shipping its per-shard
// write-ahead logs to followers over TCP — primary/backup log
// shipping in which a follower is simply the startup-recovery code
// path running continuously: every received batch goes through the
// same frame validation and walEntry application as crash replay, so
// replicated state is byte-equivalent to crash-recovered state by
// construction.
//
// A Node wraps a *vault.Durable and implements vault.Store (and
// vault.LockoutStore) with a role guard in front: a primary accepts
// mutations and streams them, a follower refuses them with
// vault.NotPrimaryError (carrying the primary's advertised address as
// a redirect hint) and may serve reads behind a staleness bound.
// Roles are governed by a monotonic epoch persisted in the store's
// meta.json: promotion bumps the epoch durably before the node acts
// as primary, and any node that observes a higher epoch than its own
// fences itself — a deposed primary refuses every later write rather
// than silently diverging. In quorum ack mode (AckQuorum) a mutation
// is only acknowledged to its writer after a follower's fsync covers
// it, which doubles as partition-tolerant fencing: a primary cut off
// from its follower cannot ack, so no acked write can be lost to a
// failover that promotes the follower.
//
// Followers bootstrap (and re-bootstrap after falling behind the
// primary's bounded retention buffer) from per-shard snapshots that
// reuse the checkpoint machinery: the installed snapshot becomes a
// freshly rewritten shard log behind a full generation marker, and
// the frame stream resumes after the snapshot's sequence floor.
package repl

import (
	"errors"
	"fmt"
	"log"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"clickpass/internal/passpoints"
	"clickpass/internal/vault"
)

// Role is a node's replication role.
type Role int

// Roles.
const (
	// RoleFollower applies the primary's stream and refuses mutations.
	RoleFollower Role = iota
	// RolePrimary accepts mutations and streams them to followers.
	RolePrimary
)

// String returns the role's flag spelling.
func (r Role) String() string {
	switch r {
	case RolePrimary:
		return "primary"
	case RoleFollower:
		return "follower"
	default:
		return fmt.Sprintf("Role(%d)", int(r))
	}
}

// ParseRole parses the -role flag spellings "primary" and "follower".
func ParseRole(s string) (Role, error) {
	switch s {
	case "primary":
		return RolePrimary, nil
	case "follower":
		return RoleFollower, nil
	default:
		return 0, fmt.Errorf("repl: unknown role %q (want primary or follower)", s)
	}
}

// AckMode selects when a primary acknowledges a mutation to its
// writer.
type AckMode int

// Ack modes.
const (
	// AckQuorum acks a mutation only after a follower's fsync covers
	// it (piggybacking on the group-commit batch): an acked write
	// survives losing the primary wholesale. The default.
	AckQuorum AckMode = iota
	// AckAsync acks on local durability alone; the stream trails
	// behind. Cheaper, but writes acked inside the replication lag
	// window are lost if the primary dies and the follower is
	// promoted.
	AckAsync
)

// String returns the mode's flag spelling.
func (m AckMode) String() string {
	switch m {
	case AckQuorum:
		return "quorum"
	case AckAsync:
		return "async"
	default:
		return fmt.Sprintf("AckMode(%d)", int(m))
	}
}

// ParseAckMode parses the -repl-ack flag spellings "quorum" and
// "async".
func ParseAckMode(s string) (AckMode, error) {
	switch s {
	case "quorum":
		return AckQuorum, nil
	case "async":
		return AckAsync, nil
	default:
		return 0, fmt.Errorf("repl: unknown ack mode %q (want quorum or async)", s)
	}
}

// Options configures a Node. The zero value of every optional field
// selects a sensible default (see each field).
type Options struct {
	// Listen is the replication listen address ("host:port"). A
	// primary serves its stream here; a follower keeps it so a later
	// Promote can start listening. Required for primaries.
	Listen string
	// Primary is the current primary's replication address a follower
	// dials. Required for followers.
	Primary string
	// Advertise is this node's client-facing address, handed to peers
	// and forwarded to clients in not-primary redirects.
	Advertise string
	// Ack selects quorum or async acknowledgement (primary side).
	Ack AckMode
	// QuorumTimeout bounds how long a quorum-mode mutation waits for
	// follower coverage before failing the writer (the record stays
	// locally durable); <= 0 selects 5s.
	QuorumTimeout time.Duration
	// Staleness bounds follower reads: a follower that has heard
	// nothing from its primary for longer refuses reads with a
	// redirect instead of serving unbounded-stale data. <= 0 disables
	// the bound.
	Staleness time.Duration
	// Heartbeat is the primary's idle ping period (what keeps a
	// follower's staleness clock fresh); <= 0 selects 500ms.
	Heartbeat time.Duration
	// RetainBytes bounds the per-shard retained stream buffer a
	// reconnecting follower can resume from; beyond it the follower
	// re-bootstraps that shard from a snapshot. <= 0 selects 1 MiB.
	RetainBytes int
	// Redial is the follower's pause between connection attempts;
	// <= 0 selects 200ms.
	Redial time.Duration
	// Dial opens the replication connection (follower side and the
	// best-effort fence of an old primary). Tests inject flaky links
	// here. Nil selects net.Dial("tcp", addr).
	Dial func(addr string) (net.Conn, error)
	// Logf receives diagnostic messages; nil selects log.Printf.
	Logf func(format string, args ...any)
}

// errNodeClosed marks operations on a closed node.
var errNodeClosed = errors.New("repl: node is closed")

// errFenced is handed to quorum waiters when their primary is deposed
// mid-wait.
var errFenced = errors.New("repl: primary fenced by a higher epoch")

// Node is a replicated vault endpoint: a *vault.Durable plus a
// replication role. It implements vault.Store and vault.LockoutStore;
// route all traffic through it (not the wrapped store) so the role
// guard can refuse what the role must refuse.
type Node struct {
	store  *vault.Durable
	opts   Options
	shards int

	mu          sync.Mutex
	role        Role
	fenced      bool
	epoch       uint64
	runID       uint64
	primaryAddr string // current primary's client address; "" unknown
	closed      bool
	pr          *primaryState
	fo          *followerState

	// lastContact is the unix-nano time of the last message from the
	// upstream primary (follower), or of the fencing (deposed
	// primary) — the staleness clock for reads.
	lastContact atomic.Int64

	wg sync.WaitGroup
}

// Node implements the store interfaces it guards.
var (
	_ vault.Store        = (*Node)(nil)
	_ vault.LockoutStore = (*Node)(nil)
)

// New wraps store in a replication Node with the given initial role.
// A primary starts listening for followers on opts.Listen and installs
// the store's replication hooks; a follower starts dialing
// opts.Primary. The caller keeps ownership of the store but must
// route every read and mutation through the Node.
func New(store *vault.Durable, role Role, opts Options) (*Node, error) {
	if opts.QuorumTimeout <= 0 {
		opts.QuorumTimeout = 5 * time.Second
	}
	if opts.Heartbeat <= 0 {
		opts.Heartbeat = 500 * time.Millisecond
	}
	if opts.RetainBytes <= 0 {
		opts.RetainBytes = 1 << 20
	}
	if opts.Redial <= 0 {
		opts.Redial = 200 * time.Millisecond
	}
	if opts.Dial == nil {
		opts.Dial = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	if opts.Logf == nil {
		opts.Logf = log.Printf
	}
	n := &Node{
		store:  store,
		opts:   opts,
		shards: store.Shards(),
		role:   role,
		epoch:  store.Epoch(),
	}
	n.touch()
	switch role {
	case RolePrimary:
		if opts.Listen == "" {
			return nil, errors.New("repl: a primary requires a replication listen address")
		}
		runID, err := newRunID()
		if err != nil {
			return nil, err
		}
		n.runID = runID
		n.primaryAddr = opts.Advertise
		n.mu.Lock()
		err = n.startPrimaryLocked()
		n.mu.Unlock()
		if err != nil {
			return nil, err
		}
	case RoleFollower:
		if opts.Primary == "" {
			return nil, errors.New("repl: a follower requires the primary's replication address")
		}
		n.startFollower()
	default:
		return nil, fmt.Errorf("repl: unknown role %v", role)
	}
	return n, nil
}

// touch resets the staleness clock.
func (n *Node) touch() { n.lastContact.Store(time.Now().UnixNano()) }

// Role returns the node's current role.
func (n *Node) Role() Role {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.role
}

// Epoch returns the node's current replication epoch.
func (n *Node) Epoch() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.epoch
}

// ReplAddr returns the node's replication listen address (useful when
// opts.Listen had port 0).
func (n *Node) ReplAddr() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.pr != nil && n.pr.ln != nil {
		return n.pr.ln.Addr().String()
	}
	return n.opts.Listen
}

// writable returns nil when the node may accept a mutation, or the
// refusal to hand the writer.
func (n *Node) writable() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return errNodeClosed
	}
	if n.role != RolePrimary || n.fenced {
		addr := n.primaryAddr
		if addr == n.opts.Advertise {
			addr = "" // never redirect a client to ourselves
		}
		return &vault.NotPrimaryError{Primary: addr}
	}
	return nil
}

// readable returns nil when the node may serve a read. An active
// primary always may; a follower (or a fenced ex-primary, which is a
// follower that lost its feed) may while inside the staleness bound.
func (n *Node) readable() error {
	n.mu.Lock()
	role, fenced := n.role, n.fenced
	addr := n.primaryAddr
	if addr == n.opts.Advertise {
		addr = ""
	}
	closed := n.closed
	n.mu.Unlock()
	if closed {
		return errNodeClosed
	}
	if role == RolePrimary && !fenced {
		return nil
	}
	if bound := n.opts.Staleness; bound > 0 {
		last := time.Unix(0, n.lastContact.Load())
		if time.Since(last) > bound {
			return &vault.NotPrimaryError{Primary: addr}
		}
	}
	return nil
}

// Put stores a record for a new user (primary only).
func (n *Node) Put(rec *passpoints.Record) error {
	if err := n.writable(); err != nil {
		return err
	}
	return n.store.Put(rec)
}

// Replace stores a record, overwriting any existing one (primary
// only).
func (n *Node) Replace(rec *passpoints.Record) error {
	if err := n.writable(); err != nil {
		return err
	}
	return n.store.Replace(rec)
}

// Get returns the record for user, or vault.ErrNotFound. A follower
// outside its staleness bound refuses with vault.NotPrimaryError
// instead of serving unboundedly stale data.
func (n *Node) Get(user string) (*passpoints.Record, error) {
	if err := n.readable(); err != nil {
		return nil, err
	}
	return n.store.Get(user)
}

// Delete removes a user's record (primary only; the interface has no
// error return, so a follower logs and drops the call — the paired
// SetLockout in every admin flow surfaces the refusal).
func (n *Node) Delete(user string) {
	if err := n.writable(); err != nil {
		n.opts.Logf("repl: dropping delete of %q: %v", user, err)
		return
	}
	n.store.Delete(user)
}

// Users returns all user names in sorted order.
func (n *Node) Users() []string { return n.store.Users() }

// Len returns the number of records.
func (n *Node) Len() int { return n.store.Len() }

// All returns every record sorted by user.
func (n *Node) All() []*passpoints.Record { return n.store.All() }

// Save flushes the wrapped store's logs.
func (n *Node) Save() error { return n.store.Save() }

// SaveTo exports the wrapped store as a JSON snapshot.
func (n *Node) SaveTo(path string) error { return n.store.SaveTo(path) }

// SetLockout durably records user's failed-attempt count (primary
// only).
func (n *Node) SetLockout(user string, failures int) error {
	if err := n.writable(); err != nil {
		return err
	}
	return n.store.SetLockout(user, failures)
}

// Lockouts returns a copy of every persisted counter.
func (n *Node) Lockouts() map[string]int { return n.store.Lockouts() }

// SetKV durably sets a side-table blob (primary only) — the session
// tier's key/revocation persistence path, forwarded to the durable
// store so the write replicates like any other mutation.
func (n *Node) SetKV(key string, val []byte) error {
	if err := n.writable(); err != nil {
		return err
	}
	return n.store.SetKV(key, val)
}

// GetKV returns a copy of key's side-table blob. Served from local
// state on both roles: the session tier reads at seed/adopt time, and
// a follower's copy is exactly as fresh as the rest of its replica.
func (n *Node) GetKV(key string) ([]byte, bool) { return n.store.GetKV(key) }

// KVRange returns a copy of every side-table entry under prefix.
func (n *Node) KVRange(prefix string) map[string][]byte { return n.store.KVRange(prefix) }

// SetKVWatch forwards to the durable store: the observer fires for
// side-table keys changed by replication apply paths (see
// vault.KVStore).
func (n *Node) SetKVWatch(fn func(key string, val []byte)) { n.store.SetKVWatch(fn) }

// Promote turns a follower (or a fenced ex-primary) into the primary:
// it stops following, durably bumps the epoch past everything this
// node has seen, starts a fresh stream incarnation listening on
// opts.Listen, and best-effort fences the old primary by sending it
// the new epoch. Safe to call on an active primary (no-op returning
// the current epoch). The zero-acked-write-loss guarantee of a
// promotion belongs to quorum mode: an async-mode primary may have
// acked writes the follower never saw.
func (n *Node) Promote() (uint64, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return 0, errNodeClosed
	}
	if n.role == RolePrimary && !n.fenced {
		e := n.epoch
		n.mu.Unlock()
		return e, nil
	}
	if n.opts.Listen == "" {
		n.mu.Unlock()
		return 0, errors.New("repl: cannot promote without a replication listen address")
	}
	fo := n.fo
	n.fo = nil
	oldPrimary := n.opts.Primary
	n.mu.Unlock()
	if fo != nil {
		fo.halt()
	}
	epoch, err := n.store.AdvanceEpoch(n.store.Epoch() + 1)
	if err != nil {
		return 0, fmt.Errorf("repl: persisting promotion epoch: %w", err)
	}
	runID, err := newRunID()
	if err != nil {
		return 0, err
	}
	n.mu.Lock()
	n.role = RolePrimary
	n.fenced = false
	n.epoch = epoch
	n.runID = runID
	n.primaryAddr = n.opts.Advertise
	err = n.startPrimaryLocked()
	n.mu.Unlock()
	if err != nil {
		return 0, err
	}
	n.opts.Logf("repl: promoted to primary at epoch %d", epoch)
	if oldPrimary != "" {
		go n.sendFence(oldPrimary, epoch)
	}
	return epoch, nil
}

// sendFence best-effort notifies a (possibly dead) old primary that a
// higher epoch exists, so a merely-partitioned one fences itself
// promptly instead of on its next quorum timeout.
func (n *Node) sendFence(addr string, epoch uint64) {
	c, err := n.opts.Dial(addr)
	if err != nil {
		return
	}
	defer c.Close()
	_ = c.SetDeadline(time.Now().Add(2 * time.Second))
	_ = writeMsg(c, &wireMsg{Type: msgHello, Epoch: epoch, Advertise: n.opts.Advertise})
}

// fence deposes this node: the epoch advances durably to the observed
// value, mutations are refused from here on, the primary machinery
// (listener, follower connections, pending quorum waiters) shuts
// down, and reads fall under the follower staleness regime.
//
// A fence only bites while remoteEpoch is strictly ahead of the
// node's own epoch, re-checked under n.mu: callers compare epochs
// outside the lock, so a Promote racing in between may have already
// carried the node to remoteEpoch or beyond — fencing then would tear
// down the newly started higher-epoch primary on a stale observation.
func (n *Node) fence(remoteEpoch uint64, newPrimary string) {
	n.mu.Lock()
	if remoteEpoch <= n.epoch {
		n.mu.Unlock()
		return
	}
	n.mu.Unlock()
	if _, err := n.store.AdvanceEpoch(remoteEpoch); err != nil {
		n.opts.Logf("repl: persisting fenced epoch %d: %v", remoteEpoch, err)
	}
	n.mu.Lock()
	if remoteEpoch <= n.epoch {
		// A concurrent Promote (or another fence) caught up while we
		// persisted; the epoch advance is durable either way.
		n.mu.Unlock()
		return
	}
	n.epoch = remoteEpoch
	n.fenced = true
	if newPrimary != "" {
		n.primaryAddr = newPrimary
	}
	ps := n.pr
	n.pr = nil
	n.mu.Unlock()
	n.touch() // the staleness clock starts at the deposition
	if ps != nil {
		ps.close(errFenced)
		n.store.SetReplHooks(vault.ReplHooks{})
	}
	n.opts.Logf("repl: fenced at epoch %d (new primary %q); refusing writes", remoteEpoch, newPrimary)
}

// Close stops the node's replication machinery (listener, stream
// connections, dial loop) and fails pending quorum waiters. It does
// NOT close the wrapped store — the caller owns it.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	ps := n.pr
	n.pr = nil
	fo := n.fo
	n.fo = nil
	n.mu.Unlock()
	if fo != nil {
		fo.halt()
	}
	if ps != nil {
		ps.close(errNodeClosed)
		n.store.SetReplHooks(vault.ReplHooks{})
	}
	n.wg.Wait()
	return nil
}

// FollowerStat describes one attached follower's replication lag.
type FollowerStat struct {
	// Addr is the follower connection's remote address.
	Addr string
	// LagRecords is the number of shipped records not yet acknowledged
	// by this follower, summed over shards.
	LagRecords uint64
}

// Stats is a point-in-time snapshot of the node's replication state —
// the /metrics surface.
type Stats struct {
	// Role is the current role's flag spelling.
	Role string
	// Epoch is the node's replication epoch.
	Epoch uint64
	// Fenced reports a deposed primary.
	Fenced bool
	// Primary is the current primary's advertised client address, ""
	// when unknown.
	Primary string
	// Followers lists attached followers and their lag (primary only).
	// The slice shape is future-proofing, not multi-follower support:
	// quorum acks wait on exactly ONE follower, and the primary
	// refuses a second concurrent follower connection outright (two
	// would make the max-ack quorum release unsound — a write could
	// ack on the faster follower and be lost if the slower one is
	// promoted). At most one entry is live at a time today.
	Followers []FollowerStat
	// StaleMs is the time since the last upstream message in
	// milliseconds (followers and fenced ex-primaries; -1 otherwise).
	StaleMs int64
}

// Stats returns the node's current replication state.
func (n *Node) Stats() Stats {
	n.mu.Lock()
	s := Stats{
		Role:    n.role.String(),
		Epoch:   n.epoch,
		Fenced:  n.fenced,
		Primary: n.primaryAddr,
		StaleMs: -1,
	}
	ps := n.pr
	n.mu.Unlock()
	if ps != nil {
		ps.mu.Lock()
		for pc := range ps.conns {
			var lag uint64
			for sh := range ps.head {
				if ps.head[sh] > pc.acked[sh] {
					lag += ps.head[sh] - pc.acked[sh]
				}
			}
			s.Followers = append(s.Followers, FollowerStat{Addr: pc.addr, LagRecords: lag})
		}
		ps.mu.Unlock()
		sort.Slice(s.Followers, func(a, b int) bool { return s.Followers[a].Addr < s.Followers[b].Addr })
	} else {
		s.StaleMs = time.Since(time.Unix(0, n.lastContact.Load())).Milliseconds()
	}
	return s
}

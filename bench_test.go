package clickpass

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (regenerating the result and reporting its headline
// numbers as custom metrics), plus micro-benchmarks of the primitives
// and ablation benches for the design choices called out in DESIGN.md.
//
// Run everything:  go test -bench=. -benchmem
// One experiment:  go test -bench=BenchmarkTable2 -benchtime=1x

import (
	"sync"
	"testing"

	"clickpass/internal/analysis"
	"clickpass/internal/attack"
	"clickpass/internal/ccp"
	"clickpass/internal/core"
	"clickpass/internal/dataset"
	"clickpass/internal/geom"
	"clickpass/internal/hotspot"
	"clickpass/internal/imagegen"
	"clickpass/internal/passhash"
	"clickpass/internal/passpoints"
	"clickpass/internal/rng"
	"clickpass/internal/space"
	"clickpass/internal/study"
)

var (
	benchOnce  sync.Once
	benchField map[string]*dataset.Dataset
	benchLab   map[string]*dataset.Dataset
)

func benchData(b *testing.B) (map[string]*dataset.Dataset, map[string]*dataset.Dataset) {
	b.Helper()
	benchOnce.Do(func() {
		benchField = make(map[string]*dataset.Dataset)
		benchLab = make(map[string]*dataset.Dataset)
		for i, img := range imagegen.Gallery() {
			f, err := study.Run(study.FieldConfig(img, uint64(42+i)))
			if err != nil {
				b.Fatal(err)
			}
			l, err := study.Run(study.LabConfig(img, uint64(142+i)))
			if err != nil {
				b.Fatal(err)
			}
			benchField[img.Name] = f
			benchLab[img.Name] = l
		}
	})
	return benchField, benchLab
}

func benchFieldAll(b *testing.B) []*dataset.Dataset {
	field, _ := benchData(b)
	out := make([]*dataset.Dataset, 0, len(field))
	for _, img := range imagegen.Gallery() {
		out = append(out, field[img.Name])
	}
	return out
}

// benchWorkers names the serial baseline and the full-machine fan-out
// for the speedup benchmarks: every parallelized path is benchmarked
// at both so `benchstat serial parallel` is a one-liner.
var benchWorkers = []struct {
	name    string
	workers int
}{
	{"serial", 1},
	{"parallel", 0}, // one worker per CPU
}

// BenchmarkTable1 regenerates Table 1 (false accept/reject at equal
// grid-square sizes) and reports the 13x13 rates.
func BenchmarkTable1(b *testing.B) {
	dsets := benchFieldAll(b)
	for _, w := range benchWorkers {
		b.Run(w.name, func(b *testing.B) {
			var rows []analysis.Row
			for i := 0; i < b.N; i++ {
				var err error
				rows, err = analysis.Table1(dsets, core.MostCentered, 42, w.workers)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(rows[1].FalseRejectPct(), "FR13@%")
			b.ReportMetric(rows[1].FalseAcceptPct(), "FA13@%")
		})
	}
}

// BenchmarkTable2 regenerates Table 2 (false accepts at equal r) and
// reports the r=4 false-accept rate (paper: 32.1%).
func BenchmarkTable2(b *testing.B) {
	dsets := benchFieldAll(b)
	for _, w := range benchWorkers {
		b.Run(w.name, func(b *testing.B) {
			var rows []analysis.Row
			for i := 0; i < b.N; i++ {
				var err error
				rows, err = analysis.Table2(dsets, core.MostCentered, 42, w.workers)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(rows[0].FalseAcceptPct(), "FA_r4@%")
			b.ReportMetric(rows[2].FalseAcceptPct(), "FA_r9@%")
		})
	}
}

// BenchmarkTable3 regenerates the password-space table and reports the
// 640x480 / 13x13 cell (paper: 54.3 bits).
func BenchmarkTable3(b *testing.B) {
	var rows []space.Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = space.Table3(5)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[7].Bits, "bits_640x480_13")
}

// BenchmarkFigure7 regenerates the equal-size dictionary attack
// (Cars) and reports the 13x13 crack rates for both schemes.
func BenchmarkFigure7(b *testing.B) {
	field, lab := benchData(b)
	for _, w := range benchWorkers {
		b.Run(w.name, func(b *testing.B) {
			var cSeries, rSeries []attack.SeriesPoint
			for i := 0; i < b.N; i++ {
				var err error
				cSeries, rSeries, err = attack.Figure7(field["cars"], lab["cars"], core.MostCentered, 42, w.workers)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(cSeries[1].Cracked, "centered13@%")
			b.ReportMetric(rSeries[1].Cracked, "robust13@%")
		})
	}
}

// BenchmarkFigure8 regenerates the equal-r dictionary attack (Cars)
// and reports the r=6 crack rates (paper: 14.8% vs 45.1%).
func BenchmarkFigure8(b *testing.B) {
	field, lab := benchData(b)
	for _, w := range benchWorkers {
		b.Run(w.name, func(b *testing.B) {
			var cSeries, rSeries []attack.SeriesPoint
			for i := 0; i < b.N; i++ {
				var err error
				cSeries, rSeries, err = attack.Figure8(field["cars"], lab["cars"], core.MostCentered, 42, w.workers)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(cSeries[1].Cracked, "centered_r6@%")
			b.ReportMetric(rSeries[1].Cracked, "robust_r6@%")
		})
	}
}

// BenchmarkFigure1WorstCase regenerates the worst-case geometry scan
// behind Figure 1 (row-striped across workers; identical result at
// any count).
func BenchmarkFigure1WorstCase(b *testing.B) {
	for _, w := range benchWorkers {
		b.Run(w.name, func(b *testing.B) {
			var wc analysis.WorstCase
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var err error
				wc, err = analysis.FindWorstCase(36, core.MostCentered, 42, w.workers)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(wc.RightSlackPx, "far_slack_px")
		})
	}
}

// BenchmarkOnlineAttack runs the §5.1 online attack with a 10-attempt
// lockout against the Pool study (per-account fan-out over the
// precompiled replay set).
func BenchmarkOnlineAttack(b *testing.B) {
	field, lab := benchData(b)
	img := imagegen.Pool()
	scheme, err := core.NewRobust2D(36, core.MostCentered, 42)
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range benchWorkers {
		b.Run(w.name, func(b *testing.B) {
			var res attack.OnlineResult
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err = attack.Online(field["pool"], lab["pool"], img, scheme, 10, w.workers)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.CompromisedPct(), "compromised@%")
		})
	}
}

// BenchmarkSuccess replays every field login under centered 13x13
// (chunked fan-out over the precompiled replay sets).
func BenchmarkSuccess(b *testing.B) {
	dsets := benchFieldAll(b)
	scheme, err := core.NewCentered(13)
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range benchWorkers {
		b.Run(w.name, func(b *testing.B) {
			var res analysis.SuccessRate
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err = analysis.Success(dsets, scheme, w.workers)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.AcceptedPct(), "accepted@%")
		})
	}
}

// BenchmarkRunCohort measures the participant-level cohort generator
// (per-participant rng streams; byte-identical at any worker count).
func BenchmarkRunCohort(b *testing.B) {
	for _, w := range benchWorkers {
		b.Run(w.name, func(b *testing.B) {
			cfg := study.DefaultCohort(imagegen.Cars(), 50)
			cfg.Workers = w.workers
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := study.RunCohort(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStudyGeneration measures the simulator (162 passwords, 7
// logins each). The serial and parallel runs produce byte-identical
// datasets; only the wall clock differs.
func BenchmarkStudyGeneration(b *testing.B) {
	for _, w := range benchWorkers {
		b.Run(w.name, func(b *testing.B) {
			cfg := study.FieldConfig(imagegen.Cars(), 1)
			cfg.Workers = w.workers
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg.Seed = uint64(i)
				if _, err := study.Run(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Micro-benchmarks of the core primitives ---

func BenchmarkCenteredEnroll(b *testing.B) {
	s, err := core.NewCentered(13)
	if err != nil {
		b.Fatal(err)
	}
	p := geom.Pt(123, 217)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.Enroll(p)
	}
}

func BenchmarkRobustEnroll(b *testing.B) {
	s, err := core.NewRobust2D(36, core.MostCentered, 1)
	if err != nil {
		b.Fatal(err)
	}
	p := geom.Pt(123, 217)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.Enroll(p)
	}
}

func BenchmarkCenteredLocate(b *testing.B) {
	s, err := core.NewCentered(13)
	if err != nil {
		b.Fatal(err)
	}
	tok := s.Enroll(geom.Pt(123, 217))
	q := geom.Pt(125, 215)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.Locate(q, tok.Clear)
	}
}

// BenchmarkVerify1000 measures a full production login verification
// with the paper's recommended 1000 hash iterations.
func BenchmarkVerify1000(b *testing.B) {
	scheme, err := core.NewCentered(13)
	if err != nil {
		b.Fatal(err)
	}
	cfg := passpoints.Config{
		Image: geom.Size{W: 451, H: 331}, Clicks: 5, Scheme: scheme, Iterations: 1000,
	}
	clicks := []geom.Point{
		geom.Pt(30, 40), geom.Pt(120, 300), geom.Pt(222, 51),
		geom.Pt(400, 200), geom.Pt(77, 160),
	}
	rec, err := passpoints.Enroll(cfg, "bench", clicks)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ok, err := passpoints.Verify(cfg, rec, clicks)
		if err != nil || !ok {
			b.Fatal("verification failed")
		}
	}
}

// BenchmarkDigest measures the raw iterated hash as attack and verify
// loops consume it: a reusable Hasher with a caller-provided output
// buffer (alloc-free steady state).
func BenchmarkDigest(b *testing.B) {
	params := passhash.Params{Iterations: 1000, Salt: []byte("0123456789abcdef")}
	scheme, err := core.NewCentered(13)
	if err != nil {
		b.Fatal(err)
	}
	tokens := make([]core.Token, 5)
	for i := range tokens {
		tokens[i] = scheme.Enroll(geom.Pt(40*i+17, 30*i+11))
	}
	hasher, err := passhash.NewHasher(params)
	if err != nil {
		b.Fatal(err)
	}
	var sum []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sum = hasher.DigestInto(sum[:0], tokens)
	}
}

// BenchmarkDigestOneShot measures the unbatched Digest path (fresh
// HMAC and buffers per call) for comparison with BenchmarkDigest.
func BenchmarkDigestOneShot(b *testing.B) {
	params := passhash.Params{Iterations: 1000, Salt: []byte("0123456789abcdef")}
	scheme, err := core.NewCentered(13)
	if err != nil {
		b.Fatal(err)
	}
	tokens := make([]core.Token, 5)
	for i := range tokens {
		tokens[i] = scheme.Enroll(geom.Pt(40*i+17, 30*i+11))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := passhash.Digest(params, tokens); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCrackPassword measures the analytic dictionary attack per
// password (matching against 150 points) the way the sweeps run it: a
// long-lived Cracker amortizing the pool index and matching scratch.
func BenchmarkCrackPassword(b *testing.B) {
	field, lab := benchData(b)
	dict, err := attack.BuildDictionary(lab["cars"], 5)
	if err != nil {
		b.Fatal(err)
	}
	scheme, err := core.NewRobust2D(36, core.MostCentered, 42)
	if err != nil {
		b.Fatal(err)
	}
	pw := &field["cars"].Passwords[0]
	pts := pw.Points()
	cracker := attack.NewCracker(dict.Points)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _ = cracker.Witness(pts, scheme)
	}
}

// BenchmarkCrackPasswordOneShot is the pre-index baseline shape: a
// fresh scan of the whole pool per password.
func BenchmarkCrackPasswordOneShot(b *testing.B) {
	field, lab := benchData(b)
	dict, err := attack.BuildDictionary(lab["cars"], 5)
	if err != nil {
		b.Fatal(err)
	}
	scheme, err := core.NewRobust2D(36, core.MostCentered, 42)
	if err != nil {
		b.Fatal(err)
	}
	pw := &field["cars"].Passwords[0]
	pts := pw.Points()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _ = attack.Witness(pts, dict.Points, scheme)
	}
}

// --- Ablation benches: design choices from DESIGN.md ---

// BenchmarkAblationPolicy compares Robust grid-selection policies by
// false-reject rate at 13x13 (the paper's implementation decision,
// §4: "we attempted to implement an optimal Robust Discretization").
func BenchmarkAblationPolicy(b *testing.B) {
	dsets := benchFieldAll(b)
	for _, policy := range []core.RobustPolicy{core.MostCentered, core.FirstSafe, core.RandomSafe} {
		b.Run(policy.String(), func(b *testing.B) {
			var row analysis.Row
			for i := 0; i < b.N; i++ {
				var err error
				row, err = analysis.Compare(dsets, 13, 13, policy, 42, 0)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(row.FalseRejectPct(), "FR@%")
			b.ReportMetric(row.FalseAcceptPct(), "FA@%")
		})
	}
}

// BenchmarkAblationIterations shows the login-latency cost of the
// iterated-hashing hardening (§3.2): each 10x in iterations adds ~3.3
// bits of offline attack cost.
func BenchmarkAblationIterations(b *testing.B) {
	scheme, err := core.NewCentered(13)
	if err != nil {
		b.Fatal(err)
	}
	clicks := []geom.Point{
		geom.Pt(30, 40), geom.Pt(120, 300), geom.Pt(222, 51),
		geom.Pt(400, 200), geom.Pt(77, 160),
	}
	for _, iter := range []int{1, 100, 1000, 10000} {
		cfg := passpoints.Config{
			Image: geom.Size{W: 451, H: 331}, Clicks: 5, Scheme: scheme, Iterations: iter,
		}
		rec, err := passpoints.Enroll(cfg, "bench", clicks)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(itoa(iter), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if ok, err := passpoints.Verify(cfg, rec, clicks); err != nil || !ok {
					b.Fatal("verify failed")
				}
			}
			b.ReportMetric(passhash.AddedBits(iter), "added_bits")
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkAblationErrorModel sweeps the calibrated error model's
// components to show which drives which table (documenting the
// calibration in DESIGN.md).
func BenchmarkAblationErrorModel(b *testing.B) {
	models := map[string]study.ErrorModel{
		"calibrated":  study.DefaultErrorModel(),
		"motor-only":  {MotorSigma: 1.9, MaxError: 20},
		"heavy-slips": {MotorSigma: 0.7, SlipProb: 0.35, SlipSigma: 2.7, Slip2Prob: 0.15, Slip2Sigma: 6, MaxError: 20},
	}
	for name, model := range models {
		b.Run(name, func(b *testing.B) {
			var row analysis.Row
			for i := 0; i < b.N; i++ {
				cfg := study.FieldConfig(imagegen.Cars(), 42)
				cfg.Error = model
				d, err := study.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				row, err = analysis.Compare([]*dataset.Dataset{d}, 13, 13, core.MostCentered, 42, 0)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(row.FalseRejectPct(), "FR13@%")
		})
	}
}

// --- Extension benches: systems beyond the paper's own tables ---

// BenchmarkAutomatedDictionary measures the Dirik-style automated
// attack (saliency top-150 candidates, no harvested passwords) against
// the Pool field study on Robust 36x36.
func BenchmarkAutomatedDictionary(b *testing.B) {
	field, _ := benchData(b)
	img := imagegen.Pool()
	dm, err := hotspot.FromSaliency(img, 4)
	if err != nil {
		b.Fatal(err)
	}
	dict, err := attack.NewPointDictionary(dm.TopK(150, 8), 5)
	if err != nil {
		b.Fatal(err)
	}
	scheme, err := core.NewRobust2D(36, core.MostCentered, 42)
	if err != nil {
		b.Fatal(err)
	}
	var res attack.Result
	for i := 0; i < b.N; i++ {
		res, err = attack.OfflineKnownGrids(field["pool"], dict, scheme, 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.CrackedPct(), "cracked@%")
}

// BenchmarkCCPVerify measures a full Cued Click-Points login with 1000
// hash iterations.
func BenchmarkCCPVerify(b *testing.B) {
	scheme, err := core.NewCentered(13)
	if err != nil {
		b.Fatal(err)
	}
	sys := &ccp.System{
		Images:     []*imagegen.Image{imagegen.Cars(), imagegen.Pool()},
		Scheme:     scheme,
		Clicks:     5,
		Iterations: 1000,
	}
	var clicked []geom.Point
	rec, err := sys.Enroll("bench", ccp.RecordingClicker(ccp.HotspotClicker(rng.New(1)), &clicked))
	if err != nil {
		b.Fatal(err)
	}
	replay := ccp.ReplayClicker(clicked, 0, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ok, err := sys.Verify(rec, replay)
		if err != nil || !ok {
			b.Fatal("ccp verify failed")
		}
	}
}

// BenchmarkAblationCreationMode quantifies Persuasive CCP's viewport:
// how much of the created-click mass an automated top-30 dictionary
// covers under each creation mode (lower = more attack-resistant).
func BenchmarkAblationCreationMode(b *testing.B) {
	img := imagegen.Pool()
	scheme, err := core.NewCentered(19)
	if err != nil {
		b.Fatal(err)
	}
	dm, err := hotspot.FromSaliency(img, 4)
	if err != nil {
		b.Fatal(err)
	}
	candidates := dm.TopK(30, 10)
	modes := map[string]func(*rng.Source) ccp.Clicker{
		"hotspot":  func(r *rng.Source) ccp.Clicker { return ccp.HotspotClicker(r) },
		"viewport": func(r *rng.Source) ccp.Clicker { return ccp.ViewportClicker(r, 75) },
	}
	for name, mk := range modes {
		b.Run(name, func(b *testing.B) {
			var covered, total int
			for i := 0; i < b.N; i++ {
				click := mk(rng.New(uint64(i) + 5))
				covered, total = 0, 0
				for j := 0; j < 1000; j++ {
					p := click(img, 0)
					total++
					for _, c := range candidates {
						if core.Accepts(scheme, scheme.Enroll(c), p) {
							covered++
							break
						}
					}
				}
			}
			b.ReportMetric(100*float64(covered)/float64(total), "dict_coverage@%")
		})
	}
}

// BenchmarkGridBlindAttack measures the empirical per-guess cost of an
// offline attack without grid identifiers (§5.1): the Centered/Robust
// ratio is the paper's work-factor claim made concrete.
func BenchmarkGridBlindAttack(b *testing.B) {
	orig := geom.Pt(100, 150)
	wrong := geom.Pt(300, 20)
	params := passhash.Params{Iterations: 100, Salt: []byte("0123456789abcdef")}
	schemes := map[string]core.Scheme{}
	if c, err := core.NewCentered(13); err == nil {
		schemes["centered13"] = c
	}
	if r, err := core.NewRobust2D(36, core.MostCentered, 1); err == nil {
		schemes["robust36"] = r
	}
	for name, scheme := range schemes {
		tok := scheme.Enroll(orig)
		digest, err := passhash.Digest(params, []core.Token{tok})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			var res attack.GridBlindResult
			for i := 0; i < b.N; i++ {
				var err error
				res, err = attack.GridBlindTest(scheme, params, digest, wrong)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Hashes), "hashes/guess")
		})
	}
}

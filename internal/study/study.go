// Package study synthesizes PassPoints user-study datasets with the
// shape of the paper's field and lab studies.
//
// The paper analyzed data it could not publish: a 191-participant field
// study (481 passwords, 3339 login attempts, two 451x331 images) and a
// 30-password-per-image lab study used to seed attack dictionaries.
// This package substitutes a behavioural model with the two properties
// those datasets contribute to the experiments:
//
//  1. Password choice concentrates on image hotspots (package
//     imagegen), which is what makes human-seeded dictionaries
//     effective (§5.1).
//  2. Re-entry is accurate but imperfect: per-coordinate Gaussian motor
//     error with occasional larger "slips", matching the paper's
//     observation that users "were very accurate in targeting their
//     click-points" yet still produced double-digit false-reject rates
//     under Robust Discretization (§4.1, footnote 3).
//
// All generation is deterministic in the seed.
package study

import (
	"fmt"
	"math"

	"clickpass/internal/dataset"
	"clickpass/internal/geom"
	"clickpass/internal/imagegen"
	"clickpass/internal/rng"
)

// ErrorModel describes re-entry inaccuracy for one click.
type ErrorModel struct {
	// MotorSigma is the per-coordinate standard deviation (pixels) of
	// ordinary re-entry error.
	MotorSigma float64
	// SlipProb is the probability that a click is a "slip" with larger
	// error (hurried click, double-click drift, tremor).
	SlipProb float64
	// SlipSigma is the per-coordinate standard deviation for slips.
	SlipSigma float64
	// Slip2Prob is the probability of a rarer, larger slip (mis-aimed
	// click that still targets the right feature).
	Slip2Prob float64
	// Slip2Sigma is the per-coordinate standard deviation for large
	// slips.
	Slip2Sigma float64
	// MaxError truncates each coordinate's error (pixels): re-entries
	// are always aimed at the right target, never at a different one.
	MaxError float64
}

// DefaultErrorModel is calibrated so the replayed Tables 1 and 2 land
// near the paper's rates (see EXPERIMENTS.md for the comparison). The
// shape is trimodal: precise motor control most of the time, frequent
// small slips of a few pixels, and rare larger slips. A single
// Gaussian cannot reproduce the paper's flat false-reject curve
// (21.8% at 9x9 vs 21.1% at 13x13) together with its false-accept
// column; the calibration sweep lives in the study benchmarks.
func DefaultErrorModel() ErrorModel {
	return ErrorModel{
		MotorSigma: 0.70,
		SlipProb:   0.35,
		SlipSigma:  2.7,
		Slip2Prob:  0.045,
		Slip2Sigma: 6.0,
		MaxError:   20,
	}
}

// Validate reports configuration errors.
func (e ErrorModel) Validate() error {
	if e.MotorSigma <= 0 {
		return fmt.Errorf("study: motor sigma %v must be positive", e.MotorSigma)
	}
	if e.SlipProb < 0 || e.Slip2Prob < 0 || e.SlipProb+e.Slip2Prob > 1 {
		return fmt.Errorf("study: slip probabilities %v + %v outside [0,1]", e.SlipProb, e.Slip2Prob)
	}
	if e.SlipProb > 0 && e.SlipSigma <= 0 {
		return fmt.Errorf("study: slip sigma %v must be positive", e.SlipSigma)
	}
	if e.Slip2Prob > 0 && e.Slip2Sigma <= 0 {
		return fmt.Errorf("study: large-slip sigma %v must be positive", e.Slip2Sigma)
	}
	if e.MaxError <= 0 {
		return fmt.Errorf("study: max error %v must be positive", e.MaxError)
	}
	return nil
}

// perturb applies re-entry error to one original click.
func (e ErrorModel) perturb(r *rng.Source, p geom.Point, size geom.Size) geom.Point {
	sigma := e.MotorSigma
	switch u := r.Float64(); {
	case u < e.SlipProb:
		sigma = e.SlipSigma
	case u < e.SlipProb+e.Slip2Prob:
		sigma = e.Slip2Sigma
	}
	dx := int(math.Round(r.TruncNormal(sigma, e.MaxError)))
	dy := int(math.Round(r.TruncNormal(sigma, e.MaxError)))
	return size.Clamp(p.Add(geom.Pt(dx, dy)))
}

// Config describes one simulated study on one image.
type Config struct {
	// Image is the hotspot field clicks are drawn from.
	Image *imagegen.Image
	// Passwords is the number of passwords to create.
	Passwords int
	// LoginsPerPassword is the number of login attempts recorded per
	// password (the field study averaged ~7).
	LoginsPerPassword int
	// Clicks per password (PassPoints uses 5).
	Clicks int
	// MinSeparation is the minimum Chebyshev distance (pixels) between
	// click-points within one password; PassPoints required visibly
	// distinct points.
	MinSeparation int
	// Error is the re-entry error model.
	Error ErrorModel
	// FirstPasswordID numbers the generated passwords sequentially
	// from this ID (so per-image datasets can be merged).
	FirstPasswordID int
	// Seed fixes the generation stream.
	Seed uint64
	// Workers bounds the generation fan-out: 0 uses one worker per
	// CPU, 1 forces serial generation. Each password draws from its
	// own rng stream split off the seed before any parallel work
	// starts, so the dataset is byte-identical for every value.
	Workers int
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Image == nil {
		return fmt.Errorf("study: nil image")
	}
	if err := c.Image.Validate(); err != nil {
		return err
	}
	if c.Passwords <= 0 {
		return fmt.Errorf("study: passwords %d must be positive", c.Passwords)
	}
	if c.LoginsPerPassword < 0 {
		return fmt.Errorf("study: negative logins per password")
	}
	if c.Clicks <= 0 {
		return fmt.Errorf("study: clicks %d must be positive", c.Clicks)
	}
	if c.MinSeparation < 0 {
		return fmt.Errorf("study: negative separation")
	}
	return c.Error.Validate()
}

// Run simulates the study: Passwords password creations, each followed
// by LoginsPerPassword re-entry attempts. Generation fans out across
// cfg.Workers goroutines, one independent rng stream per password
// (split off the seed serially, in password order), so the dataset is
// byte-identical for a fixed seed regardless of worker count. Run is
// the materializing shell over Stream — the golden tests pin the two
// paths to the same bytes by construction.
func Run(cfg Config) (*dataset.Dataset, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := &dataset.Dataset{
		Image:  cfg.Image.Name,
		Width:  cfg.Image.Size.W,
		Height: cfg.Image.Size.H,
	}
	err := Stream(cfg, func(pw dataset.Password, logins []dataset.Login) error {
		d.Passwords = append(d.Passwords, pw)
		d.Logins = append(d.Logins, logins...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("study: generated invalid dataset: %w", err)
	}
	return d, nil
}

// samplePassword draws an ordered click sequence respecting the
// minimum separation (resampling a point that crowds an earlier one;
// after repeated failures the separation constraint is relaxed so
// generation always terminates).
func samplePassword(r *rng.Source, cfg Config) []geom.Point {
	pts := make([]geom.Point, 0, cfg.Clicks)
	minSep := cfg.MinSeparation
	for len(pts) < cfg.Clicks {
		const triesPerPoint = 64
		placed := false
		for try := 0; try < triesPerPoint; try++ {
			cand := cfg.Image.SampleClick(r)
			if separated(cand, pts, minSep) {
				pts = append(pts, cand)
				placed = true
				break
			}
		}
		if !placed {
			// Image too crowded for this separation; relax it rather
			// than loop forever.
			minSep /= 2
		}
	}
	return pts
}

func separated(p geom.Point, prev []geom.Point, minSepPx int) bool {
	for _, q := range prev {
		if p.Chebyshev(q).Pixels() < minSepPx {
			return false
		}
	}
	return true
}

// FieldConfig returns the configuration mirroring the paper's field
// study on one image: the paper's attack section used 162 Cars and 187
// Pool passwords; login volume averaged 3339/481 ≈ 7 attempts per
// password.
func FieldConfig(img *imagegen.Image, seed uint64) Config {
	passwords := 162
	firstID := 0
	if img.Name == "pool" {
		passwords = 187
		firstID = 10000
	}
	return Config{
		Image:             img,
		Passwords:         passwords,
		LoginsPerPassword: 7,
		Clicks:            5,
		MinSeparation:     15,
		Error:             DefaultErrorModel(),
		FirstPasswordID:   firstID,
		Seed:              seed,
	}
}

// LabConfig returns the configuration mirroring the paper's lab study
// used to seed attack dictionaries: 30 passwords per image, no logins.
func LabConfig(img *imagegen.Image, seed uint64) Config {
	firstID := 20000
	if img.Name == "pool" {
		firstID = 30000
	}
	return Config{
		Image:           img,
		Passwords:       30,
		Clicks:          5,
		MinSeparation:   15,
		Error:           DefaultErrorModel(),
		FirstPasswordID: firstID,
		Seed:            seed,
	}
}

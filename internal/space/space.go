// Package space computes theoretical full password spaces for
// click-based graphical passwords (paper §2.2.2 and Table 3) and the
// text-password baselines they are compared against.
package space

import (
	"fmt"
	"math"

	"clickpass/internal/geom"
)

// SquaresPerGrid returns the number of grid squares of side sidePx that
// cover a W x H image: ceil(W/s) * ceil(H/s). Partial squares at the
// right/bottom edges count, matching the paper's Table 3 (e.g. 640x480
// with 36x36 squares gives 18*14 = 252).
func SquaresPerGrid(img geom.Size, sidePx int) (int, error) {
	if sidePx <= 0 {
		return 0, fmt.Errorf("space: square side %d must be positive", sidePx)
	}
	if img.W <= 0 || img.H <= 0 {
		return 0, fmt.Errorf("space: image %v is empty", img)
	}
	cols := (img.W + sidePx - 1) / sidePx
	rows := (img.H + sidePx - 1) / sidePx
	return cols * rows, nil
}

// PasswordSpaceBits returns the size in bits of the theoretical full
// password space for clicks ordered click-points: clicks * log2(squares).
func PasswordSpaceBits(img geom.Size, sidePx, clicks int) (float64, error) {
	if clicks <= 0 {
		return 0, fmt.Errorf("space: clicks %d must be positive", clicks)
	}
	n, err := SquaresPerGrid(img, sidePx)
	if err != nil {
		return 0, err
	}
	return float64(clicks) * math.Log2(float64(n)), nil
}

// TextPasswordBits returns the bit size of the space of random text
// passwords of the given length over the given alphabet — the paper's
// baseline: 95 printable characters, length 8, is 52.5 bits.
func TextPasswordBits(alphabet, length int) (float64, error) {
	if alphabet <= 1 || length <= 0 {
		return 0, fmt.Errorf("space: alphabet %d / length %d invalid", alphabet, length)
	}
	return float64(length) * math.Log2(float64(alphabet)), nil
}

// Row is one line of Table 3 for a given image and square size.
type Row struct {
	Image          geom.Size
	SidePx         int
	CenteredRPx    float64 // guaranteed tolerance under Centered: (s-1)/2
	RobustRPx      float64 // guaranteed tolerance under Robust: s/6
	SquaresPerGrid int
	Bits           float64 // password space for 5 clicks
}

// Table3Sizes are the square sides evaluated by the paper.
var Table3Sizes = []int{9, 13, 19, 24, 36, 54}

// Table3Images are the image sizes evaluated by the paper: the study
// images (451x331) and a typical 640x480 image.
var Table3Images = []geom.Size{{W: 451, H: 331}, {W: 640, H: 480}}

// Table3 computes the full Table 3 for the given click count.
func Table3(clicks int) ([]Row, error) {
	var rows []Row
	for _, img := range Table3Images {
		for _, s := range Table3Sizes {
			n, err := SquaresPerGrid(img, s)
			if err != nil {
				return nil, err
			}
			bits, err := PasswordSpaceBits(img, s, clicks)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Row{
				Image:          img,
				SidePx:         s,
				CenteredRPx:    float64(s-1) / 2,
				RobustRPx:      float64(s) / 6,
				SquaresPerGrid: n,
				Bits:           bits,
			})
		}
	}
	return rows, nil
}

// SpaceLossVsCentered returns how many bits Robust Discretization gives
// up relative to Centered at equal guaranteed tolerance r (whole
// pixels): Centered uses (2r+1)-pixel squares, Robust 6r-pixel squares.
func SpaceLossVsCentered(img geom.Size, rPx, clicks int) (centeredBits, robustBits float64, err error) {
	centeredBits, err = PasswordSpaceBits(img, 2*rPx+1, clicks)
	if err != nil {
		return 0, 0, err
	}
	robustBits, err = PasswordSpaceBits(img, 6*rPx, clicks)
	if err != nil {
		return 0, 0, err
	}
	return centeredBits, robustBits, nil
}

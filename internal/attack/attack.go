// Package attack implements the paper's §5.1 security experiments
// against PassPoints password files: human-seeded dictionary attacks
// (offline, with and without known grid identifiers) and lockout-
// limited online guessing.
//
// The paper's dictionary contains every 5-click-point permutation of
// the click-points harvested from 30 lab passwords per image — about
// 2^36 entries. Enumerating 2^36 guesses is pointless when the success
// criterion factors per click: a field password is cracked by the
// dictionary if and only if the harvested points can be assigned, one
// per click, to the password's accepting grid squares (distinct points
// for distinct clicks, since a permutation cannot repeat a point).
// That is a bipartite matching question, solved exactly here, so the
// attack evaluation is exact yet costs microseconds per password.
package attack

import (
	"fmt"
	"math"
	"sort"

	"clickpass/internal/core"
	"clickpass/internal/dataset"
	"clickpass/internal/geom"
	"clickpass/internal/imagegen"
)

// Dictionary is the harvested click-point pool seeding the attack.
type Dictionary struct {
	// Points are all harvested click-points in harvest order.
	Points []geom.Point
	// SourcePasswords is how many lab passwords contributed.
	SourcePasswords int
	// ClicksPerGuess is the permutation length (the system's click
	// count).
	ClicksPerGuess int
}

// BuildDictionary harvests every click-point from the lab dataset.
func BuildDictionary(lab *dataset.Dataset, clicksPerGuess int) (*Dictionary, error) {
	if err := lab.Validate(); err != nil {
		return nil, err
	}
	if clicksPerGuess <= 0 {
		return nil, fmt.Errorf("attack: clicks per guess %d must be positive", clicksPerGuess)
	}
	d := &Dictionary{ClicksPerGuess: clicksPerGuess}
	for i := range lab.Passwords {
		d.SourcePasswords++
		for _, c := range lab.Passwords[i].Clicks {
			d.Points = append(d.Points, c.Point())
		}
	}
	if len(d.Points) < clicksPerGuess {
		return nil, fmt.Errorf("attack: only %d harvested points for %d-click guesses",
			len(d.Points), clicksPerGuess)
	}
	return d, nil
}

// NewPointDictionary wraps an arbitrary candidate point pool — e.g.
// the top-K points of an automated hotspot analysis (package hotspot)
// — as an attack dictionary. This is the Dirik et al. style attack
// that needs no harvested passwords, only the image.
func NewPointDictionary(points []geom.Point, clicksPerGuess int) (*Dictionary, error) {
	if clicksPerGuess <= 0 {
		return nil, fmt.Errorf("attack: clicks per guess %d must be positive", clicksPerGuess)
	}
	if len(points) < clicksPerGuess {
		return nil, fmt.Errorf("attack: only %d points for %d-click guesses", len(points), clicksPerGuess)
	}
	return &Dictionary{
		Points:         append([]geom.Point(nil), points...),
		ClicksPerGuess: clicksPerGuess,
	}, nil
}

// Entries returns the number of permutation entries: P(n, k).
func (d *Dictionary) Entries() float64 {
	n := float64(len(d.Points))
	e := 1.0
	for i := 0; i < d.ClicksPerGuess; i++ {
		e *= n - float64(i)
	}
	return e
}

// Bits returns log2(Entries) — the paper's "36-bit dictionary" for 150
// points and 5 clicks.
func (d *Dictionary) Bits() float64 { return math.Log2(d.Entries()) }

// Result summarizes an offline attack run.
type Result struct {
	Image     string
	Scheme    string
	SidePx    int
	Passwords int
	Cracked   int
	// DictionaryBits is the modeled attack cost per account in hash
	// computations, log2.
	DictionaryBits float64
}

// CrackedPct returns the percentage of passwords cracked.
func (r Result) CrackedPct() float64 {
	if r.Passwords == 0 {
		return 0
	}
	return 100 * float64(r.Cracked) / float64(r.Passwords)
}

// OfflineKnownGrids runs the paper's first offline scenario: the
// attacker holds the password file, so each guess is discretized under
// the victim's stored grid identifiers before hashing. A password
// counts as cracked if any dictionary permutation hashes equal — i.e.
// if the harvested points admit a matching into the password's
// accepting squares.
func OfflineKnownGrids(field *dataset.Dataset, dict *Dictionary, scheme core.Scheme) (Result, error) {
	if err := field.Validate(); err != nil {
		return Result{}, err
	}
	res := Result{
		Image:          field.Image,
		Scheme:         scheme.Name(),
		SidePx:         int(scheme.SquareSide().Pixels()),
		DictionaryBits: dict.Bits(),
	}
	for i := range field.Passwords {
		pw := &field.Passwords[i]
		if len(pw.Clicks) != dict.ClicksPerGuess {
			return Result{}, fmt.Errorf("attack: password %d has %d clicks, dictionary guesses %d",
				pw.ID, len(pw.Clicks), dict.ClicksPerGuess)
		}
		res.Passwords++
		if crackable(pw.Points(), dict.Points, scheme) {
			res.Cracked++
		}
	}
	return res, nil
}

// Witness returns a concrete dictionary entry (one pool point per
// click, all distinct) that cracks the password, or ok=false if none
// exists. It is the constructive counterpart of the matching test:
// feeding the witness to the real PassPoints verifier must succeed,
// which cmd/pwattack uses to validate the analytic attack end to end.
func Witness(clicks []geom.Point, pool []geom.Point, scheme core.Scheme) (entry []geom.Point, ok bool) {
	adj := make([][]int, len(clicks))
	for i, c := range clicks {
		rg := scheme.Region(scheme.Enroll(c))
		for j, p := range pool {
			if rg.Contains(p) {
				adj[i] = append(adj[i], j)
			}
		}
		if len(adj[i]) == 0 {
			return nil, false
		}
	}
	matchRight := make([]int, len(pool))
	for i := range matchRight {
		matchRight[i] = -1
	}
	var seen []bool
	var try func(i int) bool
	try = func(i int) bool {
		for _, j := range adj[i] {
			if seen[j] {
				continue
			}
			seen[j] = true
			if matchRight[j] == -1 || try(matchRight[j]) {
				matchRight[j] = i
				return true
			}
		}
		return false
	}
	for i := range adj {
		seen = make([]bool, len(pool))
		if !try(i) {
			return nil, false
		}
	}
	entry = make([]geom.Point, len(clicks))
	for j, i := range matchRight {
		if i >= 0 {
			entry[i] = pool[j]
		}
	}
	return entry, true
}

// crackable reports whether some permutation of dictionary points hits
// every accepting square: bipartite matching between clicks and points.
func crackable(clicks []geom.Point, pool []geom.Point, scheme core.Scheme) bool {
	regions := make([]geom.Rect, len(clicks))
	for i, c := range clicks {
		regions[i] = scheme.Region(scheme.Enroll(c))
	}
	// adj[i] lists pool indices usable for click i.
	adj := make([][]int, len(clicks))
	for i, rg := range regions {
		for j, p := range pool {
			if rg.Contains(p) {
				adj[i] = append(adj[i], j)
			}
		}
		if len(adj[i]) == 0 {
			return false
		}
	}
	return maxMatching(adj, len(pool)) == len(clicks)
}

// maxMatching is Kuhn's augmenting-path algorithm for bipartite
// matching; left side is the clicks, right side the pool points.
func maxMatching(adj [][]int, poolSize int) int {
	matchRight := make([]int, poolSize)
	for i := range matchRight {
		matchRight[i] = -1
	}
	var seen []bool
	var try func(i int) bool
	try = func(i int) bool {
		for _, j := range adj[i] {
			if seen[j] {
				continue
			}
			seen[j] = true
			if matchRight[j] == -1 || try(matchRight[j]) {
				matchRight[j] = i
				return true
			}
		}
		return false
	}
	matched := 0
	for i := range adj {
		seen = make([]bool, poolSize)
		if try(i) {
			matched++
		}
	}
	return matched
}

// UnknownGridBits returns the extra work (in bits per dictionary
// entry) an attacker pays when the clear grid identifiers are NOT
// known and every identifier combination must be hashed (§5.1): the
// per-click identifier entropy times the click count — log2(3) per
// click for Robust versus log2(side^2) per click for Centered.
func UnknownGridBits(scheme core.Scheme, clicks int) float64 {
	return float64(clicks) * scheme.ClearBits()
}

// OnlineResult summarizes a lockout-limited online attack.
type OnlineResult struct {
	Image       string
	Scheme      string
	SidePx      int
	Lockout     int
	Accounts    int
	Compromised int
}

// CompromisedPct returns the percentage of accounts compromised.
func (r OnlineResult) CompromisedPct() float64 {
	if r.Accounts == 0 {
		return 0
	}
	return 100 * float64(r.Compromised) / float64(r.Accounts)
}

// Online models §5.1's online attack: the attacker cannot read the
// password file, so guesses go through the login interface and the
// system locks each account after lockout failed attempts. The guess
// list is the lab passwords ordered by hotspot saliency (the attacker
// has the image and ranks whole guesses by how likely their points
// are to be chosen), truncated to the lockout budget per account.
func Online(field *dataset.Dataset, lab *dataset.Dataset, img *imagegen.Image, scheme core.Scheme, lockout int) (OnlineResult, error) {
	if lockout <= 0 {
		return OnlineResult{}, fmt.Errorf("attack: lockout %d must be positive", lockout)
	}
	if err := field.Validate(); err != nil {
		return OnlineResult{}, err
	}
	if err := lab.Validate(); err != nil {
		return OnlineResult{}, err
	}
	guesses := make([][]geom.Point, 0, len(lab.Passwords))
	for i := range lab.Passwords {
		guesses = append(guesses, lab.Passwords[i].Points())
	}
	sort.SliceStable(guesses, func(a, b int) bool {
		return guessScore(guesses[a], img) > guessScore(guesses[b], img)
	})
	if lockout < len(guesses) {
		guesses = guesses[:lockout]
	}
	res := OnlineResult{
		Image:   field.Image,
		Scheme:  scheme.Name(),
		SidePx:  int(scheme.SquareSide().Pixels()),
		Lockout: lockout,
	}
	for i := range field.Passwords {
		pw := &field.Passwords[i]
		res.Accounts++
		tokens := make([]core.Token, len(pw.Clicks))
		for j, c := range pw.Clicks {
			tokens[j] = scheme.Enroll(c.Point())
		}
		for _, guess := range guesses {
			if len(guess) != len(tokens) {
				continue
			}
			hit := true
			for j := range guess {
				if !core.Accepts(scheme, tokens[j], guess[j]) {
					hit = false
					break
				}
			}
			if hit {
				res.Compromised++
				break
			}
		}
	}
	return res, nil
}

// guessScore ranks a whole guess by the product of point saliencies
// (log-sum, to avoid underflow).
func guessScore(guess []geom.Point, img *imagegen.Image) float64 {
	score := 0.0
	for _, p := range guess {
		score += math.Log(img.Saliency(p) + 1e-300)
	}
	return score
}

// Figure7Sizes are the square sides swept by the equal-size dictionary
// attack comparison.
var Figure7Sizes = []int{9, 13, 19, 24, 36, 54}

// Figure8Rs are the guaranteed tolerances swept by the equal-r
// comparison.
var Figure8Rs = []int{4, 6, 9}

// SeriesPoint is one (x, cracked%) sample of a figure series.
type SeriesPoint struct {
	X       int // square side (Figure 7) or r (Figure 8)
	Result  Result
	Cracked float64
}

// Figure7 runs the equal-square-size offline attack for one image:
// both schemes use the same square sides, so their crack rates should
// be close (the paper's Figure 7).
func Figure7(field, lab *dataset.Dataset, policy core.RobustPolicy, seed uint64) (centered, robust []SeriesPoint, err error) {
	dict, err := BuildDictionary(lab, clicksOf(field))
	if err != nil {
		return nil, nil, err
	}
	for _, side := range Figure7Sizes {
		c, err := core.NewCentered(side)
		if err != nil {
			return nil, nil, err
		}
		rb, err := core.NewRobust2D(side, policy, seed)
		if err != nil {
			return nil, nil, err
		}
		cr, err := OfflineKnownGrids(field, dict, c)
		if err != nil {
			return nil, nil, err
		}
		rr, err := OfflineKnownGrids(field, dict, rb)
		if err != nil {
			return nil, nil, err
		}
		centered = append(centered, SeriesPoint{X: side, Result: cr, Cracked: cr.CrackedPct()})
		robust = append(robust, SeriesPoint{X: side, Result: rr, Cracked: rr.CrackedPct()})
	}
	return centered, robust, nil
}

// Figure8 runs the equal-r offline attack for one image: Centered uses
// (2r+1)-pixel squares, Robust 6r-pixel squares, so Robust should be
// cracked far more often (the paper's Figure 8).
func Figure8(field, lab *dataset.Dataset, policy core.RobustPolicy, seed uint64) (centered, robust []SeriesPoint, err error) {
	dict, err := BuildDictionary(lab, clicksOf(field))
	if err != nil {
		return nil, nil, err
	}
	for _, r := range Figure8Rs {
		c, err := core.NewCentered(2*r + 1)
		if err != nil {
			return nil, nil, err
		}
		rb, err := core.NewRobust2D(6*r, policy, seed)
		if err != nil {
			return nil, nil, err
		}
		cr, err := OfflineKnownGrids(field, dict, c)
		if err != nil {
			return nil, nil, err
		}
		rr, err := OfflineKnownGrids(field, dict, rb)
		if err != nil {
			return nil, nil, err
		}
		centered = append(centered, SeriesPoint{X: r, Result: cr, Cracked: cr.CrackedPct()})
		robust = append(robust, SeriesPoint{X: r, Result: rr, Cracked: rr.CrackedPct()})
	}
	return centered, robust, nil
}

func clicksOf(d *dataset.Dataset) int {
	if len(d.Passwords) == 0 {
		return 0
	}
	return len(d.Passwords[0].Clicks)
}

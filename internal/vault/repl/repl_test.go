package repl

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"clickpass/internal/passpoints"
	"clickpass/internal/vault"
)

// testRecord returns a minimal valid record for user.
func testRecord(user string) *passpoints.Record {
	return &passpoints.Record{User: user, Kind: "passpoints", SquareSidePx: 19, ImageW: 451, ImageH: 331,
		Salt: []byte("salt"), Iterations: 1, Digest: []byte(user + "-digest")}
}

// openTestStore opens a small durable store for replication tests.
// NoAutoCompact keeps background log rewrites (and their directory
// fsyncs) out of timing-sensitive tests — same rationale as the
// walstore concurrency tests.
func openTestStore(t *testing.T) *vault.Durable {
	t.Helper()
	st, err := vault.OpenDurable(t.TempDir(), vault.DurableOptions{Shards: 4, Sync: vault.SyncAlways, NoAutoCompact: true})
	if err != nil {
		t.Fatalf("OpenDurable: %v", err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// quietLogf swallows the replication chatter unless -v debugging.
func quietLogf(t *testing.T) func(string, ...any) {
	return func(format string, args ...any) { t.Logf(format, args...) }
}

// newTestPrimary starts a primary Node on a loopback listener.
func newTestPrimary(t *testing.T, st *vault.Durable, opts Options) *Node {
	t.Helper()
	if opts.Listen == "" {
		opts.Listen = "127.0.0.1:0"
	}
	if opts.Logf == nil {
		opts.Logf = quietLogf(t)
	}
	n, err := New(st, RolePrimary, opts)
	if err != nil {
		t.Fatalf("New(primary): %v", err)
	}
	t.Cleanup(func() { n.Close() })
	return n
}

// newTestFollower starts a follower Node dialing primary.
func newTestFollower(t *testing.T, st *vault.Durable, primary string, opts Options) *Node {
	t.Helper()
	opts.Primary = primary
	if opts.Listen == "" {
		opts.Listen = "127.0.0.1:0"
	}
	if opts.Logf == nil {
		opts.Logf = quietLogf(t)
	}
	n, err := New(st, RoleFollower, opts)
	if err != nil {
		t.Fatalf("New(follower): %v", err)
	}
	t.Cleanup(func() { n.Close() })
	return n
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestReplPairConverges is the basic log-shipping test: mutations on
// the primary (records, lockouts, deletes) appear on the follower,
// and in quorum mode every ack implies the follower already has the
// write durably.
func TestReplPairConverges(t *testing.T) {
	pst, fst := openTestStore(t), openTestStore(t)
	p := newTestPrimary(t, pst, Options{Ack: AckQuorum, QuorumTimeout: 5 * time.Second})
	f := newTestFollower(t, fst, p.ReplAddr(), Options{Ack: AckQuorum})

	const users = 40
	for i := 0; i < users; i++ {
		if err := p.Put(testRecord(fmt.Sprintf("user%03d", i))); err != nil {
			t.Fatalf("Put user%03d: %v", i, err)
		}
	}
	if err := p.SetLockout("user001", 3); err != nil {
		t.Fatalf("SetLockout: %v", err)
	}
	p.Delete("user002")

	// Quorum mode: by the time the mutations above returned, the
	// follower's fsync covered them — no polling needed for the
	// record set, only map visibility (applied under the shard lock
	// before the ack was sent, so none at all).
	if got := fst.Len(); got != users-1 {
		t.Fatalf("follower has %d records, want %d", got, users-1)
	}
	if _, err := fst.Get("user002"); !errors.Is(err, vault.ErrNotFound) {
		t.Fatalf("follower still has deleted user002 (err=%v)", err)
	}
	if got := fst.Lockouts()["user001"]; got != 3 {
		t.Fatalf("follower lockout for user001 = %d, want 3", got)
	}

	// Follower role guard: mutations refused with a redirect, reads
	// served. (Asserted on the one attached follower — the primary
	// refuses a second concurrent follower connection outright.)
	waitFor(t, 5*time.Second, "follower convergence", func() bool { return f.Len() == users-1 })
	err := f.Put(testRecord("newuser"))
	var npe *vault.NotPrimaryError
	if !errors.As(err, &npe) || !errors.Is(err, vault.ErrNotPrimary) {
		t.Fatalf("follower Put = %v, want NotPrimaryError", err)
	}
	if _, err := f.Get("user001"); err != nil {
		t.Fatalf("follower Get: %v", err)
	}
	if err := f.SetLockout("user001", 9); !errors.Is(err, vault.ErrNotPrimary) {
		t.Fatalf("follower SetLockout = %v, want ErrNotPrimary", err)
	}
}

// TestReplQuorumTimeoutWithoutFollower: with no follower attached, a
// quorum-mode mutation fails its writer after the timeout — but the
// record is locally durable and visible (the documented semantics:
// the error denies replica coverage, not existence).
// TestReplSecondFollowerRefused: the primary admits exactly one
// follower connection; a second concurrent one is refused (its conn
// drops, it never bootstraps) while the first keeps streaming —
// single-follower quorum stays sound instead of entering the
// undefined two-follower max-ack regime.
func TestReplSecondFollowerRefused(t *testing.T) {
	p := newTestPrimary(t, openTestStore(t), Options{Ack: AckAsync})
	f1 := newTestFollower(t, openTestStore(t), p.ReplAddr(), Options{})
	if err := p.Put(testRecord("alice")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	waitFor(t, 5*time.Second, "first follower bootstrap", func() bool { return f1.Len() == 1 })

	f2 := newTestFollower(t, openTestStore(t), p.ReplAddr(), Options{Redial: 50 * time.Millisecond})
	// Give the second follower several dial attempts; it must never be
	// admitted, so it never sees the record.
	time.Sleep(300 * time.Millisecond)
	if got := f2.Len(); got != 0 {
		t.Fatalf("second follower bootstrapped %d records; the primary should have refused it", got)
	}
	st := p.Stats()
	if len(st.Followers) != 1 {
		t.Fatalf("primary reports %d followers, want exactly 1", len(st.Followers))
	}
	// The first follower still streams.
	if err := p.Put(testRecord("bob")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	waitFor(t, 5*time.Second, "first follower still streaming", func() bool { return f1.Len() == 2 })
}

func TestReplQuorumTimeoutWithoutFollower(t *testing.T) {
	st := openTestStore(t)
	p := newTestPrimary(t, st, Options{Ack: AckQuorum, QuorumTimeout: 100 * time.Millisecond})
	err := p.Put(testRecord("alone"))
	if err == nil {
		t.Fatal("Put acked with no follower in quorum mode")
	}
	if _, gerr := st.Get("alone"); gerr != nil {
		t.Fatalf("record not locally durable after quorum timeout: %v", gerr)
	}
}

// TestReplAsyncMode: async ack mode acks immediately and the follower
// converges eventually.
func TestReplAsyncMode(t *testing.T) {
	pst, fst := openTestStore(t), openTestStore(t)
	p := newTestPrimary(t, pst, Options{Ack: AckAsync})
	newTestFollower(t, fst, p.ReplAddr(), Options{})
	for i := 0; i < 20; i++ {
		if err := p.Put(testRecord(fmt.Sprintf("async%02d", i))); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	waitFor(t, 5*time.Second, "async convergence", func() bool { return fst.Len() == 20 })
}

// TestReplPromoteAndFence: promoting the follower bumps the epoch
// durably, the new primary accepts writes, and the old primary —
// notified via the best-effort fence — refuses post-fence writes with
// a redirect to the new primary, never applying them.
func TestReplPromoteAndFence(t *testing.T) {
	pst, fst := openTestStore(t), openTestStore(t)
	p := newTestPrimary(t, pst, Options{Ack: AckQuorum, QuorumTimeout: 5 * time.Second, Advertise: "old:1"})
	f := newTestFollower(t, fst, p.ReplAddr(), Options{Advertise: "new:1"})
	for i := 0; i < 10; i++ {
		if err := p.Put(testRecord(fmt.Sprintf("pre%02d", i))); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	oldEpoch := p.Epoch()
	epoch, err := f.Promote()
	if err != nil {
		t.Fatalf("Promote: %v", err)
	}
	if epoch <= oldEpoch {
		t.Fatalf("promotion epoch %d not above old %d", epoch, oldEpoch)
	}
	if fst.Epoch() != epoch {
		t.Fatalf("promoted epoch not persisted: store %d, node %d", fst.Epoch(), epoch)
	}
	// New primary accepts writes (no follower attached → use a write
	// that needs no quorum: promote started a fresh primary with the
	// same Ack mode, so attach the old node? No — async assert via
	// the follower-less quorum timeout would slow the test. The
	// promoted node inherited AckQuorum... so spin a follower for it.
	newFst := openTestStore(t)
	newTestFollower(t, newFst, f.ReplAddr(), Options{})
	if err := f.Put(testRecord("post-promote")); err != nil {
		t.Fatalf("promoted primary Put: %v", err)
	}
	waitFor(t, 5*time.Second, "new follower catch-up", func() bool { return newFst.Len() == 11 })

	// The deposed primary fences once the promoted node's hello lands.
	waitFor(t, 5*time.Second, "old primary fence", func() bool { return p.Stats().Fenced })
	err = p.Put(testRecord("zombie-write"))
	var npe *vault.NotPrimaryError
	if !errors.As(err, &npe) {
		t.Fatalf("fenced primary Put = %v, want NotPrimaryError", err)
	}
	if npe.Primary != "new:1" {
		t.Fatalf("fence redirect = %q, want new:1", npe.Primary)
	}
	if _, gerr := pst.Get("zombie-write"); !errors.Is(gerr, vault.ErrNotFound) {
		t.Fatal("fenced primary applied a refused write")
	}
	if pst.Epoch() < epoch {
		t.Fatalf("fenced primary's epoch %d below %d", pst.Epoch(), epoch)
	}
}

// TestReplRebootstrapAfterRetentionOverflow: a follower that attaches
// after the primary's bounded retention buffer dropped history gets a
// snapshot bootstrap and still converges.
func TestReplRebootstrapAfterRetentionOverflow(t *testing.T) {
	pst := openTestStore(t)
	p := newTestPrimary(t, pst, Options{Ack: AckAsync, RetainBytes: 256}) // a handful of frames
	for i := 0; i < 100; i++ {
		if err := p.Put(testRecord(fmt.Sprintf("bulk%03d", i))); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	fst := openTestStore(t)
	newTestFollower(t, fst, p.ReplAddr(), Options{})
	waitFor(t, 5*time.Second, "snapshot bootstrap", func() bool { return fst.Len() == 100 })
	// And the stream keeps flowing after the bootstrap.
	if err := p.Put(testRecord("tail")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	waitFor(t, 5*time.Second, "post-bootstrap tail", func() bool { return fst.Len() == 101 })
}

// TestReplFollowerStaleness: a follower cut off from its primary
// refuses reads once outside the staleness bound, with a redirect.
func TestReplFollowerStaleness(t *testing.T) {
	pst, fst := openTestStore(t), openTestStore(t)
	p := newTestPrimary(t, pst, Options{Ack: AckAsync, Advertise: "primary:9", Heartbeat: 20 * time.Millisecond})
	f := newTestFollower(t, fst, p.ReplAddr(), Options{Staleness: 150 * time.Millisecond, Redial: 20 * time.Millisecond})
	if err := p.Put(testRecord("fresh")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	waitFor(t, 5*time.Second, "convergence", func() bool { return fst.Len() == 1 })
	if _, err := f.Get("fresh"); err != nil {
		t.Fatalf("fresh follower Get: %v", err)
	}
	p.Close() // heartbeats stop
	waitFor(t, 5*time.Second, "staleness trip", func() bool {
		_, err := f.Get("fresh")
		return errors.Is(err, vault.ErrNotPrimary)
	})
	var npe *vault.NotPrimaryError
	_, err := f.Get("fresh")
	if !errors.As(err, &npe) || npe.Primary != "primary:9" {
		t.Fatalf("stale read error = %v, want redirect to primary:9", err)
	}
}

// TestCollectWorkSnapshotsAcrossTrimGap: a cursor at or below the
// trim watermark must escalate to a snapshot even when retained
// entries exist above it — shipping from the retained floor would
// silently skip the trimmed committed records in between.
func TestCollectWorkSnapshotsAcrossTrimGap(t *testing.T) {
	ps := &primaryState{
		head: []uint64{9},
		bufs: []shardBuf{{
			entries:        []bufEntry{{seq: 8, frame: []byte("x8")}, {seq: 9, frame: []byte("x9")}},
			bytes:          4,
			trimmedThrough: 7,
		}},
	}
	// Cursor 5 is owed trimmed seqs 5..7: snapshot, never frames.
	acts := ps.collectWork([]uint64{5})
	if len(acts) != 1 || !acts[0].snapshot {
		t.Fatalf("cursor below trim watermark: got %+v, want a snapshot", acts)
	}
	// Cursor 8 resumes exactly at the retained floor: frames are safe.
	acts = ps.collectWork([]uint64{8})
	if len(acts) != 1 || acts[0].snapshot || acts[0].lastSeq != 9 {
		t.Fatalf("cursor at retained floor: got %+v, want frames through seq 9", acts)
	}
	// Cursor 10 is fully caught up: nothing owed.
	if acts := ps.collectWork([]uint64{10}); len(acts) != 0 {
		t.Fatalf("caught-up cursor: got %+v, want none", acts)
	}
}

// TestReplPartialTrimForcesSnapshot: when retention trims only part
// of what a detached follower missed (trimmed records below, retained
// tail above), resuming from the retained tail would silently skip
// the trimmed records — the follower must re-bootstrap and converge
// to the full state.
func TestReplPartialTrimForcesSnapshot(t *testing.T) {
	pst := openTestStore(t)
	p := newTestPrimary(t, pst, Options{Ack: AckAsync, RetainBytes: 2048})
	fst := openTestStore(t)
	var mu sync.Mutex
	blocked := false
	var conns []net.Conn
	dial := func(addr string) (net.Conn, error) {
		mu.Lock()
		if blocked {
			mu.Unlock()
			return nil, fmt.Errorf("link severed")
		}
		mu.Unlock()
		c, err := net.Dial("tcp", addr)
		if err == nil {
			mu.Lock()
			conns = append(conns, c)
			mu.Unlock()
		}
		return c, err
	}
	newTestFollower(t, fst, p.ReplAddr(), Options{Dial: dial, Redial: 20 * time.Millisecond})
	if err := p.Put(testRecord("seed")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	waitFor(t, 5*time.Second, "initial convergence", func() bool { return fst.Len() == 1 })
	// Sever the link, then churn enough that each shard's retention
	// trims part — but typically not all — of what the follower
	// missed.
	mu.Lock()
	blocked = true
	for _, c := range conns {
		c.Close()
	}
	mu.Unlock()
	for i := 0; i < 100; i++ {
		if err := p.Put(testRecord(fmt.Sprintf("churn%03d", i))); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	mu.Lock()
	blocked = false
	mu.Unlock()
	waitFor(t, 10*time.Second, "re-bootstrap convergence", func() bool { return fst.Len() == 101 })
	// The oldest churn record sits below the retained tail of its
	// shard; it must have arrived via the snapshot.
	if _, err := fst.Get("churn000"); err != nil {
		t.Fatalf("follower is missing a trimmed-window record: %v", err)
	}
}

// TestStaleFenceIgnoredAtOrBelowOwnEpoch: fence re-checks the epoch
// under the node lock — a fence carrying an epoch the node has
// already reached (its caller compared epochs outside the lock, so a
// concurrent Promote may have raced past it) must be a no-op, not
// tear down the primary machinery of an up-to-date primary.
func TestStaleFenceIgnoredAtOrBelowOwnEpoch(t *testing.T) {
	st := openTestStore(t)
	p := newTestPrimary(t, st, Options{Ack: AckAsync})
	e := p.Epoch()
	p.fence(e, "stale:1")
	if s := p.Stats(); s.Fenced {
		t.Fatalf("equal-epoch fence deposed an active primary: %+v", s)
	}
	if err := p.Put(testRecord("after-stale-fence")); err != nil {
		t.Fatalf("Put after stale fence: %v", err)
	}
	// A genuinely higher epoch still fences.
	p.fence(e+1, "peer:1")
	if err := p.Put(testRecord("after-real-fence")); !errors.Is(err, vault.ErrNotPrimary) {
		t.Fatalf("higher-epoch fence did not depose: err=%v", err)
	}
	if got := p.Epoch(); got != e+1 {
		t.Fatalf("fenced epoch = %d, want %d", got, e+1)
	}
}

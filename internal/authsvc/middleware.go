package authsvc

import (
	"context"
	"log"
	"runtime/debug"
	"sync"
	"time"

	"clickpass/internal/par"
	"clickpass/internal/vault"
)

// WithRecover contains panics escaping the rest of the pipeline: the
// request gets a CodeInternal response instead of taking down the
// transport goroutine (and, for TCP, the whole process). Outermost in
// every production chain.
func WithRecover() Middleware {
	return func(next Handler) Handler {
		return HandlerFunc(func(ctx context.Context, req Request) (resp Response) {
			defer func() {
				if r := recover(); r != nil {
					log.Printf("authsvc: handler panicked: %v\n%s", r, debug.Stack())
					resp = Response{Version: Version, Code: CodeInternal, Err: "internal error"}
				}
			}()
			return next.Handle(ctx, req)
		})
	}
}

// WithAdmission gates every request through one shared par.Limiter —
// the single concurrency budget all transports draw from, closing the
// seam where net/http used to spawn unboundedly past the TCP worker
// pool. A request whose context expires while queued is refused with
// CodeUnavailable instead of being served late.
func WithAdmission(lim *par.Limiter) Middleware {
	return func(next Handler) Handler {
		return HandlerFunc(func(ctx context.Context, req Request) Response {
			if err := lim.AcquireContext(ctx); err != nil {
				return Response{Version: Version, Code: CodeUnavailable, Err: "server busy"}
			}
			defer lim.Release()
			return next.Handle(ctx, req)
		})
	}
}

// WithDeadline attaches a deadline to requests arriving without one,
// and clamps it to the request's propagated budget: a client that
// says it will only wait req.BudgetMs more milliseconds gets a
// deadline of min(d, budget), so work the caller has already
// abandoned is dropped — in the admission queue or at the next
// cooperative check — instead of being served into the void. Compose
// it outside admission so the deadline bounds time queued for a
// limiter slot (queued requests are refused with CodeUnavailable when
// it expires). Inside the service the deadline is checked between
// stages, not mid-syscall: a store call that blocks indefinitely
// still blocks its goroutine — the deadline bounds cooperative work,
// it is not a preemption mechanism. d <= 0 disables the server-side
// default; request budgets are still honored.
func WithDeadline(d time.Duration) Middleware {
	return func(next Handler) Handler {
		return HandlerFunc(func(ctx context.Context, req Request) Response {
			eff := d
			if b := time.Duration(req.BudgetMs) * time.Millisecond; b > 0 && (eff <= 0 || b < eff) {
				eff = b
			}
			if eff > 0 {
				// Tighten only: an already-stricter transport deadline
				// (e.g. the HTTP server's) stands.
				if dl, ok := ctx.Deadline(); !ok || time.Until(dl) > eff {
					var cancel context.CancelFunc
					ctx, cancel = context.WithTimeout(ctx, eff)
					defer cancel()
				}
			}
			return next.Handle(ctx, req)
		})
	}
}

// WithMetrics records request counts, outcome codes, and latency into
// m. Place it outermost (just inside WithRecover) so every outcome is
// counted — including CodeUnavailable and CodeThrottled responses
// produced by inner middleware, the shed load an operator most needs
// to see under overload — and so latency is the client-observed
// number, queueing included.
func WithMetrics(m *Metrics) Middleware {
	return func(next Handler) Handler {
		return HandlerFunc(func(ctx context.Context, req Request) Response {
			t0 := time.Now()
			// A panicking handler unwinds past the normal observe call;
			// the deferred path records it as CodeInternal (matching the
			// response WithRecover will synthesize) and lets the panic
			// keep propagating — counted, not swallowed.
			panicked := true
			defer func() {
				if panicked {
					m.observe(req.Op, CodeInternal, time.Since(t0))
				}
			}()
			resp := next.Handle(ctx, req)
			panicked = false
			m.observe(req.Op, resp.Code, time.Since(t0))
			return resp
		})
	}
}

// WithInFlight tracks the in-flight gauge and its high-water mark in
// m. Place it inside WithAdmission so the gauge counts requests being
// handled, not requests queued for a slot — which makes its peak a
// proof that the shared limiter caps the combined transports.
func WithInFlight(m *Metrics) Middleware {
	return func(next Handler) Handler {
		return HandlerFunc(func(ctx context.Context, req Request) Response {
			m.enter()
			defer m.leave()
			return next.Handle(ctx, req)
		})
	}
}

// WithUserRate enforces a per-user token bucket: at most burst
// requests back to back, refilling at perSec requests per second.
// Requests without a user (ping) pass through. perSec <= 0 disables
// the middleware. Exceeding the budget returns CodeThrottled — the
// cheap, steady-state complement to the lockout's hard stop. Compose
// it outside WithAdmission so a flood aimed at one user is shed
// before it competes for the shared concurrency budget.
//
// The bucket table is partitioned into rateShards independently
// locked maps keyed by FNV-1a of the user — the vault's split,
// reapplied — so concurrent requests for different users do not
// serialize on one mutex the way they did when every bucket lived in
// a single guarded map.
func WithUserRate(perSec float64, burst int) Middleware {
	if perSec <= 0 {
		return func(next Handler) Handler { return next }
	}
	if burst < 1 {
		burst = 1
	}
	rl := newUserRate(perSec, burst)
	return func(next Handler) Handler {
		return HandlerFunc(func(ctx context.Context, req Request) Response {
			if req.User != "" && !rl.allow(req.User, time.Now()) {
				return Response{Version: Version, Code: CodeThrottled, Err: "rate limited"}
			}
			return next.Handle(ctx, req)
		})
	}
}

type bucket struct {
	tokens float64
	last   time.Time
}

// maxRateBuckets caps the tracked-user table: attacker-chosen user
// names must not grow server memory without bound. At the cap, a
// sweep drops every bucket that has refilled to full (idle users lose
// nothing by eviction — a fresh bucket starts full).
const maxRateBuckets = 1 << 16

// rateShards is the bucket-table partition count; a power of two so
// the shard pick is a mask, not a division.
const rateShards = 32

type userRate struct {
	perSec float64
	burst  float64
	shards [rateShards]rateShard
}

type rateShard struct {
	mu      sync.Mutex
	buckets map[string]*bucket
}

func newUserRate(perSec float64, burst int) *userRate {
	r := &userRate{perSec: perSec, burst: float64(burst)}
	for i := range r.shards {
		r.shards[i].buckets = make(map[string]*bucket)
	}
	return r
}

func (r *userRate) allow(user string, now time.Time) bool {
	sh := &r.shards[vault.FNV32a(user)&(rateShards-1)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	b, ok := sh.buckets[user]
	if !ok {
		if len(sh.buckets) >= maxRateBuckets/rateShards {
			sh.sweep(now, r.perSec, r.burst)
		}
		b = &bucket{tokens: r.burst, last: now}
		sh.buckets[user] = b
	}
	// now is read before the lock is acquired, so two racing requests
	// can reach the bucket out of timestamp order; a negative elapsed
	// must not drain tokens (at high refill rates it would throttle
	// legitimate traffic), so only refill when the clock moved forward.
	if el := now.Sub(b.last); el > 0 {
		b.tokens += el.Seconds() * r.perSec
		if b.tokens > r.burst {
			b.tokens = r.burst
		}
		b.last = now
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// sweep evicts this shard's buckets whose elapsed idle time has
// refilled them to full; they are indistinguishable from fresh
// buckets. If every tracked user is mid-burst (pathological), the
// shard briefly exceeds its slice of the cap rather than dropping
// someone's throttle state. Caller holds sh.mu.
func (sh *rateShard) sweep(now time.Time, perSec, burst float64) {
	for user, b := range sh.buckets {
		if b.tokens+now.Sub(b.last).Seconds()*perSec >= burst {
			delete(sh.buckets, user)
		}
	}
}

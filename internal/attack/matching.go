package attack

// matcher is the single shared implementation of Kuhn's augmenting-
// path bipartite matching used by both the boolean crackable test and
// the constructive Witness (they used to carry verbatim copies). Left
// vertices are password clicks, right vertices are dictionary pool
// points. The scratch slices persist across calls — per-click `seen`
// reallocation was a measurable share of the attack inner loop — and
// `seen` is round-stamped instead of cleared, so one augmentation
// costs no writes beyond the vertices it actually visits.
//
// A matcher is cheap (two slices) but not safe for concurrent use;
// give each worker goroutine its own, e.g. via Cracker.Fork.
type matcher struct {
	// matchRight[j] is the left vertex matched to right vertex j, or -1.
	matchRight []int
	// seen[j] == round marks right vertex j visited this augmentation.
	seen  []int
	round int
}

// run computes the maximum matching for adjacency lists adj over
// poolSize right vertices. It reports the matching size and whether
// every left vertex was matched; the assignment stays readable in
// m.matchRight until the next call.
func (m *matcher) run(adj [][]int, poolSize int) (matched int, complete bool) {
	if cap(m.matchRight) < poolSize {
		m.matchRight = make([]int, poolSize)
		m.seen = make([]int, poolSize)
		m.round = 0
	}
	m.matchRight = m.matchRight[:poolSize]
	m.seen = m.seen[:poolSize]
	for j := range m.matchRight {
		m.matchRight[j] = -1
	}
	for i := range adj {
		m.round++
		if m.try(adj, i) {
			matched++
		}
	}
	return matched, matched == len(adj)
}

// try searches for an augmenting path from left vertex i.
func (m *matcher) try(adj [][]int, i int) bool {
	for _, j := range adj[i] {
		if m.seen[j] == m.round {
			continue
		}
		m.seen[j] = m.round
		if m.matchRight[j] == -1 || m.try(adj, m.matchRight[j]) {
			m.matchRight[j] = i
			return true
		}
	}
	return false
}

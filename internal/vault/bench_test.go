package vault

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"clickpass/internal/passpoints"
)

// benchRecords builds n immutable records cheaply (no real hashing —
// store benchmarks measure the store, not the crypto).
func benchRecords(n int) []*passpoints.Record {
	recs := make([]*passpoints.Record, n)
	for i := range recs {
		recs[i] = &passpoints.Record{
			User: fmt.Sprintf("u-%d", i), Kind: passpoints.KindCentered,
			SquareSidePx: 13, Iterations: 2,
			Salt: []byte{1, 2, 3, 4}, Digest: []byte{5, 6, 7, 8},
		}
	}
	return recs
}

// BenchmarkStoreReadHeavy compares the single-RWMutex vault against
// the sharded store on the authentication front end's op mix — 1
// Replace (write) per 10 Gets (reads) — at a fixed goroutine count per
// sub-benchmark. This is the isolated version of the ISSUE's
// sharded-vs-mutex criterion: no sockets, no hashing, just the store
// under contention. Single-core runs mostly show parity (goroutines
// time-slice instead of colliding); the gap opens with GOMAXPROCS.
func BenchmarkStoreReadHeavy(b *testing.B) {
	const users = 1024
	for _, backend := range []struct {
		name string
		mk   func(tb testing.TB) Store
	}{
		{"vault", func(testing.TB) Store { return New() }},
		{"sharded32", func(testing.TB) Store { return NewSharded(32) }},
		// The durable backend at the cheap end of the fsync range: the
		// mix is 90% Gets (log-free), so this isolates the append cost
		// under contention; fsync pricing lives in pwbench -store.
		{"durable32-never", func(tb testing.TB) Store {
			return openDurableT(tb, DurableOptions{Shards: 32, Sync: SyncNever})
		}},
	} {
		for _, workers := range []int{1, 8, 64} {
			b.Run(fmt.Sprintf("%s/goroutines=%d", backend.name, workers), func(b *testing.B) {
				s := backend.mk(b)
				recs := benchRecords(users)
				for _, r := range recs {
					if err := s.Put(r); err != nil {
						b.Fatal(err)
					}
				}
				var next atomic.Int64
				perWorker := b.N/workers + 1
				b.ResetTimer()
				var wg sync.WaitGroup
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						for i := 0; i < perWorker; i++ {
							op := next.Add(1)
							rec := recs[int(op)%users]
							if op%10 == 9 {
								_ = s.Replace(rec)
							} else {
								if _, err := s.Get(rec.User); err != nil {
									b.Error(err)
									return
								}
							}
						}
					}(w)
				}
				wg.Wait()
			})
		}
	}
}

package attack

import (
	"clickpass/internal/core"
	"clickpass/internal/fixed"
	"clickpass/internal/geom"
)

// pointIndex is a grid-bucketed spatial index over a dictionary point
// pool. The attack evaluation asks one query shape only — "which pool
// points lie inside this accepting square?" — once per click per
// password per scheme, and the old answer was a linear scan of the
// whole pool (O(clicks × pool) per password). Bucketing the pool once
// per sweep turns each query into a handful of bucket probes: squares
// are at most 54px wide while the pool spreads over the whole image.
//
// The index is immutable after construction and safe to share across
// goroutines.
type pointIndex struct {
	pts        []geom.Point
	cell       fixed.Sub // bucket side
	minX, minY fixed.Sub
	cols, rows int
	buckets    [][]int32
}

// indexCellPx is the bucket side in pixels. 32px keeps the per-bucket
// population near one for the paper's 150-point pools on 451x331
// images while a worst-case 54px query square touches at most 9
// buckets.
const indexCellPx = 32

func newPointIndex(pts []geom.Point) *pointIndex {
	ix := &pointIndex{pts: pts, cell: fixed.FromPixels(indexCellPx)}
	if len(pts) == 0 {
		ix.cols, ix.rows = 1, 1
		ix.buckets = make([][]int32, 1)
		return ix
	}
	ix.minX, ix.minY = pts[0].X, pts[0].Y
	maxX, maxY := pts[0].X, pts[0].Y
	for _, p := range pts[1:] {
		ix.minX = fixed.Min(ix.minX, p.X)
		ix.minY = fixed.Min(ix.minY, p.Y)
		maxX = fixed.Max(maxX, p.X)
		maxY = fixed.Max(maxY, p.Y)
	}
	ix.cols = int((maxX-ix.minX)/ix.cell) + 1
	ix.rows = int((maxY-ix.minY)/ix.cell) + 1
	ix.buckets = make([][]int32, ix.cols*ix.rows)
	for j, p := range pts {
		b := ix.bucketOf(p)
		ix.buckets[b] = append(ix.buckets[b], int32(j))
	}
	return ix
}

func (ix *pointIndex) bucketOf(p geom.Point) int {
	cx := int((p.X - ix.minX) / ix.cell)
	cy := int((p.Y - ix.minY) / ix.cell)
	return cy*ix.cols + cx
}

// appendInRect appends (to out) the indices of every pool point inside
// the half-open rectangle r, in ascending index order, and returns the
// extended slice.
func (ix *pointIndex) appendInRect(r geom.Rect, out []int) []int {
	if len(ix.pts) == 0 {
		return out
	}
	clampCol := func(c, hi int) int {
		if c < 0 {
			return 0
		}
		if c > hi {
			return hi
		}
		return c
	}
	// The rectangle is open on its high edges, so the highest
	// containable coordinate is MaxX-1 (sub-pixel units).
	loCX := clampCol(int((r.MinX-ix.minX)/ix.cell), ix.cols-1)
	hiCX := clampCol(int((r.MaxX-1-ix.minX)/ix.cell), ix.cols-1)
	loCY := clampCol(int((r.MinY-ix.minY)/ix.cell), ix.rows-1)
	hiCY := clampCol(int((r.MaxY-1-ix.minY)/ix.cell), ix.rows-1)
	if r.MaxX <= ix.minX || r.MaxY <= ix.minY {
		return out
	}
	before := len(out)
	for cy := loCY; cy <= hiCY; cy++ {
		for cx := loCX; cx <= hiCX; cx++ {
			for _, j := range ix.buckets[cy*ix.cols+cx] {
				if r.Contains(ix.pts[j]) {
					out = append(out, int(j))
				}
			}
		}
	}
	// Buckets are visited row-major, so restore the global index order
	// the linear scan produced; downstream witnesses depend on it only
	// for stability, but stability is the whole determinism contract.
	// Insertion sort: the slices are tiny (points in one accepting
	// square) and sort.Ints would allocate its interface header.
	hits := out[before:]
	for i := 1; i < len(hits); i++ {
		for j := i; j > 0 && hits[j] < hits[j-1]; j-- {
			hits[j], hits[j-1] = hits[j-1], hits[j]
		}
	}
	return out
}

// Cracker evaluates dictionary attacks against one pool: it owns the
// pool's spatial index plus the reusable adjacency and matching
// scratch. The index is shared and immutable; the scratch is not, so a
// Cracker must not be used from multiple goroutines — parallel callers
// give each worker its own via Fork.
type Cracker struct {
	pool []geom.Point
	idx  *pointIndex
	adj  [][]int
	m    matcher
}

// NewCracker builds the pool index once; Crackable and Witness then
// reuse it for every password and scheme in a sweep.
func NewCracker(pool []geom.Point) *Cracker {
	return &Cracker{pool: pool, idx: newPointIndex(pool)}
}

// Fork returns a Cracker sharing the immutable pool index but owning
// fresh scratch — the per-worker state for parallel sweeps.
func (c *Cracker) Fork() *Cracker {
	return &Cracker{pool: c.pool, idx: c.idx}
}

// adjacency fills c.adj with, per click, the pool points inside the
// click's accepting square. ok is false when some click has no
// candidate (the password is uncrackable and matching is pointless).
func (c *Cracker) adjacency(clicks []geom.Point, scheme core.Scheme) (adj [][]int, ok bool) {
	if cap(c.adj) < len(clicks) {
		c.adj = make([][]int, len(clicks))
	}
	adj = c.adj[:len(clicks)]
	for i, click := range clicks {
		rg := scheme.Region(scheme.Enroll(click))
		adj[i] = c.idx.appendInRect(rg, adj[i][:0])
		if len(adj[i]) == 0 {
			return nil, false
		}
	}
	return adj, true
}

// Crackable reports whether some permutation of pool points hits every
// accepting square of the password: bipartite matching between clicks
// and points.
func (c *Cracker) Crackable(clicks []geom.Point, scheme core.Scheme) bool {
	adj, ok := c.adjacency(clicks, scheme)
	if !ok {
		return false
	}
	_, complete := c.m.run(adj, len(c.pool))
	return complete
}

// Witness returns a concrete dictionary entry (one pool point per
// click, all distinct) that cracks the password, or ok=false if none
// exists. It is the constructive counterpart of Crackable: feeding the
// witness to the real PassPoints verifier must succeed, which
// cmd/pwattack uses to validate the analytic attack end to end.
func (c *Cracker) Witness(clicks []geom.Point, scheme core.Scheme) (entry []geom.Point, ok bool) {
	adj, ok := c.adjacency(clicks, scheme)
	if !ok {
		return nil, false
	}
	if _, complete := c.m.run(adj, len(c.pool)); !complete {
		return nil, false
	}
	entry = make([]geom.Point, len(clicks))
	for j, i := range c.m.matchRight {
		if i >= 0 {
			entry[i] = c.pool[j]
		}
	}
	return entry, true
}

package passpoints

import (
	"testing"

	"clickpass/internal/core"
	"clickpass/internal/geom"
)

// FuzzUnmarshalRecord: arbitrary bytes must never panic the record
// decoder, and any record it does accept must be structurally sound.
func FuzzUnmarshalRecord(f *testing.F) {
	scheme, err := core.NewCentered(13)
	if err != nil {
		f.Fatal(err)
	}
	cfg := Config{Image: geom.Size{W: 451, H: 331}, Clicks: 5, Scheme: scheme, Iterations: 2}
	rec, err := Enroll(cfg, "seed", []geom.Point{
		geom.Pt(30, 40), geom.Pt(120, 300), geom.Pt(222, 51),
		geom.Pt(400, 200), geom.Pt(77, 160),
	})
	if err != nil {
		f.Fatal(err)
	}
	good, err := rec.Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"user":"x","square_side_px":-1,"iterations":5,"digest":"aGk="}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := UnmarshalRecord(data)
		if err != nil {
			return
		}
		if r.SquareSidePx <= 0 || r.Iterations <= 0 || len(r.Digest) == 0 {
			t.Fatalf("decoder accepted malformed record: %+v", r)
		}
	})
}

// FuzzVerify: arbitrary click coordinates against a valid record must
// never panic and never error for in-image clicks.
func FuzzVerify(f *testing.F) {
	scheme, err := core.NewCentered(13)
	if err != nil {
		f.Fatal(err)
	}
	cfg := Config{Image: geom.Size{W: 451, H: 331}, Clicks: 5, Scheme: scheme, Iterations: 2}
	rec, err := Enroll(cfg, "seed", []geom.Point{
		geom.Pt(30, 40), geom.Pt(120, 300), geom.Pt(222, 51),
		geom.Pt(400, 200), geom.Pt(77, 160),
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(30, 40, 120, 300, 222)
	f.Add(0, 0, 0, 0, 0)
	f.Add(450, 330, 450, 330, 450)
	f.Fuzz(func(t *testing.T, a, b, c, d, e int) {
		size := geom.Size{W: 451, H: 331}
		clicks := []geom.Point{
			size.Clamp(geom.Pt(a, b)), size.Clamp(geom.Pt(b, c)), size.Clamp(geom.Pt(c, d)),
			size.Clamp(geom.Pt(d, e)), size.Clamp(geom.Pt(e, a)),
		}
		if _, err := Verify(cfg, rec, clicks); err != nil {
			t.Fatalf("in-image clicks errored: %v", err)
		}
	})
}

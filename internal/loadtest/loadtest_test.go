package loadtest

import (
	"context"
	"fmt"
	"net"
	"strconv"
	"strings"
	"testing"
	"time"

	"clickpass/internal/authproto"
	"clickpass/internal/core"
	"clickpass/internal/dataset"
	"clickpass/internal/geom"
	"clickpass/internal/passpoints"
	"clickpass/internal/vault"
)

// startServer spins an authproto server over the given store on a
// loopback listener and returns its address and a drain func.
func startServer(tb testing.TB, store vault.Store, maxConns int) (addr string, shutdown func()) {
	tb.Helper()
	scheme, err := core.NewCentered(13)
	if err != nil {
		tb.Fatal(err)
	}
	cfg := passpoints.Config{
		Image:      geom.Size{W: 451, H: 331},
		Clicks:     5,
		Scheme:     scheme,
		Iterations: 2,
	}
	srv, err := authproto.NewServer(cfg, store, 1<<30)
	if err != nil {
		tb.Fatal(err)
	}
	if maxConns > 0 {
		srv.SetMaxConns(maxConns)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	done := make(chan struct{})
	go func() { _ = srv.Serve(l); close(done) }()
	return l.Addr().String(), func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			tb.Errorf("shutdown: %v", err)
		}
		<-done
	}
}

// userClicks derives a user's deterministic 5-click password from its
// name ("u-<n>").
func userClicks(user string) []dataset.Click {
	n, _ := strconv.Atoi(strings.TrimPrefix(user, "u-"))
	dx := n % 40
	return []dataset.Click{
		{X: 30 + dx, Y: 40}, {X: 120 + dx, Y: 300}, {X: 222 + dx, Y: 51},
		{X: 400 + dx, Y: 200}, {X: 77 + dx, Y: 160},
	}
}

// enrollUsers registers n identities through the protocol and returns
// their names.
func enrollUsers(tb testing.TB, addr string, n int) []string {
	tb.Helper()
	c, err := authproto.Dial(addr, 5*time.Second)
	if err != nil {
		tb.Fatal(err)
	}
	defer c.Close()
	users := make([]string, n)
	for i := range users {
		users[i] = fmt.Sprintf("u-%d", i)
		resp, err := c.Enroll(users[i], userClicks(users[i]))
		if err != nil || !resp.OK {
			tb.Fatalf("enroll %s: %+v %v", users[i], resp, err)
		}
	}
	return users
}

// TestLoadSwarmSmoke is the CI smoke point (go test -run TestLoad
// -short): a small swarm against both store backends must complete
// with zero errors and sane measurements.
func TestLoadSwarmSmoke(t *testing.T) {
	clientCount, ops := 16, 10
	if testing.Short() {
		clientCount, ops = 8, 5
	}
	for _, tc := range []struct {
		name  string
		store vault.Store
	}{
		{"vault", vault.New()},
		{"sharded", vault.NewSharded(0)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			addr, shutdown := startServer(t, tc.store, 64)
			defer shutdown()
			users := enrollUsers(t, addr, clientCount)
			res, err := Run(Config{
				Addr:         addr,
				Clients:      clientCount,
				OpsPerClient: ops,
				Request:      AuthMix(users, userClicks, 10),
				Check:        RequireOK,
			})
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%s: %s", tc.name, res)
			if res.Errors != 0 {
				t.Errorf("swarm saw %d errors", res.Errors)
			}
			if res.Ops != clientCount*ops {
				t.Errorf("completed %d ops, want %d", res.Ops, clientCount*ops)
			}
			if res.P50 <= 0 || res.Max < res.P99 || res.P99 < res.P50 {
				t.Errorf("implausible latency spread: %s", res)
			}
			if res.Throughput() <= 0 {
				t.Errorf("throughput = %v", res.Throughput())
			}
		})
	}
}

// TestLoadRunValidation: unusable configs must fail fast, not hang.
func TestLoadRunValidation(t *testing.T) {
	if _, err := Run(Config{Addr: "127.0.0.1:1", Clients: 0, OpsPerClient: 1}); err == nil {
		t.Error("zero clients accepted")
	}
	if _, err := Run(Config{Addr: "127.0.0.1:1", Clients: 1, OpsPerClient: 0}); err == nil {
		t.Error("zero ops accepted")
	}
	if _, err := Run(Config{Addr: "127.0.0.1:1", Clients: 1, OpsPerClient: 1}); err == nil {
		t.Error("nil request factory accepted")
	}
	// A dead address must error out, not report an empty result.
	if _, err := Run(Config{
		Addr: "127.0.0.1:1", Clients: 1, OpsPerClient: 1, DialTimeout: 200 * time.Millisecond,
		Request: func(c, o int) authproto.Request { return authproto.Request{Op: authproto.OpPing} },
	}); err == nil {
		t.Error("unreachable server accepted")
	}
}

// TestLoadCheckCountsFailures: a Check rejection must surface in
// Result.Errors while the swarm keeps running.
func TestLoadCheckCountsFailures(t *testing.T) {
	addr, shutdown := startServer(t, vault.New(), 0)
	defer shutdown()
	res, err := Run(Config{
		Addr:         addr,
		Clients:      2,
		OpsPerClient: 3,
		// Logins for users that were never enrolled: transported fine,
		// refused by the server.
		Request: func(c, o int) authproto.Request {
			return authproto.Request{Op: authproto.OpLogin, User: "ghost", Clicks: userClicks("u-0")}
		},
		Check: RequireOK,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != res.Ops || res.Ops != 6 {
		t.Errorf("want every op counted and flagged: %s", res)
	}
}

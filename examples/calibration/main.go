// Calibration: how the study simulator's error model was fitted to the
// paper's Tables 1 and 2. The paper's 191-participant dataset is not
// public, so the simulator must be tuned until replaying its output
// through the analysis engine reproduces the published false
// accept/reject rates. This example runs that sweep for a handful of
// candidate models and prints the ranking — the shipped default is the
// winner of a larger offline sweep of the same kind.
package main

import (
	"fmt"
	"log"
	"os"

	"clickpass/internal/report"
	"clickpass/internal/study"
)

func main() {
	candidates := []study.ErrorModel{
		// A single Gaussian, the obvious first attempt: cannot hold
		// Table 1's flat false-reject curve and Table 2 simultaneously.
		{MotorSigma: 1.9, MaxError: 20},
		// Gaussian + one slip mode: better tails, still off.
		{MotorSigma: 1.5, SlipProb: 0.10, SlipSigma: 5.0, MaxError: 20},
		// The shipped trimodal default: precise motor control, frequent
		// small slips, rare large slips.
		study.DefaultErrorModel(),
		// Over-slippery variant for contrast.
		{MotorSigma: 0.7, SlipProb: 0.35, SlipSigma: 2.7, Slip2Prob: 0.15, Slip2Sigma: 6, MaxError: 20},
	}
	fmt.Println("fitting candidate re-entry error models against the paper's Tables 1-2...")
	results, err := study.Calibrate(candidates, study.PaperTargets(), 42)
	if err != nil {
		log.Fatal(err)
	}
	tb := report.NewTable(
		"candidates ranked by RMSE against the 9 published table cells (percentage points)",
		"Rank", "Motor σ", "Slip p/σ", "Slip2 p/σ", "RMSE")
	for i, res := range results {
		m := res.Model
		tb.AddRowf(
			fmt.Sprintf("%d", i+1),
			fmt.Sprintf("%.2f", m.MotorSigma),
			fmt.Sprintf("%.2f/%.1f", m.SlipProb, m.SlipSigma),
			fmt.Sprintf("%.3f/%.1f", m.Slip2Prob, m.Slip2Sigma),
			fmt.Sprintf("%.2f", res.RMSE),
		)
	}
	if err := tb.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	best := results[0].Model
	def := study.DefaultErrorModel()
	if best.MotorSigma == def.MotorSigma && best.SlipProb == def.SlipProb {
		fmt.Println("\nthe shipped default wins — calibration is current")
	} else {
		fmt.Println("\na candidate beats the shipped default on this seed; the default was chosen across seeds")
	}
}

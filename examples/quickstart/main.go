// Quickstart: enroll a 5-click graphical password and verify logins
// under Centered Discretization, then contrast with the Robust
// Discretization baseline. Demonstrates the library's headline
// property: Centered acceptance is exactly the ±r box around each
// original click — no false accepts, no false rejects.
package main

import (
	"fmt"
	"log"

	"clickpass"
)

func main() {
	// A 451x331 image (the paper's study size), 5 clicks, 13x13
	// squares: every login click may be up to 6 pixels off.
	auth, err := clickpass.New(clickpass.Options{
		ImageW: 451, ImageH: 331,
		Clicks:     5,
		SquareSide: 13,
		Scheme:     clickpass.Centered,
	})
	if err != nil {
		log.Fatal(err)
	}

	password := []clickpass.Point{
		{X: 52, Y: 70}, {X: 246, Y: 74}, {X: 74, Y: 168}, {X: 330, Y: 268}, {X: 180, Y: 90},
	}
	rec, err := auth.Enroll("alice", password)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("enrolled alice: tolerance ±%.0fpx, grid identifiers reveal %.1f bits/click\n",
		auth.GuaranteedTolerancePx(), auth.GridIdentifierBits())
	bits, err := auth.PasswordSpaceBits()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("theoretical password space: %.1f bits\n\n", bits)

	// The record is what the server stores; it round-trips as JSON.
	blob, err := rec.Marshal()
	if err != nil {
		log.Fatal(err)
	}
	stored, err := clickpass.UnmarshalRecord(blob)
	if err != nil {
		log.Fatal(err)
	}

	attempt := func(label string, dx, dy int) {
		clicks := make([]clickpass.Point, len(password))
		for i, p := range password {
			clicks[i] = clickpass.Point{X: p.X + dx, Y: p.Y + dy}
		}
		ok, err := auth.Verify(stored, clicks)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-28s -> %v\n", label, verdict(ok))
	}
	fmt.Println("centered discretization, 13x13 squares:")
	attempt("exact re-entry", 0, 0)
	attempt("each click 6px off", 6, -6)
	attempt("each click 7px off", 7, 0)

	// The same password under Robust Discretization with the same
	// guaranteed tolerance needs 36x36 squares — and may accept clicks
	// far outside the centered box.
	robust, err := clickpass.New(clickpass.Options{
		ImageW: 451, ImageH: 331,
		Clicks:     5,
		SquareSide: 36,
		Scheme:     clickpass.Robust,
	})
	if err != nil {
		log.Fatal(err)
	}
	rrec, err := robust.Enroll("alice", password)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrobust discretization, 36x36 squares (same guaranteed ±%.0fpx):\n",
		robust.GuaranteedTolerancePx())
	fmt.Printf("  worst-case accepted displacement rmax = %.0fpx\n", robust.MaxAcceptedPx())
	for _, d := range []int{6, 12, 20} {
		clicks := make([]clickpass.Point, len(password))
		for i, p := range password {
			clicks[i] = clickpass.Point{X: p.X + d, Y: p.Y}
		}
		ok, err := robust.Verify(rrec, clicks)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  every click %2dpx right       -> %v\n", d, verdict(ok))
	}
	fmt.Println("\n(12px and 20px outcomes depend on where each click fell in its Robust square —")
	fmt.Println(" precisely the unpredictability Centered Discretization eliminates.)")
}

func verdict(ok bool) string {
	if ok {
		return "ACCEPTED"
	}
	return "rejected"
}

package loadtest

import (
	"fmt"
	"testing"

	"clickpass/internal/vault"
)

// BenchmarkAuthSwarm measures end-to-end auth throughput over real TCP
// at the ISSUE's load points — 1/8/64/256 concurrent clients — against
// both store backends, on a read-heavy mix (1 password change per 10
// logins). ns/op is per completed request; the ops/s metric is the
// swarm throughput recorded in PERFORMANCE.md's "Server load" table.
//
//	go test ./internal/loadtest -run NONE -bench AuthSwarm -benchtime 2000x
func BenchmarkAuthSwarm(b *testing.B) {
	for _, backend := range []struct {
		name string
		mk   func() vault.Store
	}{
		{"vault", func() vault.Store { return vault.New() }},
		{"sharded32", func() vault.Store { return vault.NewSharded(32) }},
	} {
		for _, clients := range []int{1, 8, 64, 256} {
			b.Run(fmt.Sprintf("%s/clients=%d", backend.name, clients), func(b *testing.B) {
				store := backend.mk()
				addr, shutdown := startServer(b, store, 256)
				defer shutdown()
				users := enrollUsers(b, addr, clients)
				ops := b.N/clients + 1
				b.ResetTimer()
				res, err := Run(Config{
					Addr:         addr,
					Clients:      clients,
					OpsPerClient: ops,
					Request:      AuthMix(users, userClicks, 10),
					Check:        RequireOK,
				})
				b.StopTimer()
				if err != nil {
					b.Fatal(err)
				}
				if res.Errors != 0 {
					b.Fatalf("swarm errors: %d (%s)", res.Errors, res)
				}
				b.ReportMetric(res.Throughput(), "ops/s")
				b.ReportMetric(float64(res.P99.Microseconds()), "p99-µs")
			})
		}
	}
}

# Build/test entry points, mirrored by .github/workflows/ci.yml.

GO ?= go

.PHONY: all build test vet race bench bench-json bench-store bench-session bench-redteam bench-diff loadsmoke storm-smoke recovery-smoke repl-smoke session-smoke redteam-smoke docs-lint cover ci

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race exercises the parallel study/analysis/attack engines, the
# sharded vault, and the concurrent auth server under the race
# detector; the par determinism tests run at workers 1/2/8.
race:
	$(GO) test -race ./...

# bench runs the headline speedup and allocation benchmarks recorded
# in PERFORMANCE.md (serial vs parallel sub-benchmarks).
bench:
	$(GO) test -run NONE -bench 'StudyGeneration|Figure7|Table1|CrackPassword|Digest' -benchmem .

# bench-json records the experiment engine's hot paths (online,
# success, worstcase, cohort) at workers 1/2/4/8 as machine-readable
# BENCH_<name>.json in the repo root, plus a Markdown speedup table on
# stdout. CI runs it with a smaller -benchtime and uploads the JSON as
# an artifact.
bench-json:
	$(GO) run ./cmd/pwbench -out .

# bench-store records the vault backends — including the durable
# store at every fsync policy — on the auth mix and the pure-write
# path as BENCH_store.json (the fsync-latency table in
# PERFORMANCE.md's "Durable vault" section).
bench-store:
	$(GO) run ./cmd/pwbench -store -out .

# loadsmoke is the CI server-load smoke: small client swarms against
# both vault backends over BOTH transports (framed TCP and HTTP/JSON),
# plus the shared-limiter check that combined TCP+HTTP in-flight
# requests stay capped at -maxconns (see PERFORMANCE.md "Server load"
# and "Unified serving layer").
loadsmoke:
	$(GO) test ./internal/loadtest -run TestLoad -short -v

# storm-smoke is the CI overload drill: a 10x login storm against a
# small-capacity HTTP front. The bounded-queue admission policy must
# engage (sheds observed), refuse fast (shed p50 under the service
# time), keep accepted-request p99 in the uncontended regime, and hold
# goodput near capacity; retrying clients must then land ~all ops via
# jittered backoff honoring Retry-After (PERFORMANCE.md "Login storm").
storm-smoke:
	$(GO) test ./internal/loadtest -run TestStorm -v

# bench-diff guards the perf trajectory: re-run the harness (smoke
# -benchtime) into a scratch directory and compare against the
# committed BENCH_*.json baselines in the repo root, failing when any
# case is more than 25% slower after median normalization (the median
# ratio across all cases absorbs machine-speed differences, so only
# relative regressions trip it).
DIFF_OUT ?= /tmp/pwbench-diff
bench-diff:
	$(GO) run ./cmd/pwbench -out $(DIFF_OUT) -benchtime 100ms
	$(GO) run ./cmd/pwbench -store -out $(DIFF_OUT) -benchtime 100ms
	$(GO) run ./cmd/pwbench -session -out $(DIFF_OUT) -benchtime 100ms
	$(GO) run ./cmd/pwbench -redteam -out $(DIFF_OUT) -benchtime 100ms
	$(GO) run ./cmd/pwbench -diff . -out $(DIFF_OUT)

# recovery-smoke is the CI crash drill: build the real pwserver, serve
# a durable vault, enroll over the wire, SIGKILL it, restart on the
# same logs, and assert every acked mutation (records + lockout
# counters) survived. The pattern also picks up
# TestRecoveryCheckpointSmoke, which re-runs the drill with the
# background checkpointer ticking every 25ms so the SIGKILL lands in
# or near a checkpoint+rotation window.
recovery-smoke:
	$(GO) test ./cmd/pwserver -run TestRecovery -v

# repl-smoke is the CI failover drill: build the real pwserver, start
# a quorum primary and a follower as separate processes, enroll and
# burn a lockout attempt over the wire, SIGKILL the primary, promote
# the follower via POST /v1/promote on its admin listener, and assert
# the survivor serves every acked mutation — records AND the lockout
# counter — with no false accepts. Also runs the in-process
# replicated-pair swarm (TestLoadReplicatedPair).
repl-smoke:
	$(GO) test ./cmd/pwserver -run TestReplSmoke -v
	$(GO) test ./internal/loadtest -run TestLoadReplicatedPair -v

# session-smoke is the CI session-tier drill: build the real pwserver,
# start a quorum primary and a follower, log in for a signed session
# token, validate it on BOTH nodes with zero vault reads, rotate the
# signing key via POST /v1/session/rotate, SIGKILL the primary and
# promote the follower, and assert the pre-rotation token still
# validates on the survivor — then change the password and assert the
# token is refused (revocation watermarks replicate with the keys).
session-smoke:
	$(GO) test ./cmd/pwserver -run TestSessionSmoke -v

# bench-session records sign-once/verify-everywhere: token validation
# (the stateless fast path) against the full click-verify login chain
# at workers 1/2/4/8 as BENCH_session.json.
bench-session:
	$(GO) run ./cmd/pwbench -session -out .

# bench-redteam records the scenario engine's wire-rate: one full
# enroll-then-attack campaign (streamed victims, saliency-ordered
# guesses, real TCP codec, lockout counters) per op at workers 1/2/4/8
# as BENCH_redteam.json.
bench-redteam:
	$(GO) run ./cmd/pwbench -redteam -out .

# redteam-smoke is the CI attack drill: build the real pwserver, start
# a quorum primary/follower pair, stream-enroll a cohort, attack
# through the wire, SIGKILL the primary mid-campaign, promote the
# follower, finish the attack on the survivor, and assert the combined
# compromise count matches the in-process attack model while the
# re-adopted lockout counters grant the attacker zero fresh budget.
redteam-smoke:
	$(GO) test ./cmd/pwserver -run TestRedteamSmoke -v

# docs-lint gates godoc coverage: go vet plus the repo's doclint
# checker (package comment on every internal/ and cmd/ package,
# doc comment on every exported identifier under internal/).
docs-lint:
	$(GO) vet ./...
	$(GO) run ./cmd/doclint

# cover prints per-package coverage (CI publishes this to the Actions
# summary).
cover:
	$(GO) test -cover ./...

ci: build docs-lint test race loadsmoke storm-smoke recovery-smoke repl-smoke session-smoke redteam-smoke

// Package rng supplies a small, deterministic random source for the
// study simulator and attack engines.
//
// Experiments must be exactly reproducible from a seed across runs and
// platforms, and must not share mutable global state between goroutines,
// so we implement an explicit generator (splitmix64 seeding a
// xoshiro256**-style core) rather than reaching for math/rand's global
// functions. Only integer and float64 primitives plus the distributions
// the simulator needs are provided.
package rng

import "math"

// Source is a deterministic pseudo-random generator. It is not safe for
// concurrent use; create one per goroutine (Split derives independent
// streams).
type Source struct {
	s [4]uint64
}

// New returns a generator seeded from seed via splitmix64, which
// guarantees a well-mixed non-zero internal state for any seed.
func New(seed uint64) *Source {
	var src Source
	sm := seed
	for i := range src.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		src.s[i] = z ^ (z >> 31)
	}
	return &src
}

// Split derives a new independent generator from this one. The child's
// stream is determined by the parent's state at the time of the call,
// so a fixed call sequence yields fixed children.
func (r *Source) Split() *Source { return New(r.Uint64()) }

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method: unbiased and cheap.
	un := uint64(n)
	v := r.Uint64()
	hi, lo := mul128(v, un)
	if lo < un {
		threshold := (-un) % un
		for lo < threshold {
			v = r.Uint64()
			hi, lo = mul128(v, un)
		}
	}
	return int(hi)
}

func mul128(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo * bLo
	lo = t & mask
	c := t >> 32
	t = aHi*bLo + c
	mid := t & mask
	c = t >> 32
	t = aLo*bHi + mid
	lo |= (t & mask) << 32
	hi = aHi*bHi + c + (t >> 32)
	return hi, lo
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Normal returns a sample from the standard normal distribution using
// the Box-Muller transform (polar variant avoided to keep call counts
// deterministic: every call consumes exactly two Uint64s).
func (r *Source) Normal() float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// NormalScaled returns mean + stddev*Normal().
func (r *Source) NormalScaled(mean, stddev float64) float64 {
	return mean + stddev*r.Normal()
}

// TruncNormal samples a normal with the given stddev, resampling until
// the result lies within [-bound, bound]. bound must be positive.
func (r *Source) TruncNormal(stddev, bound float64) float64 {
	if bound <= 0 {
		panic("rng: TruncNormal with non-positive bound")
	}
	for {
		v := r.Normal() * stddev
		if v >= -bound && v <= bound {
			return v
		}
	}
}

// Perm returns a random permutation of [0, n) via Fisher-Yates.
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using the provided swap
// function, matching the contract of sort.Slice-style callbacks.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Pick returns a weighted choice: index i is selected with probability
// weights[i]/sum(weights). Weights must be non-negative with a positive
// sum.
func (r *Source) Pick(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w < 0 {
			panic("rng: negative weight")
		}
		total += w
	}
	if total <= 0 {
		panic("rng: weights sum to zero")
	}
	x := r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

package authsvc

import (
	"context"
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// logLine is one request's structured log record — a single JSON
// object per line, machine-parseable, with everything an operator
// needs to reconstruct what the pipeline did to the request: who
// asked for what, what came back, how long it took, how much of that
// was queueing, and whether the overload or deadline policy
// intervened.
type logLine struct {
	ID      uint64 `json:"id"`
	Op      Op     `json:"op"`
	User    string `json:"user,omitempty"`
	Code    Code   `json:"code"`
	LatUs   int64  `json:"lat_us"`
	QueueUs int64  `json:"queue_us,omitempty"`
	// Shed: the overload policy refused the request at admission.
	Shed bool `json:"shed,omitempty"`
	// Deadline: the request's budget expired in or right after the
	// admission queue.
	Deadline bool   `json:"deadline,omitempty"`
	Err      string `json:"err,omitempty"`
}

// WithLog emits one structured JSON line per request to w: request
// id (monotonic per middleware instance), op, user, outcome code,
// latency, queue wait, and the shed/deadline outcome flags filled in
// by WithOverload. Compose it outside the overload middleware (and
// inside WithMetrics) so the annotations it installs are visible to
// the stages that populate them, and writes are serialized so
// concurrent requests cannot interleave bytes mid-line.
func WithLog(w io.Writer) Middleware {
	var (
		mu  sync.Mutex
		seq atomic.Uint64
	)
	return func(next Handler) Handler {
		return HandlerFunc(func(ctx context.Context, req Request) Response {
			meta := &reqMeta{}
			ctx = context.WithValue(ctx, reqMetaKey{}, meta)
			t0 := time.Now()
			resp := next.Handle(ctx, req)
			line := logLine{
				ID:       seq.Add(1),
				Op:       req.Op,
				User:     req.User,
				Code:     resp.Code,
				LatUs:    time.Since(t0).Microseconds(),
				QueueUs:  meta.queueWait.Microseconds(),
				Shed:     meta.shed,
				Deadline: meta.deadline,
				Err:      resp.Err,
			}
			// Marshal outside the lock; only the write is serialized. A
			// marshal failure is impossible for this fixed shape, so the
			// error is deliberately dropped rather than plumbed.
			buf, _ := json.Marshal(line)
			buf = append(buf, '\n')
			mu.Lock()
			_, _ = w.Write(buf)
			mu.Unlock()
			return resp
		})
	}
}

package authproto

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"clickpass/internal/authsvc"
)

const testDialTimeout = 2 * time.Second

func newLocalListener(t *testing.T) net.Listener {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func newHTTPTestServer(t *testing.T, s *Server) *httptest.Server {
	t.Helper()
	return httptest.NewServer(s.HTTPHandler())
}

// runClientSuite exercises the full unified-client surface over one
// transport. Each transport gets its own user namespace so the suites
// are order-independent.
func runClientSuite(t *testing.T, name string, dial func() authsvc.Client) {
	t.Run(name, func(t *testing.T) {
		c := dial()
		defer c.Close()
		ctx := context.Background()
		user := name + "-user"

		if err := c.Ping(ctx); err != nil {
			t.Fatalf("ping: %v", err)
		}
		resp, err := c.Enroll(ctx, user, clicks(0))
		if err != nil || !resp.OK() {
			t.Fatalf("enroll: %+v %v", resp, err)
		}
		resp, err = c.Enroll(ctx, user, clicks(0))
		if err != nil || resp.Code != authsvc.CodeExists {
			t.Fatalf("duplicate enroll: %+v %v, want %q", resp, err, authsvc.CodeExists)
		}
		resp, err = c.Login(ctx, user, clicks(3))
		if err != nil || !resp.OK() {
			t.Fatalf("login: %+v %v", resp, err)
		}
		resp, err = c.Login(ctx, user, clicks(12))
		if err != nil || resp.Code != authsvc.CodeDenied {
			t.Fatalf("far login: %+v %v, want %q", resp, err, authsvc.CodeDenied)
		}
		resp, err = c.Change(ctx, user, clicks(0), clicks(30))
		if err != nil || !resp.OK() {
			t.Fatalf("change: %+v %v", resp, err)
		}
		resp, err = c.Login(ctx, user, clicks(30))
		if err != nil || !resp.OK() {
			t.Fatalf("login after change: %+v %v", resp, err)
		}
		resp, err = c.Login(ctx, user, clicks(0))
		if err != nil || resp.OK() {
			t.Fatalf("old password after change: %+v %v", resp, err)
		}
	})
}

// TestServiceClientContextCancel: a canceled context must abort the
// call on both transports instead of blocking on the network.
func TestServiceClientContextCancel(t *testing.T) {
	s := testServer(t, 10)
	l := newLocalListener(t)
	defer l.Close()
	go func() { _ = s.Serve(l) }()
	ts := newHTTPTestServer(t, s)
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tcp, err := DialService(l.Addr().String(), testDialTimeout)
	if err != nil {
		t.Fatal(err)
	}
	defer tcp.Close()
	if _, err := tcp.Do(ctx, authsvc.Request{Op: OpPing}); err == nil {
		t.Error("tcp client ignored canceled context")
	}
	web := NewHTTPClient(ts.URL, nil)
	defer web.Close()
	if _, err := web.Do(ctx, authsvc.Request{Op: OpPing}); err == nil {
		t.Error("http client ignored canceled context")
	}
}

// TestHTTPChangeAndResetEndpoints: the HTTP front's change route
// carries TCP semantics, the public mux refuses the administrative
// reset, and the separate admin handler performs it.
func TestHTTPChangeAndResetEndpoints(t *testing.T) {
	s := testServer(t, 2)
	ts := newHTTPTestServer(t, s)
	defer ts.Close()
	admin := httptest.NewServer(s.AdminHandler())
	defer admin.Close()
	c := NewHTTPClient(ts.URL, nil)
	defer c.Close()
	ctx := context.Background()

	if resp, err := c.Enroll(ctx, "h", clicks(0)); err != nil || !resp.OK() {
		t.Fatalf("enroll: %+v %v", resp, err)
	}
	// Two wrong changes lock the account.
	for i := 0; i < 2; i++ {
		if resp, err := c.Change(ctx, "h", clicks(9), clicks(30)); err != nil || resp.OK() {
			t.Fatalf("wrong change %d: %+v %v", i, resp, err)
		}
	}
	resp, err := c.Login(ctx, "h", clicks(0))
	if err != nil || resp.Code != authsvc.CodeLocked {
		t.Fatalf("locked login: %+v %v", resp, err)
	}
	// The public front must NOT offer the reset — otherwise any online
	// guesser could clear its own failure counter.
	pub, err := http.Post(ts.URL+"/v1/reset", "application/json", strings.NewReader(`{"user":"h"}`))
	if err != nil {
		t.Fatal(err)
	}
	pub.Body.Close()
	if pub.StatusCode != http.StatusNotFound {
		t.Fatalf("public reset status = %d, want 404", pub.StatusCode)
	}
	// Administrative reset on the admin surface unlocks it.
	adminC := NewHTTPClient(admin.URL, nil)
	defer adminC.Close()
	resp, err = adminC.Do(ctx, authsvc.Request{Op: OpReset, User: "h"})
	if err != nil || !resp.OK() {
		t.Fatalf("admin reset: %+v %v", resp, err)
	}
	if resp, err := c.Login(ctx, "h", clicks(0)); err != nil || !resp.OK() {
		t.Fatalf("login after reset: %+v %v", resp, err)
	}
}

// TestSharedLimiterAcrossFronts: with a one-slot admission limiter, a
// request parked inside the service must exclude requests from the
// *other* transport — the pipeline-sharing pin at the authproto level
// (loadtest holds the swarm-scale version).
func TestSharedLimiterAcrossFronts(t *testing.T) {
	s := testServer(t, 10)
	s.SetMaxConns(1)
	l := newLocalListener(t)
	defer l.Close()
	go func() { _ = s.Serve(l) }()
	ts := newHTTPTestServer(t, s)
	defer ts.Close()

	// Park a TCP request inside the pipeline by racing many pings from
	// both fronts at once; the metrics high-water mark across the whole
	// burst must never exceed the single slot.
	done := make(chan error, 8)
	for i := 0; i < 4; i++ {
		go func() {
			c, err := DialService(l.Addr().String(), testDialTimeout)
			if err != nil {
				done <- err
				return
			}
			defer c.Close()
			for j := 0; j < 20; j++ {
				if err := c.Ping(context.Background()); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
		go func() {
			c := NewHTTPClient(ts.URL, nil)
			defer c.Close()
			for j := 0; j < 20; j++ {
				if err := c.Ping(context.Background()); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if peak := s.Metrics().Peak(); peak != 1 {
		t.Errorf("in-flight peak = %d across TCP+HTTP, want 1 (shared limiter)", peak)
	}
}

// TestTCPServiceClientPoisonedAfterTimeout: a call that dies
// mid-exchange leaves the framed connection out of lockstep, so the
// client must refuse further calls instead of pairing the next
// request with a stale response frame.
func TestTCPServiceClientPoisonedAfterTimeout(t *testing.T) {
	serverConn, clientConn := net.Pipe()
	defer serverConn.Close()
	c := ServiceClient(NewClient(clientConn))
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	// Nobody reads the pipe: the write blocks until the deadline kills
	// the exchange.
	if _, err := c.Do(ctx, authsvc.Request{Op: OpPing}); err == nil {
		t.Fatal("exchange against a dead peer succeeded")
	}
	// A fresh context must not resurrect the desynchronized connection.
	if _, err := c.Do(context.Background(), authsvc.Request{Op: OpPing}); err == nil {
		t.Fatal("poisoned client accepted another call")
	}
}

// TestTCPFrontRefusesReset: the public TCP front must refuse the
// administrative reset, exactly like the public HTTP mux — otherwise
// an online guesser could clear its own failure counter between
// guesses and defeat the lockout.
func TestTCPFrontRefusesReset(t *testing.T) {
	s := testServer(t, 2)
	l := newLocalListener(t)
	defer l.Close()
	go func() { _ = s.Serve(l) }()

	c, err := Dial(l.Addr().String(), testDialTimeout)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if resp, err := c.Enroll("t", clicks(0)); err != nil || !resp.OK {
		t.Fatalf("enroll: %+v %v", resp, err)
	}
	// Lock the account with wrong passwords, attempting a wire-level
	// reset between guesses.
	for i := 0; i < 2; i++ {
		if resp, err := c.Login("t", clicks(9)); err != nil || resp.OK {
			t.Fatalf("guess %d: %+v %v", i, resp, err)
		}
		resetResp, err := c.Do(Request{Op: OpReset, User: "t"})
		if err != nil {
			t.Fatal(err)
		}
		if resetResp.OK {
			t.Fatal("public TCP front accepted an administrative reset")
		}
	}
	if resp, err := c.Login("t", clicks(0)); err != nil || !resp.Locked {
		t.Fatalf("lockout was bypassed via wire resets: %+v %v", resp, err)
	}
	// The in-process admin path still resets.
	if resp := s.Handle(Request{Op: OpReset, User: "t"}); !resp.OK {
		t.Fatalf("in-process reset refused: %+v", resp)
	}
	if resp, err := c.Login("t", clicks(0)); err != nil || !resp.OK {
		t.Fatalf("login after admin reset: %+v %v", resp, err)
	}
}

package authsvc

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"clickpass/internal/par"
)

// echoHandler returns a canned response, optionally after blocking on
// a gate — the probe handler for pipeline tests.
func echoHandler(resp Response, gate <-chan struct{}) Handler {
	return HandlerFunc(func(ctx context.Context, req Request) Response {
		if gate != nil {
			<-gate
		}
		return resp
	})
}

func TestChainOrder(t *testing.T) {
	var order []string
	tag := func(name string) Middleware {
		return func(next Handler) Handler {
			return HandlerFunc(func(ctx context.Context, req Request) Response {
				order = append(order, name)
				return next.Handle(ctx, req)
			})
		}
	}
	h := Chain(echoHandler(Response{Code: CodeOK}, nil), tag("outer"), tag("inner"))
	h.Handle(context.Background(), Request{Op: OpPing})
	if len(order) != 2 || order[0] != "outer" || order[1] != "inner" {
		t.Errorf("chain order = %v, want [outer inner]", order)
	}
}

func TestWithRecoverContainsPanic(t *testing.T) {
	h := Chain(HandlerFunc(func(ctx context.Context, req Request) Response {
		panic("poisoned request")
	}), WithRecover())
	resp := h.Handle(context.Background(), Request{Op: OpPing})
	if resp.Code != CodeInternal {
		t.Errorf("panicked handler: code = %q, want %q", resp.Code, CodeInternal)
	}
}

// TestWithAdmissionCapsConcurrency: the limiter must cap concurrent
// handling, queue excess requests, and refuse a request whose context
// dies while it waits.
func TestWithAdmissionCapsConcurrency(t *testing.T) {
	lim := par.NewLimiter(2)
	gate := make(chan struct{})
	var m Metrics
	h := Chain(echoHandler(Response{Code: CodeOK}, gate),
		WithMetrics(&m), WithAdmission(lim), WithInFlight(&m))

	var wg sync.WaitGroup
	for i := 0; i < 5; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if resp := h.Handle(context.Background(), Request{Op: OpPing}); !resp.OK() {
				t.Errorf("admitted request failed: %+v", resp)
			}
		}()
	}
	// Wait until both slots are held, then verify nothing beyond the
	// cap is being handled.
	deadline := time.Now().Add(2 * time.Second)
	for m.InFlight() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("in-flight = %d, want 2", m.InFlight())
		}
		time.Sleep(time.Millisecond)
	}
	// A request with an already-expired context must be refused even
	// though it would eventually get a slot.
	expired, cancel := context.WithCancel(context.Background())
	cancel()
	if resp := h.Handle(expired, Request{Op: OpPing}); resp.Code != CodeUnavailable {
		t.Errorf("expired-context admission: code = %q, want %q", resp.Code, CodeUnavailable)
	}
	close(gate)
	wg.Wait()
	if peak := m.Peak(); peak != 2 {
		t.Errorf("in-flight peak = %d, want exactly the 2-slot cap", peak)
	}
	// Counts sit outside admission: the 5 admitted requests AND the
	// refused one are all visible, broken down by outcome code.
	snap := m.Snapshot()
	if snap.Requests != 6 {
		t.Errorf("counted %d requests, want 6 (5 ok + 1 refused)", snap.Requests)
	}
	if snap.ByCode[CodeOK] != 5 || snap.ByCode[CodeUnavailable] != 1 {
		t.Errorf("by-code counts = %v, want 5 ok / 1 unavailable", snap.ByCode)
	}
}

func TestWithDeadlineAddsDeadline(t *testing.T) {
	var saw time.Duration
	h := Chain(HandlerFunc(func(ctx context.Context, req Request) Response {
		if d, ok := ctx.Deadline(); ok {
			saw = time.Until(d)
		}
		return Response{Code: CodeOK}
	}), WithDeadline(time.Minute))
	h.Handle(context.Background(), Request{Op: OpPing})
	if saw <= 0 || saw > time.Minute {
		t.Errorf("handler saw deadline %v, want (0, 1m]", saw)
	}
	// An existing (tighter) deadline is respected, not replaced.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	h.Handle(ctx, Request{Op: OpPing})
	if saw > time.Second {
		t.Errorf("existing deadline replaced: handler saw %v", saw)
	}
}

func TestWithUserRateThrottles(t *testing.T) {
	h := Chain(echoHandler(Response{Code: CodeOK}, nil), WithUserRate(1000, 2))
	ctx := context.Background()
	// Burst of 2 passes; the third is throttled.
	for i := 0; i < 2; i++ {
		if resp := h.Handle(ctx, Request{Op: OpLogin, User: "u"}); !resp.OK() {
			t.Fatalf("burst request %d refused: %+v", i, resp)
		}
	}
	if resp := h.Handle(ctx, Request{Op: OpLogin, User: "u"}); resp.Code != CodeThrottled {
		t.Errorf("over-burst: code = %q, want %q", resp.Code, CodeThrottled)
	}
	// Other users have their own buckets; user-less ops pass through.
	if resp := h.Handle(ctx, Request{Op: OpLogin, User: "v"}); !resp.OK() {
		t.Errorf("other user throttled: %+v", resp)
	}
	if resp := h.Handle(ctx, Request{Op: OpPing}); !resp.OK() {
		t.Errorf("user-less op throttled: %+v", resp)
	}
	// At 1000 req/s the bucket refills within a few milliseconds.
	deadline := time.Now().Add(time.Second)
	for {
		if resp := h.Handle(ctx, Request{Op: OpLogin, User: "u"}); resp.OK() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("bucket never refilled")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestWithUserRateDisabled(t *testing.T) {
	h := Chain(echoHandler(Response{Code: CodeOK}, nil), WithUserRate(0, 1))
	for i := 0; i < 100; i++ {
		if resp := h.Handle(context.Background(), Request{Op: OpLogin, User: "u"}); !resp.OK() {
			t.Fatalf("disabled rate limiter refused request %d: %+v", i, resp)
		}
	}
}

func TestMetricsSnapshotAndHandler(t *testing.T) {
	var m Metrics
	h := Chain(testService(t, 3), WithMetrics(&m), WithInFlight(&m))
	ctx := context.Background()
	h.Handle(ctx, Request{Op: OpEnroll, User: "m", Clicks: clicks(0)})
	h.Handle(ctx, Request{Op: OpLogin, User: "m", Clicks: clicks(0)})
	h.Handle(ctx, Request{Op: OpLogin, User: "m", Clicks: clicks(9)})

	snap := m.Snapshot()
	if snap.Requests != 3 {
		t.Errorf("requests = %d, want 3", snap.Requests)
	}
	if snap.ByOp[OpLogin] != 2 || snap.ByOp[OpEnroll] != 1 {
		t.Errorf("by-op counts = %v", snap.ByOp)
	}
	if snap.ByCode[CodeOK] != 2 || snap.ByCode[CodeDenied] != 1 {
		t.Errorf("by-code counts = %v", snap.ByCode)
	}
	if snap.InFlight != 0 {
		t.Errorf("in-flight = %d after all requests returned", snap.InFlight)
	}
	if snap.Peak < 1 {
		t.Errorf("peak = %d, want >= 1", snap.Peak)
	}
	if snap.LatMaxUs < 0 || snap.LatMeanUs < 0 {
		t.Errorf("negative latency: %+v", snap)
	}

	// The HTTP endpoint serves the same numbers as JSON.
	rec := httptest.NewRecorder()
	m.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	var served Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &served); err != nil {
		t.Fatalf("metrics endpoint JSON: %v\n%s", err, rec.Body.String())
	}
	if served.Requests != snap.Requests || served.ByOp[OpLogin] != snap.ByOp[OpLogin] {
		t.Errorf("endpoint served %+v, counters say %+v", served, snap)
	}
}

// TestWithMetricsCountsPanics: a panicking handler must still be
// visible in the counters as CodeInternal — the failures an operator
// most needs to see — while the panic continues to WithRecover.
func TestWithMetricsCountsPanics(t *testing.T) {
	var m Metrics
	h := Chain(HandlerFunc(func(ctx context.Context, req Request) Response {
		panic("poisoned request")
	}), WithRecover(), WithMetrics(&m))
	resp := h.Handle(context.Background(), Request{Op: OpLogin})
	if resp.Code != CodeInternal {
		t.Fatalf("recovered response code = %q", resp.Code)
	}
	snap := m.Snapshot()
	if snap.Requests != 1 || snap.ByCode[CodeInternal] != 1 {
		t.Errorf("panicked request not counted: %+v", snap)
	}
}

package authproto

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"clickpass/internal/authsvc"
)

// HTTPHandler exposes the service over HTTP:
//
//	POST /v1/enroll  {"user": ..., "clicks": [{"x":..,"y":..}, ...]}
//	POST /v1/login   same body
//	POST /v1/change  adds "new_clicks"
//	GET  /v1/ping
//
// Responses are the same Response JSON as the TCP protocol, and every
// request — ping included — runs through the same authsvc pipeline as
// the TCP front, so both transports share one admission limiter and
// one metrics registry. Login failures return 401, lockouts and rate
// limits 429, malformed requests 400, duplicate enrollments 409,
// admission/deadline refusals 503.
//
// The administrative lockout reset is deliberately NOT routed here:
// an unauthenticated public reset would let an online guesser clear
// the failed-attempt counter and defeat the §5.1 lockout. It lives on
// AdminHandler, which deployments bind to a separate, non-public
// listener (pwserver's -metrics address).
func (s *Server) HTTPHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/ping", func(w http.ResponseWriter, r *http.Request) {
		resp := s.HandleContext(r.Context(), Request{Op: OpPing})
		setRetryAfter(w, resp)
		writeJSON(w, statusFor(resp), resp)
	})
	mux.HandleFunc("/v1/enroll", s.httpOp(OpEnroll))
	mux.HandleFunc("/v1/login", s.httpOp(OpLogin))
	mux.HandleFunc("/v1/change", s.httpOp(OpChange))
	return mux
}

// AdminHandler exposes the operator surface — separate from the
// public HTTPHandler so deployments can bind it to a loopback or
// otherwise protected listener:
//
//	POST /v1/reset  {"user": ...}   clear an account's lockout
//	GET  /metrics                   Prometheus text exposition
//	GET  /metrics.json              the same registry as JSON
//
// Reset requests run through the same pipeline as everything else
// (admitted, counted, deadline-bounded).
func (s *Server) AdminHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/reset", s.httpOp(OpReset))
	mux.Handle("/metrics", s.metrics.PrometheusHandler())
	mux.Handle("/metrics.json", s.metrics.Handler())
	return mux
}

// decodeHTTPRequest decodes one HTTP/JSON request body into the wire
// request for op. It is the whole HTTP decode path — shared by the
// handler, the fuzzer, and the TCP/HTTP round-trip property test — so
// the two transports cannot drift in how they read a request.
func decodeHTTPRequest(op Op, body io.Reader) (Request, error) {
	var req Request
	dec := json.NewDecoder(io.LimitReader(body, MaxFrame+1))
	if err := dec.Decode(&req); err != nil {
		return Request{}, fmt.Errorf("authproto: malformed request body: %w", err)
	}
	// Exactly one JSON value, like a TCP frame: json.Unmarshal on a
	// frame body rejects trailing bytes, so the streaming decoder must
	// too or the transports drift.
	if _, err := dec.Token(); err != io.EOF {
		return Request{}, fmt.Errorf("authproto: trailing data after request body")
	}
	req.Op = op
	return req, nil
}

func (s *Server) httpOp(op Op) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeJSON(w, http.StatusMethodNotAllowed, Response{Error: "POST required"})
			return
		}
		req, err := decodeHTTPRequest(op, http.MaxBytesReader(w, r.Body, MaxFrame))
		if err != nil {
			writeJSON(w, http.StatusBadRequest, Response{Error: "malformed request body"})
			return
		}
		resp := s.HandleContext(r.Context(), req)
		setRetryAfter(w, resp)
		writeJSON(w, statusFor(resp), resp)
	}
}

// setRetryAfter surfaces an overload shed's retry hint as the
// standard Retry-After header (whole seconds, rounded up so "500ms"
// does not become "retry immediately").
func setRetryAfter(w http.ResponseWriter, resp Response) {
	if authsvc.Code(resp.Code) != authsvc.CodeOverloaded || resp.RetryAfterMs <= 0 {
		return
	}
	secs := (resp.RetryAfterMs + 999) / 1000
	w.Header().Set("Retry-After", strconv.Itoa(secs))
}

// statusFor maps a typed service outcome to its HTTP status.
func statusFor(resp Response) int {
	switch authsvc.Code(resp.Code) {
	case authsvc.CodeOK:
		return http.StatusOK
	case authsvc.CodeLocked, authsvc.CodeThrottled:
		return http.StatusTooManyRequests
	case authsvc.CodeDenied:
		return http.StatusUnauthorized
	case authsvc.CodeExists:
		return http.StatusConflict
	case authsvc.CodeUnavailable, authsvc.CodeOverloaded:
		return http.StatusServiceUnavailable
	case authsvc.CodeInternal:
		return http.StatusInternalServerError
	default:
		return http.StatusBadRequest
	}
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

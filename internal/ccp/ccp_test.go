package ccp

import (
	"testing"

	"clickpass/internal/core"
	"clickpass/internal/geom"
	"clickpass/internal/hotspot"
	"clickpass/internal/imagegen"
	"clickpass/internal/rng"
)

func testSystem(t *testing.T) *System {
	t.Helper()
	scheme, err := core.NewCentered(13)
	if err != nil {
		t.Fatal(err)
	}
	// A pool of 6 images: the two study proxies plus shifted variants.
	images := []*imagegen.Image{imagegen.Cars(), imagegen.Pool()}
	for i := 0; i < 4; i++ {
		v := imagegen.Cars()
		v.Name = v.Name + string(rune('a'+i))
		for j := range v.Hotspots {
			v.Hotspots[j].X = float64((int(v.Hotspots[j].X) + 40*(i+1)) % 440)
		}
		images = append(images, v)
	}
	return &System{
		Images:     images,
		Scheme:     scheme,
		Clicks:     5,
		Iterations: 2,
	}
}

func TestEnrollVerifyRoundTrip(t *testing.T) {
	s := testSystem(t)
	var clicked []geom.Point
	rec, err := s.Enroll("alice", RecordingClicker(HotspotClicker(rng.New(1)), &clicked))
	if err != nil {
		t.Fatal(err)
	}
	if len(clicked) != 5 || len(rec.Clears) != 5 {
		t.Fatalf("recorded %d clicks, %d clears", len(clicked), len(rec.Clears))
	}
	ok, err := s.Verify(rec, ReplayClicker(clicked, 0, 0))
	if err != nil || !ok {
		t.Fatalf("exact replay rejected: %v %v", ok, err)
	}
	// Within tolerance (r = 6.5 for 13x13): accepted.
	ok, err = s.Verify(rec, ReplayClicker(clicked, 5, -5))
	if err != nil || !ok {
		t.Fatalf("5px replay rejected: %v %v", ok, err)
	}
	// Outside tolerance: rejected.
	ok, err = s.Verify(rec, ReplayClicker(clicked, 8, 0))
	if err != nil || ok {
		t.Fatalf("8px replay accepted: %v %v", ok, err)
	}
}

func TestWrongClickDerailsPath(t *testing.T) {
	s := testSystem(t)
	var clicked []geom.Point
	rec, err := s.Enroll("bob", RecordingClicker(HotspotClicker(rng.New(2)), &clicked))
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt only the FIRST click badly; replay the rest exactly.
	// The path diverges after step 0, so the remaining correct clicks
	// are judged against the wrong images and the login fails.
	bad := append([]geom.Point(nil), clicked...)
	bad[0] = geom.Pt((bad[0].X.Pixels()+100)%451, (bad[0].Y.Pixels()+100)%331)
	ok, err := s.Verify(rec, ReplayClicker(bad, 0, 0))
	if err != nil || ok {
		t.Fatalf("derailed login accepted: %v %v", ok, err)
	}
}

func TestPathsDifferAcrossUsersAndClicks(t *testing.T) {
	s := testSystem(t)
	p1, err := s.Path("alice", HotspotClicker(rng.New(3)))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := s.Path("zoe", HotspotClicker(rng.New(3)))
	if err != nil {
		t.Fatal(err)
	}
	if len(p1) != 6 || len(p2) != 6 {
		t.Fatalf("path lengths %d/%d", len(p1), len(p2))
	}
	same := true
	for i := range p1 {
		if p1[i] != p2[i] {
			same = false
		}
	}
	if same {
		t.Error("different users walked identical paths")
	}
	// Consecutive images always differ (NextImage skips cur).
	for i := 1; i < len(p1); i++ {
		if p1[i] == p1[i-1] {
			t.Error("path revisited the same image consecutively")
		}
	}
}

func TestNextImageDeterministic(t *testing.T) {
	s := testSystem(t)
	sec := core.Secret{IX: 7, IY: -3}
	a := s.NextImage(2, sec)
	b := s.NextImage(2, sec)
	if a != b {
		t.Error("NextImage not deterministic")
	}
	if a == 2 {
		t.Error("NextImage returned the current image")
	}
	if a < 0 || a >= len(s.Images) {
		t.Error("NextImage out of range")
	}
	// Different squares must (generally) lead to different images.
	diff := 0
	for ix := int64(0); ix < 20; ix++ {
		if s.NextImage(2, core.Secret{IX: ix, IY: 0}) != a {
			diff++
		}
	}
	if diff == 0 {
		t.Error("NextImage ignores the square")
	}
}

func TestValidate(t *testing.T) {
	s := testSystem(t)
	mutations := map[string]func(*System){
		"one image":   func(s *System) { s.Images = s.Images[:1] },
		"nil scheme":  func(s *System) { s.Scheme = nil },
		"zero clicks": func(s *System) { s.Clicks = 0 },
		"zero iter":   func(s *System) { s.Iterations = 0 },
		"size mix": func(s *System) {
			odd := imagegen.Cars()
			odd.Size = geom.Size{W: 10, H: 10}
			odd.Hotspots = nil
			odd.UniformWeight = 1
			s.Images = append(s.Images, odd)
		},
	}
	for name, mutate := range mutations {
		sys := testSystem(t)
		mutate(sys)
		if err := sys.Validate(); err == nil {
			t.Errorf("%s: expected validation error", name)
		}
	}
	if err := s.Validate(); err != nil {
		t.Errorf("valid system rejected: %v", err)
	}
}

func TestEnrollVerifyErrors(t *testing.T) {
	s := testSystem(t)
	if _, err := s.Enroll("x", nil); err == nil {
		t.Error("nil clicker accepted")
	}
	rec, err := s.Enroll("x", HotspotClicker(rng.New(1)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Verify(nil, HotspotClicker(rng.New(1))); err == nil {
		t.Error("nil record accepted")
	}
	if _, err := s.Verify(rec, nil); err == nil {
		t.Error("nil clicker accepted in verify")
	}
	short := *rec
	short.Clears = short.Clears[:2]
	ok, err := s.Verify(&short, HotspotClicker(rng.New(1)))
	if err != nil || ok {
		t.Error("short record should fail verification, not error")
	}
	broken := *rec
	broken.Start = 99
	if _, err := s.Verify(&broken, HotspotClicker(rng.New(1))); err == nil {
		t.Error("out-of-range start accepted")
	}
}

// TestViewportFlattensClicks is the Persuasive CCP claim: creation
// with a viewport starves hotspot dictionaries. We measure per-click
// dictionary coverage — the fraction of created clicks falling within
// a centered square of an automated top-30 hotspot candidate — for
// hotspot-driven vs viewport-driven creation.
func TestViewportFlattensClicks(t *testing.T) {
	img := imagegen.Pool() // most concentrated image: strongest effect
	scheme, err := core.NewCentered(19)
	if err != nil {
		t.Fatal(err)
	}
	dm, err := hotspot.FromSaliency(img, 4)
	if err != nil {
		t.Fatal(err)
	}
	candidates := dm.TopK(30, 10)
	coverage := func(click Clicker) float64 {
		covered, total := 0, 0
		for i := 0; i < 1500; i++ {
			p := click(img, 0)
			total++
			for _, c := range candidates {
				if core.Accepts(scheme, scheme.Enroll(c), p) {
					covered++
					break
				}
			}
		}
		return float64(covered) / float64(total)
	}
	hotspotCov := coverage(HotspotClicker(rng.New(5)))
	viewportCov := coverage(ViewportClicker(rng.New(5), 75))
	t.Logf("dictionary coverage: hotspot %.1f%%, viewport %.1f%%", 100*hotspotCov, 100*viewportCov)
	if hotspotCov < 0.3 {
		t.Errorf("hotspot coverage %.2f too low — baseline broken", hotspotCov)
	}
	if viewportCov > hotspotCov/1.5 {
		t.Errorf("viewport creation did not flatten clicks: %.2f vs %.2f", viewportCov, hotspotCov)
	}
}

func TestViewportClickerStaysInImage(t *testing.T) {
	img := imagegen.Cars()
	click := ViewportClicker(rng.New(7), 600) // larger than the image: clamped
	for i := 0; i < 200; i++ {
		if p := click(img, 0); !img.Size.Contains(p) {
			t.Fatalf("viewport click %v outside image", p)
		}
	}
}

func TestReplayClickerBeyondSequence(t *testing.T) {
	img := imagegen.Cars()
	click := ReplayClicker([]geom.Point{geom.Pt(5, 5)}, 0, 0)
	if p := click(img, 3); p != geom.Pt(0, 0) {
		t.Errorf("out-of-sequence replay = %v", p)
	}
}

func TestRecordSerialization(t *testing.T) {
	s := testSystem(t)
	var clicked []geom.Point
	rec, err := s.Enroll("ser", RecordingClicker(HotspotClicker(rng.New(4)), &clicked))
	if err != nil {
		t.Fatal(err)
	}
	data, err := rec.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalRecord(data)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := s.Verify(back, ReplayClicker(clicked, 0, 0))
	if err != nil || !ok {
		t.Errorf("deserialized CCP record failed verification: %v %v", ok, err)
	}
	for name, junk := range map[string]string{
		"bad json":  "{",
		"no clears": `{"user":"x","start":0,"iterations":2,"digest":"aGk="}`,
		"zero iter": `{"user":"x","start":0,"iterations":0,"digest":"aGk=","clears":[{}]}`,
		"neg start": `{"user":"x","start":-1,"iterations":2,"digest":"aGk=","clears":[{}]}`,
		"no digest": `{"user":"x","start":0,"iterations":2,"clears":[{}]}`,
	} {
		if _, err := UnmarshalRecord([]byte(junk)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

// Package scenario closes the loop between the repository's two
// halves: the experiment engine (streamed study generation, the §5.1
// online-attack model) and the serving stack (wire protocols, lockout
// persistence, admission control, replication). It enrolls a streamed
// cohort through real transports and then replays attack.Online's
// saliency-ordered guess stream against the live server — a red-team
// harness measuring Figure-7-style compromise curves at serving scale,
// plus the shed/lockout/latency friction the attacker actually
// experiences under the server's defenses.
//
// The harness is deterministic where the server is: for a
// deterministic scheme with shedding disabled, the through-the-wire
// compromise count equals attack.Online's in-process result for the
// same seed and lockout — the invariant the scenario test suite pins.
// Under overload, every shed or throttled attempt is re-sent until the
// server gives a definitive answer (a refused request never consumed
// lockout budget), so admission control changes attacker goodput — the
// time axis — while the curve itself stays a function of the lockout
// policy.
package scenario

import (
	"context"
	"fmt"
	"sync"
	"time"

	"clickpass/internal/attack"
	"clickpass/internal/authsvc"
	"clickpass/internal/dataset"
	"clickpass/internal/imagegen"
	"clickpass/internal/par"
	"clickpass/internal/study"
)

// Config describes how the harness reaches the server under test.
type Config struct {
	// Dial opens the client-th transport handle — loadtest.TCPTransport
	// and loadtest.HTTPTransport build factories for the two shipped
	// codecs. The harness dials one handle per worker and wraps each in
	// a RetryClient.
	Dial func(client int) (authsvc.Client, error)
	// Workers bounds the fan-out across accounts (0 = one per CPU,
	// 1 = serial). Per-account outcomes are deterministic, so the
	// report's curve is identical at any worker count.
	Workers int
	// Retry configures each worker's RetryClient. Set Redirect to let
	// the attack follow a replicated pair's not_primary refusals across
	// a failover. The zero value selects the client's defaults.
	Retry authsvc.RetryPolicy
	// ThrottleWait is how long a worker waits before re-sending a guess
	// the per-user rate limiter refused (a throttled request consumed
	// no lockout budget). <= 0 selects 25ms.
	ThrottleWait time.Duration
	// GuessRetries caps how many times one guess is re-sent after the
	// RetryClient itself gave up (sustained overload, repeated
	// transport errors) before the account is marked incomplete.
	// <= 0 selects 64.
	GuessRetries int
}

func (c Config) withDefaults() Config {
	if c.ThrottleWait <= 0 {
		c.ThrottleWait = 25 * time.Millisecond
	}
	if c.GuessRetries <= 0 {
		c.GuessRetries = 64
	}
	return c
}

// AccountName is the wire identity enrolled for a generated password:
// accounts are keyed by password ID, so a cohort participant with
// three passwords contributes three independently attackable accounts
// (the model attack.Online uses — each field password is one account).
func AccountName(passwordID int) string { return fmt.Sprintf("u%d", passwordID) }

// AccountStream drives emit once per account to enroll, in a stable
// order, with the account's enrollment clicks. Implementations over
// study streams exist (FieldAccounts, CohortAccounts); tests may hand-
// roll one.
type AccountStream func(emit func(user string, clicks []dataset.Click) error) error

// FieldAccounts streams one account per password of a materialized
// dataset — the paper's field study as a victim population.
func FieldAccounts(d *dataset.Dataset) AccountStream {
	return func(emit func(user string, clicks []dataset.Click) error) error {
		for i := range d.Passwords {
			pw := &d.Passwords[i]
			if err := emit(AccountName(pw.ID), pw.Clicks); err != nil {
				return err
			}
		}
		return nil
	}
}

// CohortAccounts streams one account per password of a generated
// cohort without ever materializing it: participants flow from
// study.RunCohortStream in O(workers) memory straight into the enroll
// swarm, so the victim population can be orders of magnitude larger
// than RAM would allow for a dataset.Dataset.
func CohortAccounts(cfg study.CohortConfig) AccountStream {
	return func(emit func(user string, clicks []dataset.Click) error) error {
		return study.RunCohortStream(cfg, func(p study.Participant) error {
			for i := range p.Passwords {
				pw := &p.Passwords[i]
				if err := emit(AccountName(pw.ID), pw.Clicks); err != nil {
					return err
				}
			}
			return nil
		})
	}
}

// Guesses builds the attacker's wire-ready guess stream: every lab
// password ordered by descending hotspot saliency — exactly
// attack.GuessOrder, the stream attack.Online consumes — truncated to
// limit entries (0 = no truncation). Pass the server's lockout as the
// limit to model the budget-bounded online attacker; anything an
// account refuses beyond the budget is lockout working.
func Guesses(lab *dataset.Dataset, img *imagegen.Image, limit int) ([][]dataset.Click, error) {
	order, err := attack.GuessOrder(lab, img)
	if err != nil {
		return nil, err
	}
	if limit > 0 && limit < len(order) {
		order = order[:limit]
	}
	guesses := make([][]dataset.Click, len(order))
	for i, pts := range order {
		clicks := make([]dataset.Click, len(pts))
		for j, p := range pts {
			clicks[j] = dataset.FromPoint(p)
		}
		guesses[i] = clicks
	}
	return guesses, nil
}

// EnrollStream enrolls every streamed account through cfg.Workers wire
// clients and returns the account names in stream order — the victim
// list the red-team run attacks. Memory stays O(workers + accounts):
// the generated click data is enrolled and dropped; only the names are
// retained (the attacker knows who exists, not what they chose).
// Enrollment order across accounts is scheduling-dependent, which is
// fine: accounts are independent rows in the vault.
func EnrollStream(cfg Config, stream AccountStream) ([]string, error) {
	cfg = cfg.withDefaults()
	if cfg.Dial == nil {
		return nil, fmt.Errorf("scenario: nil transport factory")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = par.Default()
	}
	clients, err := dialClients(cfg, workers)
	if err != nil {
		return nil, err
	}
	defer closeClients(clients)

	type job struct {
		user   string
		clicks []dataset.Click
	}
	jobs := make(chan job, workers)
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
		failed   = make(chan struct{})
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			close(failed)
		})
	}
	ctx := context.Background()
	for _, cli := range clients {
		wg.Add(1)
		go func(cli *authsvc.RetryClient) {
			defer wg.Done()
			ops := authsvc.Ops{Doer: cli}
			for j := range jobs {
				resp, err := ops.Enroll(ctx, j.user, j.clicks)
				if err != nil {
					fail(fmt.Errorf("scenario: enrolling %s: %w", j.user, err))
					return
				}
				if !resp.OK() {
					fail(fmt.Errorf("scenario: enrolling %s refused: %s (%s)", j.user, resp.Err, resp.Code))
					return
				}
			}
		}(cli)
	}
	var users []string
	streamErr := stream(func(user string, clicks []dataset.Click) error {
		users = append(users, user)
		select {
		case jobs <- job{user: user, clicks: clicks}:
			return nil
		case <-failed:
			return firstErr
		}
	})
	close(jobs)
	wg.Wait()
	if streamErr != nil {
		return nil, streamErr
	}
	select {
	case <-failed:
		return nil, firstErr
	default:
	}
	return users, nil
}

// dialClients opens one RetryClient per worker.
func dialClients(cfg Config, workers int) ([]*authsvc.RetryClient, error) {
	clients := make([]*authsvc.RetryClient, workers)
	for i := range clients {
		inner, err := cfg.Dial(i)
		if err != nil {
			closeClients(clients[:i])
			return nil, fmt.Errorf("scenario: dialing client %d: %w", i, err)
		}
		clients[i] = authsvc.NewRetryClient(inner, cfg.Retry)
	}
	return clients, nil
}

func closeClients(clients []*authsvc.RetryClient) {
	for _, c := range clients {
		if c != nil {
			_ = c.Close()
		}
	}
}

// Package analysis replays study datasets under both discretization
// schemes and measures the false accepts and false rejects the paper
// defines (§2.2.1, §4.1):
//
//   - false reject: a login that falls within the centered-tolerance
//     square of every original click-point yet is rejected by Robust
//     Discretization, because some click left the Robust grid square.
//   - false accept: a login accepted by Robust Discretization although
//     some click lies outside the centered-tolerance square.
//
// Centered Discretization has zero of both by construction, which the
// engine verifies as a cross-check on every run.
package analysis

import (
	"fmt"
	"sync"

	"clickpass/internal/core"
	"clickpass/internal/dataset"
	"clickpass/internal/geom"
	"clickpass/internal/par"
	"clickpass/internal/replay"
	"clickpass/internal/stats"
)

// Row is one line of Table 1 or Table 2.
type Row struct {
	// RobustSide and CenteredSide are the square sides (pixels) used
	// for each scheme in this comparison.
	RobustSide   int
	CenteredSide int
	// RobustRPx and CenteredRPx are the guaranteed tolerances in
	// pixels (Robust: side/6; Centered: (side-1)/2).
	RobustRPx   float64
	CenteredRPx float64
	// Logins is the number of login attempts replayed.
	Logins int
	// FalseAccepts / FalseRejects count login attempts (not clicks).
	FalseAccepts int
	FalseRejects int
	// ClickFalseAccepts / ClickFalseRejects count individual clicks.
	ClickFalseAccepts int
	ClickFalseRejects int
	Clicks            int
}

// FalseAcceptPct returns the login-level false-accept rate in percent.
func (r Row) FalseAcceptPct() float64 { return pct(r.FalseAccepts, r.Logins) }

// FalseRejectPct returns the login-level false-reject rate in percent.
func (r Row) FalseRejectPct() float64 { return pct(r.FalseRejects, r.Logins) }

// ClickFalseAcceptPct returns the per-click false-accept rate in percent.
func (r Row) ClickFalseAcceptPct() float64 { return pct(r.ClickFalseAccepts, r.Clicks) }

// ClickFalseRejectPct returns the per-click false-reject rate in percent.
func (r Row) ClickFalseRejectPct() float64 { return pct(r.ClickFalseRejects, r.Clicks) }

func pct(n, total int) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(n) / float64(total)
}

// Compare replays every login in the datasets against Robust squares
// of robustSide and centered tolerance squares of centeredSide.
// Replay fans out across per-dataset cells (workers: 0 = one per CPU,
// 1 = serial); each dataset gets its own scheme pair seeded
// seed+index, so the merged row is identical for every worker count —
// including under the stateful RandomSafe policy, whose RNG stream is
// per-dataset rather than shared.
func Compare(dsets []*dataset.Dataset, robustSide, centeredSide int, policy core.RobustPolicy, seed uint64, workers int) (Row, error) {
	rows, err := tableRows(dsets, [][2]int{{robustSide, centeredSide}}, policy, seed, workers)
	if err != nil {
		return Row{}, err
	}
	return rows[0], nil
}

// cellRow replays one dataset against one scheme pair. The two replay
// Sets belong to the calling worker and are recompiled (buffers
// reused) for this cell's schemes.
func cellRow(d *dataset.Dataset, rset, cset *replay.Set, robustSide, centeredSide int, policy core.RobustPolicy, seed uint64) (Row, error) {
	robust, err := core.NewRobust2D(robustSide, policy, seed)
	if err != nil {
		return Row{}, err
	}
	centered, err := core.NewCentered(centeredSide)
	if err != nil {
		return Row{}, err
	}
	row := Row{
		RobustSide:   robustSide,
		CenteredSide: centeredSide,
		RobustRPx:    float64(robustSide) / 6,
		CenteredRPx:  float64(centeredSide-1) / 2,
	}
	if err := replayCompare(d, rset, cset, robust, centered, &row); err != nil {
		return Row{}, err
	}
	return row, nil
}

// add accumulates another cell's counts into r.
func (r *Row) add(o Row) {
	r.Logins += o.Logins
	r.FalseAccepts += o.FalseAccepts
	r.FalseRejects += o.FalseRejects
	r.ClickFalseAccepts += o.ClickFalseAccepts
	r.ClickFalseRejects += o.ClickFalseRejects
	r.Clicks += o.Clicks
}

// setPair is a worker-reusable pair of compiled replay Sets (robust,
// centered), pooled across tableRows cells so buffers amortize.
type setPair struct {
	robust, centered replay.Set
}

// tableRows evaluates every (size pair, dataset) cell of a table on
// the worker pool and merges the per-dataset cells into one row per
// size pair, in order. Flattening both axes into a single task list
// keeps all workers busy even when datasets differ in size; the
// replay Sets each cell compiles into come from a pool, so the token
// buffers amortize across cells (one pair per concurrently running
// worker) instead of fresh per-password allocations in every cell.
func tableRows(dsets []*dataset.Dataset, pairs [][2]int, policy core.RobustPolicy, seed uint64, workers int) ([]Row, error) {
	if len(dsets) == 0 {
		return nil, fmt.Errorf("analysis: no datasets")
	}
	pool := sync.Pool{New: func() any { return new(setPair) }}
	nd := len(dsets)
	cells, err := par.Map(workers, len(pairs)*nd, func(k int) (Row, error) {
		pi, di := k/nd, k%nd
		sets := pool.Get().(*setPair)
		defer pool.Put(sets)
		return cellRow(dsets[di], &sets.robust, &sets.centered, pairs[pi][0], pairs[pi][1], policy, seed+uint64(di))
	})
	if err != nil {
		return nil, err
	}
	rows := make([]Row, 0, len(pairs))
	for pi := range pairs {
		row := cells[pi*nd]
		for _, cell := range cells[pi*nd+1 : (pi+1)*nd] {
			row.add(cell)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func replayCompare(d *dataset.Dataset, rset, cset *replay.Set, robust, centered core.Scheme, row *Row) error {
	// Compile enrolls serially in password order, so a stateful Robust
	// policy (RandomSafe) consumes its RNG exactly as the pre-replay
	// per-password loop did; the centered scheme is stateless, so
	// splitting the interleaved enrollment into two passes cannot
	// change any token.
	rset.Compile(d, robust)
	cset.Compile(d, centered)
	for i := range d.Logins {
		l := &d.Logins[i]
		ord, ok := rset.Ordinal(l.PasswordID)
		if !ok {
			return fmt.Errorf("analysis: login references unknown password %d", l.PasswordID)
		}
		rtokens, ctokens := rset.Tokens(ord), cset.Tokens(ord)
		loginRobustOK, loginCenteredOK := true, true
		orig := d.PasswordByID(l.PasswordID)
		for j := range l.Clicks {
			pt := l.Clicks[j].Point()
			rOK := core.Accepts(robust, rtokens[j], pt)
			cOK := core.Accepts(centered, ctokens[j], pt)
			// Cross-check the paper's definitional claim: centered
			// acceptance must coincide with centered-tolerance
			// membership around the original click.
			origPt := orig.Clicks[j].Point()
			if cOK != (origPt.Chebyshev(pt) <= centered.MaxAccepted()) {
				return fmt.Errorf("analysis: centered scheme deviated from centered tolerance at password %d click %d", l.PasswordID, j)
			}
			if rOK && !cOK {
				row.ClickFalseAccepts++
			}
			if cOK && !rOK {
				row.ClickFalseRejects++
			}
			loginRobustOK = loginRobustOK && rOK
			loginCenteredOK = loginCenteredOK && cOK
			row.Clicks++
		}
		if loginRobustOK && !loginCenteredOK {
			row.FalseAccepts++
		}
		if loginCenteredOK && !loginRobustOK {
			row.FalseRejects++
		}
		row.Logins++
	}
	return nil
}

// Table1Sizes are the equal-square-size comparisons of Table 1.
var Table1Sizes = []int{9, 13, 19}

// Table1 keeps the grid-square size equal for both schemes (Figure 5):
// Robust trades its whole square for a smaller guaranteed r, producing
// both false accepts and false rejects. Cells (size x dataset) are
// evaluated on the worker pool; 0 workers means one per CPU.
func Table1(dsets []*dataset.Dataset, policy core.RobustPolicy, seed uint64, workers int) ([]Row, error) {
	pairs := make([][2]int, len(Table1Sizes))
	for i, s := range Table1Sizes {
		pairs[i] = [2]int{s, s}
	}
	return tableRows(dsets, pairs, policy, seed, workers)
}

// Table2Rs are the equal-r comparisons of Table 2 (pixels).
var Table2Rs = []int{4, 6, 9}

// Table2 keeps the guaranteed tolerance r equal (Figure 6): Robust
// squares grow to 6r so false rejects vanish but false accepts remain.
// Cells (r x dataset) are evaluated on the worker pool.
func Table2(dsets []*dataset.Dataset, policy core.RobustPolicy, seed uint64, workers int) ([]Row, error) {
	pairs := make([][2]int, len(Table2Rs))
	for i, r := range Table2Rs {
		pairs[i] = [2]int{6 * r, 2*r + 1}
	}
	return tableRows(dsets, pairs, policy, seed, workers)
}

// WorstCase demonstrates Figure 1's geometry for a given Robust square
// side: it scans origins until it finds a click-point whose enrolled
// Robust square leaves it exactly r from one edge, and reports the
// asymmetric accepted displacements.
type WorstCase struct {
	Origin        geom.Point
	Region        geom.Rect
	LeftSlackPx   float64 // accepted displacement toward the near edge
	RightSlackPx  float64 // accepted displacement toward the far edge
	GuaranteedRPx float64
	RMaxPx        float64
}

// FindWorstCase locates a maximally off-center Robust enrollment.
// The 3·side × 3·side origin scan is row-striped across workers
// goroutines (0 = one per CPU, 1 = serial): each stripe scans one x
// column over all y and reports its local first maximum; stripes merge
// in x order with a strict comparison, so the winner is always the
// lowest-(x, y) origin among equal asymmetries — exactly the serial
// scan's first-maximum tie-break. Stateful schemes (RandomSafe) fall
// back to a serial scan so their RNG stream is consumed in origin
// order regardless of the requested worker count.
func FindWorstCase(side int, policy core.RobustPolicy, seed uint64, workers int) (WorstCase, error) {
	robust, err := core.NewRobust2D(side, policy, seed)
	if err != nil {
		return WorstCase{}, err
	}
	if !core.ConcurrencySafe(robust) {
		workers = 1
	}
	type stripeBest struct {
		asym float64
		wc   WorstCase
	}
	bests, err := par.Map(workers, 3*side, func(x int) (stripeBest, error) {
		best := stripeBest{asym: -1}
		for y := 0; y < 3*side; y++ {
			p := geom.Pt(x, y)
			tok := robust.Enroll(p)
			region := robust.Region(tok)
			left := (p.X - region.MinX).Float()
			right := (region.MaxX - p.X).Float()
			asym := right - left
			if left > right {
				asym = left - right
			}
			if asym > best.asym {
				best = stripeBest{
					asym: asym,
					wc: WorstCase{
						Origin:        p,
						Region:        region,
						LeftSlackPx:   left,
						RightSlackPx:  right,
						GuaranteedRPx: robust.GuaranteedR().Float(),
						RMaxPx:        robust.MaxAccepted().Float(),
					},
				}
			}
		}
		return best, nil
	})
	if err != nil {
		return WorstCase{}, err
	}
	worst := stripeBest{asym: -1}
	for _, b := range bests {
		if b.asym > worst.asym {
			worst = b
		}
	}
	return worst.wc, nil
}

// SuccessRate is the overall login acceptance of one scheme over a
// dataset — the usability number a deployment cares about. The paper's
// argument in one metric: at equal square sizes Robust loses real
// logins to false rejects; to recover them it must inflate its squares
// (equal r), paying in password space instead.
type SuccessRate struct {
	Scheme   string
	SidePx   int
	Logins   int
	Accepted int
}

// AcceptedPct returns the acceptance rate in percent.
func (s SuccessRate) AcceptedPct() float64 { return pct(s.Accepted, s.Logins) }

// successChunk is the login-replay granularity of Success's fan-out:
// big enough that chunk bookkeeping is noise, small enough that a
// dataset's ~2400 logins split across every core.
const successChunk = 256

// Success replays every login under the scheme and counts acceptances.
// Each dataset's passwords are enrolled once through the replay layer
// (serially, in dataset order, so stateful schemes consume their RNG
// exactly as a serial replay would); the login replays then fan out in
// chunks per dataset across workers goroutines (0 = one per CPU, 1 =
// serial). Matching is pure, so the tally is identical at every worker
// count, and a dangling login reference is always reported for the
// earliest offending login.
func Success(dsets []*dataset.Dataset, scheme core.Scheme, workers int) (SuccessRate, error) {
	if len(dsets) == 0 {
		return SuccessRate{}, fmt.Errorf("analysis: no datasets")
	}
	out := SuccessRate{Scheme: scheme.Name(), SidePx: scheme.SquareSide().Pixels()}
	sets := make([]*replay.Set, len(dsets))
	type chunk struct{ ds, lo, hi int }
	var chunks []chunk
	for i, d := range dsets {
		sets[i] = replay.Compile(d, scheme)
		for lo := 0; lo < len(d.Logins); lo += successChunk {
			hi := lo + successChunk
			if hi > len(d.Logins) {
				hi = len(d.Logins)
			}
			chunks = append(chunks, chunk{ds: i, lo: lo, hi: hi})
		}
	}
	type tally struct{ logins, accepted int }
	tallies, err := par.Map(workers, len(chunks), func(k int) (tally, error) {
		c := chunks[k]
		d, set := dsets[c.ds], sets[c.ds]
		var t tally
		for i := c.lo; i < c.hi; i++ {
			l := &d.Logins[i]
			ok, err := set.AcceptsLogin(l.PasswordID, l.Clicks)
			if err != nil {
				return tally{}, fmt.Errorf("analysis: %w", err)
			}
			t.logins++
			if ok {
				t.accepted++
			}
		}
		return t, nil
	})
	if err != nil {
		return SuccessRate{}, err
	}
	for _, t := range tallies {
		out.Logins += t.logins
		out.Accepted += t.accepted
	}
	return out, nil
}

// FalseAcceptCI returns the 95% Wilson interval of the false-accept
// rate, in percent.
func (r Row) FalseAcceptCI() (lo, hi float64) {
	return stats.Proportion{K: r.FalseAccepts, N: r.Logins}.Wilson95Pct()
}

// FalseRejectCI returns the 95% Wilson interval of the false-reject
// rate, in percent.
func (r Row) FalseRejectCI() (lo, hi float64) {
	return stats.Proportion{K: r.FalseRejects, N: r.Logins}.Wilson95Pct()
}

// Package report renders experiment results as aligned ASCII tables,
// CSV files, and ASCII bar charts, so every table and figure of the
// paper can be regenerated on a terminal and diffed as text.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.1f", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a pre-formatted row.
func (t *Table) AddRowf(cells ...string) {
	t.rows = append(t.rows, cells)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2) + "\n")
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV writes the table as CSV (headers then rows).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Headers); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Series is one named line of a figure.
type Series struct {
	Name   string
	Labels []string
	Values []float64
}

// BarChart renders grouped horizontal bars: for each label one bar per
// series, scaled to maxWidth characters at 100 (values are
// percentages).
func BarChart(w io.Writer, title string, series []Series, maxWidth int) error {
	if len(series) == 0 {
		return fmt.Errorf("report: no series")
	}
	n := len(series[0].Labels)
	nameW := 0
	for _, s := range series {
		if len(s.Labels) != n || len(s.Values) != n {
			return fmt.Errorf("report: series %q has mismatched lengths", s.Name)
		}
		if len(s.Name) > nameW {
			nameW = len(s.Name)
		}
	}
	labelW := 0
	for _, l := range series[0].Labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "%-*s\n", labelW, series[0].Labels[i])
		for _, s := range series {
			bar := int(s.Values[i] / 100 * float64(maxWidth))
			if bar < 0 {
				bar = 0
			}
			if bar > maxWidth {
				bar = maxWidth
			}
			fmt.Fprintf(&b, "  %-*s |%s%s %5.1f%%\n", nameW, s.Name,
				strings.Repeat("#", bar), strings.Repeat(" ", maxWidth-bar), s.Values[i])
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// SeriesCSV writes figure series as CSV: label,series1,series2,...
func SeriesCSV(w io.Writer, series []Series) error {
	if len(series) == 0 {
		return fmt.Errorf("report: no series")
	}
	cw := csv.NewWriter(w)
	header := []string{"label"}
	for _, s := range series {
		header = append(header, s.Name)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for i := range series[0].Labels {
		row := []string{series[0].Labels[i]}
		for _, s := range series {
			if i >= len(s.Values) {
				return fmt.Errorf("report: series %q too short", s.Name)
			}
			row = append(row, fmt.Sprintf("%.2f", s.Values[i]))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteMarkdown renders the table as a GitHub-flavored Markdown table
// (for EXPERIMENTS.md-style documents).
func (t *Table) WriteMarkdown(w io.Writer) error {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	b.WriteString("|")
	for _, h := range t.Headers {
		b.WriteString(" " + h + " |")
	}
	b.WriteString("\n|")
	for range t.Headers {
		b.WriteString("---|")
	}
	b.WriteString("\n")
	for _, row := range t.rows {
		b.WriteString("|")
		for i := range t.Headers {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			b.WriteString(" " + cell + " |")
		}
		b.WriteString("\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

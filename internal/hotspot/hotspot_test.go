package hotspot

import (
	"math"
	"testing"

	"clickpass/internal/geom"
	"clickpass/internal/imagegen"
	"clickpass/internal/rng"
)

func TestKDEPeaksAtCluster(t *testing.T) {
	size := geom.Size{W: 200, H: 200}
	var clicks []geom.Point
	r := rng.New(1)
	for i := 0; i < 200; i++ {
		clicks = append(clicks, size.Clamp(geom.Pt(
			60+int(r.NormalScaled(0, 4)), 60+int(r.NormalScaled(0, 4)))))
	}
	for i := 0; i < 20; i++ {
		clicks = append(clicks, geom.Pt(r.Intn(200), r.Intn(200)))
	}
	m, err := EstimateKDE(clicks, size, 5, 6)
	if err != nil {
		t.Fatal(err)
	}
	at := m.At(geom.Pt(60, 60))
	far := m.At(geom.Pt(170, 170))
	if at <= 3*far {
		t.Errorf("density at cluster %.2f not dominating far point %.2f", at, far)
	}
	top := m.TopK(1, 10)
	if len(top) != 1 {
		t.Fatal("TopK(1) returned nothing")
	}
	if top[0].Chebyshev(geom.Pt(60, 60)).Pixels() > 12 {
		t.Errorf("top peak at %v, want near (60,60)", top[0])
	}
}

func TestKDEValidation(t *testing.T) {
	size := geom.Size{W: 100, H: 100}
	pts := []geom.Point{geom.Pt(5, 5)}
	if _, err := EstimateKDE(nil, size, 5, 6); err == nil {
		t.Error("no clicks accepted")
	}
	if _, err := EstimateKDE(pts, size, 0, 6); err == nil {
		t.Error("zero cell accepted")
	}
	if _, err := EstimateKDE(pts, size, 5, 0); err == nil {
		t.Error("zero bandwidth accepted")
	}
	if _, err := EstimateKDE(pts, geom.Size{}, 5, 6); err == nil {
		t.Error("empty image accepted")
	}
}

func TestFromSaliencyFindsDefinedHotspots(t *testing.T) {
	img := imagegen.Pool()
	m, err := FromSaliency(img, 4)
	if err != nil {
		t.Fatal(err)
	}
	top := m.TopK(len(img.Hotspots), 20)
	if len(top) != len(img.Hotspots) {
		t.Fatalf("TopK returned %d points, want %d", len(top), len(img.Hotspots))
	}
	// Every extracted candidate must be near some true hotspot.
	for _, p := range top {
		best := math.Inf(1)
		for _, h := range img.Hotspots {
			d := math.Hypot(p.X.Float()-h.X, p.Y.Float()-h.Y)
			if d < best {
				best = d
			}
		}
		if best > 15 {
			t.Errorf("candidate %v is %.0fpx from the nearest true hotspot", p, best)
		}
	}
}

func TestTopKSeparation(t *testing.T) {
	img := imagegen.Cars()
	m, err := FromSaliency(img, 4)
	if err != nil {
		t.Fatal(err)
	}
	top := m.TopK(20, 25)
	for i := range top {
		for j := i + 1; j < len(top); j++ {
			if top[i].Chebyshev(top[j]).Pixels() < 25 {
				t.Fatalf("candidates %v and %v violate separation", top[i], top[j])
			}
		}
	}
	if m.TopK(0, 10) != nil {
		t.Error("TopK(0) should be empty")
	}
}

func TestTopKDeterministic(t *testing.T) {
	img := imagegen.Cars()
	m, _ := FromSaliency(img, 4)
	a := m.TopK(10, 20)
	b := m.TopK(10, 20)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("TopK not deterministic")
		}
	}
}

// TestSaliencyPredictsClicks: the automated model must correlate with
// where simulated users actually click — the premise of Dirik-style
// attacks.
func TestSaliencyPredictsClicks(t *testing.T) {
	img := imagegen.Pool()
	r := rng.New(9)
	var clicks []geom.Point
	for i := 0; i < 3000; i++ {
		clicks = append(clicks, img.SampleClick(r))
	}
	kde, err := EstimateKDE(clicks, img.Size, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	sal, err := FromSaliency(img, 8)
	if err != nil {
		t.Fatal(err)
	}
	corr, err := Correlation(kde, sal)
	if err != nil {
		t.Fatal(err)
	}
	if corr < 0.6 {
		t.Errorf("saliency-click correlation %.2f — automated attack premise broken", corr)
	}
}

func TestCorrelationValidation(t *testing.T) {
	img := imagegen.Pool()
	a, _ := FromSaliency(img, 8)
	b, _ := FromSaliency(img, 16)
	if _, err := Correlation(a, b); err == nil {
		t.Error("grid mismatch accepted")
	}
	flat, _ := newDensityMap(img.Size, 8)
	if _, err := Correlation(a, flat); err == nil {
		t.Error("degenerate map accepted")
	}
	if c, err := Correlation(a, a); err != nil || math.Abs(c-1) > 1e-9 {
		t.Errorf("self correlation = %v, %v", c, err)
	}
}

func TestAtOutOfRange(t *testing.T) {
	img := imagegen.Cars()
	m, _ := FromSaliency(img, 8)
	if m.At(geom.Pt(-5, 10)) != 0 || m.At(geom.Pt(10, 4000)) != 0 {
		t.Error("out-of-range At should be 0")
	}
}

package authproto

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"clickpass/internal/core"
	"clickpass/internal/dataset"
	"clickpass/internal/geom"
	"clickpass/internal/passpoints"
	"clickpass/internal/vault"
)

func testServer(t *testing.T, lockout int) *Server {
	t.Helper()
	scheme, err := core.NewCentered(13)
	if err != nil {
		t.Fatal(err)
	}
	cfg := passpoints.Config{
		Image:      geom.Size{W: 451, H: 331},
		Clicks:     5,
		Scheme:     scheme,
		Iterations: 2,
	}
	s, err := NewServer(cfg, vault.New(), lockout)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func clicks(dx int) []dataset.Click {
	return []dataset.Click{
		{X: 30 + dx, Y: 40}, {X: 120 + dx, Y: 300}, {X: 222 + dx, Y: 51},
		{X: 400 + dx, Y: 200}, {X: 77 + dx, Y: 160},
	}
}

func TestHandleEnrollLogin(t *testing.T) {
	s := testServer(t, 10)
	if resp := s.Handle(Request{Op: OpEnroll, User: "alice", Clicks: clicks(0)}); !resp.OK {
		t.Fatalf("enroll failed: %+v", resp)
	}
	if resp := s.Handle(Request{Op: OpLogin, User: "alice", Clicks: clicks(0)}); !resp.OK {
		t.Fatalf("exact login failed: %+v", resp)
	}
	// 6px displacement is within r=6.5.
	if resp := s.Handle(Request{Op: OpLogin, User: "alice", Clicks: clicks(6)}); !resp.OK {
		t.Fatalf("6px login failed: %+v", resp)
	}
	// 7px is outside.
	if resp := s.Handle(Request{Op: OpLogin, User: "alice", Clicks: clicks(7)}); resp.OK {
		t.Fatal("7px login accepted")
	}
}

func TestHandleErrors(t *testing.T) {
	s := testServer(t, 10)
	if resp := s.Handle(Request{Op: "bogus"}); resp.OK || !strings.Contains(resp.Error, "unknown op") {
		t.Errorf("bogus op: %+v", resp)
	}
	if resp := s.Handle(Request{Op: OpEnroll, Clicks: clicks(0)}); resp.OK {
		t.Error("enroll without user accepted")
	}
	if resp := s.Handle(Request{Op: OpLogin, Clicks: clicks(0)}); resp.OK {
		t.Error("login without user accepted")
	}
	if resp := s.Handle(Request{Op: OpEnroll, User: "x", Clicks: clicks(0)[:2]}); resp.OK {
		t.Error("short enroll accepted")
	}
	s.Handle(Request{Op: OpEnroll, User: "dup", Clicks: clicks(0)})
	if resp := s.Handle(Request{Op: OpEnroll, User: "dup", Clicks: clicks(0)}); resp.OK {
		t.Error("duplicate enroll accepted")
	}
	if resp := s.Handle(Request{Op: OpPing}); !resp.OK {
		t.Error("ping failed")
	}
}

func TestLockout(t *testing.T) {
	s := testServer(t, 3)
	s.Handle(Request{Op: OpEnroll, User: "bob", Clicks: clicks(0)})
	for i := 0; i < 2; i++ {
		resp := s.Handle(Request{Op: OpLogin, User: "bob", Clicks: clicks(9)})
		if resp.OK || resp.Locked {
			t.Fatalf("attempt %d: %+v", i, resp)
		}
		if resp.Remaining != 2-i {
			t.Errorf("attempt %d: remaining = %d, want %d", i, resp.Remaining, 2-i)
		}
	}
	// Third failure locks.
	if resp := s.Handle(Request{Op: OpLogin, User: "bob", Clicks: clicks(9)}); !resp.Locked {
		t.Fatalf("third failure should lock: %+v", resp)
	}
	// Correct password is now refused too.
	if resp := s.Handle(Request{Op: OpLogin, User: "bob", Clicks: clicks(0)}); !resp.Locked {
		t.Fatalf("locked account accepted login: %+v", resp)
	}
	// Admin reset clears it.
	s.Handle(Request{Op: OpReset, User: "bob"})
	if resp := s.Handle(Request{Op: OpLogin, User: "bob", Clicks: clicks(0)}); !resp.OK {
		t.Fatalf("login after reset failed: %+v", resp)
	}
}

func TestSuccessfulLoginResetsCounter(t *testing.T) {
	s := testServer(t, 3)
	s.Handle(Request{Op: OpEnroll, User: "carol", Clicks: clicks(0)})
	s.Handle(Request{Op: OpLogin, User: "carol", Clicks: clicks(9)})
	s.Handle(Request{Op: OpLogin, User: "carol", Clicks: clicks(0)}) // success
	for i := 0; i < 2; i++ {
		if resp := s.Handle(Request{Op: OpLogin, User: "carol", Clicks: clicks(9)}); resp.Locked {
			t.Fatal("counter was not reset by successful login")
		}
	}
}

func TestUnknownUserConsumesAttempts(t *testing.T) {
	s := testServer(t, 2)
	r1 := s.Handle(Request{Op: OpLogin, User: "ghost", Clicks: clicks(0)})
	if r1.OK || r1.Locked {
		t.Fatalf("first ghost attempt: %+v", r1)
	}
	r2 := s.Handle(Request{Op: OpLogin, User: "ghost", Clicks: clicks(0)})
	if !r2.Locked {
		t.Fatalf("ghost account should lock like a real one: %+v", r2)
	}
	// Responses for unknown users must be indistinguishable from wrong
	// passwords.
	s2 := testServer(t, 2)
	s2.Handle(Request{Op: OpEnroll, User: "real", Clicks: clicks(0)})
	realResp := s2.Handle(Request{Op: OpLogin, User: "real", Clicks: clicks(9)})
	ghostResp := s2.Handle(Request{Op: OpLogin, User: "ghost2", Clicks: clicks(9)})
	if realResp.Error != ghostResp.Error {
		t.Errorf("user enumeration possible: %q vs %q", realResp.Error, ghostResp.Error)
	}
}

func TestTCPEndToEnd(t *testing.T) {
	s := testServer(t, 10)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() { _ = s.Serve(l) }()

	c, err := Dial(l.Addr().String(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	resp, err := c.Enroll("dave", clicks(0))
	if err != nil || !resp.OK {
		t.Fatalf("enroll: %+v, %v", resp, err)
	}
	resp, err = c.Login("dave", clicks(3))
	if err != nil || !resp.OK {
		t.Fatalf("login: %+v, %v", resp, err)
	}
	resp, err = c.Login("dave", clicks(12))
	if err != nil || resp.OK {
		t.Fatalf("far login accepted: %+v, %v", resp, err)
	}
	// Multiple requests on one connection must keep working.
	for i := 0; i < 5; i++ {
		if err := c.Ping(); err != nil {
			t.Fatalf("ping %d: %v", i, err)
		}
	}
}

func TestServeRejectsOversizedFrame(t *testing.T) {
	s := testServer(t, 10)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() { _ = s.Serve(l) }()

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], MaxFrame+1)
	if _, err := conn.Write(lenBuf[:]); err != nil {
		t.Fatal(err)
	}
	// Server must drop the connection without replying.
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	var b [1]byte
	if _, err := conn.Read(b[:]); err == nil {
		t.Error("server replied to oversized frame")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := Request{Op: OpLogin, User: "x", Clicks: clicks(0)}
	if err := writeFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	var out Request
	if err := readFrame(&buf, &out); err != nil {
		t.Fatal(err)
	}
	if out.Op != in.Op || out.User != in.User || len(out.Clicks) != len(in.Clicks) {
		t.Errorf("round trip mangled request: %+v", out)
	}
}

func TestReadFrameRejectsZeroLength(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 0})
	var req Request
	if err := readFrame(&buf, &req); err == nil {
		t.Error("zero-length frame accepted")
	}
}

func TestHTTPEndpoints(t *testing.T) {
	s := testServer(t, 3)
	ts := httptest.NewServer(s.HTTPHandler())
	defer ts.Close()

	post := func(path, body string) (*http.Response, error) {
		return http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	}
	enrollBody := `{"user":"erin","clicks":[{"x":30,"y":40},{"x":120,"y":300},{"x":222,"y":51},{"x":400,"y":200},{"x":77,"y":160}]}`
	resp, err := post("/v1/enroll", enrollBody)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("enroll status = %d", resp.StatusCode)
	}
	resp, err = post("/v1/login", enrollBody)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("login status = %d", resp.StatusCode)
	}
	// Wrong password: 401.
	wrong := strings.Replace(enrollBody, `"x":30`, `"x":60`, 1)
	resp, err = post("/v1/login", wrong)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("wrong login status = %d, want 401", resp.StatusCode)
	}
	// Exhaust lockout: 429.
	post("/v1/login", wrong)
	resp, err = post("/v1/login", wrong)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("locked status = %d, want 429", resp.StatusCode)
	}
	// Bad body: 400.
	resp, err = post("/v1/enroll", "{")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body status = %d, want 400", resp.StatusCode)
	}
	// GET on login: 405.
	getResp, err := http.Get(ts.URL + "/v1/login")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET login status = %d, want 405", getResp.StatusCode)
	}
	// Ping works.
	pingResp, err := http.Get(ts.URL + "/v1/ping")
	if err != nil {
		t.Fatal(err)
	}
	pingResp.Body.Close()
	if pingResp.StatusCode != http.StatusOK {
		t.Fatalf("ping status = %d", pingResp.StatusCode)
	}
}

func TestNewServerValidation(t *testing.T) {
	scheme, _ := core.NewCentered(13)
	cfg := passpoints.Config{Image: geom.Size{W: 10, H: 10}, Clicks: 5, Scheme: scheme}
	if _, err := NewServer(cfg, nil, 0); err == nil {
		t.Error("nil vault accepted")
	}
	bad := cfg
	bad.Scheme = nil
	if _, err := NewServer(bad, vault.New(), 0); err == nil {
		t.Error("invalid config accepted")
	}
	s, err := NewServer(cfg, vault.New(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.svc.Lockout() != DefaultLockout {
		t.Errorf("default lockout = %d", s.svc.Lockout())
	}
}

func TestNewClientOverPipe(t *testing.T) {
	s := testServer(t, 10)
	serverConn, clientConn := net.Pipe()
	go s.serveConn(serverConn)
	c := NewClient(clientConn)
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
}

func TestChangePassword(t *testing.T) {
	s := testServer(t, 3)
	s.Handle(Request{Op: OpEnroll, User: "frank", Clicks: clicks(0)})
	newClicks := clicks(40)
	// Wrong old password: refused, consumes an attempt.
	resp := s.Handle(Request{Op: OpChange, User: "frank", Clicks: clicks(9), NewClicks: newClicks})
	if resp.OK {
		t.Fatal("change with wrong old password accepted")
	}
	if resp.Remaining != 2 {
		t.Errorf("failed change should consume a lockout attempt, remaining=%d", resp.Remaining)
	}
	// Correct old password: change succeeds.
	resp = s.Handle(Request{Op: OpChange, User: "frank", Clicks: clicks(0), NewClicks: newClicks})
	if !resp.OK {
		t.Fatalf("change failed: %+v", resp)
	}
	// Old password no longer works; new one does.
	if r := s.Handle(Request{Op: OpLogin, User: "frank", Clicks: clicks(0)}); r.OK {
		t.Error("old password still accepted after change")
	}
	if r := s.Handle(Request{Op: OpLogin, User: "frank", Clicks: newClicks}); !r.OK {
		t.Errorf("new password rejected after change: %+v", r)
	}
}

func TestChangeRejectsBadNewPassword(t *testing.T) {
	s := testServer(t, 3)
	s.Handle(Request{Op: OpEnroll, User: "gina", Clicks: clicks(0)})
	resp := s.Handle(Request{Op: OpChange, User: "gina", Clicks: clicks(0), NewClicks: clicks(0)[:2]})
	if resp.OK {
		t.Error("change to a 2-click password accepted")
	}
	// The old password must remain valid after the failed change.
	if r := s.Handle(Request{Op: OpLogin, User: "gina", Clicks: clicks(0)}); !r.OK {
		t.Error("old password lost after failed change")
	}
}

func TestChangeRespectsLockout(t *testing.T) {
	s := testServer(t, 2)
	s.Handle(Request{Op: OpEnroll, User: "hank", Clicks: clicks(0)})
	s.Handle(Request{Op: OpLogin, User: "hank", Clicks: clicks(9)})
	s.Handle(Request{Op: OpLogin, User: "hank", Clicks: clicks(9)})
	resp := s.Handle(Request{Op: OpChange, User: "hank", Clicks: clicks(0), NewClicks: clicks(40)})
	if !resp.Locked {
		t.Errorf("change on a locked account should be refused: %+v", resp)
	}
}

// TestConcurrentClients: many clients hammering one server over real
// TCP must each see consistent results (run with -race in CI).
func TestConcurrentClients(t *testing.T) {
	s := testServer(t, 1000)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() { _ = s.Serve(l) }()

	const workers = 8
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			c, err := Dial(l.Addr().String(), 2*time.Second)
			if err != nil {
				errc <- err
				return
			}
			defer c.Close()
			user := fmt.Sprintf("worker-%d", w)
			if resp, err := c.Enroll(user, clicks(w)); err != nil || !resp.OK {
				errc <- fmt.Errorf("%s enroll: %+v %v", user, resp, err)
				return
			}
			for i := 0; i < 20; i++ {
				resp, err := c.Login(user, clicks(w+3))
				if err != nil || !resp.OK {
					errc <- fmt.Errorf("%s login %d: %+v %v", user, i, resp, err)
					return
				}
				// A different worker's password must not verify.
				resp, err = c.Login(user, clicks(w+40))
				if err != nil || resp.OK {
					errc <- fmt.Errorf("%s cross-login accepted", user)
					return
				}
			}
			errc <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
}

package attack

import (
	"reflect"
	"testing"

	"clickpass/internal/core"
)

// TestGuessOrderDeterministicAndComplete pins the exported guess
// stream: one entry per lab password, descending saliency score with
// stable ties, identical across calls — the contract the scenario
// red-team harness relies on to stay comparable with Online.
func TestGuessOrderDeterministicAndComplete(t *testing.T) {
	pair := studyPairs(t)[0]
	order, err := GuessOrder(pair.lab, pair.img)
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != len(pair.lab.Passwords) {
		t.Fatalf("guess stream has %d entries, want %d", len(order), len(pair.lab.Passwords))
	}
	for i := 1; i < len(order); i++ {
		if guessScore(order[i], pair.img) > guessScore(order[i-1], pair.img) {
			t.Fatalf("guess %d scores higher than guess %d", i, i-1)
		}
	}
	again, err := GuessOrder(pair.lab, pair.img)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(order, again) {
		t.Fatal("guess stream not deterministic across calls")
	}
}

// TestOnlineAccountsEqualsFieldSize is the regression gate for the
// Accounts accounting fix: the result must report exactly the field
// dataset's size, at several lockouts and worker counts.
func TestOnlineAccountsEqualsFieldSize(t *testing.T) {
	pair := studyPairs(t)[0]
	c13, err := core.NewCentered(13)
	if err != nil {
		t.Fatal(err)
	}
	for _, lockout := range []int{1, 10, 1000} {
		for _, w := range []int{1, 4} {
			res, err := Online(pair.field, pair.lab, pair.img, c13, lockout, w)
			if err != nil {
				t.Fatal(err)
			}
			if res.Accounts != len(pair.field.Passwords) {
				t.Fatalf("lockout=%d workers=%d: Accounts = %d, want %d",
					lockout, w, res.Accounts, len(pair.field.Passwords))
			}
		}
	}
}

package vault

import (
	"errors"
	"sync"
	"time"

	"clickpass/internal/passpoints"
)

// ErrInjected is the error returned by a Flaky store's injected
// faults. It is distinct from ErrNotFound and ErrExists so callers
// (the auth service) can tell an infrastructure failure from a
// semantic miss — injected faults must never read as "wrong password"
// or "user exists".
var ErrInjected = errors.New("vault: injected fault")

// FlakyOptions configures NewFlaky, the storage half of the
// fault-injection harness. All fault decisions come from one seeded
// splitmix64 stream guarded by a mutex, so a run is deterministic for
// a fixed operation order: same seed, same faults.
type FlakyOptions struct {
	// Seed initializes the fault stream; 0 means 1.
	Seed uint64
	// ErrRate is the probability ([0,1]) an operation fails with
	// ErrInjected instead of reaching the wrapped store.
	ErrRate float64
	// LatencyRate is the probability ([0,1]) an operation is delayed
	// by Latency before proceeding.
	LatencyRate float64
	// Latency is the injected spike duration; 0 selects 5ms.
	Latency time.Duration
	// StallEvery, when > 0, stalls every StallEvery-th *mutation* for
	// Stall — the shape of a periodic fsync pause on a saturated disk.
	StallEvery int
	// Stall is the mutation-stall duration; 0 selects 20ms.
	Stall time.Duration
}

func (o FlakyOptions) latency() time.Duration {
	if o.Latency <= 0 {
		return 5 * time.Millisecond
	}
	return o.Latency
}

func (o FlakyOptions) stall() time.Duration {
	if o.Stall <= 0 {
		return 20 * time.Millisecond
	}
	return o.Stall
}

// Flaky wraps a Store with deterministic, seeded fault injection:
// latency spikes and injected errors on every operation, plus
// periodic fsync-style stalls on mutations. Reads that fail return
// ErrInjected — never a false ErrNotFound — and mutations fail
// *before* reaching the wrapped store, so an injected error never
// leaves half-applied state: the wrapped store either saw the whole
// operation or none of it. Construct with NewFlaky, which preserves
// the wrapped store's LockoutStore extension.
type Flaky struct {
	inner Store
	opts  FlakyOptions

	mu        sync.Mutex
	rngState  uint64
	mutations int
}

// NewFlaky wraps inner with fault injection. When inner also
// implements LockoutStore (the durable backend), the returned store
// does too — with the same injected faults on counter writes — so the
// auth service's type assertion sees the store it would see in
// production.
func NewFlaky(inner Store, opts FlakyOptions) Store {
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	f := &Flaky{inner: inner, opts: opts, rngState: seed}
	if locks, ok := inner.(LockoutStore); ok {
		return &flakyLockout{Flaky: f, locks: locks}
	}
	return f
}

// next returns the next value in [0,1) from the seeded stream.
func (f *Flaky) next() float64 {
	f.mu.Lock()
	f.rngState += 0x9e3779b97f4a7c15
	z := f.rngState
	f.mu.Unlock()
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}

// fault runs the read-path fault schedule: maybe a latency spike,
// maybe an injected error.
func (f *Flaky) fault() error {
	if f.opts.LatencyRate > 0 && f.next() < f.opts.LatencyRate {
		time.Sleep(f.opts.latency())
	}
	if f.opts.ErrRate > 0 && f.next() < f.opts.ErrRate {
		return ErrInjected
	}
	return nil
}

// mutFault runs the mutation fault schedule: the read-path faults
// plus the periodic fsync-style stall.
func (f *Flaky) mutFault() error {
	if f.opts.StallEvery > 0 {
		f.mu.Lock()
		f.mutations++
		stall := f.mutations%f.opts.StallEvery == 0
		f.mu.Unlock()
		if stall {
			time.Sleep(f.opts.stall())
		}
	}
	return f.fault()
}

// Put stores a record for a new user, unless a fault fires first.
func (f *Flaky) Put(rec *passpoints.Record) error {
	if err := f.mutFault(); err != nil {
		return err
	}
	return f.inner.Put(rec)
}

// Replace stores a record, overwriting any existing one, unless a
// fault fires first.
func (f *Flaky) Replace(rec *passpoints.Record) error {
	if err := f.mutFault(); err != nil {
		return err
	}
	return f.inner.Replace(rec)
}

// Get returns the record for user; injected failures return
// ErrInjected, never a false ErrNotFound.
func (f *Flaky) Get(user string) (*passpoints.Record, error) {
	if err := f.fault(); err != nil {
		return nil, err
	}
	return f.inner.Get(user)
}

// Delete removes a user's record. Deletes have no error return in the
// Store contract, so injected errors degrade to a latency spike (and
// the periodic stall still applies).
func (f *Flaky) Delete(user string) {
	_ = f.mutFault()
	f.inner.Delete(user)
}

// Users returns all user names in sorted order (never faulted: the
// enumeration surface is administrative, not request-path).
func (f *Flaky) Users() []string { return f.inner.Users() }

// Len returns the number of records.
func (f *Flaky) Len() int { return f.inner.Len() }

// All returns every record sorted by user.
func (f *Flaky) All() []*passpoints.Record { return f.inner.All() }

// Save writes the wrapped store to its backing file.
func (f *Flaky) Save() error {
	if err := f.mutFault(); err != nil {
		return err
	}
	return f.inner.Save()
}

// SaveTo writes the wrapped store to the given path.
func (f *Flaky) SaveTo(path string) error {
	if err := f.mutFault(); err != nil {
		return err
	}
	return f.inner.SaveTo(path)
}

// flakyLockout extends Flaky over stores that persist lockout
// counters, injecting the same faults into counter writes: the auth
// service logs and tolerates those failures, which is exactly the
// path the torture test must prove keeps counters exact.
type flakyLockout struct {
	*Flaky
	locks LockoutStore
}

// SetLockout records user's failed-attempt count, unless a fault
// fires first.
func (f *flakyLockout) SetLockout(user string, failures int) error {
	if err := f.mutFault(); err != nil {
		return err
	}
	return f.locks.SetLockout(user, failures)
}

// Lockouts returns a copy of every persisted counter (never faulted:
// it runs once at startup, before the chaos begins).
func (f *flakyLockout) Lockouts() map[string]int { return f.locks.Lockouts() }

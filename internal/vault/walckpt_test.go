package vault

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// ckptOps drives a deterministic mutation history — puts, replaces,
// deletes, lockout sets and clears — against d. from/to bound the
// versions so the same history can be split across a checkpoint.
func ckptOps(t *testing.T, d *Durable, from, to int) {
	t.Helper()
	for v := from; v < to; v++ {
		user := fmt.Sprintf("user-%02d", v%13)
		if err := d.Replace(versionedRecord(user, v)); err != nil {
			t.Fatal(err)
		}
		switch v % 7 {
		case 2:
			if err := d.SetLockout(user, v%5+1); err != nil {
				t.Fatal(err)
			}
		case 4:
			if err := d.SetLockout(user, 0); err != nil {
				t.Fatal(err)
			}
		case 5:
			d.Delete(fmt.Sprintf("user-%02d", (v+1)%13))
		}
	}
}

// saveBytes exports d's canonical JSON snapshot and returns its bytes.
func saveBytes(t *testing.T, d *Durable) []byte {
	t.Helper()
	path := filepath.Join(t.TempDir(), "snap.json")
	if err := d.SaveTo(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestCheckpointEquivalence: recovering from checkpoint + log tail
// must reproduce byte-identical state to both the live store it
// snapshotted and a control store that replayed the same history from
// a never-checkpointed full log.
func TestCheckpointEquivalence(t *testing.T) {
	opts := DurableOptions{Shards: 4, Sync: SyncNever, NoAutoCompact: true}
	d := openDurableT(t, opts)
	control := openDurableT(t, opts)

	ckptOps(t, d, 0, 120)
	ckptOps(t, control, 0, 120)
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	ckptOps(t, d, 120, 160)
	ckptOps(t, control, 120, 160)

	// The checkpoint actually happened: every shard rotated to a
	// marker-led log with its snapshot alongside.
	ckpts, err := filepath.Glob(filepath.Join(d.Dir(), "shard-*.ckpt"))
	if err != nil || len(ckpts) == 0 {
		t.Fatalf("no checkpoint files written (err %v)", err)
	}

	live := saveBytes(t, d)
	back := reopen(t, d)
	recovered := saveBytes(t, back)
	if string(recovered) != string(live) {
		t.Error("checkpoint+tail recovery diverged from the live state it snapshotted")
	}
	if got := saveBytes(t, control); string(got) != string(live) {
		t.Error("checkpointed store diverged from full-log control replaying the same history")
	}
	if locks, want := back.Lockouts(), control.Lockouts(); len(locks) != len(want) {
		t.Errorf("recovered %d lockouts, control has %d", len(locks), len(want))
	}
}

// TestCheckpointBoundsReplay: startup replay after a checkpoint is
// O(records appended since), independent of how much history came
// before — the point of checkpointing. Two stores with 10x different
// pre-checkpoint histories must replay the same small tail count.
func TestCheckpointBoundsReplay(t *testing.T) {
	const tail = 7
	replayed := func(history int) int {
		opts := DurableOptions{Shards: 1, Sync: SyncNever, NoAutoCompact: true}
		d := openDurableT(t, opts)
		ckptOps(t, d, 0, history)
		if err := d.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		ckptOps(t, d, history, history+tail)
		back := reopen(t, d)
		n := 0
		for i := range back.shards {
			n += back.shards[i].sinceCkpt // records replayed from the log at open
		}
		return n
	}
	small := replayed(60)
	large := replayed(600)
	if small != large {
		t.Errorf("replay count depends on pre-checkpoint history: %d (60-op history) vs %d (600-op history)", small, large)
	}
	// ckptOps appends at most 2 records per version (mutation +
	// lockout write); the tail must be bounded by that, nowhere near
	// the full history.
	if large > 2*tail {
		t.Errorf("replayed %d records after a checkpoint, want <= %d (the post-checkpoint tail)", large, 2*tail)
	}
}

// TestCheckpointCrashWindows copies the store directory at the two
// in-protocol crash points — via the test hooks between a checkpoint
// file's rename and the log rotation, and between a compacted log's
// rename and the stale-checkpoint removal — and proves each copy
// reopens to the full pre-crash state.
func TestCheckpointCrashWindows(t *testing.T) {
	t.Run("between-ckpt-and-rotation", func(t *testing.T) {
		opts := DurableOptions{Shards: 1, Sync: SyncNever, NoAutoCompact: true}
		d := openDurableT(t, opts)
		ckptOps(t, d, 0, 80)
		want := saveBytes(t, d)
		crash := t.TempDir()
		d.testCrashAfterCkptRename = func(int) { copyDir(t, d.Dir(), crash) }
		if err := d.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		back, err := OpenDurable(crash, opts)
		if err != nil {
			t.Fatalf("reopening the ckpt-but-no-rotation crash copy: %v", err)
		}
		defer back.Close()
		if got := saveBytes(t, back); string(got) != string(want) {
			t.Error("crash between checkpoint and rotation lost state")
		}
	})
	t.Run("ckpt-survives-log-tail-loss", func(t *testing.T) {
		// Same window, but the log's unsynced tail dies with the crash
		// (the fsynced checkpoint outlives SyncNever log bytes): the
		// checkpoint alone must reproduce its covered state.
		opts := DurableOptions{Shards: 1, Sync: SyncNever, NoAutoCompact: true}
		d := openDurableT(t, opts)
		ckptOps(t, d, 0, 80)
		want := saveBytes(t, d)
		crash := t.TempDir()
		d.testCrashAfterCkptRename = func(int) { copyDir(t, d.Dir(), crash) }
		if err := d.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		logPath := filepath.Join(crash, shardLogName(0))
		st, err := os.Stat(logPath)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(logPath, st.Size()/3); err != nil {
			t.Fatal(err)
		}
		back, err := OpenDurable(crash, opts)
		if err != nil {
			t.Fatalf("reopening with log torn below the checkpoint's coverage: %v", err)
		}
		defer back.Close()
		if got := saveBytes(t, back); string(got) != string(want) {
			t.Error("checkpoint did not stand in for its torn log coverage")
		}
		// And the reset log must keep working: append, reopen, check.
		if err := back.Replace(versionedRecord("user-00", 9999)); err != nil {
			t.Fatal(err)
		}
		again := reopen(t, back)
		rec, err := again.Get("user-00")
		if err != nil {
			t.Fatal(err)
		}
		if recordVersion(t, "post-reset", rec) != 9999 {
			t.Error("append after log reset lost on reopen")
		}
	})
	t.Run("between-compact-and-ckpt-removal", func(t *testing.T) {
		opts := DurableOptions{Shards: 1, Sync: SyncNever, NoAutoCompact: true}
		d := openDurableT(t, opts)
		ckptOps(t, d, 0, 60)
		if err := d.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		ckptOps(t, d, 60, 90)
		want := saveBytes(t, d)
		crash := t.TempDir()
		d.testCrashAfterCompactRename = func(int) { copyDir(t, d.Dir(), crash) }
		if err := d.Compact(); err != nil {
			t.Fatal(err)
		}
		// The crash copy holds a compacted (Full-marker) log plus the
		// stale checkpoint the crash kept alive; recovery must trust
		// the log and discard the checkpoint.
		if _, err := os.Stat(filepath.Join(crash, shardCkptName(0))); err != nil {
			t.Fatalf("crash copy should hold the stale checkpoint: %v", err)
		}
		back, err := OpenDurable(crash, opts)
		if err != nil {
			t.Fatalf("reopening the compact-crash copy: %v", err)
		}
		defer back.Close()
		if got := saveBytes(t, back); string(got) != string(want) {
			t.Error("crash between compaction and checkpoint removal lost state")
		}
		if _, err := os.Stat(filepath.Join(crash, shardCkptName(0))); !os.IsNotExist(err) {
			t.Errorf("stale checkpoint behind a Full marker not removed at open (err %v)", err)
		}
	})
}

// TestCheckpointRefusesPartialState: recovery must fail loudly rather
// than open with silently missing records when the checkpoint a
// rotated log depends on is gone, or names a different lineage.
func TestCheckpointRefusesPartialState(t *testing.T) {
	opts := DurableOptions{Shards: 1, Sync: SyncNever, NoAutoCompact: true}
	t.Run("missing-checkpoint", func(t *testing.T) {
		d := openDurableT(t, opts)
		ckptOps(t, d, 0, 40)
		if err := d.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		dir := d.Dir()
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}
		if err := os.Remove(filepath.Join(dir, shardCkptName(0))); err != nil {
			t.Fatal(err)
		}
		_, err := OpenDurable(dir, opts)
		if err == nil || !strings.Contains(err.Error(), "refusing") {
			t.Fatalf("open with missing checkpoint: got %v, want loud refusal", err)
		}
	})
	t.Run("lineage-mismatch", func(t *testing.T) {
		d := openDurableT(t, opts)
		ckptOps(t, d, 0, 40)
		if err := d.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		dir := d.Dir()
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}
		// Rewrite the checkpoint as if it belonged to some other log
		// generation entirely.
		path := filepath.Join(dir, shardCkptName(0))
		ck, err := loadCkpt(path)
		if err != nil {
			t.Fatal(err)
		}
		ck.ID = ck.ID + 1
		ck.BaseLogID = ck.ID + 2
		data, err := json.Marshal(ck)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o600); err != nil {
			t.Fatal(err)
		}
		_, err = OpenDurable(dir, opts)
		if err == nil || !strings.Contains(err.Error(), "refusing") {
			t.Fatalf("open with mismatched checkpoint lineage: got %v, want loud refusal", err)
		}
	})
}

// TestCheckpointPeriodic: the background checkpointer rotates busy
// shards on its own once they cross the configured minimum delta.
func TestCheckpointPeriodic(t *testing.T) {
	d := openDurableT(t, DurableOptions{
		Shards: 1, Sync: SyncNever, NoAutoCompact: true,
		CheckpointEvery: 5 * time.Millisecond,
		CheckpointMin:   10,
	})
	ckptOps(t, d, 0, 60)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := os.Stat(filepath.Join(d.Dir(), shardCkptName(0))); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background checkpointer never snapshotted a busy shard")
		}
		time.Sleep(time.Millisecond)
	}
	want := saveBytes(t, d)
	back := reopen(t, d)
	if got := saveBytes(t, back); string(got) != string(want) {
		t.Error("state diverged across a background checkpoint and reopen")
	}
}

package vault

import "clickpass/internal/passpoints"

// Store is the narrow interface the authentication server and tools
// program against: a keyed collection of PassPoints records with an
// atomic snapshot-to-disk operation. Two implementations ship with the
// package — the single-lock file-backed Vault and the fnv-keyed
// Sharded store whose reads scale with cores — and the contract is
// enforced by a shared conformance test (storetest in sharded_test.go)
// rather than by each caller's assumptions.
//
// All implementations must be safe for concurrent use. Get returns
// ErrNotFound for missing users; Put returns ErrExists for duplicates;
// Delete of a missing user is a no-op.
type Store interface {
	// Put stores a record for a new user.
	Put(rec *passpoints.Record) error
	// Replace stores a record, overwriting any existing one.
	Replace(rec *passpoints.Record) error
	// Get returns the record for user, or ErrNotFound.
	Get(user string) (*passpoints.Record, error)
	// Delete removes a user's record; missing users are not an error.
	Delete(user string)
	// Users returns all user names in sorted order.
	Users() []string
	// Len returns the number of records.
	Len() int
	// All returns every record sorted by user.
	All() []*passpoints.Record
	// Save writes the store to its backing file atomically; it fails
	// for purely in-memory stores.
	Save() error
	// SaveTo writes the store to the given path atomically.
	SaveTo(path string) error
}

// Both implementations must satisfy the interface.
var (
	_ Store = (*Vault)(nil)
	_ Store = (*Sharded)(nil)
)

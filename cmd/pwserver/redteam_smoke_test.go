package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"clickpass/internal/attack"
	"clickpass/internal/authsvc"
	"clickpass/internal/core"
	"clickpass/internal/dataset"
	"clickpass/internal/imagegen"
	"clickpass/internal/loadtest"
	"clickpass/internal/replay"
	"clickpass/internal/scenario"
	"clickpass/internal/study"
)

// TestRedteamSmoke is the end-to-end attack drill the CI redteam-smoke
// job runs: build the real pwserver binary, start a quorum primary and
// a follower as separate processes, stream-enroll a cohort through the
// wire, run phase one of the saliency-ordered attack against the
// primary, SIGKILL it mid-campaign, promote the follower, and finish
// the attack on the survivor. The combined compromise set must match
// the in-process replay model exactly, and — the point of the drill —
// the survivor must have re-adopted every lockout counter the attacker
// burned on the dead primary: accounts lock after exactly the
// remaining budget, never the full one, down to a locked account
// refusing its own correct password. A survivor that reset counters
// would hand every attacker a fresh budget on each failover.
func TestRedteamSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills real server binaries; skipped in -short")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "pwserver")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building pwserver: %v\n%s", err, out)
	}
	var (
		pRepl  = fmt.Sprintf("127.0.0.1:%d", pickPort(t))
		fRepl  = fmt.Sprintf("127.0.0.1:%d", pickPort(t))
		fAdmin = fmt.Sprintf("127.0.0.1:%d", pickPort(t))
	)
	// startPwserver bakes -lockout 5: a five-guess budget per account,
	// split two guesses before the kill and three after.
	const (
		lockout = 5
		phase1N = 2
	)

	// Quorum acks on the primary are what make the drill sound: every
	// denial the attacker is charged for is fsynced on the follower
	// before the attacker sees the response, so the kill cannot lose
	// budget the assertions below depend on.
	pAddr, killPrimary := startPwserver(t, bin, filepath.Join(dir, "vault-a.d"),
		"-role", "primary", "-repl-listen", pRepl, "-repl-ack", "quorum")
	fAddr, killFollower := startPwserver(t, bin, filepath.Join(dir, "vault-b.d"),
		"-role", "follower", "-repl-primary", pRepl, "-repl-listen", fRepl,
		"-repl-ack", "async", "-metrics", fAdmin)
	defer killFollower()

	// Victims: a streamed cohort, with the attacker's #2 and #4 guesses
	// planted over two of its passwords so one account falls in each
	// phase. The materialized twin (byte-identical to the stream by the
	// scenario package's golden tests) is what the replay model runs on.
	img := imagegen.Cars()
	ccfg := study.DefaultCohort(img, 23)
	ccfg.Participants = 6
	twin, err := study.RunCohort(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	lab, err := study.Run(study.LabConfig(img, 91))
	if err != nil {
		t.Fatal(err)
	}
	order, err := attack.GuessOrder(lab, img)
	if err != nil {
		t.Fatal(err)
	}
	if len(order) < lockout {
		t.Fatalf("guess stream has %d entries, want >= %d", len(order), lockout)
	}
	order = order[:lockout]
	if len(twin.Passwords) < 5 {
		t.Fatalf("cohort generated only %d passwords", len(twin.Passwords))
	}
	planted := map[string][]dataset.Click{}
	for _, pl := range []struct{ pw, guess int }{{1, 1}, {3, 3}} {
		clicks := make([]dataset.Click, len(order[pl.guess]))
		for j, p := range order[pl.guess] {
			clicks[j] = dataset.FromPoint(p)
		}
		twin.Passwords[pl.pw].Clicks = clicks
		planted[scenario.AccountName(twin.Passwords[pl.pw].ID)] = clicks
	}

	// The model: for every account, the first guess depth the server's
	// scheme would accept (pwserver defaults: centered, side 13). This
	// decides phase membership and every expected counter below.
	scheme, err := core.NewCentered(13)
	if err != nil {
		t.Fatal(err)
	}
	set := replay.Compile(twin, scheme)
	firstHit := make([]int, set.Len())
	for i := range firstHit {
		firstHit[i] = -1
		for k := range order {
			if set.Accepts(i, order[k]) {
				firstHit[i] = k
				break
			}
		}
	}
	if firstHit[1] != 1 || firstHit[3] != 3 {
		t.Fatalf("planted guesses do not hit at depths 1 and 3 (got %d, %d); corpus drifted", firstHit[1], firstHit[3])
	}

	// Stream the cohort into the primary, substituting the plants in
	// flight — the enrollment path is the real streamed one, and the
	// first quorum-acked enroll doubles as the follower attach barrier.
	stream := func(emit func(string, []dataset.Click) error) error {
		return scenario.CohortAccounts(ccfg)(func(user string, clicks []dataset.Click) error {
			if pc, ok := planted[user]; ok {
				clicks = pc
			}
			return emit(user, clicks)
		})
	}
	cfg := scenario.Config{Dial: loadtest.TCPTransport(pAddr, 5*time.Second), Workers: 2}
	users, err := scenario.EnrollStream(cfg, stream)
	if err != nil {
		t.Fatal(err)
	}
	if len(users) != len(twin.Passwords) {
		t.Fatalf("enrolled %d accounts, cohort has %d", len(users), len(twin.Passwords))
	}

	guesses, err := scenario.Guesses(lab, img, lockout)
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: the first two guesses against the primary.
	rep1, err := scenario.RedTeam(cfg, users, guesses[:phase1N])
	if err != nil {
		t.Fatal(err)
	}
	var comp1 int
	var denied1 int64
	for _, h := range firstHit {
		if h >= 0 && h < phase1N {
			comp1++
			denied1 += int64(h)
		} else {
			denied1 += phase1N
		}
	}
	if rep1.Compromised != comp1 || comp1 < 1 {
		t.Fatalf("phase 1 compromised %d accounts, model says %d", rep1.Compromised, comp1)
	}
	if rep1.Denied != denied1 || rep1.Locked != 0 || rep1.Incomplete != 0 {
		t.Fatalf("phase 1 denied=%d locked=%d incomplete=%d, want denied=%d locked=0 incomplete=0",
			rep1.Denied, rep1.Locked, rep1.Incomplete, denied1)
	}

	killPrimary() // SIGKILL mid-campaign: no drain, no fence, no goodbye

	promote, err := http.Post("http://"+fAdmin+"/v1/promote", "application/json", nil)
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	var pr struct {
		OK bool `json:"ok"`
	}
	if err := json.NewDecoder(promote.Body).Decode(&pr); err != nil || promote.StatusCode != http.StatusOK || !pr.OK {
		t.Fatalf("promote response: status=%d body=%+v err=%v", promote.StatusCode, pr, err)
	}
	promote.Body.Close()

	// Phase 2: the remaining three guesses, against the survivor, on the
	// accounts phase 1 did not crack. Every such account already burned
	// two failures on the dead primary; with the counters re-adopted the
	// budget left is lockout-2 = 3, so an uncompromised account eats
	// exactly two more denials and then locks on its fifth failure. A
	// survivor that reset the counters would instead answer three
	// denials and lock nobody.
	var (
		phase2Users []string
		comp2       int
		denied2     int64
		wantLocked  int
		lockedProbe = -1 // twin index of one account that must end locked
	)
	for i, u := range users {
		h := firstHit[i]
		if h >= 0 && h < phase1N {
			continue
		}
		phase2Users = append(phase2Users, u)
		if h >= phase1N {
			comp2++
			denied2 += int64(h - phase1N)
		} else {
			denied2 += int64(lockout - phase1N - 1)
			wantLocked++
			lockedProbe = i
		}
	}
	if comp2 < 1 || wantLocked < 1 {
		t.Fatalf("model gives phase 2 %d compromises and %d lockouts; corpus too weak", comp2, wantLocked)
	}
	fCfg := scenario.Config{Dial: loadtest.TCPTransport(fAddr, 5*time.Second), Workers: 2}
	rep2, err := scenario.RedTeam(fCfg, phase2Users, guesses[phase1N:])
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Compromised != comp2 {
		t.Errorf("phase 2 compromised %d accounts on the survivor, model says %d", rep2.Compromised, comp2)
	}
	if rep2.Locked != wantLocked {
		t.Errorf("phase 2 locked %d accounts, want %d — the survivor did not re-adopt the burned lockout counters", rep2.Locked, wantLocked)
	}
	if rep2.Denied != denied2 {
		t.Errorf("phase 2 denied = %d, want %d — the attacker got fresh budget from the failover", rep2.Denied, denied2)
	}
	if rep2.Incomplete != 0 {
		t.Errorf("%d accounts incomplete on the survivor", rep2.Incomplete)
	}

	// The campaign total equals the model's: the failover neither hid
	// nor manufactured compromises.
	var compModel int
	for _, h := range firstHit {
		if h >= 0 {
			compModel++
		}
	}
	if got := rep1.Compromised + rep2.Compromised; got != compModel {
		t.Errorf("campaign compromised %d accounts across the failover, model says %d", got, compModel)
	}

	// Zero fresh budget, sharpest form: a locked account refuses its
	// own CORRECT password on the survivor.
	probe := twin.Passwords[lockedProbe]
	cli, err := fCfg.Dial(0)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	resp, err := authsvc.Ops{Doer: cli}.Login(context.Background(), scenario.AccountName(probe.ID), probe.Clicks)
	if err != nil || resp.Code != authsvc.CodeLocked {
		t.Errorf("locked account accepted its correct password on the survivor: %+v %v", resp, err)
	}
}

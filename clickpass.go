// Package clickpass is a click-based graphical password library
// implementing Centered Discretization (Chiasson, Srinivasan, Biddle,
// van Oorschot — USENIX UPSEC 2008) together with the Robust
// Discretization baseline it improves upon.
//
// A password is an ordered sequence of clicks on an image. The library
// discretizes each click so that approximately-correct re-entries hash
// to the same verifier as the original, stores only salted iterated
// hashes plus the per-point grid identifiers, and guarantees — under
// Centered Discretization — that the acceptance region is a square of
// the configured tolerance exactly centered on each original click:
// no false accepts, no false rejects.
//
// Quick start:
//
//	auth, err := clickpass.New(clickpass.Options{
//		ImageW: 451, ImageH: 331,
//		Clicks: 5, SquareSide: 13, // tolerance ±6 pixels
//	})
//	rec, err := auth.Enroll("alice", clicks)
//	ok, err := auth.Verify(rec, loginClicks)
//
// See examples/ for runnable programs and cmd/pwstudy for the
// reproduction of the paper's evaluation.
package clickpass

import (
	"fmt"

	"clickpass/internal/core"
	"clickpass/internal/geom"
	"clickpass/internal/passpoints"
	"clickpass/internal/space"
)

// Point is one click at pixel granularity, origin top-left.
type Point struct {
	X, Y int
}

// Kind selects a discretization scheme.
type Kind string

// Available schemes.
const (
	// Centered is the paper's contribution: per-point offset grids,
	// squares of SquareSide pixels exactly centered on each original
	// click. The default.
	Centered Kind = "centered"
	// Robust is Birget et al.'s three-offset-grid baseline, provided
	// for comparison; its tolerance region is usually off-center
	// (accepting up to 5r away while rejecting as near as r+1).
	Robust Kind = "robust"
)

// Options configures an Authenticator.
type Options struct {
	// ImageW, ImageH are the background image dimensions in pixels.
	ImageW, ImageH int
	// Clicks is the number of click-points per password (default 5).
	Clicks int
	// SquareSide is the grid-square side in pixels (default 13, i.e.
	// a ±6 pixel centered tolerance). Under Robust the guaranteed
	// tolerance is SquareSide/6 instead.
	SquareSide int
	// Scheme selects the discretization scheme (default Centered).
	Scheme Kind
	// HashIterations is the iterated-hash count (default 1000,
	// adding ~10 bits of offline attack cost).
	HashIterations int
}

// Authenticator enrolls and verifies graphical passwords. It is safe
// for concurrent use.
type Authenticator struct {
	cfg passpoints.Config
}

// Record is a stored password verifier: clear grid identifiers, salt,
// iteration count, and digest. Serialize with Marshal; restore with
// UnmarshalRecord.
type Record = passpoints.Record

// UnmarshalRecord decodes a Record produced by Record.Marshal.
func UnmarshalRecord(data []byte) (*Record, error) {
	return passpoints.UnmarshalRecord(data)
}

// New validates options and builds an Authenticator.
func New(opts Options) (*Authenticator, error) {
	if opts.Clicks == 0 {
		opts.Clicks = passpoints.DefaultClicks
	}
	if opts.SquareSide == 0 {
		opts.SquareSide = 13
	}
	if opts.Scheme == "" {
		opts.Scheme = Centered
	}
	var (
		scheme core.Scheme
		err    error
	)
	switch opts.Scheme {
	case Centered:
		scheme, err = core.NewCentered(opts.SquareSide)
	case Robust:
		scheme, err = core.NewRobust2D(opts.SquareSide, core.MostCentered, 0)
	default:
		return nil, fmt.Errorf("clickpass: unknown scheme %q", opts.Scheme)
	}
	if err != nil {
		return nil, err
	}
	cfg := passpoints.Config{
		Image:      geom.Size{W: opts.ImageW, H: opts.ImageH},
		Clicks:     opts.Clicks,
		Scheme:     scheme,
		Iterations: opts.HashIterations,
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Authenticator{cfg: cfg}, nil
}

// Enroll creates the stored record for a new password.
func (a *Authenticator) Enroll(user string, clicks []Point) (*Record, error) {
	return passpoints.Enroll(a.cfg, user, toGeom(clicks))
}

// Verify checks a login attempt against a record. A false return with
// nil error is a failed login; errors indicate malformed input.
func (a *Authenticator) Verify(rec *Record, clicks []Point) (bool, error) {
	return passpoints.Verify(a.cfg, rec, toGeom(clicks))
}

// GuaranteedTolerancePx returns the minimum tolerance in pixels
// guaranteed around every original click-point (6 for a Centered 13x13
// configuration; SquareSide/6 for Robust).
func (a *Authenticator) GuaranteedTolerancePx() float64 {
	return a.cfg.Scheme.GuaranteedR().Float()
}

// MaxAcceptedPx returns the largest displacement in pixels that can
// ever be accepted: equal to the guaranteed tolerance for Centered,
// 5x the guaranteed tolerance for Robust (the paper's rmax).
func (a *Authenticator) MaxAcceptedPx() float64 {
	return a.cfg.Scheme.MaxAccepted().Float()
}

// PasswordSpaceBits returns the theoretical full password space of
// this configuration in bits (paper Table 3).
func (a *Authenticator) PasswordSpaceBits() (float64, error) {
	side := int(a.cfg.Scheme.SquareSide().Pixels())
	return space.PasswordSpaceBits(a.cfg.Image, side, a.cfg.Clicks)
}

// GridIdentifierBits returns how many bits of information the stored
// clear-text grid identifiers reveal per click (paper §5.2): log2(3)
// for Robust, log2(SquareSide^2) for Centered.
func (a *Authenticator) GridIdentifierBits() float64 {
	return a.cfg.Scheme.ClearBits()
}

func toGeom(clicks []Point) []geom.Point {
	pts := make([]geom.Point, len(clicks))
	for i, c := range clicks {
		pts[i] = geom.Pt(c.X, c.Y)
	}
	return pts
}

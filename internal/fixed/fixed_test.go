package fixed

import (
	"testing"
	"testing/quick"
)

func TestFromPixels(t *testing.T) {
	cases := []struct {
		px   int
		want Sub
	}{
		{0, 0}, {1, 6}, {-1, -6}, {451, 2706}, {640, 3840},
	}
	for _, c := range cases {
		if got := FromPixels(c.px); got != c.want {
			t.Errorf("FromPixels(%d) = %d, want %d", c.px, got, c.want)
		}
	}
}

func TestFromHalfPixels(t *testing.T) {
	cases := []struct {
		hp   int
		want Sub
	}{
		{0, 0}, {1, 3}, {13, 39}, {-3, -9},
	}
	for _, c := range cases {
		if got := FromHalfPixels(c.hp); got != c.want {
			t.Errorf("FromHalfPixels(%d) = %d, want %d", c.hp, got, c.want)
		}
	}
}

func TestFloorDiv(t *testing.T) {
	cases := []struct {
		a, b, want int64
	}{
		{7, 2, 3},
		{-7, 2, -4},
		{6, 3, 2},
		{-6, 3, -2},
		{0, 5, 0},
		{-1, 11, -1},
		{13, 11, 1},
		{-13, 11, -2},
	}
	for _, c := range cases {
		if got := FloorDiv(c.a, c.b); got != c.want {
			t.Errorf("FloorDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestMod(t *testing.T) {
	cases := []struct {
		a, b, want int64
	}{
		{7, 2, 1},
		{-7, 2, 1},
		{-1, 11, 10},
		{0, 11, 0},
		{22, 11, 0},
		{-22, 11, 0},
	}
	for _, c := range cases {
		if got := Mod(c.a, c.b); got != c.want {
			t.Errorf("Mod(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// Property: a == b*FloorDiv(a,b) + Mod(a,b) and 0 <= Mod(a,b) < b.
func TestDivModIdentity(t *testing.T) {
	f := func(a int32, bRaw uint8) bool {
		b := int64(bRaw%200) + 1
		q := FloorDiv(int64(a), b)
		m := Mod(int64(a), b)
		return int64(a) == b*q+m && m >= 0 && m < b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseTolerance(t *testing.T) {
	cases := []struct {
		in      string
		want    Sub
		wantErr bool
	}{
		{"6", 36, false},
		{"6.5", 39, false},
		{"9.5", 57, false},
		{"0", 0, false},
		{" 4 ", 24, false},
		{"6.25", 0, true},
		{"-3", 0, true},
		{"abc", 0, true},
		{"6.333", 0, true},
	}
	for _, c := range cases {
		got, err := ParseTolerance(c.in)
		if (err != nil) != c.wantErr {
			t.Errorf("ParseTolerance(%q) err = %v, wantErr=%v", c.in, err, c.wantErr)
			continue
		}
		if err == nil && got != c.want {
			t.Errorf("ParseTolerance(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestString(t *testing.T) {
	cases := []struct {
		in   Sub
		want string
	}{
		{FromPixels(6), "6"},
		{FromHalfPixels(13), "6.5"},
		{FromPixels(-2), "-2"},
		{Sub(13), "2+1/6"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestPredicates(t *testing.T) {
	if !FromPixels(3).IsWholePixels() {
		t.Error("3px should be whole")
	}
	if FromHalfPixels(7).IsWholePixels() {
		t.Error("3.5px should not be whole")
	}
	if !FromHalfPixels(7).IsHalfPixels() {
		t.Error("3.5px should be half-pixel aligned")
	}
	if Sub(1).IsHalfPixels() {
		t.Error("1/6px should not be half-pixel aligned")
	}
}

func TestAbsMinMax(t *testing.T) {
	if Sub(-5).Abs() != 5 || Sub(5).Abs() != 5 {
		t.Error("Abs broken")
	}
	if Min(2, 3) != 2 || Max(2, 3) != 3 {
		t.Error("Min/Max broken")
	}
}

func TestPixelsFloat(t *testing.T) {
	if FromHalfPixels(13).Pixels() != 6 {
		t.Errorf("6.5px truncates to 6, got %d", FromHalfPixels(13).Pixels())
	}
	if Sub(-1).Pixels() != -1 {
		t.Errorf("-1/6px floors to -1, got %d", Sub(-1).Pixels())
	}
	if FromHalfPixels(13).Float() != 6.5 {
		t.Error("Float conversion broken")
	}
}

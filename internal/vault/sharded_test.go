package vault

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"clickpass/internal/passpoints"
)

// storeImpl is one Store implementation under conformance test.
// persistent marks backends whose in-memory form still has real
// backing storage (Save must succeed rather than fail).
type storeImpl struct {
	name       string
	mk         func(tb testing.TB) Store
	persistent bool
}

// storeImpls enumerates every Store implementation so the conformance
// tests below run identically over all of them; a new backend only
// has to add a row here.
func storeImpls() []storeImpl {
	return []storeImpl{
		{"vault", func(testing.TB) Store { return New() }, false},
		{"sharded", func(testing.TB) Store { return NewSharded(8) }, false},
		// Degenerate single-shard stores must still be correct.
		{"sharded1", func(testing.TB) Store { return NewSharded(1) }, false},
		{"durable", func(tb testing.TB) Store { return openDurableT(tb, DurableOptions{Shards: 8}) }, true},
		{"durable1", func(tb testing.TB) Store { return openDurableT(tb, DurableOptions{Shards: 1}) }, true},
	}
}

// openDurableT opens a Durable store in a fresh temp dir and closes it
// when the test ends.
func openDurableT(tb testing.TB, opts DurableOptions) *Durable {
	tb.Helper()
	d, err := OpenDurable(tb.TempDir(), opts)
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { d.Close() })
	return d
}

// TestStoreConformance runs the Store contract over every
// implementation: Put/Get/Replace/Delete semantics, sorted iteration,
// and the sentinel errors callers branch on.
func TestStoreConformance(t *testing.T) {
	for _, impl := range storeImpls() {
		t.Run(impl.name, func(t *testing.T) {
			s := impl.mk(t)
			if s.Len() != 0 || len(s.Users()) != 0 || len(s.All()) != 0 {
				t.Fatal("fresh store not empty")
			}
			if _, err := s.Get("nobody"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Get on empty store = %v, want ErrNotFound", err)
			}
			if err := s.Put(nil); err == nil {
				t.Error("nil record accepted")
			}
			if err := s.Put(&passpoints.Record{}); err == nil {
				t.Error("record without user accepted")
			}
			if err := s.Replace(nil); err == nil {
				t.Error("Replace nil accepted")
			}

			for _, u := range []string{"zoe", "alice", "mike"} {
				if err := s.Put(testRecord(t, u)); err != nil {
					t.Fatal(err)
				}
			}
			if err := s.Put(testRecord(t, "alice")); !errors.Is(err, ErrExists) {
				t.Errorf("duplicate Put = %v, want ErrExists", err)
			}
			if s.Len() != 3 {
				t.Errorf("Len = %d, want 3", s.Len())
			}
			want := []string{"alice", "mike", "zoe"}
			users := s.Users()
			all := s.All()
			if len(users) != len(want) || len(all) != len(want) {
				t.Fatalf("Users = %v, All len = %d", users, len(all))
			}
			for i := range want {
				if users[i] != want[i] || all[i].User != want[i] {
					t.Fatalf("iteration not sorted: Users = %v", users)
				}
			}

			r2 := testRecord(t, "alice")
			if err := s.Replace(r2); err != nil {
				t.Fatal(err)
			}
			got, err := s.Get("alice")
			if err != nil || string(got.Salt) != string(r2.Salt) {
				t.Error("Replace did not overwrite")
			}

			s.Delete("alice")
			if _, err := s.Get("alice"); !errors.Is(err, ErrNotFound) {
				t.Errorf("Get after delete = %v, want ErrNotFound", err)
			}
			s.Delete("alice") // idempotent
			if s.Len() != 2 {
				t.Errorf("Len after delete = %d, want 2", s.Len())
			}

			if err := s.SaveTo(filepath.Join(t.TempDir(), "out.json")); err != nil {
				t.Errorf("SaveTo: %v", err)
			}
		})
	}
}

// TestStoreInMemorySaveFails: Save without a backing file must fail —
// except on persistent backends (Durable), whose logs are the backing
// file, so Save reduces to a flush and must succeed.
func TestStoreInMemorySaveFails(t *testing.T) {
	for _, impl := range storeImpls() {
		err := impl.mk(t).Save()
		if impl.persistent && err != nil {
			t.Errorf("%s: Save on persistent store failed: %v", impl.name, err)
		}
		if !impl.persistent && err == nil {
			t.Errorf("%s: Save on in-memory store should fail", impl.name)
		}
	}
}

// TestShardedFileInterop: the two backends share one on-disk format —
// a file saved by either must load into the other byte-identically.
func TestShardedFileInterop(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "vault.json")

	sh, err := OpenSharded(path, 4)
	if err != nil {
		t.Fatal(err)
	}
	if sh.Len() != 0 {
		t.Fatal("fresh sharded store not empty")
	}
	for i := 0; i < 20; i++ {
		if err := sh.Put(testRecord(t, fmt.Sprintf("user-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := sh.Save(); err != nil {
		t.Fatal(err)
	}

	// Sharded -> Vault.
	v, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != 20 {
		t.Fatalf("vault loaded %d records, want 20", v.Len())
	}
	// Vault -> Sharded with a different shard count.
	back, err := OpenSharded(path, 7)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 20 {
		t.Fatalf("sharded reloaded %d records, want 20", back.Len())
	}
	rec, err := back.Get("user-07")
	if err != nil || rec.Kind != passpoints.KindCentered {
		t.Fatalf("round-trip mangled record: %v %v", rec, err)
	}
	// Canonical encoding: saving the reloaded store must reproduce the
	// file byte-for-byte regardless of shard count.
	path2 := filepath.Join(dir, "again.json")
	if err := back.SaveTo(path2); err != nil {
		t.Fatal(err)
	}
	b1, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(path2)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Error("save is not canonical across shard counts")
	}
}

// TestOpenShardedRejectsCorruptFiles mirrors the vault corruption
// table for the sharded loader (same parser, but the wiring could
// regress independently).
func TestOpenShardedRejectsCorruptFiles(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"garbage":   "not json at all",
		"no user":   `[{"kind":"centered","square_side_px":13}]`,
		"dup user":  `[{"user":"a","square_side_px":13},{"user":"a","square_side_px":13}]`,
		"null rec":  `[null]`,
		"truncated": `[{"user":"a","square_side_px":13}`,
	}
	for name, content := range cases {
		path := filepath.Join(dir, name+".json")
		if err := os.WriteFile(path, []byte(content), 0o600); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenSharded(path, 4); err == nil {
			t.Errorf("%s: OpenSharded accepted corrupt file", name)
		}
	}
}

// TestShardedDistribution: users must actually spread across shards —
// a broken hash that funnels everything into one shard would still
// pass the functional tests but serialize all traffic.
func TestShardedDistribution(t *testing.T) {
	s := NewSharded(8)
	for i := 0; i < 256; i++ {
		if err := s.Put(testRecord(t, fmt.Sprintf("user-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	occupied := 0
	for i := range s.shards {
		if len(s.shards[i].records) > 0 {
			occupied++
		}
	}
	if occupied < len(s.shards)/2 {
		t.Errorf("256 users landed in only %d/%d shards", occupied, len(s.shards))
	}
	if s.Shards() != 8 {
		t.Errorf("Shards() = %d", s.Shards())
	}
}

// TestShardedSnapshotCompact: Snapshot returns every record (order
// unspecified) and Compact rewrites the backing file canonically.
func TestShardedSnapshotCompact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "vault.json")
	s, err := OpenSharded(path, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range []string{"c", "a", "b"} {
		if err := s.Put(testRecord(t, u)); err != nil {
			t.Fatal(err)
		}
	}
	snap := s.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("Snapshot returned %d records, want 3", len(snap))
	}
	seen := map[string]bool{}
	for _, r := range snap {
		seen[r.User] = true
	}
	if !seen["a"] || !seen["b"] || !seen["c"] {
		t.Errorf("Snapshot missing users: %v", seen)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	back, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 3 {
		t.Errorf("compacted file has %d records, want 3", back.Len())
	}
	// Compact on an in-memory store fails like Save.
	if err := NewSharded(2).Compact(); err == nil {
		t.Error("Compact on in-memory store should fail")
	}
}

// TestShardedConcurrentStress hammers every operation class across
// shards from many goroutines — create/get/delete/save plus the
// cross-shard snapshots — and is the test the -race CI lane leans on
// for the sharded store.
func TestShardedConcurrentStress(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSharded(filepath.Join(dir, "stress.json"), 8)
	if err != nil {
		t.Fatal(err)
	}
	rec := testRecord(t, "seed")
	if err := s.Put(rec); err != nil {
		t.Fatal(err)
	}
	const (
		workers = 16
		iters   = 50
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Records are immutable once stored, so sharing one across
			// writers is safe; each worker owns a distinct user name.
			mine := *rec
			mine.User = fmt.Sprintf("w%d", w)
			for i := 0; i < iters; i++ {
				switch i % 5 {
				case 0:
					_ = s.Replace(&mine)
				case 1:
					_, _ = s.Get(mine.User)
					_, _ = s.Get("seed")
				case 2:
					_ = s.Len()
					_ = len(s.Snapshot())
				case 3:
					if w%4 == 0 {
						// Save concurrently with writers: must not race and
						// must write some consistent snapshot.
						if err := s.SaveTo(filepath.Join(dir, fmt.Sprintf("snap-%d.json", w))); err != nil {
							t.Error(err)
						}
					} else {
						_ = s.Users()
					}
				case 4:
					s.Delete(mine.User)
				}
			}
		}(w)
	}
	wg.Wait()
	if _, err := s.Get("seed"); err != nil {
		t.Errorf("seed record lost during stress: %v", err)
	}
	// Every snapshot file written mid-stress must parse as a valid
	// vault (atomicity: readers never observe a partial write).
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if _, err := Open(filepath.Join(dir, e.Name())); err != nil {
			t.Errorf("stress snapshot %s unreadable: %v", e.Name(), err)
		}
	}
}

package core

import (
	"fmt"

	"clickpass/internal/fixed"
)

// Centered1D performs Centered Discretization on a single axis with
// tolerance R (sub-pixel units). The zero value is invalid; R must be
// positive.
type Centered1D struct {
	R fixed.Sub
}

// SegLen returns the segment length 2r.
func (c Centered1D) SegLen() fixed.Sub { return 2 * c.R }

// Discretize splits an original coordinate x into its segment index i
// (the secret, hashed part) and grid offset d in [0, 2r) (stored in the
// clear). The original point lies exactly r from the left boundary of
// segment i.
func (c Centered1D) Discretize(x fixed.Sub) (i int64, d fixed.Sub) {
	seg := int64(c.SegLen())
	i = fixed.FloorDiv(int64(x-c.R), seg)
	d = fixed.Sub(fixed.Mod(int64(x-c.R), seg))
	return i, d
}

// Locate computes the segment index that contains a re-entered
// coordinate x' under the offset d fixed at enrollment:
// i' = floor((x'-d)/2r).
func (c Centered1D) Locate(x fixed.Sub, d fixed.Sub) int64 {
	return fixed.FloorDiv(int64(x-d), int64(c.SegLen()))
}

// Accepts reports whether re-entry x' falls in the same segment as the
// original point with index i and offset d. Equivalent to
// x' in [x-r, x+r) where x is the original coordinate.
func (c Centered1D) Accepts(i int64, d fixed.Sub, x fixed.Sub) bool {
	return c.Locate(x, d) == i
}

// Segment returns the half-open interval [lo, hi) of segment i under
// offset d.
func (c Centered1D) Segment(i int64, d fixed.Sub) (lo, hi fixed.Sub) {
	lo = fixed.Sub(i*int64(c.SegLen())) + d
	return lo, lo + c.SegLen()
}

// Center returns the reconstructed original coordinate: the midpoint of
// segment i under offset d. Centering is the scheme's defining
// property: Discretize(x) followed by Center yields x exactly.
func (c Centered1D) Center(i int64, d fixed.Sub) fixed.Sub {
	lo, _ := c.Segment(i, d)
	return lo + c.R
}

// OffsetCount returns the number of distinct offsets d observable for
// integer-pixel inputs — (2r) in pixel units — which determines the
// information revealed by the clear-text grid identifier (paper §5.2).
// It panics if 2r is not a whole number of pixels (the only deployable
// configuration for pixel inputs).
func (c Centered1D) OffsetCount() int64 {
	seg := c.SegLen()
	if !seg.IsWholePixels() {
		panic(fmt.Sprintf("core: segment length %s is not a whole number of pixels", seg))
	}
	return int64(seg) / fixed.Scale
}

// CenteredND applies Centered Discretization independently to each of
// Dims axes (paper §3.2): a 2-D click-point or a point in a 3-D scene
// is discretized coordinate by coordinate.
type CenteredND struct {
	R    fixed.Sub
	Dims int
}

// Validate returns an error if the configuration is unusable.
func (c CenteredND) Validate() error {
	if c.R <= 0 {
		return fmt.Errorf("core: tolerance r=%s must be positive", c.R)
	}
	if c.Dims <= 0 {
		return fmt.Errorf("core: dims=%d must be positive", c.Dims)
	}
	return nil
}

// Discretize maps an n-dimensional original point to per-axis segment
// indices (secret) and offsets (clear). It panics if len(coords) does
// not match Dims.
func (c CenteredND) Discretize(coords []fixed.Sub) (idx []int64, off []fixed.Sub) {
	c.checkLen(len(coords))
	ax := Centered1D{R: c.R}
	idx = make([]int64, c.Dims)
	off = make([]fixed.Sub, c.Dims)
	for k, x := range coords {
		idx[k], off[k] = ax.Discretize(x)
	}
	return idx, off
}

// Locate maps a re-entered n-dimensional point to per-axis segment
// indices under enrollment offsets off.
func (c CenteredND) Locate(coords []fixed.Sub, off []fixed.Sub) []int64 {
	c.checkLen(len(coords))
	c.checkLen(len(off))
	ax := Centered1D{R: c.R}
	idx := make([]int64, c.Dims)
	for k, x := range coords {
		idx[k] = ax.Locate(x, off[k])
	}
	return idx
}

// Accepts reports whether every axis of the candidate falls in the
// enrolled segment — i.e. the candidate is within the centered
// tolerance box of the original point.
func (c CenteredND) Accepts(idx []int64, off []fixed.Sub, coords []fixed.Sub) bool {
	got := c.Locate(coords, off)
	for k := range got {
		if got[k] != idx[k] {
			return false
		}
	}
	return true
}

func (c CenteredND) checkLen(n int) {
	if n != c.Dims {
		panic(fmt.Sprintf("core: got %d coordinates, want %d", n, c.Dims))
	}
}

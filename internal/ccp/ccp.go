// Package ccp implements Cued Click-Points (Chiasson, van Oorschot,
// Biddle — ESORICS 2007) and the Persuasive Cued Click-Points creation
// mode (Chiasson, Forget, Biddle, van Oorschot 2007), the successor
// systems the paper cites (§2) as designed to raise the cost of
// hotspot analysis and steer users away from hotspots.
//
// In CCP a password is one click on each of n images: the next image
// shown is a deterministic function of the current image and the grid
// square of the click, so a wrong click sends the user down a
// different image path (implicit feedback) and an attacker must
// reconstruct the path image by image. Discretization is exactly the
// paper's problem — each click is stored as a clear grid identifier
// plus a hashed square index — so CCP plugs in the same core.Scheme.
//
// Persuasive CCP changes only password creation: the system picks a
// random viewport and the user must click inside it, flattening the
// click distribution across the image and starving hotspot
// dictionaries. That is a behavioural model here (ViewportClicker).
package ccp

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"

	"clickpass/internal/core"
	"clickpass/internal/geom"
	"clickpass/internal/imagegen"
	"clickpass/internal/passhash"
	"clickpass/internal/rng"
)

// System is a Cued Click-Points deployment.
type System struct {
	// Images is the image pool the path walks through; all images
	// must share one size.
	Images []*imagegen.Image
	// Scheme discretizes each click.
	Scheme core.Scheme
	// Clicks is the path length (one click per image shown).
	Clicks int
	// Iterations is the hash iteration count.
	Iterations int
}

// Validate reports configuration errors.
func (s *System) Validate() error {
	if len(s.Images) < 2 {
		return fmt.Errorf("ccp: need at least 2 images, have %d", len(s.Images))
	}
	size := s.Images[0].Size
	for _, img := range s.Images {
		if err := img.Validate(); err != nil {
			return err
		}
		if img.Size != size {
			return fmt.Errorf("ccp: image %q size %v differs from %v", img.Name, img.Size, size)
		}
	}
	if s.Scheme == nil {
		return fmt.Errorf("ccp: nil scheme")
	}
	if s.Clicks <= 0 {
		return fmt.Errorf("ccp: clicks %d must be positive", s.Clicks)
	}
	if s.Iterations <= 0 {
		return fmt.Errorf("ccp: iterations %d must be positive", s.Iterations)
	}
	return nil
}

// NextImage returns the index of the image shown after clicking the
// square sec on image cur: a hash of (cur, square indices) mod the
// pool size, skipping the current image so paths always move.
func (s *System) NextImage(cur int, sec core.Secret) int {
	var buf [24]byte
	binary.BigEndian.PutUint64(buf[0:], uint64(cur))
	binary.BigEndian.PutUint64(buf[8:], uint64(sec.IX))
	binary.BigEndian.PutUint64(buf[16:], uint64(sec.IY))
	sum := sha256.Sum256(buf[:])
	n := len(s.Images)
	next := int(binary.BigEndian.Uint64(sum[:8]) % uint64(n))
	if next == cur {
		next = (next + 1) % n
	}
	return next
}

// Clicker supplies the click for each displayed image — the user
// model. step is 0-based.
type Clicker func(img *imagegen.Image, step int) geom.Point

// Record is the stored verifier: the start image, per-step clear grid
// identifiers, salt and digest. The image path itself is NOT stored —
// it is recomputed from the (hashed) squares during login, which is
// what gives CCP its implicit feedback.
type Record struct {
	User       string       `json:"user"`
	Start      int          `json:"start"`
	Clears     []core.Clear `json:"clears"`
	Salt       []byte       `json:"salt"`
	Iterations int          `json:"iterations"`
	Digest     []byte       `json:"digest"`
}

// Enroll walks the image path driven by the user's clicks and stores
// the verifier. The start image is derived from the user name so
// different accounts begin on different images.
func (s *System) Enroll(user string, click Clicker) (*Record, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if click == nil {
		return nil, fmt.Errorf("ccp: nil clicker")
	}
	params, err := passhash.NewParams(s.Iterations)
	if err != nil {
		return nil, err
	}
	start := s.startImage(user)
	cur := start
	tokens := make([]core.Token, 0, s.Clicks)
	clears := make([]core.Clear, 0, s.Clicks)
	for step := 0; step < s.Clicks; step++ {
		img := s.Images[cur]
		p := click(img, step)
		if !img.Size.Contains(p) {
			return nil, fmt.Errorf("ccp: step %d click %v outside image %q", step, p, img.Name)
		}
		tok := s.Scheme.Enroll(p)
		tokens = append(tokens, tok)
		clears = append(clears, tok.Clear)
		cur = s.NextImage(cur, tok.Secret)
	}
	digest, err := passhash.Digest(params, tokens)
	if err != nil {
		return nil, err
	}
	return &Record{
		User:       user,
		Start:      start,
		Clears:     clears,
		Salt:       params.Salt,
		Iterations: params.Iterations,
		Digest:     digest,
	}, nil
}

// Verify replays a login: each candidate click is discretized under
// the stored clear identifier, and the *candidate's* square determines
// the next image — exactly as a deployed CCP system behaves, so a
// wrong click derails the remaining path.
func (s *System) Verify(rec *Record, click Clicker) (bool, error) {
	if err := s.Validate(); err != nil {
		return false, err
	}
	if rec == nil {
		return false, fmt.Errorf("ccp: nil record")
	}
	if click == nil {
		return false, fmt.Errorf("ccp: nil clicker")
	}
	if len(rec.Clears) != s.Clicks {
		return false, nil
	}
	if rec.Start < 0 || rec.Start >= len(s.Images) {
		return false, fmt.Errorf("ccp: record start image %d out of range", rec.Start)
	}
	cur := rec.Start
	tokens := make([]core.Token, 0, s.Clicks)
	for step := 0; step < s.Clicks; step++ {
		img := s.Images[cur]
		p := click(img, step)
		if !img.Size.Contains(p) {
			return false, nil
		}
		sec := s.Scheme.Locate(p, rec.Clears[step])
		tokens = append(tokens, core.Token{Clear: rec.Clears[step], Secret: sec})
		cur = s.NextImage(cur, sec)
	}
	params := passhash.Params{Iterations: rec.Iterations, Salt: rec.Salt}
	return passhash.Verify(params, rec.Digest, tokens)
}

// Path exposes the image sequence a clicker would traverse, for tests
// and experiments (an attacker cannot compute this without the
// squares).
func (s *System) Path(user string, click Clicker) ([]int, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	cur := s.startImage(user)
	path := []int{cur}
	for step := 0; step < s.Clicks; step++ {
		p := click(s.Images[cur], step)
		tok := s.Scheme.Enroll(p)
		cur = s.NextImage(cur, tok.Secret)
		path = append(path, cur)
	}
	return path, nil
}

func (s *System) startImage(user string) int {
	sum := sha256.Sum256([]byte("ccp-start:" + user))
	return int(binary.BigEndian.Uint64(sum[:8]) % uint64(len(s.Images)))
}

// HotspotClicker models an ordinary user (as in PassPoints and plain
// CCP): clicks are drawn from the image's hotspot mixture.
func HotspotClicker(r *rng.Source) Clicker {
	return func(img *imagegen.Image, step int) geom.Point {
		return img.SampleClick(r)
	}
}

// ViewportClicker models Persuasive CCP password creation: the system
// samples a uniformly random viewport of the given side and the user
// clicks a memorable point inside it. Users satisfice rather than
// optimize — they consider a handful of candidate spots and take the
// most salient one — so when the random viewport contains no hotspot
// (the common case) the click is close to uniform. This is what
// flattens the click distribution and starves hotspot dictionaries.
func ViewportClicker(r *rng.Source, viewportPx int) Clicker {
	const consider = 6 // candidate spots a user weighs before clicking
	return func(img *imagegen.Image, step int) geom.Point {
		w, h := img.Size.W, img.Size.H
		vp := viewportPx
		if vp > w {
			vp = w
		}
		if vp > h {
			vp = h
		}
		x0 := r.Intn(w - vp + 1)
		y0 := r.Intn(h - vp + 1)
		best := geom.Pt(x0+vp/2, y0+vp/2)
		bestV := -1.0
		for i := 0; i < consider; i++ {
			cand := geom.Pt(x0+r.Intn(vp), y0+r.Intn(vp))
			if v := img.Saliency(cand); v > bestV {
				bestV = v
				best = cand
			}
		}
		jx := int(r.NormalScaled(0, 2))
		jy := int(r.NormalScaled(0, 2))
		return img.Size.Clamp(best.Add(geom.Pt(jx, jy)))
	}
}

// ReplayClicker replays a fixed click sequence (a login attempt with
// remembered points), with a per-click offset for tolerance tests.
func ReplayClicker(clicks []geom.Point, dx, dy int) Clicker {
	return func(img *imagegen.Image, step int) geom.Point {
		if step >= len(clicks) {
			return geom.Pt(0, 0)
		}
		return img.Size.Clamp(clicks[step].Add(geom.Pt(dx, dy)))
	}
}

// RecordingClicker wraps another clicker and records what it clicked.
func RecordingClicker(inner Clicker, out *[]geom.Point) Clicker {
	return func(img *imagegen.Image, step int) geom.Point {
		p := inner(img, step)
		*out = append(*out, p)
		return p
	}
}

// Marshal encodes the record as JSON for storage.
func (r *Record) Marshal() ([]byte, error) { return json.Marshal(r) }

// UnmarshalRecord decodes and sanity-checks a stored CCP record.
func UnmarshalRecord(data []byte) (*Record, error) {
	var r Record
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("ccp: decoding record: %w", err)
	}
	if r.Start < 0 || r.Iterations <= 0 || len(r.Digest) == 0 || len(r.Clears) == 0 {
		return nil, fmt.Errorf("ccp: record for %q is malformed", r.User)
	}
	return &r, nil
}

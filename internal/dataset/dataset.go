// Package dataset defines the data collected by a PassPoints user
// study — passwords (ordered click-point sequences) and login attempts
// against them — together with JSON and CSV round-trips.
//
// The paper's analyses replay a field study of 191 participants (481
// passwords, 3339 login attempts over two 451x331 images); package
// study synthesizes datasets of this shape, and packages analysis and
// attack consume them.
package dataset

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"clickpass/internal/geom"
)

// Click is one click-point at whole-pixel granularity.
type Click struct {
	X int `json:"x"`
	Y int `json:"y"`
}

// Point converts to the sub-pixel geometry type.
func (c Click) Point() geom.Point { return geom.Pt(c.X, c.Y) }

// FromPoint converts a sub-pixel point (assumed pixel-aligned) to a
// Click.
func FromPoint(p geom.Point) Click {
	return Click{X: p.X.Pixels(), Y: p.Y.Pixels()}
}

// Password is one enrolled graphical password.
type Password struct {
	ID     int     `json:"id"`
	User   string  `json:"user"`
	Image  string  `json:"image"`
	Clicks []Click `json:"clicks"`
}

// Points returns the click sequence as geometry points.
func (p *Password) Points() []geom.Point {
	pts := make([]geom.Point, len(p.Clicks))
	for i, c := range p.Clicks {
		pts[i] = c.Point()
	}
	return pts
}

// Login is one login attempt against a password.
type Login struct {
	PasswordID int     `json:"password_id"`
	Attempt    int     `json:"attempt"`
	Clicks     []Click `json:"clicks"`
}

// Points returns the attempted click sequence as geometry points.
func (l *Login) Points() []geom.Point {
	pts := make([]geom.Point, len(l.Clicks))
	for i, c := range l.Clicks {
		pts[i] = c.Point()
	}
	return pts
}

// Dataset is a complete study: the image it was collected on, the
// passwords created, and the login attempts recorded.
type Dataset struct {
	Image     string     `json:"image"`
	Width     int        `json:"width"`
	Height    int        `json:"height"`
	Passwords []Password `json:"passwords"`
	Logins    []Login    `json:"logins"`
}

// Size returns the image extent.
func (d *Dataset) Size() geom.Size { return geom.Size{W: d.Width, H: d.Height} }

// PasswordByID returns the password with the given ID, or nil.
func (d *Dataset) PasswordByID(id int) *Password {
	for i := range d.Passwords {
		if d.Passwords[i].ID == id {
			return &d.Passwords[i]
		}
	}
	return nil
}

// Validate checks referential integrity: clicks inside the image,
// logins referencing existing passwords, matching click counts.
func (d *Dataset) Validate() error {
	if d.Width <= 0 || d.Height <= 0 {
		return fmt.Errorf("dataset: empty image %dx%d", d.Width, d.Height)
	}
	size := d.Size()
	byID := make(map[int]*Password, len(d.Passwords))
	for i := range d.Passwords {
		p := &d.Passwords[i]
		if _, dup := byID[p.ID]; dup {
			return fmt.Errorf("dataset: duplicate password id %d", p.ID)
		}
		byID[p.ID] = p
		if len(p.Clicks) == 0 {
			return fmt.Errorf("dataset: password %d has no clicks", p.ID)
		}
		for j, c := range p.Clicks {
			if !size.Contains(c.Point()) {
				return fmt.Errorf("dataset: password %d click %d at (%d,%d) outside image", p.ID, j, c.X, c.Y)
			}
		}
	}
	for i := range d.Logins {
		l := &d.Logins[i]
		p, ok := byID[l.PasswordID]
		if !ok {
			return fmt.Errorf("dataset: login %d references unknown password %d", i, l.PasswordID)
		}
		if len(l.Clicks) != len(p.Clicks) {
			return fmt.Errorf("dataset: login %d has %d clicks, password %d has %d",
				i, len(l.Clicks), p.ID, len(p.Clicks))
		}
		for j, c := range l.Clicks {
			if !size.Contains(c.Point()) {
				return fmt.Errorf("dataset: login %d click %d at (%d,%d) outside image", i, j, c.X, c.Y)
			}
		}
	}
	return nil
}

// WriteJSON encodes the dataset to w.
func (d *Dataset) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(d)
}

// ReadJSON decodes and validates a dataset from r.
func ReadJSON(r io.Reader) (*Dataset, error) {
	var d Dataset
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("dataset: decoding: %w", err)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return &d, nil
}

// WriteClicksCSV writes one row per password click:
// password_id,user,image,click_index,x,y.
func (d *Dataset) WriteClicksCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"password_id", "user", "image", "click_index", "x", "y"}); err != nil {
		return err
	}
	for i := range d.Passwords {
		p := &d.Passwords[i]
		for j, c := range p.Clicks {
			row := []string{
				strconv.Itoa(p.ID), p.User, p.Image, strconv.Itoa(j),
				strconv.Itoa(c.X), strconv.Itoa(c.Y),
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteLoginsCSV writes one row per login click:
// password_id,attempt,click_index,x,y.
func (d *Dataset) WriteLoginsCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"password_id", "attempt", "click_index", "x", "y"}); err != nil {
		return err
	}
	for i := range d.Logins {
		l := &d.Logins[i]
		for j, c := range l.Clicks {
			row := []string{
				strconv.Itoa(l.PasswordID), strconv.Itoa(l.Attempt),
				strconv.Itoa(j), strconv.Itoa(c.X), strconv.Itoa(c.Y),
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// Merge combines datasets collected on the same image into one,
// renumbering nothing: password IDs must already be globally unique.
func Merge(parts ...*Dataset) (*Dataset, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("dataset: nothing to merge")
	}
	out := &Dataset{
		Image:  parts[0].Image,
		Width:  parts[0].Width,
		Height: parts[0].Height,
	}
	for _, p := range parts {
		if p.Width != out.Width || p.Height != out.Height {
			return nil, fmt.Errorf("dataset: size mismatch %dx%d vs %dx%d",
				p.Width, p.Height, out.Width, out.Height)
		}
		out.Passwords = append(out.Passwords, p.Passwords...)
		out.Logins = append(out.Logins, p.Logins...)
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

package loadtest

import (
	"testing"
	"time"

	"clickpass/internal/vault"
	"clickpass/internal/vault/repl"
)

// TestLoadReplicatedPair drives a client swarm against a
// quorum-replicated primary/follower pair: every op must succeed
// under concurrency (group commit batching quorum waits across
// clients), and because quorum acks only after the follower fsyncs,
// the follower must hold byte-identical state the moment the swarm
// drains — no settling loop, no eventual consistency window.
func TestLoadReplicatedPair(t *testing.T) {
	clientCount, ops := 12, 10
	if testing.Short() {
		clientCount, ops = 6, 5
	}
	open := func() *vault.Durable {
		d, err := vault.OpenDurable(t.TempDir(), vault.DurableOptions{Shards: 4, NoAutoCompact: true})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	pst, fst := open(), open()
	p, err := repl.New(pst, repl.RolePrimary, repl.Options{
		Listen: "127.0.0.1:0",
		Ack:    repl.AckQuorum,
		// Generous: the very first enroll blocks until the follower
		// attaches, and CI machines can be slow to schedule it.
		QuorumTimeout: 10 * time.Second,
		Logf:          func(string, ...interface{}) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	f, err := repl.New(fst, repl.RoleFollower, repl.Options{
		Primary: p.ReplAddr(),
		Logf:    func(string, ...interface{}) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	_, addr, shutdown := startServer(t, p, 64)
	defer shutdown()
	users := enrollUsers(t, addr, clientCount)

	res, err := Run(Config{
		Dial:         TCPTransport(addr, 0),
		Clients:      clientCount,
		OpsPerClient: ops,
		Request:      AuthMix(users, userClicks, 10),
		Check:        RequireOK,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("replicated pair: %s", res)
	if res.Errors != 0 {
		t.Errorf("swarm saw %d errors against the replicated primary", res.Errors)
	}
	if res.Ops != clientCount*ops {
		t.Errorf("completed %d ops, want %d", res.Ops, clientCount*ops)
	}

	// Quorum means "already on the follower": compare stores directly.
	if got, want := fst.Len(), pst.Len(); got != want {
		t.Fatalf("follower has %d records, primary %d", got, want)
	}
	for _, u := range users {
		pr, err := pst.Get(u)
		if err != nil {
			t.Fatalf("primary lost %s: %v", u, err)
		}
		fr, err := fst.Get(u)
		if err != nil {
			t.Fatalf("follower missing %s: %v", u, err)
		}
		if string(pr.Digest) != string(fr.Digest) || string(pr.Salt) != string(fr.Salt) {
			t.Errorf("record %s diverged between primary and follower", u)
		}
	}
}

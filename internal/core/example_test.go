package core_test

import (
	"fmt"
	"log"

	"clickpass/internal/core"
	"clickpass/internal/fixed"
	"clickpass/internal/geom"
)

// The paper's §3.1 worked example: x = 13, r = 5.5 gives segment 0
// with clear offset d = 7.5; a login at x' = 10 falls in the same
// segment and is accepted.
func ExampleCentered1D() {
	ax := core.Centered1D{R: fixed.FromHalfPixels(11)} // r = 5.5px
	i, d := ax.Discretize(fixed.FromPixels(13))
	fmt.Printf("i=%d d=%s\n", i, d)
	fmt.Println("x'=10 accepted:", ax.Accepts(i, d, fixed.FromPixels(10)))
	fmt.Println("x'=19 accepted:", ax.Accepts(i, d, fixed.FromPixels(19)))
	// Output:
	// i=0 d=7.5
	// x'=10 accepted: true
	// x'=19 accepted: false
}

// A 13x13 Centered grid accepts exactly the 169 pixels centered on the
// original click — no dependence on where the click falls relative to
// any static grid.
func ExampleCentered2D() {
	scheme, err := core.NewCentered(13)
	if err != nil {
		log.Fatal(err)
	}
	tok := scheme.Enroll(geom.Pt(100, 200))
	fmt.Println("6px off accepted:", core.Accepts(scheme, tok, geom.Pt(106, 194)))
	fmt.Println("7px off accepted:", core.Accepts(scheme, tok, geom.Pt(107, 200)))
	fmt.Println("region centered on click:", scheme.Region(tok).Center() == geom.Pt(100, 200))
	// Output:
	// 6px off accepted: true
	// 7px off accepted: false
	// region centered on click: true
}

// Robust Discretization guarantees only r = side/6: a 36x36 square
// always accepts 6px displacements but may accept up to 30px — and
// where the extra slack lies depends on the click's position in its
// grid square.
func ExampleRobust2D() {
	scheme, err := core.NewRobust2D(36, core.MostCentered, 1)
	if err != nil {
		log.Fatal(err)
	}
	tok := scheme.Enroll(geom.Pt(100, 200))
	fmt.Println("6px off accepted:", core.Accepts(scheme, tok, geom.Pt(106, 200)))
	fmt.Printf("guaranteed r: %spx, worst-case accepted: %spx\n",
		scheme.GuaranteedR(), scheme.MaxAccepted())
	// Output:
	// 6px off accepted: true
	// guaranteed r: 6px, worst-case accepted: 30px
}

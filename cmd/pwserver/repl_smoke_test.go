package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"clickpass/internal/authsvc"
)

// pickPort reserves a loopback port by binding and immediately
// releasing it — the replication and admin listeners need addresses
// known before the process starts (their banners echo the flag, not
// the bound port).
func pickPort(t *testing.T) int {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	return l.Addr().(*net.TCPAddr).Port
}

// TestReplSmoke is the end-to-end failover drill the CI
// replication-smoke job runs: build the real pwserver binary, start a
// quorum primary and a follower as separate processes with separate
// vault directories, enroll users and burn a lockout attempt against
// the primary over the real wire protocol, SIGKILL the primary,
// promote the follower through its admin endpoint, and assert every
// acked mutation — records AND the lockout counter — is served by the
// survivor, with no false accepts.
func TestReplSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills real server binaries; skipped in -short")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "pwserver")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building pwserver: %v\n%s", err, out)
	}
	var (
		pRepl  = fmt.Sprintf("127.0.0.1:%d", pickPort(t))
		fRepl  = fmt.Sprintf("127.0.0.1:%d", pickPort(t))
		fAdmin = fmt.Sprintf("127.0.0.1:%d", pickPort(t))
	)
	ctx := context.Background()

	// Primary: quorum acks — every OK response this test sees is
	// already fsynced on the follower, which is the whole basis of the
	// post-kill assertions. Follower: async, so that once promoted
	// (and follower-less) it still acks writes such as lockout
	// persists.
	pAddr, killPrimary := startPwserver(t, bin, filepath.Join(dir, "vault-a.d"),
		"-role", "primary", "-repl-listen", pRepl, "-repl-ack", "quorum")
	fAddr, killFollower := startPwserver(t, bin, filepath.Join(dir, "vault-b.d"),
		"-role", "follower", "-repl-primary", pRepl, "-repl-listen", fRepl,
		"-repl-ack", "async", "-metrics", fAdmin)
	defer killFollower()

	users := []string{"r-alpha", "r-beta", "r-gamma"}
	const lockout = 5
	c := dialT(t, pAddr)
	for i, u := range users {
		// The first enroll doubles as the attach barrier: its quorum
		// ack cannot arrive until the follower is connected and
		// streaming.
		resp, err := c.Do(ctx, authsvc.Request{Op: authsvc.OpEnroll, User: u, Clicks: smokeClicks(i)})
		if err != nil || !resp.OK() {
			t.Fatalf("enroll %s: %+v %v", u, resp, err)
		}
	}
	resp, err := c.Do(ctx, authsvc.Request{Op: authsvc.OpLogin, User: "r-alpha", Clicks: smokeClicks(40)})
	if err != nil || resp.Code != authsvc.CodeDenied || resp.Remaining != lockout-1 {
		t.Fatalf("burned attempt: %+v %v", resp, err)
	}
	c.Close()
	killPrimary() // SIGKILL: no drain, no fence, no goodbye

	// Failover: promote the follower via its admin surface.
	promote, err := http.Post("http://"+fAdmin+"/v1/promote", "application/json", nil)
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	var pr struct {
		OK    bool   `json:"ok"`
		Epoch uint64 `json:"epoch"`
	}
	if err := json.NewDecoder(promote.Body).Decode(&pr); err != nil || promote.StatusCode != http.StatusOK || !pr.OK || pr.Epoch == 0 {
		t.Fatalf("promote response: status=%d body=%+v err=%v", promote.StatusCode, pr, err)
	}
	promote.Body.Close()

	// The admin surface must reflect the flip before any traffic moves.
	metrics, err := http.Get("http://" + fAdmin + "/metrics")
	if err != nil {
		t.Fatalf("survivor metrics: %v", err)
	}
	body, _ := io.ReadAll(metrics.Body)
	metrics.Body.Close()
	for _, want := range []string{
		`repl_role{role="primary"} 1`,
		fmt.Sprintf("repl_epoch %d", pr.Epoch),
		`vault_shard_up{shard="0"} 1`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("survivor /metrics missing %q", want)
		}
	}

	sc := dialT(t, fAddr)
	defer sc.Close()
	// The burned attempt must be on the survivor's books: one more
	// failure leaves lockout-2, not lockout-1.
	resp, err = sc.Do(ctx, authsvc.Request{Op: authsvc.OpLogin, User: "r-alpha", Clicks: smokeClicks(40)})
	if err != nil || resp.Code != authsvc.CodeDenied {
		t.Fatalf("post-failover failed login: %+v %v", resp, err)
	}
	if resp.Remaining != lockout-2 {
		t.Errorf("lockout counter lost in failover: remaining = %d, want %d", resp.Remaining, lockout-2)
	}
	for i, u := range users {
		resp, err := sc.Do(ctx, authsvc.Request{Op: authsvc.OpLogin, User: u, Clicks: smokeClicks(i)})
		if err != nil || !resp.OK() {
			t.Errorf("login %s on survivor: %+v %v", u, resp, err)
		}
		resp, err = sc.Do(ctx, authsvc.Request{Op: authsvc.OpLogin, User: u, Clicks: smokeClicks(i + 7)})
		if err != nil || resp.Code != authsvc.CodeDenied {
			t.Errorf("wrong password for %s accepted on survivor: %+v %v", u, resp, err)
		}
	}
	// And the survivor accepts new enrollments — life goes on at the
	// new epoch.
	resp, err = sc.Do(ctx, authsvc.Request{Op: authsvc.OpEnroll, User: "r-post", Clicks: smokeClicks(9)})
	if err != nil || !resp.OK() {
		t.Errorf("post-failover enroll: %+v %v", resp, err)
	}
}

# Build/test entry points, mirrored by .github/workflows/ci.yml.

GO ?= go

.PHONY: all build test vet race bench ci

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race exercises the parallel study/analysis/attack engines under the
# race detector; the par determinism tests run at workers 1/2/8.
race:
	$(GO) test -race ./...

# bench runs the headline speedup and allocation benchmarks recorded
# in PERFORMANCE.md (serial vs parallel sub-benchmarks).
bench:
	$(GO) test -run NONE -bench 'StudyGeneration|Figure7|Table1|CrackPassword|Digest' -benchmem .

ci: build vet test race

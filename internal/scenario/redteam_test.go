package scenario

import (
	"context"
	"fmt"
	"net"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"clickpass/internal/attack"
	"clickpass/internal/authproto"
	"clickpass/internal/authsvc"
	"clickpass/internal/core"
	"clickpass/internal/dataset"
	"clickpass/internal/geom"
	"clickpass/internal/imagegen"
	"clickpass/internal/loadtest"
	"clickpass/internal/passpoints"
	"clickpass/internal/replay"
	"clickpass/internal/study"
	"clickpass/internal/vault"
)

// testScheme builds the scheme every scenario test serves and models:
// Centered(13), the paper's baseline tolerance.
func testScheme(tb testing.TB) core.Scheme {
	tb.Helper()
	s, err := core.NewCentered(13)
	if err != nil {
		tb.Fatal(err)
	}
	return s
}

// startServer runs a fresh in-process pwserver over a memory vault
// with the given lockout and returns its TCP address, an HTTP front
// URL, and a shutdown func; tune (may be nil) adjusts the server
// before it starts serving. Every red-team run gets its own server:
// attacks burn lockout budget, so servers cannot be shared between
// runs.
func startServer(tb testing.TB, lockout int, tune func(*authproto.Server)) (addr, httpURL string, shutdown func()) {
	tb.Helper()
	cfg := passpoints.Config{
		Image:      geom.Size{W: 451, H: 331},
		Clicks:     5,
		Scheme:     testScheme(tb),
		Iterations: 2,
	}
	srv, err := authproto.NewServer(cfg, vault.New(), lockout)
	if err != nil {
		tb.Fatal(err)
	}
	if tune != nil {
		tune(srv)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	done := make(chan struct{})
	go func() { _ = srv.Serve(l); close(done) }()
	ts := httptest.NewServer(srv.HTTPHandler())
	return l.Addr().String(), ts.URL, func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			tb.Errorf("shutdown: %v", err)
		}
		<-done
	}
}

// testData is the shared victim/attacker corpus: a small cars field
// study as the victim population and a lab study as the attacker's
// harvest, with two high-saliency lab guesses planted into the field
// so the top of the guess stream provably compromises known accounts
// even under a tight lockout budget.
var testDataOnce = struct {
	sync.Once
	field, lab *dataset.Dataset
	img        *imagegen.Image
}{}

func testData(tb testing.TB) (field, lab *dataset.Dataset, img *imagegen.Image) {
	tb.Helper()
	testDataOnce.Do(func() {
		img := imagegen.Cars()
		fcfg := study.FieldConfig(img, 31)
		fcfg.Passwords = 40
		field, err := study.Run(fcfg)
		if err != nil {
			panic(err)
		}
		lab, err := study.Run(study.LabConfig(img, 77))
		if err != nil {
			panic(err)
		}
		// Plant the stream's #2 and #6 guesses as two field passwords:
		// accounts u5 and u17 then fall at guess depths 1 and 5 — inside
		// any lockout budget >= 6.
		order, err := attack.GuessOrder(lab, img)
		if err != nil {
			panic(err)
		}
		for _, plant := range []struct{ acct, guess int }{{5, 1}, {17, 5}} {
			clicks := make([]dataset.Click, len(order[plant.guess]))
			for j, p := range order[plant.guess] {
				clicks[j] = dataset.FromPoint(p)
			}
			field.Passwords[plant.acct].Clicks = clicks
		}
		testDataOnce.field, testDataOnce.lab, testDataOnce.img = field, lab, img
	})
	return testDataOnce.field, testDataOnce.lab, testDataOnce.img
}

// modelCurve replays the online attack in-process: for each field
// account, the index of the first accepted guess within the first
// `limit` entries of the stream, folded into the same cumulative curve
// RedTeam reports. This is attack.Online's exact acceptance predicate
// (replay.Set.Accepts), so equality with the wire run is the
// engine-versus-servers invariant.
func modelCurve(tb testing.TB, field, lab *dataset.Dataset, img *imagegen.Image, limit int) CrackCurve {
	tb.Helper()
	order, err := attack.GuessOrder(lab, img)
	if err != nil {
		tb.Fatal(err)
	}
	if limit > 0 && limit < len(order) {
		order = order[:limit]
	}
	set := replay.Compile(field, testScheme(tb))
	curve := make([]int, len(order))
	compromised := 0
	for i := 0; i < set.Len(); i++ {
		for k, g := range order {
			if set.Accepts(i, g) {
				compromised++
				curve[k]++
				break
			}
		}
	}
	cum := 0
	for k := range curve {
		cum += curve[k]
		curve[k] = cum
	}
	return CrackCurve{
		Accounts:    set.Len(),
		Guesses:     len(order),
		Compromised: compromised,
		Curve:       curve,
	}
}

// enrollField pushes the field population through the wire and fails
// the test on any refusal.
func enrollField(tb testing.TB, cfg Config, field *dataset.Dataset) []string {
	tb.Helper()
	users, err := EnrollStream(cfg, FieldAccounts(field))
	if err != nil {
		tb.Fatal(err)
	}
	if len(users) != len(field.Passwords) {
		tb.Fatalf("enrolled %d accounts, want %d", len(users), len(field.Passwords))
	}
	return users
}

// TestRedTeamCurveGolden pins the harness's determinism claim: the
// compromise curve is byte-identical at every worker count and over
// both transports, and equals the in-process model's curve. It also
// pins the lockout arithmetic — with the guess stream truncated to the
// lockout, every uncompromised account ends exactly locked after
// lockout-1 denials.
func TestRedTeamCurveGolden(t *testing.T) {
	const lockout = 8
	field, lab, img := testData(t)
	guesses, err := Guesses(lab, img, lockout)
	if err != nil {
		t.Fatal(err)
	}
	if len(guesses) != lockout {
		t.Fatalf("guess stream has %d entries, want %d", len(guesses), lockout)
	}
	want := modelCurve(t, field, lab, img, lockout)
	if want.Compromised == 0 {
		t.Fatalf("model compromises no accounts; test corpus is too weak")
	}
	t.Logf("model: %d/%d compromised, curve %v", want.Compromised, want.Accounts, want.Curve)

	for _, workers := range []int{1, 2, 8} {
		for _, transport := range []string{"tcp", "http"} {
			t.Run(fmt.Sprintf("workers=%d/%s", workers, transport), func(t *testing.T) {
				addr, httpURL, shutdown := startServer(t, lockout, nil)
				defer shutdown()
				dial := loadtest.TCPTransport(addr, 5*time.Second)
				if transport == "http" {
					dial = loadtest.HTTPTransport(httpURL)
				}
				cfg := Config{Dial: dial, Workers: workers}
				users := enrollField(t, cfg, field)
				rep, err := RedTeam(cfg, users, guesses)
				if err != nil {
					t.Fatal(err)
				}
				if got := rep.CrackCurve(); !reflect.DeepEqual(got, want) {
					t.Errorf("crack curve diverged from model:\n got %+v\nwant %+v", got, want)
				}
				if rep.Incomplete != 0 {
					t.Errorf("%d accounts incomplete on an unloaded server", rep.Incomplete)
				}
				// Uncompromised accounts burn the whole budget: lockout-1
				// verified denials, then the crossing answers locked.
				if wantLocked := rep.Accounts - rep.Compromised; rep.Locked != wantLocked {
					t.Errorf("Locked = %d, want %d", rep.Locked, wantLocked)
				}
				var wantDenied int64
				for k, c := range want.Curve {
					prev := 0
					if k > 0 {
						prev = want.Curve[k-1]
					}
					wantDenied += int64(k) * int64(c-prev)
				}
				wantDenied += int64(want.Accounts-want.Compromised) * int64(lockout-1)
				if rep.Denied != wantDenied {
					t.Errorf("Denied = %d, want %d", rep.Denied, wantDenied)
				}
			})
		}
	}
}

// TestRedTeamMatchesOnline is the equivalence invariant with the full
// guess stream: the through-the-wire compromise count equals
// attack.Online's in-process result for the same seed and lockout.
func TestRedTeamMatchesOnline(t *testing.T) {
	const lockout = 64 // > len(lab): the stream, not the budget, is the limit
	field, lab, img := testData(t)
	online, err := attack.Online(field, lab, img, testScheme(t), lockout, 1)
	if err != nil {
		t.Fatal(err)
	}
	if online.Compromised < 2 {
		t.Fatalf("online model compromised %d accounts, want >= 2 (planted)", online.Compromised)
	}

	addr, _, shutdown := startServer(t, lockout, nil)
	defer shutdown()
	cfg := Config{Dial: loadtest.TCPTransport(addr, 5*time.Second), Workers: 4}
	users := enrollField(t, cfg, field)
	guesses, err := Guesses(lab, img, lockout)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RedTeam(cfg, users, guesses)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Compromised != online.Compromised {
		t.Errorf("wire compromised %d accounts, in-process model %d", rep.Compromised, online.Compromised)
	}
	// The stream (30 lab passwords) is shorter than the budget, so no
	// account can lock and every wrong guess is a verified denial.
	if rep.Locked != 0 {
		t.Errorf("Locked = %d, want 0 (stream shorter than lockout)", rep.Locked)
	}
	if rep.Accounts != online.Accounts {
		t.Errorf("Accounts = %d, want %d", rep.Accounts, online.Accounts)
	}
}

// TestRedTeamShedEquivalence pins that admission control never leaks
// lockout budget: with the server choked to one concurrent request and
// eight attack workers, shed responses are re-sent until definitive,
// so the curve still equals the unloaded model's.
func TestRedTeamShedEquivalence(t *testing.T) {
	const lockout = 8
	field, lab, img := testData(t)
	want := modelCurve(t, field, lab, img, lockout)

	// One admission slot, a two-deep queue, and deterministic latency
	// spikes that hold the slot: with eight workers the queue overflows
	// and the limiter sheds fast CodeOverloaded refusals — the overload
	// regime the equivalence claim is about.
	_, httpURL, shutdown := startServer(t, lockout, func(srv *authproto.Server) {
		srv.SetMaxConns(1)
		srv.SetOverload(authsvc.OverloadPolicy{Queue: 2})
		srv.SetFaults(authsvc.FaultOptions{Seed: 9, LatencyRate: 0.25, Latency: 2 * time.Millisecond})
	})
	defer shutdown()
	cfg := Config{
		Dial:    loadtest.HTTPTransport(httpURL),
		Workers: 8,
		Retry: authsvc.RetryPolicy{
			MaxAttempts:      12,
			BaseDelay:        time.Millisecond,
			MaxDelay:         20 * time.Millisecond,
			BreakerThreshold: -1,
		},
		ThrottleWait: 2 * time.Millisecond,
	}
	// Enroll gently (two workers) so population setup itself does not
	// exhaust retry budgets against the one-slot server; the attack
	// then hits it with the full eight-worker swarm.
	enrollCfg := cfg
	enrollCfg.Workers = 2
	users := enrollField(t, enrollCfg, field)
	guesses, err := Guesses(lab, img, lockout)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RedTeam(cfg, users, guesses)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("under shed: %d overloaded absorbed, %d retries, %d guess re-sends",
		rep.Wire.Overloaded, rep.Wire.Retries, rep.Resent)
	if rep.Wire.Overloaded == 0 {
		t.Error("no overloaded responses absorbed; the server never shed and the test proves nothing")
	}
	if rep.Incomplete != 0 {
		t.Fatalf("%d accounts incomplete; raise retry budget", rep.Incomplete)
	}
	if got := rep.CrackCurve(); !reflect.DeepEqual(got, want) {
		t.Errorf("shedding changed the curve:\n got %+v\nwant %+v", got, want)
	}
}

// TestEnrollStreamCohort pins the streamed-enrollment path end to end:
// a cohort streamed through CohortAccounts enrolls the exact accounts
// a materialized RunCohort would produce — verified by logging in over
// the wire with clicks taken from the materialized twin.
func TestEnrollStreamCohort(t *testing.T) {
	ccfg := study.DefaultCohort(imagegen.Cars(), 17)
	ccfg.Participants = 8
	twin, err := study.RunCohort(ccfg)
	if err != nil {
		t.Fatal(err)
	}

	addr, _, shutdown := startServer(t, 1<<20, nil)
	defer shutdown()
	cfg := Config{Dial: loadtest.TCPTransport(addr, 5*time.Second), Workers: 4}
	users, err := EnrollStream(cfg, CohortAccounts(ccfg))
	if err != nil {
		t.Fatal(err)
	}
	if len(users) != len(twin.Passwords) {
		t.Fatalf("enrolled %d accounts, cohort has %d passwords", len(users), len(twin.Passwords))
	}
	for i, pw := range twin.Passwords {
		if want := AccountName(pw.ID); users[i] != want {
			t.Fatalf("users[%d] = %q, want %q", i, users[i], want)
		}
	}

	cli, err := cfg.Dial(0)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	ops := authsvc.Ops{Doer: cli}
	ctx := context.Background()
	for _, i := range []int{0, len(twin.Passwords) / 2, len(twin.Passwords) - 1} {
		pw := twin.Passwords[i]
		resp, err := ops.Login(ctx, AccountName(pw.ID), pw.Clicks)
		if err != nil || !resp.OK() {
			t.Fatalf("login %s with materialized clicks: %+v %v", AccountName(pw.ID), resp, err)
		}
	}
}

package study

import (
	"testing"

	"clickpass/internal/dataset"
	"clickpass/internal/imagegen"
)

func runBothCohorts(t *testing.T, seed uint64) []*dataset.Dataset {
	t.Helper()
	var out []*dataset.Dataset
	for i, img := range imagegen.Gallery() {
		d, err := RunCohort(DefaultCohort(img, seed+uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, d)
	}
	return out
}

// TestCohortMatchesPaperScale: the default cohort reproduces the
// paper's header numbers — 191 participants, ~481 passwords, ~3339
// logins across both images.
func TestCohortMatchesPaperScale(t *testing.T) {
	dsets := runBothCohorts(t, 11)
	users := map[string]bool{}
	passwords, logins := 0, 0
	for _, d := range dsets {
		passwords += len(d.Passwords)
		logins += len(d.Logins)
		for i := range d.Passwords {
			users[d.Passwords[i].User] = true
		}
	}
	if len(users) != 191 {
		t.Errorf("participants = %d, want 191", len(users))
	}
	if passwords < 430 || passwords > 540 {
		t.Errorf("passwords = %d, want ~481", passwords)
	}
	if logins < 2900 || logins > 3800 {
		t.Errorf("logins = %d, want ~3339", logins)
	}
	t.Logf("cohort: %d participants, %d passwords, %d logins", len(users), passwords, logins)
}

// TestCohortDeterministic: same seed, same cohort.
func TestCohortDeterministic(t *testing.T) {
	a, err := RunCohort(DefaultCohort(imagegen.Cars(), 3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCohort(DefaultCohort(imagegen.Cars(), 3))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Passwords) != len(b.Passwords) || len(a.Logins) != len(b.Logins) {
		t.Fatal("same seed produced different cohort sizes")
	}
	for i := range a.Logins {
		for j := range a.Logins[i].Clicks {
			if a.Logins[i].Clicks[j] != b.Logins[i].Clicks[j] {
				t.Fatal("same seed produced different logins")
			}
		}
	}
}

// TestCohortSkillHeterogeneity: with skill spread on, per-participant
// login accuracy varies more than with it off.
func TestCohortSkillHeterogeneity(t *testing.T) {
	errRate := func(d *dataset.Dataset) map[string]float64 {
		misses := map[string]int{}
		total := map[string]int{}
		for i := range d.Logins {
			l := &d.Logins[i]
			pw := d.PasswordByID(l.PasswordID)
			for j := range l.Clicks {
				total[pw.User]++
				if pw.Clicks[j].Point().Chebyshev(l.Clicks[j].Point()).Pixels() > 6 {
					misses[pw.User]++
				}
			}
		}
		out := map[string]float64{}
		for u, n := range total {
			out[u] = float64(misses[u]) / float64(n)
		}
		return out
	}
	variance := func(rates map[string]float64) float64 {
		var sum, sq float64
		for _, v := range rates {
			sum += v
		}
		mean := sum / float64(len(rates))
		for _, v := range rates {
			d := v - mean
			sq += d * d
		}
		return sq / float64(len(rates))
	}
	spread := DefaultCohort(imagegen.Cars(), 7)
	spread.SkillSpread = 0.5
	flat := DefaultCohort(imagegen.Cars(), 7)
	flat.SkillSpread = 0
	flat.PracticeRate = 1
	dSpread, err := RunCohort(spread)
	if err != nil {
		t.Fatal(err)
	}
	dFlat, err := RunCohort(flat)
	if err != nil {
		t.Fatal(err)
	}
	vS, vF := variance(errRate(dSpread)), variance(errRate(dFlat))
	if vS <= vF {
		t.Errorf("skill spread did not raise per-user variance: %.5f vs %.5f", vS, vF)
	}
}

// TestCohortPractice: with a strong practice effect, late attempts are
// more accurate than first attempts.
func TestCohortPractice(t *testing.T) {
	cfg := DefaultCohort(imagegen.Cars(), 13)
	cfg.PracticeRate = 0.9
	cfg.SkillSpread = 0
	cfg.LoginsPerPassword = 8
	d, err := RunCohort(cfg)
	if err != nil {
		t.Fatal(err)
	}
	missRateAt := func(attempt int) float64 {
		misses, total := 0, 0
		for i := range d.Logins {
			l := &d.Logins[i]
			if l.Attempt != attempt {
				continue
			}
			pw := d.PasswordByID(l.PasswordID)
			for j := range l.Clicks {
				total++
				if pw.Clicks[j].Point().Chebyshev(l.Clicks[j].Point()).Pixels() > 3 {
					misses++
				}
			}
		}
		if total == 0 {
			return 0
		}
		return float64(misses) / float64(total)
	}
	early := missRateAt(0)
	late := missRateAt(7)
	if late >= early {
		t.Errorf("practice effect missing: attempt 0 missed %.3f, attempt 7 missed %.3f", early, late)
	}
}

func TestCohortValidation(t *testing.T) {
	mutations := map[string]func(*CohortConfig){
		"nil image":       func(c *CohortConfig) { c.Image = nil },
		"no participants": func(c *CohortConfig) { c.Participants = 0 },
		"zero pw/pp":      func(c *CohortConfig) { c.PasswordsPerParticipant = 0 },
		"neg logins":      func(c *CohortConfig) { c.LoginsPerPassword = -1 },
		"no clicks":       func(c *CohortConfig) { c.Clicks = 0 },
		"wild skill":      func(c *CohortConfig) { c.SkillSpread = 5 },
		"zero practice":   func(c *CohortConfig) { c.PracticeRate = 0 },
		"bad error":       func(c *CohortConfig) { c.Error.MotorSigma = -1 },
	}
	for name, mutate := range mutations {
		cfg := DefaultCohort(imagegen.Cars(), 1)
		mutate(&cfg)
		if _, err := RunCohort(cfg); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

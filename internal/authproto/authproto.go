// Package authproto exposes the transport-agnostic authentication
// service (internal/authsvc) over the network: a length-prefixed JSON
// protocol on TCP, an equivalent net/http API, and TLS over either.
// The package owns only codecs and connection lifecycle — framing,
// parking, graceful drain; every decoded request flows through one
// shared authsvc pipeline (admission limiter, metrics, deadlines,
// panic containment), so all fronts compete for one concurrency
// budget and report into one set of counters.
//
// Wire format (TCP): each message is a 4-byte big-endian length
// followed by a JSON document, request/response in lockstep on one
// connection. Frames are capped at MaxFrame to bound allocation from
// untrusted peers. The JSON shapes predate the versioned service
// types and stay backward compatible: the `v` and `code` fields are
// additive, and legacy flag fields (ok/locked) are still emitted.
package authproto

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"clickpass/internal/authsvc"
	"clickpass/internal/dataset"
	"clickpass/internal/par"
	"clickpass/internal/passpoints"
	"clickpass/internal/vault"
)

// MaxFrame is the largest accepted wire frame in bytes.
const MaxFrame = 1 << 20

// DefaultLockout is the failed-attempt budget per account.
const DefaultLockout = authsvc.DefaultLockout

// DefaultMaxConns bounds the shared request-admission limiter and the
// per-Serve connection pool when the caller does not set a limit.
// Beyond it, work queues (HTTP requests block in admission, TCP peers
// wait in the kernel backlog) instead of spawning without bound.
const DefaultMaxConns = 1024

// DefaultRequestTimeout is the per-request handling deadline applied
// to requests that arrive without one.
const DefaultRequestTimeout = 30 * time.Second

// Op identifies a request type. It aliases the service's op type; the
// wire strings are identical.
type Op = authsvc.Op

// Protocol operations.
const (
	OpPing     = authsvc.OpPing
	OpEnroll   = authsvc.OpEnroll
	OpLogin    = authsvc.OpLogin
	OpChange   = authsvc.OpChange   // replace the password after verifying the old one
	OpReset    = authsvc.OpReset    // administrative: clear an account's lockout
	OpValidate = authsvc.OpValidate // check a session token minted by login
)

// Request is the wire shape of a client request. V is the additive
// version field; zero means version 1 (legacy clients never send it).
type Request struct {
	V      int             `json:"v,omitempty"`
	Op     Op              `json:"op"`
	User   string          `json:"user,omitempty"`
	Clicks []dataset.Click `json:"clicks,omitempty"`
	// NewClicks carries the replacement password for OpChange.
	NewClicks []dataset.Click `json:"new_clicks,omitempty"`
	// BudgetMs is the additive deadline-budget field: how many more
	// milliseconds the client will wait, queueing included. Zero
	// (legacy clients) means no budget.
	BudgetMs int `json:"budget_ms,omitempty"`
	// Token carries the session token for OpValidate. Additive.
	Token string `json:"token,omitempty"`
}

// service converts the wire request to the service's typed request.
func (r Request) service() authsvc.Request {
	return authsvc.Request{
		Version:   r.V,
		Op:        r.Op,
		User:      r.User,
		Clicks:    r.Clicks,
		NewClicks: r.NewClicks,
		BudgetMs:  r.BudgetMs,
		Token:     r.Token,
	}
}

// wireRequest converts a service request to its wire shape.
func wireRequest(req authsvc.Request) Request {
	return Request{
		V:         req.Version,
		Op:        req.Op,
		User:      req.User,
		Clicks:    req.Clicks,
		NewClicks: req.NewClicks,
		BudgetMs:  req.BudgetMs,
		Token:     req.Token,
	}
}

// Response is the wire shape of a server reply. The legacy flags
// (ok/locked) are kept for old clients; Code carries the service's
// typed outcome for new ones.
type Response struct {
	V         int    `json:"v,omitempty"`
	OK        bool   `json:"ok"`
	Code      string `json:"code,omitempty"`
	Error     string `json:"error,omitempty"`
	Locked    bool   `json:"locked,omitempty"`
	Remaining int    `json:"remaining,omitempty"` // login attempts left
	// RetryAfterMs accompanies code=overloaded: the server's hint for
	// when a retry may be admitted (also the Retry-After header on
	// HTTP). Additive; legacy servers never send it.
	RetryAfterMs int `json:"retry_after_ms,omitempty"`
	// Primary accompanies code=not_primary: the advertised address of
	// the replica serving writes. Additive; only replicated servers
	// send it.
	Primary string `json:"primary,omitempty"`
	// Token accompanies a successful login on a session-enabled
	// server. Additive.
	Token string `json:"token,omitempty"`
	// User accompanies a successful validate: the account the token
	// names. Additive.
	User string `json:"user,omitempty"`
}

// wireResponse converts a service response to its wire shape.
func wireResponse(resp authsvc.Response) Response {
	return Response{
		V:            resp.Version,
		OK:           resp.OK(),
		Code:         string(resp.Code),
		Error:        resp.Err,
		Locked:       resp.Locked(),
		Remaining:    resp.Remaining,
		RetryAfterMs: resp.RetryAfterMs,
		Primary:      resp.Primary,
		Token:        resp.Token,
		User:         resp.User,
	}
}

// service converts a wire response back to the service's typed
// response. Replies from legacy servers carry no code; the flags
// determine it (anything not OK or locked reads as denied, the closest
// legacy semantic).
func (r Response) service() authsvc.Response {
	if r.Code != "" {
		return authsvc.Response{Version: r.V, Code: authsvc.Code(r.Code), Err: r.Error,
			Remaining: r.Remaining, RetryAfterMs: r.RetryAfterMs, Primary: r.Primary,
			Token: r.Token, User: r.User}
	}
	code := authsvc.CodeDenied
	switch {
	case r.Locked:
		code = authsvc.CodeLocked
	case r.OK:
		code = authsvc.CodeOK
	}
	return authsvc.Response{Version: r.V, Code: code, Err: r.Error, Remaining: r.Remaining,
		Token: r.Token, User: r.User}
}

// Server is the network front of the authentication service. The
// business rules live in authsvc.Service; Server adds the TCP codec
// (Serve/ServeTLS), the HTTP codec (HTTPHandler), connection
// lifecycle, and the shared middleware pipeline every front routes
// through. It is safe for concurrent use, and Shutdown drains
// in-flight connections gracefully.
type Server struct {
	svc        *authsvc.Service
	handler    authsvc.Handler
	metrics    *authsvc.Metrics
	limiter    *par.Limiter
	maxConns   int
	userRate   float64
	userBurst  int
	reqTimeout time.Duration
	overload   authsvc.OverloadPolicy
	faults     authsvc.FaultOptions
	session    authsvc.SessionTier
	logw       io.Writer

	// Operator-surface extensions (RegisterAdmin / RegisterMetrics),
	// applied when AdminHandler builds its mux.
	adminRoutes  map[string]http.Handler
	extraMetrics []func(io.Writer)

	connMu     sync.Mutex
	conns      map[net.Conn]*connState
	listeners  map[net.Listener]struct{}
	inShutdown atomic.Bool
}

// NewServer validates the configuration and returns a server. lockout
// <= 0 selects DefaultLockout. The store may be any vault.Store — the
// single-lock file vault or the sharded store.
func NewServer(cfg passpoints.Config, v vault.Store, lockout int) (*Server, error) {
	svc, err := authsvc.NewService(cfg, v, lockout)
	if err != nil {
		return nil, err
	}
	s := &Server{
		svc:        svc,
		metrics:    &authsvc.Metrics{},
		maxConns:   DefaultMaxConns,
		reqTimeout: DefaultRequestTimeout,
		conns:      make(map[net.Conn]*connState),
		listeners:  make(map[net.Listener]struct{}),
	}
	// The lockout-crossing counter lives in the service core (only it
	// sees the threshold transition); surface it next to the
	// attacker-classification counters Metrics exports.
	s.RegisterMetrics(func(w io.Writer) {
		fmt.Fprintf(w, "# HELP authsvc_lockouts_triggered_total Failed attempts that crossed an account's lockout threshold.\n")
		fmt.Fprintf(w, "# TYPE authsvc_lockouts_triggered_total counter\n")
		fmt.Fprintf(w, "authsvc_lockouts_triggered_total %d\n", svc.LockoutsTriggered())
	})
	s.rebuild()
	return s, nil
}

// LockoutsTriggered exposes the service core's lockout-crossing
// counter — how many accounts attack traffic actually locked since
// startup.
func (s *Server) LockoutsTriggered() int64 { return s.svc.LockoutsTriggered() }

// rebuild recomposes the middleware pipeline. Configuration setters
// call it; they must run before the server starts serving.
func (s *Server) rebuild() {
	s.limiter = par.NewLimiter(s.maxConns)
	// Ordering, outermost first:
	//   - Metrics outside everything but Recover, so refused and
	//     throttled responses show up in by_code and latency is the
	//     client-observed number.
	//   - Log just inside Metrics: it installs the per-request
	//     annotation the overload stage fills in (queue wait,
	//     shed/deadline outcome) and emits one line per request with
	//     the final code.
	//   - Deadline outside admission, so the request timeout — clamped
	//     to the request's propagated budget — bounds *queueing* too: a
	//     request stuck behind a saturated limiter is refused with
	//     CodeUnavailable instead of parking its transport goroutine
	//     forever.
	//   - UserRate outside admission, so a flood aimed at one user is
	//     shed before it competes for the shared concurrency budget.
	//   - Overload (or plain Admission when no policy is set) owns the
	//     shared limiter: bounded wait queue, priority watermarks,
	//     fast CodeOverloaded sheds.
	//   - InFlight inside admission, so the gauge's high-water mark is
	//     provably capped by the limiter.
	//   - Faults innermost: an injected latency spike must occupy a
	//     real admission slot — that is how a slow dependency actually
	//     starves a server, and what the overload policy must absorb.
	mw := []authsvc.Middleware{
		authsvc.WithRecover(),
		authsvc.WithMetrics(s.metrics),
	}
	if s.logw != nil {
		mw = append(mw, authsvc.WithLog(s.logw))
	}
	if s.session != nil {
		// Session outside deadline/rate/admission: a validate is a
		// sub-microsecond in-memory check, so it is answered here —
		// counted and logged, but never queued behind hash-heavy work
		// or charged an admission slot. Login minting and revocation
		// ride the response path, after the inner pipeline has spoken.
		mw = append(mw, authsvc.WithSession(s.session))
	}
	mw = append(mw,
		authsvc.WithDeadline(s.reqTimeout),
		authsvc.WithUserRate(s.userRate, s.userBurst),
	)
	if s.overload.Queue > 0 {
		mw = append(mw, authsvc.WithOverload(s.limiter, s.overload, s.metrics))
	} else {
		mw = append(mw, authsvc.WithAdmission(s.limiter))
	}
	mw = append(mw, authsvc.WithInFlight(s.metrics))
	if s.faults.Enabled() {
		mw = append(mw, authsvc.WithFaults(s.faults))
	}
	s.handler = authsvc.Chain(s.svc, mw...)
}

// SetMaxConns bounds both the shared request-admission limiter (all
// transports combined) and the per-Serve TCP connection pool (n <= 0
// restores DefaultMaxConns). Call before serving; the limits are read
// when serving starts.
func (s *Server) SetMaxConns(n int) {
	if n <= 0 {
		n = DefaultMaxConns
	}
	s.maxConns = n
	s.rebuild()
}

// SetUserRate enables per-user rate limiting across all transports:
// at most burst requests back to back per user, refilling at perSec
// per second. perSec <= 0 disables it (the default). Call before
// serving.
func (s *Server) SetUserRate(perSec float64, burst int) {
	s.userRate, s.userBurst = perSec, burst
	s.rebuild()
}

// SetOverload enables priority admission and load shedding: the
// shared limiter's wait queue is bounded at pol.Queue, low-priority
// work sheds at the policy's watermarks with fast CodeOverloaded
// responses, and requests that outlive their deadline in the queue
// are dropped before touching the vault. pol.Queue <= 0 restores the
// legacy unbounded-queue WithAdmission. Call before serving.
func (s *Server) SetOverload(pol authsvc.OverloadPolicy) {
	s.overload = pol
	s.rebuild()
}

// SetSession mounts the stateless session tier (internal/session's
// Manager, or any authsvc.SessionTier) on the pipeline: successful
// logins mint tokens, OpValidate is answered from memory on both the
// TCP and HTTP fronts, and password changes, resets, and lockouts
// revoke the user's outstanding tokens. nil removes it. Call before
// serving.
func (s *Server) SetSession(tier authsvc.SessionTier) {
	s.session = tier
	s.rebuild()
}

// SetFaults enables deterministic fault injection (latency spikes and
// injected errors) at the innermost pipeline stage — the pwserver
// -chaos switch. A zero FaultOptions disables it. Call before
// serving; for storage-level faults wrap the store with
// vault.NewFlaky before NewServer.
func (s *Server) SetFaults(o authsvc.FaultOptions) {
	s.faults = o
	s.rebuild()
}

// SetLogWriter enables the structured request log: one JSON line per
// request (id, op, user, code, latency, queue wait, shed/deadline
// outcome) written to w. nil disables it. Call before serving.
func (s *Server) SetLogWriter(w io.Writer) {
	s.logw = w
	s.rebuild()
}

// Metrics returns the server's shared metrics registry — request
// counts, latency, and the in-flight gauge across every transport.
func (s *Server) Metrics() *authsvc.Metrics { return s.metrics }

// Handle executes one wire request through the full pipeline. This is
// the transport-independent entry point used by both the TCP and HTTP
// front ends (and directly by tests).
func (s *Server) Handle(req Request) Response {
	return s.HandleContext(context.Background(), req)
}

// HandleContext is Handle with the transport's request context, so
// deadlines and cancellation propagate into the service.
func (s *Server) HandleContext(ctx context.Context, req Request) Response {
	return wireResponse(s.handler.Handle(ctx, req.service()))
}

// ErrServerClosed is returned by Serve on a server whose Shutdown has
// been initiated — the analogue of http.ErrServerClosed. A Serve loop
// already running when Shutdown begins still returns nil once its
// listener closes and its connections drain.
var ErrServerClosed = errors.New("authproto: server closed")

// Serve accepts connections until the listener is closed, dispatching
// each one to a bounded worker pool of at most SetMaxConns concurrent
// handlers. Each connection carries a sequence of request/response
// frames; each decoded frame is admitted through the server's shared
// request limiter before it is handled, so TCP and HTTP traffic
// together never exceed one concurrency budget. Serve returns only
// after every admitted connection has drained. Closing the listener
// alone stops admission but lets idle peers park until IdleTimeout
// expires; call Shutdown for a prompt drain — it also closes the
// listener, and additionally nudges idle connections so Serve returns
// within milliseconds of the last in-flight request.
func (s *Server) Serve(l net.Listener) error {
	// Registration and the shutdown flag are checked under one lock, so
	// a Serve racing a Shutdown either registers in time to have its
	// listener closed, or is refused — never left accepting on a port
	// Shutdown no longer knows about.
	if !s.registerListener(l) {
		return ErrServerClosed
	}
	defer s.unregisterListener(l)
	lim := par.NewLimiter(s.maxConns)
	defer lim.Drain()
	var acceptDelay time.Duration
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			if !transientAcceptError(err) {
				return err
			}
			// Transient accept failure (EMFILE under descriptor
			// exhaustion, aborted handshakes, timeouts): hot-looping
			// here would burn a core re-hitting the same condition and,
			// for EMFILE, prevent the descriptors we are waiting on from
			// ever draining. Back off exponentially with jitter —
			// doubling to a 1s cap, desynchronized so multiple accept
			// loops (TCP + TLS) do not retry in lockstep.
			if acceptDelay == 0 {
				acceptDelay = 5 * time.Millisecond
			} else if acceptDelay *= 2; acceptDelay > time.Second {
				acceptDelay = time.Second
			}
			time.Sleep(acceptDelay/2 + rand.N(acceptDelay/2))
			continue
		}
		acceptDelay = 0
		// Track before the shutdown check: once a connection is in
		// s.conns, Shutdown cannot report "drained" without either
		// waiting for it or (below) seeing it refused. The flag is read
		// after tracking, so every ordering lands in one of those two
		// cases.
		st := &connState{}
		s.trackConn(conn, st)
		if s.inShutdown.Load() {
			s.untrackConn(conn)
			conn.Close()
			// A Shutdown is in flight: stop accepting and close the
			// listener ourselves — the deferred unregister could
			// otherwise race ahead of Shutdown's close loop and leave
			// the port open with nobody accepting. This is a loop that
			// was running when Shutdown began, so it returns nil like
			// any other cleanly shut-down Serve.
			_ = l.Close()
			return nil
		}
		// Acquire blocks when maxConns handlers are in flight; further
		// peers wait in the accept queue — bounded workers, kernel-side
		// backpressure. The worker owns the conn's tracking lifetime;
		// serveConnState itself does none (it can be driven directly
		// over a net.Pipe in tests).
		lim.Go(func() {
			defer s.untrackConn(conn)
			s.serveConnState(conn, st)
		})
	}
}

// transientAcceptError classifies accept failures worth retrying
// with backoff: descriptor exhaustion (EMFILE/ENFILE), kernel buffer
// pressure (ENOBUFS/ENOMEM), handshakes the peer aborted before we
// got to them (ECONNABORTED/ECONNRESET), interrupted syscalls, and
// net.Error timeouts. Anything else (a closed or broken listener) is
// fatal to the accept loop.
func transientAcceptError(err error) bool {
	for _, errno := range []syscall.Errno{
		syscall.EMFILE, syscall.ENFILE, syscall.ENOBUFS, syscall.ENOMEM,
		syscall.ECONNABORTED, syscall.ECONNRESET, syscall.EINTR,
	} {
		if errors.Is(err, errno) {
			return true
		}
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// Shutdown gracefully stops the server: new connections are refused,
// idle connections are closed, and in-flight requests get to finish
// and write their response before their connection is torn down. It
// returns nil once every connection has drained, or ctx.Err() if the
// context expires first (remaining connections are then closed hard).
func (s *Server) Shutdown(ctx context.Context) error {
	s.inShutdown.Store(true)
	s.connMu.Lock()
	for l := range s.listeners {
		_ = l.Close()
	}
	s.connMu.Unlock()
	ticker := time.NewTicker(5 * time.Millisecond)
	defer ticker.Stop()
	for {
		s.connMu.Lock()
		n := len(s.conns)
		// Nudge blocked readers — but only connections parked *between*
		// requests (waiting for a frame's length prefix). A connection
		// mid-frame or mid-handler keeps its deadline and finishes its
		// request/response exchange, honoring the drain contract.
		// Re-arm every tick in case a handler re-parked after a late
		// response (serveConnState exits on the shutdown flag, so this
		// is belt and braces).
		for c, st := range s.conns {
			st.nudgeIfIdle(c)
		}
		s.connMu.Unlock()
		if n == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			s.connMu.Lock()
			for c := range s.conns {
				_ = c.Close()
			}
			s.connMu.Unlock()
			return ctx.Err()
		case <-ticker.C:
		}
	}
}

// registerListener adds l to the shutdown-controlled set; it refuses
// (returns false) on a server whose Shutdown has begun. The flag is
// read under connMu — the same lock Shutdown holds while closing
// listeners — so registration and shutdown cannot interleave.
func (s *Server) registerListener(l net.Listener) bool {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	if s.inShutdown.Load() {
		return false
	}
	s.listeners[l] = struct{}{}
	return true
}

func (s *Server) unregisterListener(l net.Listener) {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	delete(s.listeners, l)
}

func (s *Server) trackConn(c net.Conn, st *connState) {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	s.conns[c] = st
}

func (s *Server) untrackConn(c net.Conn) {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	delete(s.conns, c)
}

// IdleTimeout is how long a connection may sit between requests.
const IdleTimeout = 2 * time.Minute

// bodyTimeout bounds reading one frame's body once its length prefix
// has arrived — generous for a slow link pushing a MaxFrame payload,
// small enough that a stalled peer cannot pin a drain for long (a
// Shutdown past its context hard-closes regardless).
const bodyTimeout = 30 * time.Second

// connState is the per-connection handshake between the serving loop
// and Shutdown's nudger: idle means "parked waiting for the next
// request's length prefix", the only phase a drain may interrupt. The
// mutex makes phase transitions and deadline writes atomic, so a
// nudge can never clobber the fresh deadline of a connection that
// just started a frame body.
type connState struct {
	mu   sync.Mutex
	idle bool
}

// park enters the idle phase under the idle deadline.
func (st *connState) park(conn net.Conn) {
	st.mu.Lock()
	st.idle = true
	_ = conn.SetReadDeadline(time.Now().Add(IdleTimeout))
	st.mu.Unlock()
}

// resume leaves the idle phase and arms the body deadline.
func (st *connState) resume(conn net.Conn) {
	st.mu.Lock()
	st.idle = false
	_ = conn.SetReadDeadline(time.Now().Add(bodyTimeout))
	st.mu.Unlock()
}

// nudgeIfIdle expires the read deadline of a parked connection so its
// blocked prefix read fails immediately; mid-frame connections are
// left alone.
func (st *connState) nudgeIfIdle(conn net.Conn) {
	st.mu.Lock()
	if st.idle {
		_ = conn.SetReadDeadline(time.Now())
	}
	st.mu.Unlock()
}

// serveConn serves one connection with standalone state — the entry
// point for driving a connection outside a Serve accept loop (tests,
// net.Pipe).
func (s *Server) serveConn(conn net.Conn) {
	s.serveConnState(conn, &connState{})
}

func (s *Server) serveConnState(conn net.Conn, st *connState) {
	defer conn.Close()
	for {
		st.park(conn)
		n, err := readPrefix(conn)
		if err != nil {
			return // EOF, idle timeout, shutdown nudge, or bad size
		}
		st.resume(conn)
		var req Request
		if err := readBody(conn, n, &req); err != nil {
			return // timeout or malformed frame: drop the peer
		}
		var resp Response
		if req.Op == OpReset {
			// The administrative reset must not ride the public TCP
			// front: an online guesser could otherwise clear its own
			// failure counter and defeat the §5.1 lockout. Admin paths
			// are the in-process Handle and the HTTP AdminHandler.
			resp = wireResponse(authsvc.Response{
				Version: authsvc.Version,
				Code:    authsvc.CodeInvalid,
				Err:     "reset is admin-only; not served on this front",
			})
		} else {
			resp = s.HandleContext(context.Background(), req)
		}
		_ = conn.SetWriteDeadline(time.Now().Add(10 * time.Second))
		if err := writeFrame(conn, resp); err != nil {
			return
		}
		if s.inShutdown.Load() {
			return // drained: last response written, close gracefully
		}
	}
}

// readPrefix reads and validates a frame's 4-byte length prefix.
func readPrefix(r io.Reader) (uint32, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return 0, err
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n == 0 || n > MaxFrame {
		return 0, fmt.Errorf("authproto: frame size %d out of range", n)
	}
	return n, nil
}

// readBody reads an n-byte frame body and decodes it into v.
func readBody(r io.Reader, n uint32, v interface{}) error {
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return err
	}
	return json.Unmarshal(buf, v)
}

func readFrame(r io.Reader, v interface{}) error {
	n, err := readPrefix(r)
	if err != nil {
		return err
	}
	return readBody(r, n, v)
}

func writeFrame(w io.Writer, v interface{}) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if len(data) > MaxFrame {
		return fmt.Errorf("authproto: frame too large (%d bytes)", len(data))
	}
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(data)))
	if _, err := w.Write(lenBuf[:]); err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// Client is the raw framed-TCP codec client. Not safe for concurrent
// use; requests are serialized on one connection. For the
// transport-agnostic surface shared with HTTP, wrap it with
// DialService or see NewHTTPClient.
type Client struct {
	conn net.Conn
}

// Dial connects to a server.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("authproto: dial %s: %w", addr, err)
	}
	return &Client{conn: conn}, nil
}

// NewClient wraps an existing connection (e.g. net.Pipe in tests).
func NewClient(conn net.Conn) *Client { return &Client{conn: conn} }

// Do sends one request and reads the reply.
func (c *Client) Do(req Request) (Response, error) {
	if err := writeFrame(c.conn, req); err != nil {
		return Response{}, err
	}
	var resp Response
	if err := readFrame(c.conn, &resp); err != nil {
		return Response{}, err
	}
	return resp, nil
}

// Ping checks liveness.
func (c *Client) Ping() error {
	resp, err := c.Do(Request{Op: OpPing})
	if err != nil {
		return err
	}
	if !resp.OK {
		return fmt.Errorf("authproto: ping rejected: %s", resp.Error)
	}
	return nil
}

// Enroll registers a new password.
func (c *Client) Enroll(user string, clicks []dataset.Click) (Response, error) {
	return c.Do(Request{Op: OpEnroll, User: user, Clicks: clicks})
}

// Login attempts authentication.
func (c *Client) Login(user string, clicks []dataset.Click) (Response, error) {
	return c.Do(Request{Op: OpLogin, User: user, Clicks: clicks})
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Package passhash turns discretized click-point sequences into stored
// password verifiers.
//
// Following the paper (§3.1–3.2), the clear-text grid identifiers
// (offsets d, or the Robust grid index) and the secret segment indices
// of all click-points are concatenated and hashed together as one —
// never per click-point — so an attacker cannot match individual points
// and mount a divide-and-conquer attack. A per-user salt defeats
// precomputed dictionaries and iterated hashing (h^n) adds log2(n) bits
// of work per guess (§5.1: h^1000 ≈ +10 bits).
package passhash

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/binary"
	"fmt"
	"hash"
	"math"

	"clickpass/internal/core"
)

// SaltLen is the per-user salt length in bytes.
const SaltLen = 16

// DefaultIterations is the default hash iteration count; the paper
// suggests 1000 (≈ 10 bits of added attack cost).
const DefaultIterations = 1000

// Params fixes how verifiers are computed. The zero value is invalid;
// use NewParams or fill every field.
type Params struct {
	// Iterations is the hash iteration count, >= 1.
	Iterations int
	// Salt is the per-user salt.
	Salt []byte
}

// NewParams draws a fresh random salt from crypto/rand.
func NewParams(iterations int) (Params, error) {
	if iterations < 1 {
		return Params{}, fmt.Errorf("passhash: iterations %d < 1", iterations)
	}
	salt := make([]byte, SaltLen)
	if _, err := rand.Read(salt); err != nil {
		return Params{}, fmt.Errorf("passhash: reading salt: %w", err)
	}
	return Params{Iterations: iterations, Salt: salt}, nil
}

// Validate reports configuration errors.
func (p Params) Validate() error {
	if p.Iterations < 1 {
		return fmt.Errorf("passhash: iterations %d < 1", p.Iterations)
	}
	if len(p.Salt) == 0 {
		return fmt.Errorf("passhash: empty salt")
	}
	return nil
}

// AppendTokens appends the canonical byte encoding of a password's
// tokens to dst and returns the extended slice: for each click-point
// in order, the clear part (dx, dy, grid) followed by the secret part
// (ix, iy), all fixed-width big-endian. The encoding is injective so
// distinct discretizations never collide before hashing.
func AppendTokens(dst []byte, tokens []core.Token) []byte {
	var scratch [8]byte
	putI64 := func(v int64) {
		binary.BigEndian.PutUint64(scratch[:], uint64(v))
		dst = append(dst, scratch[:]...)
	}
	// Length prefix guards against ambiguity between different click
	// counts (defense in depth; the fixed width already prevents it).
	binary.BigEndian.PutUint16(scratch[:2], uint16(len(tokens)))
	dst = append(dst, scratch[:2]...)
	for _, t := range tokens {
		putI64(int64(t.Clear.DX))
		putI64(int64(t.Clear.DY))
		dst = append(dst, t.Clear.Grid)
		putI64(t.Secret.IX)
		putI64(t.Secret.IY)
	}
	return dst
}

// EncodeTokens returns the canonical byte encoding in a fresh buffer.
func EncodeTokens(tokens []core.Token) []byte {
	return AppendTokens(make([]byte, 0, len(tokens)*(8+8+1+8+8)+2), tokens)
}

// Hasher computes verifiers for one Params in bulk, amortizing the
// allocations Digest pays per call (a fresh HMAC instance and encode
// buffer): verify loops and offline attack engines hash millions of
// candidates under a single salt. Not safe for concurrent use; create
// one per goroutine.
type Hasher struct {
	iterations int
	mac        hash.Hash
	buf        []byte // reusable canonical-encoding buffer
	sum        []byte // reusable digest scratch for Verify
}

// NewHasher validates the parameters and keys the reusable HMAC.
func NewHasher(p Params) (*Hasher, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Hasher{iterations: p.Iterations, mac: hmac.New(sha256.New, p.Salt)}, nil
}

// DigestInto appends the verifier for tokens to dst and returns the
// extended slice. With a dst of sufficient capacity (sha256.Size
// beyond len(dst)) it performs no heap allocations.
func (h *Hasher) DigestInto(dst []byte, tokens []core.Token) []byte {
	h.buf = AppendTokens(h.buf[:0], tokens)
	h.mac.Reset()
	h.mac.Write(h.buf)
	start := len(dst)
	dst = h.mac.Sum(dst)
	for i := 1; i < h.iterations; i++ {
		h.mac.Reset()
		h.mac.Write(dst[start:])
		dst = h.mac.Sum(dst[:start])
	}
	return dst
}

// Verify recomputes the digest for candidate tokens and compares it to
// the stored verifier in constant time, reusing the Hasher's scratch.
func (h *Hasher) Verify(stored []byte, tokens []core.Token) bool {
	h.sum = h.DigestInto(h.sum[:0], tokens)
	return subtle.ConstantTimeCompare(stored, h.sum) == 1
}

// Digest computes the stored verifier for a token sequence under the
// given parameters: iterations of HMAC-SHA256 keyed by the salt over
// the canonical encoding. HMAC (rather than plain concatenation) binds
// the salt without length-extension concerns. One-shot wrapper around
// Hasher.DigestInto.
func Digest(p Params, tokens []core.Token) ([]byte, error) {
	h, err := NewHasher(p)
	if err != nil {
		return nil, err
	}
	return h.DigestInto(nil, tokens), nil
}

// Verify recomputes the digest for candidate tokens and compares it to
// the stored verifier in constant time.
func Verify(p Params, stored []byte, tokens []core.Token) (bool, error) {
	h, err := NewHasher(p)
	if err != nil {
		return false, err
	}
	return h.Verify(stored, tokens), nil
}

// AddedBits returns the attack-cost increase from iterated hashing in
// bits: log2(iterations). The paper's example: 1000 iterations add
// about 10 bits.
func AddedBits(iterations int) float64 {
	if iterations < 1 {
		return 0
	}
	return math.Log2(float64(iterations))
}

// Command pwbench measures the parallel experiment engine's hot paths
// at fixed worker counts and records the results as machine-readable
// JSON, so the perf trajectory of the engine is captured per commit
// instead of living only in PERFORMANCE.md prose.
//
// Each named path runs under testing.Benchmark at every requested
// worker count; pwbench writes one BENCH_<name>.json per path (ns/op,
// B/op, allocs/op, speedup vs workers=1) into -out and prints a
// Markdown speedup table to stdout (CI appends it to the job summary).
//
// Usage:
//
//	pwbench                                  # all paths, workers 1/2/4/8
//	pwbench -paths online,cohort -workers 1,8
//	pwbench -out bench -benchtime 200ms      # CI smoke settings
//	pwbench -store                           # vault backends -> BENCH_store.json
//	pwbench -session                         # token validate vs login -> BENCH_session.json
//	pwbench -redteam                         # wire red-team campaign -> BENCH_redteam.json
//	pwbench -diff . -out bench               # compare bench/ vs committed baselines
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"

	"clickpass/internal/analysis"
	"clickpass/internal/attack"
	"clickpass/internal/core"
	"clickpass/internal/dataset"
	"clickpass/internal/imagegen"
	"clickpass/internal/study"
)

// Run is one (path, workers) measurement.
type Run struct {
	Workers     int     `json:"workers"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// SpeedupVsSerial is ns/op at workers=1 divided by this run's
	// ns/op; 0 when no workers=1 run was requested.
	SpeedupVsSerial float64 `json:"speedup_vs_serial"`
}

// Bench is the BENCH_<name>.json document.
type Bench struct {
	Name       string `json:"name"`
	GoMaxProcs int    `json:"gomaxprocs"`
	NumCPU     int    `json:"numcpu"`
	Runs       []Run  `json:"runs"`
}

// fillSpeedups sets each run's SpeedupVsSerial from the workers=1 run.
func fillSpeedups(runs []Run) {
	var serial float64
	for _, r := range runs {
		if r.Workers == 1 {
			serial = r.NsPerOp
		}
	}
	for i := range runs {
		if serial > 0 && runs[i].NsPerOp > 0 {
			runs[i].SpeedupVsSerial = serial / runs[i].NsPerOp
		}
	}
}

// markdownTable renders the cross-path speedup summary CI publishes.
func markdownTable(benches []Bench) string {
	if len(benches) == 0 {
		return ""
	}
	var workers []int
	for _, r := range benches[0].Runs {
		workers = append(workers, r.Workers)
	}
	var b strings.Builder
	b.WriteString("| path |")
	for _, w := range workers {
		fmt.Fprintf(&b, " w=%d ns/op |", w)
	}
	b.WriteString(" best speedup |\n|---|")
	for range workers {
		b.WriteString("---|")
	}
	b.WriteString("---|\n")
	for _, bench := range benches {
		fmt.Fprintf(&b, "| %s |", bench.Name)
		best := 0.0
		for _, r := range bench.Runs {
			fmt.Fprintf(&b, " %.0f |", r.NsPerOp)
			if r.SpeedupVsSerial > best {
				best = r.SpeedupVsSerial
			}
		}
		fmt.Fprintf(&b, " %.2fx |\n", best)
	}
	return b.String()
}

func parseWorkers(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || w < 1 {
			return nil, fmt.Errorf("bad worker count %q", part)
		}
		out = append(out, w)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no worker counts")
	}
	return out, nil
}

// env is the shared data every path measures against, generated once.
type env struct {
	field, lab map[string]*dataset.Dataset
	images     []*imagegen.Image
}

func newBenchEnv(seed uint64, workers int) (*env, error) {
	e := &env{
		field:  map[string]*dataset.Dataset{},
		lab:    map[string]*dataset.Dataset{},
		images: imagegen.Gallery(),
	}
	for i, img := range e.images {
		fcfg := study.FieldConfig(img, seed+uint64(i))
		fcfg.Workers = workers
		f, err := study.Run(fcfg)
		if err != nil {
			return nil, err
		}
		lcfg := study.LabConfig(img, seed+100+uint64(i))
		lcfg.Workers = workers
		l, err := study.Run(lcfg)
		if err != nil {
			return nil, err
		}
		e.field[img.Name] = f
		e.lab[img.Name] = l
	}
	return e, nil
}

func (e *env) fieldAll() []*dataset.Dataset {
	var out []*dataset.Dataset
	for _, img := range e.images {
		out = append(out, e.field[img.Name])
	}
	return out
}

// paths returns the named hot paths as workers-parameterized closures;
// each returns an error so a misconfiguration fails the harness rather
// than recording garbage.
func (e *env) paths(seed uint64) (map[string]func(workers int) error, error) {
	robust, err := core.NewRobust2D(36, core.MostCentered, seed)
	if err != nil {
		return nil, err
	}
	centered, err := core.NewCentered(13)
	if err != nil {
		return nil, err
	}
	cars := e.images[0]
	return map[string]func(workers int) error{
		"online": func(workers int) error {
			_, err := attack.Online(e.field[cars.Name], e.lab[cars.Name], cars, robust, 30, workers)
			return err
		},
		"success": func(workers int) error {
			_, err := analysis.Success(e.fieldAll(), centered, workers)
			return err
		},
		"worstcase": func(workers int) error {
			_, err := analysis.FindWorstCase(36, core.MostCentered, seed, workers)
			return err
		},
		"cohort": func(workers int) error {
			cfg := study.DefaultCohort(cars, seed)
			cfg.Workers = workers
			_, err := study.RunCohort(cfg)
			return err
		},
	}, nil
}

func main() {
	testing.Init()
	var (
		outDir      = flag.String("out", ".", "directory for BENCH_<name>.json files")
		pathsArg    = flag.String("paths", "online,success,worstcase,cohort", "comma-separated hot paths to measure")
		workers     = flag.String("workers", "1,2,4,8", "comma-separated worker counts (1 is the speedup baseline)")
		seed        = flag.Uint64("seed", 42, "simulation seed")
		benchtime   = flag.String("benchtime", "1s", "per-measurement budget (testing -benchtime syntax)")
		storeOnly   = flag.Bool("store", false, "measure the vault store backends (incl. durable fsync policies) into BENCH_store.json instead of the engine paths")
		sessionOnly = flag.Bool("session", false, "measure session-token validation vs full-verify login into BENCH_session.json instead of the engine paths")
		redteamOnly = flag.Bool("redteam", false, "measure the scenario red-team campaign (streamed enroll + wire attack against an in-process server) into BENCH_redteam.json instead of the engine paths")
		diffDir     = flag.String("diff", "", "run no benchmarks; compare BENCH_*.json in -out against the baselines in this directory and exit 1 on regressions")
		threshold   = flag.Float64("threshold", 25, "with -diff: fail when a case is more than this percent slower than baseline after median normalization")
	)
	flag.Parse()
	if *diffDir != "" {
		if err := runDiff(*diffDir, *outDir, *threshold); err != nil {
			fatal(err)
		}
		return
	}
	if err := flag.Set("test.benchtime", *benchtime); err != nil {
		fatal(err)
	}
	if *storeOnly {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatal(err)
		}
		if err := runStoreBench(*outDir); err != nil {
			fatal(err)
		}
		return
	}
	counts, err := parseWorkers(*workers)
	if err != nil {
		fatal(err)
	}
	if *sessionOnly {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatal(err)
		}
		if err := runSessionBench(*outDir, counts); err != nil {
			fatal(err)
		}
		return
	}
	if *redteamOnly {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatal(err)
		}
		if err := runRedteamBench(*outDir, counts, *seed); err != nil {
			fatal(err)
		}
		return
	}
	e, err := newBenchEnv(*seed, 0)
	if err != nil {
		fatal(err)
	}
	paths, err := e.paths(*seed)
	if err != nil {
		fatal(err)
	}
	var names []string
	for _, name := range strings.Split(*pathsArg, ",") {
		name = strings.TrimSpace(name)
		if _, ok := paths[name]; !ok {
			known := make([]string, 0, len(paths))
			for k := range paths {
				known = append(known, k)
			}
			sort.Strings(known)
			fatal(fmt.Errorf("unknown path %q (have %s)", name, strings.Join(known, ", ")))
		}
		names = append(names, name)
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}
	var benches []Bench
	for _, name := range names {
		run := paths[name]
		bench := Bench{Name: name, GoMaxProcs: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU()}
		for _, w := range counts {
			var callErr error
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if err := run(w); err != nil {
						callErr = err
						b.FailNow()
					}
				}
			})
			if callErr != nil {
				fatal(fmt.Errorf("%s workers=%d: %w", name, w, callErr))
			}
			if r.N == 0 {
				fatal(fmt.Errorf("%s workers=%d: benchmark did not run", name, w))
			}
			bench.Runs = append(bench.Runs, Run{
				Workers:     w,
				NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
				BytesPerOp:  r.AllocedBytesPerOp(),
				AllocsPerOp: r.AllocsPerOp(),
			})
		}
		fillSpeedups(bench.Runs)
		benches = append(benches, bench)
		out, err := json.MarshalIndent(bench, "", "  ")
		if err != nil {
			fatal(err)
		}
		file := filepath.Join(*outDir, "BENCH_"+name+".json")
		if err := os.WriteFile(file, append(out, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "pwbench: wrote %s\n", file)
	}
	fmt.Print(markdownTable(benches))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pwbench:", err)
	os.Exit(1)
}

package authsvc

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"clickpass/internal/core"
	"clickpass/internal/dataset"
	"clickpass/internal/geom"
	"clickpass/internal/passpoints"
	"clickpass/internal/vault"
)

// The fault-injection torture run: a service over a durable store
// wrapped in vault.Flaky, with WithFaults injecting service-level
// errors and latency on top, hammered concurrently. The two
// correctness invariants under fire:
//
//  1. Zero false accepts — a wrong password never returns CodeOK, no
//     matter which faults fire around it.
//  2. Exact lockout counters — injected infrastructure errors consume
//     no lockout attempts (they are CodeInternal, not CodeDenied), so
//     every account sees exactly lockout-1 denials with strictly
//     decreasing Remaining, then CodeLocked forever.
func TestFaultTortureLockoutExact(t *testing.T) {
	scheme, err := core.NewCentered(13)
	if err != nil {
		t.Fatal(err)
	}
	cfg := passpoints.Config{
		Image:      geom.Size{W: 451, H: 331},
		Clicks:     5,
		Scheme:     scheme,
		Iterations: 2,
	}
	d, err := vault.OpenDurable(t.TempDir(), vault.DurableOptions{Shards: 4, Sync: vault.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	flaky := vault.NewFlaky(d, vault.FlakyOptions{
		Seed: 1234, ErrRate: 0.15, LatencyRate: 0.05, Latency: 200 * time.Microsecond,
		StallEvery: 50, Stall: time.Millisecond,
	})
	const lockout = 4
	svc, err := NewService(cfg, flaky, lockout)
	if err != nil {
		t.Fatal(err)
	}
	h := Chain(svc, WithRecover(), WithFaults(FaultOptions{
		Seed: 77, ErrRate: 0.1, LatencyRate: 0.05, Latency: 200 * time.Microsecond,
	}))

	good := func(u string) []dataset.Click {
		return []dataset.Click{{X: 30, Y: 40}, {X: 120, Y: 300}, {X: 222, Y: 51}, {X: 400, Y: 200}, {X: 77, Y: 160}}
	}
	bad := func(u string) []dataset.Click {
		return []dataset.Click{{X: 130, Y: 140}, {X: 20, Y: 200}, {X: 322, Y: 151}, {X: 300, Y: 100}, {X: 177, Y: 60}}
	}
	const perSide = 6
	users := make([]string, 0, 2*perSide)
	for i := 0; i < 2*perSide; i++ {
		u := fmt.Sprintf("torture-%d", i)
		users = append(users, u)
		// Enrollment itself runs under fault injection; retry past the
		// injected internal errors until it lands.
		enrolled := false
		for try := 0; try < 200 && !enrolled; try++ {
			resp := h.Handle(context.Background(), Request{Op: OpEnroll, User: u, Clicks: good(u)})
			switch resp.Code {
			case CodeOK:
				enrolled = true
			case CodeInternal:
			default:
				t.Fatalf("enroll %s: %+v", u, resp)
			}
		}
		if !enrolled {
			t.Fatalf("enroll %s never got past the fault injector", u)
		}
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		failures []string
	)
	report := func(format string, args ...any) {
		mu.Lock()
		failures = append(failures, fmt.Sprintf(format, args...))
		mu.Unlock()
	}

	// Correct-credential workers: users[0:perSide] only ever see their
	// own right password — any CodeDenied is a false reject, any
	// CodeLocked a phantom lockout.
	for w := 0; w < perSide; w++ {
		wg.Add(1)
		go func(u string) {
			defer wg.Done()
			for i := 0; i < 120; i++ {
				resp := h.Handle(context.Background(), Request{Op: OpLogin, User: u, Clicks: good(u)})
				switch resp.Code {
				case CodeOK:
					if resp.Remaining != lockout {
						report("%s: correct login Remaining = %d, want %d", u, resp.Remaining, lockout)
					}
				case CodeInternal:
					// An injected fault; must not consume budget (the next
					// OK asserting Remaining == lockout proves it didn't).
				default:
					report("%s: correct login got %s (%s)", u, resp.Code, resp.Err)
				}
			}
		}(users[w])
	}

	// Wrong-credential workers: users[perSide:] are only ever guessed
	// wrong. Each worker owns one account, so the denial sequence it
	// observes must be exact: Remaining lockout-1 .. 1, then locked.
	for w := 0; w < perSide; w++ {
		wg.Add(1)
		go func(u string) {
			defer wg.Done()
			wantRemaining := lockout - 1
			locked := false
			denials := 0
			for i := 0; i < 300; i++ {
				resp := h.Handle(context.Background(), Request{Op: OpLogin, User: u, Clicks: bad(u)})
				switch resp.Code {
				case CodeOK:
					report("%s: FALSE ACCEPT of a wrong password", u)
				case CodeInternal:
					// No budget consumed: the sequence below must continue
					// exactly where it left off.
				case CodeDenied:
					denials++
					if locked {
						report("%s: denial after lockout (counter went backwards)", u)
					} else if resp.Remaining != wantRemaining {
						report("%s: denial %d Remaining = %d, want %d", u, denials, resp.Remaining, wantRemaining)
					}
					wantRemaining--
				case CodeLocked:
					if !locked && wantRemaining != 0 {
						report("%s: locked with %d attempts unused", u, wantRemaining)
					}
					locked = true
				default:
					report("%s: wrong login got %s (%s)", u, resp.Code, resp.Err)
				}
			}
			if !locked {
				report("%s: 300 wrong attempts never locked the account", u)
			}
			if denials != lockout-1 {
				report("%s: %d denials, want exactly %d", u, denials, lockout-1)
			}
		}(users[perSide+w])
	}
	wg.Wait()
	for _, f := range failures {
		t.Error(f)
	}

	// The wrong-guessed accounts must stay locked for correct
	// credentials too, and an administrative reset (retried past
	// faults) must restore exactly the full budget.
	u := users[perSide]
	resp := h.Handle(context.Background(), Request{Op: OpLogin, User: u, Clicks: good(u)})
	for resp.Code == CodeInternal {
		resp = h.Handle(context.Background(), Request{Op: OpLogin, User: u, Clicks: good(u)})
	}
	if resp.Code != CodeLocked {
		t.Fatalf("locked account answered %s to the right password", resp.Code)
	}
	for {
		resp = h.Handle(context.Background(), Request{Op: OpReset, User: u})
		if resp.Code == CodeOK {
			break
		}
		if resp.Code != CodeInternal {
			t.Fatalf("reset: %+v", resp)
		}
	}
	resp = h.Handle(context.Background(), Request{Op: OpLogin, User: u, Clicks: good(u)})
	for resp.Code == CodeInternal {
		resp = h.Handle(context.Background(), Request{Op: OpLogin, User: u, Clicks: good(u)})
	}
	if resp.Code != CodeOK || resp.Remaining != lockout {
		t.Fatalf("post-reset login: %+v, want CodeOK with the full budget", resp)
	}
}

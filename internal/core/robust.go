package core

import (
	"fmt"

	"clickpass/internal/fixed"
	"clickpass/internal/rng"
)

// RobustPolicy selects which grid to use when a click-point is r-safe
// in more than one of the three Robust grids. The original paper left
// this unspecified; Chiasson et al. implement "optimal" Robust
// Discretization (MostCentered) to avoid misrepresenting the scheme.
type RobustPolicy int

const (
	// MostCentered picks the safe grid whose square the point is
	// deepest inside (maximum Chebyshev margin to the square's edges),
	// minimizing false accepts/rejects. This is the paper's choice.
	MostCentered RobustPolicy = iota
	// FirstSafe picks the lowest-numbered safe grid, the most naive
	// reading of Birget et al.
	FirstSafe
	// RandomSafe picks uniformly among safe grids, modelling an
	// implementation with no preference. Deterministic given the
	// scheme's seed.
	RandomSafe
)

// String names the policy for reports and flags.
func (p RobustPolicy) String() string {
	switch p {
	case MostCentered:
		return "most-centered"
	case FirstSafe:
		return "first-safe"
	case RandomSafe:
		return "random-safe"
	default:
		return fmt.Sprintf("RobustPolicy(%d)", int(p))
	}
}

// RobustND implements Robust Discretization in Dims dimensions with
// guaranteed tolerance R. It uses Dims+1 grids of hypercubes with side
// 2R(Dims+1), diagonally offset from each other by 2R — for the paper's
// 2-D case: three grids of 6r x 6r squares offset by 2r.
//
// Construct with NewRobust; the zero value is invalid.
type RobustND struct {
	R      fixed.Sub
	Dims   int
	Policy RobustPolicy

	rnd *rng.Source // used only by RandomSafe
}

// NewRobust returns a Robust Discretization scheme. seed is consumed
// only by the RandomSafe policy.
func NewRobust(r fixed.Sub, dims int, policy RobustPolicy, seed uint64) (*RobustND, error) {
	if r <= 0 {
		return nil, fmt.Errorf("core: tolerance r=%s must be positive", r)
	}
	if dims <= 0 {
		return nil, fmt.Errorf("core: dims=%d must be positive", dims)
	}
	switch policy {
	case MostCentered, FirstSafe, RandomSafe:
	default:
		return nil, fmt.Errorf("core: unknown policy %v", policy)
	}
	return &RobustND{R: r, Dims: dims, Policy: policy, rnd: rng.New(seed)}, nil
}

// GridCount returns the number of grids, Dims+1.
func (rb *RobustND) GridCount() int { return rb.Dims + 1 }

// Side returns the hypercube side length 2R(Dims+1); 6r in 2-D.
func (rb *RobustND) Side() fixed.Sub { return 2 * rb.R * fixed.Sub(rb.Dims+1) }

// RMax returns the largest accepted displacement: a re-entry farther
// than RMax from the original point on any axis is guaranteed rejected.
// In 2-D this is the paper's rmax = 5r (side - r).
func (rb *RobustND) RMax() fixed.Sub { return rb.Side() - rb.R }

// offset returns grid g's diagonal offset along every axis: g * 2R.
func (rb *RobustND) offset(g int) fixed.Sub { return fixed.Sub(g) * 2 * rb.R }

// axisMargin returns the distance from coordinate x to the nearest grid
// line of grid g along one axis.
func (rb *RobustND) axisMargin(x fixed.Sub, g int) fixed.Sub {
	side := int64(rb.Side())
	m := fixed.Mod(int64(x-rb.offset(g)), side)
	return fixed.Sub(min64(m, side-m))
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// SafeIn reports whether the point is r-safe in grid g: the closed
// ball of radius R around the point fits inside the point's (half-open)
// hypercube on every axis. Concretely, the in-cube position m must
// satisfy r <= m < side-r: closed on the low side, open on the high
// side, so that a re-entry displaced exactly +R never lands on a grid
// line. With this convention each axis has exactly one unsafe grid and
// acceptance guarantee (1) holds with closed tolerance |dx| <= R.
func (rb *RobustND) SafeIn(coords []fixed.Sub, g int) bool {
	rb.checkLen(len(coords))
	side := int64(rb.Side())
	for _, x := range coords {
		m := fixed.Mod(int64(x-rb.offset(g)), side)
		if m < int64(rb.R) || m >= side-int64(rb.R) {
			return false
		}
	}
	return true
}

// Margin returns the minimum over axes of the distance from the point
// to the nearest grid line of grid g — the Chebyshev margin the
// MostCentered policy maximizes.
func (rb *RobustND) Margin(coords []fixed.Sub, g int) fixed.Sub {
	rb.checkLen(len(coords))
	m := rb.axisMargin(coords[0], g)
	for _, x := range coords[1:] {
		m = fixed.Min(m, rb.axisMargin(x, g))
	}
	return m
}

// SafeGrids returns the grids in which the point is r-safe, in
// ascending order. Birget et al.'s theorem guarantees the result is
// non-empty; the property tests exercise this exhaustively.
func (rb *RobustND) SafeGrids(coords []fixed.Sub) []int {
	var safe []int
	for g := 0; g < rb.GridCount(); g++ {
		if rb.SafeIn(coords, g) {
			safe = append(safe, g)
		}
	}
	return safe
}

// ChooseGrid applies the configured policy to pick the enrollment grid.
// It panics if no grid is safe, which the scheme's geometry rules out.
func (rb *RobustND) ChooseGrid(coords []fixed.Sub) int {
	safe := rb.SafeGrids(coords)
	if len(safe) == 0 {
		panic(fmt.Sprintf("core: no r-safe grid for %v — Robust invariant violated", coords))
	}
	switch rb.Policy {
	case FirstSafe:
		return safe[0]
	case RandomSafe:
		return safe[rb.rnd.Intn(len(safe))]
	default: // MostCentered
		best, bestMargin := safe[0], rb.Margin(coords, safe[0])
		for _, g := range safe[1:] {
			if m := rb.Margin(coords, g); m > bestMargin {
				best, bestMargin = g, m
			}
		}
		return best
	}
}

// Discretize enrolls an original point: it chooses a grid and returns
// the grid identifier (clear) together with the per-axis indices of the
// hypercube containing the point (secret, hashed).
func (rb *RobustND) Discretize(coords []fixed.Sub) (grid int, idx []int64) {
	grid = rb.ChooseGrid(coords)
	return grid, rb.Locate(coords, grid)
}

// Locate returns the per-axis hypercube indices of a point in grid g.
func (rb *RobustND) Locate(coords []fixed.Sub, g int) []int64 {
	rb.checkLen(len(coords))
	side := int64(rb.Side())
	idx := make([]int64, rb.Dims)
	for k, x := range coords {
		idx[k] = fixed.FloorDiv(int64(x-rb.offset(g)), side)
	}
	return idx
}

// Accepts reports whether a candidate point falls in the enrolled
// hypercube (grid g, indices idx).
func (rb *RobustND) Accepts(g int, idx []int64, coords []fixed.Sub) bool {
	got := rb.Locate(coords, g)
	for k := range got {
		if got[k] != idx[k] {
			return false
		}
	}
	return true
}

// Cube returns the half-open extent [lo, hi) of hypercube idx in grid g
// along axis k.
func (rb *RobustND) Cube(g int, idx []int64, k int) (lo, hi fixed.Sub) {
	lo = fixed.Sub(idx[k]*int64(rb.Side())) + rb.offset(g)
	return lo, lo + rb.Side()
}

func (rb *RobustND) checkLen(n int) {
	if n != rb.Dims {
		panic(fmt.Sprintf("core: got %d coordinates, want %d", n, rb.Dims))
	}
}

package session

import (
	"testing"
	"time"
)

// FuzzValidateToken: no mutation of a valid token — bit flips,
// truncations, extensions, resigned or restructured frames — may ever
// validate, except the identity mutation. The fuzzer mutates the
// token string; the oracle is string equality with a known-good
// token, made sound by the Strict base64 decoding (each accepted
// token has exactly one spelling).
func FuzzValidateToken(f *testing.F) {
	clk := newClock()
	m, err := New(Options{TTL: time.Hour, Now: clk.now})
	if err != nil {
		f.Fatalf("New: %v", err)
	}
	defer m.Close()
	hm, err := New(Options{Alg: AlgHMAC, TTL: time.Hour, Now: clk.now})
	if err != nil {
		f.Fatalf("New hmac: %v", err)
	}
	defer hm.Close()

	goodEd, err := m.Mint("alice")
	if err != nil {
		f.Fatalf("Mint: %v", err)
	}
	goodHM, err := hm.Mint("alice")
	if err != nil {
		f.Fatalf("Mint hmac: %v", err)
	}
	// A structurally perfect token signed by a different key set.
	other, err := New(Options{TTL: time.Hour, Now: clk.now})
	if err != nil {
		f.Fatalf("New other: %v", err)
	}
	defer other.Close()
	resigned, err := other.Mint("alice")
	if err != nil {
		f.Fatalf("Mint other: %v", err)
	}

	f.Add(goodEd)
	f.Add(goodHM)
	f.Add(resigned)
	f.Add(goodEd[:len(goodEd)/2])
	f.Add(goodEd + "A")
	f.Add("")
	f.Add("not-base64-!!!")

	f.Fuzz(func(t *testing.T, token string) {
		if user, err := m.Validate(token); err == nil {
			if token != goodEd {
				t.Fatalf("mutated token validated on ed25519 manager as %q: %q", user, token)
			}
			if user != "alice" {
				t.Fatalf("valid token returned wrong user %q", user)
			}
		}
		if user, err := hm.Validate(token); err == nil {
			if token != goodHM {
				t.Fatalf("mutated token validated on hmac manager as %q: %q", user, token)
			}
			if user != "alice" {
				t.Fatalf("valid token returned wrong user %q", user)
			}
		}
	})
}

package vault

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// FuzzOpen: arbitrary vault-file bytes must never panic the loaders,
// and all three Store backends must agree byte-for-byte on what is a
// valid password file — Vault and Sharded load it directly, Durable
// through its ImportJSON migration path. Accepted input additionally
// round-trips through the durable backend's append log: every
// imported record is re-encoded as a WAL entry, replayed on reopen,
// and must come back identical. Seeds cover the failure classes the
// format rejects by contract: duplicate users, records without a
// user, and truncated JSON.
func FuzzOpen(f *testing.F) {
	f.Add([]byte(`[]`))
	f.Add([]byte(`[{"user":"a","kind":"centered","square_side_px":13}]`))
	// Duplicate users.
	f.Add([]byte(`[{"user":"a"},{"user":"a"}]`))
	// Empty user.
	f.Add([]byte(`[{"user":""}]`))
	f.Add([]byte(`[{"kind":"centered"}]`))
	// Truncated file (mid-record and mid-array).
	f.Add([]byte(`[{"user":"a","kind":"cente`))
	f.Add([]byte(`[{"user":"a"},`))
	// Null record, wrong top-level type, junk.
	f.Add([]byte(`[null]`))
	f.Add([]byte(`{"user":"a"}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte{0xff, 0xfe, 0x00})

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "vault.json")
		if err := os.WriteFile(path, data, 0o600); err != nil {
			t.Fatal(err)
		}
		v, vErr := Open(path)
		s, sErr := OpenSharded(path, 4)
		if (vErr == nil) != (sErr == nil) {
			t.Fatalf("backends disagree: Open err=%v, OpenSharded err=%v", vErr, sErr)
		}
		d, dOpenErr := OpenDurable(filepath.Join(dir, "wal"), DurableOptions{Shards: 3, Sync: SyncNever, NoAutoCompact: true})
		if dOpenErr != nil {
			t.Fatal(dOpenErr)
		}
		defer func() { d.Close() }() // d is rebound on reopen below
		dErr := d.ImportJSON(path)
		if (vErr == nil) != (dErr == nil) {
			t.Fatalf("backends disagree: Open err=%v, ImportJSON err=%v", vErr, dErr)
		}
		if vErr != nil {
			return
		}
		// Accepted input: both stores must hold the same records, and the
		// parsed state must survive a save/reload cycle.
		if v.Len() != s.Len() || v.Len() != d.Len() {
			t.Fatalf("backends loaded different counts: %d vs %d vs %d", v.Len(), s.Len(), d.Len())
		}
		// The imported records must also survive a WAL replay: reopen
		// the log directory and compare against the other backends.
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}
		d, dOpenErr = OpenDurable(filepath.Join(dir, "wal"), DurableOptions{Shards: 3, Sync: SyncNever, NoAutoCompact: true})
		if dOpenErr != nil {
			t.Fatalf("reopening WAL written from accepted input: %v", dOpenErr)
		}
		vUsers, sUsers, dUsers := v.Users(), s.Users(), d.Users()
		for i := range vUsers {
			if vUsers[i] != sUsers[i] || vUsers[i] != dUsers[i] {
				t.Fatalf("backends loaded different users: %v vs %v vs %v", vUsers, sUsers, dUsers)
			}
			vr, _ := v.Get(vUsers[i])
			sr, _ := s.Get(vUsers[i])
			dr, _ := d.Get(vUsers[i])
			vb, _ := json.Marshal(vr)
			sb, _ := json.Marshal(sr)
			db, _ := json.Marshal(dr)
			if string(vb) != string(sb) || string(vb) != string(db) {
				t.Fatalf("user %q differs across backends", vUsers[i])
			}
		}
		out := filepath.Join(dir, "resaved.json")
		if err := v.SaveTo(out); err != nil {
			t.Fatalf("SaveTo after accepting input: %v", err)
		}
		if _, err := Open(out); err != nil {
			t.Fatalf("accepted input did not round-trip: %v", err)
		}
	})
}

// Package authsvc is the transport-agnostic core of the PassPoints
// authentication service. It owns the business rules — enroll, login,
// change, administrative reset, and the per-account failed-attempt
// lockout of §5.1 — behind a single Handle(ctx, Request) Response
// entry point over versioned, typed request/response values.
//
// Transports (the framed-TCP codec, the HTTP/JSON mux, TLS — all in
// internal/authproto) are thin codecs over this package: they decode
// bytes into a Request, call one shared Handler, and encode the
// Response back out. Cross-cutting concerns — admission through a
// shared par.Limiter, per-user rate limiting, deadline propagation,
// panic containment, metrics — compose as Middleware around the
// Service, so every front end shares one pipeline, one concurrency
// limit, and one set of counters.
package authsvc

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"clickpass/internal/dataset"
	"clickpass/internal/geom"
	"clickpass/internal/passpoints"
	"clickpass/internal/vault"
)

// Version is the current wire-type version. Requests that do not carry
// an explicit version (legacy frames) are interpreted as version 1;
// requests from the future are refused with CodeInvalid rather than
// half-understood.
const Version = 1

// Op identifies a request type.
type Op string

// Service operations.
const (
	OpPing   Op = "ping"
	OpEnroll Op = "enroll"
	OpLogin  Op = "login"
	OpChange Op = "change" // replace the password after verifying the old one
	OpReset  Op = "reset"  // administrative: clear an account's lockout
)

// Request is one versioned service request. The zero Version means
// "version 1" so that legacy clients that never learned the field keep
// working unchanged.
type Request struct {
	Version   int             `json:"v,omitempty"`
	Op        Op              `json:"op"`
	User      string          `json:"user,omitempty"`
	Clicks    []dataset.Click `json:"clicks,omitempty"`
	NewClicks []dataset.Click `json:"new_clicks,omitempty"`
}

// Code is the typed outcome of a request — the enum that replaces the
// stringly OK/Locked flags the wire protocol grew up with. Transports
// map codes to their local idiom (HTTP status, TCP response flags);
// the strings themselves are wire-stable.
type Code string

// Response codes.
const (
	// CodeOK: the request succeeded.
	CodeOK Code = "ok"
	// CodeDenied: authentication failed (wrong password — or an
	// unknown user, deliberately indistinguishable).
	CodeDenied Code = "denied"
	// CodeLocked: the account is locked out (§5.1 online-attack
	// defense); an administrative reset is required.
	CodeLocked Code = "locked"
	// CodeThrottled: the per-user rate limit rejected the request.
	CodeThrottled Code = "throttled"
	// CodeExists: enrollment refused because the user already exists.
	CodeExists Code = "exists"
	// CodeInvalid: the request is malformed (unknown op, missing user,
	// bad click geometry, unsupported version).
	CodeInvalid Code = "invalid"
	// CodeUnavailable: the service could not take the request in time
	// (admission timed out, deadline expired, shutting down).
	CodeUnavailable Code = "unavailable"
	// CodeInternal: the service itself failed (storage error, panic).
	CodeInternal Code = "internal"
)

// Response is one versioned service response.
type Response struct {
	Version int    `json:"v,omitempty"`
	Code    Code   `json:"code"`
	Err     string `json:"error,omitempty"`
	// Remaining is the failed-login budget left for the account: on a
	// failure, how many attempts remain before lockout; on a
	// successful login, the full budget.
	Remaining int `json:"remaining,omitempty"`
}

// OK reports whether the request succeeded.
func (r Response) OK() bool { return r.Code == CodeOK }

// Locked reports whether the account is locked out.
func (r Response) Locked() bool { return r.Code == CodeLocked }

// Handler executes one request. Implementations must be safe for
// concurrent use; ctx carries the request deadline and cancellation
// from whatever transport accepted it.
type Handler interface {
	Handle(ctx context.Context, req Request) Response
}

// HandlerFunc adapts a function to Handler.
type HandlerFunc func(ctx context.Context, req Request) Response

// Handle calls f.
func (f HandlerFunc) Handle(ctx context.Context, req Request) Response { return f(ctx, req) }

// Middleware wraps a Handler with one cross-cutting concern.
type Middleware func(Handler) Handler

// Chain composes middleware around h: the first element is outermost,
// so Chain(h, a, b) handles a request as a(b(h)).
func Chain(h Handler, mw ...Middleware) Handler {
	for i := len(mw) - 1; i >= 0; i-- {
		h = mw[i](h)
	}
	return h
}

// Service is the stateful core: a vault.Store of enrolled records plus
// the in-memory failed-attempt counters. It implements Handler and is
// safe for concurrent use.
type Service struct {
	cfg     passpoints.Config
	store   vault.Store
	lockout int
	// dummy is a throwaway record verified against on unknown-user
	// logins, so that path costs the same hash work as a wrong
	// password and cannot be used as a timing oracle for user
	// enumeration.
	dummy *passpoints.Record

	mu       sync.Mutex
	failures map[string]int
}

// DefaultLockout is the failed-attempt budget per account.
const DefaultLockout = 10

// NewService validates the configuration and returns the service
// core. lockout <= 0 selects DefaultLockout. The store may be any
// vault.Store — the single-lock file vault or the sharded store.
func NewService(cfg passpoints.Config, store vault.Store, lockout int) (*Service, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if store == nil {
		return nil, fmt.Errorf("authsvc: nil store")
	}
	if lockout <= 0 {
		lockout = DefaultLockout
	}
	dummy, err := passpoints.Enroll(cfg, "\x00dummy", dummyClicks(cfg))
	if err != nil {
		return nil, fmt.Errorf("authsvc: building dummy record: %w", err)
	}
	return &Service{
		cfg:      cfg,
		store:    store,
		lockout:  lockout,
		dummy:    dummy,
		failures: make(map[string]int),
	}, nil
}

// dummyClicks spreads cfg.Clicks deterministic points across the image
// for the timing-equalization record.
func dummyClicks(cfg passpoints.Config) []geom.Point {
	pts := make([]geom.Point, cfg.Clicks)
	for i := range pts {
		pts[i] = geom.Pt((i*71+13)%cfg.Image.W, (i*53+29)%cfg.Image.H)
	}
	return pts
}

// Lockout returns the configured failed-attempt budget.
func (s *Service) Lockout() int { return s.lockout }

// Handle executes one request against the store. It implements
// Handler and is the innermost stage of every transport's pipeline.
func (s *Service) Handle(ctx context.Context, req Request) Response {
	if req.Version > Version {
		return Response{Version: Version, Code: CodeInvalid,
			Err: fmt.Sprintf("unsupported version %d", req.Version)}
	}
	if err := ctx.Err(); err != nil {
		return Response{Version: Version, Code: CodeUnavailable, Err: "deadline exceeded"}
	}
	switch req.Op {
	case OpPing:
		return Response{Version: Version, Code: CodeOK}
	case OpEnroll:
		return s.enroll(ctx, req)
	case OpLogin:
		return s.login(ctx, req)
	case OpChange:
		return s.change(ctx, req)
	case OpReset:
		s.mu.Lock()
		delete(s.failures, req.User)
		s.mu.Unlock()
		return Response{Version: Version, Code: CodeOK}
	default:
		return Response{Version: Version, Code: CodeInvalid,
			Err: fmt.Sprintf("unknown op %q", req.Op)}
	}
}

func (s *Service) enroll(ctx context.Context, req Request) Response {
	if req.User == "" {
		return Response{Version: Version, Code: CodeInvalid, Err: "user required"}
	}
	if resp, expired := deadlineCheck(ctx); expired {
		return resp
	}
	rec, err := passpoints.Enroll(s.cfg, req.User, clicksToPoints(req.Clicks))
	if err != nil {
		return Response{Version: Version, Code: CodeInvalid, Err: err.Error()}
	}
	if err := s.store.Put(rec); err != nil {
		if errors.Is(err, vault.ErrExists) {
			return Response{Version: Version, Code: CodeExists, Err: "user already enrolled"}
		}
		return Response{Version: Version, Code: CodeInternal, Err: err.Error()}
	}
	return Response{Version: Version, Code: CodeOK}
}

// login authenticates one attempt. Unknown users and wrong passwords
// share the failure path end to end: both consume a lockout attempt,
// both return byte-identical responses, and both perform one full
// digest comparison — the unknown-user branch against the dummy
// record — so response timing does not reveal which names exist.
func (s *Service) login(ctx context.Context, req Request) Response {
	if req.User == "" {
		return Response{Version: Version, Code: CodeInvalid, Err: "user required"}
	}
	if resp, expired := deadlineCheck(ctx); expired {
		return resp
	}
	s.mu.Lock()
	failed := s.failures[req.User]
	s.mu.Unlock()
	if failed >= s.lockout {
		return Response{Version: Version, Code: CodeLocked, Err: "account locked"}
	}
	rec, err := s.store.Get(req.User)
	if err != nil {
		// Equivalent work to the known-user path: a real hash compare,
		// discarded. The response is built by the same fail() as a
		// wrong password.
		_, _ = passpoints.Verify(s.cfg, s.dummy, clicksToPoints(req.Clicks))
		return s.fail(req.User)
	}
	ok, err := passpoints.Verify(s.cfg, rec, clicksToPoints(req.Clicks))
	if err != nil || !ok {
		return s.fail(req.User)
	}
	s.mu.Lock()
	delete(s.failures, req.User)
	s.mu.Unlock()
	return Response{Version: Version, Code: CodeOK, Remaining: s.lockout}
}

// change replaces an account's password after verifying the old one.
// Failed old-password checks consume lockout attempts exactly like
// failed logins, so change cannot be used to bypass rate limiting.
func (s *Service) change(ctx context.Context, req Request) Response {
	resp := s.login(ctx, Request{Op: OpLogin, User: req.User, Clicks: req.Clicks})
	if !resp.OK() {
		return resp
	}
	if resp, expired := deadlineCheck(ctx); expired {
		return resp
	}
	rec, err := passpoints.Enroll(s.cfg, req.User, clicksToPoints(req.NewClicks))
	if err != nil {
		return Response{Version: Version, Code: CodeInvalid, Err: err.Error()}
	}
	if err := s.store.Replace(rec); err != nil {
		return Response{Version: Version, Code: CodeInternal, Err: err.Error()}
	}
	return Response{Version: Version, Code: CodeOK}
}

// maxFailureEntries caps the failed-attempt map: login floods with
// attacker-chosen (mostly nonexistent) user names must not grow
// server memory without bound — the same discipline as the rate
// limiter's maxRateBuckets.
const maxFailureEntries = 1 << 16

func (s *Service) fail(user string) Response {
	s.mu.Lock()
	if _, tracked := s.failures[user]; !tracked && len(s.failures) >= maxFailureEntries {
		s.sweepFailures()
	}
	s.failures[user]++
	remaining := s.lockout - s.failures[user]
	s.mu.Unlock()
	if remaining <= 0 {
		return Response{Version: Version, Code: CodeLocked, Err: "account locked"}
	}
	return Response{Version: Version, Code: CodeDenied, Err: "login failed", Remaining: remaining}
}

// sweepFailures evicts sub-lockout counters when the map is at
// capacity, called with s.mu held. Locked accounts are never evicted
// — a name flood cannot lift an existing lockout — at the cost of
// resetting partial counters (an attacker mid-guess gets fresh
// attempts but pays the flood to earn them). If every entry is locked
// the map may exceed the cap; each such entry cost the flooder a full
// lockout's worth of requests, so growth is at least lockout-fold
// more expensive than the counter flood this bounds.
func (s *Service) sweepFailures() {
	for user, n := range s.failures {
		if n < s.lockout {
			delete(s.failures, user)
		}
	}
}

// deadlineCheck refuses a request whose context has already expired —
// the cooperative deadline gate placed before each hash-heavy stage.
// (It cannot interrupt a blocked store call; see WithDeadline.)
func deadlineCheck(ctx context.Context) (Response, bool) {
	if ctx.Err() != nil {
		return Response{Version: Version, Code: CodeUnavailable, Err: "deadline exceeded"}, true
	}
	return Response{}, false
}

func clicksToPoints(clicks []dataset.Click) []geom.Point {
	pts := make([]geom.Point, len(clicks))
	for i, c := range clicks {
		pts[i] = c.Point()
	}
	return pts
}

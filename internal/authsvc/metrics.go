package authsvc

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Metrics aggregates the serving pipeline's observability signals:
// request counts by op and by outcome code, latency (total, max, and
// per-request mean via the snapshot), and the in-flight gauge with its
// high-water mark. One Metrics instance is shared by every transport
// of a server, so the numbers describe the service, not one front end.
//
// The two concerns attach at different pipeline depths (see
// WithMetrics and WithInFlight): counts and latency are recorded
// outermost, so refused and throttled requests — the load an
// overloaded server sheds — are visible in by_code; the in-flight
// gauge runs inside admission, so its high-water mark is provably
// capped by the shared limiter.
//
// Safe for concurrent use; the zero value is ready.
type Metrics struct {
	inFlight atomic.Int64
	peak     atomic.Int64
	// sheds counts CodeOverloaded refusals by admission priority —
	// the load the overload policy deliberately turned away.
	sheds [numPriorities]atomic.Int64
	// Attacker-classification counters: failed credential checks and
	// locked-account refusals on the credential-bearing ops (login and
	// change). Legitimate users mistype occasionally; an online guesser
	// produces these in bulk, so the pair is the red-team harness's
	// server-side view of an attack in progress.
	credFailures   atomic.Int64
	lockedRefusals atomic.Int64

	mu       sync.Mutex
	byOp     map[Op]int64
	byCode   map[Code]int64
	requests int64
	latTotal time.Duration
	latMax   time.Duration
	// latBuckets is a cumulative-style histogram over latBounds
	// (bucket i counts requests with latency <= latBounds[i]; the last
	// slot is +Inf), stored as per-bucket counts and summed on export.
	latBuckets [len(latBounds) + 1]int64
	// Queue-wait observations from the overload middleware: time
	// admitted requests spent parked for a limiter slot, in aggregate
	// and broken down by admission priority. The per-tier split is
	// what makes priority inversion visible: under a storm the whole
	// point of the watermarks is that high-priority waits stay flat
	// while normal/low waits grow (until their tiers shed) — one
	// blended mean hides exactly that.
	queueWaitN     int64
	queueWaitTotal time.Duration
	queueWaitMax   time.Duration
	qwPriN         [numPriorities]int64
	qwPriTotal     [numPriorities]time.Duration
	qwPriMax       [numPriorities]time.Duration
}

// latBounds are the latency histogram bucket upper bounds. The
// geometric spacing covers the repo's whole dynamic range: sub-ms
// shed refusals at the bottom, fsync-bound durable writes and
// queue-delayed storm traffic at the top.
var latBounds = [...]time.Duration{
	100 * time.Microsecond, 250 * time.Microsecond, 500 * time.Microsecond,
	time.Millisecond, 2500 * time.Microsecond, 5 * time.Millisecond,
	10 * time.Millisecond, 25 * time.Millisecond, 50 * time.Millisecond,
	100 * time.Millisecond, 250 * time.Millisecond, 500 * time.Millisecond,
	time.Second, 2500 * time.Millisecond, 10 * time.Second,
}

// enter marks a request entering the handled (admitted) phase.
func (m *Metrics) enter() {
	n := m.inFlight.Add(1)
	for {
		p := m.peak.Load()
		if n <= p || m.peak.CompareAndSwap(p, n) {
			return
		}
	}
}

// leave marks a request leaving the handled phase.
func (m *Metrics) leave() { m.inFlight.Add(-1) }

// observe records one finished request's outcome and latency.
func (m *Metrics) observe(op Op, code Code, d time.Duration) {
	if op == OpLogin || op == OpChange {
		switch code {
		case CodeDenied:
			m.credFailures.Add(1)
		case CodeLocked:
			m.lockedRefusals.Add(1)
		}
	}
	m.mu.Lock()
	if m.byOp == nil {
		m.byOp = make(map[Op]int64)
		m.byCode = make(map[Code]int64)
	}
	m.byOp[op]++
	m.byCode[code]++
	m.requests++
	m.latTotal += d
	if d > m.latMax {
		m.latMax = d
	}
	i := 0
	for ; i < len(latBounds); i++ {
		if d <= latBounds[i] {
			break
		}
	}
	m.latBuckets[i]++
	m.mu.Unlock()
}

// observeShed counts one request refused with CodeOverloaded at the
// given admission priority.
func (m *Metrics) observeShed(p Priority) { m.sheds[p].Add(1) }

// observeQueueWait records the time an admitted request spent waiting
// for a limiter slot, attributed to its admission priority.
func (m *Metrics) observeQueueWait(d time.Duration, p Priority) {
	m.mu.Lock()
	m.queueWaitN++
	m.queueWaitTotal += d
	if d > m.queueWaitMax {
		m.queueWaitMax = d
	}
	if p >= 0 && p < numPriorities {
		m.qwPriN[p]++
		m.qwPriTotal[p] += d
		if d > m.qwPriMax[p] {
			m.qwPriMax[p] = d
		}
	}
	m.mu.Unlock()
}

// CredentialFailures returns the number of failed credential checks
// (CodeDenied on login/change) — the guess volume an online attacker
// spent against this server.
func (m *Metrics) CredentialFailures() int64 { return m.credFailures.Load() }

// LockedRefusals returns the number of credential-bearing requests
// refused because the account was already locked out — attempts an
// attacker paid for that bought zero verification work.
func (m *Metrics) LockedRefusals() int64 { return m.lockedRefusals.Load() }

// Sheds returns the total CodeOverloaded refusals across priorities.
func (m *Metrics) Sheds() int64 {
	var n int64
	for i := range m.sheds {
		n += m.sheds[i].Load()
	}
	return n
}

// InFlight returns the number of requests currently being handled.
func (m *Metrics) InFlight() int64 { return m.inFlight.Load() }

// Peak returns the high-water mark of the in-flight gauge — the
// observable proof that a shared admission limiter really caps the
// combined transports.
func (m *Metrics) Peak() int64 { return m.peak.Load() }

// Snapshot is a point-in-time copy of the counters, JSON-ready for the
// metrics endpoint.
type Snapshot struct {
	Requests  int64          `json:"requests"`
	InFlight  int64          `json:"in_flight"`
	Peak      int64          `json:"peak_in_flight"`
	ByOp      map[Op]int64   `json:"by_op,omitempty"`
	ByCode    map[Code]int64 `json:"by_code,omitempty"`
	LatMeanUs float64        `json:"latency_mean_us"`
	LatMaxUs  float64        `json:"latency_max_us"`
	// ShedByPriority counts overload refusals per admission priority.
	ShedByPriority map[string]int64 `json:"shed_by_priority,omitempty"`
	// CredentialFailures / LockedRefusals classify attack-shaped
	// traffic: failed credential checks and locked-account refusals on
	// the credential-bearing ops.
	CredentialFailures int64 `json:"credential_failures,omitempty"`
	LockedRefusals     int64 `json:"locked_refusals,omitempty"`
	// QueueWaitMeanUs / QueueWaitMaxUs describe time admitted requests
	// spent parked for a limiter slot.
	QueueWaitMeanUs float64 `json:"queue_wait_mean_us,omitempty"`
	QueueWaitMaxUs  float64 `json:"queue_wait_max_us,omitempty"`
	// QueueWaitByPriority breaks the queue-wait numbers down by
	// admission priority — flat "high" next to growing "normal" is the
	// overload policy working as designed.
	QueueWaitByPriority map[string]QueueWaitStat `json:"queue_wait_by_priority,omitempty"`
}

// QueueWaitStat is one priority tier's queue-wait summary.
type QueueWaitStat struct {
	Count  int64   `json:"count"`
	MeanUs float64 `json:"mean_us"`
	MaxUs  float64 `json:"max_us"`
}

// Snapshot copies the current counters.
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{
		InFlight:           m.inFlight.Load(),
		Peak:               m.peak.Load(),
		CredentialFailures: m.credFailures.Load(),
		LockedRefusals:     m.lockedRefusals.Load(),
	}
	for i := range m.sheds {
		if n := m.sheds[i].Load(); n > 0 {
			if s.ShedByPriority == nil {
				s.ShedByPriority = make(map[string]int64, numPriorities)
			}
			s.ShedByPriority[Priority(i).String()] = n
		}
	}
	m.mu.Lock()
	s.Requests = m.requests
	if len(m.byOp) > 0 {
		s.ByOp = make(map[Op]int64, len(m.byOp))
		for k, v := range m.byOp {
			s.ByOp[k] = v
		}
		s.ByCode = make(map[Code]int64, len(m.byCode))
		for k, v := range m.byCode {
			s.ByCode[k] = v
		}
	}
	if m.requests > 0 {
		s.LatMeanUs = float64(m.latTotal.Microseconds()) / float64(m.requests)
	}
	s.LatMaxUs = float64(m.latMax.Microseconds())
	if m.queueWaitN > 0 {
		s.QueueWaitMeanUs = float64(m.queueWaitTotal.Microseconds()) / float64(m.queueWaitN)
		s.QueueWaitMaxUs = float64(m.queueWaitMax.Microseconds())
	}
	for i := range m.qwPriN {
		if n := m.qwPriN[i]; n > 0 {
			if s.QueueWaitByPriority == nil {
				s.QueueWaitByPriority = make(map[string]QueueWaitStat, numPriorities)
			}
			s.QueueWaitByPriority[Priority(i).String()] = QueueWaitStat{
				Count:  n,
				MeanUs: float64(m.qwPriTotal[i].Microseconds()) / float64(n),
				MaxUs:  float64(m.qwPriMax[i].Microseconds()),
			}
		}
	}
	m.mu.Unlock()
	return s
}

// Handler serves the snapshot as JSON — pwserver's -metrics endpoint.
func (m *Metrics) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(m.Snapshot())
	})
}

// WritePrometheus writes the registry in the Prometheus text
// exposition format (version 0.0.4): counters by op and code, the
// in-flight gauge and its peak, per-priority shed counters,
// queue-wait aggregates, and the request latency histogram with
// cumulative le buckets.
func (m *Metrics) WritePrometheus(w io.Writer) {
	type sample struct {
		op    Op
		code  Code
		count int64
	}
	var (
		ops, codes []sample
		requests   int64
		latTotal   time.Duration
		buckets    [len(latBounds) + 1]int64
		qwN        int64
		qwTotal    time.Duration
		qwMax      time.Duration
		qpN        [numPriorities]int64
		qpTotal    [numPriorities]time.Duration
		qpMax      [numPriorities]time.Duration
	)
	m.mu.Lock()
	for op, n := range m.byOp {
		ops = append(ops, sample{op: op, count: n})
	}
	for code, n := range m.byCode {
		codes = append(codes, sample{code: code, count: n})
	}
	requests = m.requests
	latTotal = m.latTotal
	buckets = m.latBuckets
	qwN, qwTotal, qwMax = m.queueWaitN, m.queueWaitTotal, m.queueWaitMax
	qpN, qpTotal, qpMax = m.qwPriN, m.qwPriTotal, m.qwPriMax
	m.mu.Unlock()
	sort.Slice(ops, func(i, j int) bool { return ops[i].op < ops[j].op })
	sort.Slice(codes, func(i, j int) bool { return codes[i].code < codes[j].code })

	fmt.Fprintf(w, "# HELP authsvc_requests_total Requests handled, by operation.\n")
	fmt.Fprintf(w, "# TYPE authsvc_requests_total counter\n")
	for _, s := range ops {
		fmt.Fprintf(w, "authsvc_requests_total{op=%q} %d\n", s.op, s.count)
	}
	fmt.Fprintf(w, "# HELP authsvc_responses_total Responses issued, by outcome code.\n")
	fmt.Fprintf(w, "# TYPE authsvc_responses_total counter\n")
	for _, s := range codes {
		fmt.Fprintf(w, "authsvc_responses_total{code=%q} %d\n", s.code, s.count)
	}
	fmt.Fprintf(w, "# HELP authsvc_in_flight Requests currently being handled.\n")
	fmt.Fprintf(w, "# TYPE authsvc_in_flight gauge\n")
	fmt.Fprintf(w, "authsvc_in_flight %d\n", m.inFlight.Load())
	fmt.Fprintf(w, "# HELP authsvc_in_flight_peak High-water mark of the in-flight gauge.\n")
	fmt.Fprintf(w, "# TYPE authsvc_in_flight_peak gauge\n")
	fmt.Fprintf(w, "authsvc_in_flight_peak %d\n", m.peak.Load())
	fmt.Fprintf(w, "# HELP authsvc_shed_total Requests refused with code=overloaded, by admission priority.\n")
	fmt.Fprintf(w, "# TYPE authsvc_shed_total counter\n")
	for i := range m.sheds {
		fmt.Fprintf(w, "authsvc_shed_total{priority=%q} %d\n", Priority(i), m.sheds[i].Load())
	}
	fmt.Fprintf(w, "# HELP authsvc_credential_failures_total Failed credential checks (code=denied on login/change) — attack-shaped traffic.\n")
	fmt.Fprintf(w, "# TYPE authsvc_credential_failures_total counter\n")
	fmt.Fprintf(w, "authsvc_credential_failures_total %d\n", m.credFailures.Load())
	fmt.Fprintf(w, "# HELP authsvc_locked_refusals_total Credential requests refused because the account was locked out.\n")
	fmt.Fprintf(w, "# TYPE authsvc_locked_refusals_total counter\n")
	fmt.Fprintf(w, "authsvc_locked_refusals_total %d\n", m.lockedRefusals.Load())
	fmt.Fprintf(w, "# HELP authsvc_queue_wait_seconds_sum Total time admitted requests spent queued for a limiter slot.\n")
	fmt.Fprintf(w, "# TYPE authsvc_queue_wait_seconds_sum counter\n")
	fmt.Fprintf(w, "authsvc_queue_wait_seconds_sum %s\n", promFloat(qwTotal.Seconds()))
	fmt.Fprintf(w, "# HELP authsvc_queue_wait_seconds_count Admitted requests that reported a queue wait.\n")
	fmt.Fprintf(w, "# TYPE authsvc_queue_wait_seconds_count counter\n")
	fmt.Fprintf(w, "authsvc_queue_wait_seconds_count %d\n", qwN)
	fmt.Fprintf(w, "# HELP authsvc_queue_wait_seconds_max Longest observed queue wait.\n")
	fmt.Fprintf(w, "# TYPE authsvc_queue_wait_seconds_max gauge\n")
	fmt.Fprintf(w, "authsvc_queue_wait_seconds_max %s\n", promFloat(qwMax.Seconds()))
	fmt.Fprintf(w, "# HELP authsvc_queue_wait_priority_seconds_sum Queue wait, by admission priority.\n")
	fmt.Fprintf(w, "# TYPE authsvc_queue_wait_priority_seconds_sum counter\n")
	for i := range qpN {
		fmt.Fprintf(w, "authsvc_queue_wait_priority_seconds_sum{priority=%q} %s\n",
			Priority(i), promFloat(qpTotal[i].Seconds()))
	}
	fmt.Fprintf(w, "# HELP authsvc_queue_wait_priority_seconds_count Queue-wait observations, by admission priority.\n")
	fmt.Fprintf(w, "# TYPE authsvc_queue_wait_priority_seconds_count counter\n")
	for i := range qpN {
		fmt.Fprintf(w, "authsvc_queue_wait_priority_seconds_count{priority=%q} %d\n", Priority(i), qpN[i])
	}
	fmt.Fprintf(w, "# HELP authsvc_queue_wait_priority_seconds_max Longest observed queue wait, by admission priority.\n")
	fmt.Fprintf(w, "# TYPE authsvc_queue_wait_priority_seconds_max gauge\n")
	for i := range qpN {
		fmt.Fprintf(w, "authsvc_queue_wait_priority_seconds_max{priority=%q} %s\n",
			Priority(i), promFloat(qpMax[i].Seconds()))
	}
	fmt.Fprintf(w, "# HELP authsvc_request_duration_seconds Request latency, queueing included.\n")
	fmt.Fprintf(w, "# TYPE authsvc_request_duration_seconds histogram\n")
	var cum int64
	for i, bound := range latBounds {
		cum += buckets[i]
		fmt.Fprintf(w, "authsvc_request_duration_seconds_bucket{le=%q} %d\n",
			promFloat(bound.Seconds()), cum)
	}
	cum += buckets[len(latBounds)]
	fmt.Fprintf(w, "authsvc_request_duration_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(w, "authsvc_request_duration_seconds_sum %s\n", promFloat(latTotal.Seconds()))
	fmt.Fprintf(w, "authsvc_request_duration_seconds_count %d\n", requests)
}

// promFloat formats a float the way Prometheus text exposition
// expects: shortest round-trippable decimal.
func promFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// PrometheusHandler serves the registry in Prometheus text exposition
// format — the scrape target mounted at /metrics on pwserver's admin
// listener (the JSON snapshot moves to /metrics.json).
func (m *Metrics) PrometheusHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		m.WritePrometheus(w)
	})
}

package core

package authproto

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"fmt"
	"math/big"
	"net"
	"time"
)

// SelfSignedCert generates an ephemeral ECDSA P-256 certificate for
// the given host names, valid for the given duration — development and
// test deployments of pwserver; production should provision real
// certificates.
func SelfSignedCert(hosts []string, validFor time.Duration) (tls.Certificate, error) {
	if len(hosts) == 0 {
		return tls.Certificate{}, fmt.Errorf("authproto: no hosts for certificate")
	}
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return tls.Certificate{}, fmt.Errorf("authproto: generating key: %w", err)
	}
	serial, err := rand.Int(rand.Reader, new(big.Int).Lsh(big.NewInt(1), 128))
	if err != nil {
		return tls.Certificate{}, fmt.Errorf("authproto: serial: %w", err)
	}
	template := x509.Certificate{
		SerialNumber: serial,
		Subject:      pkix.Name{Organization: []string{"clickpass dev"}},
		NotBefore:    time.Now().Add(-time.Hour),
		NotAfter:     time.Now().Add(validFor),
		KeyUsage:     x509.KeyUsageKeyEncipherment | x509.KeyUsageDigitalSignature,
		ExtKeyUsage:  []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
	}
	for _, h := range hosts {
		if ip := net.ParseIP(h); ip != nil {
			template.IPAddresses = append(template.IPAddresses, ip)
		} else {
			template.DNSNames = append(template.DNSNames, h)
		}
	}
	der, err := x509.CreateCertificate(rand.Reader, &template, &template, &key.PublicKey, key)
	if err != nil {
		return tls.Certificate{}, fmt.Errorf("authproto: creating certificate: %w", err)
	}
	return tls.Certificate{
		Certificate: [][]byte{der},
		PrivateKey:  key,
	}, nil
}

// ServeTLS wraps Serve with a TLS listener using the given
// certificate.
func (s *Server) ServeTLS(l net.Listener, cert tls.Certificate) error {
	cfg := &tls.Config{
		Certificates: []tls.Certificate{cert},
		MinVersion:   tls.VersionTLS12,
	}
	return s.Serve(tls.NewListener(l, cfg))
}

// DialTLS connects to a TLS-wrapped server. rootDER, if non-nil, is a
// DER certificate to trust (pin) — the self-signed deployment case;
// otherwise the system roots are used.
func DialTLS(addr string, timeout time.Duration, rootDER []byte) (*Client, error) {
	cfg := &tls.Config{MinVersion: tls.VersionTLS12}
	if rootDER != nil {
		cert, err := x509.ParseCertificate(rootDER)
		if err != nil {
			return nil, fmt.Errorf("authproto: parsing pinned root: %w", err)
		}
		pool := x509.NewCertPool()
		pool.AddCert(cert)
		cfg.RootCAs = pool
	}
	dialer := &net.Dialer{Timeout: timeout}
	conn, err := tls.DialWithDialer(dialer, "tcp", addr, cfg)
	if err != nil {
		return nil, fmt.Errorf("authproto: tls dial %s: %w", addr, err)
	}
	return &Client{conn: conn}, nil
}

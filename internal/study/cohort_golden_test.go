package study

import (
	"crypto/sha256"
	"encoding/hex"
	"testing"

	"clickpass/internal/imagegen"
)

// TestRunCohortGolden pins RunCohort's exact output on a fixed seed —
// the last of the experiment engine's golden safety nets (Online,
// Success and FindWorstCase got theirs when they were still serial).
// The pin is the SHA-256 of the JSON wire encoding, so any divergence
// in click bytes, ordering, or ID assignment fails, at every worker
// count: per-participant rng streams are split off the seed serially
// before the fan-out, so scheduling must never reach the data.
func TestRunCohortGolden(t *testing.T) {
	goldens := map[string]struct {
		passwords, logins int
		sha               string
	}{
		"cars": {236, 1639, "8e50ddb1cd75803307516069ee82210a311acdae3ff865dc3f1a22c070775285"},
		"pool": {233, 1623, "95d5d9dcdcb583c477c74a2e5b82fcfcff80eec02b65aa48d63c46b777bb7687"},
	}
	for _, img := range imagegen.Gallery() {
		g := goldens[img.Name]
		for _, workers := range []int{1, 2, 8} {
			cfg := DefaultCohort(img, 31)
			cfg.Workers = workers
			d, err := RunCohort(cfg)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", img.Name, workers, err)
			}
			if len(d.Passwords) != g.passwords || len(d.Logins) != g.logins {
				t.Errorf("%s workers=%d: %d passwords, %d logins, want %d, %d",
					img.Name, workers, len(d.Passwords), len(d.Logins), g.passwords, g.logins)
			}
			h := sha256.New()
			if err := d.WriteJSON(h); err != nil {
				t.Fatal(err)
			}
			if got := hex.EncodeToString(h.Sum(nil)); got != g.sha {
				t.Errorf("%s workers=%d: dataset sha256 = %s, want %s", img.Name, workers, got, g.sha)
			}
		}
	}
}

package core

// Randomized property tests complementing the exhaustive-window tests:
// the same invariants over arbitrary coordinates anywhere on the line,
// driven by testing/quick.

import (
	"testing"
	"testing/quick"

	"clickpass/internal/fixed"
	"clickpass/internal/geom"
)

// clampPt maps arbitrary int16 pairs onto a plausible click position.
func clampPt(x, y int16) geom.Point {
	return geom.Pt(int(uint16(x)%2000), int(uint16(y)%2000))
}

// Property: Centered2D acceptance equals the Chebyshev ball, for any
// point and displacement.
func TestPropertyCenteredEqualsChebyshev(t *testing.T) {
	c, err := NewCentered(13)
	if err != nil {
		t.Fatal(err)
	}
	f := func(x, y, dx, dy int16) bool {
		p := clampPt(x, y)
		q := p.Add(geom.Pt(int(dx%40), int(dy%40)))
		tok := c.Enroll(p)
		return Accepts(c, tok, q) == (p.Chebyshev(q) <= c.MaxAccepted())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// Property: a Robust enrollment always yields an r-safe square that
// contains the point with margin in [r, side/2].
func TestPropertyRobustMarginBounds(t *testing.T) {
	for _, policy := range []RobustPolicy{MostCentered, FirstSafe, RandomSafe} {
		rb, err := NewRobust2D(19, policy, 99)
		if err != nil {
			t.Fatal(err)
		}
		f := func(x, y int16) bool {
			p := clampPt(x, y)
			tok := rb.Enroll(p)
			region := rb.Region(tok)
			m := region.Margin(p)
			return m >= rb.GuaranteedR() && m <= rb.SquareSide()/2 &&
				region.W() == rb.SquareSide() && region.H() == rb.SquareSide()
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
			t.Errorf("policy %v: %v", policy, err)
		}
	}
}

// Property: Robust guarantees hold for arbitrary points — acceptance
// within r, rejection beyond 5r.
func TestPropertyRobustGuarantees(t *testing.T) {
	rb, err := NewRobust2D(24, MostCentered, 7) // r = 4px
	if err != nil {
		t.Fatal(err)
	}
	f := func(x, y int16, dxRaw, dyRaw uint8) bool {
		p := clampPt(x, y)
		tok := rb.Enroll(p)
		// Within r: accept.
		dxIn := int(dxRaw%9) - 4 // [-4, 4]
		dyIn := int(dyRaw%9) - 4
		if !Accepts(rb, tok, p.Add(geom.Pt(dxIn, dyIn))) {
			return false
		}
		// Beyond 5r = 20 on one axis: reject.
		dxOut := 21 + int(dxRaw%30)
		return !Accepts(rb, tok, p.Add(geom.Pt(dxOut, 0)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: Centered2D agrees with CenteredND(dims=2) on every input.
func TestPropertyCentered2DMatchesND(t *testing.T) {
	c2, err := NewCentered(13)
	if err != nil {
		t.Fatal(err)
	}
	nd := CenteredND{R: fixed.Sub(13) * fixed.Scale / 2, Dims: 2}
	f := func(x, y, qx, qy int16) bool {
		p := clampPt(x, y)
		q := clampPt(qx, qy)
		tok := c2.Enroll(p)
		idx, off := nd.Discretize([]fixed.Sub{p.X, p.Y})
		if idx[0] != tok.Secret.IX || idx[1] != tok.Secret.IY {
			return false
		}
		if off[0] != tok.Clear.DX || off[1] != tok.Clear.DY {
			return false
		}
		return Accepts(c2, tok, q) == nd.Accepts(idx, off, []fixed.Sub{q.X, q.Y})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: tokens are stable — re-enrolling the same point yields the
// same token (determinism matters for MostCentered and FirstSafe; the
// RandomSafe policy is exempt by design).
func TestPropertyEnrollDeterministic(t *testing.T) {
	c, err := NewCentered(19)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := NewRobust2D(19, MostCentered, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []Scheme{c, rb} {
		f := func(x, y int16) bool {
			p := clampPt(x, y)
			return s.Enroll(p) == s.Enroll(p)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
			t.Errorf("%s: %v", s.Name(), err)
		}
	}
}

// Property: the clear offsets of Centered enrollment are always in
// [0, 2r) and pixel-aligned remainders for pixel inputs (the grid
// identifier count of §5.2 depends on this).
func TestPropertyCenteredOffsetRange(t *testing.T) {
	c, err := NewCentered(13)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[fixed.Sub]bool)
	f := func(x, y int16) bool {
		p := clampPt(x, y)
		tok := c.Enroll(p)
		seen[tok.Clear.DX] = true
		return tok.Clear.DX >= 0 && tok.Clear.DX < c.SquareSide() &&
			tok.Clear.DY >= 0 && tok.Clear.DY < c.SquareSide()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
	// For integer-pixel inputs there are exactly side distinct offset
	// values per axis (13 here -> 13^2 grids, §3.2's example logic).
	if len(seen) > 13 {
		t.Errorf("observed %d distinct x-offsets, want <= 13", len(seen))
	}
}

// Property: Robust Locate is translation-consistent — shifting a point
// by exactly one square side shifts its index by one.
func TestPropertyRobustTranslation(t *testing.T) {
	rb, err := NewRobust2D(13, MostCentered, 1)
	if err != nil {
		t.Fatal(err)
	}
	f := func(x, y int16, g uint8) bool {
		p := clampPt(x, y)
		grid := Clear{Grid: g % 3}
		a := rb.Locate(p, grid)
		b := rb.Locate(p.Add(geom.Pt(13, 0)), grid)
		return b.IX == a.IX+1 && b.IY == a.IY
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: Robust2D.Enroll's hand-inlined 2-D fast path (chooseGrid2D
// + inline Locate) is equivalent to the generic RobustND path, for
// every policy. The two instances are seeded identically and fed the
// same point sequence, so under RandomSafe this also pins that both
// consume exactly one Intn per enrollment — a divergence would desync
// the RNG streams and show up immediately.
func TestPropertyRobust2DEnrollMatchesND(t *testing.T) {
	for _, policy := range []RobustPolicy{MostCentered, FirstSafe, RandomSafe} {
		for _, side := range []int{13, 36} {
			fast, err := NewRobust2D(side, policy, 9)
			if err != nil {
				t.Fatal(err)
			}
			// The generic twin: r = sidePx/6 pixels is sidePx sub units
			// (what NewRobust2D constructs internally).
			nd, err := NewRobust(fixed.Sub(side), 2, policy, 9)
			if err != nil {
				t.Fatal(err)
			}
			f := func(x, y int16) bool {
				p := clampPt(x, y)
				tok := fast.Enroll(p)
				g, idx := nd.Discretize([]fixed.Sub{p.X, p.Y})
				return tok.Clear.Grid == uint8(g) &&
					tok.Secret.IX == idx[0] && tok.Secret.IY == idx[1]
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
				t.Errorf("%v side %d: %v", policy, side, err)
			}
		}
	}
}

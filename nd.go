package clickpass

import (
	"fmt"

	"clickpass/internal/core"
	"clickpass/internal/fixed"
	"clickpass/internal/passhash"
)

// NDAuthenticator applies Centered Discretization in n dimensions
// (paper §3.2): passwords are sequences of points in an n-dimensional
// space (e.g. positions in a 3-D scene), each accepted within an exact
// per-axis tolerance. Coordinates are integers in scene units; the
// tolerance is expressed in half-units so odd cells center exactly.
type NDAuthenticator struct {
	scheme     core.CenteredND
	dims       int
	points     int
	iterations int
}

// NDOptions configures an NDAuthenticator.
type NDOptions struct {
	// Dims is the dimensionality (3 for a 3-D scene).
	Dims int
	// ToleranceHalfUnits is the per-axis tolerance in half units: 9
	// means ±4.5 units.
	ToleranceHalfUnits int
	// Points is the number of selected points per password (default 3).
	Points int
	// HashIterations is the iterated-hash count (default 1000).
	HashIterations int
}

// NDRecord is the stored verifier for an n-D password.
type NDRecord struct {
	Dims       int       `json:"dims"`
	Offsets    [][]int64 `json:"offsets"` // clear, per point per axis, sub-units
	Salt       []byte    `json:"salt"`
	Iterations int       `json:"iterations"`
	Digest     []byte    `json:"digest"`
}

// NewND validates options and builds an n-dimensional authenticator.
func NewND(opts NDOptions) (*NDAuthenticator, error) {
	if opts.Points == 0 {
		opts.Points = 3
	}
	if opts.HashIterations == 0 {
		opts.HashIterations = passhash.DefaultIterations
	}
	if opts.HashIterations < 0 {
		return nil, fmt.Errorf("clickpass: negative hash iterations")
	}
	if opts.ToleranceHalfUnits <= 0 {
		return nil, fmt.Errorf("clickpass: tolerance %d half-units must be positive", opts.ToleranceHalfUnits)
	}
	scheme := core.CenteredND{
		R:    fixed.FromHalfPixels(opts.ToleranceHalfUnits),
		Dims: opts.Dims,
	}
	if err := scheme.Validate(); err != nil {
		return nil, err
	}
	if opts.Points <= 0 {
		return nil, fmt.Errorf("clickpass: points %d must be positive", opts.Points)
	}
	return &NDAuthenticator{
		scheme:     scheme,
		dims:       opts.Dims,
		points:     opts.Points,
		iterations: opts.HashIterations,
	}, nil
}

// EnrollND creates a record from a password of points, each an n-tuple
// of integer scene coordinates.
func (a *NDAuthenticator) EnrollND(points [][]int) (*NDRecord, error) {
	if err := a.checkShape(points); err != nil {
		return nil, err
	}
	params, err := passhash.NewParams(a.iterations)
	if err != nil {
		return nil, err
	}
	tokens, offsets := a.tokenize(points, nil)
	digest, err := passhash.Digest(params, tokens)
	if err != nil {
		return nil, err
	}
	return &NDRecord{
		Dims:       a.dims,
		Offsets:    offsets,
		Salt:       params.Salt,
		Iterations: params.Iterations,
		Digest:     digest,
	}, nil
}

// VerifyND checks a re-entered password against a record.
func (a *NDAuthenticator) VerifyND(rec *NDRecord, points [][]int) (bool, error) {
	if rec == nil {
		return false, fmt.Errorf("clickpass: nil record")
	}
	if rec.Dims != a.dims {
		return false, fmt.Errorf("clickpass: record has %d dims, authenticator %d", rec.Dims, a.dims)
	}
	if err := a.checkShape(points); err != nil {
		return false, err
	}
	if len(rec.Offsets) != len(points) {
		return false, nil
	}
	tokens, _ := a.tokenize(points, rec.Offsets)
	params := passhash.Params{Iterations: rec.Iterations, Salt: rec.Salt}
	return passhash.Verify(params, rec.Digest, tokens)
}

// tokenize maps points to hashable tokens. With storedOffsets nil this
// is enrollment (offsets computed from the points); otherwise the
// stored offsets locate each point's cell. n-D tokens are folded into
// the 2-D token encoding by emitting one token per coordinate pair,
// padding odd dimensionality with a zero axis — injective because the
// dimension count is fixed by configuration.
func (a *NDAuthenticator) tokenize(points [][]int, storedOffsets [][]int64) (tokens []core.Token, offsets [][]int64) {
	for pi, p := range points {
		coords := make([]fixed.Sub, a.dims)
		for k, v := range p {
			coords[k] = fixed.FromPixels(v)
		}
		var idx []int64
		var off []fixed.Sub
		if storedOffsets == nil {
			idx, off = a.scheme.Discretize(coords)
		} else {
			off = make([]fixed.Sub, a.dims)
			for k, v := range storedOffsets[pi] {
				if k < a.dims {
					off[k] = fixed.Sub(v)
				}
			}
			idx = a.scheme.Locate(coords, off)
		}
		rawOff := make([]int64, a.dims)
		for k := range off {
			rawOff[k] = int64(off[k])
		}
		offsets = append(offsets, rawOff)
		for k := 0; k < a.dims; k += 2 {
			tok := core.Token{
				Clear:  core.Clear{DX: off[k]},
				Secret: core.Secret{IX: idx[k]},
			}
			if k+1 < a.dims {
				tok.Clear.DY = off[k+1]
				tok.Secret.IY = idx[k+1]
			}
			tokens = append(tokens, tok)
		}
	}
	return tokens, offsets
}

func (a *NDAuthenticator) checkShape(points [][]int) error {
	if len(points) != a.points {
		return fmt.Errorf("clickpass: got %d points, want %d", len(points), a.points)
	}
	for i, p := range points {
		if len(p) != a.dims {
			return fmt.Errorf("clickpass: point %d has %d coordinates, want %d", i, len(p), a.dims)
		}
	}
	return nil
}

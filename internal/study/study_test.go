package study

import (
	"bytes"
	"testing"

	"clickpass/internal/geom"
	"clickpass/internal/imagegen"
	"clickpass/internal/rng"
)

func smallConfig() Config {
	return Config{
		Image:             imagegen.Cars(),
		Passwords:         20,
		LoginsPerPassword: 4,
		Clicks:            5,
		MinSeparation:     15,
		Error:             DefaultErrorModel(),
		Seed:              1,
	}
}

func TestRunShape(t *testing.T) {
	d, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Passwords) != 20 {
		t.Errorf("passwords = %d, want 20", len(d.Passwords))
	}
	if len(d.Logins) != 80 {
		t.Errorf("logins = %d, want 80", len(d.Logins))
	}
	for _, p := range d.Passwords {
		if len(p.Clicks) != 5 {
			t.Fatalf("password %d has %d clicks", p.ID, len(p.Clicks))
		}
	}
	if err := d.Validate(); err != nil {
		t.Errorf("generated dataset invalid: %v", err)
	}
}

func TestRunDeterministic(t *testing.T) {
	d1, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range d1.Passwords {
		for j := range d1.Passwords[i].Clicks {
			if d1.Passwords[i].Clicks[j] != d2.Passwords[i].Clicks[j] {
				t.Fatal("same seed produced different passwords")
			}
		}
	}
	for i := range d1.Logins {
		for j := range d1.Logins[i].Clicks {
			if d1.Logins[i].Clicks[j] != d2.Logins[i].Clicks[j] {
				t.Fatal("same seed produced different logins")
			}
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	cfg2 := smallConfig()
	cfg2.Seed = 2
	d1, _ := Run(smallConfig())
	d2, _ := Run(cfg2)
	same := true
	for i := range d1.Passwords {
		for j := range d1.Passwords[i].Clicks {
			if d1.Passwords[i].Clicks[j] != d2.Passwords[i].Clicks[j] {
				same = false
			}
		}
	}
	if same {
		t.Error("different seeds produced identical studies")
	}
}

func TestMinSeparationRespected(t *testing.T) {
	d, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range d.Passwords {
		pts := p.Points()
		for i := range pts {
			for j := i + 1; j < len(pts); j++ {
				if pts[i].Chebyshev(pts[j]).Pixels() < 15 {
					t.Fatalf("password %d: clicks %d and %d closer than 15px", p.ID, i, j)
				}
			}
		}
	}
}

// TestLoginAccuracy: with the default error model, most login clicks
// stay within a centered 13x13 tolerance of the original — the paper's
// "users were very accurate" footnote.
func TestLoginAccuracy(t *testing.T) {
	cfg := smallConfig()
	cfg.Passwords = 100
	d, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	within6, total := 0, 0
	for _, l := range d.Logins {
		orig := d.PasswordByID(l.PasswordID)
		for j := range l.Clicks {
			total++
			if orig.Clicks[j].Point().Chebyshev(l.Clicks[j].Point()) <= geom.Pt(6, 0).X {
				within6++
			}
		}
	}
	frac := float64(within6) / float64(total)
	if frac < 0.9 {
		t.Errorf("only %.1f%% of login clicks within 6px — model too sloppy", 100*frac)
	}
	if frac > 0.999 {
		t.Errorf("%.2f%% of login clicks within 6px — model implausibly perfect", 100*frac)
	}
}

func TestErrorModelValidate(t *testing.T) {
	bad := []ErrorModel{
		{MotorSigma: 0, SlipProb: 0, SlipSigma: 1, MaxError: 10},
		{MotorSigma: 1, SlipProb: -0.1, SlipSigma: 1, MaxError: 10},
		{MotorSigma: 1, SlipProb: 1.5, SlipSigma: 1, MaxError: 10},
		{MotorSigma: 1, SlipProb: 0.1, SlipSigma: 0, MaxError: 10},
		{MotorSigma: 1, SlipProb: 0.1, SlipSigma: 3, MaxError: 0},
	}
	for i, e := range bad {
		if err := e.Validate(); err == nil {
			t.Errorf("model %d should fail validation", i)
		}
	}
	if err := DefaultErrorModel().Validate(); err != nil {
		t.Errorf("default model invalid: %v", err)
	}
}

func TestConfigValidate(t *testing.T) {
	mutations := map[string]func(*Config){
		"nil image":    func(c *Config) { c.Image = nil },
		"no passwords": func(c *Config) { c.Passwords = 0 },
		"neg logins":   func(c *Config) { c.LoginsPerPassword = -1 },
		"no clicks":    func(c *Config) { c.Clicks = 0 },
		"neg sep":      func(c *Config) { c.MinSeparation = -1 },
		"bad error":    func(c *Config) { c.Error.MotorSigma = -1 },
	}
	for name, mutate := range mutations {
		cfg := smallConfig()
		mutate(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestFieldConfigScale(t *testing.T) {
	cars := FieldConfig(imagegen.Cars(), 1)
	pool := FieldConfig(imagegen.Pool(), 1)
	if cars.Passwords != 162 || pool.Passwords != 187 {
		t.Errorf("field sizes %d/%d, want 162/187", cars.Passwords, pool.Passwords)
	}
	if cars.Passwords*cars.LoginsPerPassword+pool.Passwords*pool.LoginsPerPassword < 2000 {
		t.Error("login volume far below the field study's 3339")
	}
	// IDs must not collide across images so datasets can be merged.
	if cars.FirstPasswordID == pool.FirstPasswordID {
		t.Error("cars and pool share password ID ranges")
	}
}

func TestLabConfigScale(t *testing.T) {
	lab := LabConfig(imagegen.Pool(), 1)
	if lab.Passwords != 30 {
		t.Errorf("lab passwords = %d, want 30", lab.Passwords)
	}
	if lab.LoginsPerPassword != 0 {
		t.Errorf("lab study should not record logins")
	}
	d, err := Run(lab)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Logins) != 0 {
		t.Error("lab run produced logins")
	}
}

// TestSeparationRelaxes: a pathologically crowded configuration (huge
// separation on a small image) must still terminate.
func TestSeparationRelaxes(t *testing.T) {
	img := &imagegen.Image{
		Name: "tiny", Size: geom.Size{W: 40, H: 40}, UniformWeight: 1,
	}
	cfg := Config{
		Image: img, Passwords: 3, LoginsPerPassword: 1, Clicks: 5,
		MinSeparation: 60, Error: DefaultErrorModel(), Seed: 1,
	}
	d, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Passwords) != 3 {
		t.Error("crowded generation did not complete")
	}
}

// TestPerturbStaysInImage: error application never escapes the image.
func TestPerturbStaysInImage(t *testing.T) {
	e := DefaultErrorModel()
	r := rng.New(5)
	size := geom.Size{W: 50, H: 50}
	corners := []geom.Point{geom.Pt(0, 0), geom.Pt(49, 49), geom.Pt(0, 49), geom.Pt(49, 0)}
	for _, c := range corners {
		for i := 0; i < 500; i++ {
			if !size.Contains(e.perturb(r, c, size)) {
				t.Fatalf("perturb escaped image from %v", c)
			}
		}
	}
}

// TestRunParallelDeterministic: the generated dataset must be
// byte-identical across worker counts — the par subsystem's core
// contract, checked via the JSON wire encoding.
func TestRunParallelDeterministic(t *testing.T) {
	cfg := smallConfig()
	cfg.Passwords = 60
	var want string
	for _, workers := range []int{1, 2, 8} {
		cfg.Workers = workers
		d, err := Run(cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var buf bytes.Buffer
		if err := d.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		if workers == 1 {
			want = buf.String()
			continue
		}
		if buf.String() != want {
			t.Errorf("workers=%d produced a different dataset than serial", workers)
		}
	}
}

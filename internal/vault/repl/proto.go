package repl

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"clickpass/internal/passpoints"

	"encoding/json"
)

// The replication wire protocol: length-prefixed, CRC32-checksummed
// JSON messages over one TCP connection per follower — the same
// framing discipline as the WAL itself, so a torn or corrupted
// message is detected (and kills the connection) instead of being
// half-applied. The conversation:
//
//	follower → hello   (epoch, known run id, per-shard applied seqs)
//	primary  → welcome (epoch, run id, shard count, advertise addr)
//	primary  → snapshot per shard needing bootstrap, then
//	primary  → frames / ping ...       (continuous)
//	follower → ack per applied batch   (continuous)
//
// A hello whose epoch exceeds the receiver's is a fence: the receiver
// is deposed, refuses the connection, and stops accepting writes. The
// promoted node sends exactly that hello to its old primary
// best-effort; partition-tolerant fencing comes from quorum acks, not
// from this courtesy message.

// Message types.
const (
	msgHello    = "hello"
	msgWelcome  = "welcome"
	msgSnapshot = "snapshot"
	msgFrames   = "frames"
	msgAck      = "ack"
	msgPing     = "ping"
)

// wireMsg is the single JSON envelope every replication message uses;
// Type selects which fields are meaningful.
type wireMsg struct {
	// Type is one of the msg* constants.
	Type string `json:"type"`
	// Epoch is the sender's replication epoch (hello, welcome).
	Epoch uint64 `json:"epoch,omitempty"`
	// RunID identifies a primary's stream incarnation: sequence
	// numbers are only comparable within one run id (hello carries the
	// follower's last known one, welcome the primary's current one).
	RunID uint64 `json:"run_id,omitempty"`
	// Shards is the primary's shard count (welcome); a follower over a
	// differently-sharded store cannot apply the stream.
	Shards int `json:"shards,omitempty"`
	// Seqs is the follower's per-shard applied sequence floor under
	// RunID (hello) — the resume positions.
	Seqs []uint64 `json:"seqs,omitempty"`
	// Advertise is the sender's client-facing address, forwarded to
	// clients as the redirect target (hello from a promoted node,
	// welcome from the primary).
	Advertise string `json:"advertise,omitempty"`
	// Shard scopes snapshot, frames, and ack messages.
	Shard int `json:"shard"`
	// Seq is the last sequence number the message covers: the final
	// record of a frames batch, the snapshot's fold-in floor, or the
	// follower's applied-and-synced floor (ack).
	Seq uint64 `json:"seq,omitempty"`
	// Frames is a concatenation of WAL frames (frames messages).
	Frames []byte `json:"frames,omitempty"`
	// Records, Lockouts, and KV carry a shard snapshot's state (KV is
	// the durable side table — session keys and revocation
	// watermarks).
	Records  []*passpoints.Record `json:"records,omitempty"`
	Lockouts map[string]int       `json:"lockouts,omitempty"`
	KV       map[string][]byte    `json:"kv,omitempty"`
}

// wireHeaderSize is the fixed framing: little-endian uint32 payload
// length then IEEE CRC32 of the payload.
const wireHeaderSize = 8

// wireMaxMsg bounds a decoded message. Snapshots of a whole shard can
// be large, but a corrupt length field must not allocate the moon.
const wireMaxMsg = 1 << 30

// writeMsg frames and writes one message in a single Write call.
func writeMsg(w io.Writer, m *wireMsg) error {
	payload, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("repl: encoding %s: %w", m.Type, err)
	}
	buf := make([]byte, wireHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[wireHeaderSize:], payload)
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("repl: writing %s: %w", m.Type, err)
	}
	return nil
}

// readMsg reads and validates one framed message into m.
func readMsg(r *bufio.Reader, m *wireMsg) error {
	var header [wireHeaderSize]byte
	if _, err := io.ReadFull(r, header[:]); err != nil {
		return err // io.EOF for a clean close
	}
	length := binary.LittleEndian.Uint32(header[0:4])
	sum := binary.LittleEndian.Uint32(header[4:8])
	if length == 0 || length > wireMaxMsg {
		return fmt.Errorf("repl: corrupt message length %d", length)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return fmt.Errorf("repl: torn message payload: %w", err)
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return fmt.Errorf("repl: message CRC mismatch")
	}
	*m = wireMsg{}
	if err := json.Unmarshal(payload, m); err != nil {
		return fmt.Errorf("repl: decoding message: %w", err)
	}
	return nil
}

module clickpass

go 1.24

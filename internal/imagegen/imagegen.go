// Package imagegen provides the synthetic stand-in for the paper's two
// background photos (Cars and Pool, both 451x331).
//
// The photos themselves are unavailable, and no experiment in the paper
// consumes pixel content: what matters is where people click. Research
// on PassPoints (Thorpe & van Oorschot 2007; Dirik et al. 2007 — both
// cited by the paper) established that click-points concentrate on a
// modest number of salient "hotspots" per image, and that this
// clustering is what human-seeded dictionary attacks exploit. An image
// here is therefore exactly that abstraction: a mixture of 2-D Gaussian
// hotspots plus a uniform background over the image plane, with a
// saliency density that attack engines may query for prioritization.
//
// The Cars proxy has more, looser hotspots (a parking lot offers many
// comparable targets); the Pool proxy has fewer, tighter ones (a pool
// scene has a handful of strong landmarks). These concentrations were
// chosen so the simulated study reproduces the shape of the paper's
// Figure 7/8 crack rates.
package imagegen

import (
	"fmt"
	"math"

	"clickpass/internal/geom"
	"clickpass/internal/rng"
)

// Hotspot is one salient region: clicks drawn from it are distributed
// as a symmetric 2-D Gaussian around (X, Y), truncated to the image.
type Hotspot struct {
	X, Y   float64 // center, pixels
	Sigma  float64 // standard deviation, pixels
	Weight float64 // relative probability of choosing this hotspot
}

// Image is a hotspot field over an image plane.
type Image struct {
	Name string
	Size geom.Size
	// Hotspots are the salient regions.
	Hotspots []Hotspot
	// UniformWeight is the relative probability that a click ignores
	// all hotspots and lands uniformly at random ("everything else in
	// the photo").
	UniformWeight float64
}

// Validate reports configuration errors.
func (im *Image) Validate() error {
	if im.Size.W <= 0 || im.Size.H <= 0 {
		return fmt.Errorf("imagegen: image %q has empty size %v", im.Name, im.Size)
	}
	if len(im.Hotspots) == 0 && im.UniformWeight <= 0 {
		return fmt.Errorf("imagegen: image %q has no click sources", im.Name)
	}
	for i, h := range im.Hotspots {
		if h.Sigma <= 0 {
			return fmt.Errorf("imagegen: hotspot %d has sigma %v", i, h.Sigma)
		}
		if h.Weight < 0 {
			return fmt.Errorf("imagegen: hotspot %d has negative weight", i)
		}
		if h.X < 0 || h.X >= float64(im.Size.W) || h.Y < 0 || h.Y >= float64(im.Size.H) {
			return fmt.Errorf("imagegen: hotspot %d center (%v,%v) outside image", i, h.X, h.Y)
		}
	}
	if im.UniformWeight < 0 {
		return fmt.Errorf("imagegen: negative uniform weight")
	}
	return nil
}

// SampleClick draws one click-point: a hotspot is chosen by weight
// (or the uniform background), then Gaussian jitter is applied and the
// result clamped to the image at whole-pixel granularity.
func (im *Image) SampleClick(r *rng.Source) geom.Point {
	weights := make([]float64, len(im.Hotspots)+1)
	for i, h := range im.Hotspots {
		weights[i] = h.Weight
	}
	weights[len(im.Hotspots)] = im.UniformWeight
	k := r.Pick(weights)
	if k == len(im.Hotspots) {
		return geom.Pt(r.Intn(im.Size.W), r.Intn(im.Size.H))
	}
	h := im.Hotspots[k]
	x := int(math.Round(r.NormalScaled(h.X, h.Sigma)))
	y := int(math.Round(r.NormalScaled(h.Y, h.Sigma)))
	return im.Size.Clamp(geom.Pt(x, y))
}

// Saliency returns the (unnormalized) click density at p: the mixture
// density an automated attacker would estimate from the image. Larger
// means more likely to be clicked.
func (im *Image) Saliency(p geom.Point) float64 {
	px, py := p.X.Float(), p.Y.Float()
	area := float64(im.Size.W) * float64(im.Size.H)
	var totalW float64
	for _, h := range im.Hotspots {
		totalW += h.Weight
	}
	totalW += im.UniformWeight
	density := im.UniformWeight / totalW / area
	for _, h := range im.Hotspots {
		dx, dy := px-h.X, py-h.Y
		norm := h.Weight / totalW / (2 * math.Pi * h.Sigma * h.Sigma)
		density += norm * math.Exp(-(dx*dx+dy*dy)/(2*h.Sigma*h.Sigma))
	}
	return density
}

// StudySize is the paper's image size: 451x331 pixels.
var StudySize = geom.Size{W: 451, H: 331}

// Cars returns the proxy for the paper's Cars image (Figure 3): many
// moderately diffuse hotspots — cars, wheels, signage in a parking-lot
// photo.
func Cars() *Image {
	return &Image{
		Name: "cars",
		Size: StudySize,
		Hotspots: []Hotspot{
			{X: 52, Y: 70, Sigma: 7, Weight: 9},
			{X: 118, Y: 63, Sigma: 8, Weight: 8},
			{X: 180, Y: 90, Sigma: 7, Weight: 10},
			{X: 246, Y: 74, Sigma: 8, Weight: 7},
			{X: 317, Y: 95, Sigma: 7, Weight: 9},
			{X: 396, Y: 72, Sigma: 8, Weight: 7},
			{X: 74, Y: 168, Sigma: 8, Weight: 10},
			{X: 152, Y: 182, Sigma: 7, Weight: 8},
			{X: 231, Y: 170, Sigma: 8, Weight: 9},
			{X: 308, Y: 188, Sigma: 7, Weight: 8},
			{X: 385, Y: 172, Sigma: 8, Weight: 7},
			{X: 96, Y: 262, Sigma: 8, Weight: 8},
			{X: 205, Y: 276, Sigma: 7, Weight: 8},
			{X: 330, Y: 268, Sigma: 8, Weight: 8},
		},
		UniformWeight: 22,
	}
}

// Pool returns the proxy for the paper's Pool image (Figure 4): fewer,
// tighter hotspots — ladder, lane markers, deck furniture.
func Pool() *Image {
	return &Image{
		Name: "pool",
		Size: StudySize,
		Hotspots: []Hotspot{
			{X: 65, Y: 55, Sigma: 5, Weight: 13},
			{X: 172, Y: 48, Sigma: 5, Weight: 11},
			{X: 300, Y: 66, Sigma: 6, Weight: 12},
			{X: 402, Y: 88, Sigma: 5, Weight: 10},
			{X: 110, Y: 165, Sigma: 6, Weight: 13},
			{X: 238, Y: 150, Sigma: 5, Weight: 12},
			{X: 356, Y: 184, Sigma: 6, Weight: 11},
			{X: 88, Y: 272, Sigma: 5, Weight: 10},
			{X: 255, Y: 284, Sigma: 6, Weight: 11},
		},
		UniformWeight: 14,
	}
}

// Gallery returns the study images in the paper's order.
func Gallery() []*Image { return []*Image{Cars(), Pool()} }

// Parametric builds a synthetic study image whose hotspot
// concentration is tunable, for sensitivity experiments: concentration
// 0 is a uniform image (no hotspots), 1 matches the Cars/Pool regime,
// and larger values concentrate nearly all clicks on a few tight
// hotspots. The hotspot count shrinks and the weights grow as
// concentration rises.
func Parametric(name string, concentration float64) (*Image, error) {
	if concentration < 0 {
		return nil, fmt.Errorf("imagegen: negative concentration %v", concentration)
	}
	img := &Image{Name: name, Size: StudySize}
	if concentration == 0 {
		img.UniformWeight = 1
		return img, nil
	}
	// Lay hotspots on a jittered grid; higher concentration keeps
	// fewer, tighter, heavier spots.
	count := int(16 - 6*concentration)
	if count < 4 {
		count = 4
	}
	sigma := 9.0 / (0.5 + concentration)
	weight := 10 * concentration
	positions := [][2]float64{
		{52, 70}, {118, 63}, {180, 90}, {246, 74}, {317, 95}, {396, 72},
		{74, 168}, {152, 182}, {231, 170}, {308, 188}, {385, 172},
		{96, 262}, {205, 276}, {330, 268}, {260, 120}, {140, 120},
	}
	for i := 0; i < count && i < len(positions); i++ {
		img.Hotspots = append(img.Hotspots, Hotspot{
			X: positions[i][0], Y: positions[i][1], Sigma: sigma, Weight: weight,
		})
	}
	img.UniformWeight = 20
	return img, img.Validate()
}

package repl

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// followerState is the dial-loop machinery of a following node: one
// goroutine dials the primary, applies its stream, and redials on any
// error. Sequence floors live here (per upstream run id), not in the
// store: a restarted follower presents run id 0 and is re-bootstrapped
// from snapshots, which is exactly the crash-only discipline — its
// durable state is still valid, but its resume position is not worth
// persisting.
type followerState struct {
	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once

	mu          sync.Mutex
	conn        net.Conn // live connection, closed by halt to interrupt reads
	upstreamRun uint64
	applied     []uint64 // per-shard applied seq under upstreamRun
}

// halt stops the dial loop and waits for it to exit.
func (fo *followerState) halt() {
	fo.stopOnce.Do(func() { close(fo.stop) })
	fo.mu.Lock()
	if fo.conn != nil {
		fo.conn.Close()
	}
	fo.mu.Unlock()
	<-fo.done
}

// stopped reports whether halt was called.
func (fo *followerState) stopped() bool {
	select {
	case <-fo.stop:
		return true
	default:
		return false
	}
}

// startFollower launches the dial loop.
func (n *Node) startFollower() {
	fo := &followerState{
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
		applied: make([]uint64, n.shards),
	}
	n.fo = fo
	n.wg.Add(1)
	go n.followLoop(fo)
}

// followLoop dials, follows, and redials until halted.
func (n *Node) followLoop(fo *followerState) {
	defer n.wg.Done()
	defer close(fo.done)
	for {
		if fo.stopped() {
			return
		}
		err := n.followOnce(fo)
		if fo.stopped() {
			return
		}
		if err != nil && !errors.Is(err, net.ErrClosed) {
			n.opts.Logf("repl: follower: %v; redialing %s", err, n.opts.Primary)
		}
		select {
		case <-fo.stop:
			return
		case <-time.After(n.opts.Redial):
		}
	}
}

// followOnce runs one connection to the primary: handshake, then
// apply-and-ack until the connection dies. Any error — dial failure,
// torn message, corrupt batch — abandons the connection; the next
// attempt resumes from the applied floors (or re-bootstraps if the
// primary's retention no longer covers them).
func (n *Node) followOnce(fo *followerState) error {
	c, err := n.opts.Dial(n.opts.Primary)
	if err != nil {
		return err
	}
	fo.mu.Lock()
	if fo.stopped() {
		fo.mu.Unlock()
		c.Close()
		return nil
	}
	fo.conn = c
	seqs := append([]uint64(nil), fo.applied...)
	runID := fo.upstreamRun
	fo.mu.Unlock()
	defer func() {
		c.Close()
		fo.mu.Lock()
		if fo.conn == c {
			fo.conn = nil
		}
		fo.mu.Unlock()
	}()

	n.mu.Lock()
	epoch := n.epoch
	n.mu.Unlock()
	hello := wireMsg{
		Type:      msgHello,
		Epoch:     epoch,
		RunID:     runID,
		Seqs:      seqs,
		Shards:    n.shards,
		Advertise: n.opts.Advertise,
	}
	_ = c.SetWriteDeadline(time.Now().Add(5 * time.Second))
	if err := writeMsg(c, &hello); err != nil {
		return err
	}
	_ = c.SetWriteDeadline(time.Time{})
	br := bufio.NewReader(c)
	var w wireMsg
	_ = c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if err := readMsg(br, &w); err != nil {
		return fmt.Errorf("reading welcome: %w", err)
	}
	_ = c.SetReadDeadline(time.Time{})
	if w.Type != msgWelcome {
		return fmt.Errorf("expected welcome, got %q", w.Type)
	}
	if w.Shards != n.shards {
		return fmt.Errorf("primary has %d shards, this store has %d; cannot follow", w.Shards, n.shards)
	}
	n.mu.Lock()
	if w.Epoch < n.epoch {
		cur := n.epoch
		n.mu.Unlock()
		return fmt.Errorf("primary's epoch %d is behind ours (%d); refusing a stale primary", w.Epoch, cur)
	}
	n.epoch = w.Epoch
	if w.Advertise != "" {
		n.primaryAddr = w.Advertise
	}
	n.mu.Unlock()
	if _, err := n.store.AdvanceEpoch(w.Epoch); err != nil {
		return fmt.Errorf("persisting primary epoch: %w", err)
	}
	fo.mu.Lock()
	if w.RunID != fo.upstreamRun {
		// New stream incarnation: our floors are meaningless to it. The
		// primary will snapshot every shard; zero the floors so a
		// mid-bootstrap disconnect doesn't present stale ones.
		fo.upstreamRun = w.RunID
		for i := range fo.applied {
			fo.applied[i] = 0
		}
	}
	fo.mu.Unlock()
	n.touch()

	for {
		var m wireMsg
		if err := readMsg(br, &m); err != nil {
			return err
		}
		n.touch()
		switch m.Type {
		case msgPing:
			continue
		case msgSnapshot:
			if m.Shard < 0 || m.Shard >= n.shards {
				return fmt.Errorf("snapshot for unknown shard %d", m.Shard)
			}
			if err := n.store.InstallShardSnapshot(m.Shard, m.Records, m.Lockouts, m.KV); err != nil {
				return fmt.Errorf("installing shard %d snapshot: %w", m.Shard, err)
			}
			fo.setApplied(m.Shard, m.Seq)
			if err := writeMsg(c, &wireMsg{Type: msgAck, Shard: m.Shard, Seq: m.Seq}); err != nil {
				return err
			}
		case msgFrames:
			if m.Shard < 0 || m.Shard >= n.shards {
				return fmt.Errorf("frames for unknown shard %d", m.Shard)
			}
			if err := n.store.ApplyReplFrames(m.Shard, m.Frames); err != nil {
				return fmt.Errorf("applying shard %d batch: %w", m.Shard, err)
			}
			fo.setApplied(m.Shard, m.Seq)
			// ApplyReplFrames fsynced under SyncAlways, so this ack is
			// the durable coverage a quorum-mode primary waits on.
			if err := writeMsg(c, &wireMsg{Type: msgAck, Shard: m.Shard, Seq: m.Seq}); err != nil {
				return err
			}
		default:
			// Unknown message types are ignored for forward
			// compatibility.
		}
	}
}

// setApplied records the follower's applied floor for a shard.
func (fo *followerState) setApplied(shard int, seq uint64) {
	fo.mu.Lock()
	if seq > fo.applied[shard] {
		fo.applied[shard] = seq
	}
	fo.mu.Unlock()
}

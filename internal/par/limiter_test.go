package par

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestLimiterBound: with limit L and many competing tasks, the
// observed concurrency must never exceed L.
func TestLimiterBound(t *testing.T) {
	const limit, tasks = 4, 64
	l := NewLimiter(limit)
	if l.Cap() != limit {
		t.Fatalf("Cap = %d, want %d", l.Cap(), limit)
	}
	var cur, max, ran atomic.Int64
	for i := 0; i < tasks; i++ {
		l.Go(func() {
			n := cur.Add(1)
			for {
				m := max.Load()
				if n <= m || max.CompareAndSwap(m, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
			ran.Add(1)
		})
	}
	l.Drain()
	if ran.Load() != tasks {
		t.Errorf("ran %d tasks, want %d", ran.Load(), tasks)
	}
	if max.Load() > limit {
		t.Errorf("observed %d concurrent tasks, limit %d", max.Load(), limit)
	}
	if l.InFlight() != 0 {
		t.Errorf("InFlight after drain = %d", l.InFlight())
	}
}

// TestLimiterDrainWaits: Drain must not return while a task holds a
// slot.
func TestLimiterDrainWaits(t *testing.T) {
	l := NewLimiter(2)
	release := make(chan struct{})
	var done atomic.Bool
	l.Go(func() { <-release; done.Store(true) })
	drained := make(chan struct{})
	go func() { l.Drain(); close(drained) }()
	select {
	case <-drained:
		t.Fatal("Drain returned with a task in flight")
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	select {
	case <-drained:
	case <-time.After(2 * time.Second):
		t.Fatal("Drain never returned")
	}
	if !done.Load() {
		t.Error("task did not complete before Drain returned")
	}
}

// TestLimiterTryAcquire: TryAcquire must fail fast at capacity and
// succeed after a Release.
func TestLimiterTryAcquire(t *testing.T) {
	l := NewLimiter(1)
	if !l.TryAcquire() {
		t.Fatal("first TryAcquire failed")
	}
	if l.TryAcquire() {
		t.Fatal("TryAcquire succeeded past capacity")
	}
	l.Release()
	if !l.TryAcquire() {
		t.Fatal("TryAcquire failed after Release")
	}
	l.Release()
	l.Drain()
}

// TestLimiterGoContainsPanic: a panicking task must release its slot
// and not crash the process.
func TestLimiterGoContainsPanic(t *testing.T) {
	l := NewLimiter(1)
	l.Go(func() { panic("poisoned connection") })
	l.Drain()
	// The slot must be reusable afterwards.
	var ok atomic.Bool
	l.Go(func() { ok.Store(true) })
	l.Drain()
	if !ok.Load() {
		t.Error("slot not reusable after a panic")
	}
}

// TestLimiterDefaultCap: limit <= 0 selects one slot per CPU, matching
// Map's worker default.
func TestLimiterDefaultCap(t *testing.T) {
	if got := NewLimiter(0).Cap(); got != Default() {
		t.Errorf("default cap = %d, want %d", got, Default())
	}
	if got := NewLimiter(-3).Cap(); got != Default() {
		t.Errorf("negative cap = %d, want %d", got, Default())
	}
}

// TestLimiterAcquireBlocksUntilRelease exercises the raw
// Acquire/Release pairing without Go's goroutine wrapper.
func TestLimiterAcquireBlocksUntilRelease(t *testing.T) {
	l := NewLimiter(1)
	l.Acquire()
	acquired := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		l.Acquire()
		close(acquired)
		l.Release()
	}()
	select {
	case <-acquired:
		t.Fatal("second Acquire did not block at capacity")
	case <-time.After(20 * time.Millisecond):
	}
	l.Release()
	wg.Wait()
	l.Drain()
}

// TestLimiterAcquireContext: a free slot admits, a full limiter defers
// to the context, and a pre-expired context never admits even when a
// slot is available.
func TestLimiterAcquireContext(t *testing.T) {
	l := NewLimiter(1)
	if err := l.AcquireContext(context.Background()); err != nil {
		t.Fatalf("AcquireContext with free slot: %v", err)
	}
	// Full: a context that dies while queued returns its error, slotless.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := l.AcquireContext(ctx); err == nil {
		t.Fatal("AcquireContext at capacity with expiring context returned nil")
	}
	l.Release()
	// Pre-expired: must refuse even though the slot is free again.
	dead, cancelDead := context.WithCancel(context.Background())
	cancelDead()
	if err := l.AcquireContext(dead); err == nil {
		t.Fatal("AcquireContext with pre-expired context admitted")
	}
	// The refusals must not have leaked slots.
	if err := l.AcquireContext(context.Background()); err != nil {
		t.Fatalf("slot leaked by refused acquires: %v", err)
	}
	l.Release()
	l.Drain()
}

// TestLimiterAcquireQueued: the bounded wait queue admits up to
// maxQueue waiters, sheds the one that would exceed it with
// ErrSaturated immediately, and honors context expiry while parked.
func TestLimiterAcquireQueued(t *testing.T) {
	l := NewLimiter(1)
	l.Acquire() // saturate the slot

	// maxQueue 0: shed unless a slot is free right now.
	if err := l.AcquireQueued(context.Background(), 0); err != ErrSaturated {
		t.Fatalf("AcquireQueued(0) at capacity: %v, want ErrSaturated", err)
	}

	// Two waiters fit a queue of 2; the third sheds instantly.
	admitted := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() { admitted <- l.AcquireQueued(context.Background(), 2) }()
	}
	waitFor(t, func() bool { return l.Waiting() == 2 })
	t0 := time.Now()
	if err := l.AcquireQueued(context.Background(), 2); err != ErrSaturated {
		t.Fatalf("third waiter: %v, want ErrSaturated", err)
	}
	if d := time.Since(t0); d > 100*time.Millisecond {
		t.Errorf("shed took %s; must be immediate, not queued", d)
	}

	// Draining the slot serves the two queued waiters in turn.
	l.Release()
	if err := <-admitted; err != nil {
		t.Fatalf("first queued waiter: %v", err)
	}
	l.Release()
	if err := <-admitted; err != nil {
		t.Fatalf("second queued waiter: %v", err)
	}
	l.Release()
	if got := l.Waiting(); got != 0 {
		t.Errorf("Waiting() = %d after drain, want 0", got)
	}

	// A queued waiter whose context dies leaves slotless and uncounted.
	l.Acquire()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if err := l.AcquireQueued(ctx, 4); err == nil {
		t.Fatal("queued waiter with expired context admitted")
	}
	if got := l.Waiting(); got != 0 {
		t.Errorf("Waiting() = %d after context expiry, want 0", got)
	}
	l.Release()
	l.Drain()
}

// TestLimiterAcquireQueuedPreExpired: like AcquireContext, a
// pre-expired context never admits even with a free slot.
func TestLimiterAcquireQueuedPreExpired(t *testing.T) {
	l := NewLimiter(1)
	dead, cancel := context.WithCancel(context.Background())
	cancel()
	if err := l.AcquireQueued(dead, 8); err == nil {
		t.Fatal("pre-expired context admitted")
	}
	if !l.TryAcquire() {
		t.Fatal("slot leaked by refused AcquireQueued")
	}
	l.Release()
}

// TestLimiterQueuedStress is the -race stress for the bounded wait
// queue: many goroutines hammer AcquireQueued with mixed queue bounds
// and deadlines across the shed, deadline-expiry, and drain paths; at
// the end no slot and no waiter count may have leaked — the full
// capacity must be re-acquirable and Waiting() must read zero.
func TestLimiterQueuedStress(t *testing.T) {
	const (
		capacity   = 4
		goroutines = 32
		iterations = 200
	)
	l := NewLimiter(capacity)
	var wg sync.WaitGroup
	var admitted, shed, expired atomic.Int64
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				ctx := context.Background()
				var cancel context.CancelFunc
				if i%3 == 0 {
					// A third of the load carries a tight deadline that
					// frequently expires in the queue.
					ctx, cancel = context.WithTimeout(ctx, time.Duration(i%5)*10*time.Microsecond)
				}
				err := l.AcquireQueued(ctx, g%5) // mixed per-priority bounds, incl. 0
				switch err {
				case nil:
					admitted.Add(1)
					if g%4 == 0 {
						time.Sleep(time.Microsecond)
					}
					l.Release()
				case ErrSaturated:
					shed.Add(1)
				default:
					expired.Add(1)
				}
				if cancel != nil {
					cancel()
				}
			}
		}(g)
	}
	wg.Wait()
	l.Drain()
	if got := l.Waiting(); got != 0 {
		t.Errorf("Waiting() = %d after stress, want 0", got)
	}
	for i := 0; i < capacity; i++ {
		if !l.TryAcquire() {
			t.Fatalf("slot %d leaked: capacity not re-acquirable after stress", i)
		}
	}
	if l.TryAcquire() {
		t.Fatal("over-capacity acquire succeeded; a release leaked")
	}
	for i := 0; i < capacity; i++ {
		l.Release()
	}
	t.Logf("admitted=%d shed=%d expired=%d", admitted.Load(), shed.Load(), expired.Load())
	if admitted.Load() == 0 || shed.Load() == 0 {
		t.Error("stress never exercised both the admit and shed paths")
	}
}

// waitFor polls cond until true or the deadline trips the test.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}

package analysis_test

import (
	"testing"

	"clickpass/internal/analysis"
	"clickpass/internal/core"
	"clickpass/internal/dataset"
	"clickpass/internal/imagegen"
	"clickpass/internal/study"
	"fmt"
)

// goldenDatasets generates the paper's two field datasets with an
// explicit generation worker count; study.Run's byte-identical
// contract means every count must feed analysis the same data.
func goldenDatasets(t *testing.T, workers int) []*dataset.Dataset {
	t.Helper()
	var dsets []*dataset.Dataset
	for i, img := range imagegen.Gallery() {
		cfg := study.FieldConfig(img, uint64(100+i))
		cfg.Workers = workers
		d, err := study.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		dsets = append(dsets, d)
	}
	return dsets
}

// TestSuccessGolden pins analysis.Success's exact login tally on fixed
// seeds — the safety net for parallelizing its per-dataset replay
// (ROADMAP): the refactor must reproduce these counts at every worker
// count, not merely "a similar rate".
func TestSuccessGolden(t *testing.T) {
	goldens := map[string]struct {
		mkScheme func(t *testing.T) core.Scheme
		want     analysis.SuccessRate
	}{
		"centered13": {
			mkScheme: func(t *testing.T) core.Scheme {
				s, err := core.NewCentered(13)
				if err != nil {
					t.Fatal(err)
				}
				return s
			},
			want: analysis.SuccessRate{Scheme: "centered", SidePx: 13, Logins: 2443, Accepted: 2055},
		},
		"robust36": {
			mkScheme: func(t *testing.T) core.Scheme {
				s, err := core.NewRobust2D(36, core.MostCentered, 1)
				if err != nil {
					t.Fatal(err)
				}
				return s
			},
			want: analysis.SuccessRate{Scheme: "robust", SidePx: 36, Logins: 2443, Accepted: 2412},
		},
	}
	for name, g := range goldens {
		t.Run(name, func(t *testing.T) {
			// workers varies both the generation fan-out and the replay
			// fan-out: every combination must produce the same tally.
			for _, workers := range []int{1, 2, 8} {
				got, err := analysis.Success(goldenDatasets(t, workers), g.mkScheme(t), workers)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if got != g.want {
					t.Errorf("workers=%d: Success = %+v, want %+v", workers, got, g.want)
				}
			}
		})
	}
}

// TestFindWorstCaseGolden pins the worst-case origin scan exactly
// (via the struct's full string form, which includes the sub-pixel
// Region bounds). The scan is a pure function of (side, policy, seed)
// with a strict first-maximum tie-break over the x-then-y origin
// order; a parallelized scan must preserve that tie-break to
// reproduce these values.
func TestFindWorstCaseGolden(t *testing.T) {
	goldens := map[string]struct {
		side int
		want string
	}{
		"side36": {
			side: 36,
			want: "{Origin:(6,18) Region:{MinX:0 MinY:0 MaxX:36 MaxY:36} " +
				"LeftSlackPx:6 RightSlackPx:30 GuaranteedRPx:6 RMaxPx:30}",
		},
		"side19": {
			side: 19,
			want: "{Origin:(3,10) Region:{MinX:-13+2/6 MinY:6+2/6 MaxX:6+2/6 MaxY:25+2/6} " +
				"LeftSlackPx:15.666666666666666 RightSlackPx:3.3333333333333335 " +
				"GuaranteedRPx:3.1666666666666665 RMaxPx:15.833333333333334}",
		},
	}
	for name, g := range goldens {
		t.Run(name, func(t *testing.T) {
			// The row-striped scan must preserve the serial scan's
			// lowest-(x,y) first-maximum tie-break at every worker count,
			// and repeated runs must agree exactly.
			for _, workers := range []int{1, 2, 8} {
				for run := 0; run < 3; run++ {
					got, err := analysis.FindWorstCase(g.side, core.MostCentered, 7, workers)
					if err != nil {
						t.Fatal(err)
					}
					if fmt.Sprintf("%+v", got) != g.want {
						t.Errorf("workers %d run %d: FindWorstCase(%d) = %+v, want %s",
							workers, run, g.side, got, g.want)
					}
				}
			}
		})
	}
}

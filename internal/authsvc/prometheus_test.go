package authsvc

import (
	"io"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestWritePrometheusExposition checks the scrape surface: metric
// families present with HELP/TYPE, cumulative (monotone) histogram
// buckets ending at +Inf == _count, and the shed counter labeled by
// priority.
func TestWritePrometheusExposition(t *testing.T) {
	var m Metrics
	m.observe(OpLogin, CodeOK, 300*time.Microsecond)
	m.observe(OpLogin, CodeDenied, 2*time.Millisecond)
	m.observe(OpEnroll, CodeOK, 40*time.Millisecond)
	m.observe(OpLogin, CodeOverloaded, 50*time.Microsecond)
	m.observeShed(PriorityLow)
	m.observeShed(PriorityLow)
	m.observeShed(PriorityHigh)
	m.observeQueueWait(3*time.Millisecond, PriorityHigh)

	srv := httptest.NewServer(m.PrometheusHandler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)

	for _, want := range []string{
		`authsvc_requests_total{op="enroll"} 1`,
		`authsvc_requests_total{op="login"} 3`,
		`authsvc_responses_total{code="ok"} 2`,
		`authsvc_responses_total{code="overloaded"} 1`,
		`authsvc_shed_total{priority="low"} 2`,
		`authsvc_shed_total{priority="high"} 1`,
		`authsvc_shed_total{priority="normal"} 0`,
		`authsvc_queue_wait_seconds_count 1`,
		`authsvc_queue_wait_priority_seconds_count{priority="high"} 1`,
		`authsvc_queue_wait_priority_seconds_count{priority="normal"} 0`,
		`authsvc_queue_wait_priority_seconds_sum{priority="high"} 0.003`,
		`authsvc_request_duration_seconds_count 4`,
		`# TYPE authsvc_request_duration_seconds histogram`,
		`# TYPE authsvc_requests_total counter`,
		`# TYPE authsvc_in_flight gauge`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// Histogram buckets must be cumulative and end at +Inf == count.
	var last int64 = -1
	var infSeen bool
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, "authsvc_request_duration_seconds_bucket") {
			continue
		}
		val, err := strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
		if err != nil {
			t.Fatalf("bucket line %q: %v", line, err)
		}
		if val < last {
			t.Fatalf("non-cumulative bucket: %q after %d", line, last)
		}
		last = val
		if strings.Contains(line, `le="+Inf"`) {
			infSeen = true
			if val != 4 {
				t.Errorf("+Inf bucket = %d, want 4 (the observation count)", val)
			}
		}
	}
	if !infSeen {
		t.Error("no +Inf bucket")
	}
	// 300us lands in the le=0.0005 bucket, 50us in le=0.0001.
	if !strings.Contains(body, `authsvc_request_duration_seconds_bucket{le="0.0001"} 1`) {
		t.Errorf("50us shed not in the first bucket:\n%s", body)
	}
}

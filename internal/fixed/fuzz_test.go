package fixed

import "testing"

// FuzzParseTolerance: arbitrary strings must never panic, and accepted
// values must round-trip sensibly.
func FuzzParseTolerance(f *testing.F) {
	for _, seed := range []string{"6", "6.5", "0", "-1", "9999999", "1.25", "x", "1e9", ".5", "6.", ""} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		v, err := ParseTolerance(s)
		if err != nil {
			return
		}
		if v < 0 {
			t.Fatalf("accepted negative tolerance %v from %q", v, s)
		}
		if !v.IsHalfPixels() {
			t.Fatalf("accepted non-half-pixel tolerance %v from %q", v, s)
		}
	})
}

// FuzzDivMod: the Euclidean division identity must hold for all inputs.
func FuzzDivMod(f *testing.F) {
	f.Add(int64(7), int64(2))
	f.Add(int64(-7), int64(2))
	f.Add(int64(0), int64(1))
	f.Fuzz(func(t *testing.T, a, b int64) {
		if b <= 0 {
			b = -b + 1
		}
		q := FloorDiv(a, b)
		m := Mod(a, b)
		if m < 0 || m >= b {
			t.Fatalf("Mod(%d,%d) = %d out of range", a, b, m)
		}
		// Guard against overflow in the identity check.
		if q > 1<<40 || q < -(1<<40) || b > 1<<20 {
			return
		}
		if b*q+m != a {
			t.Fatalf("identity broken: %d*%d+%d != %d", b, q, m, a)
		}
	})
}

package authproto

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"clickpass/internal/authsvc"
	"clickpass/internal/dataset"
)

// FuzzHTTPDecode: arbitrary bytes posted at the HTTP front must never
// panic the decoder; they either parse into a wire request or return
// an error. This is the exact decode path the handler runs
// (decodeHTTPRequest is shared), so the fuzzer exercises production
// code, not a test replica.
func FuzzHTTPDecode(f *testing.F) {
	good, err := json.Marshal(Request{Op: OpLogin, User: "alice", Clicks: clicks(0)})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"user":"x","clicks":[{"x":1,"y":2}]}`))
	f.Add([]byte(`{"v":99,"op":"login"}`))
	f.Add([]byte(`{"clicks":[{"x":9e99,"y":-1}]}`))
	f.Add([]byte(`[`))
	f.Add([]byte(`null`))
	f.Add([]byte(strings.Repeat(`[`, 10000)))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := decodeHTTPRequest(OpLogin, bytes.NewReader(data))
		if err == nil && req.Op != OpLogin {
			t.Errorf("decoder let the body override the route op: %q", req.Op)
		}
	})
}

// randomRequest builds an arbitrary but valid service request from a
// seeded source — the generator for the codec property test.
func randomRequest(rng *rand.Rand) authsvc.Request {
	ops := []authsvc.Op{OpPing, OpEnroll, OpLogin, OpChange, OpReset}
	req := authsvc.Request{
		Version: rng.Intn(2), // 0 (legacy) or 1 (explicit)
		Op:      ops[rng.Intn(len(ops))],
	}
	if rng.Intn(10) > 0 {
		var b strings.Builder
		for i := rng.Intn(12); i >= 0; i-- {
			b.WriteRune(rune('a' + rng.Intn(26)))
		}
		req.User = b.String()
	}
	mkClicks := func() []dataset.Click {
		n := rng.Intn(7)
		if n == 0 {
			return nil
		}
		cs := make([]dataset.Click, n)
		for i := range cs {
			cs[i] = dataset.Click{X: rng.Intn(1000) - 200, Y: rng.Intn(1000) - 200}
		}
		return cs
	}
	req.Clicks = mkClicks()
	if req.Op == OpChange {
		req.NewClicks = mkClicks()
	}
	if rng.Intn(3) == 0 {
		req.BudgetMs = 1 + rng.Intn(30_000)
	}
	return req
}

// TestCodecRoundTripProperty is the codec-boundary property test: for
// a large sample of random service requests, encoding over the TCP
// frame codec and over the HTTP/JSON codec must both decode back to
// the identical authsvc.Request. If this holds, the two transports
// cannot disagree about what a client asked for.
func TestCodecRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		orig := randomRequest(rng)

		// TCP: service request -> wire frame -> bytes -> wire -> service.
		var frame bytes.Buffer
		if err := writeFrame(&frame, wireRequest(orig)); err != nil {
			t.Fatalf("case %d: writeFrame: %v", i, err)
		}
		var viaTCP Request
		if err := readFrame(&frame, &viaTCP); err != nil {
			t.Fatalf("case %d: readFrame: %v", i, err)
		}

		// HTTP: the same wire shape as a JSON body, decoded by the HTTP
		// front's decoder with the op taken from the route.
		body, err := json.Marshal(wireRequest(orig))
		if err != nil {
			t.Fatalf("case %d: marshal body: %v", i, err)
		}
		viaHTTP, err := decodeHTTPRequest(orig.Op, bytes.NewReader(body))
		if err != nil {
			t.Fatalf("case %d: decodeHTTPRequest: %v", i, err)
		}

		a, b := viaTCP.service(), viaHTTP.service()
		if !reflect.DeepEqual(a, orig) {
			t.Fatalf("case %d: TCP round trip mangled request:\n got %+v\nwant %+v", i, a, orig)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("case %d: transports decoded different requests:\n tcp  %+v\n http %+v", i, a, b)
		}
	}
}

// TestWireResponseRoundTrip: service responses survive the wire shape
// with their typed code intact, and legacy responses (no code field)
// map onto the closest typed outcome.
func TestWireResponseRoundTrip(t *testing.T) {
	for _, resp := range []authsvc.Response{
		{Version: 1, Code: authsvc.CodeOK, Remaining: 10},
		{Version: 1, Code: authsvc.CodeDenied, Err: "login failed", Remaining: 2},
		{Version: 1, Code: authsvc.CodeLocked, Err: "account locked"},
		{Version: 1, Code: authsvc.CodeThrottled, Err: "rate limited"},
		{Version: 1, Code: authsvc.CodeInvalid, Err: "user required"},
	} {
		var frame bytes.Buffer
		if err := writeFrame(&frame, wireResponse(resp)); err != nil {
			t.Fatal(err)
		}
		var wire Response
		if err := readFrame(&frame, &wire); err != nil {
			t.Fatal(err)
		}
		if got := wire.service(); !reflect.DeepEqual(got, resp) {
			t.Errorf("round trip: got %+v, want %+v", got, resp)
		}
	}
	legacy := []struct {
		wire Response
		want authsvc.Code
	}{
		{Response{OK: true}, authsvc.CodeOK},
		{Response{Locked: true, Error: "account locked"}, authsvc.CodeLocked},
		{Response{Error: "login failed", Remaining: 3}, authsvc.CodeDenied},
	}
	for _, tc := range legacy {
		if got := tc.wire.service().Code; got != tc.want {
			t.Errorf("legacy %+v: code = %q, want %q", tc.wire, got, tc.want)
		}
	}
}

// TestLoginResponsesIndistinguishableOnWire pins the user-enumeration
// fix at the outermost boundary: the full wire Response JSON for a
// wrong password and for an unknown user must be byte-identical.
func TestLoginResponsesIndistinguishableOnWire(t *testing.T) {
	s := testServer(t, 5)
	if resp := s.Handle(Request{Op: OpEnroll, User: "real", Clicks: clicks(0)}); !resp.OK {
		t.Fatalf("enroll: %+v", resp)
	}
	for i := 0; i < 6; i++ {
		wrongPW, err := json.Marshal(s.Handle(Request{Op: OpLogin, User: "real", Clicks: clicks(9)}))
		if err != nil {
			t.Fatal(err)
		}
		unknown, err := json.Marshal(s.Handle(Request{Op: OpLogin, User: "ghost", Clicks: clicks(9)}))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wrongPW, unknown) {
			t.Errorf("attempt %d: wire bodies differ:\n real  %s\n ghost %s", i, wrongPW, unknown)
		}
	}
}

// TestServiceClientsOverBothTransports drives the unified client
// through each codec against one live server and requires identical
// service-level outcomes — the client-side half of the adapter
// contract.
func TestServiceClientsOverBothTransports(t *testing.T) {
	s := testServer(t, 10)
	// TCP front.
	l := newLocalListener(t)
	defer l.Close()
	go func() { _ = s.Serve(l) }()
	// HTTP front, same server.
	ts := newHTTPTestServer(t, s)
	defer ts.Close()

	runClientSuite(t, "tcp", func() authsvc.Client {
		c, err := DialService(l.Addr().String(), testDialTimeout)
		if err != nil {
			t.Fatal(err)
		}
		return c
	})
	runClientSuite(t, "http", func() authsvc.Client {
		return NewHTTPClient(ts.URL, nil)
	})
}

// TestHTTPDecodeRejectsTrailingData: the HTTP decoder must accept
// exactly one JSON value per body, matching the TCP frame codec's
// whole-buffer json.Unmarshal — anything else lets the transports
// disagree about what was asked.
func TestHTTPDecodeRejectsTrailingData(t *testing.T) {
	for _, body := range []string{
		`{"user":"a"} {"user":"b"}`,
		`{"user":"a"}{"user":"b"}`,
		`{"user":"a"} garbage`,
		`{"user":"a"}]`,
	} {
		if _, err := decodeHTTPRequest(OpLogin, strings.NewReader(body)); err == nil {
			t.Errorf("trailing data accepted: %q", body)
		}
	}
	// Trailing whitespace is not data.
	if _, err := decodeHTTPRequest(OpLogin, strings.NewReader("{\"user\":\"a\"}  \n")); err != nil {
		t.Errorf("trailing whitespace rejected: %v", err)
	}
}

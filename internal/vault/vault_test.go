package vault

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"clickpass/internal/core"
	"clickpass/internal/geom"
	"clickpass/internal/passpoints"
)

func testRecord(t *testing.T, user string) *passpoints.Record {
	t.Helper()
	s, err := core.NewCentered(13)
	if err != nil {
		t.Fatal(err)
	}
	cfg := passpoints.Config{
		Image: geom.Size{W: 451, H: 331}, Clicks: 5, Scheme: s, Iterations: 2,
	}
	rec, err := passpoints.Enroll(cfg, user, []geom.Point{
		geom.Pt(10, 10), geom.Pt(50, 60), geom.Pt(100, 200),
		geom.Pt(300, 30), geom.Pt(440, 320),
	})
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

func TestPutGetDelete(t *testing.T) {
	v := New()
	rec := testRecord(t, "alice")
	if err := v.Put(rec); err != nil {
		t.Fatal(err)
	}
	got, err := v.Get("alice")
	if err != nil || got.User != "alice" {
		t.Fatalf("Get = %v, %v", got, err)
	}
	if err := v.Put(rec); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate Put = %v, want ErrExists", err)
	}
	v.Delete("alice")
	if _, err := v.Get("alice"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get after delete = %v, want ErrNotFound", err)
	}
	v.Delete("alice") // idempotent
}

func TestReplace(t *testing.T) {
	v := New()
	r1 := testRecord(t, "bob")
	r2 := testRecord(t, "bob")
	if err := v.Put(r1); err != nil {
		t.Fatal(err)
	}
	if err := v.Replace(r2); err != nil {
		t.Fatal(err)
	}
	got, _ := v.Get("bob")
	if string(got.Salt) != string(r2.Salt) {
		t.Error("Replace did not overwrite")
	}
}

func TestPutValidation(t *testing.T) {
	v := New()
	if err := v.Put(nil); err == nil {
		t.Error("nil record accepted")
	}
	if err := v.Put(&passpoints.Record{}); err == nil {
		t.Error("record without user accepted")
	}
	if err := v.Replace(nil); err == nil {
		t.Error("Replace nil accepted")
	}
}

func TestUsersSortedAndLen(t *testing.T) {
	v := New()
	for _, u := range []string{"zoe", "alice", "mike"} {
		if err := v.Put(testRecord(t, u)); err != nil {
			t.Fatal(err)
		}
	}
	users := v.Users()
	want := []string{"alice", "mike", "zoe"}
	if len(users) != 3 {
		t.Fatalf("Users() = %v", users)
	}
	for i := range want {
		if users[i] != want[i] {
			t.Fatalf("Users() = %v, want %v", users, want)
		}
	}
	if v.Len() != 3 {
		t.Errorf("Len = %d", v.Len())
	}
	all := v.All()
	if len(all) != 3 || all[0].User != "alice" || all[2].User != "zoe" {
		t.Error("All() not sorted by user")
	}
}

func TestSaveOpenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "vault.json")
	v, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != 0 {
		t.Fatal("fresh vault not empty")
	}
	if err := v.Put(testRecord(t, "carol")); err != nil {
		t.Fatal(err)
	}
	if err := v.Save(); err != nil {
		t.Fatal(err)
	}
	back, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := back.Get("carol")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Kind != passpoints.KindCentered || rec.SquareSidePx != 13 {
		t.Errorf("round-trip mangled record: %+v", rec)
	}
}

func TestSaveInMemoryFails(t *testing.T) {
	if err := New().Save(); err == nil {
		t.Error("Save on in-memory vault should fail")
	}
}

func TestOpenRejectsCorruptFiles(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"garbage":    "not json at all",
		"no user":    `[{"kind":"centered","square_side_px":13}]`,
		"dup user":   `[{"user":"a","square_side_px":13},{"user":"a","square_side_px":13}]`,
		"wrong type": `{"user":"a"}`,
	}
	for name, content := range cases {
		path := filepath.Join(dir, name+".json")
		if err := os.WriteFile(path, []byte(content), 0o600); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(path); err == nil {
			t.Errorf("%s: Open accepted corrupt file", name)
		}
	}
}

func TestSaveToIsAtomicOnOverwrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "vault.json")
	v := New()
	if err := v.Put(testRecord(t, "dave")); err != nil {
		t.Fatal(err)
	}
	if err := v.SaveTo(path); err != nil {
		t.Fatal(err)
	}
	// Overwrite with a second state; a reopen must see exactly one of
	// the two complete states (here: the final one).
	if err := v.Put(testRecord(t, "erin")); err != nil {
		t.Fatal(err)
	}
	if err := v.SaveTo(path); err != nil {
		t.Fatal(err)
	}
	back, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Errorf("reopened vault has %d records, want 2", back.Len())
	}
	// No temp droppings left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("directory has %d entries, want 1 (temp files leaked)", len(entries))
	}
}

func TestConcurrentAccess(t *testing.T) {
	v := New()
	var wg sync.WaitGroup
	rec := testRecord(t, "seed")
	if err := v.Put(rec); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				_, _ = v.Get("seed")
				_ = v.Users()
				_ = v.Len()
			}
		}(i)
	}
	wg.Wait()
}

package study

import (
	"fmt"

	"clickpass/internal/dataset"
	"clickpass/internal/imagegen"
	"clickpass/internal/rng"
)

// CohortConfig describes a participant-level simulation matching the
// paper's study header numbers: 191 participants split across two
// images created 481 passwords and performed 3339 login attempts. It
// layers two sources of heterogeneity on the base error model that the
// per-password FieldConfig deliberately omits:
//
//   - skill: a per-participant multiplier on error magnitudes
//     (some people are steadier with a mouse than others);
//   - practice: per-password error shrinking over successive login
//     attempts as the click sequence becomes familiar.
//
// The cohort generator is the robustness check for the calibrated
// experiments: Tables 1 and 2 must keep their shape when user
// heterogeneity is turned on.
type CohortConfig struct {
	// Image is the hotspot field this half of the cohort uses.
	Image *imagegen.Image
	// Participants using this image (the paper's 191 split ~half).
	Participants int
	// PasswordsPerParticipant is the mean number of passwords each
	// participant creates (the field study averaged 481/191 ≈ 2.5;
	// individuals vary between 1 and 4).
	PasswordsPerParticipant float64
	// LoginsPerPassword is the mean number of recorded login attempts
	// per password (3339/481 ≈ 6.9).
	LoginsPerPassword float64
	// Clicks per password.
	Clicks int
	// MinSeparation between clicks within a password (pixels).
	MinSeparation int
	// Error is the base error model; per-participant skill scales its
	// sigmas.
	Error ErrorModel
	// SkillSpread is the standard deviation of the lognormal skill
	// multiplier (0 disables heterogeneity; 0.25 is mild, 0.5 strong).
	SkillSpread float64
	// PracticeRate is the per-attempt multiplicative error decay
	// (0.97 means each successive login is 3% more precise, floored
	// at half the initial error).
	PracticeRate float64
	// FirstPasswordID numbers generated passwords from this ID.
	FirstPasswordID int
	// Seed fixes the stream.
	Seed uint64
	// Workers bounds the generation fan-out: 0 uses one worker per
	// CPU, 1 forces serial generation. Each participant draws from its
	// own rng stream split off the seed before any parallel work
	// starts (the study.Run pattern), so the cohort is byte-identical
	// for every value.
	Workers int
}

// DefaultCohort mirrors the paper's header numbers for one image.
func DefaultCohort(img *imagegen.Image, seed uint64) CohortConfig {
	participants := 96
	firstID := 0
	if img.Name == "pool" {
		participants = 95
		firstID = 10000
	}
	return CohortConfig{
		Image:                   img,
		Participants:            participants,
		PasswordsPerParticipant: 481.0 / 191.0,
		LoginsPerPassword:       3339.0 / 481.0,
		Clicks:                  5,
		MinSeparation:           15,
		Error:                   DefaultErrorModel(),
		SkillSpread:             0.25,
		PracticeRate:            0.985,
		FirstPasswordID:         firstID,
		Seed:                    seed,
	}
}

// Validate reports configuration errors.
func (c CohortConfig) Validate() error {
	if c.Image == nil {
		return fmt.Errorf("study: nil image")
	}
	if err := c.Image.Validate(); err != nil {
		return err
	}
	if c.Participants <= 0 {
		return fmt.Errorf("study: participants %d must be positive", c.Participants)
	}
	if c.PasswordsPerParticipant <= 0 {
		return fmt.Errorf("study: passwords per participant %v must be positive", c.PasswordsPerParticipant)
	}
	if c.LoginsPerPassword < 0 {
		return fmt.Errorf("study: negative logins per password")
	}
	if c.Clicks <= 0 {
		return fmt.Errorf("study: clicks %d must be positive", c.Clicks)
	}
	if c.SkillSpread < 0 || c.SkillSpread > 2 {
		return fmt.Errorf("study: skill spread %v outside [0, 2]", c.SkillSpread)
	}
	if c.PracticeRate <= 0 || c.PracticeRate > 1 {
		return fmt.Errorf("study: practice rate %v outside (0, 1]", c.PracticeRate)
	}
	return c.Error.Validate()
}

// RunCohort simulates the cohort for one image. Participants are
// independent: each draws from its own rng stream (split off the seed
// serially, in participant order — the study.Run pattern) and
// generates its passwords and logins as one task on the worker pool,
// so the cohort is byte-identical for a fixed seed at any worker
// count. Password IDs are assigned serially in participant order,
// because a participant's password count is random and IDs must stay
// sequential from FirstPasswordID. RunCohort is the materializing
// shell over RunCohortStream — the golden tests pin the two paths to
// the same bytes by construction.
func RunCohort(cfg CohortConfig) (*dataset.Dataset, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	size := cfg.Image.Size
	d := &dataset.Dataset{Image: cfg.Image.Name, Width: size.W, Height: size.H}
	err := RunCohortStream(cfg, func(p Participant) error {
		d.Passwords = append(d.Passwords, p.Passwords...)
		d.Logins = append(d.Logins, p.Logins...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("study: cohort generated invalid dataset: %w", err)
	}
	return d, nil
}

// sampleCount draws a positive integer with the given mean: floor(mean)
// plus a Bernoulli for the fractional part (variance-light, mean-exact,
// and never zero for mean >= 1).
func sampleCount(r *rng.Source, mean float64) int {
	if mean < 1 {
		mean = 1
	}
	n := int(mean)
	if r.Float64() < mean-float64(n) {
		n++
	}
	return n
}

// scaled returns the error model with every sigma multiplied by f.
func (e ErrorModel) scaled(f float64) ErrorModel {
	e.MotorSigma *= f
	e.SlipSigma *= f
	e.Slip2Sigma *= f
	return e
}

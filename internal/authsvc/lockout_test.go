package authsvc

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"clickpass/internal/vault"
)

// openDurable opens a durable store over dir for the lockout
// persistence tests.
func openDurable(t *testing.T, dir string) *vault.Durable {
	t.Helper()
	d, err := vault.OpenDurable(dir, vault.DurableOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

// TestLockoutSurvivesRestart: failed-attempt counters written through
// a LockoutStore must carry across a service restart — a rebooted
// server must not hand an online attacker a fresh budget (§5.1), and
// a locked account must stay locked until an explicit reset.
func TestLockoutSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(t, 2)
	ctx := context.Background()
	const budget = 3

	svc, err := NewService(cfg, openDurable(t, dir), budget)
	if err != nil {
		t.Fatal(err)
	}
	if resp := svc.Handle(ctx, Request{Op: OpEnroll, User: "alice", Clicks: clicks(0)}); !resp.OK() {
		t.Fatalf("enroll: %+v", resp)
	}
	// Burn one attempt for alice, all three for mallory (unknown users
	// consume attempts too — and durably).
	if resp := svc.Handle(ctx, Request{Op: OpLogin, User: "alice", Clicks: clicks(9)}); resp.Code != CodeDenied {
		t.Fatalf("wrong-password login: %+v", resp)
	}
	for i := 0; i < budget; i++ {
		svc.Handle(ctx, Request{Op: OpLogin, User: "mallory", Clicks: clicks(9)})
	}
	if resp := svc.Handle(ctx, Request{Op: OpLogin, User: "mallory", Clicks: clicks(9)}); resp.Code != CodeLocked {
		t.Fatalf("mallory should be locked: %+v", resp)
	}

	// "Restart": a fresh service over a reopened store.
	svc2, err := NewService(cfg, openDurable(t, dir), budget)
	if err != nil {
		t.Fatal(err)
	}
	// Alice's burned attempt must still be burned: one more failure
	// leaves budget-2 remaining, not budget-1.
	resp := svc2.Handle(ctx, Request{Op: OpLogin, User: "alice", Clicks: clicks(9)})
	if resp.Code != CodeDenied || resp.Remaining != budget-2 {
		t.Errorf("after restart, alice failure = %+v, want denied with remaining %d", resp, budget-2)
	}
	// Mallory must still be locked without a single new attempt spent.
	if resp := svc2.Handle(ctx, Request{Op: OpLogin, User: "mallory", Clicks: clicks(9)}); resp.Code != CodeLocked {
		t.Errorf("lockout did not survive restart: %+v", resp)
	}
	// A successful login clears alice's counter durably...
	if resp := svc2.Handle(ctx, Request{Op: OpLogin, User: "alice", Clicks: clicks(0)}); !resp.OK() {
		t.Fatalf("correct login: %+v", resp)
	}
	// ...and an admin reset clears mallory's.
	if resp := svc2.Handle(ctx, Request{Op: OpReset, User: "mallory"}); !resp.OK() {
		t.Fatalf("reset: %+v", resp)
	}

	svc3, err := NewService(cfg, openDurable(t, dir), budget)
	if err != nil {
		t.Fatal(err)
	}
	resp = svc3.Handle(ctx, Request{Op: OpLogin, User: "alice", Clicks: clicks(9)})
	if resp.Code != CodeDenied || resp.Remaining != budget-1 {
		t.Errorf("cleared counter resurrected: %+v, want remaining %d", resp, budget-1)
	}
	resp = svc3.Handle(ctx, Request{Op: OpLogin, User: "mallory", Clicks: clicks(9)})
	if resp.Code != CodeDenied || resp.Remaining != budget-1 {
		t.Errorf("reset lockout resurrected: %+v, want denied with remaining %d", resp, budget-1)
	}
}

// TestLockoutInMemoryStoreUnchanged: stores without the LockoutStore
// extension keep the old semantics — counters reset with the process.
func TestLockoutInMemoryStoreUnchanged(t *testing.T) {
	ctx := context.Background()
	store := vault.New()
	svc, err := NewService(testConfig(t, 2), store, 2)
	if err != nil {
		t.Fatal(err)
	}
	if resp := svc.Handle(ctx, Request{Op: OpEnroll, User: "bob", Clicks: clicks(0)}); !resp.OK() {
		t.Fatalf("enroll: %+v", resp)
	}
	svc.Handle(ctx, Request{Op: OpLogin, User: "bob", Clicks: clicks(9)})
	svc.Handle(ctx, Request{Op: OpLogin, User: "bob", Clicks: clicks(9)})
	if resp := svc.Handle(ctx, Request{Op: OpLogin, User: "bob", Clicks: clicks(0)}); resp.Code != CodeLocked {
		t.Fatalf("bob should be locked: %+v", resp)
	}
	svc2, err := NewService(testConfig(t, 2), store, 2)
	if err != nil {
		t.Fatal(err)
	}
	if resp := svc2.Handle(ctx, Request{Op: OpLogin, User: "bob", Clicks: clicks(0)}); !resp.OK() {
		t.Errorf("in-memory lockout should reset on restart: %+v", resp)
	}
}

// TestReloadLockoutsAdoptsReplicatedCounters: counters that land in
// the store after the service is constructed — the replicated-
// follower case — are adopted by ReloadLockouts, max-wins. A lagging
// store must never lower a counter this process observed itself.
func TestReloadLockoutsAdoptsReplicatedCounters(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(t, 2)
	ctx := context.Background()
	const budget = 3

	store := openDurable(t, dir)
	svc, err := NewService(cfg, store, budget)
	if err != nil {
		t.Fatal(err)
	}
	if resp := svc.Handle(ctx, Request{Op: OpEnroll, User: "alice", Clicks: clicks(0)}); !resp.OK() {
		t.Fatalf("enroll: %+v", resp)
	}
	// Simulate replication delivering counters behind the service's
	// back: write straight to the store, as ApplyReplFrames would.
	if err := store.SetLockout("alice", budget); err != nil {
		t.Fatal(err)
	}
	// Burn two local attempts for carol, then have the "replica" offer
	// a stale 1 — the in-memory 2 must win.
	svc.Handle(ctx, Request{Op: OpLogin, User: "carol", Clicks: clicks(9)})
	svc.Handle(ctx, Request{Op: OpLogin, User: "carol", Clicks: clicks(9)})
	if err := store.SetLockout("carol", 1); err != nil {
		t.Fatal(err)
	}

	svc.ReloadLockouts()

	// Alice's replicated lockout now gates logins, correct password or
	// not.
	if resp := svc.Handle(ctx, Request{Op: OpLogin, User: "alice", Clicks: clicks(0)}); resp.Code != CodeLocked {
		t.Errorf("replicated lockout not adopted: %+v", resp)
	}
	// Carol's third failure locks: the stale replicated 1 did not roll
	// the local 2 back.
	if resp := svc.Handle(ctx, Request{Op: OpLogin, User: "carol", Clicks: clicks(9)}); resp.Code != CodeLocked {
		t.Errorf("reload lowered a local counter: %+v", resp)
	}
}

// memLockStore wraps the in-memory vault with an in-memory
// LockoutStore extension, so reload tests that trigger a full
// capacity sweep (64k evictions) don't pay a disk flush per counter.
type memLockStore struct {
	*vault.Vault
	mu    sync.Mutex
	locks map[string]int
}

func newMemLockStore() *memLockStore {
	return &memLockStore{Vault: vault.New(), locks: make(map[string]int)}
}

// SetLockout implements vault.LockoutStore.
func (m *memLockStore) SetLockout(user string, failures int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if failures <= 0 {
		delete(m.locks, user)
		return nil
	}
	m.locks[user] = failures
	return nil
}

// Lockouts implements vault.LockoutStore.
func (m *memLockStore) Lockouts() map[string]int {
	m.mu.Lock()
	defer m.mu.Unlock()
	cp := make(map[string]int, len(m.locks))
	for u, n := range m.locks {
		cp[u] = n
	}
	return cp
}

// TestReloadLockoutsSweepKeepsReadoptedCounters: when the reload's
// capacity sweep evicts a tracked user that the same reload later
// re-adopts from the persisted map (map iteration order is random),
// the post-loop zeroing pass must skip that user — durably zeroing a
// counter that is live again would hand a guesser a fresh attempt
// budget on the next restart, the exact hole the reload closes.
func TestReloadLockoutsSweepKeepsReadoptedCounters(t *testing.T) {
	cfg := testConfig(t, 2)
	const budget = 3
	// The bad interleaving needs a sweep-triggering new name to be
	// iterated before the target; with 100 new names per round and a
	// few rounds, the schedule is hit with near certainty.
	for round := 0; round < 3; round++ {
		store := newMemLockStore()
		svc, err := NewService(cfg, store, budget)
		if err != nil {
			t.Fatal(err)
		}
		// The in-memory map sits at capacity; target is tracked with a
		// sub-lockout counter, so a sweep would evict it.
		svc.mu.Lock()
		for i := 0; i < maxFailureEntries; i++ {
			svc.failures[fmt.Sprintf("filler%05d", i)] = 1
		}
		svc.failures["target"] = 1
		svc.mu.Unlock()
		// Replication delivered target's lockout plus a crowd of new
		// names. Adopting any new name first sweeps target out
		// mid-loop; the reload must still leave target locked in
		// memory AND leave its persisted counter intact.
		if err := store.SetLockout("target", budget); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 100; i++ {
			if err := store.SetLockout(fmt.Sprintf("new%03d", i), 1); err != nil {
				t.Fatal(err)
			}
		}
		svc.ReloadLockouts()
		svc.mu.Lock()
		got := svc.failures["target"]
		svc.mu.Unlock()
		if got != budget {
			t.Fatalf("round %d: in-memory target counter = %d, want %d", round, got, budget)
		}
		if got := store.Lockouts()["target"]; got != budget {
			t.Fatalf("round %d: target's persisted lockout = %d, want %d (sweep durably zeroed a re-adopted counter)", round, got, budget)
		}
	}
}

package vault

// Checkpoints bound the durable store's recovery time. A shard's log
// only records history, so replay cost grows with the store's age;
// a checkpoint snapshots the shard's live state into a canonical
// per-shard file and rotates the log to a fresh one, making replay
// O(records since the last checkpoint) instead of O(all history).
//
// The protocol is write-temp/fsync/rename at every step, in an order
// whose every crash window recovers cleanly:
//
//  1. Quiesce the shard (no group-commit fsync in flight) and write
//     the checkpoint file: the full record and lockout maps plus
//     three identity fields — ID (a fresh random generation id),
//     BaseLogID (the generation marker of the log it summarizes),
//     and BaseOff (the log length it covers). Fsync, rename into
//     place, fsync the directory.
//  2. Rotate the log: a new log whose first record is a generation
//     marker (walEntry op "ckpt") carrying ID, fsynced, renamed over
//     the old log, directory fsynced.
//
// Recovery reads the log's marker (if any) and the checkpoint file
// (if any) and keys on their identity fields:
//
//   - marker.Full (written by compaction, not checkpointing): the log
//     alone is the complete state; any checkpoint file is stale and
//     removed.
//   - ckpt.ID == marker id: the normal case — apply the checkpoint,
//     replay the log tail after the marker.
//   - ckpt.BaseLogID == marker id (including both zero for a virgin
//     log): the crash window between steps 1 and 2 — the checkpoint
//     summarizes this very log's prefix [0, BaseOff), so apply it and
//     replay from BaseOff. If the log is shorter than BaseOff (its
//     unsynced tail died in an OS crash the fsynced checkpoint
//     survived), the checkpoint alone is the exact state: the log is
//     reset to an empty generation under the checkpoint's ID.
//   - anything else: the checkpoint and log disagree about their
//     lineage. Opening would silently drop every record that lives
//     only in the checkpoint, so recovery fails loudly instead.
//
// Compaction (walstore.go) interacts by writing its rewritten log
// with a Full marker and deleting the checkpoint file afterwards; a
// crash between those two steps leaves a stale checkpoint behind a
// Full marker, which the first rule cleans up.

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"log"
	"os"
	"sort"
	"time"

	"clickpass/internal/passpoints"
)

// shardCkptName returns the checkpoint file name for shard i.
func shardCkptName(i int) string { return fmt.Sprintf("shard-%04d.ckpt", i) }

// newWalID returns a fresh nonzero random generation id for a
// checkpoint or compacted log. Random rather than sequential so ids
// from different store lifetimes can never collide and alias a stale
// checkpoint onto a new log.
func newWalID() (uint64, error) {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return 0, fmt.Errorf("vault: generating checkpoint id: %w", err)
	}
	id := binary.LittleEndian.Uint64(b[:])
	if id == 0 {
		id = 1
	}
	return id, nil
}

// walCkpt is the per-shard checkpoint document: the shard's complete
// live state (records in sorted canonical order, like SaveTo) plus
// the identity fields recovery keys on.
type walCkpt struct {
	// Version is the document format version (1).
	Version int `json:"version"`
	// ID is the checkpoint's generation id; the rotated log's marker
	// record carries the same id.
	ID uint64 `json:"id"`
	// BaseLogID is the generation marker id of the log this
	// checkpoint summarizes (0 for a virgin, never-rotated log).
	BaseLogID uint64 `json:"base_log_id"`
	// BaseOff is the byte length of that log covered by this
	// checkpoint: every record below BaseOff is folded in.
	BaseOff int64 `json:"base_off"`
	// Records is the live record set, sorted by user.
	Records []*passpoints.Record `json:"records"`
	// Lockouts is the live failed-attempt counter set.
	Lockouts map[string]int `json:"lockouts,omitempty"`
	// KV is the live side-table (KVStore) entry set.
	KV map[string][]byte `json:"kv,omitempty"`
}

// readMarker decodes the log's first record if it is an intact
// generation marker (op "ckpt" with a nonzero id), returning the
// marker and its framed length. A missing, torn, corrupt, or
// non-marker first record returns (nil, 0, nil) — the log is treated
// as a plain full-history log and replayLog handles any damage.
func readMarker(f walFile) (*walEntry, int64, error) {
	var header [walHeaderSize]byte
	if _, err := f.ReadAt(header[:], 0); err != nil {
		return nil, 0, nil // empty or torn-header log
	}
	length := binary.LittleEndian.Uint32(header[0:4])
	sum := binary.LittleEndian.Uint32(header[4:8])
	if length == 0 || length > walMaxRecord {
		return nil, 0, nil
	}
	payload := make([]byte, length)
	if _, err := f.ReadAt(payload, walHeaderSize); err != nil {
		return nil, 0, nil
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, 0, nil
	}
	var e walEntry
	if err := json.Unmarshal(payload, &e); err != nil {
		return nil, 0, nil
	}
	if e.Op != walOpCkpt || e.Ckpt == 0 {
		return nil, 0, nil
	}
	return &e, walHeaderSize + int64(length), nil
}

// markerID returns a marker's generation id, 0 for no marker.
func markerID(m *walEntry) uint64 {
	if m == nil {
		return 0
	}
	return m.Ckpt
}

// loadCkpt reads and validates a shard checkpoint file. A missing
// file returns (nil, nil); an unreadable or corrupt one returns an
// error — the caller decides whether the log can stand alone.
func loadCkpt(path string) (*walCkpt, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("vault: reading checkpoint %s: %w", path, err)
	}
	var ck walCkpt
	if err := json.Unmarshal(data, &ck); err != nil {
		return nil, fmt.Errorf("vault: parsing checkpoint %s: %w", path, err)
	}
	if ck.Version != 1 || ck.ID == 0 || ck.BaseOff < 0 {
		return nil, fmt.Errorf("vault: checkpoint %s has invalid identity (version %d, id %d, base_off %d)",
			path, ck.Version, ck.ID, ck.BaseOff)
	}
	return &ck, nil
}

// applyCkpt folds a checkpoint's state into the shard maps.
func (sh *walShard) applyCkpt(ck *walCkpt) {
	for _, r := range ck.Records {
		if r != nil && r.User != "" {
			sh.records[r.User] = r
		}
	}
	for u, n := range ck.Lockouts {
		if n > 0 {
			sh.lockouts[u] = n
		}
	}
	for k, v := range ck.KV {
		if k != "" && len(v) > 0 {
			sh.kv[k] = v
		}
	}
}

// recover rebuilds the shard's maps from its checkpoint (when one
// exists and matches the log's lineage) and log, per the matching
// rules in the package comment above. It leaves the file truncated to
// the last intact record and positioned for appends.
func (sh *walShard) recover() error {
	marker, markerLen, err := readMarker(sh.f)
	if err != nil {
		return err
	}
	if marker != nil && marker.Full {
		// A compacted log is self-contained; any checkpoint predates it.
		if err := os.Remove(sh.ckptPath); err != nil && !os.IsNotExist(err) {
			log.Printf("vault: removing stale checkpoint %s: %v", sh.ckptPath, err)
		}
		sh.logID = marker.Ckpt
		return sh.replayFrom(0, 0)
	}
	ck, err := loadCkpt(sh.ckptPath)
	if err != nil {
		return err
	}
	switch {
	case ck == nil && marker == nil:
		return sh.replayFrom(0, 0)
	case ck == nil:
		return fmt.Errorf("vault: %s is a rotated log (generation %d) but its checkpoint %s is missing; refusing to open with partial state",
			sh.path, marker.Ckpt, sh.ckptPath)
	case marker != nil && ck.ID == marker.Ckpt:
		// Normal rotated log: checkpoint plus post-rotation tail.
		sh.applyCkpt(ck)
		sh.logID = marker.Ckpt
		return sh.replayFrom(markerLen, sh.live())
	case ck.BaseLogID == markerID(marker):
		// Crash between checkpoint rename and log rotation: the
		// checkpoint summarizes this log's prefix [0, BaseOff).
		size, serr := sh.f.Seek(0, io.SeekEnd)
		if serr != nil {
			return fmt.Errorf("vault: sizing %s: %w", sh.path, serr)
		}
		sh.applyCkpt(ck)
		if size < ck.BaseOff {
			// The log's unsynced tail died in an OS crash the fsynced
			// checkpoint survived; the checkpoint alone is exact.
			return sh.resetLogTo(ck.ID)
		}
		sh.logID = markerID(marker)
		return sh.replayFrom(ck.BaseOff, sh.live())
	default:
		return fmt.Errorf("vault: checkpoint %s (id %d over log generation %d) matches neither %s's generation marker (%d) nor its lineage; refusing to open with possibly partial state — restore the matching files or remove the checkpoint to force full-log recovery",
			sh.ckptPath, ck.ID, ck.BaseLogID, sh.path, markerID(marker))
	}
}

// replayFrom replays the log from offset start and initializes the
// shard's offsets and counters; base seeds the entry count with the
// records already folded in from a checkpoint (an estimate feeding
// only the compaction-ratio heuristic).
func (sh *walShard) replayFrom(start int64, base int) error {
	n, off, err := replayLog(sh.f, start, sh.apply)
	if err != nil {
		return err
	}
	sh.entries = base + n
	sh.sinceCkpt = n
	sh.ckptBytes = off - start
	sh.off = off
	sh.wsize = off
	sh.lsize = off
	return nil
}

// resetLogTo replaces the log's contents with a single generation
// marker carrying id — the recovery path for a log torn below its
// checkpoint's coverage, and the reason marker writes are fsynced
// before renames: after this the log and checkpoint agree again.
func (sh *walShard) resetLogTo(id uint64) error {
	log.Printf("vault: %s shorter than its checkpoint's coverage; resetting log under checkpoint %d", sh.path, id)
	if err := sh.restore(0); err != nil {
		return fmt.Errorf("vault: resetting %s: %w", sh.path, err)
	}
	buf, err := encodeEntry(&walEntry{Op: walOpCkpt, Ckpt: id}, nil)
	if err != nil {
		return err
	}
	if _, err := sh.f.Write(buf); err != nil {
		return fmt.Errorf("vault: writing marker to %s: %w", sh.path, err)
	}
	if err := sh.f.Sync(); err != nil {
		return fmt.Errorf("vault: syncing %s: %w", sh.path, err)
	}
	sh.off = int64(len(buf))
	sh.wsize = sh.off
	sh.lsize = sh.off
	sh.entries = sh.live() + 1
	sh.sinceCkpt = 0
	sh.ckptBytes = 0
	sh.logID = id
	return nil
}

// Checkpoint synchronously checkpoints every shard with any records
// appended since its last checkpoint or compaction. See
// CheckpointShard.
func (d *Durable) Checkpoint() error {
	for i := range d.shards {
		if err := d.CheckpointShard(i); err != nil {
			return err
		}
	}
	return nil
}

// CheckpointShard snapshots shard i's live state into its checkpoint
// file and rotates its log to a fresh generation, so the next open
// replays only records appended after this call. A shard with no
// appends since its last checkpoint (or compaction) is skipped. The
// shard is write-locked for the duration; a crash at any point leaves
// a recoverable combination (see the package comment above).
func (d *Durable) CheckpointShard(i int) error {
	return d.checkpointShard(i, 1, 0)
}

// checkpointShard is CheckpointShard with the periodic checkpointer's
// minimum-delta filters: a shard is snapshotted once its appends since
// the last checkpoint reach minDelta records OR (when minBytes > 0)
// minBytes log bytes, whichever trips first; below both it is skipped.
func (d *Durable) checkpointShard(i, minDelta int, minBytes int64) error {
	if i < 0 || i >= len(d.shards) {
		return fmt.Errorf("vault: no shard %d", i)
	}
	sh := &d.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.f == nil {
		return fmt.Errorf("vault: store is closed")
	}
	if sh.failed != nil {
		return sh.refuse()
	}
	sh.quiesce()
	if sh.sinceCkpt < minDelta && (minBytes <= 0 || sh.ckptBytes < minBytes) {
		return nil
	}
	id, err := newWalID()
	if err != nil {
		return err
	}
	ck := walCkpt{
		Version:   1,
		ID:        id,
		BaseLogID: sh.logID,
		BaseOff:   sh.off,
		Records:   make([]*passpoints.Record, 0, len(sh.records)),
		Lockouts:  make(map[string]int, len(sh.lockouts)),
		KV:        make(map[string][]byte, len(sh.kv)),
	}
	for _, r := range sh.records {
		ck.Records = append(ck.Records, r)
	}
	sort.Slice(ck.Records, func(a, b int) bool { return ck.Records[a].User < ck.Records[b].User })
	for u, n := range sh.lockouts {
		ck.Lockouts[u] = n
	}
	for k, v := range sh.kv {
		ck.KV[k] = v
	}
	if err := writeCkptFile(d.dir, sh.ckptPath, &ck); err != nil {
		return err
	}
	if hook := d.testCrashAfterCkptRename; hook != nil {
		hook(i)
	}
	// Rotate the log: fresh file, marker first, fsync before the
	// rename commits it — recovery trusts that a rotated log's marker
	// is intact.
	tmp, err := os.CreateTemp(d.dir, ".rotate-*")
	if err != nil {
		return fmt.Errorf("vault: rotation temp file: %w", err)
	}
	tmpName := tmp.Name()
	ok := false
	defer func() {
		if !ok {
			tmp.Close()
			os.Remove(tmpName)
		}
	}()
	buf, err := encodeEntry(&walEntry{Op: walOpCkpt, Ckpt: id}, nil)
	if err != nil {
		return err
	}
	if _, err := tmp.Write(buf); err != nil {
		return fmt.Errorf("vault: writing marker to %s: %w", tmpName, err)
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("vault: syncing %s: %w", tmpName, err)
	}
	if err := os.Rename(tmpName, sh.path); err != nil {
		return fmt.Errorf("vault: rotating %s: %w", sh.path, err)
	}
	ok = true
	// Reopen by path instead of adopting tmp's descriptor — same
	// rationale as CompactShard: fsyncing a renamed-into-place
	// descriptor can wedge in the kernel on some filesystems.
	tmp.Close()
	nf, err := d.openFile(sh.path)
	if err != nil {
		sh.failStop(fmt.Errorf("vault: reopening rotated %s: %w", sh.path, err))
		return fmt.Errorf("vault: reopening rotated %s: %w", sh.path, err)
	}
	if _, err := nf.Seek(int64(len(buf)), io.SeekStart); err != nil {
		nf.Close()
		sh.failStop(fmt.Errorf("vault: positioning rotated %s: %w", sh.path, err))
		return fmt.Errorf("vault: positioning rotated %s: %w", sh.path, err)
	}
	old := sh.f
	sh.f = nf
	sh.off = int64(len(buf))
	sh.wsize = sh.off
	sh.lsize = sh.off
	sh.entries = 1
	sh.sinceCkpt = 0
	sh.ckptBytes = 0
	sh.dirty = false
	sh.logID = id
	old.Close()
	return syncDir(d.dir)
}

// writeCkptFile writes a checkpoint document durably into place:
// temp file, fsync, rename, directory fsync.
func writeCkptFile(dir, path string, ck *walCkpt) error {
	data, err := json.MarshalIndent(ck, "", "  ")
	if err != nil {
		return fmt.Errorf("vault: encoding checkpoint: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return fmt.Errorf("vault: checkpoint temp file: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("vault: writing %s: %w", tmpName, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("vault: syncing %s: %w", tmpName, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("vault: committing checkpoint %s: %w", path, err)
	}
	return syncDir(dir)
}

// checkpointLoop is the background checkpointer: every CheckpointEvery
// it snapshots shards with at least CheckpointMin records appended
// since their last checkpoint, bounding startup replay by the cadence.
func (d *Durable) checkpointLoop() {
	defer d.bg.Done()
	t := time.NewTicker(d.opts.CheckpointEvery)
	defer t.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-t.C:
			for i := range d.shards {
				if err := d.checkpointShard(i, d.opts.CheckpointMin, d.opts.CheckpointMinBytes); err != nil {
					log.Printf("vault: background checkpoint of shard %d: %v", i, err)
					// A fail-stopped or closed shard will keep failing;
					// stop spamming this tick.
					break
				}
			}
		}
	}
}

package core

import (
	"testing"

	"clickpass/internal/fixed"
	"clickpass/internal/geom"
)

func newRobust1D(t *testing.T, rPx int) *RobustND {
	t.Helper()
	rb, err := NewRobust(fixed.FromPixels(rPx), 1, MostCentered, 1)
	if err != nil {
		t.Fatal(err)
	}
	return rb
}

func newRobust2DTest(t *testing.T, sidePx int, policy RobustPolicy) *Robust2D {
	t.Helper()
	rb, err := NewRobust2D(sidePx, policy, 1)
	if err != nil {
		t.Fatal(err)
	}
	return rb
}

func TestRobustGeometryConstants(t *testing.T) {
	rb := newRobust2DTest(t, 36, MostCentered) // r = 6
	if rb.GuaranteedR() != fixed.FromPixels(6) {
		t.Errorf("r = %v, want 6px", rb.GuaranteedR())
	}
	if rb.SquareSide() != fixed.FromPixels(36) {
		t.Errorf("side = %v, want 36px", rb.SquareSide())
	}
	if rb.MaxAccepted() != fixed.FromPixels(30) {
		t.Errorf("rmax = %v, want 5r = 30px", rb.MaxAccepted())
	}
}

// TestThreeGridsSufficient2D exhaustively verifies Birget et al.'s
// theorem at sub-pixel resolution over one full period: every point has
// at least one r-safe grid among the three.
func TestThreeGridsSufficient2D(t *testing.T) {
	rb, err := NewRobust(fixed.Sub(13), 2, MostCentered, 1) // side 78 sub
	if err != nil {
		t.Fatal(err)
	}
	period := int64(rb.Side())
	for x := int64(0); x < period; x++ {
		for y := int64(0); y < period; y++ {
			n := len(rb.SafeGrids([]fixed.Sub{fixed.Sub(x), fixed.Sub(y)}))
			if n == 0 {
				t.Fatalf("no safe grid at (%d,%d) sub", x, y)
			}
			// Each axis excludes exactly one grid, so 1 or 2 remain.
			if n > 2 {
				t.Fatalf("%d safe grids at (%d,%d) sub, want <= 2", n, x, y)
			}
		}
	}
}

// TestSafeGridCount1D: the half-open unsafe bands of the GridCount
// grids partition each axis's period, so in 1-D (2 grids) every point
// is safe in exactly one grid.
func TestSafeGridCount1D(t *testing.T) {
	rb := newRobust1D(t, 2) // r = 12 sub, side 4r = 48 sub, 2 grids
	if rb.GridCount() != 2 {
		t.Fatalf("1-D Robust uses n+1 = 2 grids, got %d", rb.GridCount())
	}
	period := int64(rb.Side())
	for x := int64(0); x < period; x++ {
		n := len(rb.SafeGrids([]fixed.Sub{fixed.Sub(x)}))
		if n != 1 {
			t.Fatalf("x=%d: %d safe grids, want exactly 1", x, n)
		}
	}
}

// TestRobustGuaranteeAccept: any re-entry within r (Chebyshev) of the
// original point is accepted — guarantee (1) of the scheme.
func TestRobustGuaranteeAccept(t *testing.T) {
	for _, policy := range []RobustPolicy{MostCentered, FirstSafe, RandomSafe} {
		rb := newRobust2DTest(t, 18, policy) // r = 3px
		for x := 0; x < 40; x++ {
			for y := 0; y < 40; y += 7 {
				p := geom.Pt(x, y)
				tok := rb.Enroll(p)
				for dx := -3; dx <= 3; dx++ {
					for dy := -3; dy <= 3; dy++ {
						q := geom.Pt(x+dx, y+dy)
						if !Accepts(rb, tok, q) {
							t.Fatalf("policy %v: (%d,%d)+(%d,%d) within r rejected", policy, x, y, dx, dy)
						}
					}
				}
			}
		}
	}
}

// TestRobustGuaranteeReject: any re-entry farther than rmax = 5r on
// some axis is rejected — guarantee (2).
func TestRobustGuaranteeReject(t *testing.T) {
	rb := newRobust2DTest(t, 18, MostCentered) // r=3, rmax=15
	for x := 0; x < 60; x += 5 {
		for y := 0; y < 60; y += 3 {
			p := geom.Pt(x, y)
			tok := rb.Enroll(p)
			for _, d := range []int{16, 20, 33} {
				if Accepts(rb, tok, geom.Pt(x+d, y)) {
					t.Fatalf("(%d,%d)+%dpx beyond rmax accepted", x, y, d)
				}
				if Accepts(rb, tok, geom.Pt(x, y-d)) {
					t.Fatalf("(%d,%d)-%dpx beyond rmax accepted", x, y, d)
				}
			}
		}
	}
}

// TestRobustWorstCaseReachable: there exist points accepted at nearly
// 5r and points rejected at just over r — the asymmetry of Figure 1.
func TestRobustWorstCaseReachable(t *testing.T) {
	rb := newRobust2DTest(t, 36, MostCentered) // r=6, rmax=30
	var sawFarAccept, sawNearReject bool
	for x := 0; x < 108 && !(sawFarAccept && sawNearReject); x++ {
		for y := 0; y < 108; y++ {
			p := geom.Pt(x, y)
			tok := rb.Enroll(p)
			// Displacement well beyond centered tolerance (side/2=18).
			if Accepts(rb, tok, geom.Pt(x+25, y)) {
				sawFarAccept = true
			}
			// Displacement barely beyond r.
			if !Accepts(rb, tok, geom.Pt(x+7, y)) {
				sawNearReject = true
			}
		}
	}
	if !sawFarAccept {
		t.Error("no point accepted at 25px despite rmax=30 — worst case unreachable?")
	}
	if !sawNearReject {
		t.Error("no point rejected at 7px despite r=6 — worst case unreachable?")
	}
}

// TestChosenGridIsSafe: every policy must return an r-safe grid.
func TestChosenGridIsSafe(t *testing.T) {
	for _, policy := range []RobustPolicy{MostCentered, FirstSafe, RandomSafe} {
		rb, err := NewRobust(fixed.Sub(13), 2, policy, 7)
		if err != nil {
			t.Fatal(err)
		}
		period := int64(rb.Side())
		for x := int64(0); x < period; x += 5 {
			for y := int64(0); y < period; y += 3 {
				coords := []fixed.Sub{fixed.Sub(x), fixed.Sub(y)}
				g := rb.ChooseGrid(coords)
				if !rb.SafeIn(coords, g) {
					t.Fatalf("policy %v chose unsafe grid %d at (%d,%d)", policy, g, x, y)
				}
			}
		}
	}
}

// TestMostCenteredIsOptimal: the MostCentered margin dominates every
// other safe grid's margin.
func TestMostCenteredIsOptimal(t *testing.T) {
	rb, err := NewRobust(fixed.Sub(13), 2, MostCentered, 1)
	if err != nil {
		t.Fatal(err)
	}
	period := int64(rb.Side())
	for x := int64(0); x < period; x += 7 {
		for y := int64(0); y < period; y += 7 {
			coords := []fixed.Sub{fixed.Sub(x), fixed.Sub(y)}
			g := rb.ChooseGrid(coords)
			m := rb.Margin(coords, g)
			for _, other := range rb.SafeGrids(coords) {
				if rb.Margin(coords, other) > m {
					t.Fatalf("grid %d has larger margin than chosen %d at (%d,%d)", other, g, x, y)
				}
			}
		}
	}
}

// TestMarginAtLeastR: whatever grid is chosen, the original point keeps
// at least margin r inside its square.
func TestMarginAtLeastR(t *testing.T) {
	rb := newRobust2DTest(t, 24, MostCentered)
	for x := 0; x < 50; x++ {
		for y := 0; y < 50; y += 11 {
			p := geom.Pt(x, y)
			tok := rb.Enroll(p)
			if m := rb.Region(tok).Margin(p); m < rb.GuaranteedR() {
				t.Fatalf("margin %v < r %v at %v", m, rb.GuaranteedR(), p)
			}
		}
	}
}

// TestRegionMatchesAccepts: the Region rect and the Accepts predicate
// agree exactly.
func TestRegionMatchesAccepts(t *testing.T) {
	rb := newRobust2DTest(t, 13, MostCentered)
	cn, err := NewCentered(13)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []Scheme{rb, cn} {
		p := geom.Pt(101, 57)
		tok := s.Enroll(p)
		region := s.Region(tok)
		for dx := -15; dx <= 15; dx++ {
			for dy := -15; dy <= 15; dy++ {
				q := geom.Pt(101+dx, 57+dy)
				if Accepts(s, tok, q) != region.Contains(q) {
					t.Fatalf("%s: Accepts and Region disagree at offset (%d,%d)", s.Name(), dx, dy)
				}
			}
		}
		if !region.Contains(p) {
			t.Fatalf("%s: region excludes original point", s.Name())
		}
	}
}

// TestRobustND3D: the n-D generalization needs n+1 grids; verify the
// safety theorem in 3-D on a coarse lattice.
func TestRobustND3D(t *testing.T) {
	rb, err := NewRobust(fixed.Sub(6), 3, MostCentered, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rb.GridCount() != 4 {
		t.Fatalf("3-D Robust needs 4 grids, got %d", rb.GridCount())
	}
	if rb.Side() != fixed.Sub(48) { // 2r(n+1) = 2*6*4
		t.Fatalf("side = %v, want 48", rb.Side())
	}
	period := int64(rb.Side())
	for x := int64(0); x < period; x += 2 {
		for y := int64(0); y < period; y += 3 {
			for z := int64(0); z < period; z += 5 {
				coords := []fixed.Sub{fixed.Sub(x), fixed.Sub(y), fixed.Sub(z)}
				if len(rb.SafeGrids(coords)) == 0 {
					t.Fatalf("no safe grid at (%d,%d,%d)", x, y, z)
				}
				g, idx := rb.Discretize(coords)
				if !rb.Accepts(g, idx, coords) {
					t.Fatalf("original rejected at (%d,%d,%d)", x, y, z)
				}
			}
		}
	}
}

func TestNewRobustValidation(t *testing.T) {
	if _, err := NewRobust(0, 2, MostCentered, 1); err == nil {
		t.Error("zero r should fail")
	}
	if _, err := NewRobust(6, 0, MostCentered, 1); err == nil {
		t.Error("zero dims should fail")
	}
	if _, err := NewRobust(6, 2, RobustPolicy(99), 1); err == nil {
		t.Error("unknown policy should fail")
	}
	if _, err := NewRobust2D(0, MostCentered, 1); err == nil {
		t.Error("zero side should fail")
	}
	if _, err := NewRobustFromR(0, MostCentered, 1); err == nil {
		t.Error("zero r should fail")
	}
}

func TestPolicyString(t *testing.T) {
	cases := map[RobustPolicy]string{
		MostCentered:    "most-centered",
		FirstSafe:       "first-safe",
		RandomSafe:      "random-safe",
		RobustPolicy(9): "RobustPolicy(9)",
	}
	for p, want := range cases {
		if p.String() != want {
			t.Errorf("String(%d) = %q, want %q", int(p), p.String(), want)
		}
	}
}

func TestRobustFromR(t *testing.T) {
	rb, err := NewRobustFromR(6, MostCentered, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rb.SquareSide() != fixed.FromPixels(36) {
		t.Errorf("r=6 gives side %v, want 36px", rb.SquareSide())
	}
}

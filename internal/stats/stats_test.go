package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestProportionBasics(t *testing.T) {
	p := Proportion{K: 21, N: 100}
	if p.Value() != 0.21 || p.Pct() != 21 {
		t.Errorf("point estimate wrong: %v / %v", p.Value(), p.Pct())
	}
	if (Proportion{}).Value() != 0 {
		t.Error("empty proportion should be 0")
	}
}

func TestWilsonKnownValue(t *testing.T) {
	// Classic check: 10/100 at 95% -> approximately [0.055, 0.174].
	lo, hi := Proportion{K: 10, N: 100}.Wilson(1.96)
	if math.Abs(lo-0.0552) > 0.003 || math.Abs(hi-0.1744) > 0.003 {
		t.Errorf("Wilson(10/100) = [%.4f, %.4f], want ~[0.055, 0.174]", lo, hi)
	}
}

func TestWilsonEdgeCases(t *testing.T) {
	lo, hi := Proportion{K: 0, N: 50}.Wilson(1.96)
	if lo != 0 {
		t.Errorf("zero successes should pin lo to 0, got %f", lo)
	}
	if hi <= 0 || hi > 0.15 {
		t.Errorf("0/50 upper bound %f implausible", hi)
	}
	lo, hi = Proportion{K: 50, N: 50}.Wilson(1.96)
	if hi != 1 {
		t.Errorf("all successes should pin hi to 1, got %f", hi)
	}
	if lo >= 1 || lo < 0.85 {
		t.Errorf("50/50 lower bound %f implausible", lo)
	}
	lo, hi = Proportion{}.Wilson(1.96)
	if lo != 0 || hi != 1 {
		t.Error("empty sample should give the vacuous interval")
	}
}

// Property: the interval always contains the point estimate and is
// within [0,1].
func TestWilsonContainsEstimate(t *testing.T) {
	f := func(kRaw, nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		k := int(kRaw) % (n + 1)
		p := Proportion{K: k, N: n}
		lo, hi := p.Wilson(1.96)
		v := p.Value()
		return lo >= 0 && hi <= 1 && lo <= v && v <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: more data shrinks the interval (same rate).
func TestWilsonShrinksWithN(t *testing.T) {
	lo1, hi1 := Proportion{K: 5, N: 25}.Wilson(1.96)
	lo2, hi2 := Proportion{K: 50, N: 250}.Wilson(1.96)
	if hi2-lo2 >= hi1-lo1 {
		t.Errorf("interval did not shrink: %.3f vs %.3f", hi2-lo2, hi1-lo1)
	}
}

func TestProportionString(t *testing.T) {
	s := Proportion{K: 21, N: 100}.String()
	if !strings.HasPrefix(s, "21.0% [") {
		t.Errorf("String() = %q", s)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Median != 3 || s.Min != 1 || s.Max != 5 {
		t.Errorf("summary wrong: %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Errorf("std = %f", s.Std)
	}
	if math.Abs(s.P90-4.6) > 1e-12 {
		t.Errorf("p90 = %f, want 4.6", s.P90)
	}
}

func TestSummarizeEdge(t *testing.T) {
	if Summarize(nil).N != 0 {
		t.Error("empty summary should be zero")
	}
	one := Summarize([]float64{7})
	if one.Mean != 7 || one.Median != 7 || one.Std != 0 || one.P90 != 7 {
		t.Errorf("singleton summary wrong: %+v", one)
	}
}

func TestTwoProportionZ(t *testing.T) {
	// Equal rates: z = 0.
	if z := TwoProportionZ(Proportion{10, 100}, Proportion{10, 100}); z != 0 {
		t.Errorf("equal rates z = %f", z)
	}
	// A large gap at study scale should be highly significant: the
	// paper's 45.1% vs 14.8% over 162 passwords.
	z := TwoProportionZ(Proportion{73, 162}, Proportion{24, 162})
	if z < 5 {
		t.Errorf("Figure 8 gap z = %f, expected >> 1.96", z)
	}
	// Degenerate inputs.
	if TwoProportionZ(Proportion{}, Proportion{1, 10}) != 0 {
		t.Error("empty sample should give z=0")
	}
	if TwoProportionZ(Proportion{0, 10}, Proportion{0, 20}) != 0 {
		t.Error("0 pooled rate should give z=0")
	}
}

package clickpass

// Cross-layer integration tests: the study simulator, the analysis
// engine, the PassPoints stack and the network server must all agree
// about which logins succeed.

import (
	"bytes"
	"fmt"
	"net"
	"testing"
	"time"

	"clickpass/internal/authproto"
	"clickpass/internal/core"
	"clickpass/internal/dataset"
	"clickpass/internal/geom"
	"clickpass/internal/imagegen"
	"clickpass/internal/passpoints"
	"clickpass/internal/study"
	"clickpass/internal/vault"
)

// TestStudyReplayThroughServer enrolls a simulated study through the
// real TCP protocol and replays every login; the server's accept set
// must match direct scheme acceptance exactly.
func TestStudyReplayThroughServer(t *testing.T) {
	cfg := study.Config{
		Image:             imagegen.Cars(),
		Passwords:         25,
		LoginsPerPassword: 6,
		Clicks:            5,
		MinSeparation:     15,
		Error:             study.DefaultErrorModel(),
		Seed:              99,
	}
	d, err := study.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	scheme, err := core.NewCentered(13)
	if err != nil {
		t.Fatal(err)
	}
	ppCfg := passpoints.Config{
		Image:      geom.Size{W: d.Width, H: d.Height},
		Clicks:     5,
		Scheme:     scheme,
		Iterations: 2,
	}
	// Lockout must exceed the per-password login volume so the replay
	// is never throttled.
	srv, err := authproto.NewServer(ppCfg, vault.New(), 1000)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() { _ = srv.Serve(l) }()
	client, err := authproto.Dial(l.Addr().String(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	users := make(map[int]string)
	for i := range d.Passwords {
		pw := &d.Passwords[i]
		user := fmt.Sprintf("user-%d", pw.ID)
		users[pw.ID] = user
		resp, err := client.Enroll(user, pw.Clicks)
		if err != nil {
			t.Fatal(err)
		}
		if !resp.OK {
			t.Fatalf("enroll %s: %+v", user, resp)
		}
	}
	agree := 0
	for i := range d.Logins {
		login := &d.Logins[i]
		pw := d.PasswordByID(login.PasswordID)
		// Ground truth: every click within the centered tolerance.
		want := true
		for j := range login.Clicks {
			tok := scheme.Enroll(pw.Clicks[j].Point())
			if !core.Accepts(scheme, tok, login.Clicks[j].Point()) {
				want = false
				break
			}
		}
		resp, err := client.Login(users[login.PasswordID], login.Clicks)
		if err != nil {
			t.Fatal(err)
		}
		if resp.OK != want {
			t.Fatalf("login %d: server says %v, scheme says %v", i, resp.OK, want)
		}
		agree++
	}
	if agree != len(d.Logins) {
		t.Fatalf("replayed %d logins, want %d", agree, len(d.Logins))
	}
	t.Logf("server and scheme agreed on all %d logins", agree)
}

// TestVaultRoundTripAcrossConfigs: a record saved by one process must
// verify identically after reload using a scheme reconstructed from
// the record itself.
func TestVaultRoundTripAcrossConfigs(t *testing.T) {
	for _, kind := range []Kind{Centered, Robust} {
		auth, err := New(Options{
			ImageW: 451, ImageH: 331, SquareSide: 19, Scheme: kind, HashIterations: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		clicks := []Point{{30, 40}, {120, 300}, {222, 51}, {400, 200}, {77, 160}}
		rec, err := auth.Enroll("mover", clicks)
		if err != nil {
			t.Fatal(err)
		}
		v := vault.New()
		if err := v.Put(rec); err != nil {
			t.Fatal(err)
		}
		loaded, err := v.Get("mover")
		if err != nil {
			t.Fatal(err)
		}
		scheme, err := passpoints.SchemeForRecord(loaded)
		if err != nil {
			t.Fatal(err)
		}
		cfg := passpoints.Config{
			Image:  geom.Size{W: 451, H: 331},
			Clicks: 5, Scheme: scheme, Iterations: 2,
		}
		pts := make([]geom.Point, len(clicks))
		for i, c := range clicks {
			pts[i] = geom.Pt(c.X, c.Y)
		}
		ok, err := passpoints.Verify(cfg, loaded, pts)
		if err != nil || !ok {
			t.Errorf("%s: reconstructed verification failed: %v %v", kind, ok, err)
		}
	}
}

// TestDatasetJSONStable: the JSON wire format of datasets must stay
// parseable after a write/read/write cycle (golden stability without a
// checked-in golden file).
func TestDatasetJSONStable(t *testing.T) {
	cfg := study.LabConfig(imagegen.Pool(), 3)
	d, err := study.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf1, buf2 bytes.Buffer
	if err := d.WriteJSON(&buf1); err != nil {
		t.Fatal(err)
	}
	first := buf1.String()
	back, err := dataset.ReadJSON(&buf1)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if first != buf2.String() {
		t.Error("dataset JSON not stable across a round trip")
	}
}

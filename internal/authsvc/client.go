package authsvc

import (
	"context"
	"fmt"

	"clickpass/internal/dataset"
)

// Doer sends one request over some transport and returns the service's
// response. Transport errors (broken connection, unreachable host) are
// returned as err; service-level refusals come back inside Response.
type Doer interface {
	Do(ctx context.Context, req Request) (Response, error)
}

// Client is the unified client surface: one interface, interchangeable
// TCP and HTTP implementations (internal/authproto), so tests and
// loadtest drive either transport through identical code.
type Client interface {
	Doer
	// Ping checks liveness.
	Ping(ctx context.Context) error
	// Enroll registers a new password.
	Enroll(ctx context.Context, user string, clicks []dataset.Click) (Response, error)
	// Login attempts authentication.
	Login(ctx context.Context, user string, clicks []dataset.Click) (Response, error)
	// Change replaces the password after verifying the old one.
	Change(ctx context.Context, user string, old, new []dataset.Click) (Response, error)
	// Validate checks a session token minted by a successful login;
	// the response's User field names the account on CodeOK.
	Validate(ctx context.Context, token string) (Response, error)
	// Close releases the transport.
	Close() error
}

// Ops derives the full Client op surface from a Doer, so a transport
// implementation only writes Do and Close:
//
//	c := &tcpClient{...}
//	c.Ops = authsvc.Ops{Doer: c}
type Ops struct {
	Doer
}

// Ping checks liveness.
func (o Ops) Ping(ctx context.Context) error {
	resp, err := o.Do(ctx, Request{Version: Version, Op: OpPing})
	if err != nil {
		return err
	}
	if !resp.OK() {
		return fmt.Errorf("authsvc: ping rejected: %s", resp.Err)
	}
	return nil
}

// Enroll registers a new password.
func (o Ops) Enroll(ctx context.Context, user string, clicks []dataset.Click) (Response, error) {
	return o.Do(ctx, Request{Version: Version, Op: OpEnroll, User: user, Clicks: clicks})
}

// Login attempts authentication.
func (o Ops) Login(ctx context.Context, user string, clicks []dataset.Click) (Response, error) {
	return o.Do(ctx, Request{Version: Version, Op: OpLogin, User: user, Clicks: clicks})
}

// Change replaces the password after verifying the old one.
func (o Ops) Change(ctx context.Context, user string, old, new []dataset.Click) (Response, error) {
	return o.Do(ctx, Request{Version: Version, Op: OpChange, User: user, Clicks: old, NewClicks: new})
}

// Validate checks a session token.
func (o Ops) Validate(ctx context.Context, token string) (Response, error) {
	return o.Do(ctx, Request{Version: Version, Op: OpValidate, Token: token})
}

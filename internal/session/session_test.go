package session

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// memKV is an in-memory KV for tests, optionally refusing writes to
// model a replication follower.
type memKV struct {
	mu       sync.Mutex
	m        map[string][]byte
	sets     int
	gets     int
	ranges   int
	readOnly bool
}

func newMemKV() *memKV { return &memKV{m: make(map[string][]byte)} }

func (s *memKV) SetKV(key string, val []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sets++
	if s.readOnly {
		return errors.New("not primary")
	}
	if len(val) == 0 {
		delete(s.m, key)
		return nil
	}
	s.m[key] = append([]byte(nil), val...)
	return nil
}

func (s *memKV) GetKV(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gets++
	v, ok := s.m[key]
	return v, ok
}

func (s *memKV) KVRange(prefix string) map[string][]byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ranges++
	out := make(map[string][]byte)
	for k, v := range s.m {
		if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
			out[k] = append([]byte(nil), v...)
		}
	}
	return out
}

func (s *memKV) calls() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sets + s.gets + s.ranges
}

// fakeClock is a settable test clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)}
}

func newTestManager(t *testing.T, opts Options) *Manager {
	t.Helper()
	m, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(m.Close)
	return m
}

func TestMintValidateRoundTrip(t *testing.T) {
	for _, alg := range []Alg{AlgEd25519, AlgHMAC} {
		t.Run(alg.String(), func(t *testing.T) {
			clk := newClock()
			m := newTestManager(t, Options{Alg: alg, TTL: time.Hour, Now: clk.now})
			tok, err := m.Mint("alice")
			if err != nil {
				t.Fatalf("Mint: %v", err)
			}
			for i := 0; i < 2; i++ { // second pass exercises the verify cache
				user, err := m.Validate(tok)
				if err != nil || user != "alice" {
					t.Fatalf("Validate pass %d = %q, %v", i, user, err)
				}
			}
			clk.advance(time.Hour + time.Nanosecond)
			if _, err := m.Validate(tok); !errors.Is(err, ErrExpired) {
				t.Fatalf("after TTL: err = %v, want ErrExpired", err)
			}
		})
	}
}

func TestRevocationWatermark(t *testing.T) {
	clk := newClock()
	st := newMemKV()
	m := newTestManager(t, Options{TTL: time.Hour, Now: clk.now, Store: st})
	tok, err := m.Mint("bob")
	if err != nil {
		t.Fatalf("Mint: %v", err)
	}
	if _, err := m.Validate(tok); err != nil {
		t.Fatalf("pre-revoke Validate: %v", err)
	}
	if err := m.Revoke("bob"); err != nil {
		t.Fatalf("Revoke: %v", err)
	}
	if _, err := m.Validate(tok); !errors.Is(err, ErrRevoked) {
		t.Fatalf("post-revoke: err = %v, want ErrRevoked", err)
	}
	// A token minted strictly after the watermark is good again.
	clk.advance(time.Nanosecond)
	tok2, err := m.Mint("bob")
	if err != nil {
		t.Fatalf("re-Mint: %v", err)
	}
	if user, err := m.Validate(tok2); err != nil || user != "bob" {
		t.Fatalf("post-revoke fresh token: %q, %v", user, err)
	}
	// Other users are untouched.
	tokC, _ := m.Mint("carol")
	if _, err := m.Validate(tokC); err != nil {
		t.Fatalf("unrelated user hit by revocation: %v", err)
	}
	// The watermark persisted.
	if _, ok := st.GetKV("session/rev/bob"); !ok {
		t.Fatalf("revocation watermark not persisted")
	}
}

// TestRotationOverlapWindow is the rotation property test: a token
// minted under generation N validates through one rotation (overlap)
// and is refused after the second, and the property holds across a
// simulated hard restart (a brand-new Manager reseeded from the same
// store — which is exactly what SIGKILL + reopen produces, since
// every key write is durable before use).
func TestRotationOverlapWindow(t *testing.T) {
	clk := newClock()
	st := newMemKV()
	m := newTestManager(t, Options{TTL: 24 * time.Hour, Now: clk.now, Store: st})

	tok, err := m.Mint("alice")
	if err != nil {
		t.Fatalf("Mint: %v", err)
	}
	if cur, _ := m.Generations(); cur != 1 {
		t.Fatalf("fresh manager at generation %d, want 1", cur)
	}
	if err := m.Rotate(); err != nil { // now at gen 2; token gen 1 in overlap
		t.Fatalf("Rotate: %v", err)
	}
	if user, err := m.Validate(tok); err != nil || user != "alice" {
		t.Fatalf("after 1 rotation (overlap): %q, %v", user, err)
	}

	// Restart: a fresh Manager over the same durable state must reach
	// the same verdicts — including for a token it never minted.
	m2 := newTestManager(t, Options{TTL: 24 * time.Hour, Now: clk.now, Store: st})
	if cur, active := m2.Generations(); cur != 2 || active != 2 {
		t.Fatalf("restarted manager sees gen %d with %d keys, want 2 with 2", cur, active)
	}
	if user, err := m2.Validate(tok); err != nil || user != "alice" {
		t.Fatalf("restarted manager, overlap token: %q, %v", user, err)
	}

	if err := m2.Rotate(); err != nil { // gen 3; token gen 1 is out
		t.Fatalf("Rotate: %v", err)
	}
	if _, err := m2.Validate(tok); !errors.Is(err, ErrStaleGeneration) {
		t.Fatalf("after 2 rotations: err = %v, want ErrStaleGeneration", err)
	}
	// The original manager lags at gen 2 but rotation also pruned the
	// store; a second restart only sees gens 2 and 3.
	m3 := newTestManager(t, Options{TTL: 24 * time.Hour, Now: clk.now, Store: st})
	if _, err := m3.Validate(tok); !errors.Is(err, ErrStaleGeneration) {
		t.Fatalf("restart after 2 rotations: err = %v, want ErrStaleGeneration", err)
	}
	if len(st.KVRange("session/key/")) != 2 {
		t.Fatalf("store holds %d key generations, want 2 (current + overlap)", len(st.KVRange("session/key/")))
	}
}

// TestValidateZeroStoreCalls is the acceptance check that the
// validate path performs no store round-trips: after warmup, a
// counting store sees zero additional calls across many validations
// of hits, misses, revoked, and expired tokens.
func TestValidateZeroStoreCalls(t *testing.T) {
	clk := newClock()
	st := newMemKV()
	m := newTestManager(t, Options{TTL: time.Hour, Now: clk.now, Store: st})
	good, err := m.Mint("alice")
	if err != nil {
		t.Fatalf("Mint: %v", err)
	}
	revoked, _ := m.Mint("mallory")
	if err := m.Revoke("mallory"); err != nil {
		t.Fatalf("Revoke: %v", err)
	}
	expired, _ := m.Mint("late")

	before := st.calls()
	for i := 0; i < 1000; i++ {
		if _, err := m.Validate(good); err != nil {
			t.Fatalf("Validate(good): %v", err)
		}
		if _, err := m.Validate(revoked); !errors.Is(err, ErrRevoked) {
			t.Fatalf("Validate(revoked): %v", err)
		}
		if _, err := m.Validate("garbage-" + good); !errors.Is(err, ErrBadToken) {
			t.Fatalf("Validate(garbage): %v", err)
		}
	}
	clk.advance(2 * time.Hour)
	if _, err := m.Validate(expired); !errors.Is(err, ErrExpired) {
		t.Fatalf("Validate(expired): %v", err)
	}
	if got := st.calls(); got != before {
		t.Fatalf("validate path made %d store calls, want 0", got-before)
	}
}

// TestFollowerAdoptsKeys models the follower side: the store refuses
// writes, so the manager defers key creation and adopts whatever
// ApplyKV (the replication watch) delivers — then revokes locally
// even though its persistence attempt fails.
func TestFollowerAdoptsKeys(t *testing.T) {
	clk := newClock()

	// Primary mints as usual.
	pst := newMemKV()
	p := newTestManager(t, Options{TTL: time.Hour, Now: clk.now, Store: pst})
	tok, err := p.Mint("alice")
	if err != nil {
		t.Fatalf("primary Mint: %v", err)
	}

	// Follower boots with a read-only empty store: no key invented.
	fst := newMemKV()
	fst.readOnly = true
	f := newTestManager(t, Options{TTL: time.Hour, Now: clk.now, Store: fst})
	if cur, _ := f.Generations(); cur != 0 {
		t.Fatalf("follower invented key generation %d", cur)
	}
	if _, err := f.Mint("x"); !errors.Is(err, ErrNoKey) {
		t.Fatalf("keyless Mint err = %v, want ErrNoKey", err)
	}
	if _, err := f.Validate(tok); err == nil {
		t.Fatalf("follower validated a token with no keys")
	}

	// Replication delivers the primary's key writes.
	for k, v := range pst.KVRange("session/") {
		f.ApplyKV(k, v)
	}
	if user, err := f.Validate(tok); err != nil || user != "alice" {
		t.Fatalf("follower Validate after adoption: %q, %v", user, err)
	}
	// An adopted key also mints (promotion needs this).
	if _, err := f.Mint("bob"); err != nil {
		t.Fatalf("follower Mint after adoption: %v", err)
	}

	// Rotation on the follower is refused by the store and changes
	// nothing locally.
	if err := f.Rotate(); err == nil {
		t.Fatalf("follower Rotate succeeded against a read-only store")
	}
	if cur, _ := f.Generations(); cur != 1 {
		t.Fatalf("failed rotation moved follower to generation %d", cur)
	}

	// Local revocation sticks even though persistence fails.
	if err := f.Revoke("alice"); err == nil {
		t.Fatalf("follower Revoke reported success against a read-only store")
	}
	if _, err := f.Validate(tok); !errors.Is(err, ErrRevoked) {
		t.Fatalf("follower after local revoke: %v, want ErrRevoked", err)
	}
}

// TestApplyKVRevocationAndDeletes covers replicated revocation
// watermarks (max-wins) and key deletions.
func TestApplyKVRevocationAndDeletes(t *testing.T) {
	clk := newClock()
	m := newTestManager(t, Options{TTL: time.Hour, Now: clk.now})
	tok, err := m.Mint("alice")
	if err != nil {
		t.Fatalf("Mint: %v", err)
	}
	wm := clk.now().UnixNano()
	m.ApplyKV("session/rev/alice", []byte(fmt.Sprintf("%d", wm)))
	if _, err := m.Validate(tok); !errors.Is(err, ErrRevoked) {
		t.Fatalf("after replicated revocation: %v, want ErrRevoked", err)
	}
	// An older watermark must not regress the newer one.
	m.ApplyKV("session/rev/alice", []byte(fmt.Sprintf("%d", wm-10)))
	if _, err := m.Validate(tok); !errors.Is(err, ErrRevoked) {
		t.Fatalf("older watermark regressed the newer one: %v", err)
	}
	// Deleting the watermark clears it.
	m.ApplyKV("session/rev/alice", nil)
	if _, err := m.Validate(tok); err != nil {
		t.Fatalf("after watermark delete: %v", err)
	}
	// Deleting the key generation drops it from the key set.
	m.ApplyKV("session/key/1", nil)
	if _, active := m.Generations(); active != 0 {
		t.Fatalf("deleted key still installed (%d active)", active)
	}
	// Malformed entries are ignored, not fatal.
	m.ApplyKV("session/key/notanumber", []byte("{}"))
	m.ApplyKV("session/key/5", []byte("not json"))
	m.ApplyKV("session/rev/", []byte("123"))
	m.ApplyKV("session/rev/x", []byte("not a number"))
	m.ApplyKV("unrelated/key", []byte("ignored"))
}

func TestTamperedTokensRejected(t *testing.T) {
	clk := newClock()
	m := newTestManager(t, Options{TTL: time.Hour, Now: clk.now})
	tok, err := m.Mint("alice")
	if err != nil {
		t.Fatalf("Mint: %v", err)
	}
	// A token signed by a different manager (attacker's own key, same
	// format) must fail: "resigned" case.
	other := newTestManager(t, Options{TTL: time.Hour, Now: clk.now})
	forged, err := other.Mint("alice")
	if err != nil {
		t.Fatalf("other Mint: %v", err)
	}
	if _, err := m.Validate(forged); !errors.Is(err, ErrBadToken) {
		t.Fatalf("foreign-key token: err = %v, want ErrBadToken", err)
	}
	// Truncations.
	for _, n := range []int{1, 2, len(tok) / 2, len(tok) - 1} {
		if _, err := m.Validate(tok[:n]); err == nil {
			t.Fatalf("truncated token (len %d) validated", n)
		}
	}
	if _, err := m.Validate(""); err == nil {
		t.Fatalf("empty token validated")
	}
}

func TestVerifyCacheBounded(t *testing.T) {
	clk := newClock()
	// HMAC keeps 70k+ mint/validate pairs fast under -race.
	m := newTestManager(t, Options{Alg: AlgHMAC, TTL: time.Hour, Now: clk.now})
	// Overfill well past one shard's capacity; total held entries must
	// stay within the global bound.
	total := cacheShardCount*cacheShardCap + 5000
	for i := 0; i < total; i++ {
		tok, err := m.Mint(fmt.Sprintf("user-%d", i))
		if err != nil {
			t.Fatalf("Mint: %v", err)
		}
		if _, err := m.Validate(tok); err != nil {
			t.Fatalf("Validate: %v", err)
		}
	}
	held := 0
	for i := range m.cache {
		m.cache[i].mu.Lock()
		held += len(m.cache[i].m)
		m.cache[i].mu.Unlock()
	}
	if held > cacheShardCount*cacheShardCap {
		t.Fatalf("cache holds %d entries, bound is %d", held, cacheShardCount*cacheShardCap)
	}
}

func TestConcurrentUse(t *testing.T) {
	clk := newClock()
	st := newMemKV()
	m := newTestManager(t, Options{TTL: time.Hour, Now: clk.now, Store: st})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tok, err := m.Mint(fmt.Sprintf("u%d", w))
				if err != nil {
					t.Errorf("Mint: %v", err)
					return
				}
				if _, err := m.Validate(tok); err != nil && !errors.Is(err, ErrStaleGeneration) {
					t.Errorf("Validate: %v", err)
					return
				}
				if i%10 == 0 {
					if err := m.Rotate(); err != nil {
						t.Errorf("Rotate: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

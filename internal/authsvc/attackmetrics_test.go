package authsvc

import (
	"context"
	"strings"
	"testing"
)

// TestAttackClassificationCounters pins the server-side view of an
// online guessing run: denied credential checks, the lockout-threshold
// crossing, and post-lockout refusals each land in their own counter.
func TestAttackClassificationCounters(t *testing.T) {
	svc := testService(t, 3)
	m := &Metrics{}
	h := WithMetrics(m)(svc)
	ctx := context.Background()

	do := func(req Request) Response { return h.Handle(ctx, req) }
	if resp := do(Request{Op: OpEnroll, User: "victim", Clicks: clicks(0)}); !resp.OK() {
		t.Fatalf("enroll: %+v", resp)
	}
	// Three wrong guesses burn the budget; the third is the crossing.
	for i := 0; i < 3; i++ {
		do(Request{Op: OpLogin, User: "victim", Clicks: clicks(9)})
	}
	// Two more attempts (one even with the right password) refuse on
	// the locked account.
	do(Request{Op: OpLogin, User: "victim", Clicks: clicks(9)})
	do(Request{Op: OpLogin, User: "victim", Clicks: clicks(0)})

	if got := m.CredentialFailures(); got != 2 {
		t.Errorf("CredentialFailures = %d, want 2 (third failure is the crossing)", got)
	}
	// Crossing attempt + two post-lock refusals answer CodeLocked.
	if got := m.LockedRefusals(); got != 3 {
		t.Errorf("LockedRefusals = %d, want 3", got)
	}
	if got := svc.LockoutsTriggered(); got != 1 {
		t.Errorf("LockoutsTriggered = %d, want 1", got)
	}

	snap := m.Snapshot()
	if snap.CredentialFailures != 2 || snap.LockedRefusals != 3 {
		t.Errorf("snapshot counters = %d/%d, want 2/3",
			snap.CredentialFailures, snap.LockedRefusals)
	}
	var b strings.Builder
	m.WritePrometheus(&b)
	for _, want := range []string{
		"authsvc_credential_failures_total 2",
		"authsvc_locked_refusals_total 3",
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("prometheus exposition missing %q", want)
		}
	}
}

package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeBenchFile(t *testing.T, dir, name, content string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestDiffRunKey(t *testing.T) {
	if got := (diffRun{Workers: 4}).key(); got != "w=4" {
		t.Errorf("engine key = %q, want w=4", got)
	}
	if got := (diffRun{Backend: "vault", Op: "put"}).key(); got != "vault/put" {
		t.Errorf("store key = %q, want vault/put", got)
	}
}

func TestMatchPairsDropsUnmatchedAndZero(t *testing.T) {
	old := diffDoc{Runs: []diffRun{
		{Workers: 1, NsPerOp: 100},
		{Workers: 2, NsPerOp: 50},
		{Workers: 8, NsPerOp: 0},  // degenerate baseline: dropped
		{Workers: 16, NsPerOp: 9}, // no current counterpart: dropped
	}}
	cur := diffDoc{Runs: []diffRun{
		{Workers: 1, NsPerOp: 110},
		{Workers: 2, NsPerOp: 40},
		{Workers: 8, NsPerOp: 10},
	}}
	pairs := matchPairs("online", old, cur)
	if len(pairs) != 2 {
		t.Fatalf("matched %d pairs, want 2: %+v", len(pairs), pairs)
	}
	if pairs[0].Ratio != 1.1 || pairs[1].Ratio != 0.8 {
		t.Errorf("ratios = %v, %v; want 1.1, 0.8", pairs[0].Ratio, pairs[1].Ratio)
	}
}

// TestNormalizeAbsorbsMachineSpeed: every case 2x slower (a slower CI
// runner) normalizes to 1.0 everywhere — no regression. One case 2x
// slower while its peers hold is a genuine relative regression.
func TestNormalizeAbsorbsMachineSpeed(t *testing.T) {
	uniform := []diffPair{{Ratio: 2}, {Ratio: 2}, {Ratio: 2}}
	normalize(uniform)
	for i, p := range uniform {
		if p.Norm != 1 {
			t.Errorf("uniform[%d].Norm = %v, want 1", i, p.Norm)
		}
	}
	if len(regressions(uniform, 25)) != 0 {
		t.Error("uniformly slow machine flagged as a regression")
	}

	oneBad := []diffPair{
		{Bench: "online", Key: "w=1", Ratio: 1},
		{Bench: "online", Key: "w=2", Ratio: 1.02},
		{Bench: "online", Key: "w=4", Ratio: 0.98},
		{Bench: "cohort", Key: "w=1", Ratio: 2},
	}
	normalize(oneBad)
	bad := regressions(oneBad, 25)
	if len(bad) != 1 || bad[0].Key != "w=1" || bad[0].Bench != "cohort" {
		t.Fatalf("regressions = %+v, want exactly cohort/w=1", bad)
	}
}

func TestNormalizeEvenCountUsesMidpointMedian(t *testing.T) {
	pairs := []diffPair{{Ratio: 1}, {Ratio: 3}}
	normalize(pairs)
	if pairs[0].Norm != 0.5 || pairs[1].Norm != 1.5 {
		t.Errorf("Norms = %v, %v; want 0.5, 1.5 (median 2)", pairs[0].Norm, pairs[1].Norm)
	}
}

func TestDiffTableFlagsRegressions(t *testing.T) {
	pairs := []diffPair{
		{Bench: "online", Key: "w=1", OldNs: 100, NewNs: 100, Ratio: 1, Norm: 1},
		{Bench: "store", Key: "vault/put", OldNs: 100, NewNs: 200, Ratio: 2, Norm: 2},
	}
	table := diffTable(pairs, 25)
	lines := strings.Split(strings.TrimSpace(table), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4:\n%s", len(lines), table)
	}
	if strings.Contains(lines[2], "REGRESSION") {
		t.Errorf("clean row flagged: %s", lines[2])
	}
	if !strings.Contains(lines[3], "REGRESSION") {
		t.Errorf("2x row not flagged: %s", lines[3])
	}
}

// TestRunDiffEndToEnd drives the file-level entry point over both
// document shapes: a clean comparison passes, a >threshold relative
// slowdown fails and names the case, and baseline files with no
// current counterpart are skipped rather than fatal.
func TestRunDiffEndToEnd(t *testing.T) {
	base, cur := t.TempDir(), t.TempDir()
	writeBenchFile(t, base, "BENCH_online.json", `{"name":"online","runs":[
		{"workers":1,"ns_per_op":1000},{"workers":4,"ns_per_op":300}]}`)
	writeBenchFile(t, base, "BENCH_store.json", `{"name":"store","runs":[
		{"backend":"vault","op":"put","ns_per_op":500},
		{"backend":"vault","op":"readheavy","ns_per_op":40}]}`)
	writeBenchFile(t, base, "BENCH_orphan.json", `{"name":"orphan","runs":[{"workers":1,"ns_per_op":1}]}`)

	writeBenchFile(t, cur, "BENCH_online.json", `{"name":"online","runs":[
		{"workers":1,"ns_per_op":1050},{"workers":4,"ns_per_op":310}]}`)
	writeBenchFile(t, cur, "BENCH_store.json", `{"name":"store","runs":[
		{"backend":"vault","op":"put","ns_per_op":510},
		{"backend":"vault","op":"readheavy","ns_per_op":41}]}`)
	if err := runDiff(base, cur, 25); err != nil {
		t.Fatalf("clean diff failed: %v", err)
	}

	// vault/put goes 3x while everything else holds: must fail and say so.
	writeBenchFile(t, cur, "BENCH_store.json", `{"name":"store","runs":[
		{"backend":"vault","op":"put","ns_per_op":1500},
		{"backend":"vault","op":"readheavy","ns_per_op":41}]}`)
	err := runDiff(base, cur, 25)
	if err == nil {
		t.Fatal("3x slowdown passed the diff")
	}
	if !strings.Contains(err.Error(), "store/vault/put") {
		t.Errorf("regression error does not name the case: %v", err)
	}

	// An empty current dir is a hard error, not a silent pass.
	if err := runDiff(base, t.TempDir(), 25); err == nil {
		t.Error("diff against an empty dir passed")
	}
}

package clickpass

import "testing"

func nd3(t *testing.T) *NDAuthenticator {
	t.Helper()
	a, err := NewND(NDOptions{
		Dims: 3, ToleranceHalfUnits: 9, Points: 3, HashIterations: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func scenePassword() [][]int {
	return [][]int{
		{120, 305, 64},
		{402, 77, 130},
		{256, 256, 32},
	}
}

func TestNDEnrollVerify(t *testing.T) {
	a := nd3(t)
	rec, err := a.EnrollND(scenePassword())
	if err != nil {
		t.Fatal(err)
	}
	ok, err := a.VerifyND(rec, scenePassword())
	if err != nil || !ok {
		t.Fatalf("exact re-entry: %v, %v", ok, err)
	}
	// ±4 units on every axis is inside the ±4.5 tolerance.
	near := scenePassword()
	for _, p := range near {
		p[0] += 4
		p[1] -= 4
		p[2] += 4
	}
	ok, err = a.VerifyND(rec, near)
	if err != nil || !ok {
		t.Errorf("4-unit displacement rejected: %v, %v", ok, err)
	}
	// 5 units on one axis of one point is outside.
	far := scenePassword()
	far[1][2] += 5
	ok, err = a.VerifyND(rec, far)
	if err != nil || ok {
		t.Errorf("5-unit displacement accepted: %v, %v", ok, err)
	}
}

func TestNDOrderAndCountMatter(t *testing.T) {
	a := nd3(t)
	rec, err := a.EnrollND(scenePassword())
	if err != nil {
		t.Fatal(err)
	}
	swapped := scenePassword()
	swapped[0], swapped[1] = swapped[1], swapped[0]
	ok, err := a.VerifyND(rec, swapped)
	if err != nil || ok {
		t.Error("point order must matter")
	}
	if _, err := a.VerifyND(rec, scenePassword()[:2]); err == nil {
		t.Error("wrong point count should be a shape error")
	}
}

func TestNDValidation(t *testing.T) {
	bad := []NDOptions{
		{Dims: 0, ToleranceHalfUnits: 9},
		{Dims: 3, ToleranceHalfUnits: 0},
		{Dims: 3, ToleranceHalfUnits: 9, Points: -1},
		{Dims: 3, ToleranceHalfUnits: 9, HashIterations: -5},
	}
	for i, opts := range bad {
		if _, err := NewND(opts); err == nil {
			t.Errorf("options %d accepted: %+v", i, opts)
		}
	}
	a := nd3(t)
	if _, err := a.EnrollND([][]int{{1, 2}}); err == nil {
		t.Error("wrong shape accepted")
	}
	if _, err := a.EnrollND([][]int{{1, 2}, {3, 4}, {5, 6}}); err == nil {
		t.Error("2-coordinate points accepted by 3-D authenticator")
	}
	if _, err := a.VerifyND(nil, scenePassword()); err == nil {
		t.Error("nil record accepted")
	}
	rec, err := a.EnrollND(scenePassword())
	if err != nil {
		t.Fatal(err)
	}
	rec2 := *rec
	rec2.Dims = 2
	if _, err := a.VerifyND(&rec2, scenePassword()); err == nil {
		t.Error("dims mismatch accepted")
	}
}

func TestND2DMatchesAuthenticator(t *testing.T) {
	// Sanity: a 2-D NDAuthenticator behaves like the 2-D Authenticator
	// for the same square size (13x13 -> tolerance 13 half-units).
	nd, err := NewND(NDOptions{Dims: 2, ToleranceHalfUnits: 13, Points: 5, HashIterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	pts := [][]int{{30, 40}, {120, 300}, {222, 51}, {400, 200}, {77, 160}}
	rec, err := nd.EnrollND(pts)
	if err != nil {
		t.Fatal(err)
	}
	near := make([][]int, len(pts))
	far := make([][]int, len(pts))
	for i, p := range pts {
		near[i] = []int{p[0] + 6, p[1] - 6}
		far[i] = []int{p[0] + 7, p[1]}
	}
	ok, err := nd.VerifyND(rec, near)
	if err != nil || !ok {
		t.Errorf("6px accepted? %v, %v", ok, err)
	}
	ok, err = nd.VerifyND(rec, far)
	if err != nil || ok {
		t.Errorf("7px rejected? %v, %v", ok, err)
	}
}

func TestND5D(t *testing.T) {
	// Odd, high dimensionality exercises the token folding path.
	a, err := NewND(NDOptions{Dims: 5, ToleranceHalfUnits: 7, Points: 2, HashIterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	pts := [][]int{{10, 20, 30, 40, 50}, {60, 70, 80, 90, 100}}
	rec, err := a.EnrollND(pts)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := a.VerifyND(rec, pts)
	if err != nil || !ok {
		t.Fatalf("5-D round trip failed: %v, %v", ok, err)
	}
	off := [][]int{{10, 20, 30, 40, 54}, {60, 70, 80, 90, 100}}
	ok, err = a.VerifyND(rec, off)
	if err != nil || ok {
		t.Error("4-unit displacement with ±3.5 tolerance accepted")
	}
}

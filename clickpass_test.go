package clickpass

import (
	"math"
	"testing"
)

func testClicks(dx int) []Point {
	return []Point{
		{30 + dx, 40}, {120 + dx, 300}, {222 + dx, 51}, {400 + dx, 200}, {77 + dx, 160},
	}
}

func newAuth(t *testing.T, opts Options) *Authenticator {
	t.Helper()
	if opts.HashIterations == 0 {
		opts.HashIterations = 2
	}
	a, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestDefaultsApplied(t *testing.T) {
	a := newAuth(t, Options{ImageW: 451, ImageH: 331})
	if a.GuaranteedTolerancePx() != 6 {
		t.Errorf("default tolerance = %v, want 6 (13x13)", a.GuaranteedTolerancePx())
	}
	if a.MaxAcceptedPx() != 6 {
		t.Errorf("centered max accepted = %v, want 6", a.MaxAcceptedPx())
	}
}

func TestEnrollVerify(t *testing.T) {
	a := newAuth(t, Options{ImageW: 451, ImageH: 331})
	rec, err := a.Enroll("alice", testClicks(0))
	if err != nil {
		t.Fatal(err)
	}
	ok, err := a.Verify(rec, testClicks(6))
	if err != nil || !ok {
		t.Errorf("6px login: %v, %v", ok, err)
	}
	ok, err = a.Verify(rec, testClicks(7))
	if err != nil || ok {
		t.Errorf("7px login accepted: %v, %v", ok, err)
	}
}

func TestRobustOption(t *testing.T) {
	a := newAuth(t, Options{ImageW: 451, ImageH: 331, Scheme: Robust, SquareSide: 36})
	if a.GuaranteedTolerancePx() != 6 {
		t.Errorf("robust 36x36 tolerance = %v, want 6", a.GuaranteedTolerancePx())
	}
	if a.MaxAcceptedPx() != 30 {
		t.Errorf("robust rmax = %v, want 30", a.MaxAcceptedPx())
	}
	rec, err := a.Enroll("bob", testClicks(0))
	if err != nil {
		t.Fatal(err)
	}
	ok, err := a.Verify(rec, testClicks(6))
	if err != nil || !ok {
		t.Errorf("within-r login rejected: %v, %v", ok, err)
	}
}

func TestRecordSerializationPublicAPI(t *testing.T) {
	a := newAuth(t, Options{ImageW: 451, ImageH: 331})
	rec, err := a.Enroll("carol", testClicks(0))
	if err != nil {
		t.Fatal(err)
	}
	data, err := rec.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalRecord(data)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := a.Verify(back, testClicks(0))
	if err != nil || !ok {
		t.Error("restored record failed verification")
	}
}

func TestPasswordSpaceBits(t *testing.T) {
	a := newAuth(t, Options{ImageW: 640, ImageH: 480, SquareSide: 13})
	bits, err := a.PasswordSpaceBits()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(bits-54.3) > 0.05 {
		t.Errorf("space = %.2f bits, want 54.3 (paper Table 3)", bits)
	}
}

func TestGridIdentifierBits(t *testing.T) {
	c := newAuth(t, Options{ImageW: 451, ImageH: 331, SquareSide: 16})
	if got := c.GridIdentifierBits(); math.Abs(got-8) > 1e-9 {
		t.Errorf("centered 16x16 id bits = %v, want 8", got)
	}
	r := newAuth(t, Options{ImageW: 451, ImageH: 331, Scheme: Robust, SquareSide: 36})
	if got := r.GridIdentifierBits(); math.Abs(got-math.Log2(3)) > 1e-9 {
		t.Errorf("robust id bits = %v, want log2(3)", got)
	}
}

func TestNewValidation(t *testing.T) {
	cases := map[string]Options{
		"empty image": {},
		"bad scheme":  {ImageW: 10, ImageH: 10, Scheme: "weird"},
		"neg square":  {ImageW: 10, ImageH: 10, SquareSide: -1},
		"neg iter":    {ImageW: 10, ImageH: 10, HashIterations: -1},
		"neg clicks":  {ImageW: 10, ImageH: 10, Clicks: -2},
		"zero width":  {ImageH: 10},
		"zero height": {ImageW: 10},
	}
	for name, opts := range cases {
		if _, err := New(opts); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestVerifyMalformedInput(t *testing.T) {
	a := newAuth(t, Options{ImageW: 451, ImageH: 331})
	rec, err := a.Enroll("dave", testClicks(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Verify(nil, testClicks(0)); err == nil {
		t.Error("nil record accepted")
	}
	out := testClicks(0)
	out[0].X = 9999
	if _, err := a.Verify(rec, out); err == nil {
		t.Error("out-of-image click accepted as non-error")
	}
}

func TestEnrollOutsideImage(t *testing.T) {
	a := newAuth(t, Options{ImageW: 100, ImageH: 100})
	if _, err := a.Enroll("erin", testClicks(0)); err == nil {
		t.Error("clicks outside a 100x100 image accepted")
	}
}

package study

import (
	"fmt"
	"math"

	"clickpass/internal/analysis"
	"clickpass/internal/core"
	"clickpass/internal/dataset"
	"clickpass/internal/imagegen"
)

// Target is a set of paper rates an error model should reproduce.
// Keys are grid sides (Table 1) or r values (Table 2); values are
// percentages.
type Target struct {
	Table1FR map[int]float64
	Table1FA map[int]float64
	Table2FA map[int]float64
}

// PaperTargets returns the published Table 1 and Table 2 rates.
func PaperTargets() Target {
	return Target{
		Table1FR: map[int]float64{9: 21.8, 13: 21.1, 19: 10.0},
		Table1FA: map[int]float64{9: 3.5, 13: 1.7, 19: 0.5},
		Table2FA: map[int]float64{4: 32.1, 6: 14.1, 9: 4.3},
	}
}

// Score measures how far a simulated study lands from the target: the
// root mean squared error over all table cells, in percentage points.
// Lower is better. workers bounds the table replays' fan-out (0 = one
// per CPU).
func (tg Target) Score(dsets []*dataset.Dataset, policy core.RobustPolicy, seed uint64, workers int) (float64, error) {
	t1, err := analysis.Table1(dsets, policy, seed, workers)
	if err != nil {
		return 0, err
	}
	t2, err := analysis.Table2(dsets, policy, seed, workers)
	if err != nil {
		return 0, err
	}
	var sum float64
	var n int
	for _, row := range t1 {
		if want, ok := tg.Table1FR[row.RobustSide]; ok {
			d := row.FalseRejectPct() - want
			sum += d * d
			n++
		}
		if want, ok := tg.Table1FA[row.RobustSide]; ok {
			d := row.FalseAcceptPct() - want
			sum += d * d
			n++
		}
	}
	for _, row := range t2 {
		if want, ok := tg.Table2FA[int(row.RobustRPx)]; ok {
			d := row.FalseAcceptPct() - want
			sum += d * d
			n++
		}
	}
	if n == 0 {
		return 0, fmt.Errorf("study: target matched no table cells")
	}
	return math.Sqrt(sum / float64(n)), nil
}

// CalibrationResult pairs a candidate model with its score.
type CalibrationResult struct {
	Model ErrorModel
	RMSE  float64
}

// Calibrate simulates the field study under each candidate error model
// and ranks the candidates by RMSE against the target. A sweep like
// this produced DefaultErrorModel (on the pre-parallel generator whose
// stream layout differed; the default's fit against PaperTargets on
// current streams is re-asserted by TestCalibrateRanksModels). Each
// candidate's simulation and replay run on the shared worker pool (one
// candidate at a time, parallel within).
func Calibrate(candidates []ErrorModel, target Target, seed uint64) ([]CalibrationResult, error) {
	if len(candidates) == 0 {
		return nil, fmt.Errorf("study: no candidate models")
	}
	results := make([]CalibrationResult, 0, len(candidates))
	for _, model := range candidates {
		if err := model.Validate(); err != nil {
			return nil, err
		}
		var dsets []*dataset.Dataset
		for i, img := range imagegen.Gallery() {
			cfg := FieldConfig(img, seed+uint64(i))
			cfg.Error = model
			d, err := Run(cfg)
			if err != nil {
				return nil, err
			}
			dsets = append(dsets, d)
		}
		score, err := target.Score(dsets, core.MostCentered, seed, 0)
		if err != nil {
			return nil, err
		}
		results = append(results, CalibrationResult{Model: model, RMSE: score})
	}
	// Selection sort by RMSE: tiny n, stability wanted.
	for i := range results {
		best := i
		for j := i + 1; j < len(results); j++ {
			if results[j].RMSE < results[best].RMSE {
				best = j
			}
		}
		results[i], results[best] = results[best], results[i]
	}
	return results, nil
}

package main

import (
	"bufio"
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"

	"clickpass/internal/authproto"
	"clickpass/internal/authsvc"
	"clickpass/internal/dataset"
)

// TestRecoverySmoke is the end-to-end crash drill the CI
// recovery-smoke job runs: build the real pwserver binary, serve a
// durable vault, enroll users and burn a lockout attempt over the real
// wire protocol, SIGKILL the process mid-flight, restart it on the
// same directory, and assert that every acked mutation — records AND
// the lockout counter — survived, with no false accepts.
func TestRecoverySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a real server binary; skipped in -short")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "pwserver")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building pwserver: %v\n%s", err, out)
	}
	vaultDir := filepath.Join(dir, "vault.d")

	users := []string{"u-alpha", "u-beta", "u-gamma"}
	const lockout = 5
	ctx := context.Background()

	// First life: enroll, verify, burn one failed attempt.
	addr, kill := startPwserver(t, bin, vaultDir)
	c := dialT(t, addr)
	for i, u := range users {
		resp, err := c.Do(ctx, authsvc.Request{Op: authsvc.OpEnroll, User: u, Clicks: smokeClicks(i)})
		if err != nil || !resp.OK() {
			t.Fatalf("enroll %s: %+v %v", u, resp, err)
		}
	}
	resp, err := c.Do(ctx, authsvc.Request{Op: authsvc.OpLogin, User: "u-alpha", Clicks: smokeClicks(40)})
	if err != nil || resp.Code != authsvc.CodeDenied || resp.Remaining != lockout-1 {
		t.Fatalf("burned attempt: %+v %v", resp, err)
	}
	c.Close()
	kill() // SIGKILL: no drain, no Close, no final fsync beyond the acked appends

	// Second life: same directory, fresh process.
	addr, kill2 := startPwserver(t, bin, vaultDir)
	defer kill2()
	c = dialT(t, addr)
	defer c.Close()
	// Before anything clears it: u-alpha's pre-crash burned attempt
	// must still be on the books, so one more failure leaves
	// lockout-2, not lockout-1.
	resp, err = c.Do(ctx, authsvc.Request{Op: authsvc.OpLogin, User: "u-alpha", Clicks: smokeClicks(40)})
	if err != nil || resp.Code != authsvc.CodeDenied {
		t.Fatalf("post-crash failed login: %+v %v", resp, err)
	}
	if resp.Remaining != lockout-2 {
		t.Errorf("lockout counter lost in crash: remaining = %d, want %d", resp.Remaining, lockout-2)
	}
	for i, u := range users {
		// Every enrolled password still verifies (no false rejects)...
		resp, err := c.Do(ctx, authsvc.Request{Op: authsvc.OpLogin, User: u, Clicks: smokeClicks(i)})
		if err != nil || !resp.OK() {
			t.Errorf("login %s after crash: %+v %v", u, resp, err)
		}
		// ...and the wrong password still fails (no false accepts).
		resp, err = c.Do(ctx, authsvc.Request{Op: authsvc.OpLogin, User: u, Clicks: smokeClicks(i + 7)})
		if err != nil || resp.Code != authsvc.CodeDenied {
			t.Errorf("wrong password for %s accepted after crash: %+v %v", u, resp, err)
		}
	}
}

// TestRecoveryCheckpointSmoke is the same crash drill with the
// background checkpointer turned up aggressively (-checkpoint-every
// 25ms, -checkpoint-min 1): a steady stream of password changes keeps
// every shard rotating through the checkpoint+rename protocol, so the
// SIGKILL lands in or near a checkpoint window. The restart must
// recover every acked mutation from whatever mix of checkpoint files,
// rotation markers, and log tails the crash left behind.
func TestRecoveryCheckpointSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a real server binary; skipped in -short")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "pwserver")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building pwserver: %v\n%s", err, out)
	}
	vaultDir := filepath.Join(dir, "vault.d")
	ckptFlags := []string{"-checkpoint-every", "25ms", "-checkpoint-min", "1"}
	ctx := context.Background()

	// First life: enroll, then churn password changes so the
	// checkpointer has deltas to snapshot on every tick. Track the last
	// acked password version per user; SIGKILL with no drain.
	addr, kill := startPwserver(t, bin, vaultDir, ckptFlags...)
	c := dialT(t, addr)
	users := []string{"ck-alpha", "ck-beta", "ck-gamma"}
	for i, u := range users {
		resp, err := c.Do(ctx, authsvc.Request{Op: authsvc.OpEnroll, User: u, Clicks: smokeClicks(i)})
		if err != nil || !resp.OK() {
			t.Fatalf("enroll %s: %+v %v", u, resp, err)
		}
	}
	acked := map[string]int{}
	for round := 0; round < 12; round++ {
		for i, u := range users {
			old, next := acked[u]*len(users)+i, (acked[u]+1)*len(users)+i
			resp, err := c.Do(ctx, authsvc.Request{Op: authsvc.OpChange, User: u,
				Clicks: smokeClicks(old), NewClicks: smokeClicks(next)})
			if err != nil || !resp.OK() {
				t.Fatalf("change %s round %d: %+v %v", u, round, resp, err)
			}
			acked[u]++
		}
		time.Sleep(10 * time.Millisecond) // let checkpoint ticks interleave with the churn
	}
	c.Close()
	kill()

	// The drill is only meaningful if the checkpointer actually ran:
	// the directory must hold shard snapshots next to the rotated logs.
	if ckpts, _ := filepath.Glob(filepath.Join(vaultDir, "shard-*.ckpt")); len(ckpts) == 0 {
		t.Fatal("no checkpoint files on disk after the churn: the background checkpointer never engaged")
	}

	// Second life: the directory now holds checkpoints + rotated logs
	// (plus whatever partial protocol step the kill interrupted). Every
	// acked password change must have survived.
	addr, kill2 := startPwserver(t, bin, vaultDir, ckptFlags...)
	defer kill2()
	c = dialT(t, addr)
	defer c.Close()
	for i, u := range users {
		cur := acked[u]*len(users) + i
		resp, err := c.Do(ctx, authsvc.Request{Op: authsvc.OpLogin, User: u, Clicks: smokeClicks(cur)})
		if err != nil || !resp.OK() {
			t.Errorf("login %s with last acked password after crash: %+v %v", u, resp, err)
		}
		stale := (acked[u]-1)*len(users) + i
		resp, err = c.Do(ctx, authsvc.Request{Op: authsvc.OpLogin, User: u, Clicks: smokeClicks(stale)})
		if err != nil || resp.Code != authsvc.CodeDenied {
			t.Errorf("stale password for %s accepted after crash: %+v %v", u, resp, err)
		}
	}
}

// startPwserver launches the built binary on the durable backend and
// returns its TCP address and a SIGKILL func.
func startPwserver(t *testing.T, bin, vaultDir string, extraArgs ...string) (addr string, kill func()) {
	t.Helper()
	args := []string{
		"-backend", "durable", "-vault", vaultDir, "-fsync", "always",
		"-tcp", "127.0.0.1:0", "-lockout", "5", "-iterations", "2"}
	cmd := exec.Command(bin, append(args, extraArgs...)...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	killed := false
	kill = func() {
		if killed {
			return
		}
		killed = true
		_ = cmd.Process.Signal(syscall.SIGKILL)
		_ = cmd.Wait()
	}
	t.Cleanup(kill)

	// The banner carries the bound port: "pwserver: TCP on 127.0.0.1:NNNNN (...)".
	bannerRe := regexp.MustCompile(`TCP on (\S+) `)
	lines := bufio.NewScanner(stdout)
	deadline := time.After(10 * time.Second)
	found := make(chan string, 1)
	go func() {
		for lines.Scan() {
			if m := bannerRe.FindStringSubmatch(lines.Text()); m != nil {
				found <- m[1]
				break
			}
		}
	}()
	select {
	case addr = <-found:
	case <-deadline:
		kill()
		t.Fatal("pwserver never printed its TCP banner")
	}
	// Normalize a [::]/0.0.0.0 bind, just in case.
	if strings.HasPrefix(addr, "[::]") || strings.HasPrefix(addr, "0.0.0.0") {
		addr = "127.0.0.1:" + addr[strings.LastIndex(addr, ":")+1:]
	}
	return addr, kill
}

// dialT dials the framed-TCP client with retries (the listener is up
// before the banner prints, but be tolerant on slow CI).
func dialT(t *testing.T, addr string) authsvc.Client {
	t.Helper()
	var lastErr error
	for i := 0; i < 20; i++ {
		c, err := authproto.DialService(addr, 2*time.Second)
		if err == nil {
			return c
		}
		lastErr = err
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("dialing %s: %v", addr, lastErr)
	return nil
}

// smokeClicks derives a deterministic 5-click password from a seed.
func smokeClicks(seed int) []dataset.Click {
	out := make([]dataset.Click, 5)
	for i := range out {
		out[i] = dataset.Click{X: 20 + (seed*31+i*83)%400, Y: 15 + (seed*17+i*59)%300}
	}
	return out
}

package geom

import (
	"testing"
	"testing/quick"

	"clickpass/internal/fixed"
)

func TestChebyshev(t *testing.T) {
	cases := []struct {
		p, q Point
		want fixed.Sub
	}{
		{Pt(0, 0), Pt(0, 0), 0},
		{Pt(0, 0), Pt(3, 4), fixed.FromPixels(4)},
		{Pt(10, 10), Pt(7, 10), fixed.FromPixels(3)},
		{Pt(-2, 5), Pt(2, 5), fixed.FromPixels(4)},
	}
	for _, c := range cases {
		if got := c.p.Chebyshev(c.q); got != c.want {
			t.Errorf("Chebyshev(%v,%v) = %v, want %v", c.p, c.q, got, c.want)
		}
	}
}

func TestChebyshevSymmetric(t *testing.T) {
	f := func(x1, y1, x2, y2 int16) bool {
		p, q := Pt(int(x1), int(y1)), Pt(int(x2), int(y2))
		return p.Chebyshev(q) == q.Chebyshev(p) && p.Chebyshev(q) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChebyshevTriangle(t *testing.T) {
	f := func(x1, y1, x2, y2, x3, y3 int16) bool {
		a, b, c := Pt(int(x1), int(y1)), Pt(int(x2), int(y2)), Pt(int(x3), int(y3))
		return a.Chebyshev(c) <= a.Chebyshev(b)+b.Chebyshev(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSizeContains(t *testing.T) {
	s := Size{451, 331}
	cases := []struct {
		p    Point
		want bool
	}{
		{Pt(0, 0), true},
		{Pt(450, 330), true},
		{Pt(451, 100), false},
		{Pt(100, 331), false},
		{Pt(-1, 0), false},
	}
	for _, c := range cases {
		if got := s.Contains(c.p); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestClamp(t *testing.T) {
	s := Size{100, 50}
	cases := []struct {
		in, want Point
	}{
		{Pt(-5, -5), Pt(0, 0)},
		{Pt(200, 60), Pt(99, 49)},
		{Pt(30, 20), Pt(30, 20)},
	}
	for _, c := range cases {
		if got := s.Clamp(c.in); got != c.want {
			t.Errorf("Clamp(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestClampAlwaysInside(t *testing.T) {
	s := Size{451, 331}
	f := func(x, y int16) bool {
		return s.Contains(s.Clamp(Pt(int(x), int(y))))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRectAroundCentering(t *testing.T) {
	// A 13x13 square (r = 6.5px) around an integer pixel contains
	// exactly the 13 pixel columns x-6..x+6.
	r := fixed.FromHalfPixels(13) // 6.5px
	p := Pt(100, 100)
	rect := RectAround(p, r)
	for dx := -8; dx <= 8; dx++ {
		q := Pt(100+dx, 100)
		want := dx >= -6 && dx <= 6
		if got := rect.Contains(q); got != want {
			t.Errorf("13x13 square contains dx=%d: got %v want %v", dx, got, want)
		}
	}
	if c := rect.Center(); c != p {
		t.Errorf("center = %v, want %v", c, p)
	}
}

func TestRectMargin(t *testing.T) {
	rect := Rect{0, 0, fixed.FromPixels(12), fixed.FromPixels(12)}
	cases := []struct {
		p    Point
		want fixed.Sub
	}{
		{Pt(6, 6), fixed.FromPixels(6)},
		{Pt(1, 6), fixed.FromPixels(1)},
		{Pt(6, 11), fixed.FromPixels(1)},
		{Pt(0, 0), 0},
	}
	for _, c := range cases {
		if got := rect.Margin(c.p); got != c.want {
			t.Errorf("Margin(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestRectIntersect(t *testing.T) {
	a := Rect{0, 0, 60, 60}
	b := Rect{30, 30, 90, 90}
	got := a.Intersect(b)
	want := Rect{30, 30, 60, 60}
	if got != want {
		t.Errorf("Intersect = %+v, want %+v", got, want)
	}
	if got.Area() != 900 {
		t.Errorf("Area = %d, want 900", got.Area())
	}
	c := Rect{100, 100, 200, 200}
	if !a.Intersect(c).Empty() {
		t.Error("disjoint rects should intersect empty")
	}
	if a.Intersect(c).Area() != 0 {
		t.Error("empty rect area should be 0")
	}
}

func TestPointAddSub(t *testing.T) {
	p, q := Pt(3, 4), Pt(1, 2)
	if p.Add(q) != Pt(4, 6) {
		t.Error("Add broken")
	}
	if p.Sub(q) != Pt(2, 2) {
		t.Error("Sub broken")
	}
}

func TestRectWH(t *testing.T) {
	rc := RectAround(Pt(10, 10), fixed.FromHalfPixels(13))
	if rc.W() != fixed.FromPixels(13) || rc.H() != fixed.FromPixels(13) {
		t.Errorf("13x13 rect has W=%v H=%v", rc.W(), rc.H())
	}
}

func TestStrings(t *testing.T) {
	if Pt(3, 4).String() != "(3,4)" {
		t.Errorf("Point string = %q", Pt(3, 4).String())
	}
	if (Size{451, 331}).String() != "451x331" {
		t.Errorf("Size string = %q", Size{451, 331}.String())
	}
}

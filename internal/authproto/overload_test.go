package authproto

import (
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"clickpass/internal/authsvc"
)

// flakyListener scripts Accept: a run of transient errors, then
// net.ErrClosed (a clean shutdown). It records call times so the test
// can prove the loop backed off instead of spinning.
type flakyListener struct {
	mu      sync.Mutex
	errs    []error
	accepts []time.Time
}

func (l *flakyListener) Accept() (net.Conn, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.accepts = append(l.accepts, time.Now())
	if len(l.errs) == 0 {
		return nil, net.ErrClosed
	}
	err := l.errs[0]
	l.errs = l.errs[1:]
	return nil, err
}

func (l *flakyListener) Close() error   { return nil }
func (l *flakyListener) Addr() net.Addr { return &net.TCPAddr{IP: net.IPv4(127, 0, 0, 1)} }

func (l *flakyListener) calls() []time.Time {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]time.Time(nil), l.accepts...)
}

// TestServeBacksOffOnTransientAcceptErrors: EMFILE-style accept
// failures must not kill the server or hot-loop it; the loop retries
// with growing delays and keeps serving once Accept recovers (here:
// reaches the clean-shutdown error).
func TestServeBacksOffOnTransientAcceptErrors(t *testing.T) {
	emfile := &net.OpError{Op: "accept", Net: "tcp", Err: syscall.EMFILE}
	l := &flakyListener{errs: []error{emfile, emfile, emfile, emfile}}
	s := testServer(t, 10)
	start := time.Now()
	if err := s.Serve(l); err != nil {
		t.Fatalf("Serve = %v; transient errors must not be fatal", err)
	}
	calls := l.calls()
	if len(calls) != 5 { // 4 transient failures + the final ErrClosed
		t.Fatalf("Accept called %d times, want 5", len(calls))
	}
	// Backoff schedule: 5, 10, 20, 40ms windows with jitter in
	// [w/2, w) — total sleep in [37.5ms, 75ms).
	if elapsed := time.Since(start); elapsed < 35*time.Millisecond {
		t.Errorf("4 transient failures retried in %s; no backoff happened", elapsed)
	}
	// Each gap must be at least half the previous window (jitter floor)
	// and growing in expectation; check the floors only, timers can
	// oversleep under load but never undersleep.
	for i, wantMin := range []time.Duration{2500 * time.Microsecond, 5 * time.Millisecond, 10 * time.Millisecond, 20 * time.Millisecond} {
		if gap := calls[i+1].Sub(calls[i]); gap < wantMin {
			t.Errorf("retry %d after %s, want >= %s", i+1, gap, wantMin)
		}
	}
}

// TestServeFatalAcceptError: a non-transient accept failure still
// kills the loop loudly — backoff must not swallow real breakage.
func TestServeFatalAcceptError(t *testing.T) {
	boom := errors.New("listener exploded")
	l := &flakyListener{errs: []error{boom}}
	s := testServer(t, 10)
	if err := s.Serve(l); !errors.Is(err, boom) {
		t.Fatalf("Serve = %v, want the fatal error", err)
	}
	if calls := l.calls(); len(calls) != 1 {
		t.Fatalf("fatal error retried: %d Accept calls", len(calls))
	}
}

// TestTransientAcceptErrorClassification pins the errno allowlist and
// the timeout path.
func TestTransientAcceptErrorClassification(t *testing.T) {
	for _, errno := range []syscall.Errno{
		syscall.EMFILE, syscall.ENFILE, syscall.ENOBUFS, syscall.ENOMEM,
		syscall.ECONNABORTED, syscall.ECONNRESET, syscall.EINTR,
	} {
		wrapped := &net.OpError{Op: "accept", Net: "tcp", Err: errno}
		if !transientAcceptError(wrapped) {
			t.Errorf("%v not classified transient", errno)
		}
	}
	if transientAcceptError(errors.New("arbitrary")) {
		t.Error("arbitrary error classified transient")
	}
	if transientAcceptError(net.ErrClosed) {
		t.Error("ErrClosed classified transient (Serve handles it first, but the classifier should still say no)")
	}
	if !transientAcceptError(timeoutErr{}) {
		t.Error("net.Error timeout not classified transient")
	}
}

type timeoutErr struct{}

func (timeoutErr) Error() string   { return "i/o timeout" }
func (timeoutErr) Timeout() bool   { return true }
func (timeoutErr) Temporary() bool { return true }

// TestStatusForOverloaded: the typed overload refusal maps to 503.
func TestStatusForOverloaded(t *testing.T) {
	if got := statusFor(Response{Code: string(authsvc.CodeOverloaded)}); got != http.StatusServiceUnavailable {
		t.Fatalf("statusFor(overloaded) = %d, want 503", got)
	}
}

// TestSetRetryAfterHeader: the shed response's retry hint becomes a
// whole-second Retry-After header, rounded up; other codes set none.
func TestSetRetryAfterHeader(t *testing.T) {
	for _, tc := range []struct {
		code   string
		ms     int
		header string
	}{
		{string(authsvc.CodeOverloaded), 500, "1"},
		{string(authsvc.CodeOverloaded), 1000, "1"},
		{string(authsvc.CodeOverloaded), 1500, "2"},
		{string(authsvc.CodeOverloaded), 0, ""},
		{string(authsvc.CodeUnavailable), 1000, ""},
		{string(authsvc.CodeOK), 1000, ""},
	} {
		w := httptest.NewRecorder()
		setRetryAfter(w, Response{Code: tc.code, RetryAfterMs: tc.ms})
		if got := w.Header().Get("Retry-After"); got != tc.header {
			t.Errorf("setRetryAfter(%s, %dms): header %q, want %q", tc.code, tc.ms, got, tc.header)
		}
	}
}

// TestHTTPOverloadEndToEnd drives a saturated server over real HTTP:
// one slot, one queue seat, injected latency holding the slot — the
// third concurrent login must get a fast 503 with Retry-After, and
// the Prometheus endpoint must count the shed.
func TestHTTPOverloadEndToEnd(t *testing.T) {
	s := testServer(t, 10)
	s.SetMaxConns(1)
	s.SetOverload(authsvc.OverloadPolicy{Queue: 1, RetryAfter: 2 * time.Second})
	// Every request sleeps 400ms inside its admission slot — a slow
	// dependency, the canonical overload generator.
	s.SetFaults(authsvc.FaultOptions{Seed: 1, LatencyRate: 1, Latency: 400 * time.Millisecond})

	ts := httptest.NewServer(s.HTTPHandler())
	defer ts.Close()
	admin := httptest.NewServer(s.AdminHandler())
	defer admin.Close()

	get := func() *http.Response {
		resp, err := ts.Client().Get(ts.URL + "/v1/ping")
		if err != nil {
			t.Error(err)
			return nil
		}
		return resp
	}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ { // holder + queued
		wg.Add(1)
		go func() {
			defer wg.Done()
			if resp := get(); resp != nil {
				resp.Body.Close()
			}
		}()
		time.Sleep(80 * time.Millisecond) // let it occupy slot / queue seat
	}
	t0 := time.Now()
	resp := get() // queue full -> shed
	shedLat := time.Since(t0)
	if resp == nil {
		t.Fatal("shed request failed at transport")
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("shed status = %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Errorf("Retry-After = %q, want \"2\"", ra)
	}
	if shedLat > 150*time.Millisecond {
		t.Errorf("shed took %s; refusals must not wait out the 400ms spike", shedLat)
	}
	wg.Wait()

	promResp, err := admin.Client().Get(admin.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer promResp.Body.Close()
	buf := make([]byte, 1<<16)
	n, _ := promResp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), `authsvc_shed_total{priority="high"} 1`) {
		t.Errorf("shed not visible on /metrics:\n%s", buf[:n])
	}
}

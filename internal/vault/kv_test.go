package vault

import (
	"bytes"
	"fmt"
	"testing"
	"time"
)

// TestKVDurability: side-table writes survive a reopen, deletes stay
// deleted, and checkpoint + compaction both carry the entries.
func TestKVDurability(t *testing.T) {
	dir := t.TempDir()
	open := func() *Durable {
		d, err := OpenDurable(dir, DurableOptions{Shards: 4, Sync: SyncAlways, NoAutoCompact: true})
		if err != nil {
			t.Fatalf("OpenDurable: %v", err)
		}
		return d
	}
	d := open()
	for i := 0; i < 20; i++ {
		k := fmt.Sprintf("session/key/%d", i)
		if err := d.SetKV(k, []byte(fmt.Sprintf("secret-%d", i))); err != nil {
			t.Fatalf("SetKV %s: %v", k, err)
		}
	}
	if err := d.SetKV("session/key/3", nil); err != nil {
		t.Fatalf("SetKV delete: %v", err)
	}
	if err := d.SetKV("other/x", []byte("y")); err != nil {
		t.Fatalf("SetKV other: %v", err)
	}
	if _, ok := d.GetKV("session/key/3"); ok {
		t.Fatalf("deleted key still present")
	}
	if v, ok := d.GetKV("session/key/7"); !ok || string(v) != "secret-7" {
		t.Fatalf("GetKV session/key/7 = %q, %v", v, ok)
	}
	if got := len(d.KVRange("session/")); got != 19 {
		t.Fatalf("KVRange(session/) has %d entries, want 19", got)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	d = open()
	if v, ok := d.GetKV("session/key/7"); !ok || string(v) != "secret-7" {
		t.Fatalf("after reopen: GetKV session/key/7 = %q, %v", v, ok)
	}
	if _, ok := d.GetKV("session/key/3"); ok {
		t.Fatalf("after reopen: deleted key resurrected")
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if err := d.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	d = open()
	defer d.Close()
	got := d.KVRange("")
	if len(got) != 20 {
		t.Fatalf("after checkpoint+compact+reopen: %d entries, want 20", len(got))
	}
	if !bytes.Equal(got["session/key/7"], []byte("secret-7")) {
		t.Fatalf("after checkpoint+compact+reopen: session/key/7 = %q", got["session/key/7"])
	}
}

// TestKVReplicatedApply: KV frames flow through the replication apply
// path (ApplyReplFrames) byte-identically and fire the KV watch after
// the shard lock is released.
func TestKVReplicatedApply(t *testing.T) {
	src, err := OpenDurable(t.TempDir(), DurableOptions{Shards: 1, Sync: SyncAlways, NoAutoCompact: true})
	if err != nil {
		t.Fatalf("OpenDurable src: %v", err)
	}
	defer src.Close()
	dst, err := OpenDurable(t.TempDir(), DurableOptions{Shards: 1, Sync: SyncAlways, NoAutoCompact: true})
	if err != nil {
		t.Fatalf("OpenDurable dst: %v", err)
	}
	defer dst.Close()

	type ev struct {
		key string
		val []byte
	}
	events := make(chan ev, 16)
	dst.SetKVWatch(func(key string, val []byte) {
		// The watch contract says callbacks may re-enter the store:
		// prove it by reading back under the callback.
		dst.GetKV(key)
		events <- ev{key, val}
	})

	var batches [][]byte
	src.SetReplHooks(ReplHooks{Commit: func(shard int, frames []byte, lastSeq uint64) {
		batches = append(batches, append([]byte(nil), frames...))
	}})
	if err := src.SetKV("session/key/1", []byte("k1")); err != nil {
		t.Fatalf("SetKV: %v", err)
	}
	if err := src.SetKV("session/rev/alice", []byte("42")); err != nil {
		t.Fatalf("SetKV: %v", err)
	}
	if err := src.SetKV("session/key/1", nil); err != nil {
		t.Fatalf("SetKV delete: %v", err)
	}
	for _, b := range batches {
		if err := dst.ApplyReplFrames(0, b); err != nil {
			t.Fatalf("ApplyReplFrames: %v", err)
		}
	}
	if _, ok := dst.GetKV("session/key/1"); ok {
		t.Fatalf("replicated delete did not apply")
	}
	if v, ok := dst.GetKV("session/rev/alice"); !ok || string(v) != "42" {
		t.Fatalf("replicated kv = %q, %v", v, ok)
	}
	want := []ev{{"session/key/1", []byte("k1")}, {"session/rev/alice", []byte("42")}, {"session/key/1", nil}}
	for i, w := range want {
		select {
		case got := <-events:
			if got.key != w.key || !bytes.Equal(got.val, w.val) {
				t.Fatalf("watch event %d = %q/%q, want %q/%q", i, got.key, got.val, w.key, w.val)
			}
		case <-time.After(time.Second):
			t.Fatalf("watch event %d never fired", i)
		}
	}
}

// TestKVSnapshotInstall: InstallShardSnapshot replaces KV state and
// re-delivers the snapshot's entries to the watch.
func TestKVSnapshotInstall(t *testing.T) {
	src, err := OpenDurable(t.TempDir(), DurableOptions{Shards: 1, Sync: SyncAlways, NoAutoCompact: true})
	if err != nil {
		t.Fatalf("OpenDurable src: %v", err)
	}
	defer src.Close()
	if err := src.SetKV("session/key/9", []byte("nine")); err != nil {
		t.Fatalf("SetKV: %v", err)
	}
	recs, locks, kv, _, err := src.ShardSnapshot(0)
	if err != nil {
		t.Fatalf("ShardSnapshot: %v", err)
	}
	dst, err := OpenDurable(t.TempDir(), DurableOptions{Shards: 1, Sync: SyncAlways, NoAutoCompact: true})
	if err != nil {
		t.Fatalf("OpenDurable dst: %v", err)
	}
	defer dst.Close()
	if err := dst.SetKV("session/key/stale", []byte("old")); err != nil {
		t.Fatalf("SetKV: %v", err)
	}
	seen := make(chan string, 8)
	dst.SetKVWatch(func(key string, val []byte) { seen <- key })
	if err := dst.InstallShardSnapshot(0, recs, locks, kv); err != nil {
		t.Fatalf("InstallShardSnapshot: %v", err)
	}
	if _, ok := dst.GetKV("session/key/stale"); ok {
		t.Fatalf("snapshot install kept a key the snapshot lacks")
	}
	if v, ok := dst.GetKV("session/key/9"); !ok || string(v) != "nine" {
		t.Fatalf("snapshot kv = %q, %v", v, ok)
	}
	select {
	case k := <-seen:
		if k != "session/key/9" {
			t.Fatalf("watch delivered %q, want session/key/9", k)
		}
	case <-time.After(time.Second):
		t.Fatalf("snapshot install fired no watch event")
	}
}

// TestCommitWindowBatches: with a commit window, concurrent writers
// ack correctly and the state is intact after reopen — the adaptive
// group-commit satellite's correctness test (the perf claim lives in
// BenchmarkAuthSwarmWrites).
func TestCommitWindowBatches(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable(dir, DurableOptions{Shards: 1, Sync: SyncAlways, NoAutoCompact: true, CommitWindow: 2 * time.Millisecond})
	if err != nil {
		t.Fatalf("OpenDurable: %v", err)
	}
	const writers, each = 8, 25
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			for i := 0; i < each; i++ {
				if err := d.SetKV(fmt.Sprintf("w%d/%d", w, i), []byte("v")); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(w)
	}
	for w := 0; w < writers; w++ {
		if err := <-errs; err != nil {
			t.Fatalf("writer: %v", err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	d, err = OpenDurable(dir, DurableOptions{Shards: 1, Sync: SyncAlways, NoAutoCompact: true})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer d.Close()
	if got := len(d.KVRange("")); got != writers*each {
		t.Fatalf("after reopen: %d entries, want %d", got, writers*each)
	}
}

package loadtest

import (
	"fmt"
	"testing"
	"time"

	"clickpass/internal/authsvc"
	"clickpass/internal/vault"
)

// BenchmarkAuthSwarm measures end-to-end auth throughput at the
// standing load points — 1/8/64/256 concurrent clients — against the
// in-memory backends and the durable store at every fsync policy, on
// a read-heavy mix (1 password change per 10 logins; the writes are
// what the fsync policy prices). ns/op is per completed request; the
// ops/s metric is the swarm throughput recorded in PERFORMANCE.md's
// "Server load" and "Durable vault" tables.
//
//	go test ./internal/loadtest -run NONE -bench AuthSwarm -benchtime 2000x
func BenchmarkAuthSwarm(b *testing.B) {
	for _, backend := range []struct {
		name string
		mk   func(tb testing.TB) vault.Store
	}{
		{"vault", func(testing.TB) vault.Store { return vault.New() }},
		{"sharded32", func(testing.TB) vault.Store { return vault.NewSharded(32) }},
		{"durable-always", mkDurable(vault.SyncAlways)},
		{"durable-interval", mkDurable(vault.SyncInterval)},
		{"durable-never", mkDurable(vault.SyncNever)},
	} {
		for _, clients := range []int{1, 8, 64, 256} {
			b.Run(fmt.Sprintf("%s/clients=%d", backend.name, clients), func(b *testing.B) {
				_, addr, shutdown := startServer(b, backend.mk(b), 256)
				defer shutdown()
				benchSwarm(b, TCPTransport(addr, 0), addr, clients)
			})
		}
	}
}

// BenchmarkAuthSwarmWrites is the group-commit stress: every op is a
// password change (a durable append + fsync under `-fsync always`)
// and the store runs a single shard, so all N concurrent clients
// contend on one log — the worst case for per-append fsyncs and the
// case group commit exists to fix (with the default 32 shards, 8
// writers rarely share a log and there is nothing to coalesce). The
// PR 7 numbers in PERFORMANCE.md's "Group commit" table come from
// here.
//
// The window dimension regression-benches DurableOptions.CommitWindow:
// window=0 is the pre-window behavior (the baseline that must not
// regress), and a small bounded wait should deepen batches — fewer
// fsyncs per op — once enough writers contend (clients=8/64); at
// clients=1 it can only add latency, which the numbers should show.
//
//	go test ./internal/loadtest -run NONE -bench AuthSwarmWrites -benchtime 1000x
func BenchmarkAuthSwarmWrites(b *testing.B) {
	mk := func(tb testing.TB, window time.Duration) vault.Store {
		// NoAutoCompact: the bench times the commit path; background
		// compaction mid-run adds rename/unlink churn whose cost (and,
		// on discard-mounted filesystems, device flush behaviour) is
		// unrelated to what this benchmark compares across PRs.
		d, err := vault.OpenDurable(tb.TempDir(), vault.DurableOptions{
			Sync: vault.SyncAlways, Shards: 1, NoAutoCompact: true, CommitWindow: window})
		if err != nil {
			tb.Fatal(err)
		}
		tb.Cleanup(func() { d.Close() })
		return d
	}
	for _, window := range []time.Duration{0, 200 * time.Microsecond} {
		for _, clients := range []int{1, 8, 64} {
			b.Run(fmt.Sprintf("durable-always/window=%s/clients=%d", window, clients), func(b *testing.B) {
				_, addr, shutdown := startServer(b, mk(b, window), 256)
				defer shutdown()
				users := enrollUsers(b, addr, clients)
				ops := b.N/clients + 1
				b.ResetTimer()
				res, err := Run(Config{
					Dial:         TCPTransport(addr, 0),
					Clients:      clients,
					OpsPerClient: ops,
					Request:      AuthMix(users, userClicks, 1),
					Check:        RequireOK,
				})
				b.StopTimer()
				if err != nil {
					b.Fatal(err)
				}
				if res.Errors != 0 {
					b.Fatalf("swarm errors: %d (%s)", res.Errors, res)
				}
				b.ReportMetric(res.Throughput(), "ops/s")
				b.ReportMetric(float64(res.P99.Microseconds()), "p99-µs")
			})
		}
	}
}

// mkDurable builds a durable-store factory at the given fsync policy,
// rooted in a per-benchmark temp dir.
func mkDurable(policy vault.SyncPolicy) func(tb testing.TB) vault.Store {
	return func(tb testing.TB) vault.Store {
		d, err := vault.OpenDurable(tb.TempDir(), vault.DurableOptions{Sync: policy})
		if err != nil {
			tb.Fatal(err)
		}
		tb.Cleanup(func() { d.Close() })
		return d
	}
}

// BenchmarkAuthSwarmHTTP is the same swarm over the HTTP/JSON codec —
// the apples-to-apples transport comparison in PERFORMANCE.md's
// "Unified serving layer" section (both fronts run the identical
// pipeline; the delta is pure codec overhead).
//
//	go test ./internal/loadtest -run NONE -bench AuthSwarmHTTP -benchtime 2000x
func BenchmarkAuthSwarmHTTP(b *testing.B) {
	for _, clients := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("vault/clients=%d", clients), func(b *testing.B) {
			srv, addr, shutdown := startServer(b, vault.New(), 256)
			defer shutdown()
			baseURL, closeHTTP := startHTTP(b, srv)
			defer closeHTTP()
			benchSwarm(b, HTTPTransport(baseURL), addr, clients)
		})
	}
}

// benchSwarm enrolls identities over TCP (enrollment is setup, not
// measurement) and times one swarm run over the given transport.
func benchSwarm(b *testing.B, dial func(int) (authsvc.Client, error), tcpAddr string, clients int) {
	b.Helper()
	users := enrollUsers(b, tcpAddr, clients)
	ops := b.N/clients + 1
	b.ResetTimer()
	res, err := Run(Config{
		Dial:         dial,
		Clients:      clients,
		OpsPerClient: ops,
		Request:      AuthMix(users, userClicks, 10),
		Check:        RequireOK,
	})
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
	if res.Errors != 0 {
		b.Fatalf("swarm errors: %d (%s)", res.Errors, res)
	}
	b.ReportMetric(res.Throughput(), "ops/s")
	b.ReportMetric(float64(res.P99.Microseconds()), "p99-µs")
}

// Package passpoints implements a PassPoints-style click-based
// graphical password system (Wiedenbeck et al.) on top of a pluggable
// discretization scheme from internal/core.
//
// A password is an ordered sequence of click-points on an image. At
// enrollment each point is discretized into a clear grid identifier and
// a secret square index; all indices and identifiers are hashed
// together (package passhash) and the system stores only the clear
// identifiers, the salt, and the digest. At login the candidate clicks
// are discretized under the stored identifiers and the digest is
// recomputed and compared.
package passpoints

import (
	"encoding/json"
	"fmt"

	"clickpass/internal/core"
	"clickpass/internal/fixed"
	"clickpass/internal/geom"
	"clickpass/internal/passhash"
)

// DefaultClicks is the click count used by PassPoints deployments and
// throughout the paper's evaluation.
const DefaultClicks = 5

// Config describes a PassPoints deployment.
type Config struct {
	// Image is the background image extent in pixels.
	Image geom.Size
	// Clicks is the number of click-points per password.
	Clicks int
	// Scheme is the discretization scheme.
	Scheme core.Scheme
	// Iterations is the hash iteration count (passhash.DefaultIterations
	// if zero).
	Iterations int
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Image.W <= 0 || c.Image.H <= 0 {
		return fmt.Errorf("passpoints: image %v is empty", c.Image)
	}
	if c.Clicks <= 0 {
		return fmt.Errorf("passpoints: clicks %d must be positive", c.Clicks)
	}
	if c.Scheme == nil {
		return fmt.Errorf("passpoints: nil scheme")
	}
	if c.Iterations < 0 {
		return fmt.Errorf("passpoints: negative iterations")
	}
	return nil
}

func (c Config) iterations() int {
	if c.Iterations == 0 {
		return passhash.DefaultIterations
	}
	return c.Iterations
}

// SchemeKind identifies a discretization scheme in stored records.
type SchemeKind string

// Scheme kinds stored in records.
const (
	KindCentered SchemeKind = "centered"
	KindRobust   SchemeKind = "robust"
)

// ClearID is the serializable clear part of one click-point: the grid
// identifier stored by the system in plain text.
type ClearID struct {
	// DX, DY are Centered Discretization offsets in sub-pixel units.
	DX int64 `json:"dx"`
	DY int64 `json:"dy"`
	// Grid is the Robust Discretization grid index.
	Grid uint8 `json:"grid"`
}

func clearFromCore(c core.Clear) ClearID {
	return ClearID{DX: int64(c.DX), DY: int64(c.DY), Grid: c.Grid}
}

func (c ClearID) toCore() core.Clear {
	return core.Clear{DX: fixed.Sub(c.DX), DY: fixed.Sub(c.DY), Grid: c.Grid}
}

// Record is everything the system persists for one account. It is what
// an offline attacker obtains by stealing the password file: the clear
// grid identifiers, salt, iteration count, and digest — but not the
// click-points or their square indices.
type Record struct {
	User         string     `json:"user"`
	Kind         SchemeKind `json:"kind"`
	SquareSidePx int        `json:"square_side_px"`
	ImageW       int        `json:"image_w"`
	ImageH       int        `json:"image_h"`
	Clears       []ClearID  `json:"clears"`
	Salt         []byte     `json:"salt"`
	Iterations   int        `json:"iterations"`
	Digest       []byte     `json:"digest"`
}

// Enroll creates the stored record for a fresh password. The clicks
// must all fall inside the configured image.
func Enroll(cfg Config, user string, clicks []geom.Point) (*Record, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := checkClicks(cfg, clicks); err != nil {
		return nil, err
	}
	params, err := passhash.NewParams(cfg.iterations())
	if err != nil {
		return nil, err
	}
	tokens := make([]core.Token, len(clicks))
	clears := make([]ClearID, len(clicks))
	for i, p := range clicks {
		tokens[i] = cfg.Scheme.Enroll(p)
		clears[i] = clearFromCore(tokens[i].Clear)
	}
	digest, err := passhash.Digest(params, tokens)
	if err != nil {
		return nil, err
	}
	kind := KindCentered
	if cfg.Scheme.Name() == "robust" {
		kind = KindRobust
	}
	return &Record{
		User:         user,
		Kind:         kind,
		SquareSidePx: int(cfg.Scheme.SquareSide() / fixed.Scale),
		ImageW:       cfg.Image.W,
		ImageH:       cfg.Image.H,
		Clears:       clears,
		Salt:         params.Salt,
		Iterations:   params.Iterations,
		Digest:       digest,
	}, nil
}

// Verify checks a login attempt against a stored record. It never
// reveals which click-point failed.
func Verify(cfg Config, rec *Record, clicks []geom.Point) (bool, error) {
	if err := cfg.Validate(); err != nil {
		return false, err
	}
	if rec == nil {
		return false, fmt.Errorf("passpoints: nil record")
	}
	if len(clicks) != len(rec.Clears) {
		// Wrong click count is simply a failed login, not an error: the
		// UI may allow variable-length entries.
		return false, nil
	}
	if err := checkClicks(cfg, clicks); err != nil {
		return false, err
	}
	tokens := make([]core.Token, len(clicks))
	for i, p := range clicks {
		clear := rec.Clears[i].toCore()
		tokens[i] = core.Token{Clear: clear, Secret: cfg.Scheme.Locate(p, clear)}
	}
	params := passhash.Params{Iterations: rec.Iterations, Salt: rec.Salt}
	return passhash.Verify(params, rec.Digest, tokens)
}

func checkClicks(cfg Config, clicks []geom.Point) error {
	if len(clicks) != cfg.Clicks {
		return fmt.Errorf("passpoints: got %d clicks, want %d", len(clicks), cfg.Clicks)
	}
	for i, p := range clicks {
		if !cfg.Image.Contains(p) {
			return fmt.Errorf("passpoints: click %d at %v outside image %v", i, p, cfg.Image)
		}
	}
	return nil
}

// SchemeForRecord reconstructs a scheme able to verify the record. The
// grid-selection policy is irrelevant for verification (it only guides
// enrollment), so Robust records verify under any policy.
func SchemeForRecord(rec *Record) (core.Scheme, error) {
	if rec == nil {
		return nil, fmt.Errorf("passpoints: nil record")
	}
	switch rec.Kind {
	case KindCentered:
		return core.NewCentered(rec.SquareSidePx)
	case KindRobust:
		return core.NewRobust2D(rec.SquareSidePx, core.MostCentered, 0)
	default:
		return nil, fmt.Errorf("passpoints: unknown scheme kind %q", rec.Kind)
	}
}

// Marshal encodes the record as JSON.
func (r *Record) Marshal() ([]byte, error) { return json.Marshal(r) }

// UnmarshalRecord decodes a record from JSON and sanity-checks it.
func UnmarshalRecord(data []byte) (*Record, error) {
	var r Record
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("passpoints: decoding record: %w", err)
	}
	if r.SquareSidePx <= 0 || r.Iterations <= 0 || len(r.Digest) == 0 {
		return nil, fmt.Errorf("passpoints: record for %q is malformed", r.User)
	}
	return &r, nil
}

package passpoints

import (
	"strings"
	"testing"

	"clickpass/internal/core"
	"clickpass/internal/geom"
)

func centeredCfg(t *testing.T, side int) Config {
	t.Helper()
	s, err := core.NewCentered(side)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Image:      geom.Size{W: 451, H: 331},
		Clicks:     5,
		Scheme:     s,
		Iterations: 2, // keep tests fast
	}
}

func robustCfg(t *testing.T, side int) Config {
	t.Helper()
	s, err := core.NewRobust2D(side, core.MostCentered, 1)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Image:      geom.Size{W: 451, H: 331},
		Clicks:     5,
		Scheme:     s,
		Iterations: 2,
	}
}

func fiveClicks() []geom.Point {
	return []geom.Point{
		geom.Pt(30, 40), geom.Pt(120, 300), geom.Pt(222, 51),
		geom.Pt(400, 200), geom.Pt(77, 160),
	}
}

func TestEnrollVerifyRoundTrip(t *testing.T) {
	for _, cfg := range []Config{centeredCfg(t, 13), robustCfg(t, 13)} {
		clicks := fiveClicks()
		rec, err := Enroll(cfg, "alice", clicks)
		if err != nil {
			t.Fatal(err)
		}
		ok, err := Verify(cfg, rec, clicks)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("%s: exact re-entry rejected", cfg.Scheme.Name())
		}
	}
}

func TestVerifyWithinTolerance(t *testing.T) {
	cfg := centeredCfg(t, 13) // r = 6.5: within 6 pixels accepted
	clicks := fiveClicks()
	rec, err := Enroll(cfg, "alice", clicks)
	if err != nil {
		t.Fatal(err)
	}
	near := make([]geom.Point, len(clicks))
	for i, p := range clicks {
		near[i] = p.Add(geom.Pt(6, -6))
	}
	ok, err := Verify(cfg, rec, near)
	if err != nil || !ok {
		t.Errorf("6px displacement should be accepted: %v %v", ok, err)
	}
	far := make([]geom.Point, len(clicks))
	copy(far, clicks)
	far[2] = clicks[2].Add(geom.Pt(7, 0))
	ok, err = Verify(cfg, rec, far)
	if err != nil || ok {
		t.Errorf("7px displacement on one click should be rejected: %v %v", ok, err)
	}
}

func TestVerifyOrderMatters(t *testing.T) {
	cfg := centeredCfg(t, 13)
	clicks := fiveClicks()
	rec, err := Enroll(cfg, "alice", clicks)
	if err != nil {
		t.Fatal(err)
	}
	swapped := append([]geom.Point(nil), clicks...)
	swapped[0], swapped[1] = swapped[1], swapped[0]
	ok, err := Verify(cfg, rec, swapped)
	if err != nil || ok {
		t.Error("click order must matter")
	}
}

func TestVerifyWrongCount(t *testing.T) {
	cfg := centeredCfg(t, 13)
	rec, err := Enroll(cfg, "alice", fiveClicks())
	if err != nil {
		t.Fatal(err)
	}
	// Verify validates count against the record before the config, so
	// use a 4-click config to exercise the record-length path.
	cfg4 := cfg
	cfg4.Clicks = 4
	ok, err := Verify(cfg4, rec, fiveClicks()[:4])
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("4 clicks must not verify a 5-click record")
	}
}

func TestEnrollValidation(t *testing.T) {
	cfg := centeredCfg(t, 13)
	if _, err := Enroll(cfg, "a", fiveClicks()[:3]); err == nil {
		t.Error("wrong click count should fail enrollment")
	}
	out := fiveClicks()
	out[4] = geom.Pt(451, 10) // one past the right edge
	if _, err := Enroll(cfg, "a", out); err == nil {
		t.Error("out-of-image click should fail enrollment")
	}
	bad := cfg
	bad.Scheme = nil
	if _, err := Enroll(bad, "a", fiveClicks()); err == nil {
		t.Error("nil scheme should fail")
	}
	bad = cfg
	bad.Image = geom.Size{}
	if _, err := Enroll(bad, "a", fiveClicks()); err == nil {
		t.Error("empty image should fail")
	}
	bad = cfg
	bad.Clicks = 0
	if _, err := Enroll(bad, "a", nil); err == nil {
		t.Error("zero clicks should fail")
	}
	bad = cfg
	bad.Iterations = -1
	if _, err := Enroll(bad, "a", fiveClicks()); err == nil {
		t.Error("negative iterations should fail")
	}
}

func TestSaltsDifferPerEnrollment(t *testing.T) {
	cfg := centeredCfg(t, 13)
	r1, err := Enroll(cfg, "alice", fiveClicks())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Enroll(cfg, "alice", fiveClicks())
	if err != nil {
		t.Fatal(err)
	}
	if string(r1.Salt) == string(r2.Salt) {
		t.Error("re-enrollment reused the salt")
	}
	if string(r1.Digest) == string(r2.Digest) {
		t.Error("same password, different salts, same digest — salting broken")
	}
}

func TestRecordSerialization(t *testing.T) {
	cfg := robustCfg(t, 36)
	rec, err := Enroll(cfg, "bob", fiveClicks())
	if err != nil {
		t.Fatal(err)
	}
	data, err := rec.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalRecord(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.User != "bob" || back.Kind != KindRobust || back.SquareSidePx != 36 {
		t.Errorf("round-trip mangled record: %+v", back)
	}
	ok, err := Verify(cfg, back, fiveClicks())
	if err != nil || !ok {
		t.Errorf("deserialized record failed verification: %v %v", ok, err)
	}
}

func TestUnmarshalRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"not json":        "{",
		"zero side":       `{"user":"x","square_side_px":0,"iterations":2,"digest":"aGk="}`,
		"zero iterations": `{"user":"x","square_side_px":13,"iterations":0,"digest":"aGk="}`,
		"empty digest":    `{"user":"x","square_side_px":13,"iterations":2}`,
	}
	for name, data := range cases {
		if _, err := UnmarshalRecord([]byte(data)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestSchemeForRecord(t *testing.T) {
	for _, mk := range []func(*testing.T, int) Config{centeredCfg, robustCfg} {
		cfg := mk(t, 19)
		rec, err := Enroll(cfg, "carol", fiveClicks())
		if err != nil {
			t.Fatal(err)
		}
		s, err := SchemeForRecord(rec)
		if err != nil {
			t.Fatal(err)
		}
		cfg2 := cfg
		cfg2.Scheme = s
		ok, err := Verify(cfg2, rec, fiveClicks())
		if err != nil || !ok {
			t.Errorf("reconstructed %s scheme failed verification", s.Name())
		}
	}
	if _, err := SchemeForRecord(nil); err == nil {
		t.Error("nil record should fail")
	}
	if _, err := SchemeForRecord(&Record{Kind: "weird", SquareSidePx: 13}); err == nil {
		t.Error("unknown kind should fail")
	}
}

func TestVerifyNilRecord(t *testing.T) {
	cfg := centeredCfg(t, 13)
	if _, err := Verify(cfg, nil, fiveClicks()); err == nil ||
		!strings.Contains(err.Error(), "nil record") {
		t.Error("nil record should error")
	}
}

func TestRobustVerifyNearEdgeOfImage(t *testing.T) {
	// Clicks at image corners exercise negative/zero square indices.
	cfg := robustCfg(t, 13)
	clicks := []geom.Point{
		geom.Pt(0, 0), geom.Pt(450, 0), geom.Pt(0, 330),
		geom.Pt(450, 330), geom.Pt(225, 165),
	}
	rec, err := Enroll(cfg, "edge", clicks)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := Verify(cfg, rec, clicks)
	if err != nil || !ok {
		t.Errorf("corner clicks failed: %v %v", ok, err)
	}
}

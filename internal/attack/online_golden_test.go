package attack

import (
	"testing"

	"clickpass/internal/core"
	"clickpass/internal/dataset"
	"clickpass/internal/imagegen"
	"clickpass/internal/study"
)

// onlineGoldenDatasets generates the cars field/lab pair with an
// explicit generation worker count. study.Run is contractually
// byte-identical across worker counts, so every value of workers must
// feed Online the exact same data — this pins that chain end to end.
func onlineGoldenDatasets(t *testing.T, workers int) (field, lab *dataset.Dataset) {
	t.Helper()
	img := imagegen.Cars()
	fcfg := study.FieldConfig(img, 100)
	fcfg.Workers = workers
	lcfg := study.LabConfig(img, 200)
	lcfg.Workers = workers
	field, err := study.Run(fcfg)
	if err != nil {
		t.Fatal(err)
	}
	lab, err = study.Run(lcfg)
	if err != nil {
		t.Fatal(err)
	}
	return field, lab
}

// TestOnlineGolden pins attack.Online's exact output on a fixed seed —
// the safety net for the planned parallelization of the guess-ranking
// and per-account replay loops (ROADMAP): any refactor must reproduce
// these counts at every generation worker count.
func TestOnlineGolden(t *testing.T) {
	img := imagegen.Cars()
	type golden struct {
		scheme  func(t *testing.T) core.Scheme
		lockout int
		want    OnlineResult
	}
	goldens := map[string]golden{
		"centered13-lockout10": {
			scheme: func(t *testing.T) core.Scheme {
				s, err := core.NewCentered(13)
				if err != nil {
					t.Fatal(err)
				}
				return s
			},
			lockout: 10,
			want: OnlineResult{
				Image: "cars", Scheme: "centered", SidePx: 13, Lockout: 10,
				Accounts: 162, Compromised: 0,
			},
		},
		"robust36-lockout30": {
			scheme: func(t *testing.T) core.Scheme {
				s, err := core.NewRobust2D(36, core.MostCentered, 1)
				if err != nil {
					t.Fatal(err)
				}
				return s
			},
			lockout: 30,
			want: OnlineResult{
				Image: "cars", Scheme: "robust", SidePx: 36, Lockout: 30,
				Accounts: 162, Compromised: 0,
			},
		},
	}
	for name, g := range goldens {
		t.Run(name, func(t *testing.T) {
			for _, workers := range []int{1, 2, 8} {
				field, lab := onlineGoldenDatasets(t, workers)
				got, err := Online(field, lab, img, g.scheme(t), g.lockout, workers)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if got != g.want {
					t.Errorf("workers=%d: Online = %+v, want %+v", workers, got, g.want)
				}
			}
		})
	}
}

// TestOnlineGoldenPlantedHit: the nonzero-compromise pin. The lab
// dataset is the workers-generated field data with the first account's
// exact clicks planted as a guess, so exactly that account must fall
// at every worker count — a parallel replay that miscounts or
// misattributes hits breaks this even though the organic goldens above
// are all zero.
func TestOnlineGoldenPlantedHit(t *testing.T) {
	img := imagegen.Cars()
	s, err := core.NewCentered(13)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		field, lab := onlineGoldenDatasets(t, workers)
		planted := *lab
		planted.Passwords = append([]dataset.Password(nil), lab.Passwords...)
		leak := field.Passwords[0]
		leak.ID = 100000 + leak.ID // IDs must stay unique within the dataset
		leak.User = "leak"
		planted.Passwords = append(planted.Passwords, leak)
		got, err := Online(field, &planted, img, s, 200, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		want := OnlineResult{
			Image: "cars", Scheme: "centered", SidePx: 13, Lockout: 200,
			Accounts: 162, Compromised: 1,
		}
		if got != want {
			t.Errorf("workers=%d: Online = %+v, want %+v", workers, got, want)
		}
	}
}

// TestOnlineRepeatableOnSharedData: repeated runs over the *same*
// dataset must agree exactly (the ranking sort is stable by contract —
// sort.SliceStable over equal scores must not reorder verdicts).
func TestOnlineRepeatableOnSharedData(t *testing.T) {
	pair := studyPairs(t)[0]
	s, err := core.NewCentered(19)
	if err != nil {
		t.Fatal(err)
	}
	first, err := Online(pair.field, pair.lab, pair.img, s, 25, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		again, err := Online(pair.field, pair.lab, pair.img, s, 25, 0)
		if err != nil {
			t.Fatal(err)
		}
		if again != first {
			t.Fatalf("run %d: Online = %+v, want %+v", i, again, first)
		}
	}
}

// Package stats provides the small statistical toolkit the evaluation
// needs: binomial proportion confidence intervals for the reported
// rates, and summary statistics for calibration sweeps.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Proportion is an observed k-out-of-n rate.
type Proportion struct {
	K, N int
}

// Value returns the point estimate k/n (0 if n == 0).
func (p Proportion) Value() float64 {
	if p.N == 0 {
		return 0
	}
	return float64(p.K) / float64(p.N)
}

// Pct returns the point estimate in percent.
func (p Proportion) Pct() float64 { return 100 * p.Value() }

// Wilson returns the Wilson score interval at the given z (1.96 for
// 95%). Unlike the normal approximation it behaves sensibly for rates
// near 0 or 1 and for small n — both of which occur in Table 1.
func (p Proportion) Wilson(z float64) (lo, hi float64) {
	if p.N == 0 {
		return 0, 1
	}
	n := float64(p.N)
	phat := p.Value()
	denom := 1 + z*z/n
	center := (phat + z*z/(2*n)) / denom
	margin := z / denom * math.Sqrt(phat*(1-phat)/n+z*z/(4*n*n))
	lo, hi = center-margin, center+margin
	// Pin the degenerate endpoints: exact arithmetic gives lo = 0 when
	// k = 0 and hi = 1 when k = n, but roundoff can land a hair inside,
	// violating lo <= k/n <= hi.
	if lo < 0 || p.K == 0 {
		lo = 0
	}
	if hi > 1 || p.K == p.N {
		hi = 1
	}
	return lo, hi
}

// Wilson95 returns the 95% Wilson interval in percent.
func (p Proportion) Wilson95Pct() (lo, hi float64) {
	l, h := p.Wilson(1.959963984540054)
	return 100 * l, 100 * h
}

// String formats the proportion with its 95% interval.
func (p Proportion) String() string {
	lo, hi := p.Wilson95Pct()
	return fmt.Sprintf("%.1f%% [%.1f, %.1f]", p.Pct(), lo, hi)
}

// Summary holds order statistics of a sample.
type Summary struct {
	N           int
	Mean, Std   float64
	Min, Max    float64
	Median, P90 float64
}

// Summarize computes summary statistics; it returns a zero Summary for
// an empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs)}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Min, s.Max = sorted[0], sorted[len(sorted)-1]
	s.Median = quantile(sorted, 0.5)
	s.P90 = quantile(sorted, 0.9)
	var sum float64
	for _, x := range xs {
		sum += x
	}
	s.Mean = sum / float64(len(xs))
	var sq float64
	for _, x := range xs {
		d := x - s.Mean
		sq += d * d
	}
	if len(xs) > 1 {
		s.Std = math.Sqrt(sq / float64(len(xs)-1))
	}
	return s
}

// quantile interpolates the q-quantile of a sorted sample.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	i := int(pos)
	if i >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(i)
	return sorted[i]*(1-frac) + sorted[i+1]*frac
}

// TwoProportionZ returns the z statistic for the difference between
// two independent proportions (pooled). Used to check whether a
// measured scheme gap is significant at study scale.
func TwoProportionZ(a, b Proportion) float64 {
	if a.N == 0 || b.N == 0 {
		return 0
	}
	p := float64(a.K+b.K) / float64(a.N+b.N)
	se := math.Sqrt(p * (1 - p) * (1/float64(a.N) + 1/float64(b.N)))
	if se == 0 {
		return 0
	}
	return (a.Value() - b.Value()) / se
}

// Cued Click-Points walk-through: the successor scheme the paper cites
// (§2) built on the same discretization core. A password is one click
// per image; each click's grid square selects the next image, so a
// wrong click sends the user down an unfamiliar image path (implicit
// feedback) while telling an attacker nothing explicit. The demo also
// shows Persuasive CCP creation (random viewport) starving hotspot
// dictionaries.
package main

import (
	"fmt"
	"log"

	"clickpass/internal/ccp"
	"clickpass/internal/core"
	"clickpass/internal/geom"
	"clickpass/internal/hotspot"
	"clickpass/internal/imagegen"
	"clickpass/internal/rng"
)

func main() {
	scheme, err := core.NewCentered(19) // ±9px tolerance
	if err != nil {
		log.Fatal(err)
	}
	// An image pool: the two study proxies plus shifted variants.
	images := []*imagegen.Image{imagegen.Cars(), imagegen.Pool()}
	for i := 0; i < 4; i++ {
		v := imagegen.Cars()
		v.Name = fmt.Sprintf("cars-v%d", i+1)
		for j := range v.Hotspots {
			v.Hotspots[j].X = float64((int(v.Hotspots[j].X) + 55*(i+1)) % 440)
		}
		images = append(images, v)
	}
	sys := &ccp.System{Images: images, Scheme: scheme, Clicks: 5, Iterations: 1000}

	var clicked []geom.Point
	rec, err := sys.Enroll("alice", ccp.RecordingClicker(ccp.HotspotClicker(rng.New(1)), &clicked))
	if err != nil {
		log.Fatal(err)
	}
	path, err := sys.Path("alice", ccp.ReplayClicker(clicked, 0, 0))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("enrolled alice; image path: ")
	for i, idx := range path {
		if i > 0 {
			fmt.Print(" -> ")
		}
		fmt.Print(images[idx].Name)
	}
	fmt.Println()

	check := func(label string, dx int) {
		ok, err := sys.Verify(rec, ccp.ReplayClicker(clicked, dx, 0))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-24s -> %s\n", label,
			map[bool]string{true: "ACCEPTED", false: "rejected"}[ok])
	}
	check("exact re-entry", 0)
	check("every click 9px off", 9)
	check("every click 10px off", 10)

	// A wrong first click derails the whole path.
	bad := append([]geom.Point(nil), clicked...)
	bad[0] = geom.Pt(10, 10)
	ok, err := sys.Verify(rec, ccp.ReplayClicker(bad, 0, 0))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-24s -> %s (path diverges at step 1)\n", "wrong first click",
		map[bool]string{true: "ACCEPTED", false: "rejected"}[ok])

	// Persuasive CCP: measure how much of the click mass an automated
	// top-30 hotspot dictionary covers under each creation mode.
	img := imagegen.Pool()
	dm, err := hotspot.FromSaliency(img, 4)
	if err != nil {
		log.Fatal(err)
	}
	candidates := dm.TopK(30, 10)
	coverage := func(click ccp.Clicker) float64 {
		covered := 0
		const n = 2000
		for i := 0; i < n; i++ {
			p := click(img, 0)
			for _, c := range candidates {
				if core.Accepts(scheme, scheme.Enroll(c), p) {
					covered++
					break
				}
			}
		}
		return 100 * float64(covered) / float64(n)
	}
	fmt.Println("\npersuasive creation vs hotspot dictionaries (pool image, top-30 candidates):")
	fmt.Printf("  plain CCP creation     -> %.1f%% of clicks covered\n",
		coverage(ccp.HotspotClicker(rng.New(5))))
	fmt.Printf("  PCCP 75px viewport     -> %.1f%% of clicks covered\n",
		coverage(ccp.ViewportClicker(rng.New(5), 75)))
}

package repl

import (
	"bufio"
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"time"

	"clickpass/internal/vault"
)

// newRunID returns a fresh nonzero random stream-incarnation id.
// Random so ids from different primaries (or the same node across
// promotions) can never collide and alias a follower's resume floor
// onto the wrong stream.
func newRunID() (uint64, error) {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return 0, fmt.Errorf("repl: generating run id: %w", err)
	}
	id := binary.LittleEndian.Uint64(b[:])
	if id == 0 {
		id = 1
	}
	return id, nil
}

// bufEntry is one retained stream record.
type bufEntry struct {
	seq   uint64
	frame []byte
}

// shardBuf is one shard's bounded retention buffer: the recent tail
// of the shard's stream a reconnecting follower can resume from
// without a re-bootstrap. Entries are ascending by seq (gaps legal —
// a failed batch consumes seqs that are never shipped).
type shardBuf struct {
	entries []bufEntry
	bytes   int
	// trimmedThrough is the highest seq the retention trim has
	// discarded (0 when nothing was ever trimmed). A cursor at or below
	// it may be owed a trimmed committed record, so resuming it from
	// the retained tail could silently skip acked writes — such a
	// follower must re-bootstrap from a snapshot instead.
	trimmedThrough uint64
}

// qwaiter is one quorum-mode writer waiting for follower coverage of
// (shard, seq). Exactly one sender delivers on ch (buffered): the ack
// path sends nil, close sends the cause; the timeout path removes the
// waiter under the lock first, so a waiter still in the list has not
// been signaled.
type qwaiter struct {
	shard int
	seq   uint64
	ch    chan error
}

// pconn is one attached follower connection. wmu serializes writers
// (the sender loop and the heartbeat ticker share the socket).
type pconn struct {
	c     net.Conn
	addr  string
	wmu   sync.Mutex
	acked []uint64 // per-shard acknowledged seq (guarded by primaryState.mu)
	dead  bool     // reader saw an error; sender must exit (guarded by primaryState.mu)
}

// write frames and writes one message with a write deadline, so a
// wedged follower link errors out instead of blocking the sender
// forever.
func (pc *pconn) write(m *wireMsg, timeout time.Duration) error {
	pc.wmu.Lock()
	defer pc.wmu.Unlock()
	_ = pc.c.SetWriteDeadline(time.Now().Add(timeout))
	return writeMsg(pc.c, m)
}

// primaryState is the stream machinery of an acting primary: the
// listener, the attached follower connections, the per-shard
// retention buffers, and the quorum waiters. Its mutex is leaf-level:
// nothing is called under it that can take a vault shard lock, and
// the vault commit hook (which runs under a shard lock) only copies
// bytes in.
type primaryState struct {
	n  *Node
	ln net.Listener

	mu      sync.Mutex
	cond    *sync.Cond // broadcast: new entries, acks, conn changes, close
	conns   map[*pconn]struct{}
	bufs    []shardBuf
	head    []uint64 // last shipped seq per shard
	ackHigh []uint64 // max acked seq per shard across all followers
	waiters []*qwaiter
	closed  bool
}

// startPrimaryLocked starts the primary machinery: listener, accept
// loop, and the store's replication hooks. Caller holds n.mu.
func (n *Node) startPrimaryLocked() error {
	ln, err := net.Listen("tcp", n.opts.Listen)
	if err != nil {
		return fmt.Errorf("repl: listening on %s: %w", n.opts.Listen, err)
	}
	ps := &primaryState{
		n:       n,
		ln:      ln,
		conns:   make(map[*pconn]struct{}),
		bufs:    make([]shardBuf, n.shards),
		head:    make([]uint64, n.shards),
		ackHigh: make([]uint64, n.shards),
	}
	ps.cond = sync.NewCond(&ps.mu)
	n.pr = ps
	hooks := vault.ReplHooks{Commit: ps.commit}
	if n.opts.Ack == AckQuorum {
		hooks.QuorumWait = ps.quorumWait
	}
	n.store.SetReplHooks(hooks)
	n.wg.Add(1)
	go ps.acceptLoop()
	return nil
}

// close tears the primary machinery down, failing pending quorum
// waiters with cause.
func (ps *primaryState) close(cause error) {
	ps.mu.Lock()
	if ps.closed {
		ps.mu.Unlock()
		return
	}
	ps.closed = true
	for _, w := range ps.waiters {
		w.ch <- cause
	}
	ps.waiters = nil
	for pc := range ps.conns {
		pc.c.Close()
	}
	ps.cond.Broadcast()
	ps.mu.Unlock()
	ps.ln.Close()
}

// commit is the vault's ReplHooks.Commit sink: it labels the batch's
// frames with their sequence numbers and appends them to the shard's
// retention buffer. Runs under the vault shard lock — copy, enqueue,
// wake senders, return.
func (ps *primaryState) commit(shard int, frames []byte, lastSeq uint64) {
	split, err := vault.SplitFrames(frames)
	if err != nil || len(split) == 0 {
		// Cannot happen for frames the store itself encoded; refuse to
		// guess at labeling if it somehow does.
		if err != nil {
			ps.n.opts.Logf("repl: dropping unsplittable commit batch (shard %d): %v", shard, err)
		}
		return
	}
	first := lastSeq - uint64(len(split)) + 1
	ps.mu.Lock()
	if ps.closed {
		ps.mu.Unlock()
		return
	}
	b := &ps.bufs[shard]
	for k, fr := range split {
		cp := append([]byte(nil), fr...)
		b.entries = append(b.entries, bufEntry{seq: first + uint64(k), frame: cp})
		b.bytes += len(cp)
	}
	ps.head[shard] = lastSeq
	for b.bytes > ps.n.opts.RetainBytes && len(b.entries) > 0 {
		b.bytes -= len(b.entries[0].frame)
		b.trimmedThrough = b.entries[0].seq
		b.entries[0] = bufEntry{}
		b.entries = b.entries[1:]
	}
	ps.cond.Broadcast()
	ps.mu.Unlock()
}

// quorumWait is the vault's ReplHooks.QuorumWait hook: block the
// writer until a follower acknowledges (shard, seq) or the quorum
// timeout passes. Called with no locks held.
func (ps *primaryState) quorumWait(shard int, seq uint64) error {
	ps.mu.Lock()
	if ps.closed {
		ps.mu.Unlock()
		return errFenced
	}
	if ps.ackHigh[shard] >= seq {
		ps.mu.Unlock()
		return nil
	}
	w := &qwaiter{shard: shard, seq: seq, ch: make(chan error, 1)}
	ps.waiters = append(ps.waiters, w)
	ps.mu.Unlock()
	t := time.NewTimer(ps.n.opts.QuorumTimeout)
	defer t.Stop()
	select {
	case err := <-w.ch:
		return err
	case <-t.C:
		ps.mu.Lock()
		for i, x := range ps.waiters {
			if x == w {
				ps.waiters = append(ps.waiters[:i], ps.waiters[i+1:]...)
				ps.mu.Unlock()
				return fmt.Errorf("repl: no follower acknowledged shard %d seq %d within %v (write is locally durable, not replica-covered)",
					shard, seq, ps.n.opts.QuorumTimeout)
			}
		}
		ps.mu.Unlock()
		// A signaler removed us concurrently; its verdict is on ch.
		return <-w.ch
	}
}

// ack folds a follower acknowledgement in, waking satisfied quorum
// waiters.
func (ps *primaryState) ack(pc *pconn, shard int, seq uint64) {
	if shard < 0 || shard >= len(ps.ackHigh) {
		return
	}
	ps.mu.Lock()
	if seq > pc.acked[shard] {
		pc.acked[shard] = seq
	}
	if seq > ps.ackHigh[shard] {
		ps.ackHigh[shard] = seq
		keep := ps.waiters[:0]
		for _, w := range ps.waiters {
			if w.shard == shard && w.seq <= seq {
				w.ch <- nil
			} else {
				keep = append(keep, w)
			}
		}
		for i := len(keep); i < len(ps.waiters); i++ {
			ps.waiters[i] = nil
		}
		ps.waiters = keep
	}
	ps.cond.Broadcast()
	ps.mu.Unlock()
}

// acceptLoop accepts follower connections until the listener closes.
func (ps *primaryState) acceptLoop() {
	defer ps.n.wg.Done()
	for {
		c, err := ps.ln.Accept()
		if err != nil {
			return
		}
		ps.n.wg.Add(1)
		go ps.handleConn(c)
	}
}

// handleConn runs one follower connection: handshake, bootstrap
// decision, then the sender loop (the ack reader and heartbeat run as
// side goroutines). A hello bearing a higher epoch is a fence and
// deposes this node.
func (ps *primaryState) handleConn(c net.Conn) {
	n := ps.n
	defer n.wg.Done()
	defer c.Close()
	br := bufio.NewReader(c)
	_ = c.SetReadDeadline(time.Now().Add(5 * time.Second))
	var hello wireMsg
	if err := readMsg(br, &hello); err != nil || hello.Type != msgHello {
		return
	}
	_ = c.SetReadDeadline(time.Time{})
	n.mu.Lock()
	epoch, runID, fenced := n.epoch, n.runID, n.fenced
	n.mu.Unlock()
	if hello.Epoch > epoch {
		n.fence(hello.Epoch, hello.Advertise)
		return
	}
	if fenced {
		return
	}
	if hello.Shards != 0 && hello.Shards != n.shards {
		n.opts.Logf("repl: refusing follower %s: shard count %d != ours %d", c.RemoteAddr(), hello.Shards, n.shards)
		return
	}
	pc := &pconn{c: c, addr: c.RemoteAddr().String(), acked: make([]uint64, n.shards)}
	welcome := wireMsg{Type: msgWelcome, Epoch: epoch, RunID: runID, Shards: n.shards, Advertise: n.opts.Advertise}
	if err := pc.write(&welcome, n.opts.QuorumTimeout); err != nil {
		return
	}
	// Cursor: the next seq each shard owes this follower. 0 means the
	// shard needs a snapshot bootstrap first.
	next := make([]uint64, n.shards)
	if hello.RunID == runID && len(hello.Seqs) == n.shards {
		for s := range next {
			next[s] = hello.Seqs[s] + 1
		}
	}
	ps.mu.Lock()
	if ps.closed {
		ps.mu.Unlock()
		return
	}
	if len(ps.conns) > 0 {
		// Exactly one follower per primary: quorum release keys on the
		// MAX acked seq across attached connections, so with two
		// followers a write acks once the faster one has it — and is
		// silently lost if the slower one is later promoted. Until
		// multi-follower quorums are a designed feature (see
		// ROADMAP.md), a second concurrent follower is refused loudly
		// rather than admitted into undefined behavior.
		for other := range ps.conns {
			n.opts.Logf("repl: REFUSING follower %s: follower %s is already attached and single-follower quorum would be unsound with both", pc.addr, other.addr)
		}
		ps.mu.Unlock()
		return
	}
	ps.conns[pc] = struct{}{}
	ps.mu.Unlock()
	defer func() {
		ps.mu.Lock()
		delete(ps.conns, pc)
		ps.cond.Broadcast()
		ps.mu.Unlock()
	}()
	n.opts.Logf("repl: follower %s attached (resume=%v)", pc.addr, next[0] != 0 || n.shards == 0)

	// Ack reader: folds acks in until the conn dies, then wakes the
	// sender so it exits too.
	go func() {
		for {
			var m wireMsg
			if err := readMsg(br, &m); err != nil {
				break
			}
			if m.Type == msgAck {
				ps.ack(pc, m.Shard, m.Seq)
			}
		}
		c.Close()
		ps.mu.Lock()
		pc.dead = true
		ps.cond.Broadcast()
		ps.mu.Unlock()
	}()

	// Heartbeat: keeps the follower's staleness clock fresh when the
	// stream is idle.
	hbStop := make(chan struct{})
	defer close(hbStop)
	go func() {
		t := time.NewTicker(n.opts.Heartbeat)
		defer t.Stop()
		for {
			select {
			case <-hbStop:
				return
			case <-t.C:
				if pc.write(&wireMsg{Type: msgPing}, n.opts.Heartbeat+2*time.Second) != nil {
					c.Close()
					return
				}
			}
		}
	}()

	ps.senderLoop(pc, next)
}

// senderAction is one unit of work the sender owes a follower.
type senderAction struct {
	shard    int
	snapshot bool
	frames   []byte // concatenated retained frames (snapshot == false)
	lastSeq  uint64
}

// collectWork scans the retention buffers for everything the follower
// at cursor `next` is owed. Caller holds ps.mu. next[s] == 0 requests
// a snapshot; a cursor that points below the buffer's retained floor
// escalates to a snapshot too (the follower fell behind the bounded
// buffer).
func (ps *primaryState) collectWork(next []uint64) []senderAction {
	var actions []senderAction
	for s := range next {
		if next[s] == 0 {
			actions = append(actions, senderAction{shard: s, snapshot: true})
			continue
		}
		if ps.head[s] < next[s] {
			continue // fully caught up
		}
		b := &ps.bufs[s]
		if next[s] <= b.trimmedThrough {
			// The trim discarded committed records at or past the
			// cursor: the retained tail may start above it, but shipping
			// from there would silently skip the trimmed records (and in
			// quorum mode release their waiters on the batch's high
			// ack). The follower fell behind the bounded buffer;
			// re-bootstrap it.
			actions = append(actions, senderAction{shard: s, snapshot: true})
			continue
		}
		// Find the first retained entry at or past the cursor. Any gap
		// between the cursor and that entry is now provably a failed
		// batch's never-shipped seqs, not trimmed data.
		idx := -1
		for k := range b.entries {
			if b.entries[k].seq >= next[s] {
				idx = k
				break
			}
		}
		if idx < 0 {
			// head advanced past the cursor but nothing is retained:
			// the tail was trimmed out from under this follower.
			actions = append(actions, senderAction{shard: s, snapshot: true})
			continue
		}
		var frames []byte
		last := uint64(0)
		for _, e := range b.entries[idx:] {
			frames = append(frames, e.frame...)
			last = e.seq
		}
		actions = append(actions, senderAction{shard: s, frames: frames, lastSeq: last})
	}
	return actions
}

// senderLoop streams snapshots and frames to one follower until the
// connection dies or the primary shuts down.
func (ps *primaryState) senderLoop(pc *pconn, next []uint64) {
	n := ps.n
	for {
		ps.mu.Lock()
		var actions []senderAction
		for {
			if ps.closed || pc.dead {
				ps.mu.Unlock()
				return
			}
			actions = ps.collectWork(next)
			if len(actions) > 0 {
				break
			}
			ps.cond.Wait()
		}
		ps.mu.Unlock()
		for _, a := range actions {
			if a.snapshot {
				recs, locks, kv, seq, err := n.store.ShardSnapshot(a.shard)
				if err != nil {
					n.opts.Logf("repl: snapshotting shard %d for %s: %v", a.shard, pc.addr, err)
					pc.c.Close()
					return
				}
				m := wireMsg{Type: msgSnapshot, Shard: a.shard, Seq: seq, Records: recs, Lockouts: locks, KV: kv}
				if err := pc.write(&m, n.opts.QuorumTimeout); err != nil {
					pc.c.Close()
					return
				}
				next[a.shard] = seq + 1
				continue
			}
			m := wireMsg{Type: msgFrames, Shard: a.shard, Seq: a.lastSeq, Frames: a.frames}
			if err := pc.write(&m, n.opts.QuorumTimeout); err != nil {
				pc.c.Close()
				return
			}
			next[a.shard] = a.lastSeq + 1
		}
	}
}

package par

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestLimiterBound: with limit L and many competing tasks, the
// observed concurrency must never exceed L.
func TestLimiterBound(t *testing.T) {
	const limit, tasks = 4, 64
	l := NewLimiter(limit)
	if l.Cap() != limit {
		t.Fatalf("Cap = %d, want %d", l.Cap(), limit)
	}
	var cur, max, ran atomic.Int64
	for i := 0; i < tasks; i++ {
		l.Go(func() {
			n := cur.Add(1)
			for {
				m := max.Load()
				if n <= m || max.CompareAndSwap(m, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
			ran.Add(1)
		})
	}
	l.Drain()
	if ran.Load() != tasks {
		t.Errorf("ran %d tasks, want %d", ran.Load(), tasks)
	}
	if max.Load() > limit {
		t.Errorf("observed %d concurrent tasks, limit %d", max.Load(), limit)
	}
	if l.InFlight() != 0 {
		t.Errorf("InFlight after drain = %d", l.InFlight())
	}
}

// TestLimiterDrainWaits: Drain must not return while a task holds a
// slot.
func TestLimiterDrainWaits(t *testing.T) {
	l := NewLimiter(2)
	release := make(chan struct{})
	var done atomic.Bool
	l.Go(func() { <-release; done.Store(true) })
	drained := make(chan struct{})
	go func() { l.Drain(); close(drained) }()
	select {
	case <-drained:
		t.Fatal("Drain returned with a task in flight")
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	select {
	case <-drained:
	case <-time.After(2 * time.Second):
		t.Fatal("Drain never returned")
	}
	if !done.Load() {
		t.Error("task did not complete before Drain returned")
	}
}

// TestLimiterTryAcquire: TryAcquire must fail fast at capacity and
// succeed after a Release.
func TestLimiterTryAcquire(t *testing.T) {
	l := NewLimiter(1)
	if !l.TryAcquire() {
		t.Fatal("first TryAcquire failed")
	}
	if l.TryAcquire() {
		t.Fatal("TryAcquire succeeded past capacity")
	}
	l.Release()
	if !l.TryAcquire() {
		t.Fatal("TryAcquire failed after Release")
	}
	l.Release()
	l.Drain()
}

// TestLimiterGoContainsPanic: a panicking task must release its slot
// and not crash the process.
func TestLimiterGoContainsPanic(t *testing.T) {
	l := NewLimiter(1)
	l.Go(func() { panic("poisoned connection") })
	l.Drain()
	// The slot must be reusable afterwards.
	var ok atomic.Bool
	l.Go(func() { ok.Store(true) })
	l.Drain()
	if !ok.Load() {
		t.Error("slot not reusable after a panic")
	}
}

// TestLimiterDefaultCap: limit <= 0 selects one slot per CPU, matching
// Map's worker default.
func TestLimiterDefaultCap(t *testing.T) {
	if got := NewLimiter(0).Cap(); got != Default() {
		t.Errorf("default cap = %d, want %d", got, Default())
	}
	if got := NewLimiter(-3).Cap(); got != Default() {
		t.Errorf("negative cap = %d, want %d", got, Default())
	}
}

// TestLimiterAcquireBlocksUntilRelease exercises the raw
// Acquire/Release pairing without Go's goroutine wrapper.
func TestLimiterAcquireBlocksUntilRelease(t *testing.T) {
	l := NewLimiter(1)
	l.Acquire()
	acquired := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		l.Acquire()
		close(acquired)
		l.Release()
	}()
	select {
	case <-acquired:
		t.Fatal("second Acquire did not block at capacity")
	case <-time.After(20 * time.Millisecond):
	}
	l.Release()
	wg.Wait()
	l.Drain()
}

// TestLimiterAcquireContext: a free slot admits, a full limiter defers
// to the context, and a pre-expired context never admits even when a
// slot is available.
func TestLimiterAcquireContext(t *testing.T) {
	l := NewLimiter(1)
	if err := l.AcquireContext(context.Background()); err != nil {
		t.Fatalf("AcquireContext with free slot: %v", err)
	}
	// Full: a context that dies while queued returns its error, slotless.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := l.AcquireContext(ctx); err == nil {
		t.Fatal("AcquireContext at capacity with expiring context returned nil")
	}
	l.Release()
	// Pre-expired: must refuse even though the slot is free again.
	dead, cancelDead := context.WithCancel(context.Background())
	cancelDead()
	if err := l.AcquireContext(dead); err == nil {
		t.Fatal("AcquireContext with pre-expired context admitted")
	}
	// The refusals must not have leaked slots.
	if err := l.AcquireContext(context.Background()); err != nil {
		t.Fatalf("slot leaked by refused acquires: %v", err)
	}
	l.Release()
	l.Drain()
}

package vault

import "clickpass/internal/passpoints"

// Store is the narrow interface the authentication server and tools
// program against: a keyed collection of PassPoints records with an
// atomic snapshot-to-disk operation. Three implementations ship with
// the package — the single-lock file-backed Vault, the fnv-keyed
// Sharded store whose reads scale with cores, and the crash-safe
// Durable store that logs every mutation to a per-shard append-only
// file — and the contract is enforced by a shared conformance test
// (storeImpls in sharded_test.go) rather than by each caller's
// assumptions.
//
// All implementations must be safe for concurrent use. Get returns
// ErrNotFound for missing users; Put returns ErrExists for duplicates;
// Delete of a missing user is a no-op.
type Store interface {
	// Put stores a record for a new user.
	Put(rec *passpoints.Record) error
	// Replace stores a record, overwriting any existing one.
	Replace(rec *passpoints.Record) error
	// Get returns the record for user, or ErrNotFound.
	Get(user string) (*passpoints.Record, error)
	// Delete removes a user's record; missing users are not an error.
	Delete(user string)
	// Users returns all user names in sorted order.
	Users() []string
	// Len returns the number of records.
	Len() int
	// All returns every record sorted by user.
	All() []*passpoints.Record
	// Save writes the store to its backing file atomically; it fails
	// for purely in-memory stores.
	Save() error
	// SaveTo writes the store to the given path atomically.
	SaveTo(path string) error
}

// LockoutStore is an optional Store extension for backends that can
// persist per-account failed-attempt counters alongside the records.
// The auth service type-asserts its store against this interface: when
// present, every lockout change is written through (and reloaded at
// startup), so the §5.1 online-attack defense survives a restart
// instead of handing every attacker a fresh budget. The in-memory
// backends deliberately do not implement it.
type LockoutStore interface {
	// SetLockout durably records user's failed-attempt count;
	// failures <= 0 clears the entry.
	SetLockout(user string, failures int) error
	// Lockouts returns a copy of every persisted counter.
	Lockouts() map[string]int
}

// KVStore is an optional Store extension for backends that can
// durably persist a small side table of opaque blobs alongside the
// records — configuration-grade state that must survive a restart and
// replicate with the vault, but is not a PassPoints record. The
// session tier type-asserts its store against this interface to
// persist signing keys and revocation watermarks; backends without it
// (the in-memory stores) leave the session tier in soft-state-only
// mode. Keys are partitioned by FNV32a(key) exactly like records.
type KVStore interface {
	// SetKV durably sets key's blob; an empty or nil val deletes it.
	SetKV(key string, val []byte) error
	// GetKV returns a copy of key's blob and whether it exists.
	GetKV(key string) ([]byte, bool)
	// KVRange returns a copy of every entry whose key starts with
	// prefix ("" for all).
	KVRange(prefix string) map[string][]byte
	// SetKVWatch installs (or with nil removes) an observer for keys
	// changed by REPLICATION apply paths — not by local SetKV calls.
	// The callback runs outside store locks and must tolerate
	// duplicate deliveries; val is nil for a deletion.
	SetKVWatch(fn func(key string, val []byte))
}

// All implementations must satisfy the interface.
var (
	_ Store   = (*Vault)(nil)
	_ Store   = (*Sharded)(nil)
	_ KVStore = (*Durable)(nil)
)

// FNV32a returns the FNV-1a hash of s — the partitioning hash every
// fnv-sharded structure in the repo keys on (the sharded store, the
// durable store's logs, authsvc's rate-limiter buckets). The byte
// loop is inlined rather than using hash/fnv so hot paths stay
// allocation-free (hash/fnv heap-allocates its state and a []byte
// copy per call).
func FNV32a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

# Build/test entry points, mirrored by .github/workflows/ci.yml.

GO ?= go

.PHONY: all build test vet race bench bench-json loadsmoke cover ci

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race exercises the parallel study/analysis/attack engines, the
# sharded vault, and the concurrent auth server under the race
# detector; the par determinism tests run at workers 1/2/8.
race:
	$(GO) test -race ./...

# bench runs the headline speedup and allocation benchmarks recorded
# in PERFORMANCE.md (serial vs parallel sub-benchmarks).
bench:
	$(GO) test -run NONE -bench 'StudyGeneration|Figure7|Table1|CrackPassword|Digest' -benchmem .

# bench-json records the experiment engine's hot paths (online,
# success, worstcase, cohort) at workers 1/2/4/8 as machine-readable
# BENCH_<name>.json in the repo root, plus a Markdown speedup table on
# stdout. CI runs it with a smaller -benchtime and uploads the JSON as
# an artifact.
bench-json:
	$(GO) run ./cmd/pwbench -out .

# loadsmoke is the CI server-load smoke: small client swarms against
# both vault backends over BOTH transports (framed TCP and HTTP/JSON),
# plus the shared-limiter check that combined TCP+HTTP in-flight
# requests stay capped at -maxconns (see PERFORMANCE.md "Server load"
# and "Unified serving layer").
loadsmoke:
	$(GO) test ./internal/loadtest -run TestLoad -short -v

# cover prints per-package coverage (CI publishes this to the Actions
# summary).
cover:
	$(GO) test -cover ./...

ci: build vet test race loadsmoke

package vault

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

// TestAdvanceEpochPersists: the replication epoch is monotonic
// (max-wins), durably recorded in meta.json, and survives reopen.
func TestAdvanceEpochPersists(t *testing.T) {
	d := openDurableT(t, DurableOptions{Shards: 2})
	if d.Epoch() != 0 {
		t.Fatalf("fresh store epoch = %d, want 0", d.Epoch())
	}
	if got, err := d.AdvanceEpoch(5); err != nil || got != 5 {
		t.Fatalf("AdvanceEpoch(5) = %d, %v", got, err)
	}
	// Max-wins: a stale, lower epoch never rolls the fence back.
	if got, err := d.AdvanceEpoch(3); err != nil || got != 5 {
		t.Fatalf("AdvanceEpoch(3) after 5 = %d, %v; want 5 kept", got, err)
	}
	back := reopen(t, d)
	if back.Epoch() != 5 {
		t.Fatalf("epoch after reopen = %d, want 5", back.Epoch())
	}
}

// captureShip wires SetReplHooks to record shipped frame batches, the
// same byte stream a live follower would receive.
type captureShip struct {
	mu      sync.Mutex
	batches []struct {
		shard   int
		frames  []byte
		lastSeq uint64
	}
}

func (c *captureShip) hook() ReplHooks {
	return ReplHooks{Commit: func(shard int, frames []byte, lastSeq uint64) {
		cp := append([]byte(nil), frames...)
		c.mu.Lock()
		c.batches = append(c.batches, struct {
			shard   int
			frames  []byte
			lastSeq uint64
		}{shard, cp, lastSeq})
		c.mu.Unlock()
	}}
}

// TestApplyReplFramesRoundTrip: frames shipped from one store's commit
// hook replay into a second store and reproduce its state exactly —
// the in-process version of the wire path.
func TestApplyReplFramesRoundTrip(t *testing.T) {
	src := openDurableT(t, DurableOptions{Shards: 2, Sync: SyncAlways, NoAutoCompact: true})
	dst := openDurableT(t, DurableOptions{Shards: 2, Sync: SyncAlways, NoAutoCompact: true})
	var cap captureShip
	src.SetReplHooks(cap.hook())
	for i := 0; i < 10; i++ {
		if err := src.Put(versionedRecord(fmt.Sprintf("rt-%d", i), i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := src.SetLockout("rt-3", 7); err != nil {
		t.Fatal(err)
	}
	src.Delete("rt-4")
	cap.mu.Lock()
	batches := cap.batches
	cap.mu.Unlock()
	if len(batches) == 0 {
		t.Fatal("commit hook shipped nothing")
	}
	for _, b := range batches {
		if err := dst.ApplyReplFrames(b.shard, b.frames); err != nil {
			t.Fatalf("ApplyReplFrames(shard %d): %v", b.shard, err)
		}
	}
	if dst.Len() != src.Len() {
		t.Fatalf("replica has %d records, source %d", dst.Len(), src.Len())
	}
	if got := dst.Lockouts()["rt-3"]; got != 7 {
		t.Fatalf("replica lockout = %d, want 7", got)
	}
	if _, err := dst.Get("rt-4"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("replica kept deleted rt-4: %v", err)
	}
	// Applied frames must be durable in the replica's own log too.
	back := reopen(t, dst)
	if back.Len() != src.Len() {
		t.Fatalf("replica lost applied frames across reopen: %d != %d", back.Len(), src.Len())
	}
}

// TestApplyReplFramesRejectsCorruption: a batch that fails validation
// — flipped byte, truncated frame, or an embedded checkpoint marker —
// is rejected atomically: no partial application, no fail-stop, and
// the clean copy of the same batch still applies afterward.
func TestApplyReplFramesRejectsCorruption(t *testing.T) {
	src := openDurableT(t, DurableOptions{Shards: 1, Sync: SyncAlways, NoAutoCompact: true})
	dst := openDurableT(t, DurableOptions{Shards: 1, Sync: SyncAlways, NoAutoCompact: true})
	var cap captureShip
	src.SetReplHooks(cap.hook())
	if err := src.Put(versionedRecord("victim", 1)); err != nil {
		t.Fatal(err)
	}
	cap.mu.Lock()
	frames := cap.batches[0].frames
	cap.mu.Unlock()

	flipped := append([]byte(nil), frames...)
	flipped[len(flipped)/2] ^= 0x40
	if err := dst.ApplyReplFrames(0, flipped); err == nil {
		t.Fatal("corrupt batch applied without error")
	}
	if err := dst.ApplyReplFrames(0, frames[:len(frames)-3]); err == nil {
		t.Fatal("truncated batch applied without error")
	}
	if dst.Len() != 0 {
		t.Fatalf("rejected batches left %d records behind", dst.Len())
	}
	// Rejection is a validation outcome, not a storage fault: the
	// shard must not fail-stop, and the clean batch still lands.
	if err := dst.ApplyReplFrames(0, frames); err != nil {
		t.Fatalf("clean batch after rejections: %v", err)
	}
	if _, err := dst.Get("victim"); err != nil {
		t.Fatalf("applied record missing: %v", err)
	}
}

// TestReopenShardRecovers: a fail-stopped shard reopened through the
// supervised admin path serves exactly its acked state again, and a
// reopen that fails leaves the shard fail-stopped rather than
// half-open.
func TestReopenShardRecovers(t *testing.T) {
	injected := errors.New("injected fsync failure")
	ctl := &faultCtl{syncErr: failAfter(3, injected)}
	d := openFaulty(t, t.TempDir(), DurableOptions{Shards: 1, Sync: SyncAlways, NoAutoCompact: true}, ctl)
	if err := d.Put(versionedRecord("a", 1)); err != nil {
		t.Fatal(err)
	}
	if err := d.Put(versionedRecord("b", 1)); err != nil {
		t.Fatal(err)
	}
	// The third fsync fails: this write is refused and the shard
	// fail-stops.
	if err := d.Put(versionedRecord("c", 1)); err == nil {
		t.Fatal("write over injected fsync failure acked")
	}
	if err := d.Put(versionedRecord("d", 1)); !errors.Is(err, ErrShardFailed) {
		t.Fatalf("post-failure write = %v, want ErrShardFailed", err)
	}
	if h := d.Health(); len(h.Failed) != 1 || h.Failed[0] != 0 {
		t.Fatalf("Health().Failed = %v, want [0]", h.Failed)
	}

	if err := d.ReopenShard(0); err != nil {
		t.Fatalf("ReopenShard: %v", err)
	}
	if h := d.Health(); len(h.Failed) != 0 {
		t.Fatalf("shard still failed after reopen: %v", h.Failed)
	}
	// The acked prefix survived; the refused write did not resurrect.
	for _, user := range []string{"a", "b"} {
		if _, err := d.Get(user); err != nil {
			t.Fatalf("acked record %q lost across reopen: %v", user, err)
		}
	}
	if _, err := d.Get("c"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("refused write resurrected by reopen: %v", err)
	}
	// And the shard accepts writes again.
	if err := d.Put(versionedRecord("e", 1)); err != nil {
		t.Fatalf("write after reopen: %v", err)
	}

	// Reopening a healthy shard is a no-op error-wise; reopening an
	// out-of-range shard is refused.
	if err := d.ReopenShard(0); err != nil {
		t.Fatalf("reopen of healthy shard: %v", err)
	}
	if err := d.ReopenShard(9); err == nil {
		t.Fatal("reopen of shard 9 on a 1-shard store succeeded")
	}
}

// TestCheckpointMinBytes: the byte-delta gate checkpoints a shard that
// is below the record-count threshold but has grown enough WAL bytes —
// and skips one that has neither records nor bytes to justify it.
func TestCheckpointMinBytes(t *testing.T) {
	d := openDurableT(t, DurableOptions{Shards: 1, Sync: SyncNever, NoAutoCompact: true})
	for i := 0; i < 5; i++ {
		if err := d.Put(versionedRecord(fmt.Sprintf("ck-%d", i), i)); err != nil {
			t.Fatal(err)
		}
	}
	sh := &d.shards[0]
	sh.mu.Lock()
	since, bytes := sh.sinceCkpt, sh.ckptBytes
	sh.mu.Unlock()
	if since != 5 || bytes <= 0 {
		t.Fatalf("pre-checkpoint counters: sinceCkpt=%d ckptBytes=%d", since, bytes)
	}

	// Record gate far away, byte gate far away: skipped.
	if err := d.checkpointShard(0, 1000, bytes*10); err != nil {
		t.Fatal(err)
	}
	sh.mu.Lock()
	since = sh.sinceCkpt
	sh.mu.Unlock()
	if since != 5 {
		t.Fatalf("checkpoint ran below both gates (sinceCkpt=%d)", since)
	}

	// Record gate far away, byte gate met: the byte delta alone
	// triggers the checkpoint.
	if err := d.checkpointShard(0, 1000, bytes); err != nil {
		t.Fatal(err)
	}
	sh.mu.Lock()
	since, bytes = sh.sinceCkpt, sh.ckptBytes
	sh.mu.Unlock()
	if since != 0 || bytes != 0 {
		t.Fatalf("post-checkpoint counters not reset: sinceCkpt=%d ckptBytes=%d", since, bytes)
	}

	// The checkpoint is real: a reopen replays from it.
	back := reopen(t, d)
	if back.Len() != 5 {
		t.Fatalf("reopen after byte-gated checkpoint: %d records, want 5", back.Len())
	}
}

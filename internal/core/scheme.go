package core

import (
	"fmt"
	"math"

	"clickpass/internal/fixed"
	"clickpass/internal/geom"
)

// Clear is the portion of a discretized click-point that a system
// stores in clear text: the grid identifier. For Centered
// Discretization it is the pair of per-axis offsets (DX, DY); for
// Robust Discretization it is the index of the chosen grid.
type Clear struct {
	DX, DY fixed.Sub // Centered: offsets in [0, 2r); unused for Robust
	Grid   uint8     // Robust: grid index 0..2; unused for Centered
}

// Secret is the hashed portion: the per-axis indices of the grid square
// containing the click-point.
type Secret struct {
	IX, IY int64
}

// Token is the full discretized form of one click-point.
type Token struct {
	Clear  Clear
	Secret Secret
}

// Scheme is a 2-D discretization scheme usable by a PassPoints-style
// system. Implementations are immutable after construction and safe for
// concurrent use except where noted (RandomSafe Robust policy mutates
// its internal RNG during Enroll).
type Scheme interface {
	// Name identifies the scheme in reports ("centered", "robust").
	Name() string
	// SquareSide returns the grid-square side length.
	SquareSide() fixed.Sub
	// GuaranteedR returns the minimum tolerance guaranteed around any
	// original click-point.
	GuaranteedR() fixed.Sub
	// MaxAccepted returns the largest displacement from the original
	// point that can ever be accepted (r for Centered, 5r for Robust).
	MaxAccepted() fixed.Sub
	// Enroll discretizes an original click-point.
	Enroll(p geom.Point) Token
	// Locate computes the secret square indices for a candidate point
	// given the clear grid identifier fixed at enrollment.
	Locate(p geom.Point, c Clear) Secret
	// Region returns the accepting region of an enrolled token: the
	// grid square whose hash the system stored.
	Region(t Token) geom.Rect
	// ClearBits returns the information content of the clear grid
	// identifier in bits (paper §5.2).
	ClearBits() float64
}

// Accepts reports whether candidate p would be accepted against an
// enrolled token under scheme s — i.e. whether its square indices (and
// therefore its hash) match.
func Accepts(s Scheme, t Token, p geom.Point) bool {
	return s.Locate(p, t.Clear) == t.Secret
}

// Stateful is an optional interface for Scheme implementations whose
// Enroll/Locate mutate internal state. Implement it (returning false
// from SafeForConcurrentUse) to make the parallel engines fall back
// to serial execution for your scheme; schemes not implementing it
// are assumed immutable, matching the Scheme contract.
type Stateful interface {
	SafeForConcurrentUse() bool
}

// ConcurrencySafe reports whether the scheme may be shared by
// concurrent callers. Every scheme is immutable after construction
// except Robust with the RandomSafe policy, whose Enroll draws from an
// internal RNG; parallel engines check this and fall back to serial
// execution so RandomSafe results stay deterministic.
func ConcurrencySafe(s Scheme) bool {
	if st, ok := s.(Stateful); ok {
		return st.SafeForConcurrentUse()
	}
	return true
}

// SafeForConcurrentUse implements Stateful: only the RandomSafe
// policy consumes the internal RNG during Enroll.
func (r *Robust2D) SafeForConcurrentUse() bool { return r.Policy() != RandomSafe }

// Centered2D is the paper's scheme over a 2-D image: per-axis Centered
// Discretization with grid squares of SidePx x SidePx pixels centered
// on the original click-point.
type Centered2D struct {
	ax   Centered1D
	side int // pixels
}

// NewCentered returns Centered Discretization with squares of
// sidePx x sidePx pixels. The effective tolerance is sidePx/2 (e.g. a
// 13x13 square gives r = 6.5: the click pixel plus 6 pixels each way).
func NewCentered(sidePx int) (*Centered2D, error) {
	if sidePx <= 0 {
		return nil, fmt.Errorf("core: square side %d must be positive", sidePx)
	}
	r := fixed.Sub(sidePx) * fixed.Scale / 2 // sidePx/2 pixels, exact in sub units
	return &Centered2D{ax: Centered1D{R: r}, side: sidePx}, nil
}

// Name implements Scheme.
func (c *Centered2D) Name() string { return "centered" }

// SquareSide implements Scheme.
func (c *Centered2D) SquareSide() fixed.Sub { return fixed.FromPixels(c.side) }

// GuaranteedR implements Scheme: (side-1)/2 pixels — the guaranteed
// whole tolerance once the click's own pixel is accounted for (13x13
// guarantees 6; 24x24 guarantees 11.5).
func (c *Centered2D) GuaranteedR() fixed.Sub {
	return fixed.Sub(c.side-1) * fixed.Scale / 2
}

// MaxAccepted implements Scheme. Centered tolerance is exact: the
// farthest accepted displacement equals the guaranteed tolerance.
func (c *Centered2D) MaxAccepted() fixed.Sub { return c.GuaranteedR() }

// Enroll implements Scheme.
func (c *Centered2D) Enroll(p geom.Point) Token {
	ix, dx := c.ax.Discretize(p.X)
	iy, dy := c.ax.Discretize(p.Y)
	return Token{
		Clear:  Clear{DX: dx, DY: dy},
		Secret: Secret{IX: ix, IY: iy},
	}
}

// Locate implements Scheme.
func (c *Centered2D) Locate(p geom.Point, cl Clear) Secret {
	return Secret{
		IX: c.ax.Locate(p.X, cl.DX),
		IY: c.ax.Locate(p.Y, cl.DY),
	}
}

// Region implements Scheme.
func (c *Centered2D) Region(t Token) geom.Rect {
	loX, hiX := c.ax.Segment(t.Secret.IX, t.Clear.DX)
	loY, hiY := c.ax.Segment(t.Secret.IY, t.Clear.DY)
	return geom.Rect{MinX: loX, MinY: loY, MaxX: hiX, MaxY: hiY}
}

// Original reconstructs the exact original click-point from a token —
// the centering property. (This is why leaking the offsets narrows the
// candidate set to square centers, §5.2.)
func (c *Centered2D) Original(t Token) geom.Point {
	return geom.Point{
		X: c.ax.Center(t.Secret.IX, t.Clear.DX),
		Y: c.ax.Center(t.Secret.IY, t.Clear.DY),
	}
}

// ClearBits implements Scheme: log2(side^2) — e.g. 8 bits for 16x16
// squares (r = 8 in the paper's example).
func (c *Centered2D) ClearBits() float64 {
	return 2 * math.Log2(float64(c.side))
}

// Robust2D adapts RobustND to the 2-D Scheme interface.
type Robust2D struct {
	nd   *RobustND
	side int // pixels
}

// NewRobust2D returns Robust Discretization with grid squares of
// sidePx x sidePx pixels (so the guaranteed tolerance is sidePx/6) and
// the given grid-selection policy.
func NewRobust2D(sidePx int, policy RobustPolicy, seed uint64) (*Robust2D, error) {
	if sidePx <= 0 {
		return nil, fmt.Errorf("core: square side %d must be positive", sidePx)
	}
	// r = sidePx/6 pixels is exactly sidePx sub-pixel units.
	nd, err := NewRobust(fixed.Sub(sidePx), 2, policy, seed)
	if err != nil {
		return nil, err
	}
	return &Robust2D{nd: nd, side: sidePx}, nil
}

// NewRobustFromR returns Robust Discretization with guaranteed
// tolerance rPx whole pixels (squares of 6*rPx).
func NewRobustFromR(rPx int, policy RobustPolicy, seed uint64) (*Robust2D, error) {
	if rPx <= 0 {
		return nil, fmt.Errorf("core: tolerance %d must be positive", rPx)
	}
	return NewRobust2D(6*rPx, policy, seed)
}

// Name implements Scheme.
func (r *Robust2D) Name() string { return "robust" }

// Policy returns the grid-selection policy.
func (r *Robust2D) Policy() RobustPolicy { return r.nd.Policy }

// SquareSide implements Scheme.
func (r *Robust2D) SquareSide() fixed.Sub { return fixed.FromPixels(r.side) }

// GuaranteedR implements Scheme: side/6.
func (r *Robust2D) GuaranteedR() fixed.Sub { return r.nd.R }

// MaxAccepted implements Scheme: rmax = 5r.
func (r *Robust2D) MaxAccepted() fixed.Sub { return r.nd.RMax() }

// Enroll implements Scheme. It inlines the 2-D grid choice and square
// location to stay allocation-free (no coords slice, no SafeGrids
// list, no index slice): Enroll runs once per click of every password
// in the sweep and replay hot paths. Policy semantics are identical to
// RobustND.ChooseGrid — the property tests cross-check the two — and
// RandomSafe consumes exactly one Intn per enrollment, as before.
func (r *Robust2D) Enroll(p geom.Point) Token {
	g := r.chooseGrid2D(p)
	side := int64(r.nd.Side())
	off := r.nd.offset(g)
	return Token{
		Clear: Clear{Grid: uint8(g)},
		Secret: Secret{
			IX: fixed.FloorDiv(int64(p.X-off), side),
			IY: fixed.FloorDiv(int64(p.Y-off), side),
		},
	}
}

// safeMargin2D reports whether p is r-safe in grid g and the Chebyshev
// margin to the grid lines (the MostCentered criterion), without the
// coords slice RobustND's generic path needs.
func (r *Robust2D) safeMargin2D(p geom.Point, g int) (margin fixed.Sub, safe bool) {
	nd := r.nd
	side := int64(nd.Side())
	rr := int64(nd.R)
	off := nd.offset(g)
	mx := fixed.Mod(int64(p.X-off), side)
	my := fixed.Mod(int64(p.Y-off), side)
	if mx < rr || mx >= side-rr || my < rr || my >= side-rr {
		return 0, false
	}
	m := min64(mx, side-mx)
	if my2 := min64(my, side-my); my2 < m {
		m = my2
	}
	return fixed.Sub(m), true
}

// chooseGrid2D is the allocation-free 2-D twin of RobustND.ChooseGrid.
func (r *Robust2D) chooseGrid2D(p geom.Point) int {
	var safe [3]int
	var margins [3]fixed.Sub
	n := 0
	for g := 0; g < r.nd.GridCount(); g++ {
		if m, ok := r.safeMargin2D(p, g); ok {
			safe[n], margins[n] = g, m
			n++
		}
	}
	if n == 0 {
		panic(fmt.Sprintf("core: no r-safe grid for %v — Robust invariant violated", p))
	}
	switch r.nd.Policy {
	case FirstSafe:
		return safe[0]
	case RandomSafe:
		return safe[r.nd.rnd.Intn(n)]
	default: // MostCentered
		best, bestMargin := safe[0], margins[0]
		for i := 1; i < n; i++ {
			if margins[i] > bestMargin {
				best, bestMargin = safe[i], margins[i]
			}
		}
		return best
	}
}

// Locate implements Scheme. It inlines RobustND.Locate for the 2-D
// case to stay allocation-free: this is the innermost operation of the
// analysis replay and attack loops.
func (r *Robust2D) Locate(p geom.Point, cl Clear) Secret {
	side := int64(r.nd.Side())
	off := r.nd.offset(int(cl.Grid))
	return Secret{
		IX: fixed.FloorDiv(int64(p.X-off), side),
		IY: fixed.FloorDiv(int64(p.Y-off), side),
	}
}

// Region implements Scheme, allocation-free (see Locate).
func (r *Robust2D) Region(t Token) geom.Rect {
	side := r.nd.Side()
	off := r.nd.offset(int(t.Clear.Grid))
	loX := fixed.Sub(t.Secret.IX*int64(side)) + off
	loY := fixed.Sub(t.Secret.IY*int64(side)) + off
	return geom.Rect{MinX: loX, MinY: loY, MaxX: loX + side, MaxY: loY + side}
}

// ClearBits implements Scheme: log2(3) ≈ 1.58 bits ("2 bits" stored).
func (r *Robust2D) ClearBits() float64 { return math.Log2(3) }

// Package hotspot implements attacker-side hotspot analysis (paper
// §2.1): estimating where users click from either harvested click data
// (kernel density estimation — the Thorpe & van Oorschot human-seeded
// style) or from the image itself (a saliency model — the Dirik et al.
// automated image-processing style), then extracting ranked candidate
// click-points for attack dictionaries.
package hotspot

import (
	"fmt"
	"math"
	"sort"

	"clickpass/internal/geom"
	"clickpass/internal/imagegen"
)

// DensityMap is a click-probability estimate over an image, sampled on
// a square cell grid.
type DensityMap struct {
	Size geom.Size
	Cell int // cell side in pixels
	cols int
	rows int
	vals []float64
}

func newDensityMap(size geom.Size, cell int) (*DensityMap, error) {
	if size.W <= 0 || size.H <= 0 {
		return nil, fmt.Errorf("hotspot: empty image %v", size)
	}
	if cell <= 0 {
		return nil, fmt.Errorf("hotspot: cell %d must be positive", cell)
	}
	cols := (size.W + cell - 1) / cell
	rows := (size.H + cell - 1) / cell
	return &DensityMap{
		Size: size, Cell: cell, cols: cols, rows: rows,
		vals: make([]float64, cols*rows),
	}, nil
}

func (m *DensityMap) cellCenter(cx, cy int) geom.Point {
	x := cx*m.Cell + m.Cell/2
	y := cy*m.Cell + m.Cell/2
	return m.Size.Clamp(geom.Pt(x, y))
}

// At returns the estimated density at p (nearest cell), 0 outside the
// image. Negative coordinates are checked before division because Go's
// integer division truncates toward zero (-5/8 == 0 would alias the
// first cell).
func (m *DensityMap) At(p geom.Point) float64 {
	if p.X < 0 || p.Y < 0 {
		return 0
	}
	cx := p.X.Pixels() / m.Cell
	cy := p.Y.Pixels() / m.Cell
	if cx >= m.cols || cy >= m.rows {
		return 0
	}
	return m.vals[cy*m.cols+cx]
}

// EstimateKDE builds a density map from harvested click-points using a
// Gaussian kernel of the given bandwidth (pixels). This is what an
// attacker does with a set of leaked or lab-collected passwords.
func EstimateKDE(clicks []geom.Point, size geom.Size, cell int, bandwidth float64) (*DensityMap, error) {
	if len(clicks) == 0 {
		return nil, fmt.Errorf("hotspot: no clicks to estimate from")
	}
	if bandwidth <= 0 {
		return nil, fmt.Errorf("hotspot: bandwidth %v must be positive", bandwidth)
	}
	m, err := newDensityMap(size, cell)
	if err != nil {
		return nil, err
	}
	inv := 1 / (2 * bandwidth * bandwidth)
	// Kernel support truncated at 3 bandwidths for tractability.
	reach := int(math.Ceil(3*bandwidth)) / cell
	if reach < 1 {
		reach = 1
	}
	for _, c := range clicks {
		ccx := c.X.Pixels() / cell
		ccy := c.Y.Pixels() / cell
		for cy := ccy - reach; cy <= ccy+reach; cy++ {
			for cx := ccx - reach; cx <= ccx+reach; cx++ {
				if cx < 0 || cy < 0 || cx >= m.cols || cy >= m.rows {
					continue
				}
				ctr := m.cellCenter(cx, cy)
				dx := ctr.X.Float() - c.X.Float()
				dy := ctr.Y.Float() - c.Y.Float()
				m.vals[cy*m.cols+cx] += math.Exp(-(dx*dx + dy*dy) * inv)
			}
		}
	}
	return m, nil
}

// FromSaliency builds a density map straight from an image's saliency
// model — the automated attack that needs no harvested passwords.
func FromSaliency(img *imagegen.Image, cell int) (*DensityMap, error) {
	if err := img.Validate(); err != nil {
		return nil, err
	}
	m, err := newDensityMap(img.Size, cell)
	if err != nil {
		return nil, err
	}
	for cy := 0; cy < m.rows; cy++ {
		for cx := 0; cx < m.cols; cx++ {
			m.vals[cy*m.cols+cx] = img.Saliency(m.cellCenter(cx, cy))
		}
	}
	return m, nil
}

// TopK returns up to k cell-center points ranked by density, applying
// non-maximum suppression with the given minimum separation so the
// candidates spread over distinct hotspots rather than crowding the
// single highest peak.
func (m *DensityMap) TopK(k, minSepPx int) []geom.Point {
	if k <= 0 {
		return nil
	}
	type cand struct {
		p geom.Point
		v float64
	}
	cands := make([]cand, 0, len(m.vals))
	for cy := 0; cy < m.rows; cy++ {
		for cx := 0; cx < m.cols; cx++ {
			v := m.vals[cy*m.cols+cx]
			if v > 0 {
				cands = append(cands, cand{m.cellCenter(cx, cy), v})
			}
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].v != cands[j].v {
			return cands[i].v > cands[j].v
		}
		// Deterministic tie-break by position.
		if cands[i].p.Y != cands[j].p.Y {
			return cands[i].p.Y < cands[j].p.Y
		}
		return cands[i].p.X < cands[j].p.X
	})
	sep := geom.Pt(minSepPx, 0).X
	var out []geom.Point
	for _, c := range cands {
		if len(out) == k {
			break
		}
		tooClose := false
		for _, q := range out {
			if c.p.Chebyshev(q) < sep {
				tooClose = true
				break
			}
		}
		if !tooClose {
			out = append(out, c.p)
		}
	}
	return out
}

// Correlation computes the Pearson correlation between two density
// maps on the same grid — how well the automated saliency model
// predicts the harvested click density.
func Correlation(a, b *DensityMap) (float64, error) {
	if a.cols != b.cols || a.rows != b.rows {
		return 0, fmt.Errorf("hotspot: grid mismatch %dx%d vs %dx%d", a.cols, a.rows, b.cols, b.rows)
	}
	n := float64(len(a.vals))
	var sa, sb float64
	for i := range a.vals {
		sa += a.vals[i]
		sb += b.vals[i]
	}
	ma, mb := sa/n, sb/n
	var cov, va, vb float64
	for i := range a.vals {
		da, db := a.vals[i]-ma, b.vals[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0, fmt.Errorf("hotspot: degenerate density map")
	}
	return cov / math.Sqrt(va*vb), nil
}

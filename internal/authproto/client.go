package authproto

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"clickpass/internal/authsvc"
)

// This file implements authsvc.Client — the unified, transport-
// agnostic client surface — over both wire codecs. Tests and loadtest
// take an authsvc.Client and run identically against either front.

// DialService connects the unified client over the framed-TCP codec.
// Like the raw Client it wraps, the result is not safe for concurrent
// use; requests are serialized on one connection. A context deadline
// on a call bounds that call's whole network exchange.
func DialService(addr string, timeout time.Duration) (authsvc.Client, error) {
	raw, err := Dial(addr, timeout)
	if err != nil {
		return nil, err
	}
	return ServiceClient(raw), nil
}

// ServiceClient wraps an existing raw codec client (e.g. over
// net.Pipe or TLS via DialTLS) as an authsvc.Client.
func ServiceClient(raw *Client) authsvc.Client {
	c := &tcpServiceClient{raw: raw}
	c.Ops = authsvc.Ops{Doer: c}
	return c
}

type tcpServiceClient struct {
	authsvc.Ops
	raw *Client
	// broken marks a connection whose request/response lockstep is no
	// longer trustworthy (a failed or timed-out exchange may have left
	// an unread response frame in flight); every later call refuses
	// rather than risk pairing a request with a stale response.
	broken bool
}

// stampBudget propagates the context deadline as the request's wire
// budget (budget_ms) when the caller did not set one explicitly: the
// server then drops the request once the caller has given up —
// including time spent in the admission queue — instead of serving it
// into the void. An already-expired deadline stamps nothing; the
// entry ctx.Err() checks refuse the call first.
func stampBudget(ctx context.Context, req *authsvc.Request) {
	if req.BudgetMs != 0 {
		return
	}
	if dl, ok := ctx.Deadline(); ok {
		if ms := time.Until(dl).Milliseconds(); ms > 0 {
			req.BudgetMs = int(ms)
		}
	}
}

func (c *tcpServiceClient) Do(ctx context.Context, req authsvc.Request) (authsvc.Response, error) {
	if err := ctx.Err(); err != nil {
		return authsvc.Response{}, err
	}
	if c.broken {
		return authsvc.Response{}, fmt.Errorf("authproto: connection out of sync after a failed exchange; dial a new client")
	}
	stampBudget(ctx, &req)
	// The frame exchange honors the context's deadline via the
	// connection deadline; cancellation without a deadline falls back
	// to the entry check above.
	if deadline, ok := ctx.Deadline(); ok {
		_ = c.raw.conn.SetDeadline(deadline)
		defer func() { _ = c.raw.conn.SetDeadline(time.Time{}) }()
	}
	resp, err := c.raw.Do(wireRequest(req))
	if err != nil {
		c.broken = true
		_ = c.raw.Close()
		return authsvc.Response{}, err
	}
	return resp.service(), nil
}

func (c *tcpServiceClient) Close() error { return c.raw.Close() }

// NewHTTPClient returns the unified client over the HTTP/JSON codec.
// baseURL is the server root (e.g. "http://127.0.0.1:7780"); hc may be
// nil for http.DefaultClient. Unlike the TCP client, the result is
// safe for concurrent use — the underlying http.Client pools
// connections.
func NewHTTPClient(baseURL string, hc *http.Client) authsvc.Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	c := &httpServiceClient{base: strings.TrimRight(baseURL, "/"), hc: hc}
	c.Ops = authsvc.Ops{Doer: c}
	return c
}

type httpServiceClient struct {
	authsvc.Ops
	base string
	hc   *http.Client
}

func (c *httpServiceClient) Do(ctx context.Context, req authsvc.Request) (authsvc.Response, error) {
	stampBudget(ctx, &req)
	var (
		httpReq *http.Request
		err     error
	)
	path := c.base + "/v1/" + string(req.Op)
	if req.Op == authsvc.OpPing {
		httpReq, err = http.NewRequestWithContext(ctx, http.MethodGet, path, nil)
	} else {
		var body bytes.Buffer
		if err := json.NewEncoder(&body).Encode(wireRequest(req)); err != nil {
			return authsvc.Response{}, fmt.Errorf("authproto: encoding request: %w", err)
		}
		httpReq, err = http.NewRequestWithContext(ctx, http.MethodPost, path, &body)
		if httpReq != nil {
			httpReq.Header.Set("Content-Type", "application/json")
		}
	}
	if err != nil {
		return authsvc.Response{}, fmt.Errorf("authproto: building request: %w", err)
	}
	httpResp, err := c.hc.Do(httpReq)
	if err != nil {
		return authsvc.Response{}, err
	}
	defer httpResp.Body.Close()
	var resp Response
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		return authsvc.Response{}, fmt.Errorf("authproto: decoding response (status %d): %w",
			httpResp.StatusCode, err)
	}
	return resp.service(), nil
}

func (c *httpServiceClient) Close() error {
	c.hc.CloseIdleConnections()
	return nil
}

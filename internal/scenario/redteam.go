package scenario

import (
	"context"
	"fmt"
	"math/bits"
	"time"

	"clickpass/internal/authsvc"
	"clickpass/internal/dataset"
	"clickpass/internal/par"
)

// Report is what one red-team run measured. The curve fields are
// deterministic for a deterministic scheme (same seed, lockout, and
// guess stream always crack the same accounts at the same depth); the
// friction fields — throttles, re-sends, retry stats, latency — are
// the attacker's-eye view of the server's defenses and vary with load.
type Report struct {
	// Accounts attacked and guesses budgeted per account.
	Accounts int
	Guesses  int
	// Compromised accounts, and the cumulative curve: Curve[k] is how
	// many accounts fell within the first k+1 guesses (the paper's
	// guesses-versus-fraction-cracked axis).
	Compromised int
	Curve       []int
	// Denied counts wrong guesses the server verified and refused;
	// Locked counts accounts that hit the lockout wall mid-stream.
	Denied int64
	Locked int
	// Throttled counts per-user rate-limit refusals (budget-neutral:
	// the same guess was re-sent after ThrottleWait). Resent counts
	// guesses re-sent after the RetryClient exhausted its own budget
	// (sustained shedding or transport loss). Incomplete counts
	// accounts abandoned after GuessRetries such re-sends.
	Throttled  int64
	Resent     int64
	Incomplete int
	// Wire sums every worker's RetryClient stats: total calls,
	// retries, overload shed responses absorbed, breaker activity, and
	// not_primary redirects followed.
	Wire authsvc.RetryStats
	// Elapsed is wall-clock for the whole run; the latency quantiles
	// cover definitive answers only (ok/denied/locked), measured
	// around the RetryClient call so internal retry waits count —
	// that is the latency the attacker experiences.
	Elapsed    time.Duration
	P50        time.Duration
	P99        time.Duration
	MaxLatency time.Duration
}

// CrackCurve is the load-independent core of a Report — the part that
// must be byte-identical across worker counts and transports, and the
// part golden tests pin.
type CrackCurve struct {
	Accounts    int   `json:"accounts"`
	Guesses     int   `json:"guesses"`
	Compromised int   `json:"compromised"`
	Curve       []int `json:"curve"`
}

// CrackCurve extracts the deterministic compromise curve.
func (r *Report) CrackCurve() CrackCurve {
	return CrackCurve{
		Accounts:    r.Accounts,
		Guesses:     r.Guesses,
		Compromised: r.Compromised,
		Curve:       append([]int(nil), r.Curve...),
	}
}

// outcome is one account's attack result.
type outcome struct {
	compromisedAt int // guess index, -1 if never
	locked        bool
	incomplete    bool
	denied        int64
	throttled     int64
	resent        int64
	hist          latHist
}

// RedTeam runs the online attack against a live server: every account
// gets the same guess stream (most-salient first — the order
// attack.Online uses) until the server says ok, says locked, or the
// stream runs out. Workers share nothing per-account, so any worker
// count and any transport produce the same CrackCurve; only the
// friction fields move. Callers wanting the attack.Online equivalence
// should pass a guess stream truncated to the server's lockout — a
// longer stream only measures how well lockout holds past the budget.
func RedTeam(cfg Config, users []string, guesses [][]dataset.Click) (*Report, error) {
	cfg = cfg.withDefaults()
	if cfg.Dial == nil {
		return nil, fmt.Errorf("scenario: nil transport factory")
	}
	rep := &Report{
		Accounts: len(users),
		Guesses:  len(guesses),
		Curve:    make([]int, len(guesses)),
	}
	if len(users) == 0 || len(guesses) == 0 {
		return rep, nil
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = par.Default()
	}
	if workers > len(users) {
		workers = len(users)
	}
	clients, err := dialClients(cfg, workers)
	if err != nil {
		return nil, err
	}
	defer closeClients(clients)
	pool := make(chan *authsvc.RetryClient, workers)
	for _, c := range clients {
		pool <- c
	}

	start := time.Now()
	outcomes, err := par.MapWith(workers, len(users),
		func() *authsvc.RetryClient { return <-pool },
		func(cli *authsvc.RetryClient, i int) (outcome, error) {
			return attackAccount(cfg, cli, users[i], guesses), nil
		})
	rep.Elapsed = time.Since(start)
	if err != nil {
		return nil, err
	}

	var hist latHist
	marks := make([]int, len(guesses))
	for _, o := range outcomes {
		if o.compromisedAt >= 0 {
			rep.Compromised++
			marks[o.compromisedAt]++
		}
		if o.locked {
			rep.Locked++
		}
		if o.incomplete {
			rep.Incomplete++
		}
		rep.Denied += o.denied
		rep.Throttled += o.throttled
		rep.Resent += o.resent
		hist.merge(&o.hist)
	}
	cum := 0
	for k, m := range marks {
		cum += m
		rep.Curve[k] = cum
	}
	for _, c := range clients {
		s := c.Stats()
		rep.Wire.Calls += s.Calls
		rep.Wire.Retries += s.Retries
		rep.Wire.Overloaded += s.Overloaded
		rep.Wire.BreakerOpens += s.BreakerOpens
		rep.Wire.BreakerFastFails += s.BreakerFastFails
		rep.Wire.Redirects += s.Redirects
	}
	rep.P50 = hist.quantile(0.50)
	rep.P99 = hist.quantile(0.99)
	rep.MaxLatency = hist.max
	return rep, nil
}

// attackAccount walks one account down the guess stream. Refusals that
// consumed no lockout budget (throttled, shed past the RetryClient's
// patience, transport errors) re-send the same guess, so the only ways
// forward are the server's three definitive answers.
func attackAccount(cfg Config, cli *authsvc.RetryClient, user string, guesses [][]dataset.Click) outcome {
	o := outcome{compromisedAt: -1}
	ops := authsvc.Ops{Doer: cli}
	ctx := context.Background()
	for gi, g := range guesses {
		resent := 0
	sendGuess:
		for {
			t0 := time.Now()
			resp, err := ops.Login(ctx, user, g)
			if err == nil {
				switch resp.Code {
				case authsvc.CodeOK:
					o.hist.add(time.Since(t0))
					o.compromisedAt = gi
					return o
				case authsvc.CodeDenied:
					o.hist.add(time.Since(t0))
					o.denied++
					break sendGuess
				case authsvc.CodeLocked:
					o.hist.add(time.Since(t0))
					o.locked = true
					return o
				case authsvc.CodeThrottled:
					o.throttled++
					time.Sleep(cfg.ThrottleWait)
					continue
				}
			}
			// Transport error or a non-definitive refusal the
			// RetryClient already retried to exhaustion — back off and
			// re-send the whole guess, up to the incompleteness cap.
			o.resent++
			resent++
			if resent > cfg.GuessRetries {
				o.incomplete = true
				return o
			}
			time.Sleep(cfg.ThrottleWait)
		}
	}
	return o
}

// latHist is a fixed-size log2(ns) histogram: O(1) memory however many
// attempts a run makes, quantiles accurate to a factor of two — plenty
// for the attacker's-eye latency columns, which are not golden-pinned.
type latHist struct {
	n       int64
	max     time.Duration
	buckets [48]int64
}

func (h *latHist) add(d time.Duration) {
	if d < 0 {
		d = 0
	}
	if d > h.max {
		h.max = d
	}
	b := bits.Len64(uint64(d))
	if b >= len(h.buckets) {
		b = len(h.buckets) - 1
	}
	h.buckets[b]++
	h.n++
}

func (h *latHist) merge(o *latHist) {
	if o.max > h.max {
		h.max = o.max
	}
	h.n += o.n
	for i, c := range o.buckets {
		h.buckets[i] += c
	}
}

// quantile returns an upper bound for the q-th latency quantile.
func (h *latHist) quantile(q float64) time.Duration {
	if h.n == 0 {
		return 0
	}
	target := int64(q*float64(h.n-1)) + 1
	var seen int64
	for b, c := range h.buckets {
		seen += c
		if seen >= target {
			if b == 0 {
				return 0
			}
			d := time.Duration(1) << uint(b)
			if d > h.max {
				d = h.max
			}
			return d
		}
	}
	return h.max
}
